#ifndef SCOTTY_COMMON_TIME_H_
#define SCOTTY_COMMON_TIME_H_

#include <cstdint>
#include <limits>

namespace scotty {

/// Logical timestamp used throughout the library. Per the paper (Section
/// 4.3), a "timestamp" can represent event-time (milliseconds in our data
/// generators), processing-time, a tuple count, or any other monotonically
/// advancing measure. All windowing arithmetic is integer arithmetic on this
/// type.
using Time = int64_t;

/// Sentinel for "no timestamp yet" (e.g., t_first of an empty slice).
inline constexpr Time kNoTime = std::numeric_limits<Time>::min();

/// Sentinel for "infinitely far in the future" (e.g., the next edge of a
/// window type that currently has no upcoming edge).
inline constexpr Time kMaxTime = std::numeric_limits<Time>::max();

/// The measures a window can be defined on (paper Section 4.3).
///
/// kEventTime and kArbitrary are processed identically (arbitrary advancing
/// measures are a generalization of event-time); kProcessingTime uses the
/// operator's own clock and is therefore always in-order; kCount counts
/// tuples in event-time order, which interacts with out-of-order tuples
/// (an out-of-order tuple shifts the count of all later tuples).
enum class Measure {
  kEventTime,
  kProcessingTime,
  kCount,
  kArbitrary,
};

/// Returns a short human-readable name, for logs and benchmark output.
inline const char* MeasureName(Measure m) {
  switch (m) {
    case Measure::kEventTime:
      return "event-time";
    case Measure::kProcessingTime:
      return "processing-time";
    case Measure::kCount:
      return "count";
    case Measure::kArbitrary:
      return "arbitrary";
  }
  return "unknown";
}

}  // namespace scotty

#endif  // SCOTTY_COMMON_TIME_H_
