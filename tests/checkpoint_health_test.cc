// CheckpointHealth surfacing (ROADMAP: "CheckpointHealth is computed but
// nothing reads it"): the coordinator's HealthReport() accessor and the
// health fields embedded in CheckpointedPipelineReport and
// ParallelPipelineReport, driven through injected persist failures.

#include <atomic>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "runtime/checkpoint.h"
#include "runtime/checkpoint_health.h"
#include "runtime/parallel_executor.h"
#include "runtime/pipeline.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

namespace fs = std::filesystem;

using testutil::T;

std::string TempDir(const std::string& leaf) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string unique =
      info ? leaf + "_" + info->test_suite_name() + "_" + info->name() : leaf;
  const fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

class VectorSource : public TupleSource {
 public:
  explicit VectorSource(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}
  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    return true;
  }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

std::vector<Tuple> MakeStream(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(T(static_cast<Time>(i * 2),
                    0.25 * static_cast<double>(i % 31) - 2.0,
                    /*seq=*/0, static_cast<int64_t>(i % 7)));
  }
  return out;
}

std::function<std::unique_ptr<WindowOperator>()> Factory() {
  return [] {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 1000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<TumblingWindow>(40));
    op->AddWindow(std::make_shared<SessionWindow>(8));
    return op;
  };
}

TEST(CheckpointHealthReport, NamesAndDefaults) {
  EXPECT_STREQ(CheckpointHealthName(CheckpointHealth::kHealthy), "healthy");
  EXPECT_STREQ(CheckpointHealthName(CheckpointHealth::kDegraded), "degraded");
  EXPECT_STREQ(CheckpointHealthName(CheckpointHealth::kFailed), "failed");
  const CheckpointHealthReport hr;
  EXPECT_EQ(hr.health, CheckpointHealth::kHealthy);
  EXPECT_FALSE(hr.Degraded());
  EXPECT_EQ(hr.persist_failures, 0u);
}

TEST(CheckpointHealthReport, MirrorsCoordinatorCounters) {
  const std::string dir = TempDir("health_mirror");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "h";
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 10;
  CheckpointCoordinator coord(copts);
  std::atomic<int> failures_left{2};
  coord.SetPersistFailureHook(
      [&](uint64_t, bool) { return failures_left.fetch_sub(1) > 0; });

  auto op = Factory()();
  for (int i = 0; i < 30; ++i) op->ProcessTuple(T(i * 3, i));
  op->ProcessWatermark(50);
  op->TakeResults();

  state::CheckpointMetadata meta;
  EXPECT_TRUE(coord.OnBarrier(*op, meta).empty());  // fails
  CheckpointHealthReport hr = coord.HealthReport();
  EXPECT_EQ(hr.health, CheckpointHealth::kDegraded);
  EXPECT_TRUE(hr.Degraded());
  EXPECT_EQ(hr.health, coord.health());
  EXPECT_EQ(hr.persist_failures, coord.persist_failures());
  EXPECT_EQ(hr.persist_failures, 1u);
  EXPECT_EQ(hr.bases_persisted, 0u);

  EXPECT_TRUE(coord.OnBarrier(*op, meta).empty());   // fails
  EXPECT_FALSE(coord.OnBarrier(*op, meta).empty());  // persists, recovers
  hr = coord.HealthReport();
  EXPECT_EQ(hr.health, CheckpointHealth::kHealthy);
  EXPECT_FALSE(hr.Degraded());
  EXPECT_EQ(hr.persist_failures, 2u);
  EXPECT_EQ(hr.bases_persisted, 1u);
  EXPECT_EQ(hr.barriers_dropped, coord.barriers_dropped());
  EXPECT_EQ(hr.deltas_persisted, coord.deltas_persisted());
}

TEST(CheckpointedPipeline, ReportCarriesHealthyState) {
  const std::string dir = TempDir("health_pipeline_ok");
  VectorSource src(MakeStream(512));
  auto op = Factory()();
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointCoordinator coord({.directory = dir, .prefix = "h"});
  const CheckpointedPipelineReport rep =
      RunCheckpointedPipeline(src, *op, 512, popts, coord);
  EXPECT_GT(rep.checkpoints, 0u);
  EXPECT_EQ(rep.health.health, CheckpointHealth::kHealthy);
  EXPECT_FALSE(rep.health.Degraded());
  EXPECT_EQ(rep.health.persist_failures, 0u);
  EXPECT_EQ(rep.health.bases_persisted, rep.checkpoints);
}

TEST(CheckpointedPipeline, ReportCarriesTerminalFailure) {
  const std::string dir = TempDir("health_pipeline_fail");
  VectorSource src(MakeStream(512));
  auto op = Factory()();
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "h";
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 2;
  CheckpointCoordinator coord(copts);
  coord.SetPersistFailureHook([](uint64_t, bool) { return true; });

  const CheckpointedPipelineReport rep =
      RunCheckpointedPipeline(src, *op, 512, popts, coord);
  // The stream itself completes; only persistence degraded.
  EXPECT_EQ(rep.report.tuples, 512u);
  EXPECT_GT(rep.report.results, 0u);
  EXPECT_EQ(rep.checkpoints, 0u);
  EXPECT_EQ(rep.health.health, CheckpointHealth::kFailed);
  EXPECT_TRUE(rep.health.Degraded());
  EXPECT_GE(rep.health.persist_failures, 2u);
  EXPECT_EQ(rep.health.bases_persisted, 0u);
}

TEST(CheckpointedPipeline, AsyncFailuresVisibleAfterFlush) {
  // Async mode: failures happen on the background persist thread; the
  // report's health must still reflect them because it is sampled after the
  // coordinator flush.
  const std::string dir = TempDir("health_pipeline_async");
  VectorSource src(MakeStream(512));
  auto op = Factory()();
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "h";
  copts.async = true;
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 100;  // stay out of terminal kFailed
  CheckpointCoordinator coord(copts);
  coord.SetPersistFailureHook([](uint64_t, bool) { return true; });

  const CheckpointedPipelineReport rep =
      RunCheckpointedPipeline(src, *op, 512, popts, coord);
  EXPECT_EQ(rep.report.tuples, 512u);
  EXPECT_TRUE(rep.health.Degraded());
  EXPECT_GT(rep.health.persist_failures + rep.health.barriers_dropped, 0u);
  EXPECT_EQ(rep.health.bases_persisted, 0u);
}

TEST(CheckpointHealthTransitions, RecoversJustBelowEscalationThreshold) {
  // kHealthy -> kDegraded -> kHealthy: exactly max_consecutive_failures - 1
  // injected failures, then a success. The streak must reset without ever
  // touching terminal kFailed.
  const std::string dir = TempDir("health_edge_recover");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "r";
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 3;
  CheckpointCoordinator coord(copts);
  std::atomic<int> failures_left{2};
  coord.SetPersistFailureHook(
      [&](uint64_t, bool) { return failures_left.fetch_sub(1) > 0; });

  auto op = Factory()();
  for (int i = 0; i < 30; ++i) op->ProcessTuple(T(i * 3, i));
  op->ProcessWatermark(50);
  op->TakeResults();
  state::CheckpointMetadata meta;

  EXPECT_EQ(coord.health(), CheckpointHealth::kHealthy);
  EXPECT_TRUE(coord.OnBarrier(*op, meta).empty());
  EXPECT_EQ(coord.health(), CheckpointHealth::kDegraded);
  EXPECT_TRUE(coord.OnBarrier(*op, meta).empty());
  EXPECT_EQ(coord.health(), CheckpointHealth::kDegraded);  // 2 < 3: no kFailed
  EXPECT_FALSE(coord.OnBarrier(*op, meta).empty());
  EXPECT_EQ(coord.health(), CheckpointHealth::kHealthy);
  EXPECT_EQ(coord.persist_failures(), 2u);
  EXPECT_EQ(coord.HealthReport().mode_fallbacks, 0u);  // opt-in only
}

TEST(CheckpointHealthTransitions, EscalatesToFailedAndAbandonIsSafe) {
  // kDegraded -> kFailed at the escalation threshold without auto_fallback,
  // with the async persist thread doing the counting; Abandon() must then
  // shut the coordinator down cleanly with work still queued.
  const std::string dir = TempDir("health_edge_escalate");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "e";
  copts.async = true;
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 2;
  CheckpointCoordinator coord(copts);
  coord.SetPersistFailureHook([](uint64_t, bool) { return true; });

  auto op = Factory()();
  for (int i = 0; i < 30; ++i) op->ProcessTuple(T(i * 3, i));
  op->ProcessWatermark(50);
  op->TakeResults();
  state::CheckpointMetadata meta;

  coord.OnBarrier(*op, meta);
  coord.Flush();
  EXPECT_EQ(coord.health(), CheckpointHealth::kDegraded);
  coord.OnBarrier(*op, meta);
  coord.Flush();
  EXPECT_EQ(coord.health(), CheckpointHealth::kFailed);
  // Without the auto_fallback opt-in the ladder never moves.
  const CheckpointHealthReport hr = coord.HealthReport();
  EXPECT_EQ(hr.mode, coord.configured_persistence_mode());
  EXPECT_EQ(hr.mode_fallbacks, 0u);
  EXPECT_FALSE(hr.alarm);

  coord.OnBarrier(*op, meta);  // possibly in flight at shutdown
  coord.Abandon();             // must not deadlock against pending work
  EXPECT_EQ(coord.health(), CheckpointHealth::kFailed);
}

TEST(CheckpointLadder, FallsBackThroughModesAndPromotesBack) {
  // The auto-fallback ladder end to end on a deterministic (sync-context)
  // coordinator: two consecutive failures per rung walk async-incremental
  // -> async-full -> sync-full -> off (alarm), health saturating at
  // kDegraded; once faults clear, every off-rung barrier probes
  // (off_probe_every = 1) and two successes per rung promote all the way
  // back to the configured mode.
  const std::string dir = TempDir("ladder_roundtrip");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "l";
  copts.incremental = true;
  copts.full_snapshot_every = 4;
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 2;
  copts.auto_fallback = true;
  copts.promote_after = 2;
  copts.off_probe_every = 1;
  CheckpointCoordinator coord(copts);
  ASSERT_EQ(coord.configured_persistence_mode(),
            CheckpointPersistenceMode::kAsyncIncremental);
  std::atomic<bool> failing{true};
  coord.SetPersistFailureHook([&](uint64_t, bool) { return failing.load(); });

  auto op = Factory()();
  for (int i = 0; i < 30; ++i) op->ProcessTuple(T(i * 3, i));
  op->ProcessWatermark(50);
  op->TakeResults();
  state::CheckpointMetadata meta;

  for (int i = 0; i < 6; ++i) EXPECT_TRUE(coord.OnBarrier(*op, meta).empty());
  CheckpointHealthReport hr = coord.HealthReport();
  EXPECT_EQ(hr.mode, CheckpointPersistenceMode::kOff);
  EXPECT_TRUE(hr.alarm);
  EXPECT_EQ(hr.mode_fallbacks, 3u);
  EXPECT_EQ(hr.health, CheckpointHealth::kDegraded);  // never terminal

  failing = false;
  int persisted = 0;
  for (int i = 0; i < 6; ++i) {
    if (!coord.OnBarrier(*op, meta).empty()) ++persisted;
  }
  hr = coord.HealthReport();
  EXPECT_EQ(hr.mode, CheckpointPersistenceMode::kAsyncIncremental);
  EXPECT_EQ(hr.configured_mode, CheckpointPersistenceMode::kAsyncIncremental);
  EXPECT_FALSE(hr.alarm);
  EXPECT_EQ(hr.mode_promotions, 3u);
  EXPECT_EQ(hr.health, CheckpointHealth::kHealthy);
  EXPECT_GT(persisted, 0);
}

TEST(ParallelPipeline, ReportCarriesCheckpointHealth) {
  const std::string dir = TempDir("health_parallel");
  PipelineOptions popts;
  popts.watermark_every = 128;
  popts.watermark_delay = 20;

  {
    VectorSource src(MakeStream(1024));
    ParallelExecutor exec(3, Factory());
    CheckpointCoordinator coord({.directory = dir, .prefix = "p"});
    const ParallelPipelineReport rep =
        RunPipelineParallel(src, exec, 1024, popts, nullptr, &coord);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_GT(rep.checkpoints, 0u);
    EXPECT_EQ(rep.checkpoint_health.health, CheckpointHealth::kHealthy);
    EXPECT_EQ(rep.checkpoint_health.bases_persisted, rep.checkpoints);
  }
  {
    VectorSource src(MakeStream(1024));
    ParallelExecutor exec(3, Factory());
    CheckpointOptions copts;
    copts.directory = dir;
    copts.prefix = "pf";
    copts.max_retries = 0;
    copts.retry_backoff_ms = 0;
    copts.max_consecutive_failures = 100;
    CheckpointCoordinator coord(copts);
    coord.SetPersistFailureHook([](uint64_t, bool) { return true; });
    const ParallelPipelineReport rep =
        RunPipelineParallel(src, exec, 1024, popts, nullptr, &coord);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.checkpoints, 0u);
    EXPECT_TRUE(rep.checkpoint_health.Degraded());
    EXPECT_GT(rep.checkpoint_health.persist_failures, 0u);
  }
  {
    // No coordinator: the embedded health stays default-healthy.
    VectorSource src(MakeStream(256));
    ParallelExecutor exec(3, Factory());
    const ParallelPipelineReport rep =
        RunPipelineParallel(src, exec, 256, popts);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.checkpoint_health.health, CheckpointHealth::kHealthy);
    EXPECT_EQ(rep.checkpoint_health.persist_failures, 0u);
  }
}

}  // namespace
}  // namespace scotty
