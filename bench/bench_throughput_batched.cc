// Batched vs tuple-at-a-time ingestion on the Figure-8 workload.
//
// Setup: the in-order football stream with concurrent tumbling-window sum
// queries (paper Section 6.2.1) — the configuration where per-tuple overhead
// dominates, since slicing reduces window maintenance to one partial-
// aggregate update per tuple. The batched path amortizes virtual dispatch,
// workload re-checks, and slice lookups across contiguous tuple runs and
// folds values through the devirtualized LiftCombineBatch kernels.
//
// Series per store mode (lazy/eager):
//   tuple-at-a-time    ProcessTuple per tuple (the pre-batching hot loop)
//   batch-{64,256,1024} ProcessTupleBatch over blocks of that size
//   speedup-batch-256  batch-256 tuples/s divided by tuple-at-a-time
//
// Results are appended to BENCH_throughput.json (see bench_json.h); the
// committed baseline at the repo root records the measured speedup. The
// batch sizes bracket the ParallelExecutor staging default (256).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace scotty {
namespace bench {
namespace {

// The slicing hot loop sustains tens of millions of tuples/s, so the
// Figure-8 budget of 3M tuples finishes in well under 0.1s and is too noisy
// for a recorded speedup baseline; give each point up to 20M tuples / 1s.
constexpr uint64_t kMaxTuples = 20'000'000;
constexpr double kMaxSeconds = 1.0;

std::unique_ptr<WindowOperator> MakeOp(Technique tech, int windows) {
  return MakeTechnique(tech, /*stream_in_order=*/true, /*allowed_lateness=*/0,
                       DashboardTumblingWindows(windows), {"sum"});
}

void Run() {
  PrintHeader("throughput_batched",
              "batched vs per-tuple ingestion, in-order sum/tumbling");
  const std::vector<int> window_counts = {1, 10, 100, 1000};
  const std::vector<size_t> batch_sizes = {64, 256, 1024};
  for (Technique tech : {Technique::kLazySlicing, Technique::kEagerSlicing}) {
    const std::string name = TechniqueName(tech);
    for (int n : window_counts) {
      SensorStream src(SensorStream::Football());
      auto base_op = MakeOp(tech, n);
      // In-order streams self-trigger; no watermarks needed.
      const ThroughputResult base =
          MeasureThroughput(*base_op, src, kMaxTuples, kMaxSeconds,
                            /*wm_every=*/0);
      EmitRow("throughput_batched", name + "/tuple-at-a-time",
              std::to_string(n), base.TuplesPerSecond(), "tuples/s");
      double batch256 = 0.0;
      for (size_t bs : batch_sizes) {
        SensorStream bsrc(SensorStream::Football());
        auto op = MakeOp(tech, n);
        const ThroughputResult r = MeasureThroughputBatched(
            *op, bsrc, kMaxTuples, kMaxSeconds, bs, /*wm_every=*/0);
        EmitRow("throughput_batched", name + "/batch-" + std::to_string(bs),
                std::to_string(n), r.TuplesPerSecond(), "tuples/s");
        if (bs == 256) batch256 = r.TuplesPerSecond();
      }
      if (base.TuplesPerSecond() > 0) {
        EmitRow("throughput_batched", name + "/speedup-batch-256",
                std::to_string(n), batch256 / base.TuplesPerSecond(), "x");
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
