file(REMOVE_RECURSE
  "libscotty.a"
)
