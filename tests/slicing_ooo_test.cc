// Out-of-order processing on the general slicing operator: slice lookups,
// watermark-driven triggering, allowed lateness, non-commutative
// recomputation, and the adaptive storage decision.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::Num;
using testutil::RunStream;
using testutil::T;

GeneralSlicingOperator::Options OooOpts(Time lateness = 100,
                                        StoreMode mode = StoreMode::kLazy) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = false;
  o.allowed_lateness = lateness;
  o.store_mode = mode;
  return o;
}

TEST(SlicingOoo, NoOutputBeforeWatermark) {
  GeneralSlicingOperator op(OooOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(1, 1, 0));
  op.ProcessTuple(T(15, 2, 1));
  EXPECT_TRUE(op.TakeResults().empty());
  op.ProcessWatermark(10);
  auto fin = FinalResults(op.TakeResults());
  ASSERT_EQ(fin.size(), 1u);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 1.0);
}

TEST(SlicingOoo, OutOfOrderTupleLandsInExistingSlice) {
  GeneralSlicingOperator op(OooOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  // In-order tuples carve slices [0,10) and [10,20); the late tuple at 4
  // must update the first slice, before any watermark.
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(12, 2), T(4, 10)}, 20));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 11.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 20}]), 2.0);
  EXPECT_EQ(op.stats().out_of_order_tuples, 1u);
}

TEST(SlicingOoo, SlicesCutAtStartsAndEndsForOutOfOrderStreams) {
  GeneralSlicingOperator op(OooOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SlidingWindow>(12, 5));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 50; ++i) tuples.push_back(T(i, 1.0));
  RunStream(op, tuples, 0);
  // Unlike the in-order case (10 slices), ends also cut: roughly double.
  EXPECT_GT(op.time_store()->NumSlices(), 10u);
}

TEST(SlicingOoo, LateTupleWithinLatenessEmitsUpdate) {
  GeneralSlicingOperator op(OooOpts(/*lateness=*/100));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(1, 1, 0));
  op.ProcessTuple(T(15, 2, 1));
  op.ProcessWatermark(10);  // emits [0,10) = 1
  op.TakeResults();
  op.ProcessTuple(T(5, 7, 2));  // late but within lateness
  auto results = op.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].is_update);
  EXPECT_EQ(results[0].start, 0);
  EXPECT_EQ(results[0].end, 10);
  EXPECT_DOUBLE_EQ(Num(results[0].value), 8.0);
  EXPECT_EQ(op.stats().late_tuples, 1u);
}

TEST(SlicingOoo, LateTupleUpdatesAllCoveringSlidingWindows) {
  GeneralSlicingOperator op(OooOpts(/*lateness=*/1000));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SlidingWindow>(20, 10));
  op.ProcessTuple(T(5, 1, 0));
  op.ProcessTuple(T(45, 1, 1));
  op.ProcessWatermark(40);
  op.TakeResults();
  op.ProcessTuple(T(15, 5, 2));  // inside [0,20) and [10,30)
  auto results = op.TakeResults();
  ASSERT_EQ(results.size(), 2u);
  for (const WindowResult& r : results) {
    EXPECT_TRUE(r.is_update);
    EXPECT_TRUE((r.start == 0 && r.end == 20) ||
                (r.start == 10 && r.end == 30))
        << r;
  }
}

TEST(SlicingOoo, TuplesBeyondAllowedLatenessAreDropped) {
  GeneralSlicingOperator op(OooOpts(/*lateness=*/10));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(100, 1, 0));
  op.ProcessWatermark(100);
  op.TakeResults();
  op.ProcessTuple(T(50, 99, 1));  // 50 < 100 - 10: dropped
  EXPECT_TRUE(op.TakeResults().empty());
  EXPECT_EQ(op.stats().dropped_tuples, 1u);
}

TEST(SlicingOoo, CommutativeAggsNeedNoTupleStorage) {
  GeneralSlicingOperator op(OooOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddAggregation(MakeAggregation("avg"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  EXPECT_FALSE(op.queries().StoreTuples());
  std::vector<Tuple> tuples = {T(1, 1), T(8, 2), T(3, 3), T(12, 4), T(6, 5)};
  RunStream(op, tuples, 0);
  for (size_t i = 0; i < op.time_store()->NumSlices(); ++i) {
    EXPECT_TRUE(op.time_store()->At(i).tuples().empty());
  }
}

TEST(SlicingOoo, NonCommutativeAggRecomputesFromStoredTuples) {
  GeneralSlicingOperator op(OooOpts());
  op.AddAggregation(MakeAggregation("concat"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  EXPECT_TRUE(op.queries().StoreTuples());
  // 5 arrives after 7 but must appear before it in the concatenation.
  auto fin = FinalResults(RunStream(
      op, {T(2, 1), T(7, 2), T(12, 9), T(5, 3)}, 20));
  const std::vector<double> expected = {1, 3, 2};
  EXPECT_EQ((fin[{0, 0, 0, 10}]).AsSequence(), expected);
  EXPECT_GT(op.stats().slice_recomputes, 0u);
}

TEST(SlicingOoo, HolisticMedianWithOutOfOrderTuples) {
  GeneralSlicingOperator op(OooOpts());
  op.AddAggregation(MakeAggregation("median"));
  op.AddWindow(std::make_shared<TumblingWindow>(100));
  auto fin = FinalResults(RunStream(
      op, {T(10, 5), T(60, 9), T(90, 1), T(30, 7), T(20, 3)}, 100));
  // Window [0,100) holds {1,3,5,7,9}: median 5.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 100}]), 5.0);
}

TEST(SlicingOoo, EagerModeMatchesLazyUnderOutOfOrder) {
  std::vector<Tuple> tuples = {T(1, 1),  T(14, 2), T(7, 3),  T(22, 4),
                               T(3, 5),  T(28, 6), T(17, 7), T(33, 8),
                               T(25, 9), T(40, 10)};
  for (const char* agg : {"sum", "median"}) {
    GeneralSlicingOperator lazy(OooOpts(1000, StoreMode::kLazy));
    GeneralSlicingOperator eager(OooOpts(1000, StoreMode::kEager));
    for (auto* op : {&lazy, &eager}) {
      op->AddAggregation(MakeAggregation(agg));
      op->AddWindow(std::make_shared<SlidingWindow>(20, 10));
    }
    auto a = FinalResults(RunStream(lazy, tuples, 50));
    auto b = FinalResults(RunStream(eager, tuples, 50));
    EXPECT_EQ(a, b) << agg;
  }
}

TEST(SlicingOoo, OutOfOrderTupleBeforeFirstSliceCreatesOne) {
  GeneralSlicingOperator op(OooOpts(/*lateness=*/1000));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(30));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(25, 1, 0));
  op.ProcessTuple(T(3, 2, 1));  // before every existing slice
  op.ProcessWatermark(40);
  auto fin = FinalResults(op.TakeResults());
  // The early tuple lands in a freshly created slice and is aggregated into
  // every window ending after the initial watermark (24, one before the
  // first arrival).
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 30}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{1, 0, 20, 30}]), 1.0);
  // Windows ending at or before the initial watermark were never triggered;
  // a late tuple must not resurrect them as "updates" to results nobody saw.
  EXPECT_EQ(fin.count({1, 0, 0, 10}), 0u);
}

TEST(SlicingOoo, WatermarksAreMonotonic) {
  GeneralSlicingOperator op(OooOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(5, 1, 0));
  op.ProcessWatermark(20);
  const size_t first = op.TakeResults().size();
  EXPECT_GT(first, 0u);
  op.ProcessWatermark(15);  // regression must be ignored
  EXPECT_TRUE(op.TakeResults().empty());
}

TEST(SlicingOoo, EvictionRespectsAllowedLateness) {
  GeneralSlicingOperator op(OooOpts(/*lateness=*/50));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  for (int i = 0; i < 500; ++i) {
    op.ProcessTuple(T(i, 1.0, static_cast<uint64_t>(i)));
    if (i % 100 == 99) op.ProcessWatermark(i - 10);
  }
  // Horizon = window length + lateness = 60ms: ~6-8 slices remain.
  EXPECT_LE(op.time_store()->NumSlices(), 10u);
  EXPECT_GE(op.time_store()->NumSlices(), 5u);
}

TEST(SlicingOoo, ForceStoreTuplesOverrideRetainsTuples) {
  GeneralSlicingOperator::Options o = OooOpts();
  o.force_store_tuples = true;
  GeneralSlicingOperator op(o);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  RunStream(op, {T(1, 1), T(2, 2)}, 0);
  EXPECT_TRUE(op.queries().StoreTuples());
  EXPECT_FALSE(op.time_store()->At(0).tuples().empty());
}

TEST(SlicingOoo, MemoryGrowsWithTupleStorageDecision) {
  auto run = [](bool force) {
    GeneralSlicingOperator::Options o = OooOpts(10000);
    o.force_store_tuples = force;
    GeneralSlicingOperator op(o);
    op.AddAggregation(MakeAggregation("sum"));
    op.AddWindow(std::make_shared<TumblingWindow>(1000));
    for (int i = 0; i < 5000; ++i) {
      op.ProcessTuple(T(i, 1.0, static_cast<uint64_t>(i)));
    }
    return op.MemoryUsageBytes();
  };
  EXPECT_GT(run(true), 4 * run(false));
}

TEST(SlicingOoo, RemoveWindowDropsTuplesWhenNoLongerNeeded) {
  GeneralSlicingOperator op(OooOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  const int concat_forcer =
      op.AddWindow(std::make_shared<TumblingWindow>(10, Measure::kCount));
  EXPECT_TRUE(op.queries().StoreTuples());  // count measure + OOO stream
  op.ProcessTuple(T(1, 1, 0));
  op.ProcessTuple(T(2, 2, 1));
  EXPECT_FALSE(op.time_store()->At(0).tuples().empty());
  op.RemoveWindow(concat_forcer);
  EXPECT_FALSE(op.queries().StoreTuples());
  EXPECT_TRUE(op.time_store()->At(0).tuples().empty());
}

}  // namespace
}  // namespace scotty
