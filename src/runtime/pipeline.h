#ifndef SCOTTY_RUNTIME_PIPELINE_H_
#define SCOTTY_RUNTIME_PIPELINE_H_

#include <cstdint>

#include "core/window_operator.h"
#include "datagen/generators.h"

namespace scotty {

/// Single-threaded tuple-at-a-time driver: pulls tuples from a source into
/// a window operator, injecting periodic low-watermarks (paper Section 2).
/// This is our stand-in for the Flink task the paper deploys operators in.
struct PipelineOptions {
  /// Inject a watermark after every N tuples (0 disables watermarks —
  /// correct for streams declared in-order, which self-trigger).
  uint64_t watermark_every = 1024;
  /// Watermark = max event-time seen minus this delay (covers the maximum
  /// out-of-order delay of the stream).
  Time watermark_delay = 2000;
  /// Drain op.TakeResults() after every watermark (keeps memory flat).
  bool drain_results = true;
  /// Feed the operator through ProcessTupleBatch in blocks of this many
  /// tuples (0 or 1 keeps the tuple-at-a-time loop). Blocks never straddle
  /// a watermark boundary, so the item sequence the operator observes is
  /// identical to unbatched execution.
  uint64_t batch_size = 0;
};

struct PipelineReport {
  uint64_t tuples = 0;
  uint64_t results = 0;
  uint64_t updates = 0;
  double seconds = 0.0;

  double TuplesPerSecond() const {
    return seconds > 0 ? static_cast<double>(tuples) / seconds : 0.0;
  }
};

/// Runs up to `max_tuples` tuples through `op` and returns throughput and
/// result counts. Sends one final watermark at the maximum event time.
PipelineReport RunPipeline(TupleSource& src, WindowOperator& op,
                           uint64_t max_tuples, const PipelineOptions& opts);

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_PIPELINE_H_
