#ifndef SCOTTY_TESTS_TEST_UTIL_H_
#define SCOTTY_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "common/tuple.h"
#include "core/window_operator.h"

namespace scotty {
namespace testutil {

/// Shorthand tuple constructor; seq defaults to an auto-increasing counter
/// managed by the caller.
inline Tuple T(Time ts, double value, uint64_t seq = 0, int64_t key = 0) {
  Tuple t;
  t.ts = ts;
  t.value = value;
  t.seq = seq;
  t.key = key;
  return t;
}

/// Feeds tuples in vector order, assigning arrival sequence numbers, then a
/// final watermark; returns all emitted results.
inline std::vector<WindowResult> RunStream(WindowOperator& op,
                                           std::vector<Tuple> tuples,
                                           Time final_wm) {
  uint64_t seq = 0;
  for (Tuple& t : tuples) {
    t.seq = seq++;
    op.ProcessTuple(t);
  }
  op.ProcessWatermark(final_wm);
  return op.TakeResults();
}

/// Key identifying a window instance in the result stream.
using ResultKey = std::tuple<int, int, Time, Time>;  // window, agg, start, end

/// Final value per window instance: later emissions (allowed-lateness
/// updates) override earlier ones — the consumer-visible end state.
inline std::map<ResultKey, Value> FinalResults(
    const std::vector<WindowResult>& results) {
  std::map<ResultKey, Value> out;
  for (const WindowResult& r : results) {
    out[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
  }
  return out;
}

/// Reference (brute-force) aggregate of all tuples with start <= ts < end,
/// folded in (ts, seq) order — the semantic ground truth every operator must
/// match.
inline Value BruteForce(const AggregateFunction& fn, std::vector<Tuple> tuples,
                        Time start, Time end) {
  std::sort(tuples.begin(), tuples.end(), [](const Tuple& a, const Tuple& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.seq < b.seq;
  });
  Partial acc;
  for (const Tuple& t : tuples) {
    if (t.is_punctuation) continue;
    if (t.ts >= start && t.ts < end) fn.Combine(acc, fn.Lift(t));
  }
  return fn.Lower(acc);
}

/// Brute-force aggregate over ranks [cs, ce) in event-time order.
inline Value BruteForceCount(const AggregateFunction& fn,
                             std::vector<Tuple> tuples, int64_t cs,
                             int64_t ce) {
  std::sort(tuples.begin(), tuples.end(), [](const Tuple& a, const Tuple& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.seq < b.seq;
  });
  Partial acc;
  int64_t rank = 0;
  for (const Tuple& t : tuples) {
    if (t.is_punctuation) continue;
    if (rank >= cs && rank < ce) fn.Combine(acc, fn.Lift(t));
    ++rank;
  }
  return fn.Lower(acc);
}

/// Numeric comparison helper tolerant of both int64 and double payloads.
inline double Num(const Value& v) { return v.Numeric(); }

}  // namespace testutil
}  // namespace scotty

#endif  // SCOTTY_TESTS_TEST_UTIL_H_
