#include "testing/query_spec.h"

#include <cstdlib>
#include <memory>
#include <sstream>

#include "windows/frames.h"
#include "windows/multi_measure.h"
#include "windows/punctuation.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace testing {

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

bool ParsePositive(const std::string& s, Time* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0) return false;
  *out = static_cast<Time>(v);
  return true;
}

}  // namespace

std::string WindowSpec::ToString() const {
  const bool count = measure == Measure::kCount;
  std::ostringstream os;
  switch (kind) {
    case Kind::kTumbling:
      os << (count ? "ctumbling:" : "tumbling:") << length;
      break;
    case Kind::kSliding:
      os << (count ? "csliding:" : "sliding:") << length << ":" << slide;
      break;
    case Kind::kSession:
      os << "session:" << length;
      break;
    case Kind::kPunctuation:
      os << "punct";
      break;
    case Kind::kLastNEveryT:
      os << "lastn:" << length << ":" << slide;
      break;
    case Kind::kThresholdFrame:
      os << "frames:" << length;
      break;
  }
  return os.str();
}

WindowPtr WindowSpec::Instantiate() const {
  switch (kind) {
    case Kind::kTumbling:
      return std::make_shared<TumblingWindow>(length, measure);
    case Kind::kSliding:
      return std::make_shared<SlidingWindow>(length, slide, measure);
    case Kind::kSession:
      return std::make_shared<SessionWindow>(length);
    case Kind::kPunctuation:
      return std::make_shared<PunctuationWindow>();
    case Kind::kLastNEveryT:
      return std::make_shared<LastNEveryTWindow>(length, slide);
    case Kind::kThresholdFrame:
      return std::make_shared<ThresholdFrameWindow>(
          static_cast<double>(length));
  }
  return nullptr;
}

bool WindowSpec::Parse(const std::string& text, WindowSpec* out) {
  const std::vector<std::string> parts = SplitOn(text, ':');
  WindowSpec spec;
  const std::string& head = parts[0];
  if (head == "punct") {
    if (parts.size() != 1) return false;
    spec.kind = Kind::kPunctuation;
  } else if (head == "tumbling" || head == "ctumbling" || head == "session") {
    if (parts.size() != 2 || !ParsePositive(parts[1], &spec.length)) {
      return false;
    }
    spec.kind = head == "session" ? Kind::kSession : Kind::kTumbling;
    if (head == "ctumbling") spec.measure = Measure::kCount;
  } else if (head == "sliding" || head == "csliding") {
    if (parts.size() != 3 || !ParsePositive(parts[1], &spec.length) ||
        !ParsePositive(parts[2], &spec.slide)) {
      return false;
    }
    spec.kind = Kind::kSliding;
    if (head == "csliding") spec.measure = Measure::kCount;
  } else if (head == "lastn") {
    if (parts.size() != 3 || !ParsePositive(parts[1], &spec.length) ||
        !ParsePositive(parts[2], &spec.slide)) {
      return false;
    }
    spec.kind = Kind::kLastNEveryT;
  } else if (head == "frames") {
    if (parts.size() != 2 || !ParsePositive(parts[1], &spec.length)) {
      return false;
    }
    spec.kind = Kind::kThresholdFrame;
  } else {
    return false;
  }
  *out = spec;
  return true;
}

std::string WindowSpecsToString(const std::vector<WindowSpec>& specs) {
  std::string out;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (i > 0) out += ",";
    out += specs[i].ToString();
  }
  return out;
}

bool ParseWindowSpecs(const std::string& text, std::vector<WindowSpec>* out) {
  out->clear();
  if (text.empty()) return false;
  for (const std::string& part : SplitOn(text, ',')) {
    WindowSpec spec;
    if (!WindowSpec::Parse(part, &spec)) return false;
    out->push_back(spec);
  }
  return true;
}

}  // namespace testing
}  // namespace scotty
