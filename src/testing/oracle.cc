#include "testing/oracle.h"

#include <cassert>

#include "aggregates/registry.h"

namespace scotty {
namespace testing {

namespace {

/// Folds `fn` over data[lo, hi) (already in (ts, seq) order).
Value FoldRange(const AggregateFunction& fn, const std::vector<Tuple>& data,
                size_t lo, size_t hi) {
  Partial acc;
  for (size_t i = lo; i < hi; ++i) fn.Combine(acc, fn.Lift(data[i]));
  return fn.Lower(acc);
}

/// First index in `data` (sorted by ts) with ts >= t.
size_t LowerIdx(const std::vector<Tuple>& data, Time t) {
  return static_cast<size_t>(
      std::lower_bound(data.begin(), data.end(), t,
                       [](const Tuple& a, Time x) { return a.ts < x; }) -
      data.begin());
}

}  // namespace

std::map<ResultKey, Value> OracleResults(
    const std::vector<WindowSpec>& windows,
    const std::vector<std::string>& aggs, const std::vector<Tuple>& tuples,
    Time final_wm) {
  std::map<ResultKey, Value> out;
  if (tuples.empty()) return out;
  const Time first_cut = tuples.front().ts;  // first arrival, any tuple kind

  // Event-time ordered views: `data` (aggregation input, punctuation
  // excluded) and `all_ts` / `punct_ts` (window context).
  std::vector<Tuple> data;
  std::vector<Time> all_ts;
  std::vector<Time> punct_ts;
  for (const Tuple& t : tuples) {
    all_ts.push_back(t.ts);
    if (t.is_punctuation) {
      punct_ts.push_back(t.ts);
    } else {
      data.push_back(t);
    }
  }
  std::sort(data.begin(), data.end(), [](const Tuple& a, const Tuple& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.seq < b.seq;
  });
  std::sort(all_ts.begin(), all_ts.end());
  std::sort(punct_ts.begin(), punct_ts.end());
  punct_ts.erase(std::unique(punct_ts.begin(), punct_ts.end()),
                 punct_ts.end());

  std::vector<AggregateFunctionPtr> fns;
  for (const std::string& name : aggs) {
    fns.push_back(MakeAggregation(name));
    assert(fns.back() != nullptr && "unknown aggregation name");
  }

  auto emit_time_window = [&](int wid, Time s, Time e) {
    const size_t lo = LowerIdx(data, s);
    const size_t hi = LowerIdx(data, e);
    for (size_t a = 0; a < fns.size(); ++a) {
      out[{wid, static_cast<int>(a), s, e}] = FoldRange(*fns[a], data, lo, hi);
    }
  };
  auto emit_count_window = [&](int wid, int64_t cs, int64_t ce) {
    for (size_t a = 0; a < fns.size(); ++a) {
      out[{wid, static_cast<int>(a), cs, ce}] =
          FoldRange(*fns[a], data, static_cast<size_t>(cs),
                    static_cast<size_t>(ce));
    }
  };

  const int64_t total_ranks = static_cast<int64_t>(data.size());
  for (size_t w = 0; w < windows.size(); ++w) {
    const WindowSpec& spec = windows[w];
    const int wid = static_cast<int>(w);
    switch (spec.kind) {
      case WindowSpec::Kind::kTumbling:
        if (spec.measure == Measure::kCount) {
          for (int64_t end = spec.length; end <= total_ranks;
               end += spec.length) {
            emit_count_window(wid, end - spec.length, end);
          }
        } else {
          // First end strictly after first_cut − 1, i.e. >= first_cut.
          Time end = ((first_cut + spec.length - 1) / spec.length) *
                     spec.length;
          if (end < spec.length) end = spec.length;
          for (; end <= final_wm; end += spec.length) {
            emit_time_window(wid, end - spec.length, end);
          }
        }
        break;
      case WindowSpec::Kind::kSliding:
        if (spec.measure == Measure::kCount) {
          for (int64_t end = spec.length; end <= total_ranks;
               end += spec.slide) {
            emit_count_window(wid, end - spec.length, end);
          }
        } else {
          // Ends lie at length + k*slide; report those in
          // [first_cut, final_wm].
          Time end = spec.length;
          if (end < first_cut) {
            const Time k = (first_cut - spec.length + spec.slide - 1) /
                           spec.slide;
            end = spec.length + k * spec.slide;
          }
          for (; end <= final_wm; end += spec.slide) {
            emit_time_window(wid, end - spec.length, end);
          }
        }
        break;
      case WindowSpec::Kind::kSession: {
        // Gap rule over ALL tuple timestamps (punctuation included).
        Time start = kNoTime;
        Time last = kNoTime;
        auto flush = [&] {
          if (start == kNoTime) return;
          const Time end = last + spec.length;
          if (end >= first_cut && end <= final_wm) {
            emit_time_window(wid, start, end);
          }
        };
        for (Time t : all_ts) {
          if (start == kNoTime || t >= last + spec.length) {
            flush();
            start = t;
          }
          last = t;
        }
        flush();
        break;
      }
      case WindowSpec::Kind::kPunctuation:
        for (size_t i = 1; i < punct_ts.size(); ++i) {
          const Time s = punct_ts[i - 1];
          const Time e = punct_ts[i];
          if (e >= first_cut && e <= final_wm) emit_time_window(wid, s, e);
        }
        break;
      case WindowSpec::Kind::kLastNEveryT: {
        // "Last N tuples every T time units": ends at period multiples
        // strictly after the first-arrival baseline; the start is the
        // timestamp of the N-th most recent data tuple before the end
        // (skipped while fewer than N exist). Mirrors
        // LastNEveryTWindow::TriggerWindows over a complete store.
        const Time period = spec.slide;
        const int64_t nlast = spec.length;
        for (Time end = ((first_cut - 1) / period + 1) * period;
             end <= final_wm; end += period) {
          const int64_t avail =
              static_cast<int64_t>(LowerIdx(data, end));
          if (avail < nlast) continue;
          const Time start = data[static_cast<size_t>(avail - nlast)].ts;
          emit_time_window(wid, start, end);
        }
        break;
      }
      case WindowSpec::Kind::kThresholdFrame: {
        // Threshold frames: a frame opens at the first qualifying timestamp
        // after a break (or stream start) and closes at the next break. The
        // aggregate covers ALL data tuples in [start, end) — the slices do
        // not filter by qualification. Mirrors
        // ThresholdFrameWindow::TriggerWindows.
        const double threshold = static_cast<double>(spec.length);
        std::vector<Time> quals;
        std::vector<Time> breaks;
        for (const Tuple& t : data) {
          (t.value >= threshold ? quals : breaks).push_back(t.ts);
        }
        auto dedup = [](std::vector<Time>* v) {
          std::sort(v->begin(), v->end());
          v->erase(std::unique(v->begin(), v->end()), v->end());
        };
        dedup(&quals);
        dedup(&breaks);
        auto last_below = [](const std::vector<Time>& v, Time t) {
          auto it = std::lower_bound(v.begin(), v.end(), t);
          return it == v.begin() ? kNoTime : *(it - 1);
        };
        auto first_above = [](const std::vector<Time>& v, Time t) {
          auto it = std::upper_bound(v.begin(), v.end(), t);
          return it == v.end() ? kMaxTime : *it;
        };
        for (Time q : quals) {
          const Time prev_qual = last_below(quals, q);
          const Time prev_break = last_below(breaks, q);
          if (prev_qual != kNoTime && prev_qual > prev_break) continue;
          const Time end = first_above(breaks, q);
          if (end == kMaxTime) continue;  // frame still open
          if (end >= first_cut && end <= final_wm) {
            emit_time_window(wid, q, end);
          }
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace testing
}  // namespace scotty
