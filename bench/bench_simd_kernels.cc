// Scalar vs SIMD column-kernel microbenchmark (the EXPERIMENTS.md §9 table).
//
// Measures the raw fold kernels of aggregates/kernels.h — SumColumn,
// MinColumn, MaxColumn, MonotoneRunLength — in every mode this binary+CPU
// supports, over a column that fits in L1 (4096 elements) so the numbers
// reflect kernel arithmetic, not memory bandwidth. Each (kernel, mode) pair
// reports elements/s, best of several passes.
//
// Note the asymmetry the bit-identity contract forces: SumColumn keeps the
// serial left-to-right fold in every mode (reassociation would change
// rounding), so its "SIMD" rows measure dispatch overhead only and should
// be flat; Min/Max fold lane-parallel and show the real vector win;
// MonotoneRunLength vectorizes only under AVX2 (64-bit compares).
//
// Rows append to BENCH_throughput.json, figure `simd_kernels`.

#include <chrono>
#include <cstdio>
#include <limits>
#include <string>

#include "aggregates/kernels.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/tuple_batch.h"

namespace scotty {
namespace bench {
namespace {

constexpr size_t kN = 4096;
constexpr int kPasses = 5;
constexpr double kPassSeconds = 0.15;

alignas(kBatchAlignBytes) double g_values[kN];
alignas(kBatchAlignBytes) Time g_ts[kN];

/// Best-of-passes rate for one kernel closure. `fold` must return a value
/// that depends on the data so the loop cannot be optimized away; the
/// running checksum is printed once at the end for the same reason.
double g_sink = 0.0;

template <typename Fold>
double MeasureElemsPerSecond(const Fold& fold) {
  double best = 0.0;
  for (int pass = 0; pass < kPasses; ++pass) {
    uint64_t iters = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      g_sink += fold();
      ++iters;
      if ((iters & 0xFF) == 0) {
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      }
    } while (elapsed < kPassSeconds);
    const double rate = static_cast<double>(iters) * kN / elapsed;
    if (rate > best) best = rate;
  }
  return best;
}

void Run() {
  PrintHeader("simd_kernels",
              "column fold kernels, elements/s per dispatch mode");
  Rng rng(2024);
  Time t = 0;
  for (size_t i = 0; i < kN; ++i) {
    g_values[i] = (static_cast<double>(rng.NextBounded(2000)) - 997.0) / 7.0;
    t += static_cast<Time>(rng.NextBounded(3));
    g_ts[i] = t;
  }
  const Time bound = std::numeric_limits<Time>::max();

  for (const simd::KernelMode m :
       {simd::KernelMode::kScalar, simd::KernelMode::kSse2,
        simd::KernelMode::kAvx2}) {
    simd::SetModeForTesting(m);
    if (simd::ActiveMode() != m) continue;  // not supported by binary/CPU
    const std::string mode = simd::ModeName(m);
    EmitRow("simd_kernels", "sum/" + mode, std::to_string(kN),
            MeasureElemsPerSecond(
                [] { return simd::SumColumn(g_values, kN, 0.0); }),
            "elems/s");
    EmitRow("simd_kernels", "min/" + mode, std::to_string(kN),
            MeasureElemsPerSecond([] {
              return simd::MinColumn(
                  g_values, kN, std::numeric_limits<double>::infinity());
            }),
            "elems/s");
    EmitRow("simd_kernels", "max/" + mode, std::to_string(kN),
            MeasureElemsPerSecond([] {
              return simd::MaxColumn(
                  g_values, kN, -std::numeric_limits<double>::infinity());
            }),
            "elems/s");
    EmitRow("simd_kernels", "run-scan/" + mode, std::to_string(kN),
            MeasureElemsPerSecond([bound] {
              return static_cast<double>(
                  simd::MonotoneRunLength(g_ts, kN, 0, bound));
            }),
            "elems/s");
  }
  simd::SetModeForTesting(simd::KernelMode::kAuto);
  std::printf("# checksum %.6g\n", g_sink);
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
