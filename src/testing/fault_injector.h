#ifndef SCOTTY_TESTING_FAULT_INJECTOR_H_
#define SCOTTY_TESTING_FAULT_INJECTOR_H_

// Fault injection for the checkpoint/recovery path (DESIGN.md §7).
//
// A FaultPlan fully determines one simulated failure: the checkpoints are
// persisted in one of three modes (sync-full, sync-incremental,
// async-incremental), the process "dies" at a random tuple index
// (in-memory operator state is discarded, queued async persists are
// abandoned), and the on-disk checkpoint chain is optionally damaged — the
// newest base snapshot torn (truncated mid-payload) or corrupted (single
// bit flip), the newest delta-log segment torn or corrupted, or the newest
// base deleted out from under its live deltas.
// RunToFinalResultsCrashRecovered then recovers exactly like a production
// restart would — newest valid base plus its valid delta prefix, falling
// back past damaged files, from scratch when nothing validates — replays
// the remainder of the stream, and returns the merged downstream view. The
// differential fuzzer's --crash dimension requires that view to be
// bit-identical to the same technique's unfaulted run, for every
// persistence mode; its rescale twin additionally restores onto a
// different worker count (RunKeyedRescaleCrashRecovered).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/overload.h"
#include "testing/harness.h"

namespace scotty {
namespace testing {

/// What happens to the newest snapshot file after the simulated crash.
enum class SnapshotFault : uint8_t {
  kNone,      ///< crash only; every snapshot file stays intact
  kTruncate,  ///< cut the newest file short in place (torn write)
  kBitFlip,   ///< flip one bit of the newest file (media corruption)
};

/// What happens to the incremental-checkpoint files after the crash.
enum class DeltaFault : uint8_t {
  kNone,            ///< delta log stays intact
  kTruncateTail,    ///< cut the newest delta-log segment short (torn append)
  kBitFlip,         ///< flip one bit of the newest segment (corruption)
  kDropNewestBase,  ///< delete the newest base .snap, orphaning its segment
};

/// How phase one persists its barriers — the three coordinator modes the
/// crash sweep must all survive.
enum class PersistMode : uint8_t {
  kSyncFull,          ///< full snapshot, fsync on the barrier path
  kSyncIncremental,   ///< base + deltas, each barrier durable before return
  kAsyncIncremental,  ///< base + deltas on the background persist thread
};

/// One deterministic failure scenario. `fault_arg`/`delta_fault_arg` are
/// raw RNG material the fault application derives truncation points / flip
/// offsets from, so a (seed, num_tuples) pair replays the exact same
/// damage.
struct FaultPlan {
  uint64_t crash_index = 0;  ///< crash fires just before this tuple index
  SnapshotFault fault = SnapshotFault::kNone;
  uint64_t fault_arg = 0;
  PersistMode mode = PersistMode::kSyncFull;
  DeltaFault delta_fault = DeltaFault::kNone;
  uint64_t delta_fault_arg = 0;
};

/// Derives a plan from `seed`: crash index uniform in [1, num_tuples],
/// roughly half the seeds additionally damage the newest snapshot
/// (truncation and bit flips equally likely), persistence mode uniform over
/// the three modes, and — in the incremental modes — roughly half the seeds
/// additionally fault the delta chain (torn segment tail, segment bit flip,
/// or a deleted base under live deltas).
FaultPlan MakeFaultPlan(uint64_t seed, size_t num_tuples);

/// Applies a fault kind to an arbitrary file in place (no temp + rename —
/// this models damage that bypasses the atomic-write protocol, e.g. a torn
/// sector). kNone is a no-op. Returns false only on an I/O error; an empty
/// file is left as is.
bool ApplyFileFault(const std::string& path, SnapshotFault fault,
                    uint64_t fault_arg);

/// ApplyFileFault with `plan.fault`/`plan.fault_arg` (the newest-snapshot
/// fault of the plan).
bool ApplySnapshotFault(const std::string& path, const FaultPlan& plan);

/// Observability for one crash-recovery run, mostly for tests.
struct CrashRunStats {
  uint64_t barriers = 0;  ///< checkpoints scheduled before the crash
  bool recovered_from_scratch = false;  ///< no snapshot validated
  bool fell_back = false;  ///< a newer snapshot was rejected during recovery
  std::string path_used;   ///< snapshot file recovery restored from
  uint64_t deltas_applied = 0;  ///< delta records replayed on the base
  bool delta_tail_rejected = false;  ///< damaged delta tail was discarded
};

/// Crash-recovering twin of RunToFinalResults. Phase one runs a fresh
/// operator from `factory` with the identical tuple/watermark cadence,
/// persisting a snapshot through a CheckpointCoordinator (retain = 3) at
/// every watermark barrier — results are drained BEFORE each barrier, so
/// the `delivered` map models output a downstream consumer durably holds at
/// crash time. At `plan.crash_index` the operator is destroyed, the newest
/// snapshot file is damaged per the plan, and recovery restores from the
/// newest snapshot that validates (or from scratch when none does) and
/// replays the remainder. `*out` receives the downstream merge: delivered
/// results overlaid by everything the recovered run emitted. The contract
/// enforced by the --crash fuzz dimension: `*out` equals the unfaulted
/// run's final results EXACTLY (restore is bit-identical, so even
/// order-dependent floating-point aggregations may not drift).
///
/// `scratch_dir` is created fresh (any previous contents removed) and
/// deleted again on success. Returns false with `*error` set on harness
/// failures — including recovery invariant violations: recovery failing
/// while intact snapshots exist, fallback failing past a single damaged
/// file, or a damaged file validating.
bool RunToFinalResultsCrashRecovered(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    const FaultPlan& plan, const std::string& scratch_dir,
    std::map<ResultKey, Value>* out, std::string* error,
    CrashRunStats* stats = nullptr);

/// Result identity for keyed pipelines: ResultKey alone would collide
/// across partition keys, so the key joins the tuple.
using KeyedResultKey = std::tuple<int64_t, int, int, Time, Time>;

/// Reference run for the rescaling harness: one keyed operator from
/// `factory` over the whole stream with the harness cadence (identical to
/// any worker partitioning, since keys never interact).
bool RunKeyedToFinalResults(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    std::map<KeyedResultKey, Value>* out, std::string* error);

/// Crash-recovery with a topology change: phase one runs `from_workers`
/// deterministic keyed workers (tuples routed by
/// ParallelExecutor::WorkerIndexForKey, watermarks broadcast — the exact
/// item sequences the threaded executor produces), persisting a combined
/// worker-state blob through a CheckpointCoordinator in `plan.mode` at
/// every watermark barrier. At `plan.crash_index` the workers die, the
/// newest snapshot is damaged per the plan, and recovery restores the
/// newest valid blob onto `to_workers` fresh workers — re-partitioning
/// per-key state when the counts differ — and replays the remainder.
/// `*out` receives the downstream merge (delivered overlaid by replayed),
/// which must equal RunKeyedToFinalResults on the same stream EXACTLY.
/// `factory` must produce KeyedWindowOperator instances; anything else
/// fails the re-partition step by design.
bool RunKeyedRescaleCrashRecovered(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    const FaultPlan& plan, const std::string& scratch_dir, size_t from_workers,
    size_t to_workers, std::map<KeyedResultKey, Value>* out,
    std::string* error, CrashRunStats* stats = nullptr);

/// One deterministic overload scenario for the --overload fuzz dimension:
/// a consumer stall (the real SPSC-backpressure driver), optionally slow
/// persists and a sustained persist-failure sequence. All windows are in
/// producer tuple indices — the producer toggles the injection flags as it
/// crosses them, so the schedule replays from the seed even though the
/// resulting shed set is timing-dependent (the oracle is valid for ANY
/// shed set; see RunOverloadedToFinalResults).
struct OverloadPlan {
  uint64_t stall_from = 0;  ///< consumer stall while feeding [from, to)
  uint64_t stall_to = 0;
  uint32_t stall_us = 0;    ///< per worker-loop tick sleep while stalled
  uint64_t slow_from = 0;   ///< slow-persist injection while in [from, to)
  uint64_t slow_to = 0;
  uint32_t slow_ms = 0;     ///< per persist-operation delay
  uint64_t fail_from = 0;   ///< every persist attempt fails in [from, to)
  uint64_t fail_to = 0;
};

/// Derives an overload plan from `seed`: a consumer stall is always
/// present (pressure is the point), slow persists and sustained persist
/// failures each on roughly half the seeds.
OverloadPlan MakeOverloadPlan(uint64_t seed, size_t num_tuples);

/// Observability for one overloaded run.
struct OverloadRunStats {
  OverloadStats admission;        ///< producer-side admission counters
  CheckpointHealthReport health;  ///< coordinator report after final flush
  uint64_t barriers = 0;          ///< barriers offered to the coordinator
};

/// Overloaded twin of RunToFinalResults: drives the stream through a
/// 1-worker ParallelExecutor (tiny ring, per-tuple pushes) under a
/// BackpressureController, with the plan's consumer stall and persistence
/// faults injected, checkpointing through an auto-fallback async
/// coordinator at every watermark barrier. Data tuples the controller
/// sheds — or whose bounded-blocking push times out — are recorded in
/// `*ledger` and never enter the pipeline; punctuation and watermarks are
/// NEVER shed (a watermark failing its generous bounded push is a harness
/// error, not a shed). Watermark cadence counts shed tuples too, so
/// trigger edges are identical to the unfaulted run.
///
/// The oracle contract this enables (--overload dimension, for
/// deterministic-edge time windows): for every window of the unfaulted
/// run, either the ledger records no shed timestamp in [start, end) and
/// the delivered result is bit-identical, or the ledger overlaps the
/// window and the delivered result may differ or be absent (flagged
/// approximate). Delivered windows are always a subset of the unfaulted
/// run's windows. This holds for ANY shed set, so the check is free of
/// timing assumptions.
bool RunOverloadedToFinalResults(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    const OverloadPlan& plan, const std::string& scratch_dir,
    std::map<ResultKey, Value>* out, ShedLedger* ledger, std::string* error,
    OverloadRunStats* stats = nullptr);

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_FAULT_INJECTOR_H_
