#include "datagen/replayer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace scotty {

bool CsvReplaySource::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  tuples_.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string ts_s;
    std::string value_s;
    std::string key_s;
    if (!std::getline(ss, ts_s, ',') || !std::getline(ss, value_s, ',')) {
      continue;  // malformed line: skip, keep replaying the rest
    }
    std::getline(ss, key_s, ',');  // key column is optional
    Tuple t;
    t.ts = std::strtoll(ts_s.c_str(), nullptr, 10);
    t.value = std::strtod(value_s.c_str(), nullptr);
    t.key = key_s.empty() ? 0 : std::strtoll(key_s.c_str(), nullptr, 10);
    tuples_.push_back(t);
  }
  Rewind();
  return !tuples_.empty();
}

bool CsvReplaySource::Next(Tuple* out) {
  if (tuples_.empty()) return false;
  if (pos_ >= tuples_.size()) {
    if (loop_ + 1 >= loops_) return false;
    ++loop_;
    pos_ = 0;
  }
  *out = tuples_[pos_++];
  if (loop_ > 0 && !tuples_.empty()) {
    // Shift repeated passes so event time keeps advancing.
    const Time span = tuples_.back().ts - tuples_.front().ts + 1;
    out->ts += span * loop_;
  }
  out->seq = seq_++;
  return true;
}

bool CsvReplaySource::Dump(const std::string& path, TupleSource& src,
                           uint64_t max_tuples) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# ts,value,key\n";
  Tuple t;
  for (uint64_t i = 0; i < max_tuples && src.Next(&t); ++i) {
    out << t.ts << ',' << t.value << ',' << t.key << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace scotty
