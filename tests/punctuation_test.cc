// Operator-level punctuation-window (FCF) tests: in-order cheap cuts,
// out-of-order punctuation splits with recomputation from stored tuples.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/punctuation.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::Num;
using testutil::RunStream;
using testutil::T;

Tuple Punct(Time ts) {
  Tuple t = testutil::T(ts, 0);
  t.is_punctuation = true;
  return t;
}

GeneralSlicingOperator::Options Opts(bool in_order, Time lateness = 1000) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = in_order;
  o.allowed_lateness = lateness;
  return o;
}

TEST(PunctuationSlicing, InOrderWindowsBetweenMarkers) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<PunctuationWindow>());
  auto fin = FinalResults(RunStream(
      op,
      {Punct(0), T(1, 1), T(3, 2), Punct(5), T(7, 4), Punct(12), T(13, 8),
       Punct(20)},
      25));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 5}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 5, 12}]), 4.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 12, 20}]), 8.0);
}

TEST(PunctuationSlicing, InOrderNeedsNoTupleStorageAndNoRecompute) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<PunctuationWindow>());
  EXPECT_FALSE(op.queries().StoreTuples());
  RunStream(op, {Punct(0), T(1, 1), Punct(5), T(7, 2), Punct(10)}, 20);
  EXPECT_EQ(op.stats().slice_recomputes, 0u);
}

TEST(PunctuationSlicing, OutOfOrderPunctuationSplitsSlice) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<PunctuationWindow>());
  EXPECT_TRUE(op.queries().StoreTuples());  // FCF + OOO stores tuples
  std::vector<Tuple> tuples = {Punct(0),  T(2, 1),  T(6, 2),
                               Punct(10), T(12, 4), Punct(8)};
  auto fin = FinalResults(RunStream(op, tuples, 20));
  // The late marker at 8 splits [0,10) into [0,8) and [8,10).
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 8}]), 3.0);
  EXPECT_TRUE((fin[{0, 0, 8, 10}]).IsEmpty());
  EXPECT_GT(op.stats().slice_splits, 0u);
}

TEST(PunctuationSlicing, OutOfOrderPunctuationSplitsTuplesCorrectly) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<PunctuationWindow>());
  std::vector<Tuple> tuples = {Punct(0),  T(2, 1),  T(6, 2), T(9, 8),
                               Punct(10), T(12, 4), Punct(5)};
  auto fin = FinalResults(RunStream(op, tuples, 20));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 5}]), 1.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 5, 10}]), 10.0);
}

TEST(PunctuationSlicing, LateDataTupleUpdatesEmittedPunctWindow) {
  GeneralSlicingOperator op(Opts(false, /*lateness=*/100));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<PunctuationWindow>());
  uint64_t seq = 0;
  for (Tuple t : {Punct(0), T(2, 1), Punct(10), T(12, 2)}) {
    t.seq = seq++;
    op.ProcessTuple(t);
  }
  op.ProcessWatermark(11);  // emits [0, 10) = 1
  op.TakeResults();
  Tuple late = T(4, 5, seq++);
  op.ProcessTuple(late);
  auto updates = op.TakeResults();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_TRUE(updates[0].is_update);
  EXPECT_EQ(updates[0].start, 0);
  EXPECT_EQ(updates[0].end, 10);
  EXPECT_DOUBLE_EQ(Num(updates[0].value), 6.0);
}

TEST(PunctuationSlicing, CoexistsWithTumblingQueries) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  const int punct = op.AddWindow(std::make_shared<PunctuationWindow>());
  const int tumb = op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {Punct(0), T(2, 1), T(7, 2), Punct(13), T(14, 4), Punct(25)}, 30));
  EXPECT_DOUBLE_EQ(Num(fin[{punct, 0, 0, 13}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{punct, 0, 13, 25}]), 4.0);
  EXPECT_DOUBLE_EQ(Num(fin[{tumb, 0, 0, 10}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{tumb, 0, 10, 20}]), 4.0);
}

TEST(PunctuationSlicing, MedianOverPunctuationWindows) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("median"));
  op.AddWindow(std::make_shared<PunctuationWindow>());
  auto fin = FinalResults(RunStream(
      op, {Punct(0), T(1, 9), T(2, 1), T(3, 5), Punct(10)}, 20));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 5.0);
}

}  // namespace
}  // namespace scotty
