// Ablation study of general slicing's design choices (DESIGN.md Section 5).
// Not a paper figure; quantifies each adaptive mechanism in isolation:
//
//  A1 adaptive tuple storage:     decision-tree (drop tuples) vs forced
//                                 retention — memory and throughput.
//  A2 lazy vs eager store:        throughput cost of maintaining the
//                                 FlatFAT for the same workload.
//  A3 start-only slicing:         Cutty-style start-edges-only vs Pairs-
//                                 style start+end cuts on in-order streams.
//  A4 invertible count shifts:    TryRemove fast path vs always-recompute
//                                 (sum vs sum-no-invert on count windows).

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "windows/sliding.h"

namespace scotty {
namespace bench {
namespace {

GeneralSlicingOperator::Options Base(bool in_order, Time lateness) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = in_order;
  o.allowed_lateness = lateness;
  return o;
}

ThroughputResult Drive(GeneralSlicingOperator& op, double ooo_fraction) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options ooo;
  ooo.fraction = ooo_fraction;
  ooo.max_delay = 2000;
  OutOfOrderInjector src(&inner, ooo);
  return MeasureThroughput(op, src, 2'000'000, 0.8, 1024, 2000);
}

void Run() {
  PrintHeader("ablation", "design-choice ablations for general slicing");

  // A1: adaptive tuple storage (OOO stream, CF windows: tuples droppable).
  for (const bool force : {false, true}) {
    GeneralSlicingOperator::Options o = Base(false, 2000);
    o.force_store_tuples = force;
    GeneralSlicingOperator op(o);
    op.AddAggregation(MakeAggregation("sum"));
    AddWindows(op, DashboardTumblingWindows(20));
    const ThroughputResult r = Drive(op, 0.2);
    const std::string series =
        std::string("A1-storage/") + (force ? "forced-tuples" : "adaptive");
    PrintRow("ablation", series, "throughput", r.TuplesPerSecond(),
             "tuples/s");
    PrintRow("ablation", series, "memory",
             static_cast<double>(op.MemoryUsageBytes()), "bytes");
  }

  // A2: lazy vs eager store maintenance.
  for (const StoreMode mode : {StoreMode::kLazy, StoreMode::kEager}) {
    GeneralSlicingOperator::Options o = Base(false, 2000);
    o.store_mode = mode;
    GeneralSlicingOperator op(o);
    op.AddAggregation(MakeAggregation("sum"));
    AddWindows(op, DashboardTumblingWindows(20));
    const ThroughputResult r = Drive(op, 0.2);
    PrintRow("ablation",
             std::string("A2-store/") +
                 (mode == StoreMode::kLazy ? "lazy" : "eager"),
             "throughput", r.TuplesPerSecond(), "tuples/s");
  }

  // A3: slice-at-starts-only vs start+end cuts (in-order stream).
  for (const bool ends : {false, true}) {
    GeneralSlicingOperator::Options o = Base(true, 0);
    o.slice_at_window_ends = ends;
    GeneralSlicingOperator op(o);
    op.AddAggregation(MakeAggregation("sum"));
    op.AddWindow(std::make_shared<SlidingWindow>(17000, 3000));
    SensorStream src(SensorStream::Football());
    const ThroughputResult r =
        MeasureThroughput(op, src, 3'000'000, 0.8, /*wm_every=*/0);
    const std::string series =
        std::string("A3-edges/") + (ends ? "starts+ends" : "starts-only");
    PrintRow("ablation", series, "throughput", r.TuplesPerSecond(),
             "tuples/s");
    PrintRow("ablation", series, "slices-created",
             static_cast<double>(op.time_store()->SlicesCreated()), "slices");
  }

  // A4: invertibility fast path on count-measure shifts.
  for (const char* agg : {"sum", "sum-no-invert"}) {
    GeneralSlicingOperator op(Base(false, 2000));
    op.AddAggregation(MakeAggregation(agg));
    AddWindows(op, DashboardCountWindows(20));
    const ThroughputResult r = Drive(op, 0.2);
    PrintRow("ablation", std::string("A4-invert/") + agg, "throughput",
             r.TuplesPerSecond(), "tuples/s");
    PrintRow("ablation", std::string("A4-invert/") + agg, "recomputes",
             static_cast<double>(op.stats().slice_recomputes), "ops");
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
