#ifndef SCOTTY_QUERY_RETENTION_GUARD_H_
#define SCOTTY_QUERY_RETENTION_GUARD_H_

#include <algorithm>
#include <string>

#include "common/time.h"
#include "windows/window.h"

namespace scotty {

/// An edge-less, trigger-less window the QueryRegistry keeps at engine slot 0
/// to pin slice retention for its derived (Factor-Windows-rewritten) queries.
///
/// A derived query owns no engine window: its results are folded from the
/// slices of a coarser base window *after* the engine's ProcessWatermark
/// returns. Engine eviction, however, runs *inside* ProcessWatermark — on a
/// large watermark jump it would discard exactly the slices the
/// post-delegation derived evaluation still needs. The guard closes that
/// race: its EvictionSafePoint reports the registry-maintained floor (the
/// oldest slice any derived query could still read, given what it has
/// emitted so far), and the engine's safe point is the minimum across
/// windows, so slices at or after the floor survive the jump.
class RetentionGuardWindow : public ContextFreeWindow {
 public:
  std::string Name() const override { return "retention-guard"; }

  // No edges, no triggers: the guard contributes nothing to the slice
  // stream or the result stream.
  Time GetNextEdge(Time /*t*/) const override { return kMaxTime; }
  Time LastEdgeAtOrBefore(Time /*t*/) const override { return kNoTime; }
  bool IsWindowEdge(Time /*t*/) const override { return false; }
  void TriggerWindows(WindowCallback& /*callback*/, Time /*prev*/,
                      Time /*curr*/) override {}

  Time EvictionSafePoint(Time wm) const override {
    if (!active_) return wm;            // no derived queries: fully neutral
    if (floor_ == kNoTime) return kNoTime;  // un-emitted query: keep all
    return std::min(wm, floor_);
  }

  /// Registry hook. `active=false` makes the guard neutral (no derived
  /// queries registered); otherwise `floor` is the oldest time any derived
  /// query may still fold over, with kNoTime meaning "retain everything"
  /// (a derived query exists but has not emitted yet and has no horizon).
  void SetRetentionFloor(bool active, Time floor) {
    active_ = active;
    floor_ = floor;
  }

  Time retention_floor() const { return active_ ? floor_ : kMaxTime; }

  // Intentionally no SerializeState override: the registry recomputes the
  // floor from its restored query table before the next watermark, which is
  // the earliest point eviction can run again.

 private:
  bool active_ = false;
  Time floor_ = kNoTime;
};

}  // namespace scotty

#endif  // SCOTTY_QUERY_RETENTION_GUARD_H_
