#ifndef SCOTTY_QUERY_QUERY_REGISTRY_H_
#define SCOTTY_QUERY_QUERY_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/general_slicing_operator.h"
#include "query/query_def.h"
#include "query/retention_guard.h"
#include "query/window_desc.h"

namespace scotty {

class QueryBuilder;

/// Multi-query shared slicing (ROADMAP "Factor-Windows direction"): one
/// registry serves N concurrent window queries over one shared stream from a
/// single slice stream and a single AggregateStore, instead of running one
/// pipeline per query.
///
/// The registry owns one inner GeneralSlicingOperator ("the engine"). The
/// engine's StreamSlicer already slices at the union of all registered
/// windows' edges and its store already holds one partial per (slice, agg) —
/// so sharing is a matter of *planning* what each registered query adds:
///
///   - kShared:      the window is new — a fresh Window object joins the
///                   engine; its edges refine the shared slice stream.
///   - kSharedDedup: an identical window (same description) is already live —
///                   the query subscribes to the existing engine window and
///                   adds nothing. Identical aggregations (same registry
///                   name) are likewise computed once, whatever number of
///                   queries read them.
///   - kDerived:     a Factor-Windows rewrite (PAPERS.md, arXiv 2008.12379):
///                   a context-free time sliding/tumbling window whose length
///                   and slide are both multiples of a live tumbling window's
///                   length g folds over that base's g-granule partials
///                   (L/g combines per window) instead of registering its own
///                   edges — the engine's per-window trigger/slice cost for
///                   this query drops to zero and no new slice boundaries are
///                   created. Chosen when a base exists and the fold fan-in
///                   L/g stays within Options::max_rewrite_fan_in; the
///                   largest eligible g (fewest combines) wins.
///
/// Queries register before or during the stream. Mid-stream registrations
/// are limited to context-free time windows over already-registered
/// aggregation names (the engine's store cannot grow new aggregation columns
/// after the first tuple) and receive a *horizon*: only windows with
/// start >= horizon (the first instant after registration) are reported, so
/// a late-joining query never sees partially-observed history.
/// Deregistration drops the query's undelivered results and removes engine
/// windows that no remaining query (including derived dependents) needs; a
/// base window kept alive only by derived dependents keeps slicing but its
/// results are dropped at demux.
///
/// Results: the registry is itself a WindowOperator, so pipelines, the
/// parallel executor, and the checkpoint coordinator drive it like any other
/// operator. TakeResults() flattens all queries' results with globally dense
/// window ids (see GlobalWindowId) while agg ids stay local to the owning
/// query's def; TakeQueryResults(id) returns one query's results with both
/// ids local to its QueryDef. Each result is delivered exactly once, through
/// whichever accessor drains it first.
///
/// Snapshots: SerializeState writes the full query table (definitions,
/// plans, horizons, trigger progress, undelivered results) followed by the
/// engine state; DeserializeState rebuilds the engine and replays every
/// registration from its description before restoring engine state, so a
/// freshly constructed registry with the same Options — and nothing
/// registered — resumes bit-identically with all queries intact.
class QueryRegistry : public WindowOperator {
 public:
  using QueryId = int;
  static constexpr QueryId kInvalidQuery = -1;

  struct Options {
    GeneralSlicingOperator::Options engine;
    /// Factor-Windows rewrites on/off (off: every window plans kShared or
    /// kSharedDedup; useful as the cost-model ablation baseline).
    bool enable_rewrites = true;
    /// Cost bound for the rewrite: folding a derived window of length L
    /// over granules g costs L/g combines at trigger time, vs. the engine
    /// paying per-slice combine + trigger-heap work continuously for a
    /// native window. The rewrite wins until the fold fan-in gets large;
    /// beyond this bound the window registers natively.
    int max_rewrite_fan_in = 4096;
  };

  enum class PlanKind : uint8_t {
    kShared = 0,
    kSharedDedup = 1,
    kDerived = 2,
  };

  /// Introspection: how each window of a query was planned.
  struct QueryPlan {
    bool alive = false;
    Time horizon = kNoTime;
    std::vector<PlanKind> windows;
  };

  QueryRegistry() : QueryRegistry(Options{}) {}
  explicit QueryRegistry(Options opts);
  ~QueryRegistry() override = default;

  QueryRegistry(const QueryRegistry&) = delete;
  QueryRegistry& operator=(const QueryRegistry&) = delete;

  /// Registers a query; returns its id, or kInvalidQuery with *error set
  /// (unparseable window, unknown aggregation, or an unsupported mid-stream
  /// registration). Ids are never reused within a registry's lifetime.
  QueryId Register(const QueryDef& def, std::string* error = nullptr);

  /// Registers a query assembled with the fluent QueryBuilder. The builder
  /// must be portable (QueryBuilder::HasPortableDef()): custom aggregation
  /// functions or window objects have no textual description the registry
  /// could replan or snapshot from.
  QueryId Register(const QueryBuilder& builder, std::string* error = nullptr);

  /// Removes a query: undelivered results are dropped, engine windows no
  /// remaining query needs are removed. False if the id is unknown or
  /// already deregistered.
  bool Deregister(QueryId id);

  /// One query's pending results, window_id/agg_id local to its QueryDef
  /// (window_id indexes def.windows, agg_id indexes def.aggs).
  std::vector<WindowResult> TakeQueryResults(QueryId id);

  QueryPlan Plan(QueryId id) const;
  size_t ActiveQueries() const { return queries_.size(); }
  /// Live engine windows, excluding the retention guard.
  size_t EngineWindows() const;
  /// The dense id TakeResults() reports for a query's local window id.
  int GlobalWindowId(QueryId id, int local_window_id) const;

  GeneralSlicingOperator* engine() { return engine_.get(); }
  const GeneralSlicingOperator* engine() const { return engine_.get(); }
  const Options& options() const { return opts_; }

  void ProcessTuple(const Tuple& t) override;
  void ProcessTupleBatch(std::span<const Tuple> batch) override;
  void ProcessTupleColumns(const TupleColumnsView& cols) override;
  void ProcessWatermark(Time wm) override;
  std::vector<WindowResult> TakeResults() override;
  void TakeResultsInto(std::vector<WindowResult>* out) override;
  size_t MemoryUsageBytes() const override;
  std::string Name() const override;

  /// Shared pre-aggregation (runtime/parallel_executor.h): merges a
  /// thread-local pre-aggregated slice into the shared engine store and
  /// invalidates any cached derived-fold granules the merge touches.
  void MergePreAggregatedSlice(Time start, Time end, Time t_first, Time t_last,
                               uint64_t count,
                               std::span<const Partial> partials);

  bool SupportsSnapshot() const override { return true; }
  void SerializeState(state::Writer& w) const override;
  void DeserializeState(state::Reader& r) override;
  // Incremental checkpointing composes through the WindowOperator default
  // delta surface (a full-state delta); per-query dirty tracking is future
  // work (DESIGN.md section 10).

 private:
  struct DerivedPlan {
    int base_slot = -1;  // engine window id of the base tumbling window
    Time granule = 0;    // base tumbling length g
    Time length = 0;     // derived length L (multiple of g)
    Time slide = 0;      // derived slide S (multiple of g); == L for tumbling
    /// Engine watermark as of this window's last trigger sweep; windows with
    /// end in (prev_emit, watermark] are emitted by the next sweep. Also
    /// anchors the retention-guard floor: slices a window ending after
    /// prev_emit could read must survive engine eviction.
    Time prev_emit = kNoTime;
  };

  struct PlannedWindow {
    WindowDesc desc;
    PlanKind plan = PlanKind::kShared;
    int slot = -1;         // engine window id (shared/dedup); base (derived)
    WindowPtr enumerator;  // derived only: instance used to enumerate windows
    DerivedPlan derived;
  };

  struct Query {
    QueryId id = kInvalidQuery;
    Time horizon = kNoTime;  // only windows with start >= horizon reported
    int global_base = 0;     // first dense global window id (TakeResults)
    std::vector<PlannedWindow> windows;
    std::vector<int> agg_slots;         // local agg id -> engine agg slot
    std::vector<WindowResult> pending;  // local ids
  };

  /// Engine window id == index; slot 0 is always the retention guard.
  struct WindowSlot {
    std::string desc;  // "" for the guard
    WindowDesc parsed;
    int refs = 0;  // subscribing queries + derived dependents
    bool alive = false;
  };

  // (base_slot, granule start, engine agg slot) -> combined granule partial.
  using GranuleKey = std::tuple<int, Time, int>;

  void DrainEngine();
  void RebuildSubscribers();
  /// Derived sweep after any delegated call: mirrors the engine's late
  /// updates for the given late-tuple timestamps, triggers derived windows
  /// whose end the engine watermark passed, then refreshes the retention
  /// guard floor and prunes the granule cache.
  void AfterIngest(const std::vector<Time>& late_ts);
  void EmitDerived(Query& q, int local_window, Time prev, Time curr,
                   Time late_ts, bool is_update);
  const Partial& GranulePartial(int base_slot, Time start, Time granule,
                                int agg_slot);
  void InvalidateGranulesAt(Time ts);
  void InvalidateGranulesOverlapping(Time start, Time end);
  void UpdateRetentionFloor();
  /// Collects timestamps the engine will treat as late-but-admissible, for
  /// mirroring its EmitLateUpdates on derived windows.
  bool IsAdmissibleLate(Time ts) const;
  /// True when an in-order batch is internally sorted and starts at or above
  /// the engine watermark, so it cannot contain an admissible-late tuple and
  /// the batched engine path needs no late mirroring.
  bool InOrderBatchNeverLate(std::span<const Tuple> batch) const;

  Options opts_;
  std::unique_ptr<GeneralSlicingOperator> engine_;
  std::shared_ptr<RetentionGuardWindow> guard_;
  bool engine_started_ = false;
  bool has_derived_ = false;

  std::vector<WindowSlot> slots_;
  std::vector<std::string> agg_names_;  // engine agg slot -> registry name
  std::map<QueryId, Query> queries_;    // alive queries only
  QueryId next_query_id_ = 0;
  int next_global_window_ = 0;

  struct Subscriber {
    QueryId query = kInvalidQuery;
    int local_window = -1;
  };
  std::vector<std::vector<Subscriber>> slot_subs_;  // engine slot -> readers
  bool subs_stale_ = true;

  std::map<GranuleKey, Partial> granule_cache_;
  std::vector<WindowResult> engine_scratch_;
  std::vector<Time> late_scratch_;
};

}  // namespace scotty

#endif  // SCOTTY_QUERY_QUERY_REGISTRY_H_
