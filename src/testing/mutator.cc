#include "testing/mutator.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "aggregates/kernels.h"

namespace scotty {
namespace testing {

namespace {

constexpr int kMaxTuples = 4096;
constexpr size_t kMaxWindows = 4;
constexpr size_t kMaxAggs = 3;

/// Multiply-or-divide a positive quantity by a small factor — the generic
/// "nudge" all resize/retime operators share. Keeps the result in
/// [lo, hi].
Time NudgeTime(Rng& rng, Time v, Time lo, Time hi) {
  const Time factor = 1 + static_cast<Time>(rng.NextBounded(3));  // 1..3
  Time out = rng.NextBounded(2) == 0 ? v * factor : v / factor;
  if (rng.NextBounded(2) == 0) out += static_cast<Time>(rng.NextBounded(5));
  return std::clamp(out, lo, hi);
}

WindowSpec RandomWindow(Rng& rng, uint64_t value_range) {
  WindowSpec w;
  switch (rng.NextBounded(8)) {
    case 0:
      w.kind = WindowSpec::Kind::kTumbling;
      w.length = 5 + static_cast<Time>(rng.NextBounded(56));
      break;
    case 1:
      w.kind = WindowSpec::Kind::kSliding;
      w.length = 8 + static_cast<Time>(rng.NextBounded(73));
      w.slide = 1 + static_cast<Time>(
                        rng.NextBounded(static_cast<uint64_t>(w.length)));
      break;
    case 2:
      w.kind = WindowSpec::Kind::kSession;
      w.length = 8 + static_cast<Time>(rng.NextBounded(33));
      break;
    case 3:
      w.kind = WindowSpec::Kind::kTumbling;
      w.measure = Measure::kCount;
      w.length = 2 + static_cast<Time>(rng.NextBounded(19));
      break;
    case 4:
      w.kind = WindowSpec::Kind::kSliding;
      w.measure = Measure::kCount;
      w.length = 3 + static_cast<Time>(rng.NextBounded(22));
      w.slide = 1 + static_cast<Time>(
                        rng.NextBounded(static_cast<uint64_t>(w.length)));
      break;
    case 5:
      w.kind = WindowSpec::Kind::kLastNEveryT;
      w.length = 2 + static_cast<Time>(rng.NextBounded(14));
      w.slide = 5 + static_cast<Time>(rng.NextBounded(41));
      break;
    case 6:
      w.kind = WindowSpec::Kind::kThresholdFrame;
      w.length = 1 + static_cast<Time>(rng.NextBounded(value_range));
      break;
    default:
      w.kind = WindowSpec::Kind::kPunctuation;
      break;
  }
  return w;
}

/// The individual mutation operators. Each does one structural thing and
/// relies on Sanitize() for global invariants.
enum class Op {
  kReseed,
  kResize,
  kRetime,
  kRedisorder,
  kValueRange,
  kPunctuation,
  kWindowNudge,
  kWindowAdd,
  kWindowDrop,
  kAggAdd,
  kAggSwap,
  kDimensionShift,
  kFaultSiteShift,
  kCount,
};

void Apply(Op op, DifferentialConfig* cfg, Rng& rng) {
  StreamSpec& s = cfg->stream;
  switch (op) {
    case Op::kReseed:
      // New stream realization, same regime: the cheapest way to probe
      // whether a feature came from the shape or the particular sample.
      s.seed = rng.NextU64() | 1;
      break;
    case Op::kResize:
      s.num_tuples = static_cast<int>(
          NudgeTime(rng, s.num_tuples, 1, kMaxTuples));
      break;
    case Op::kRetime:
      // Timestamp dynamics: step range and gap structure.
      s.step_lo = static_cast<Time>(rng.NextBounded(3));
      s.step_hi = s.step_lo + 1 + static_cast<Time>(rng.NextBounded(6));
      if (rng.NextBounded(2) == 0) {
        s.gap_probability = rng.NextBounded(2) == 0 ? 0.0 : 0.05;
        s.gap_length = NudgeTime(rng, s.gap_length, 1, 400);
      }
      break;
    case Op::kRedisorder: {
      static const double kOoo[] = {0.0, 0.05, 0.2, 0.4, 0.7};
      s.ooo_fraction = kOoo[rng.NextBounded(5)];
      static const Time kDelay[] = {2, 4, 16, 60, 200};
      s.max_delay = kDelay[rng.NextBounded(5)];
      if (rng.NextBounded(2) == 0) {
        s.burst_probability = rng.NextBounded(2) == 0 ? 0.0 : 0.03;
        s.burst_length = 2 + static_cast<int>(rng.NextBounded(14));
      }
      break;
    }
    case Op::kValueRange:
      s.value_range = 1 + rng.NextBounded(rng.NextBounded(2) == 0 ? 8 : 200);
      break;
    case Op::kPunctuation:
      s.punctuation_probability =
          rng.NextBounded(3) == 0 ? 0.0 : 0.01 + 0.07 * rng.NextDouble();
      break;
    case Op::kWindowNudge: {
      WindowSpec& w =
          cfg->windows[rng.NextBounded(cfg->windows.size())];
      w.length = NudgeTime(rng, w.length, 1, 512);
      if (w.slide > 0) w.slide = NudgeTime(rng, w.slide, 1, 512);
      break;
    }
    case Op::kWindowAdd:
      if (cfg->windows.size() < kMaxWindows) {
        cfg->windows.push_back(RandomWindow(rng, s.value_range));
      }
      break;
    case Op::kWindowDrop:
      if (cfg->windows.size() > 1) {
        cfg->windows.erase(cfg->windows.begin() +
                           static_cast<long>(
                               rng.NextBounded(cfg->windows.size())));
      }
      break;
    case Op::kAggAdd:
      if (cfg->aggs.size() < kMaxAggs) {
        const auto& names = FuzzAggregationNames();
        cfg->aggs.push_back(names[rng.NextBounded(names.size())]);
      }
      break;
    case Op::kAggSwap: {
      const auto& names = FuzzAggregationNames();
      cfg->aggs[rng.NextBounded(cfg->aggs.size())] =
          names[rng.NextBounded(names.size())];
      break;
    }
    case Op::kDimensionShift: {
      static const int kWm[] = {0, 16, 64, 256};
      static const int kBatch[] = {0, 1, 7, 64, 333};
      static const char* kKernels[] = {"auto", "scalar", "sse2", "avx2"};
      switch (rng.NextBounded(6)) {
        case 0:
          cfg->wm_every = kWm[rng.NextBounded(4)];
          break;
        case 1:
          cfg->batch = kBatch[rng.NextBounded(5)];
          break;
        case 2:
          // Flip the ingest layout; SoA runs add the kernel cross-check.
          cfg->layout = rng.NextBounded(2) == 0 ? "aos" : "soa";
          break;
        case 3:
          cfg->kernel = kKernels[rng.NextBounded(4)];
          break;
        case 4:
          // Shared-registry arm: off, static companions, or seed-derived
          // companions with mid-stream membership dynamics.
          cfg->shared =
              rng.NextBounded(3) == 0
                  ? 0
                  : (rng.NextBounded(2) == 0
                         ? -1
                         : 1 + static_cast<int>(rng.NextBounded(4)));
          break;
        default:
          cfg->checkpoint =
              rng.NextBounded(2) == 0
                  ? 0
                  : 1 + static_cast<int>(rng.NextBounded(
                            static_cast<uint64_t>(
                                std::max(1, s.num_tuples))));
          break;
      }
      break;
    }
    case Op::kFaultSiteShift:
      // The crash/rescale/overload fault plans are derived from the stream
      // seed, so shifting the kill point (or toggling a whole dimension)
      // explores the persistence-mode × fault × position matrix.
      switch (rng.NextBounded(3)) {
        case 0:
          cfg->crash = rng.NextBounded(3) == 0
                           ? 0
                           : (rng.NextBounded(2) == 0
                                  ? -1
                                  : 1 + static_cast<int>(rng.NextBounded(
                                            static_cast<uint64_t>(std::max(
                                                1, s.num_tuples)))));
          break;
        case 1:
          cfg->rescale = rng.NextBounded(3) == 0
                             ? 0
                             : (rng.NextBounded(2) == 0
                                    ? -1
                                    : 1 + static_cast<int>(rng.NextBounded(
                                              static_cast<uint64_t>(std::max(
                                                  1, s.num_tuples)))));
          break;
        default:
          // The overload schedule is wholly seed-derived; the dimension is
          // effectively on/off (any non-zero value behaves like -1).
          cfg->overload = rng.NextBounded(3) == 0 ? 0 : -1;
          break;
      }
      break;
    case Op::kCount:
      break;
  }
}

}  // namespace

void Sanitize(DifferentialConfig* cfg) {
  StreamSpec& s = cfg->stream;
  s.num_tuples = std::clamp(s.num_tuples, 1, kMaxTuples);
  if (s.value_range == 0) s.value_range = 1;
  if (s.step_hi < s.step_lo) std::swap(s.step_lo, s.step_hi);
  if (s.step_hi == 0) s.step_hi = 1;
  if (s.gap_length <= 0) s.gap_length = 1;
  if (s.burst_length <= 0) s.burst_length = 1;
  s.gap_probability = std::clamp(s.gap_probability, 0.0, 0.5);
  s.burst_probability = std::clamp(s.burst_probability, 0.0, 0.5);
  s.punctuation_probability =
      std::clamp(s.punctuation_probability, 0.0, 0.5);
  s.ooo_fraction = std::clamp(s.ooo_fraction, 0.0, 1.0);
  if (s.ooo_fraction > 0 && s.max_delay <= 0) s.max_delay = 4;
  if (s.ooo_fraction == 0) s.burst_probability = 0;

  if (cfg->windows.empty()) cfg->windows.push_back(WindowSpec{});
  if (cfg->windows.size() > kMaxWindows) cfg->windows.resize(kMaxWindows);
  bool has_punct = false;
  bool has_frames = false;
  for (WindowSpec& w : cfg->windows) {
    if (w.length <= 0) w.length = 1;
    switch (w.kind) {
      case WindowSpec::Kind::kSliding:
        if (w.slide <= 0) w.slide = 1;
        w.slide = std::min(w.slide, w.length);
        if (w.measure == Measure::kCount && w.length < 2) w.length = 2;
        break;
      case WindowSpec::Kind::kTumbling:
        w.slide = 0;
        if (w.measure == Measure::kCount && w.length < 1) w.length = 1;
        break;
      case WindowSpec::Kind::kSession:
        w.slide = 0;
        break;
      case WindowSpec::Kind::kPunctuation:
        w.slide = 0;
        has_punct = true;
        break;
      case WindowSpec::Kind::kLastNEveryT:
        if (w.slide <= 0) w.slide = 1;
        break;
      case WindowSpec::Kind::kThresholdFrame:
        w.slide = 0;
        // Threshold inside the value range so qualifying and breaking
        // tuples both occur.
        w.length = std::clamp<Time>(
            w.length, 1, static_cast<Time>(s.value_range));
        has_frames = true;
        break;
    }
  }
  // Punctuation windows need punctuation to ever close; frames classify
  // per timestamp, so duplicate timestamps must be impossible.
  if (has_punct && s.punctuation_probability <= 0) {
    s.punctuation_probability = 0.03;
  }
  if (has_frames && s.step_lo == 0) s.step_lo = 1;
  if (s.step_hi < s.step_lo) s.step_hi = s.step_lo;

  if (cfg->aggs.empty()) cfg->aggs.push_back("sum");
  std::vector<std::string> deduped;
  for (const std::string& a : cfg->aggs) {
    if (std::find(deduped.begin(), deduped.end(), a) == deduped.end()) {
      deduped.push_back(a);
    }
  }
  if (deduped.size() > kMaxAggs) deduped.resize(kMaxAggs);
  cfg->aggs = std::move(deduped);

  cfg->wm_every = std::max(0, cfg->wm_every);
  cfg->batch = std::clamp(cfg->batch, 0, kMaxTuples);
  if (cfg->layout != "soa") cfg->layout = "aos";
  simd::KernelMode km;
  if (!simd::ParseMode(cfg->kernel, &km)) cfg->kernel = "auto";
  const int n = s.num_tuples;
  cfg->checkpoint = std::clamp(cfg->checkpoint, -1, n);
  cfg->crash = std::clamp(cfg->crash, -1, n);
  cfg->rescale = std::clamp(cfg->rescale, -1, n);
  cfg->shared = std::clamp(cfg->shared, -1, 16);
  cfg->overload = std::clamp(cfg->overload, -1, 1);
  // The persistence twins need at least one tuple on each side of the cut.
  if (n <= 1) {
    cfg->checkpoint = 0;
    cfg->crash = 0;
    cfg->rescale = 0;
    cfg->overload = 0;
  }
}

DifferentialConfig Mutate(const DifferentialConfig& cfg, Rng& rng) {
  DifferentialConfig out = cfg;
  const int steps = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < steps; ++i) {
    Apply(static_cast<Op>(
              rng.NextBounded(static_cast<uint64_t>(Op::kCount))),
          &out, rng);
  }
  Sanitize(&out);
  return out;
}

DifferentialConfig Splice(const DifferentialConfig& a,
                          const DifferentialConfig& b, Rng& rng) {
  DifferentialConfig out = rng.NextBounded(2) == 0 ? a : b;
  out.windows.clear();
  for (const WindowSpec& w : a.windows) {
    if (rng.NextBounded(2) == 0) out.windows.push_back(w);
  }
  for (const WindowSpec& w : b.windows) {
    if (rng.NextBounded(2) == 0) out.windows.push_back(w);
  }
  if (out.windows.empty()) {
    out.windows.push_back(rng.NextBounded(2) == 0 ? a.windows.front()
                                                  : b.windows.front());
  }
  out.aggs.clear();
  for (const std::string& g : a.aggs) {
    if (rng.NextBounded(2) == 0) out.aggs.push_back(g);
  }
  for (const std::string& g : b.aggs) {
    if (rng.NextBounded(2) == 0) out.aggs.push_back(g);
  }
  if (out.aggs.empty()) {
    out.aggs.push_back(rng.NextBounded(2) == 0 ? a.aggs.front()
                                               : b.aggs.front());
  }
  Sanitize(&out);
  return out;
}

}  // namespace testing
}  // namespace scotty
