// Live-visualization dashboard (the application of paper Section 6.4).
//
// A dashboard renders line charts of a 2000 Hz sensor stream at several
// zoom levels. Each zoom level is a tumbling window query; the M4
// aggregation [26] computes the min / max / first / last of every window —
// exactly the four values needed for pixel-perfect line rendering. All
// queries share one slicing operator, so every tuple is aggregated once,
// not once per zoom level.
//
//   $ ./examples/dashboard_m4

#include <cstdio>
#include <memory>
#include <vector>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "datagen/ooo_injector.h"
#include "runtime/pipeline.h"
#include "windows/tumbling.h"

int main() {
  using namespace scotty;

  // Sensor data arrives over the network: expect out-of-order tuples with
  // up to 2 s delay, and allow 2 s of lateness for corrections.
  GeneralSlicingOperator::Options options;
  options.stream_in_order = false;
  options.allowed_lateness = 2000;
  GeneralSlicingOperator op(options);
  op.AddAggregation(MakeAggregation("m4"));

  // Zoom levels: 1 s, 5 s, 20 s charts.
  const std::vector<Time> zoom_levels = {1000, 5000, 20000};
  for (Time len : zoom_levels) {
    op.AddWindow(std::make_shared<TumblingWindow>(len));
  }

  SensorStream sensor(SensorStream::Football());
  OutOfOrderInjector::Options ooo;
  ooo.fraction = 0.2;
  ooo.max_delay = 2000;
  OutOfOrderInjector src(&sensor, ooo);

  // Stream one minute of data with periodic watermarks.
  Tuple t;
  Time max_ts = kNoTime;
  uint64_t printed = 0;
  for (int i = 0; i < 2000 * 60; ++i) {
    src.Next(&t);
    if (t.ts > max_ts) max_ts = t.ts;
    op.ProcessTuple(t);
    if (i % 2048 == 0) {
      op.ProcessWatermark(max_ts - 2000);
      for (const WindowResult& r : op.TakeResults()) {
        if (r.value.IsEmpty()) continue;
        if (printed < 12 || r.is_update) {
          const M4Result& m4 = r.value.AsM4();
          std::printf(
              "%s zoom %lds  [%6ld, %6ld)  min=%5.0f max=%5.0f first=%5.0f "
              "last=%5.0f\n",
              r.is_update ? "UPDATE" : "chart ",
              static_cast<long>(zoom_levels[static_cast<size_t>(r.window_id)] /
                                1000),
              static_cast<long>(r.start), static_cast<long>(r.end), m4.min,
              m4.max, m4.first, m4.last);
          ++printed;
        }
      }
    }
    if (printed > 40) break;  // keep the demo output short
  }

  std::printf(
      "\nstats: %llu tuples, %llu out-of-order, %llu late (updates emitted), "
      "%llu windows, %.1f KiB state\n",
      static_cast<unsigned long long>(op.stats().tuples_processed),
      static_cast<unsigned long long>(op.stats().out_of_order_tuples),
      static_cast<unsigned long long>(op.stats().late_tuples),
      static_cast<unsigned long long>(op.stats().windows_emitted),
      static_cast<double>(op.MemoryUsageBytes()) / 1024.0);
  return 0;
}
