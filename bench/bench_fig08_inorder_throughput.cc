// Figure 8: In-order processing with context-free windows.
//
// Workload (paper Section 6.2.1): multiple concurrent tumbling-window
// queries with lengths equally distributed between 1 and 20 seconds, sum
// aggregation, in-order football stream. Compared techniques: lazy/eager
// general slicing, Pairs, Cutty, Buckets, Tuple Buffer, Aggregate Tree.
//
// Expected shape: all slicing techniques sustain millions of tuples/s and
// stay flat as concurrent windows grow; buckets degrade linearly with the
// number of concurrent windows; the aggregate tree pays O(log n) updates per
// tuple; the tuple buffer pays repeated per-window scans.

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace scotty {
namespace bench {
namespace {

void Run() {
  PrintHeader("fig08", "in-order throughput vs concurrent windows");
  const std::vector<int> window_counts = {1, 10, 100, 1000};
  const std::vector<Technique> techniques = {
      Technique::kLazySlicing, Technique::kEagerSlicing, Technique::kPairs,
      Technique::kCutty,       Technique::kBuckets,      Technique::kTupleBuffer,
      Technique::kAggregateTree};
  for (Technique tech : techniques) {
    for (int n : window_counts) {
      SensorStream src(SensorStream::Football());
      auto op = MakeTechnique(tech, /*stream_in_order=*/true,
                              /*allowed_lateness=*/0,
                              DashboardTumblingWindows(n), {"sum"});
      // In-order streams self-trigger; no watermarks needed.
      const ThroughputResult r =
          MeasureThroughput(*op, src, 3'000'000, 1.0, /*wm_every=*/0);
      EmitRow("fig08", TechniqueName(tech), std::to_string(n),
              r.TuplesPerSecond(), "tuples/s");
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
