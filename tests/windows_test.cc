// Unit tests for the window-type library: edge arithmetic, triggering,
// context classification, and session/punctuation state machines.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "windows/multi_measure.h"
#include "windows/punctuation.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::T;

class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override { wins.push_back({start, end}); }
  std::vector<std::pair<Time, Time>> wins;
};

// --------------------------- Tumbling ---------------------------

TEST(TumblingWindow, NextEdgeIsNextMultiple) {
  TumblingWindow w(10);
  EXPECT_EQ(w.GetNextEdge(0), 10);
  EXPECT_EQ(w.GetNextEdge(9), 10);
  EXPECT_EQ(w.GetNextEdge(10), 20);
  EXPECT_EQ(w.GetNextEdge(25), 30);
}

TEST(TumblingWindow, LastEdgeAtOrBefore) {
  TumblingWindow w(10);
  EXPECT_EQ(w.LastEdgeAtOrBefore(0), 0);
  EXPECT_EQ(w.LastEdgeAtOrBefore(9), 0);
  EXPECT_EQ(w.LastEdgeAtOrBefore(10), 10);
  EXPECT_EQ(w.LastEdgeAtOrBefore(25), 20);
}

TEST(TumblingWindow, IsWindowEdgeOnMultiples) {
  TumblingWindow w(10);
  EXPECT_TRUE(w.IsWindowEdge(0));
  EXPECT_TRUE(w.IsWindowEdge(20));
  EXPECT_FALSE(w.IsWindowEdge(15));
}

TEST(TumblingWindow, TriggerReportsEndedWindows) {
  TumblingWindow w(10);
  Collector c;
  w.TriggerWindows(c, 5, 35);
  const std::vector<std::pair<Time, Time>> expected = {
      {0, 10}, {10, 20}, {20, 30}};
  EXPECT_EQ(c.wins, expected);
}

TEST(TumblingWindow, TriggerEmptyRange) {
  TumblingWindow w(10);
  Collector c;
  w.TriggerWindows(c, 10, 19);  // no multiple of 10 in (10, 19]
  EXPECT_TRUE(c.wins.empty());
}

TEST(TumblingWindow, TriggerBoundaryInclusive) {
  TumblingWindow w(10);
  Collector c;
  w.TriggerWindows(c, 19, 20);
  ASSERT_EQ(c.wins.size(), 1u);
  EXPECT_EQ(c.wins[0], (std::pair<Time, Time>{10, 20}));
}

TEST(TumblingWindow, ContextClassAndMeasure) {
  TumblingWindow w(10, Measure::kCount);
  EXPECT_EQ(w.context_class(), ContextClass::kContextFree);
  EXPECT_EQ(w.measure(), Measure::kCount);
  EXPECT_FALSE(w.IsSession());
  EXPECT_EQ(w.EvictionSafePoint(100), 90);
}

// --------------------------- Sliding ---------------------------

TEST(SlidingWindow, EdgesIncludeStartsAndEnds) {
  SlidingWindow w(10, 4);  // windows [0,10),[4,14),[8,18),...
  EXPECT_EQ(w.GetNextEdge(0), 4);    // next start
  EXPECT_EQ(w.GetNextEdge(9), 10);   // end of [0,10)
  EXPECT_EQ(w.GetNextEdge(10), 12);  // start at 12
  // 10 % 4 != 0: ends do not coincide with starts, so start-only slicing
  // would be incorrect and GetNextStartEdge falls back to all edges.
  EXPECT_EQ(w.GetNextStartEdge(9), 10);
}

TEST(SlidingWindow, AlignedWindowsExposeStartOnlyEdges) {
  SlidingWindow w(20, 5);  // 20 % 5 == 0: ends coincide with starts
  EXPECT_EQ(w.GetNextStartEdge(9), 10);
  EXPECT_EQ(w.GetNextStartEdge(10), 15);
  // GetNextEdge agrees because the end set is a subset of the start set.
  EXPECT_EQ(w.GetNextEdge(9), 10);
}

TEST(SlidingWindow, LastEdgeAtOrBefore) {
  SlidingWindow w(10, 4);
  EXPECT_EQ(w.LastEdgeAtOrBefore(3), 0);
  EXPECT_EQ(w.LastEdgeAtOrBefore(11), 10);  // end edge of [0,10)
  EXPECT_EQ(w.LastEdgeAtOrBefore(13), 12);
}

TEST(SlidingWindow, IsWindowEdge) {
  SlidingWindow w(10, 4);
  EXPECT_TRUE(w.IsWindowEdge(0));
  EXPECT_TRUE(w.IsWindowEdge(4));
  EXPECT_TRUE(w.IsWindowEdge(10));  // end of [0,10)
  EXPECT_TRUE(w.IsWindowEdge(14));  // end of [4,14)
  EXPECT_FALSE(w.IsWindowEdge(5));
}

TEST(SlidingWindow, TriggerEnumeratesOverlappingWindows) {
  SlidingWindow w(10, 4);
  Collector c;
  w.TriggerWindows(c, 9, 20);
  const std::vector<std::pair<Time, Time>> expected = {
      {0, 10}, {4, 14}, {8, 18}};
  EXPECT_EQ(c.wins, expected);
}

TEST(SlidingWindow, TumblingEquivalenceWhenSlideEqualsLength) {
  SlidingWindow s(10, 10);
  TumblingWindow t(10);
  for (Time x : {0, 5, 9, 10, 17, 100}) {
    EXPECT_EQ(s.GetNextEdge(x), t.GetNextEdge(x)) << x;
    EXPECT_EQ(s.LastEdgeAtOrBefore(x), t.LastEdgeAtOrBefore(x)) << x;
  }
}

// --------------------------- Session ---------------------------

TEST(SessionWindow, InOrderTuplesFormSessions) {
  SessionWindow w(5);
  w.ProcessContext(T(10, 1, 0));
  w.ProcessContext(T(12, 1, 1));
  w.ProcessContext(T(20, 1, 2));  // 20 - 12 = 8 > 5: new session
  EXPECT_EQ(w.ActiveSessionCount(), 2u);
  Collector c;
  w.TriggerWindows(c, 0, 100);
  const std::vector<std::pair<Time, Time>> expected = {{10, 17}, {20, 25}};
  EXPECT_EQ(c.wins, expected);
}

TEST(SessionWindow, InOrderExtensionProducesNoMods) {
  SessionWindow w(5);
  EXPECT_TRUE(w.ProcessContext(T(10, 1, 0)).Empty());
  EXPECT_TRUE(w.ProcessContext(T(13, 1, 1)).Empty());
}

TEST(SessionWindow, OutOfOrderTupleCreatesSessionBetween) {
  SessionWindow w(5);
  w.ProcessContext(T(10, 1, 0));
  w.ProcessContext(T(40, 1, 1));
  ContextModifications mods = w.ProcessContext(T(25, 1, 2));  // new session
  EXPECT_EQ(w.ActiveSessionCount(), 3u);
  ASSERT_EQ(mods.changed_windows.size(), 1u);
  EXPECT_EQ(mods.changed_windows[0], (std::pair<Time, Time>{25, 30}));
}

TEST(SessionWindow, OutOfOrderTupleMergesSessions) {
  SessionWindow w(5);
  w.ProcessContext(T(10, 1, 0));
  w.ProcessContext(T(18, 1, 1));  // session 2 (18 - 10 = 8 > 5)
  ASSERT_EQ(w.ActiveSessionCount(), 2u);
  // 14 bridges: 14 - 10 < 5 and 18 - 14 < 5.
  ContextModifications mods = w.ProcessContext(T(14, 1, 2));
  EXPECT_EQ(w.ActiveSessionCount(), 1u);
  ASSERT_EQ(mods.merged_ranges.size(), 1u);
  EXPECT_EQ(mods.merged_ranges[0], (std::pair<Time, Time>{10, 23}));
  Collector c;
  w.TriggerWindows(c, 0, 100);
  ASSERT_EQ(c.wins.size(), 1u);
  EXPECT_EQ(c.wins[0], (std::pair<Time, Time>{10, 23}));
}

TEST(SessionWindow, OutOfOrderBackwardExtension) {
  SessionWindow w(5);
  w.ProcessContext(T(10, 1, 0));
  w.ProcessContext(T(30, 1, 1));
  ContextModifications mods = w.ProcessContext(T(7, 1, 2));  // extends [10..]
  EXPECT_EQ(w.ActiveSessionCount(), 2u);
  ASSERT_EQ(mods.resizes.size(), 1u);
  EXPECT_EQ(mods.resizes[0].new_start, 7);
  EXPECT_EQ(mods.resizes[0].new_end, 15);
  Collector c;
  w.TriggerWindows(c, 0, 20);
  ASSERT_EQ(c.wins.size(), 1u);
  EXPECT_EQ(c.wins[0], (std::pair<Time, Time>{7, 15}));
}

TEST(SessionWindow, OutOfOrderForwardExtension) {
  SessionWindow w(5);
  w.ProcessContext(T(10, 1, 0));
  w.ProcessContext(T(30, 1, 1));
  ContextModifications mods = w.ProcessContext(T(13, 1, 2));
  ASSERT_EQ(mods.resizes.size(), 1u);
  EXPECT_EQ(mods.resizes[0].new_start, 10);
  EXPECT_EQ(mods.resizes[0].new_end, 18);
}

TEST(SessionWindow, EdgesFollowSessions) {
  SessionWindow w(5);
  w.ProcessContext(T(10, 1, 0));
  w.ProcessContext(T(12, 1, 1));
  EXPECT_EQ(w.GetNextEdge(12), 17);  // session timeout
  EXPECT_EQ(w.LastEdgeAtOrBefore(13), 10);
  EXPECT_TRUE(w.IsWindowEdge(10));
  EXPECT_TRUE(w.IsWindowEdge(17));
  EXPECT_FALSE(w.IsWindowEdge(12));
  // Outside any session, a new tuple would start a session at its own ts.
  EXPECT_EQ(w.LastEdgeAtOrBefore(40), 40);
}

TEST(SessionWindow, EvictionSafePointProtectsActiveSessions) {
  SessionWindow w(5);
  w.ProcessContext(T(10, 1, 0));
  // Session [10, 15) has not timed out at wm=12: keep from its start.
  EXPECT_EQ(w.EvictionSafePoint(12), 10);
  // At wm=50 the session has timed out.
  EXPECT_EQ(w.EvictionSafePoint(50), 50);
}

TEST(SessionWindow, EvictStateDropsTimedOutSessions) {
  SessionWindow w(5);
  w.ProcessContext(T(10, 1, 0));
  w.ProcessContext(T(30, 1, 1));
  w.EvictState(20);
  EXPECT_EQ(w.ActiveSessionCount(), 1u);
}

TEST(SessionWindow, TriggerRespectsWatermarkRange) {
  SessionWindow w(5);
  w.ProcessContext(T(10, 1, 0));
  w.ProcessContext(T(30, 1, 1));
  Collector c;
  w.TriggerWindows(c, 0, 20);  // only the first session has ended
  ASSERT_EQ(c.wins.size(), 1u);
  EXPECT_EQ(c.wins[0], (std::pair<Time, Time>{10, 15}));
}

// --------------------------- Punctuation ---------------------------

Tuple Punct(Time ts, uint64_t seq) {
  Tuple t = T(ts, 0, seq);
  t.is_punctuation = true;
  return t;
}

TEST(PunctuationWindow, WindowsSpanConsecutiveMarkers) {
  PunctuationWindow w;
  w.ProcessContext(T(1, 1, 0));
  w.ProcessContext(Punct(5, 1));
  w.ProcessContext(T(7, 1, 2));
  w.ProcessContext(Punct(12, 3));
  w.ProcessContext(Punct(20, 4));
  Collector c;
  w.TriggerWindows(c, 0, 25);
  const std::vector<std::pair<Time, Time>> expected = {{5, 12}, {12, 20}};
  EXPECT_EQ(c.wins, expected);
}

TEST(PunctuationWindow, InOrderMarkerRequestsCheapSplit) {
  PunctuationWindow w;
  ContextModifications mods = w.ProcessContext(Punct(5, 0));
  ASSERT_EQ(mods.split_edges.size(), 1u);
  EXPECT_EQ(mods.split_edges[0], 5);
  EXPECT_TRUE(mods.changed_windows.empty());
}

TEST(PunctuationWindow, OutOfOrderMarkerSplitsKnownWindow) {
  PunctuationWindow w;
  w.ProcessContext(Punct(5, 0));
  w.ProcessContext(Punct(20, 1));
  w.ProcessContext(T(25, 1, 2));
  ContextModifications mods = w.ProcessContext(Punct(12, 3));
  ASSERT_EQ(mods.split_edges.size(), 1u);
  EXPECT_EQ(mods.split_edges[0], 12);
  ASSERT_EQ(mods.changed_windows.size(), 2u);
  EXPECT_EQ(mods.changed_windows[0], (std::pair<Time, Time>{5, 12}));
  EXPECT_EQ(mods.changed_windows[1], (std::pair<Time, Time>{12, 20}));
}

TEST(PunctuationWindow, DuplicateMarkersIgnored) {
  PunctuationWindow w;
  w.ProcessContext(Punct(5, 0));
  EXPECT_TRUE(w.ProcessContext(Punct(5, 1)).Empty());
  EXPECT_EQ(w.EdgeCount(), 1u);
}

TEST(PunctuationWindow, EdgeQueries) {
  PunctuationWindow w;
  w.ProcessContext(Punct(5, 0));
  w.ProcessContext(Punct(12, 1));
  EXPECT_EQ(w.GetNextEdge(5), 12);
  EXPECT_EQ(w.GetNextEdge(12), kMaxTime);
  EXPECT_EQ(w.LastEdgeAtOrBefore(11), 5);
  EXPECT_EQ(w.LastEdgeAtOrBefore(4), kNoTime);
  EXPECT_TRUE(w.IsWindowEdge(12));
  EXPECT_FALSE(w.IsWindowEdge(7));
  EXPECT_EQ(w.context_class(), ContextClass::kForwardContextFree);
}

TEST(PunctuationWindow, EvictStateKeepsOpenWindowEdge) {
  PunctuationWindow w;
  w.ProcessContext(Punct(5, 0));
  w.ProcessContext(Punct(12, 1));
  w.ProcessContext(Punct(30, 2));
  w.EvictState(20);
  // Edges 5 and 12 closed windows before 20; 12 opens [12,30): keep 12, 30.
  EXPECT_EQ(w.EdgeCount(), 2u);
  EXPECT_EQ(w.EvictionSafePoint(20), 12);
}

// --------------------------- Multi-measure (FCA) ---------------------------

class FakeView : public StreamStateView {
 public:
  explicit FakeView(std::vector<Time> tuple_times)
      : times_(std::move(tuple_times)) {}

  Time NthRecentTupleTime(Time t, int64_t n) const override {
    std::vector<Time> before;
    for (Time x : times_) {
      if (x < t) before.push_back(x);
    }
    if (static_cast<int64_t>(before.size()) < n) return kNoTime;
    return before[before.size() - static_cast<size_t>(n)];
  }

 private:
  std::vector<Time> times_;
};

TEST(LastNEveryTWindow, DerivesStartFromForwardContext) {
  LastNEveryTWindow w(3, 10);
  FakeView view({1, 4, 6, 8, 13, 17});
  w.Bind(&view);
  Collector c;
  w.TriggerWindows(c, 0, 20);
  // At edge 10: last 3 tuples before 10 are {4, 6, 8} -> start 4.
  // At edge 20: last 3 before 20 are {8, 13, 17} -> start 8.
  const std::vector<std::pair<Time, Time>> expected = {{4, 10}, {8, 20}};
  EXPECT_EQ(c.wins, expected);
}

TEST(LastNEveryTWindow, SkipsTriggerWithInsufficientTuples) {
  LastNEveryTWindow w(5, 10);
  FakeView view({1, 4});
  w.Bind(&view);
  Collector c;
  w.TriggerWindows(c, 0, 10);
  EXPECT_TRUE(c.wins.empty());
}

TEST(LastNEveryTWindow, ClassificationIsFCA) {
  LastNEveryTWindow w(10, 5000);
  EXPECT_EQ(w.context_class(), ContextClass::kForwardContextAware);
  EXPECT_FALSE(w.IsSession());
  EXPECT_EQ(w.GetNextEdge(4999), 5000);
  EXPECT_EQ(w.GetNextEdge(5000), 10000);
  EXPECT_TRUE(w.IsWindowEdge(10000));
}

}  // namespace
}  // namespace scotty
