#include "datagen/generators.h"

#include <cmath>

namespace scotty {

SensorStream::SensorStream(SensorConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      value_mod_(static_cast<uint64_t>(config_.distinct_values)),
      key_mod_(static_cast<uint64_t>(config_.num_keys)) {
  const double tuples_per_gap =
      config_.rate_hz * 60.0 /
      (config_.session_gaps_per_minute > 0 ? config_.session_gaps_per_minute
                                           : 1.0);
  tuples_until_gap_ =
      config_.session_gaps_per_minute > 0 ? tuples_per_gap : -1.0;
}

SensorConfig SensorStream::Football() {
  SensorConfig c;
  c.name = "football";
  c.rate_hz = 2000.0;
  c.distinct_values = 84232;
  c.session_gaps_per_minute = 5.0;
  c.gap_length_ms = 2000;
  c.num_keys = 16;
  c.seed = 1337;
  return c;
}

SensorConfig SensorStream::Machine() {
  SensorConfig c;
  c.name = "machine";
  c.rate_hz = 100.0;
  c.distinct_values = 37;
  c.session_gaps_per_minute = 5.0;
  c.gap_length_ms = 2000;
  c.num_keys = 16;
  c.seed = 4242;
  return c;
}

bool SensorStream::Next(Tuple* out) {
  // Advance event time by the inter-arrival interval (fractional carry keeps
  // long-run rates exact for non-divisor frequencies).
  carry_ms_ += 1000.0 / config_.rate_hz;
  const Time step = static_cast<Time>(carry_ms_);
  carry_ms_ -= static_cast<double>(step);
  now_ms_ += step;

  if (tuples_until_gap_ > 0) {
    tuples_until_gap_ -= 1.0;
    if (tuples_until_gap_ <= 0) {
      // Inactivity period: ball possession changes / machine idles.
      now_ms_ += config_.gap_length_ms;
      tuples_until_gap_ = config_.rate_hz * 60.0 /
                          config_.session_gaps_per_minute;
    }
  }

  out->ts = now_ms_;
  out->value = static_cast<double>(value_mod_.Mod(rng_.NextU64()));
  out->key = static_cast<int64_t>(key_mod_.Mod(rng_.NextU64()));
  out->seq = seq_++;
  out->is_punctuation = false;
  return true;
}

bool PunctuatedStream::Next(Tuple* out) {
  if (has_pending_) {
    *out = pending_;
    has_pending_ = false;
    return true;
  }
  if (!inner_->Next(out)) return false;
  if (++count_ % interval_ == 0) {
    // Emit the punctuation marker before the data tuple that crossed the
    // interval, with the same timestamp.
    pending_ = *out;
    has_pending_ = true;
    out->is_punctuation = true;
    out->value = 0.0;
  }
  return true;
}

}  // namespace scotty
