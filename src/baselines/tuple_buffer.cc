#include "baselines/tuple_buffer.h"

#include <algorithm>
#include <cassert>

#include "common/memory.h"

namespace scotty {

namespace {

class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override {
    windows.push_back({start, end});
  }
  std::vector<std::pair<Time, Time>> windows;
};

bool TupleLess(const Tuple& a, const Tuple& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.seq < b.seq;
}

}  // namespace

TupleBufferOperator::TupleBufferOperator(bool stream_in_order,
                                         Time allowed_lateness)
    : stream_in_order_(stream_in_order), allowed_lateness_(allowed_lateness) {}

int TupleBufferOperator::AddAggregation(AggregateFunctionPtr fn) {
  aggs_.push_back(std::move(fn));
  return static_cast<int>(aggs_.size()) - 1;
}

int TupleBufferOperator::AddWindow(WindowPtr w) {
  windows_.push_back(std::move(w));
  return static_cast<int>(windows_.size()) - 1;
}

void TupleBufferOperator::ProcessTuple(const Tuple& t) {
  const bool in_order = max_ts_ == kNoTime || t.ts >= max_ts_;
  const bool late = last_wm_ != kNoTime && t.ts <= last_wm_;
  if (late && t.ts < last_wm_ - allowed_lateness_) return;  // beyond lateness
  if (last_wm_ == kNoTime) {
    last_wm_ = t.ts - 1;
    wm_floor_ = last_wm_;
  }

  // Context-aware windows (sessions) track their state from the raw stream.
  std::vector<char> changed(windows_.size(), 0);
  std::vector<std::pair<int, std::vector<std::pair<Time, Time>>>> changed_wins;
  for (size_t w = 0; w < windows_.size(); ++w) {
    if (auto* caw = dynamic_cast<ContextAwareWindow*>(windows_[w].get())) {
      ContextModifications mods = caw->ProcessContext(t);
      if (!mods.changed_windows.empty()) {
        changed[w] = 1;
        changed_wins.emplace_back(static_cast<int>(w),
                                  std::move(mods.changed_windows));
      }
    }
  }

  if (!t.is_punctuation) {
    if (in_order) {
      buffer_.push_back(t);
    } else {
      // The expensive out-of-order path: insert into the sorted buffer.
      auto it = std::upper_bound(buffer_.begin(), buffer_.end(), t, TupleLess);
      buffer_.insert(it, t);
    }
  }
  if (in_order) max_ts_ = t.ts;

  // Allowed-lateness updates. Windows ending at or before the watermark
  // floor (the first observed point in time) were never emitted and must not
  // resurface as updates.
  for (auto& [wid, wins] : changed_wins) {
    for (const auto& [s, e] : wins) {
      if (e <= last_wm_ && e > wm_floor_) EmitTimeWindow(wid, s, e, true);
    }
  }
  if (late) {
    for (size_t w = 0; w < windows_.size(); ++w) {
      if (changed[w] || windows_[w]->measure() == Measure::kCount) continue;
      Collector c;
      windows_[w]->TriggerWindows(c, std::max(t.ts, wm_floor_), last_wm_);
      for (const auto& [s, e] : c.windows) {
        if (s <= t.ts) EmitTimeWindow(static_cast<int>(w), s, e, true);
      }
    }
    // A late tuple shifts every already-emitted count window ending after it.
    const auto rank_it =
        std::lower_bound(buffer_.begin(), buffer_.end(), t, TupleLess);
    const int64_t rank = evicted_count_ + (rank_it - buffer_.begin());
    for (size_t w = 0; w < windows_.size(); ++w) {
      if (windows_[w]->measure() != Measure::kCount) continue;
      Collector c;
      windows_[w]->TriggerWindows(c, rank, last_cwm_);
      for (const auto& [cs, ce] : c.windows) {
        EmitCountWindow(static_cast<int>(w), cs, ce, true);
      }
    }
  }

  if (stream_in_order_) TriggerAll(t.ts);
}

void TupleBufferOperator::ProcessWatermark(Time wm) {
  if (last_wm_ == kNoTime) {
    last_wm_ = max_ts_ == kNoTime ? wm : std::min(wm, max_ts_ - 1);
    wm_floor_ = last_wm_;
  }
  TriggerAll(wm);
}

void TupleBufferOperator::TriggerAll(Time wm) {
  if (last_wm_ != kNoTime && wm <= last_wm_) return;
  // Count-domain watermark: tuples with ts <= wm.
  Tuple probe;
  probe.ts = wm;
  probe.seq = ~0ULL;
  const int64_t cwm =
      evicted_count_ +
      (std::upper_bound(buffer_.begin(), buffer_.end(), probe, TupleLess) -
       buffer_.begin());

  for (size_t w = 0; w < windows_.size(); ++w) {
    Collector c;
    if (windows_[w]->measure() == Measure::kCount) {
      windows_[w]->TriggerWindows(c, last_cwm_, cwm);
      for (const auto& [cs, ce] : c.windows) {
        EmitCountWindow(static_cast<int>(w), cs, ce, false);
      }
    } else {
      windows_[w]->TriggerWindows(c, last_wm_, wm);
      for (const auto& [s, e] : c.windows) {
        EmitTimeWindow(static_cast<int>(w), s, e, false);
      }
    }
  }
  last_wm_ = wm;
  last_cwm_ = std::max(last_cwm_, cwm);
  Evict(wm);
}

Value TupleBufferOperator::ComputeWindow(size_t agg, Time start,
                                         Time end) const {
  // Lazy aggregation: fold every tuple of the window.
  const AggregateFunction& fn = *aggs_[agg];
  Partial acc;
  auto it = std::lower_bound(
      buffer_.begin(), buffer_.end(), start,
      [](const Tuple& a, Time x) { return a.ts < x; });
  for (; it != buffer_.end() && it->ts < end; ++it) {
    fn.Combine(acc, fn.Lift(*it));
  }
  return fn.Lower(acc);
}

Value TupleBufferOperator::ComputeCountWindow(size_t agg, int64_t cs,
                                              int64_t ce) const {
  const AggregateFunction& fn = *aggs_[agg];
  Partial acc;
  for (int64_t r = std::max(cs, evicted_count_); r < ce; ++r) {
    const size_t i = static_cast<size_t>(r - evicted_count_);
    if (i >= buffer_.size()) break;
    fn.Combine(acc, fn.Lift(buffer_[i]));
  }
  return fn.Lower(acc);
}

void TupleBufferOperator::EmitTimeWindow(int w, Time s, Time e, bool update) {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    WindowResult r;
    r.window_id = w;
    r.agg_id = static_cast<int>(a);
    r.start = s;
    r.end = e;
    r.value = ComputeWindow(a, s, e);
    r.is_update = update;
    results_.push_back(std::move(r));
  }
}

void TupleBufferOperator::EmitCountWindow(int w, int64_t cs, int64_t ce,
                                          bool update) {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    WindowResult r;
    r.window_id = w;
    r.agg_id = static_cast<int>(a);
    r.start = cs;
    r.end = ce;
    r.value = ComputeCountWindow(a, cs, ce);
    r.is_update = update;
    results_.push_back(std::move(r));
  }
}

void TupleBufferOperator::Evict(Time wm) {
  Time safe = wm;
  for (const WindowPtr& w : windows_) {
    if (w->measure() == Measure::kCount) continue;
    const Time p = w->EvictionSafePoint(wm);
    if (p == kNoTime) return;
    safe = std::min(safe, p);
  }
  // Count windows retain by rank.
  int64_t safe_rank = last_cwm_;
  bool has_count = false;
  for (const WindowPtr& w : windows_) {
    if (w->measure() != Measure::kCount) continue;
    has_count = true;
    safe_rank = std::min(safe_rank, w->EvictionSafePoint(last_cwm_));
  }
  const Time bound = safe - allowed_lateness_;
  while (!buffer_.empty() && buffer_.front().ts < bound) {
    if (has_count && evicted_count_ >= safe_rank) break;
    buffer_.pop_front();
    ++evicted_count_;
  }
  for (const WindowPtr& w : windows_) w->EvictState(bound);
}

std::vector<WindowResult> TupleBufferOperator::TakeResults() {
  std::vector<WindowResult> out;
  out.swap(results_);
  return out;
}

size_t TupleBufferOperator::MemoryUsageBytes() const {
  return buffer_.size() * MemoryModel::kTupleBytes;
}

}  // namespace scotty
