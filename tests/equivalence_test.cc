// Cross-technique equivalence: the paper's premise is that general stream
// slicing is a drop-in replacement for alternative window operators — same
// input and output semantics, different performance. These tests run the
// same randomized streams through every applicable technique and require
// identical final window aggregates.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "baselines/aggregate_tree.h"
#include "baselines/buckets.h"
#include "baselines/pairs.h"
#include "baselines/tuple_buffer.h"
#include "common/rng.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::RunStream;
using testutil::T;

std::vector<Tuple> RandomStream(uint64_t seed, int n, double ooo_fraction,
                                Time max_delay) {
  testing::StreamSpec spec;
  spec.seed = seed;
  spec.num_tuples = n;
  spec.step_lo = 1;
  spec.step_hi = 4;
  spec.gap_probability = 0.03;  // inactivity gaps for sessions
  spec.gap_length = 50;
  spec.value_range = 20;
  spec.ooo_fraction = ooo_fraction;
  spec.max_delay = max_delay;
  return testing::GenerateStream(spec);
}

using OperatorFactory = std::function<std::unique_ptr<WindowOperator>(
    const std::vector<WindowPtr>&, const std::string&)>;

std::unique_ptr<WindowOperator> MakeSlicing(const std::vector<WindowPtr>& ws,
                                            const std::string& agg,
                                            StoreMode mode) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = false;
  o.allowed_lateness = 1000000;
  o.store_mode = mode;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  op->AddAggregation(MakeAggregation(agg));
  for (const WindowPtr& w : ws) op->AddWindow(w);
  return op;
}

std::unique_ptr<WindowOperator> MakeBuffer(const std::vector<WindowPtr>& ws,
                                           const std::string& agg) {
  auto op = std::make_unique<TupleBufferOperator>(false, 1000000);
  op->AddAggregation(MakeAggregation(agg));
  for (const WindowPtr& w : ws) op->AddWindow(w);
  return op;
}

std::unique_ptr<WindowOperator> MakeTree(const std::vector<WindowPtr>& ws,
                                         const std::string& agg) {
  auto op = std::make_unique<AggregateTreeOperator>(false, 1000000);
  op->AddAggregation(MakeAggregation(agg));
  for (const WindowPtr& w : ws) op->AddWindow(w);
  return op;
}

std::unique_ptr<WindowOperator> MakeBuckets(const std::vector<WindowPtr>& ws,
                                            const std::string& agg) {
  auto op = std::make_unique<BucketsOperator>(false, 1000000);
  op->AddAggregation(MakeAggregation(agg));
  for (const WindowPtr& w : ws) op->AddWindow(w);
  return op;
}

/// Window factories: fresh window objects per operator (they are stateful).
using WindowFactory = std::function<std::vector<WindowPtr>()>;

void ExpectAllTechniquesAgree(const WindowFactory& windows,
                              const std::string& agg, uint64_t seed,
                              double ooo, Time max_delay,
                              bool include_buckets = true,
                              bool include_tree = true) {
  const std::vector<Tuple> stream = RandomStream(seed, 300, ooo, max_delay);
  Time raw_last = 0;
  for (const Tuple& t : stream) raw_last = std::max(raw_last, t.ts);
  const Time last = raw_last + 100;  // closes trailing sessions too

  auto reference =
      FinalResults(RunStream(*MakeSlicing(windows(), agg, StoreMode::kLazy),
                             stream, last + 1));
  ASSERT_FALSE(reference.empty());

  auto eager = FinalResults(RunStream(
      *MakeSlicing(windows(), agg, StoreMode::kEager), stream, last + 1));
  EXPECT_EQ(eager, reference) << "eager vs lazy, agg=" << agg;

  auto buffer =
      FinalResults(RunStream(*MakeBuffer(windows(), agg), stream, last + 1));
  EXPECT_EQ(buffer, reference) << "tuple-buffer vs slicing, agg=" << agg;

  if (include_tree) {
    auto tree =
        FinalResults(RunStream(*MakeTree(windows(), agg), stream, last + 1));
    EXPECT_EQ(tree, reference) << "aggregate-tree vs slicing, agg=" << agg;
  }
  if (include_buckets) {
    auto buckets = FinalResults(
        RunStream(*MakeBuckets(windows(), agg), stream, last + 1));
    EXPECT_EQ(buckets, reference) << "buckets vs slicing, agg=" << agg;
  }
}

TEST(Equivalence, TumblingSumInOrderStream) {
  ExpectAllTechniquesAgree(
      [] {
        return std::vector<WindowPtr>{std::make_shared<TumblingWindow>(10)};
      },
      "sum", 1, 0.0, 1);
}

TEST(Equivalence, TumblingSumOutOfOrderStream) {
  ExpectAllTechniquesAgree(
      [] {
        return std::vector<WindowPtr>{std::make_shared<TumblingWindow>(10)};
      },
      "sum", 2, 0.2, 30);
}

TEST(Equivalence, SlidingAvgOutOfOrder) {
  ExpectAllTechniquesAgree(
      [] {
        return std::vector<WindowPtr>{
            std::make_shared<SlidingWindow>(30, 10)};
      },
      "avg", 3, 0.2, 30);
}

TEST(Equivalence, MultiQuerySharedSlices) {
  ExpectAllTechniquesAgree(
      [] {
        return std::vector<WindowPtr>{std::make_shared<TumblingWindow>(10),
                                      std::make_shared<TumblingWindow>(15),
                                      std::make_shared<SlidingWindow>(40, 20)};
      },
      "sum", 4, 0.15, 25);
}

TEST(Equivalence, MinMaxOutOfOrder) {
  for (const char* agg : {"min", "max"}) {
    ExpectAllTechniquesAgree(
        [] {
          return std::vector<WindowPtr>{std::make_shared<TumblingWindow>(20)};
        },
        agg, 5, 0.25, 40);
  }
}

TEST(Equivalence, MedianHolisticOutOfOrder) {
  ExpectAllTechniquesAgree(
      [] {
        return std::vector<WindowPtr>{std::make_shared<TumblingWindow>(25)};
      },
      "median", 6, 0.2, 30);
}

TEST(Equivalence, M4OutOfOrder) {
  ExpectAllTechniquesAgree(
      [] {
        return std::vector<WindowPtr>{std::make_shared<TumblingWindow>(25)};
      },
      "m4", 7, 0.2, 30);
}

TEST(Equivalence, SessionsAcrossTechniques) {
  // Buckets use merging session buckets; trees/buffers track sessions too.
  ExpectAllTechniquesAgree(
      [] {
        return std::vector<WindowPtr>{std::make_shared<SessionWindow>(12)};
      },
      "sum", 8, 0.0, 1);
}

TEST(Equivalence, SessionsWithOutOfOrderTuples) {
  ExpectAllTechniquesAgree(
      [] {
        return std::vector<WindowPtr>{std::make_shared<SessionWindow>(12)};
      },
      "sum", 9, 0.15, 20,
      /*include_buckets=*/true, /*include_tree=*/true);
}

TEST(Equivalence, CountWindowsAcrossTechniques) {
  ExpectAllTechniquesAgree(
      [] {
        return std::vector<WindowPtr>{
            std::make_shared<TumblingWindow>(7, Measure::kCount)};
      },
      "sum", 10, 0.2, 25, /*include_buckets=*/true, /*include_tree=*/true);
}

TEST(Equivalence, StdDevAcrossTechniques) {
  // StdDev is algebraic with float rounding: compare numerically.
  const auto windows = [] {
    return std::vector<WindowPtr>{std::make_shared<TumblingWindow>(20)};
  };
  const std::vector<Tuple> stream = RandomStream(11, 300, 0.2, 30);
  Time last = 0;
  for (const Tuple& t : stream) last = std::max(last, t.ts);
  auto a = FinalResults(RunStream(
      *MakeSlicing(windows(), "stddev", StoreMode::kLazy), stream, last + 1));
  auto b = FinalResults(
      RunStream(*MakeBuffer(windows(), "stddev"), stream, last + 1));
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, val] : a) {
    ASSERT_TRUE(b.count(key));
    if (val.IsEmpty()) {
      EXPECT_TRUE(b[key].IsEmpty());
    } else {
      EXPECT_NEAR(val.Numeric(), b[key].Numeric(), 1e-6);
    }
  }
}

TEST(Equivalence, PairsAndCuttyAgreeWithGeneralSlicingInOrder) {
  const std::vector<Tuple> stream = RandomStream(12, 300, 0.0, 1);
  Time last = 0;
  for (const Tuple& t : stream) last = std::max(last, t.ts);
  auto make_windows = [] {
    return std::vector<WindowPtr>{std::make_shared<SlidingWindow>(30, 10),
                                  std::make_shared<TumblingWindow>(15)};
  };
  GeneralSlicingOperator::Options o;
  o.stream_in_order = true;
  GeneralSlicingOperator general(o);
  PairsOperator pairs;
  CuttyOperator cutty;
  std::vector<GeneralSlicingOperator*> ops = {&general, &pairs, &cutty};
  std::vector<std::map<testutil::ResultKey, Value>> finals;
  for (GeneralSlicingOperator* op : ops) {
    op->AddAggregation(MakeAggregation("sum"));
    for (const WindowPtr& w : make_windows()) op->AddWindow(w);
    finals.push_back(FinalResults(RunStream(*op, stream, last + 1)));
  }
  EXPECT_EQ(finals[1], finals[0]);
  EXPECT_EQ(finals[2], finals[0]);
}

}  // namespace
}  // namespace scotty
