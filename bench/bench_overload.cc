// Overload & failure resilience benchmark (DESIGN.md §11): sustained
// throughput and recovery time across the fallback persistence ladder at a
// fixed fault schedule.
//
// One producer feeds a single-worker parallel pipeline through a
// BackpressureController while a fixed schedule injects a consumer stall
// (per-tuple worker delay) overlapping a window of persist failures. For
// each configured ladder rung (async-incremental, async-full, sync-full)
// the run records
//   - sustained-ktuples-s: offered tuples over wall time for the whole run
//     (accepted + shed — the producer is never allowed to block unboundedly,
//     so this is the rate the pipeline absorbs load at),
//   - accepted-pct / shed-pct: where the admission policy settled,
//   - recovery-ms: wall time from the instant the fault schedule clears to
//     the first barrier at which the coordinator reports mode ==
//     configured_mode AND kHealthy again (the ladder has promoted all the
//     way back), -1 if the run ends first,
//   - fallbacks / promotions: ladder transitions taken.
//
// Expected shape: throughput during the stall is set by the shed latch (the
// ring drains at the stalled consumer's pace, everything else is dropped at
// the door), so sustained rates are close across rungs; recovery-ms grows
// down the ladder (more rungs to climb back, each needing promote_after
// successful barriers), and the sync-full rung pays barrier-synchronous
// persists while demoted.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "core/general_slicing_operator.h"
#include "aggregates/registry.h"
#include "runtime/checkpoint.h"
#include "runtime/overload.h"
#include "runtime/parallel_executor.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace bench {
namespace {

namespace fs = std::filesystem;
using SteadyClock = std::chrono::steady_clock;

constexpr uint64_t kTuples = 60000;
constexpr int kWmEvery = 256;  // cadence > ring capacity: pressure can build
constexpr Time kWmLag = 5;
// Fault schedule (tuple-index windows, identical for every rung).
constexpr uint64_t kStallFrom = 5000, kStallTo = 20000, kStallUs = 200;
constexpr uint64_t kFailFrom = 8000, kFailTo = 25000;

const char* ModeName(CheckpointPersistenceMode m) {
  switch (m) {
    case CheckpointPersistenceMode::kAsyncIncremental:
      return "async-incremental";
    case CheckpointPersistenceMode::kAsyncFull:
      return "async-full";
    case CheckpointPersistenceMode::kSyncFull:
      return "sync-full";
    case CheckpointPersistenceMode::kOff:
      return "off";
  }
  return "unknown";
}

struct RunResult {
  double wall_s = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  double recovery_ms = -1;
  CheckpointHealthReport health;
};

RunResult RunRung(CheckpointPersistenceMode configured,
                  const std::string& dir) {
  fs::remove_all(dir);
  fs::create_directories(dir);

  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "bench";
  copts.retain = 3;
  copts.max_retries = 1;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 2;
  copts.auto_fallback = true;
  copts.promote_after = 2;
  copts.off_probe_every = 2;
  copts.async = configured != CheckpointPersistenceMode::kSyncFull;
  copts.async_queue_depth = 4;
  if (configured == CheckpointPersistenceMode::kAsyncIncremental) {
    copts.incremental = true;
    copts.full_snapshot_every = 4;
  }
  CheckpointCoordinator coord(copts);

  std::atomic<bool> stalled{false};
  std::atomic<bool> failing{false};
  coord.SetPersistFailureHook(
      [&failing](uint64_t, bool) { return failing.load(); });

  auto factory = []() -> std::unique_ptr<WindowOperator> {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 1000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<TumblingWindow>(500));
    op->AddWindow(std::make_shared<SlidingWindow>(1000, 250));
    return op;
  };
  ParallelExecutor::Options xopts;
  xopts.queue_capacity = 64;
  xopts.batch_size = 1;  // per-tuple pops: the stall delay is per tuple
  xopts.worker_tick_hook = [&stalled](size_t) {
    if (stalled.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(kStallUs));
    }
  };
  ParallelExecutor exec(1, factory, xopts);
  exec.Start();

  BackpressureController ctrl;
  ShedLedger ledger;
  RunResult r;
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  SteadyClock::time_point fault_cleared{};
  const auto t0 = SteadyClock::now();
  for (uint64_t i = 0; i < kTuples; ++i) {
    stalled.store(i >= kStallFrom && i < kStallTo, std::memory_order_relaxed);
    failing.store(i >= kFailFrom && i < kFailTo, std::memory_order_relaxed);
    if (i == std::max(kStallTo, kFailTo)) fault_cleared = SteadyClock::now();
    Tuple t;
    t.ts = static_cast<Time>(i);
    t.value = static_cast<double>(i % 13);
    t.seq = seq++;
    max_ts = std::max(max_ts, t.ts);
    const CheckpointHealthReport hr = coord.HealthReport();
    if (r.recovery_ms < 0 && fault_cleared != SteadyClock::time_point{} &&
        hr.mode == hr.configured_mode &&
        hr.health == CheckpointHealth::kHealthy) {
      r.recovery_ms = std::chrono::duration<double, std::milli>(
                          SteadyClock::now() - fault_cleared)
                          .count();
    }
    const Admission a = ctrl.Decide(exec.ApproxMaxQueueFraction(),
                                    coord.PersistQueueDepth(), hr);
    if (a == Admission::kShed) {
      ledger.RecordShed(t.ts);
      ++r.shed;
    } else if (exec.TryPushFor(t, ctrl.options().block_timeout)) {
      ++r.accepted;
    } else {
      ledger.RecordShed(t.ts);
      ++r.shed;
    }
    if (seq % kWmEvery == 0) {
      const Time wm = max_ts - kWmLag;
      if (wm > last_wm || last_wm == kNoTime) {
        exec.PushWatermark(wm);
        last_wm = wm;
        const std::vector<uint8_t> blob = exec.SnapshotAtBarrier();
        if (!blob.empty()) {
          state::CheckpointMetadata meta;
          meta.source_offset = i + 1;
          meta.next_seq = seq;
          meta.max_ts = max_ts;
          meta.last_wm = last_wm;
          coord.OnBarrierBytes("parallel", blob, meta);
        }
      }
    }
  }
  stalled.store(false, std::memory_order_relaxed);
  failing.store(false, std::memory_order_relaxed);
  exec.PushWatermark(static_cast<Time>(kTuples) + 1000);
  exec.Finish();
  coord.Flush();
  r.wall_s =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  r.health = coord.HealthReport();
  fs::remove_all(dir);
  return r;
}

void Run() {
  const std::string scratch =
      (fs::temp_directory_path() / "scotty-bench-overload").string();
  std::printf(
      "figure=bench_overload tuples=%llu stall=[%llu,%llu)@%lluus "
      "fail=[%llu,%llu)\n",
      static_cast<unsigned long long>(kTuples),
      static_cast<unsigned long long>(kStallFrom),
      static_cast<unsigned long long>(kStallTo),
      static_cast<unsigned long long>(kStallUs),
      static_cast<unsigned long long>(kFailFrom),
      static_cast<unsigned long long>(kFailTo));
  for (const CheckpointPersistenceMode configured :
       {CheckpointPersistenceMode::kAsyncIncremental,
        CheckpointPersistenceMode::kAsyncFull,
        CheckpointPersistenceMode::kSyncFull}) {
    const RunResult r = RunRung(configured, scratch);
    const std::string series = ModeName(configured);
    EmitRow("bench_overload", series, "sustained-ktuples-s",
            static_cast<double>(kTuples) / r.wall_s / 1000.0, "ktuples/s");
    EmitRow("bench_overload", series, "accepted-pct",
            100.0 * static_cast<double>(r.accepted) /
                static_cast<double>(kTuples),
            "%");
    EmitRow("bench_overload", series, "shed-pct",
            100.0 * static_cast<double>(r.shed) /
                static_cast<double>(kTuples),
            "%");
    EmitRow("bench_overload", series, "recovery-ms", r.recovery_ms, "ms");
    EmitRow("bench_overload", series, "fallbacks",
            static_cast<double>(r.health.mode_fallbacks), "count");
    EmitRow("bench_overload", series, "promotions",
            static_cast<double>(r.health.mode_promotions), "count");
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
