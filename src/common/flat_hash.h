#ifndef SCOTTY_COMMON_FLAT_HASH_H_
#define SCOTTY_COMMON_FLAT_HASH_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace scotty {

/// Open-addressing hash map from int64 keys to small values, used on the
/// keyed batch hot path (key -> partition slot in the columnar shuffle).
/// Layout is SoA — a dense key array probed with linear steps, values in a
/// parallel array — so probes touch one contiguous cache line per step
/// instead of an unordered_map node pointer chase, and the key array is
/// amenable to vector compares. Clear() is O(1) via generation stamps,
/// which matters because the keyed shuffle clears the map once per batch.
///
/// Not a general-purpose map: no erase, value type must be trivially
/// copyable-ish, and the caller guarantees single-threaded use.
template <typename V>
class FlatKeyMap {
 public:
  explicit FlatKeyMap(size_t initial_capacity = 64) {
    size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    keys_.resize(cap);
    values_.resize(cap);
    gens_.resize(cap, 0);
    mask_ = cap - 1;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// O(1): advances the generation stamp; slots from prior generations read
  /// as empty. A full wrap of the 32-bit generation resets the stamps.
  void Clear() {
    size_ = 0;
    if (++gen_ == 0) {
      std::fill(gens_.begin(), gens_.end(), 0u);
      gen_ = 1;
    }
  }

  /// Returns the value slot for key, inserting `init` if absent.
  /// `inserted` (optional) reports whether a new slot was created.
  V& FindOrInsert(int64_t key, const V& init, bool* inserted = nullptr) {
    if ((size_ + 1) * 4 > keys_.size() * 3) Grow();
    size_t i = Hash(key) & mask_;
    while (true) {
      if (gens_[i] != gen_) {
        keys_[i] = key;
        values_[i] = init;
        gens_[i] = gen_;
        ++size_;
        if (inserted != nullptr) *inserted = true;
        return values_[i];
      }
      if (keys_[i] == key) {
        if (inserted != nullptr) *inserted = false;
        return values_[i];
      }
      i = (i + 1) & mask_;
    }
  }

  /// Returns the value for key or nullptr.
  V* Find(int64_t key) {
    size_t i = Hash(key) & mask_;
    while (true) {
      if (gens_[i] != gen_) return nullptr;
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
  }

 private:
  static size_t Hash(int64_t key) {
    uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(h >> 29);
  }

  void Grow() {
    FlatKeyMap bigger(keys_.size() * 2);
    bigger.gen_ = 1;
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (gens_[i] == gen_) {
        bigger.FindOrInsert(keys_[i], values_[i]);
      }
    }
    keys_ = std::move(bigger.keys_);
    values_ = std::move(bigger.values_);
    gens_ = std::move(bigger.gens_);
    mask_ = bigger.mask_;
    gen_ = bigger.gen_;
    // size_ unchanged.
  }

  std::vector<int64_t> keys_;
  std::vector<V> values_;
  std::vector<uint32_t> gens_;
  size_t mask_ = 0;
  size_t size_ = 0;
  uint32_t gen_ = 1;
};

}  // namespace scotty

#endif  // SCOTTY_COMMON_FLAT_HASH_H_
