// AggregateStore unit tests: slice lookup, ordered range queries in lazy and
// eager mode, eviction, structure changes, and the StreamStateView used by
// forward-context-aware windows.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/basic.h"
#include "aggregates/ordered.h"
#include "core/aggregate_store.h"
#include "tests/test_util.h"

namespace scotty {
namespace {

using testutil::T;

std::vector<AggregateFunctionPtr> SumFns() {
  return {std::make_shared<SumAggregation>()};
}

void Fill(AggregateStore& store, bool store_tuples = false) {
  // Slices [0,10), [10,20), [20,30) with one tuple each.
  uint64_t seq = 0;
  for (Time start = 0; start < 30; start += 10) {
    Slice& s = store.Append(start, start + 10);
    s.AddTuple(T(start + 5, static_cast<double>(start + 1), seq++),
               store.fns(), store_tuples);
    store.NoteTupleAdded();
    store.OnSliceAggUpdated(store.NumSlices() - 1);
  }
}

TEST(AggregateStore, FindCoveringAndByStart) {
  AggregateStore store(StoreMode::kLazy, SumFns());
  Fill(store);
  EXPECT_EQ(store.FindCovering(0), 0u);
  EXPECT_EQ(store.FindCovering(9), 0u);
  EXPECT_EQ(store.FindCovering(10), 1u);
  EXPECT_EQ(store.FindCovering(29), 2u);
  EXPECT_EQ(store.FindCovering(30), AggregateStore::kNpos);
  EXPECT_EQ(store.FindByStart(25), 2u);
  EXPECT_EQ(store.FindByStart(-1), AggregateStore::kNpos);
  EXPECT_EQ(store.FirstEndingAfter(10), 1u);
  EXPECT_EQ(store.FirstEndingAfter(9), 0u);
}

TEST(AggregateStore, FindCoveringRespectsGaps) {
  AggregateStore store(StoreMode::kLazy, SumFns());
  store.Append(0, 10);
  store.Append(20, 30);  // gap [10, 20)
  EXPECT_EQ(store.FindCovering(5), 0u);
  EXPECT_EQ(store.FindCovering(15), AggregateStore::kNpos);
  EXPECT_EQ(store.FindCovering(25), 1u);
}

TEST(AggregateStore, QueryRangeCombinesIntersectingSlices) {
  AggregateStore store(StoreMode::kLazy, SumFns());
  Fill(store);
  EXPECT_DOUBLE_EQ(store.QueryRange(0, 0, 30).Get<double>(), 1 + 11 + 21);
  EXPECT_DOUBLE_EQ(store.QueryRange(0, 10, 20).Get<double>(), 11);
  EXPECT_DOUBLE_EQ(store.QueryRange(0, 0, 15).Get<double>(), 12);  // full slices
  EXPECT_TRUE(store.QueryRange(0, 30, 40).IsIdentity());
}

TEST(AggregateStore, EagerQueriesMatchLazy) {
  AggregateStore lazy(StoreMode::kLazy, SumFns());
  AggregateStore eager(StoreMode::kEager, SumFns());
  Fill(lazy);
  Fill(eager);
  for (Time s = 0; s <= 30; s += 10) {
    for (Time e = s; e <= 30; e += 10) {
      EXPECT_EQ(lazy.QueryRange(0, s, e), eager.QueryRange(0, s, e))
          << s << "," << e;
    }
  }
}

TEST(AggregateStore, EagerTreeFollowsSliceUpdates) {
  AggregateStore store(StoreMode::kEager, SumFns());
  Fill(store);
  Slice& s = store.At(1);
  s.AddTuple(T(15, 100.0, 9), store.fns(), false);
  store.OnSliceAggUpdated(1);
  EXPECT_DOUBLE_EQ(store.QueryRange(0, 0, 30).Get<double>(), 133.0);
}

TEST(AggregateStore, MergeWithNextCombines) {
  for (StoreMode mode : {StoreMode::kLazy, StoreMode::kEager}) {
    AggregateStore store(mode, SumFns());
    Fill(store);
    store.MergeWithNext(0);
    EXPECT_EQ(store.NumSlices(), 2u);
    EXPECT_EQ(store.At(0).end(), 20);
    EXPECT_DOUBLE_EQ(store.QueryRange(0, 0, 20).Get<double>(), 12.0);
    EXPECT_DOUBLE_EQ(store.QueryRange(0, 0, 30).Get<double>(), 33.0);
  }
}

TEST(AggregateStore, SplitAtDividesSlice) {
  for (StoreMode mode : {StoreMode::kLazy, StoreMode::kEager}) {
    AggregateStore store(mode, SumFns());
    uint64_t seq = 0;
    Slice& s = store.Append(0, 20);
    s.AddTuple(T(3, 1.0, seq++), store.fns(), true);
    s.AddTuple(T(14, 2.0, seq++), store.fns(), true);
    store.OnSliceAggUpdated(0);
    store.SplitAt(0, 10);
    ASSERT_EQ(store.NumSlices(), 2u);
    EXPECT_DOUBLE_EQ(store.QueryRange(0, 0, 10).Get<double>(), 1.0);
    EXPECT_DOUBLE_EQ(store.QueryRange(0, 10, 20).Get<double>(), 2.0);
  }
}

TEST(AggregateStore, InsertAtKeepsOrderAndTrees) {
  for (StoreMode mode : {StoreMode::kLazy, StoreMode::kEager}) {
    AggregateStore store(mode, SumFns());
    store.Append(0, 10);
    store.Append(40, 50);
    Slice& mid = store.InsertAt(1, 20, 30);
    mid.AddTuple(T(25, 7.0, 0), store.fns(), false);
    store.OnSliceAggUpdated(1);
    EXPECT_EQ(store.NumSlices(), 3u);
    EXPECT_EQ(store.FindCovering(25), 1u);
    EXPECT_DOUBLE_EQ(store.QueryRange(0, 0, 50).Get<double>(), 7.0);
  }
}

TEST(AggregateStore, EvictBeforeDropsOldSlices) {
  for (StoreMode mode : {StoreMode::kLazy, StoreMode::kEager}) {
    AggregateStore store(mode, SumFns());
    Fill(store);
    EXPECT_EQ(store.TotalTupleCount(), 3u);
    store.EvictBefore(20);
    EXPECT_EQ(store.NumSlices(), 1u);
    EXPECT_EQ(store.At(0).start(), 20);
    EXPECT_EQ(store.TotalTupleCount(), 1u);
    EXPECT_DOUBLE_EQ(store.QueryRange(0, 0, 30).Get<double>(), 21.0);
  }
}

TEST(AggregateStore, OrderedCombineForNonCommutativeAggs) {
  std::vector<AggregateFunctionPtr> fns = {
      std::make_shared<ConcatAggregation>()};
  for (StoreMode mode : {StoreMode::kLazy, StoreMode::kEager}) {
    AggregateStore store(mode, fns);
    uint64_t seq = 0;
    for (Time start = 0; start < 40; start += 10) {
      Slice& s = store.Append(start, start + 10);
      s.AddTuple(T(start + 1, static_cast<double>(start), seq++), fns, true);
      store.OnSliceAggUpdated(store.NumSlices() - 1);
    }
    const Partial p = store.QueryRange(0, 0, 40);
    const std::vector<double> expected = {0, 10, 20, 30};
    EXPECT_EQ(ConcatAggregation().Lower(p).AsSequence(), expected) << "mode";
  }
}

TEST(AggregateStore, NthRecentTupleTimeWalksBackward) {
  AggregateStore store(StoreMode::kLazy, SumFns());
  uint64_t seq = 0;
  Slice& a = store.Append(0, 10);
  a.AddTuple(T(2, 1, seq++), store.fns(), true);
  a.AddTuple(T(6, 1, seq++), store.fns(), true);
  Slice& b = store.Append(10, 20);
  b.AddTuple(T(13, 1, seq++), store.fns(), true);
  b.AddTuple(T(17, 1, seq++), store.fns(), true);
  EXPECT_EQ(store.NthRecentTupleTime(20, 1), 17);
  EXPECT_EQ(store.NthRecentTupleTime(20, 2), 13);
  EXPECT_EQ(store.NthRecentTupleTime(20, 3), 6);
  EXPECT_EQ(store.NthRecentTupleTime(20, 4), 2);
  EXPECT_EQ(store.NthRecentTupleTime(20, 5), kNoTime);
  EXPECT_EQ(store.NthRecentTupleTime(15, 1), 13);  // excludes ts >= 15
  EXPECT_EQ(store.NthRecentTupleTime(13, 1), 6);   // strict: ts < 13
}

TEST(AggregateStore, NthRecentWithoutRetentionReturnsNoTime) {
  AggregateStore store(StoreMode::kLazy, SumFns());
  Fill(store, /*store_tuples=*/false);
  EXPECT_EQ(store.NthRecentTupleTime(30, 1), kNoTime);
}

TEST(AggregateStore, MemoryBytesReflectsEagerTreeOverhead) {
  AggregateStore lazy(StoreMode::kLazy, SumFns());
  AggregateStore eager(StoreMode::kEager, SumFns());
  Fill(lazy);
  Fill(eager);
  EXPECT_GT(eager.MemoryBytes(), lazy.MemoryBytes());
}

}  // namespace
}  // namespace scotty
