#ifndef SCOTTY_BASELINES_AGGREGATE_TREE_H_
#define SCOTTY_BASELINES_AGGREGATE_TREE_H_

#include <deque>
#include <string>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "core/flat_fat.h"
#include "core/window_operator.h"
#include "windows/window.h"

namespace scotty {

/// Aggregate Tree baseline (paper Section 3.2, Table 1 Row 2): a FlatFAT
/// [42] whose leaves are the individual stream tuples. Window aggregates are
/// answered as ordered range queries over the tree, sharing partials among
/// overlapping windows; in-order appends cost O(log n) tree updates, while
/// out-of-order tuples require a leaf insert in the middle of the tree —
/// shifting leaves and recomputing inner nodes (the drastic throughput drop
/// the paper measures in Figures 9 and 12a).
class AggregateTreeOperator : public WindowOperator {
 public:
  explicit AggregateTreeOperator(bool stream_in_order = false,
                                 Time allowed_lateness = 0);

  int AddAggregation(AggregateFunctionPtr fn);
  int AddWindow(WindowPtr w);

  void ProcessTuple(const Tuple& t) override;
  void ProcessWatermark(Time wm) override;
  std::vector<WindowResult> TakeResults() override;
  size_t MemoryUsageBytes() const override;
  std::string Name() const override { return "aggregate-tree"; }

  size_t LeafCount() const { return buffer_.size(); }

  bool SupportsSnapshot() const override { return true; }

  /// The FlatFATs are serialized in full (physical layout, not just leaves):
  /// inner-node floating-point partials depend on the tree's growth history,
  /// and restore must answer range queries bit-identically.
  void SerializeState(state::Writer& w) const override {
    w.Tag(0x41545245);  // "ATRE"
    w.U64(buffer_.size());
    for (const Tuple& t : buffer_) state::SerializeTuple(w, t);
    w.U64(trees_.size());
    for (const FlatFat& tree : trees_) tree.Serialize(w);
    w.I64(evicted_count_);
    w.I64(max_ts_);
    w.I64(last_wm_);
    w.I64(wm_floor_);
    w.I64(last_cwm_);
    for (const WindowPtr& win : windows_) win->SerializeState(w);
    w.U64(results_.size());
    for (const WindowResult& res : results_) SerializeWindowResult(w, res);
  }

  void DeserializeState(state::Reader& r) override {
    r.Tag(0x41545245);
    const uint64_t n = r.U64();
    if (n > r.remaining()) {
      r.Fail();
      return;
    }
    buffer_.clear();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      buffer_.push_back(state::DeserializeTuple(r));
    }
    const uint64_t ntrees = r.U64();
    if (ntrees != trees_.size()) {
      r.Fail();
      return;
    }
    for (FlatFat& tree : trees_) tree.Deserialize(r);
    evicted_count_ = r.I64();
    max_ts_ = r.I64();
    last_wm_ = r.I64();
    wm_floor_ = r.I64();
    last_cwm_ = r.I64();
    for (const WindowPtr& win : windows_) win->DeserializeState(r);
    const uint64_t m = r.U64();
    if (m > r.remaining()) {
      r.Fail();
      return;
    }
    results_.clear();
    for (uint64_t i = 0; i < m && r.ok(); ++i) {
      results_.push_back(DeserializeWindowResult(r));
    }
  }

 private:
  void TriggerAll(Time wm);
  void Evict(Time wm);
  Value ComputeWindow(size_t agg, Time start, Time end) const;
  void EmitTimeWindow(int w, Time s, Time e, bool update);
  void EmitCountWindow(int w, int64_t cs, int64_t ce, bool update);

  bool stream_in_order_;
  Time allowed_lateness_;
  std::vector<AggregateFunctionPtr> aggs_;
  std::vector<WindowPtr> windows_;
  std::deque<Tuple> buffer_;    // sorted by (ts, seq); index i = tree leaf i
  std::vector<FlatFat> trees_;  // one per aggregation
  int64_t evicted_count_ = 0;
  Time max_ts_ = kNoTime;
  Time last_wm_ = kNoTime;
  Time wm_floor_ = kNoTime;  // initial last_wm_
  int64_t last_cwm_ = 0;
  std::vector<WindowResult> results_;
};

}  // namespace scotty

#endif  // SCOTTY_BASELINES_AGGREGATE_TREE_H_
