#include "runtime/pipeline.h"

#include <algorithm>
#include <chrono>

#include "runtime/checkpoint.h"

namespace scotty {

namespace {

void DrainInto(WindowOperator& op, std::vector<WindowResult>* scratch,
               PipelineReport* report) {
  scratch->clear();
  op.TakeResultsInto(scratch);
  for (const WindowResult& r : *scratch) {
    ++report->results;
    if (r.is_update) ++report->updates;
  }
}

}  // namespace

PipelineReport RunPipeline(TupleSource& src, WindowOperator& op,
                           uint64_t max_tuples, const PipelineOptions& opts) {
  PipelineReport report;
  Time max_ts = kNoTime;
  const auto start = std::chrono::steady_clock::now();
  Tuple t;
  if (opts.batch_size <= 1) {
    // Tuple-at-a-time driver.
    for (uint64_t i = 0; i < max_tuples && src.Next(&t); ++i) {
      op.ProcessTuple(t);
      max_ts = std::max(max_ts, t.ts);
      ++report.tuples;
      if (opts.watermark_every > 0 && (i + 1) % opts.watermark_every == 0) {
        op.ProcessWatermark(max_ts - opts.watermark_delay);
        if (opts.drain_results) {
          for (const WindowResult& r : op.TakeResults()) {
            ++report.results;
            if (r.is_update) ++report.updates;
          }
        }
      }
    }
  } else {
    // Batched driver: same tuple/watermark sequence, delivered in blocks.
    std::vector<Tuple> buf;
    buf.reserve(opts.batch_size);
    std::vector<WindowResult> drained;
    bool more = true;
    uint64_t i = 0;
    while (more && i < max_tuples) {
      // A block stops at the next watermark injection point so watermark
      // cadence matches the per-tuple driver exactly.
      uint64_t limit = std::min(opts.batch_size, max_tuples - i);
      if (opts.watermark_every > 0) {
        limit = std::min(limit, opts.watermark_every - i % opts.watermark_every);
      }
      buf.clear();
      while (buf.size() < limit && (more = src.Next(&t))) {
        buf.push_back(t);
        max_ts = std::max(max_ts, t.ts);
      }
      if (buf.empty()) break;
      op.ProcessTupleBatch(buf);
      i += buf.size();
      report.tuples += buf.size();
      if (opts.watermark_every > 0 && i % opts.watermark_every == 0) {
        op.ProcessWatermark(max_ts - opts.watermark_delay);
        if (opts.drain_results) DrainInto(op, &drained, &report);
      }
    }
  }
  if (max_ts != kNoTime) op.ProcessWatermark(max_ts);
  for (const WindowResult& r : op.TakeResults()) {
    ++report.results;
    if (r.is_update) ++report.updates;
  }
  const auto end = std::chrono::steady_clock::now();
  report.seconds = std::chrono::duration<double>(end - start).count();
  return report;
}

ParallelPipelineReport RunPipelineParallel(
    TupleSource& src, ParallelExecutor& exec, uint64_t max_tuples,
    const PipelineOptions& opts,
    const std::vector<uint8_t>* restore_snapshot,
    CheckpointCoordinator* coord) {
  ParallelPipelineReport out;
  if (restore_snapshot != nullptr) {
    std::string err;
    if (!exec.RestoreOperators(*restore_snapshot, &err)) {
      // Failed before Start(): no worker threads exist, nothing to join.
      out.ok = false;
      out.error = "restore failed: " + err;
      return out;
    }
  }
  const auto start = std::chrono::steady_clock::now();
  exec.Start();
  try {
    Tuple t;
    Time max_ts = kNoTime;
    uint64_t i = 0;
    for (; i < max_tuples && src.Next(&t); ++i) {
      exec.Push(t);
      max_ts = std::max(max_ts, t.ts);
      ++out.report.tuples;
      if (opts.watermark_every > 0 && (i + 1) % opts.watermark_every == 0) {
        const Time wm = max_ts - opts.watermark_delay;
        exec.PushWatermark(wm);
        if (coord != nullptr) {
          // Barrier right after the watermark, like the single-threaded
          // checkpointed driver: the combined blob captures every worker
          // between two items of its own stream.
          const std::vector<uint8_t> blob = exec.SnapshotAtBarrier();
          if (!blob.empty()) {
            state::CheckpointMetadata meta;
            meta.source_offset = i + 1;
            meta.next_seq = i + 1;
            meta.max_ts = max_ts;
            meta.last_wm = wm;
            if (!coord->OnBarrierBytes("parallel", blob, meta).empty()) {
              ++out.checkpoints;
            }
          }
        }
      }
    }
    if (max_ts != kNoTime) exec.PushWatermark(max_ts);
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  } catch (...) {
    out.ok = false;
    out.error = "unknown exception while feeding the pipeline";
  }
  // Unconditional: stop markers + join, also on the exception path. The
  // workers drain whatever was queued before the failure, so no thread is
  // left spinning on a queue nobody feeds.
  exec.Finish();
  // Only after the workers are down: settle the coordinator, so an
  // in-flight async persist is completed (or was explicitly abandoned by
  // the caller) before control returns and the executor can be destroyed.
  // Health is sampled post-flush so it covers background persist failures.
  if (coord != nullptr) {
    coord->Flush();
    out.checkpoint_health = coord->HealthReport();
  }
  out.report.results = exec.TotalResults();
  const auto end = std::chrono::steady_clock::now();
  out.report.seconds = std::chrono::duration<double>(end - start).count();
  return out;
}

}  // namespace scotty
