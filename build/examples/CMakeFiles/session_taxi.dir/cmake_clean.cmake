file(REMOVE_RECURSE
  "CMakeFiles/session_taxi.dir/session_taxi.cpp.o"
  "CMakeFiles/session_taxi.dir/session_taxi.cpp.o.d"
  "session_taxi"
  "session_taxi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_taxi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
