file(REMOVE_RECURSE
  "CMakeFiles/scotty_extras_tests.dir/custom_window_test.cc.o"
  "CMakeFiles/scotty_extras_tests.dir/custom_window_test.cc.o.d"
  "CMakeFiles/scotty_extras_tests.dir/frames_test.cc.o"
  "CMakeFiles/scotty_extras_tests.dir/frames_test.cc.o.d"
  "CMakeFiles/scotty_extras_tests.dir/lifecycle_test.cc.o"
  "CMakeFiles/scotty_extras_tests.dir/lifecycle_test.cc.o.d"
  "CMakeFiles/scotty_extras_tests.dir/runtime_extras_test.cc.o"
  "CMakeFiles/scotty_extras_tests.dir/runtime_extras_test.cc.o.d"
  "CMakeFiles/scotty_extras_tests.dir/soak_test.cc.o"
  "CMakeFiles/scotty_extras_tests.dir/soak_test.cc.o.d"
  "CMakeFiles/scotty_extras_tests.dir/window_sweep_test.cc.o"
  "CMakeFiles/scotty_extras_tests.dir/window_sweep_test.cc.o.d"
  "scotty_extras_tests"
  "scotty_extras_tests.pdb"
  "scotty_extras_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scotty_extras_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
