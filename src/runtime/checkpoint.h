#ifndef SCOTTY_RUNTIME_CHECKPOINT_H_
#define SCOTTY_RUNTIME_CHECKPOINT_H_

// Checkpoint/restore subsystem (DESIGN.md §7).
//
// The CheckpointCoordinator snapshots a window operator at watermark-aligned
// barriers: a barrier sits immediately after ProcessWatermark returned and
// the produced results were drained downstream, so a snapshot never captures
// a half-applied trigger sweep. Restoring the snapshot onto a freshly
// constructed operator (same query set, same options) and replaying the
// remainder of the stream yields byte-for-byte the same results as the
// uninterrupted run — the differential fuzzer's --checkpoint dimension and
// the crash-injection sweep both enforce exactly this.
//
// Three persistence modes compose (CheckpointOptions):
//
//  - Full + synchronous (default, the original behavior): every barrier
//    writes a complete checksummed snapshot file and fsyncs before the
//    barrier returns.
//  - Incremental: a barrier serializes only state changed since the last
//    barrier (WindowOperator::SerializeDelta) into an append-only delta-log
//    segment (state/delta_log.h) riding alongside the last full "base"
//    snapshot; every `full_snapshot_every`-th barrier — and the first one
//    after any persist hiccup — compacts by writing a fresh base and
//    rotating the segment. Recovery replays base + the valid delta prefix.
//  - Asynchronous: the hot path serializes (copy-on-snapshot) and hands the
//    bytes to a background persist thread with a bounded queue;
//    group-commit batches adjacent delta appends under one fsync. Persist
//    failures retry with backoff; after `max_consecutive_failures` the
//    coordinator flips CheckpointHealth to kFailed and stops checkpointing
//    while the pipeline keeps running at full speed.
//
// Crash injection: when the environment variable SCOTTY_CRASH_AFTER=<n> is
// set, the process exits hard (std::_Exit) immediately after the n-th
// barrier becomes durable (post-rename for bases, post-fsync for delta
// records), so the files on disk are always complete, checksummed prefixes.
// A driver then restarts from them and must recover without loss or
// duplication.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/window_operator.h"
#include "datagen/generators.h"
#include "runtime/checkpoint_health.h"
#include "runtime/pipeline.h"
#include "state/delta_log.h"
#include "state/snapshot.h"

namespace scotty {

using OperatorFactory = std::function<std::unique_ptr<WindowOperator>()>;

/// Observer for every result the checkpointed driver drains. Results pass
/// through the sink BEFORE the barrier snapshot is taken, so a sink that
/// durably records them sees exactly the results a downstream consumer had
/// at crash time — the crash-injection sweep diffs these logs against an
/// uninterrupted run.
using ResultSink = std::function<void(const WindowResult&)>;

// CheckpointHealth lives in runtime/checkpoint_health.h (included above) so
// pipeline reports can carry it without including this header.

/// Test/fuzz hook: return true to make this persist attempt fail as if the
/// underlying I/O failed. Called once per attempt (so retries re-consult
/// it) from the persist context — the background thread in async mode.
using PersistFailureHook =
    std::function<bool(uint64_t barrier_index, bool is_base)>;

/// Test/fuzz hook: return the number of milliseconds this persist operation
/// should stall before touching the disk (0 = no delay). Models a slow or
/// overloaded storage device; called once per persist operation from the
/// persist context, so in async mode the stall backs up the bounded queue
/// instead of the pipeline.
using PersistDelayHook =
    std::function<uint64_t(uint64_t barrier_index, bool is_base)>;

struct CheckpointOptions {
  /// Directory snapshot files are written into (must exist).
  std::string directory = ".";
  /// File name prefix; bases are `<prefix>-<barrier_index>.snap`, their
  /// delta segments `<prefix>-<barrier_index>.dlog`.
  std::string prefix = "ckpt";
  /// Keep this many most-recent base snapshots; older bases are deleted
  /// TOGETHER with their delta segment after each new base persists (a
  /// segment's records only ever extend its own base, so pruning pairs
  /// never strands a live delta). More than one is retained so recovery
  /// can fall back when the newest base or its segment is damaged.
  /// 0 keeps everything.
  int retain = 3;
  /// Persist on a background thread instead of the barrier path.
  bool async = false;
  /// Bounded depth of the async persist queue. A barrier arriving at a
  /// full queue is dropped (never blocks the pipeline); the next barrier
  /// is then forced to be a full base so the on-disk chain stays
  /// consistent.
  size_t async_queue_depth = 8;
  /// Serialize deltas between full snapshots (see file comment).
  bool incremental = false;
  /// Every Nth barrier writes a full base (compaction cadence); <= 1
  /// disables deltas even when `incremental` is set.
  uint64_t full_snapshot_every = 8;
  /// Extra attempts per persist operation on failure.
  int max_retries = 2;
  /// Backoff before retry k is exponential with deterministic jitter:
  /// uniformly in [B, 2B] where B = `retry_backoff_ms << (k-1)` (shift
  /// capped at 10). 0 disables sleeping between retries.
  int retry_backoff_ms = 1;
  /// Consecutive failed barriers before health turns kFailed (terminal) —
  /// or, with `auto_fallback`, before the persistence mode demotes one
  /// rung down the ladder instead.
  int max_consecutive_failures = 5;
  /// Walk the persistence ladder instead of failing stop: reaching
  /// `max_consecutive_failures` demotes one rung (async-incremental →
  /// async-full → sync-full → off-with-alarm) and resets the failure
  /// count; health saturates at kDegraded and never turns kFailed. The
  /// bottom rung sheds barriers but probes every `off_probe_every`-th one
  /// so recovery is detectable. `promote_after` consecutive successful
  /// persists climb one rung back toward the configured mode. Off by
  /// default, preserving the original fail-stop contract.
  bool auto_fallback = false;
  /// Consecutive successful persists required to promote one rung back up.
  int promote_after = 8;
  /// On the kOff rung, every Nth barrier is still attempted as a probe;
  /// the rest are shed. <= 0 never probes (kOff becomes terminal).
  int off_probe_every = 4;
};

/// Takes watermark-aligned snapshots and persists them via the versioned
/// container format of state/snapshot.h (full) and the delta-log format of
/// state/delta_log.h (incremental). One coordinator can serve a run and its
/// resumed continuation: the barrier index keeps counting up.
class CheckpointCoordinator {
 public:
  explicit CheckpointCoordinator(CheckpointOptions opts);

  /// Blocking shutdown: completes all queued persists (unless Abandon was
  /// called first), stops the persist thread, closes the open segment.
  ~CheckpointCoordinator();

  CheckpointCoordinator(const CheckpointCoordinator&) = delete;
  CheckpointCoordinator& operator=(const CheckpointCoordinator&) = delete;

  /// Snapshots `op` at a barrier. `meta` carries the stream progress (source
  /// offset, seq counter, watermark); the barrier index is filled in by the
  /// coordinator. In incremental mode this serializes a delta (unless a
  /// base is due) and marks the operator clean. Returns the file the
  /// barrier targets — already durable in sync mode, scheduled in async
  /// mode — or "" when the barrier was skipped (unsupported operator,
  /// kFailed health, full async queue) or failed synchronously.
  /// Honors SCOTTY_CRASH_AFTER (see file comment).
  std::string OnBarrier(WindowOperator& op, state::CheckpointMetadata meta);

  /// Same barrier protocol for state that was serialized elsewhere (the
  /// parallel executor serializes each worker inside its own thread and
  /// hands the combined bytes here). Always persists a full base.
  std::string OnBarrierBytes(const std::string& operator_name,
                             const std::vector<uint8_t>& state,
                             state::CheckpointMetadata meta);

  /// Blocks until every queued persist completed (successfully or not).
  /// No-op in sync mode.
  void Flush();

  /// Drops all queued persists (the in-flight one, if any, still completes
  /// — an append or rename is never torn by abandonment) and stops taking
  /// new barriers. Used to simulate a crash or shed work on shutdown.
  void Abandon();

  uint64_t checkpoints_taken() const { return barrier_index_; }
  const std::string& last_path() const;

  CheckpointHealth health() const {
    return static_cast<CheckpointHealth>(health_.load());
  }
  uint64_t persist_failures() const { return persist_failures_.load(); }
  uint64_t barriers_dropped() const { return barriers_dropped_.load(); }
  uint64_t bases_persisted() const { return bases_persisted_.load(); }
  uint64_t deltas_persisted() const { return deltas_persisted_.load(); }

  /// Active rung of the persistence ladder. Without `auto_fallback` this
  /// never moves off the configured rung.
  CheckpointPersistenceMode persistence_mode() const {
    return static_cast<CheckpointPersistenceMode>(mode_.load());
  }
  /// The rung the options configure (promotion ceiling). Rungs are
  /// capability levels: for a synchronous coordinator the first three all
  /// persist on the barrier path.
  CheckpointPersistenceMode configured_persistence_mode() const {
    return static_cast<CheckpointPersistenceMode>(configured_mode_);
  }
  uint64_t mode_fallbacks() const { return mode_fallbacks_.load(); }
  uint64_t mode_promotions() const { return mode_promotions_.load(); }
  /// True while the kOff rung is active: no durability, page an operator.
  bool alarm() const {
    return persistence_mode() == CheckpointPersistenceMode::kOff;
  }

  /// Jobs waiting for (or in) the background persist, including the batch
  /// currently being processed as one. Always 0 for a sync coordinator.
  /// Backpressure controllers sample this as the persist-lag signal.
  size_t PersistQueueDepth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size() + (busy_ ? 1 : 0);
  }

  /// One-shot snapshot of the counters above plus the health state, in the
  /// shape the pipeline reports embed.
  CheckpointHealthReport HealthReport() const {
    CheckpointHealthReport hr;
    hr.health = health();
    hr.persist_failures = persist_failures();
    hr.barriers_dropped = barriers_dropped();
    hr.bases_persisted = bases_persisted();
    hr.deltas_persisted = deltas_persisted();
    hr.mode = persistence_mode();
    hr.configured_mode = configured_persistence_mode();
    hr.mode_fallbacks = mode_fallbacks();
    hr.mode_promotions = mode_promotions();
    hr.alarm = alarm();
    return hr;
  }

  /// Continue counting from a restored barrier index (resume path). The
  /// first barrier after a resume is always a full base: the coordinator
  /// has no open segment to extend.
  void SetBarrierIndex(uint64_t idx) { barrier_index_ = idx; }

  /// Installs a persist-failure injection hook. Must be set before the
  /// first barrier.
  void SetPersistFailureHook(PersistFailureHook hook) {
    failure_hook_ = std::move(hook);
  }

  /// Installs a slow-persist latency injection hook. Must be set before
  /// the first barrier.
  void SetPersistDelayHook(PersistDelayHook hook) {
    delay_hook_ = std::move(hook);
  }

 private:
  struct PersistJob {
    uint64_t index = 0;
    bool is_base = true;
    std::string path;            // base: target .snap path
    std::vector<uint8_t> blob;   // base: full snapshot container
    state::CheckpointMetadata meta;  // delta record fields
    std::string name;
    std::vector<uint8_t> delta;
  };

  std::string SnapPath(uint64_t idx) const;
  std::string PathPrefix() const;  // directory + "/" + prefix
  bool NeedBase() const;
  std::string Submit(PersistJob job);

  /// Deltas are only serialized while the top rung is active; any demotion
  /// forces full bases until promotion climbs back.
  bool EffectiveIncremental() const;
  /// Exponential backoff with deterministic jitter before retry `attempt`.
  void RetryBackoff(int attempt, uint64_t salt) const;
  /// Runs the slow-persist injection hook, if any, for this operation.
  void MaybeInjectDelay(uint64_t index, bool is_base) const;

  // Persist context (the caller thread in sync mode, the background thread
  // in async mode — never both).
  void PersistThreadMain();
  bool ProcessJob(PersistJob& job);
  bool PersistBaseWithRetry(const PersistJob& job);
  bool AppendDeltaWithRetry(const PersistJob& job);
  bool CommitAppends();
  void NoteBarrierDurable(uint64_t count);
  void NoteSuccess();
  void NoteFailure();
  void PruneBases();

  CheckpointOptions opts_;
  uint64_t barrier_index_ = 0;
  uint64_t barriers_since_base_ = 0;
  uint64_t last_base_index_ = 0;
  bool have_base_ = false;
  int64_t crash_after_ = -1;  // from SCOTTY_CRASH_AFTER; -1 = disabled
  PersistFailureHook failure_hook_;
  PersistDelayHook delay_hook_;
  int configured_mode_ = 0;        // ladder rung the options map to
  uint64_t off_barriers_seen_ = 0;  // producer-side probe cadence counter

  std::atomic<bool> need_new_base_{false};
  std::atomic<uint64_t> persist_failures_{0};
  std::atomic<uint64_t> barriers_dropped_{0};
  std::atomic<uint64_t> bases_persisted_{0};
  std::atomic<uint64_t> deltas_persisted_{0};
  std::atomic<uint64_t> durable_barriers_{0};
  std::atomic<int> consecutive_failures_{0};
  std::atomic<int> consecutive_successes_{0};
  std::atomic<int> health_{static_cast<int>(CheckpointHealth::kHealthy)};
  std::atomic<int> mode_{0};  // active ladder rung; written by the persist
                              // context, read by the barrier path
  std::atomic<uint64_t> mode_fallbacks_{0};
  std::atomic<uint64_t> mode_promotions_{0};

  // Persist-context state; unsynchronized because exactly one context owns
  // it (see above).
  state::DeltaLogWriter dlog_;
  bool segment_ok_ = false;
  bool drop_until_base_ = false;
  uint64_t seg_records_ = 0;  // records appended to the open segment
  std::deque<uint64_t> bases_;
  std::deque<uint64_t> unsynced_;  // delta indices appended, not yet fsync'd

  // Async machinery.
  std::thread persist_thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       // work available / stop
  std::condition_variable idle_cv_;  // queue drained + not busy
  std::deque<PersistJob> queue_;
  std::string last_path_;
  bool busy_ = false;
  bool stop_ = false;
  bool abandoned_ = false;
};

/// Result of restoring an operator from a snapshot file.
struct RestoredOperator {
  std::unique_ptr<WindowOperator> op;
  state::CheckpointMetadata meta;
  std::string operator_name;
  bool ok = false;
  std::string error;
};

/// Reads `path`, validates the container, constructs a fresh operator via
/// `factory` (which must register the same windows/aggregations the
/// snapshotted operator had), and restores its state. A name or fingerprint
/// mismatch fails cleanly instead of producing a half-restored operator.
RestoredOperator RestoreOperator(const std::string& path,
                                 const OperatorFactory& factory);

/// RestoreOperator, then replay the base's delta-log segment
/// (`<path with .snap → .dlog>`) if one exists: every valid,
/// epoch-continuous record is applied in barrier order (stopping hard at
/// the first torn, corrupt, or out-of-epoch record) and the returned meta
/// reflects the LAST applied barrier. `deltas_applied` and
/// `delta_tail_rejected` (both optional) report how far the replay got and
/// whether a damaged tail was discarded. `max_deltas` caps the replay
/// (SIZE_MAX = all) — recovery uses it to re-replay a clean prefix after a
/// record fails to apply.
RestoredOperator RestoreOperatorWithDeltas(const std::string& path,
                                           const OperatorFactory& factory,
                                           size_t max_deltas = SIZE_MAX,
                                           size_t* deltas_applied = nullptr,
                                           bool* delta_tail_rejected = nullptr);

/// Snapshot files `<prefix>-<index>.snap` found in `directory`, sorted by
/// barrier index descending (newest first). Ignores temp files, delta
/// segments, and non-matching names.
std::vector<std::string> ListSnapshots(const std::string& directory,
                                       const std::string& prefix);

/// Recovery entry point: restores from the NEWEST base snapshot in
/// `directory` that validates end-to-end (container checksum, operator
/// name, state decode), replays its delta segment, and falls back to older
/// bases when newer ones are torn, truncated, or corrupt. `fell_back`
/// reports that at least one newer base was rejected; `path_used` names the
/// base that won; `deltas_applied`/`delta_tail_rejected` describe the delta
/// replay on top of it. Returns ok=false only when no base validates (the
/// caller then starts from scratch).
struct RecoveredOperator {
  RestoredOperator restored;
  std::string path_used;
  bool fell_back = false;
  size_t candidates = 0;       // base snapshot files considered
  size_t deltas_applied = 0;   // delta records replayed on the chosen base
  bool delta_tail_rejected = false;  // damaged/out-of-epoch tail discarded
};
RecoveredOperator RecoverNewestValid(const std::string& directory,
                                     const std::string& prefix,
                                     const OperatorFactory& factory);

struct CheckpointedPipelineReport {
  PipelineReport report;
  uint64_t checkpoints = 0;
  std::string last_checkpoint;
  /// Coordinator persistence health at return (after the final Flush), so
  /// callers observe degradation — retried or dropped persists, a terminal
  /// kFailed — without keeping the coordinator around.
  CheckpointHealthReport health;
};

/// RunPipeline with a barrier after every injected watermark: identical
/// tuple/watermark sequence to the plain driver, plus one snapshot per
/// watermark. Honors PipelineOptions::batch_size — batched blocks never
/// straddle a watermark boundary, so the barrier observes exactly the state
/// the per-tuple driver would have had and the snapshot files are
/// byte-identical between the two interleavings. Flushes the coordinator
/// before returning, so async persists are settled when this returns.
CheckpointedPipelineReport RunCheckpointedPipeline(
    TupleSource& src, WindowOperator& op, uint64_t max_tuples,
    const PipelineOptions& opts, CheckpointCoordinator& coord,
    const ResultSink& sink = nullptr);

/// Resumes a checkpointed pipeline: restores the operator from
/// `snapshot_path` via `factory` (replaying its delta segment, if any),
/// skips the tuples the recovered barrier already covered, and replays the
/// remainder of `src` with the same watermark cadence
/// RunCheckpointedPipeline would have used (continuing to take checkpoints
/// through `coord`). The union of results drained before the crash and
/// results produced by the resumed run equals the uninterrupted run's
/// results exactly. Returns ok=false (with op=nullptr) if the snapshot
/// fails validation.
struct ResumedPipeline {
  CheckpointedPipelineReport report;
  std::unique_ptr<WindowOperator> op;
  bool ok = false;
  std::string error;
};

ResumedPipeline RestorePipeline(const std::string& snapshot_path,
                                const OperatorFactory& factory,
                                TupleSource& src, uint64_t max_tuples,
                                const PipelineOptions& opts,
                                CheckpointCoordinator* coord,
                                const ResultSink& sink = nullptr);

/// RestorePipeline from the newest VALID snapshot in a directory (see
/// RecoverNewestValid): tries bases newest-first, replays delta segments,
/// falls back past torn or corrupt files, and only fails when no base
/// validates. `fell_back` on the result reports that the newest base was
/// rejected.
struct RecoveredPipeline {
  CheckpointedPipelineReport report;
  std::unique_ptr<WindowOperator> op;
  bool ok = false;
  bool fell_back = false;
  std::string path_used;
  std::string error;
};
RecoveredPipeline RecoverPipeline(const std::string& directory,
                                  const std::string& prefix,
                                  const OperatorFactory& factory,
                                  TupleSource& src, uint64_t max_tuples,
                                  const PipelineOptions& opts,
                                  CheckpointCoordinator* coord,
                                  const ResultSink& sink = nullptr);

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_CHECKPOINT_H_
