# Empty dependencies file for scotty_extras_tests.
# This may be replaced when dependencies are built.
