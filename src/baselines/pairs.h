#ifndef SCOTTY_BASELINES_PAIRS_H_
#define SCOTTY_BASELINES_PAIRS_H_

#include <cassert>
#include <string>
#include <utility>

#include "core/general_slicing_operator.h"

namespace scotty {

/// Pairs baseline [28] (Krishnamurthy et al., "On-the-fly sharing for
/// streamed aggregation"): stream slicing specialized to tumbling and
/// sliding windows on in-order streams. Every window contributes both its
/// start and end edges to the slicing lattice (each slide period is cut into
/// the eponymous *pair* of slices of lengths l mod ls and ls - l mod ls).
/// No out-of-order support, no context-aware windows.
///
/// Note on slice counts: for aligned sliding windows (length % slide == 0)
/// end edges coincide with start edges, and for misaligned ones a
/// begins-only strategy is incorrect (ends would fall inside slices), so in
/// this implementation Pairs and Cutty produce identical slice sets — they
/// differ in which window types they admit, not in slice structure.
class PairsOperator : public GeneralSlicingOperator {
 public:
  explicit PairsOperator(StoreMode mode = StoreMode::kLazy)
      : GeneralSlicingOperator(Options{.stream_in_order = true,
                                       .allowed_lateness = 0,
                                       .store_mode = mode,
                                       .force_store_tuples = false,
                                       .slice_at_window_ends = true}) {}

  /// Only context-free tumbling/sliding windows are valid for Pairs.
  int AddWindow(WindowPtr w) {
    assert(w->context_class() == ContextClass::kContextFree &&
           "pairs supports context-free windows only");
    return GeneralSlicingOperator::AddWindow(std::move(w));
  }

  std::string Name() const override { return "pairs"; }
};

/// Cutty baseline [10] (Carbone et al.): stream slicing for user-defined
/// context-free windows on in-order streams, cutting only at window begins
/// (the minimal slice count). This is exactly general slicing restricted to
/// its in-order, context-free fast path — which is the paper's point: the
/// general technique inherits the performance of the specialized ones.
class CuttyOperator : public GeneralSlicingOperator {
 public:
  explicit CuttyOperator(StoreMode mode = StoreMode::kLazy)
      : GeneralSlicingOperator(Options{.stream_in_order = true,
                                       .allowed_lateness = 0,
                                       .store_mode = mode,
                                       .force_store_tuples = false,
                                       .slice_at_window_ends = false}) {}

  int AddWindow(WindowPtr w) {
    assert(w->context_class() == ContextClass::kContextFree &&
           "cutty supports (user-defined) context-free windows only");
    return GeneralSlicingOperator::AddWindow(std::move(w));
  }

  std::string Name() const override { return "cutty"; }
};

}  // namespace scotty

#endif  // SCOTTY_BASELINES_PAIRS_H_
