#ifndef SCOTTY_TESTING_CORPUS_H_
#define SCOTTY_TESTING_CORPUS_H_

// Persistent fuzz corpus for the guided differential loop (DESIGN.md §8).
//
// The on-disk format IS the reproducer format: one serialized
// DifferentialConfig per file (the exact `--key=value` line ToFlags()
// emits, `#` starting a comment), named `<fnv64-of-line>.repro`. That makes
// every corpus entry pastable onto a `fuzz_differential` command line, lets
// the checked-in regression reproducers double as fuzz seeds, and keeps the
// format stable across code changes — new flags default, removed flags fail
// loudly at load.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "testing/differential.h"

namespace scotty {
namespace testing {

/// One corpus input plus its scheduling state.
struct CorpusEntry {
  DifferentialConfig cfg;
  /// Map slots this entry newly covered when it was admitted — the keep-set
  /// its minimization must preserve.
  std::vector<uint32_t> new_features;
  /// Times the scheduler picked this entry as a mutation parent.
  uint64_t picked = 0;
  /// Children of this entry that were themselves admitted — fecund parents
  /// earn more energy.
  uint64_t children_admitted = 0;
  /// Measured execution cost of this input in milliseconds (0 = unknown,
  /// treated as average). Expensive inputs pay an energy penalty so the
  /// wall-clock budget is not monopolised by slow crash/rescale configs.
  double cost_ms = 0;
};

/// In-memory corpus with load/persist against a directory of .repro files.
class Corpus {
 public:
  /// Canonical serialized form of a config — the dedup key and file body.
  static std::string CanonicalLine(const DifferentialConfig& cfg);

  /// Stable entry id: fnv64 of the canonical line, in hex.
  static std::string IdFor(const DifferentialConfig& cfg);

  /// Loads every `*.repro` file under `dir` (non-recursive). Malformed
  /// lines are reported to `errors` (one message per bad file) and skipped;
  /// an unreadable or absent directory is not an error (fresh corpus).
  /// Returns the number of entries added.
  size_t LoadDir(const std::string& dir, std::vector<std::string>* errors);

  /// Adds an entry (no dedup check — callers dedup via Contains()).
  void Add(CorpusEntry entry);

  /// True when a config with the same canonical line is already present.
  bool Contains(const DifferentialConfig& cfg) const;

  /// Writes `entry` to `dir/<id>.repro` (tmp file + rename, so a crashed
  /// fuzz run never leaves a torn corpus file). Returns false on IO error.
  bool Persist(const std::string& dir, const CorpusEntry& entry,
               std::string* error) const;

  std::vector<CorpusEntry>& entries() { return entries_; }
  const std::vector<CorpusEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<CorpusEntry> entries_;
};

/// Energy-biased parent selection: entries that recently produced admitted
/// children are picked more often; every entry keeps a floor weight so the
/// corpus never starves a region of the space.
class GuidedScheduler {
 public:
  explicit GuidedScheduler(uint64_t seed) : rng_(seed) {}

  /// Picks a parent index in `corpus` (which must be non-empty) with weight
  ///   (1 + children_admitted) / ((1 + picked) * cost_factor)
  /// where cost_factor scales with the entry's exec cost relative to the
  /// corpus average: productive and under-explored entries float up,
  /// exhausted ones decay toward the floor, and inputs several times more
  /// expensive than average (crash/rescale dims, huge streams) are picked
  /// proportionally less so features-per-second stays high.
  size_t PickParent(const Corpus& corpus);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_CORPUS_H_
