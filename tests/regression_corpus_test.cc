// Deterministic replay of the checked-in regression corpus
// (tests/corpus/regressions/): one-line reproducers for every bug the
// differential fuzzer has found, pinned as plain gtests so they can never
// regress silently even when the nightly fuzz lanes are down. Each .repro
// file documents its bug, the original failure signature, and the one-time
// manual verification against a build with the fix reverted.
//
// The recache regression needs more than a PASS verdict: the recovery
// fallback masks the bug (results stay correct, the delta chain is just
// silently abandoned), so RecacheRegressionKeepsDeltaChainLive additionally
// pins the applied-delta count through CrashRunStats.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include <unistd.h>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "testing/corpus.h"
#include "testing/differential.h"
#include "testing/fault_injector.h"
#include "testing/harness.h"

namespace scotty {
namespace testing {
namespace {

#ifndef SCOTTY_REGRESSION_CORPUS_DIR
#error "SCOTTY_REGRESSION_CORPUS_DIR must point at tests/corpus/regressions"
#endif

std::string CorpusDir() { return SCOTTY_REGRESSION_CORPUS_DIR; }

TEST(RegressionCorpus, DirectoryIsNonEmptyAndParses) {
  Corpus corpus;
  std::vector<std::string> errors;
  const size_t n = corpus.LoadDir(CorpusDir(), &errors);
  for (const std::string& e : errors) ADD_FAILURE() << e;
  EXPECT_GE(n, 3u) << "expected at least the three historical reproducers in "
                   << CorpusDir();
}

TEST(RegressionCorpus, EveryReproducerPasses) {
  Corpus corpus;
  std::vector<std::string> errors;
  ASSERT_GT(corpus.LoadDir(CorpusDir(), &errors), 0u);
  ASSERT_TRUE(errors.empty());
  for (const CorpusEntry& entry : corpus.entries()) {
    const DifferentialOutcome o = RunDifferential(entry.cfg);
    EXPECT_TRUE(o.ok) << "regression reproducer failed again: "
                      << entry.cfg.ToFlags() << "\n  " << o.detail;
    EXPECT_GT(o.comparisons, 0u) << entry.cfg.ToFlags();
  }
}

// The DeserializeImpl slice-edge recache bug: restoring a base + delta
// chain recached slice edges before the delta bytes were applied, which
// dirtied the prior epoch's open slice and made every delta restore fall
// back to base-only replay. Results stayed correct (that is what made it
// silent), so this test replays the checked-in reproducer through the
// crash-recovery harness directly and requires the delta chain to be LIVE:
// at least one delta record actually applied, no fallback, no scratch
// recovery. Verified once against a build with the fix reverted
// (RefreshLanes() recaching during deserialize): deltas_applied drops to 0.
TEST(RegressionCorpus, RecacheRegressionKeepsDeltaChainLive) {
  const std::string path = CorpusDir() + "/recache-delta-chain.repro";
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  DifferentialConfig cfg;
  bool parsed = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::string err;
    ASSERT_TRUE(ParseConfigLine(line, &cfg, &err)) << err;
    parsed = true;
    break;
  }
  ASSERT_TRUE(parsed) << "no config line in " << path;

  // Identical cadence and fault-plan derivation to the differential
  // harness's --crash dimension (src/testing/differential.cc).
  const std::vector<Tuple> stream = GenerateStream(cfg.stream);
  ASSERT_FALSE(stream.empty());
  Time last_ts = 0;
  for (const Tuple& t : stream) last_ts = std::max(last_ts, t.ts);
  const Time final_wm = last_ts + 100;
  const Time wm_lag = cfg.stream.MaxLateness() + 1;
  FaultPlan plan =
      MakeFaultPlan(cfg.stream.seed ^ 0xC2B2AE3D27D4EB4FULL, stream.size());
  // The reproducer seed was chosen so the derived plan is a clean
  // incremental chain; assert that so a RandomConfig/fault-plan derivation
  // change can't quietly turn this into a no-op test.
  ASSERT_NE(plan.mode, PersistMode::kSyncFull);
  ASSERT_EQ(plan.fault, SnapshotFault::kNone);
  ASSERT_EQ(plan.delta_fault, DeltaFault::kNone);
  ASSERT_GT(plan.crash_index, 300u);

  auto factory = [&cfg]() -> std::unique_ptr<WindowOperator> {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 1'000'000'000'000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    for (const std::string& agg : cfg.aggs) {
      op->AddAggregation(MakeAggregation(agg));
    }
    for (const WindowSpec& w : cfg.windows) op->AddWindow(w.Instantiate());
    return op;
  };

  const std::string scratch =
      (std::filesystem::temp_directory_path() /
       ("scotty-recache-regression-" +
        std::to_string(static_cast<long>(::getpid()))))
          .string();
  std::map<ResultKey, Value> faulted;
  std::string err;
  CrashRunStats stats;
  ASSERT_TRUE(RunToFinalResultsCrashRecovered(factory, stream, final_wm,
                                              cfg.wm_every, wm_lag, plan,
                                              scratch, &faulted, &err, &stats))
      << err;

  // The bug's signature: a dead delta chain behind a correct-looking run.
  EXPECT_GT(stats.barriers, 1u);
  EXPECT_GE(stats.deltas_applied, 1u)
      << "delta restore silently degraded to base-only replay";
  EXPECT_FALSE(stats.fell_back);
  EXPECT_FALSE(stats.recovered_from_scratch);

  // And the differential contract still holds: the merged view equals the
  // unfaulted run exactly.
  auto op = factory();
  const std::map<ResultKey, Value> expected =
      RunToFinalResults(*op, stream, final_wm, cfg.wm_every, wm_lag);
  EXPECT_EQ(faulted, expected);
}

}  // namespace
}  // namespace testing
}  // namespace scotty
