// Figure 12: Impact of stream order on throughput.
//
// (a) increasing the fraction of out-of-order tuples (0..100%, delays
//     0-2 s) — slicing and buckets stay flat, tuple buffer and aggregate
//     tree decay (sorted-buffer inserts / tree leaf inserts);
// (b) increasing the delay of out-of-order tuples (20% OOO, delay ranges
//     up to 0.5 s .. 8 s) — everything except the tuple buffer is robust.
//
// Setup as in Section 6.2.2 with 20 concurrent windows.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "windows/session.h"

namespace scotty {
namespace bench {
namespace {

std::vector<WindowPtr> Windows() {
  std::vector<WindowPtr> ws = DashboardTumblingWindows(20);
  ws.push_back(std::make_shared<SessionWindow>(1000));
  return ws;
}

ThroughputResult RunOne(Technique tech, double fraction, Time max_delay) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options ooo;
  ooo.fraction = fraction;
  ooo.min_delay = 0;
  ooo.max_delay = max_delay;
  OutOfOrderInjector src(&inner, ooo);
  auto op = MakeTechnique(tech, /*stream_in_order=*/false,
                          /*allowed_lateness=*/max_delay, Windows(), {"sum"});
  return MeasureThroughput(*op, src, 2'000'000, 0.8, 1024, max_delay);
}

void Run() {
  const std::vector<Technique> techniques = {
      Technique::kLazySlicing, Technique::kEagerSlicing, Technique::kBuckets,
      Technique::kTupleBuffer, Technique::kAggregateTree};

  PrintHeader("fig12a", "throughput vs fraction of out-of-order tuples");
  for (Technique tech : techniques) {
    for (double fraction : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      const ThroughputResult r = RunOne(tech, fraction, 2000);
      PrintRow("fig12a", TechniqueName(tech),
               std::to_string(static_cast<int>(fraction * 100)) + "%",
               r.TuplesPerSecond(), "tuples/s");
    }
  }

  PrintHeader("fig12b", "throughput vs delay of out-of-order tuples");
  for (Technique tech : techniques) {
    for (Time delay : {500, 1000, 2000, 4000, 8000}) {
      const ThroughputResult r = RunOne(tech, 0.2, delay);
      PrintRow("fig12b", TechniqueName(tech),
               "0-" + std::to_string(delay) + "ms", r.TuplesPerSecond(),
               "tuples/s");
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
