// Parameterized sweeps over context-free window parameters: for a grid of
// (length, slide) combinations, the edge arithmetic and the end-to-end
// operator results must match brute force.

#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "common/rng.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::BruteForce;
using testutil::FinalResults;
using testutil::RunStream;
using testutil::T;

class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override { wins.push_back({start, end}); }
  std::vector<std::pair<Time, Time>> wins;
};

// ---------------------------------------------------------------------
// Edge arithmetic: for every (length, slide) pair, GetNextEdge /
// LastEdgeAtOrBefore / IsWindowEdge must agree with a brute-force edge set.
// ---------------------------------------------------------------------

using SlideParam = std::tuple<Time, Time>;  // (length, slide)

class SlidingEdgeSweep : public ::testing::TestWithParam<SlideParam> {};

TEST_P(SlidingEdgeSweep, EdgeFunctionsAgreeWithEnumeration) {
  const auto [len, slide] = GetParam();
  SlidingWindow w(len, slide);
  // Brute-force edge set over [0, horizon].
  const Time horizon = 4 * len + 5 * slide;
  std::vector<char> is_edge(static_cast<size_t>(horizon) + 1, 0);
  for (Time k = 0; k * slide <= horizon; ++k) {
    is_edge[static_cast<size_t>(k * slide)] = 1;
    if (k * slide + len <= horizon) {
      is_edge[static_cast<size_t>(k * slide + len)] = 1;
    }
  }
  for (Time t = 0; t <= horizon; ++t) {
    EXPECT_EQ(w.IsWindowEdge(t), static_cast<bool>(is_edge[(size_t)t]))
        << "IsWindowEdge(" << t << ") len=" << len << " slide=" << slide;
    // Next edge strictly after t.
    Time next = kMaxTime;
    for (Time e = t + 1; e <= horizon; ++e) {
      if (is_edge[static_cast<size_t>(e)]) {
        next = e;
        break;
      }
    }
    if (next != kMaxTime) {
      EXPECT_EQ(w.GetNextEdge(t), next) << "GetNextEdge(" << t << ")";
    }
    // Last edge at or before t.
    Time last = kNoTime;
    for (Time e = t; e >= 0; --e) {
      if (is_edge[static_cast<size_t>(e)]) {
        last = e;
        break;
      }
    }
    EXPECT_EQ(w.LastEdgeAtOrBefore(t), last) << "LastEdgeAtOrBefore(" << t
                                             << ")";
  }
}

TEST_P(SlidingEdgeSweep, TriggerMatchesEnumeratedWindows) {
  const auto [len, slide] = GetParam();
  SlidingWindow w(len, slide);
  const Time wm = 3 * len + 4 * slide;
  Collector c;
  w.TriggerWindows(c, 0, wm);
  std::vector<std::pair<Time, Time>> expected;
  for (Time k = 0;; ++k) {
    const Time end = k * slide + len;
    if (end > wm) break;
    if (end > 0) expected.push_back({k * slide, end});
  }
  EXPECT_EQ(c.wins, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SlidingEdgeSweep,
    ::testing::Values(SlideParam{10, 10}, SlideParam{10, 5}, SlideParam{10, 3},
                      SlideParam{12, 5}, SlideParam{7, 2}, SlideParam{20, 1},
                      SlideParam{5, 4}, SlideParam{100, 33}),
    [](const ::testing::TestParamInfo<SlideParam>& info) {
      return "l" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// End-to-end: the operator's results over a random stream must equal brute
// force for every (length, slide) of the grid — in-order and out-of-order.
// ---------------------------------------------------------------------

class SlidingEndToEndSweep : public ::testing::TestWithParam<SlideParam> {};

TEST_P(SlidingEndToEndSweep, OperatorMatchesBruteForce) {
  const auto [len, slide] = GetParam();
  for (const bool in_order : {true, false}) {
    GeneralSlicingOperator::Options o;
    o.stream_in_order = in_order;
    o.allowed_lateness = 1000000;
    GeneralSlicingOperator op(o);
    op.AddAggregation(MakeAggregation("sum"));
    op.AddWindow(std::make_shared<SlidingWindow>(len, slide));

    Rng rng(static_cast<uint64_t>(len * 131 + slide));
    std::vector<Tuple> stream;
    Time ts = 0;
    for (int i = 0; i < 300; ++i) {
      ts += 1 + static_cast<Time>(rng.NextBounded(3));
      stream.push_back(T(ts, static_cast<double>(rng.NextBounded(10))));
    }
    if (!in_order) {
      for (size_t i = 1; i + 1 < stream.size(); i += 3) {
        std::swap(stream[i], stream[i + 1]);  // bounded disorder
      }
    }
    auto fin = FinalResults(RunStream(op, stream, ts + len + 1));
    ASSERT_FALSE(fin.empty());
    const AggregateFunctionPtr sum = MakeAggregation("sum");
    std::vector<Tuple> seqd = stream;
    for (size_t i = 0; i < seqd.size(); ++i) seqd[i].seq = i;
    for (const auto& [key, value] : fin) {
      const auto [w, a, s, e] = key;
      const Value expected = BruteForce(*sum, seqd, s, e);
      if (expected.IsEmpty()) {
        EXPECT_TRUE(value.IsEmpty()) << s << "," << e;
      } else {
        EXPECT_DOUBLE_EQ(value.Numeric(), expected.Numeric())
            << "len=" << len << " slide=" << slide << " [" << s << "," << e
            << ") in_order=" << in_order;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SlidingEndToEndSweep,
    ::testing::Values(SlideParam{10, 10}, SlideParam{10, 5}, SlideParam{12, 5},
                      SlideParam{7, 2}, SlideParam{25, 10},
                      SlideParam{40, 13}),
    [](const ::testing::TestParamInfo<SlideParam>& info) {
      return "l" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// Tumbling lengths sweep, count measure included.
class TumblingSweep : public ::testing::TestWithParam<Time> {};

TEST_P(TumblingSweep, TimeAndCountMeasuresMatchBruteForce) {
  const Time len = GetParam();
  GeneralSlicingOperator::Options o;
  o.stream_in_order = true;
  GeneralSlicingOperator op(o);
  op.AddAggregation(MakeAggregation("sum"));
  const int tw = op.AddWindow(std::make_shared<TumblingWindow>(len));
  const int cw =
      op.AddWindow(std::make_shared<TumblingWindow>(len, Measure::kCount));
  Rng rng(static_cast<uint64_t>(len));
  std::vector<Tuple> stream;
  Time ts = 0;
  for (int i = 0; i < 200; ++i) {
    ts += 1 + static_cast<Time>(rng.NextBounded(4));
    stream.push_back(T(ts, static_cast<double>(rng.NextBounded(9))));
  }
  auto fin = FinalResults(RunStream(op, stream, ts + len + 1));
  const AggregateFunctionPtr sum = MakeAggregation("sum");
  std::vector<Tuple> seqd = stream;
  for (size_t i = 0; i < seqd.size(); ++i) seqd[i].seq = i;
  int time_windows = 0;
  int count_windows = 0;
  for (const auto& [key, value] : fin) {
    const auto [w, a, s, e] = key;
    const Value expected =
        w == tw ? BruteForce(*sum, seqd, s, e)
                : testutil::BruteForceCount(*sum, seqd, s, e);
    if (expected.IsEmpty()) {
      EXPECT_TRUE(value.IsEmpty());
    } else {
      EXPECT_DOUBLE_EQ(value.Numeric(), expected.Numeric())
          << "w=" << w << " [" << s << "," << e << ") len=" << len;
    }
    if (w == tw) ++time_windows;
    if (w == cw) ++count_windows;
  }
  EXPECT_GT(time_windows, 0);
  EXPECT_GT(count_windows, 0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, TumblingSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 50, 101),
                         [](const ::testing::TestParamInfo<Time>& info) {
                           return "len" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace scotty
