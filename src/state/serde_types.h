#ifndef SCOTTY_STATE_SERDE_TYPES_H_
#define SCOTTY_STATE_SERDE_TYPES_H_

// Serialization helpers for the small common value types shared by every
// operator's snapshot code (tuples in retained buffers, final Values in
// pending result queues).

#include "common/tuple.h"
#include "common/value.h"
#include "state/serde.h"

namespace scotty {
namespace state {

inline void SerializeTuple(Writer& w, const Tuple& t) {
  w.I64(t.ts);
  w.F64(t.value);
  w.I64(t.key);
  w.U64(t.seq);
  w.Bool(t.is_punctuation);
}

inline Tuple DeserializeTuple(Reader& r) {
  Tuple t;
  t.ts = r.I64();
  t.value = r.F64();
  t.key = r.I64();
  t.seq = r.U64();
  t.is_punctuation = r.Bool();
  return t;
}

inline void SerializeValue(Writer& w, const Value& v) {
  if (v.IsEmpty()) {
    w.U8(0);
  } else if (v.IsInt()) {
    w.U8(1);
    w.I64(v.AsInt());
  } else if (v.IsDouble()) {
    w.U8(2);
    w.F64(v.AsDouble());
  } else if (v.IsM4()) {
    w.U8(3);
    const M4Result& m = v.AsM4();
    w.F64(m.min);
    w.F64(m.max);
    w.F64(m.first);
    w.F64(m.last);
  } else if (v.IsArg()) {
    w.U8(4);
    const ArgResult& a = v.AsArg();
    w.F64(a.value);
    w.I64(a.arg);
  } else {
    w.U8(5);
    const std::vector<double>& seq = v.AsSequence();
    w.U64(seq.size());
    for (double x : seq) w.F64(x);
  }
}

inline Value DeserializeValue(Reader& r) {
  switch (r.U8()) {
    case 0:
      return Value();
    case 1:
      return Value(r.I64());
    case 2:
      return Value(r.F64());
    case 3: {
      M4Result m;
      m.min = r.F64();
      m.max = r.F64();
      m.first = r.F64();
      m.last = r.F64();
      return Value(m);
    }
    case 4: {
      ArgResult a;
      a.value = r.F64();
      a.arg = r.I64();
      return Value(a);
    }
    case 5: {
      const uint64_t n = r.U64();
      if (n > r.remaining()) {
        r.Fail();
        return Value();
      }
      std::vector<double> seq;
      seq.reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n && r.ok(); ++i) seq.push_back(r.F64());
      return Value(std::move(seq));
    }
    default:
      r.Fail();
      return Value();
  }
}

}  // namespace state
}  // namespace scotty

#endif  // SCOTTY_STATE_SERDE_TYPES_H_
