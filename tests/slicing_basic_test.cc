// In-order slicing on context-free windows: correctness of the general
// slicing operator against brute-force semantics, slice minimality, and
// multi-query sharing.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::BruteForce;
using testutil::FinalResults;
using testutil::Num;
using testutil::RunStream;
using testutil::T;

GeneralSlicingOperator::Options InOrderOpts(
    StoreMode mode = StoreMode::kLazy) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = true;
  o.store_mode = mode;
  return o;
}

TEST(SlicingBasic, TumblingSumSingleWindow) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto results = RunStream(
      op, {T(1, 1), T(3, 2), T(9, 3), T(11, 4), T(15, 5), T(21, 6)}, 30);
  auto fin = FinalResults(results);
  ASSERT_EQ(fin.size(), 3u);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 6.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 20}]), 9.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 20, 30}]), 6.0);
}

TEST(SlicingBasic, InOrderStreamEmitsPerTupleWithoutWatermarks) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(1, 1, 0));
  op.ProcessTuple(T(5, 2, 1));
  EXPECT_TRUE(op.TakeResults().empty());  // window [0,10) still open
  op.ProcessTuple(T(12, 3, 2));           // acts as watermark 12
  auto results = op.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].start, 0);
  EXPECT_EQ(results[0].end, 10);
  EXPECT_DOUBLE_EQ(Num(results[0].value), 3.0);
}

TEST(SlicingBasic, SlidingWindowsShareSlices) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SlidingWindow>(10, 5));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 40; ++i) tuples.push_back(T(i, 1.0));
  auto fin = FinalResults(RunStream(op, tuples, 40));
  // Windows [0,10),[5,15),...,[30,40) each contain 10 tuples.
  for (Time s = 0; s <= 30; s += 5) {
    EXPECT_DOUBLE_EQ(Num(fin[{0, 0, s, s + 10}]), 10.0) << s;
  }
}

TEST(SlicingBasic, EachTupleInExactlyOneSlice) {
  // Out-of-order mode without watermarks: nothing is triggered or evicted,
  // so we can audit the full slice structure at the end.
  GeneralSlicingOperator::Options o;
  o.allowed_lateness = 1000000;
  GeneralSlicingOperator op(o);
  op.AddAggregation(MakeAggregation("count"));
  op.AddWindow(std::make_shared<SlidingWindow>(20, 5));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 100; ++i) tuples.push_back(T(i, 1.0));
  uint64_t seq = 0;
  for (Tuple& t : tuples) {
    t.seq = seq++;
    op.ProcessTuple(t);
  }
  const AggregateStore* store = op.time_store();
  ASSERT_NE(store, nullptr);
  uint64_t total = 0;
  for (size_t i = 0; i < store->NumSlices(); ++i) {
    total += store->At(i).tuple_count();
  }
  EXPECT_EQ(total, 100u);
}

TEST(SlicingBasic, InOrderCutsAtWindowStartsOnlyWhenAligned) {
  // The Cutty minimality: when window ends coincide with start edges
  // (length % slide == 0), in-order streams slice at starts only.
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SlidingWindow>(20, 5));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 50; ++i) tuples.push_back(T(i, 1.0));
  RunStream(op, tuples, 0);
  // Starts are multiples of 5: 50/5 = 10 slices ever created.
  EXPECT_EQ(op.time_store()->SlicesCreated(), 10u);
}

TEST(SlicingBasic, MisalignedSlidingWindowsAlsoCutAtEnds) {
  // length % slide != 0: end edges fall between starts and must cut, or
  // windows would absorb tuples beyond their end (correctness over
  // minimality).
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SlidingWindow>(12, 5));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 50; ++i) tuples.push_back(T(i, 1.0));
  RunStream(op, tuples, 0);
  // Starts 0,5,...,45 (the first opens the initial slice) plus ends
  // 12,17,...,47: 10 + 8 = 18 slices.
  EXPECT_EQ(op.time_store()->SlicesCreated(), 18u);
}

TEST(SlicingBasic, MultipleConcurrentQueriesShareOneStore) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  const int w1 = op.AddWindow(std::make_shared<TumblingWindow>(10));
  const int w2 = op.AddWindow(std::make_shared<TumblingWindow>(15));
  const int w3 = op.AddWindow(std::make_shared<SlidingWindow>(20, 10));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 60; ++i) tuples.push_back(T(i, 1.0));
  auto fin = FinalResults(RunStream(op, tuples, 60));
  EXPECT_DOUBLE_EQ(Num(fin[{w1, 0, 0, 10}]), 10.0);
  EXPECT_DOUBLE_EQ(Num(fin[{w2, 0, 0, 15}]), 15.0);
  EXPECT_DOUBLE_EQ(Num(fin[{w2, 0, 15, 30}]), 15.0);
  EXPECT_DOUBLE_EQ(Num(fin[{w3, 0, 10, 30}]), 20.0);
}

TEST(SlicingBasic, MultipleAggregationsPerSlice) {
  GeneralSlicingOperator op(InOrderOpts());
  const int sum = op.AddAggregation(MakeAggregation("sum"));
  const int mx = op.AddAggregation(MakeAggregation("max"));
  const int cnt = op.AddAggregation(MakeAggregation("count"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin =
      FinalResults(RunStream(op, {T(1, 5), T(4, 9), T(8, 2)}, 10));
  EXPECT_DOUBLE_EQ(Num(fin[{0, sum, 0, 10}]), 16.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, mx, 0, 10}]), 9.0);
  EXPECT_EQ((fin[{0, cnt, 0, 10}]).AsInt(), 3);
}

TEST(SlicingBasic, EmptyWindowsEmitEmptyValues) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(op, {T(5, 1), T(35, 2)}, 40));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 1.0);
  EXPECT_TRUE((fin[{0, 0, 10, 20}]).IsEmpty());
  EXPECT_TRUE((fin[{0, 0, 20, 30}]).IsEmpty());
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 30, 40}]), 2.0);
}

TEST(SlicingBasic, NoTupleStorageForContextFreeInOrder) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 30; ++i) tuples.push_back(T(i, 1.0));
  RunStream(op, tuples, 0);
  EXPECT_FALSE(op.queries().StoreTuples());
  for (size_t i = 0; i < op.time_store()->NumSlices(); ++i) {
    EXPECT_TRUE(op.time_store()->At(i).tuples().empty());
  }
}

TEST(SlicingBasic, EagerModeMatchesLazyMode) {
  for (const char* agg : {"sum", "median", "m4"}) {
    GeneralSlicingOperator lazy(InOrderOpts(StoreMode::kLazy));
    GeneralSlicingOperator eager(InOrderOpts(StoreMode::kEager));
    for (auto* op : {&lazy, &eager}) {
      op->AddAggregation(MakeAggregation(agg));
      op->AddWindow(std::make_shared<SlidingWindow>(10, 5));
    }
    std::vector<Tuple> tuples;
    for (int i = 0; i < 50; ++i) {
      tuples.push_back(T(i, static_cast<double>((i * 7) % 13)));
    }
    auto a = FinalResults(RunStream(lazy, tuples, 50));
    auto b = FinalResults(RunStream(eager, tuples, 50));
    EXPECT_EQ(a, b) << agg;
  }
}

TEST(SlicingBasic, ResultsMatchBruteForceOnIrregularStream) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(7));
  std::vector<Tuple> tuples = {T(0, 1), T(2, 2),  T(6, 3),  T(13, 4),
                               T(14, 5), T(29, 6), T(30, 7), T(31, 8)};
  auto fin = FinalResults(RunStream(op, tuples, 40));
  const AggregateFunctionPtr sum = MakeAggregation("sum");
  for (const auto& [key, value] : fin) {
    const auto [w, a, s, e] = key;
    const Value expected = BruteForce(*sum, tuples, s, e);
    if (expected.IsEmpty()) {
      EXPECT_TRUE(value.IsEmpty()) << s << "," << e;
    } else {
      EXPECT_DOUBLE_EQ(Num(value), Num(expected)) << s << "," << e;
    }
  }
}

TEST(SlicingBasic, WatermarksAlsoWorkOnDeclaredInOrderStreams) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(1, 1, 0));
  op.ProcessWatermark(25);
  auto fin = FinalResults(op.TakeResults());
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 1.0);
  EXPECT_TRUE((fin[{0, 0, 10, 20}]).IsEmpty());
}

TEST(SlicingBasic, EvictionBoundsSliceCount) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  for (int i = 0; i < 10000; ++i) {
    op.ProcessTuple(T(i, 1.0, static_cast<uint64_t>(i)));
  }
  // Retention horizon is one window length: old slices must be gone.
  EXPECT_LE(op.time_store()->NumSlices(), 4u);
}

TEST(SlicingBasic, ArbitraryAdvancingMeasureBehavesLikeEventTime) {
  // "Timestamps" are kilometers driven: identical processing (paper §4.3).
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("avg"));
  op.AddWindow(
      std::make_shared<TumblingWindow>(100, Measure::kArbitrary));
  auto fin = FinalResults(
      RunStream(op, {T(10, 50), T(60, 70), T(120, 30)}, 200));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 100}]), 60.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 100, 200}]), 30.0);
}

TEST(SlicingBasic, StatsCountProcessedTuples) {
  GeneralSlicingOperator op(InOrderOpts());
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  RunStream(op, {T(1, 1), T(2, 2), T(3, 3)}, 10);
  EXPECT_EQ(op.stats().tuples_processed, 3u);
  EXPECT_EQ(op.stats().out_of_order_tuples, 0u);
  EXPECT_GT(op.stats().windows_emitted, 0u);
}

}  // namespace
}  // namespace scotty
