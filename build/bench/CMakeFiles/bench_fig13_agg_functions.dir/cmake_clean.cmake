file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_agg_functions.dir/bench_fig13_agg_functions.cc.o"
  "CMakeFiles/bench_fig13_agg_functions.dir/bench_fig13_agg_functions.cc.o.d"
  "bench_fig13_agg_functions"
  "bench_fig13_agg_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_agg_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
