#ifndef SCOTTY_COMMON_VALUE_H_
#define SCOTTY_COMMON_VALUE_H_

#include <cstdint>
#include <cmath>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "common/time.h"

namespace scotty {

/// Final result of the M4 aggregation [26]: the four values that suffice to
/// draw a pixel-perfect line chart of the window (min, max, first, last).
struct M4Result {
  double min = 0.0;
  double max = 0.0;
  double first = 0.0;
  double last = 0.0;

  friend bool operator==(const M4Result& a, const M4Result& b) = default;
};

inline std::ostream& operator<<(std::ostream& os, const M4Result& r) {
  return os << "M4{min=" << r.min << ", max=" << r.max << ", first=" << r.first
            << ", last=" << r.last << "}";
}

/// Final result of ArgMin/ArgMax: the extremum and the timestamp at which it
/// was observed.
struct ArgResult {
  double value = 0.0;
  Time arg = kNoTime;

  friend bool operator==(const ArgResult& a, const ArgResult& b) = default;
};

inline std::ostream& operator<<(std::ostream& os, const ArgResult& r) {
  return os << "Arg{value=" << r.value << ", arg=" << r.arg << "}";
}

/// Type-safe final aggregate value produced by AggregateFunction::Lower().
///
/// kEmpty is produced when a window contains no tuples (e.g., an empty
/// tumbling window period).
class Value {
 public:
  Value() = default;
  explicit Value(double d) : v_(d) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(M4Result m) : v_(m) {}
  explicit Value(ArgResult a) : v_(a) {}
  explicit Value(std::vector<double> seq) : v_(std::move(seq)) {}

  bool IsEmpty() const { return std::holds_alternative<std::monostate>(v_); }
  bool IsDouble() const { return std::holds_alternative<double>(v_); }
  bool IsInt() const { return std::holds_alternative<int64_t>(v_); }
  bool IsM4() const { return std::holds_alternative<M4Result>(v_); }
  bool IsArg() const { return std::holds_alternative<ArgResult>(v_); }
  bool IsSequence() const {
    return std::holds_alternative<std::vector<double>>(v_);
  }

  double AsDouble() const { return std::get<double>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  const M4Result& AsM4() const { return std::get<M4Result>(v_); }
  const ArgResult& AsArg() const { return std::get<ArgResult>(v_); }
  const std::vector<double>& AsSequence() const {
    return std::get<std::vector<double>>(v_);
  }

  /// Numeric view: int64 and double both convert; everything else is NaN.
  double Numeric() const {
    if (IsDouble()) return AsDouble();
    if (IsInt()) return static_cast<double>(AsInt());
    return std::nan("");
  }

  friend bool operator==(const Value& a, const Value& b) = default;

  friend std::ostream& operator<<(std::ostream& os, const Value& v) {
    if (v.IsEmpty()) return os << "<empty>";
    if (v.IsDouble()) return os << v.AsDouble();
    if (v.IsInt()) return os << v.AsInt();
    if (v.IsM4()) return os << v.AsM4();
    if (v.IsArg()) return os << v.AsArg();
    os << "[";
    for (size_t i = 0; i < v.AsSequence().size(); ++i) {
      if (i) os << ", ";
      os << v.AsSequence()[i];
    }
    return os << "]";
  }

 private:
  std::variant<std::monostate, int64_t, double, M4Result, ArgResult,
               std::vector<double>>
      v_;
};

}  // namespace scotty

#endif  // SCOTTY_COMMON_VALUE_H_
