// Checkpoint microbenchmark (DESIGN.md §7): snapshot size and
// serialize/restore cost per windowing technique.
//
// Each technique ingests the same out-of-order sensor stream until it holds
// a steady-state amount of retained state (slices, buffered tuples, window
// context), then we measure
//   - snapshot-bytes: size of the serialized operator state,
//   - serialize-ms:   time to produce the state bytes (Writer only; the
//                     container adds a constant 28-byte header + checksum),
//   - restore-ms:     time to decode the bytes into a fresh operator.
//
// Expected shape: slicing snapshots are proportional to slice count (small),
// tuple buffer and aggregate tree carry every retained tuple, buckets sit in
// between (one partial per open bucket). Restore is within a small factor
// of serialize for every technique — both are single sequential passes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "runtime/checkpoint.h"
#include "runtime/pipeline.h"
#include "state/serde.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace bench {
namespace {

std::vector<WindowPtr> CheckpointWindows() {
  return {std::make_shared<TumblingWindow>(500),
          std::make_shared<SlidingWindow>(1000, 250),
          std::make_shared<SessionWindow>(300)};
}

std::unique_ptr<WindowOperator> MakeLoaded(Technique tech,
                                           uint64_t num_tuples) {
  auto op = MakeTechnique(tech, /*stream_in_order=*/false,
                          /*allowed_lateness=*/2000, CheckpointWindows(),
                          {"sum", "median"});
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options ooo;
  ooo.fraction = 0.2;
  ooo.max_delay = 2000;
  OutOfOrderInjector src(&inner, ooo);
  Tuple t;
  Time max_ts = kNoTime;
  for (uint64_t i = 0; i < num_tuples && src.Next(&t); ++i) {
    op->ProcessTuple(t);
    if (t.ts > max_ts) max_ts = t.ts;
    if ((i + 1) % 1024 == 0) {
      op->ProcessWatermark(max_ts - 2000);
      op->TakeResults();
    }
  }
  return op;
}

double MedianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// End-to-end ingestion throughput with checkpointing off vs on, across the
/// three persistence modes and three barrier cadences (one barrier per
/// injected watermark, every 256/1024/4096 tuples, retaining the 3 newest
/// bases):
///   - sync-full:         a full snapshot per barrier through the atomic-write
///                        protocol (serialize + checksum + temp file + fsync +
///                        rename), on the ingestion thread;
///   - async-full:        the same full snapshots, persisted by the background
///                        thread with group-commit fsync;
///   - async-incremental: a full base every 8th barrier, dirty-slice deltas
///                        appended to the base's log segment in between, all
///                        persisted asynchronously.
/// The gap between off and sync-full is the total cost of crash consistency
/// at a given cadence — dominated by fsync, not serialization (compare with
/// the serialize-ms rows above). Async moves that cost off the ingestion
/// thread; incremental shrinks the bytes that cross it. Rows at the default
/// 1024-tuple cadence keep their bare labels; the tighter/looser cadences
/// carry an "@N" suffix.
void RunPipelineOverhead() {
  constexpr uint64_t kTuples = 150'000;
  constexpr int kReps = 3;
  constexpr uint64_t kCadences[] = {256, 1024, 4096};
  const std::string dir =
      (std::filesystem::temp_directory_path() / "scotty_bench_ckpt").string();
  std::filesystem::create_directories(dir);
  // Lazy slicing only: this section measures the cost of the persistence
  // protocol, which is technique-independent (serialize + fsync per
  // barrier); the per-technique serialize cost is already covered above.
  for (Technique tech : {Technique::kLazySlicing}) {
    auto make_src = [] {
      return SensorStream(SensorStream::Football());
    };
    auto make_op = [&] {
      return MakeTechnique(tech, /*stream_in_order=*/false,
                           /*allowed_lateness=*/2000, CheckpointWindows(),
                           {"sum", "median"});
    };
    struct Mode {
      const char* label;
      bool async;
      bool incremental;
    };
    const Mode kModes[] = {{"checkpointing-on", false, false},  // sync-full
                           {"checkpointing-async-full", true, false},
                           {"checkpointing-async-incremental", true, true}};
    for (uint64_t cadence : kCadences) {
      PipelineOptions popts;
      popts.watermark_every = cadence;
      // The off run is re-measured per cadence: the watermark/result cadence
      // itself affects throughput, so each overhead row compares against an
      // off run with identical windowing work.
      const std::string suffix =
          cadence == 1024 ? "" : "@" + std::to_string(cadence);
      std::vector<double> off_tps;
      for (int i = 0; i < kReps; ++i) {
        SensorStream src = make_src();
        auto op = make_op();
        const PipelineReport rep = RunPipeline(src, *op, kTuples, popts);
        off_tps.push_back(rep.TuplesPerSecond());
      }
      const double off = MedianMs(off_tps);  // medians, not actually ms here
      EmitRow("checkpoint", std::string(TechniqueName(tech)) + "/pipeline",
              "checkpointing-off" + suffix, off, "tuples/s");
      for (const Mode& mode : kModes) {
        std::vector<double> on_tps;
        for (int i = 0; i < kReps; ++i) {
          SensorStream src = make_src();
          auto op = make_op();
          CheckpointOptions copts;
          copts.directory = dir;
          copts.prefix = TechniqueName(tech);
          copts.retain = 3;
          copts.async = mode.async;
          copts.incremental = mode.incremental;
          CheckpointCoordinator coord(copts);
          const CheckpointedPipelineReport rep =
              RunCheckpointedPipeline(src, *op, kTuples, popts, coord);
          on_tps.push_back(rep.report.TuplesPerSecond());
        }
        const double on = MedianMs(on_tps);
        EmitRow("checkpoint", std::string(TechniqueName(tech)) + "/pipeline",
                mode.label + suffix, on, "tuples/s");
        const std::string overhead_label =
            (mode.async ? std::string("overhead-") + (mode.label + 14)
                        : std::string("overhead")) +
            suffix;
        EmitRow("checkpoint", std::string(TechniqueName(tech)) + "/pipeline",
                overhead_label, off > 0 ? (off - on) / off * 100.0 : 0.0, "%");
      }
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// Incremental snapshot size: a delta (dirty slices inline, clean slices as
/// start-time references, eager trees as layout only) vs the full snapshot
/// of the same state, after one barrier interval (1024 tuples) of new data
/// on a steady-state operator. The ratio is the payload reduction every
/// non-base barrier enjoys. The slicing techniques are the only ones with
/// incremental support (their state is slice-structured); buckets rides the
/// default full-payload delta, so its ~1.0x row quantifies what a
/// differential format for the tuple-retaining stores would have to beat.
void RunDeltaSize() {
  constexpr uint64_t kTuples = 12'000;
  for (Technique tech : {Technique::kLazySlicing, Technique::kEagerSlicing,
                         Technique::kBuckets}) {
    std::unique_ptr<WindowOperator> op = MakeLoaded(tech, kTuples);
    state::Writer full;
    op->SerializeState(full);
    op->MarkSnapshotClean();

    // One barrier interval of new tuples, then the delta for that barrier.
    SensorStream inner(SensorStream::Football());
    OutOfOrderInjector::Options ooo;
    ooo.fraction = 0.2;
    ooo.max_delay = 2000;
    OutOfOrderInjector src(&inner, ooo);
    Tuple t;
    uint64_t skip = 0;
    while (skip < kTuples && src.Next(&t)) ++skip;
    Time max_ts = kNoTime;
    for (uint64_t i = 0; i < 1024 && src.Next(&t); ++i) {
      op->ProcessTuple(t);
      if (t.ts > max_ts) max_ts = t.ts;
    }
    op->ProcessWatermark(max_ts - 2000);
    op->TakeResults();
    state::Writer delta;
    op->SerializeDelta(delta);

    const double full_bytes = static_cast<double>(full.Take().size());
    const double delta_bytes = static_cast<double>(delta.Take().size());
    const std::string series =
        std::string(TechniqueName(tech)) + "/incremental";
    EmitRow("checkpoint", series, "full-snapshot-bytes", full_bytes, "bytes");
    EmitRow("checkpoint", series, "delta-bytes", delta_bytes, "bytes");
    EmitRow("checkpoint", series, "delta-to-full",
            full_bytes > 0 ? delta_bytes / full_bytes : 0.0, "x");
  }
}

void Run() {
  // The football stream runs at 2 kHz and the retention horizon is
  // watermark delay + allowed lateness = 4 s, so the operators reach their
  // steady-state footprint (~8k retained tuples) after ~8k tuples. 12k
  // tuples passes that point while keeping the loading phase affordable for
  // the aggregate tree, whose out-of-order inserts re-merge holistic median
  // partials along the whole leaf-to-root path.
  constexpr uint64_t kTuples = 12'000;
  constexpr int kReps = 9;
  PrintHeader("checkpoint",
              "snapshot size and serialize/restore latency per technique");
  const std::vector<Technique> techniques = {
      Technique::kLazySlicing, Technique::kEagerSlicing,
      Technique::kTupleBuffer, Technique::kAggregateTree, Technique::kBuckets};
  for (Technique tech : techniques) {
    std::unique_ptr<WindowOperator> op = MakeLoaded(tech, kTuples);

    std::vector<double> ser_ms;
    std::vector<uint8_t> state;
    for (int i = 0; i < kReps; ++i) {
      state::Writer w;
      const auto t0 = std::chrono::steady_clock::now();
      op->SerializeState(w);
      const auto t1 = std::chrono::steady_clock::now();
      ser_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      state = w.Take();
    }

    std::vector<double> res_ms;
    for (int i = 0; i < kReps; ++i) {
      auto fresh = MakeTechnique(tech, false, 2000, CheckpointWindows(),
                                 {"sum", "median"});
      state::Reader r(state);
      const auto t0 = std::chrono::steady_clock::now();
      fresh->DeserializeState(r);
      const auto t1 = std::chrono::steady_clock::now();
      if (!r.ok() || !r.AtEnd()) {
        std::fprintf(stderr, "restore failed for %s\n", TechniqueName(tech));
        std::exit(1);
      }
      res_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }

    EmitRow("checkpoint", TechniqueName(tech), "snapshot-bytes",
            static_cast<double>(state.size()), "bytes");
    EmitRow("checkpoint", TechniqueName(tech), "serialize-ms",
            MedianMs(ser_ms), "ms");
    EmitRow("checkpoint", TechniqueName(tech), "restore-ms", MedianMs(res_ms),
            "ms");
  }
  RunDeltaSize();
  RunPipelineOverhead();
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
