// Figure 16: Impact of different window measures on throughput.
//
// Setup (paper Section 6.3.4): 20% out-of-order tuples with delays 0-2 s;
// the number of concurrent windows varies; queries use either a time-based
// or a count-based measure. The tuple buffer is shown as the fastest
// non-slicing alternative for count windows.
//
// Expected shape: time-based throughput is flat in the window count;
// count-based throughput holds up to a few tens of windows (slices larger
// than the typical delay absorb out-of-order tuples without shifts) and
// then decays as slices shrink and shift chains lengthen; slicing stays
// roughly an order of magnitude above the tuple buffer at 1000 windows.

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace scotty {
namespace bench {
namespace {

ThroughputResult RunOne(Technique tech, bool count_based, int n) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options ooo;
  ooo.fraction = 0.2;
  ooo.max_delay = 2000;
  OutOfOrderInjector src(&inner, ooo);
  const std::vector<WindowPtr> windows =
      count_based ? DashboardCountWindows(n) : DashboardTumblingWindows(n);
  auto op = MakeTechnique(tech, false, 2000, windows, {"sum"});
  return MeasureThroughput(*op, src, 1'500'000, 0.8, 1024, 2000);
}

void Run() {
  PrintHeader("fig16", "window measures: time vs count, vs window count");
  const std::vector<int> window_counts = {1, 10, 20, 40, 100, 1000};
  for (int n : window_counts) {
    PrintRow("fig16", "slicing/time", std::to_string(n),
             RunOne(Technique::kLazySlicing, false, n).TuplesPerSecond(),
             "tuples/s");
  }
  for (int n : window_counts) {
    PrintRow("fig16", "slicing/count", std::to_string(n),
             RunOne(Technique::kLazySlicing, true, n).TuplesPerSecond(),
             "tuples/s");
  }
  for (int n : window_counts) {
    PrintRow("fig16", "tuple-buffer/count", std::to_string(n),
             RunOne(Technique::kTupleBuffer, true, n).TuplesPerSecond(),
             "tuples/s");
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
