#ifndef SCOTTY_RUNTIME_WATERMARKS_H_
#define SCOTTY_RUNTIME_WATERMARKS_H_

#include <algorithm>

#include "common/time.h"
#include "common/tuple.h"
#include "state/serde.h"

namespace scotty {

/// Watermark generation policies (paper Section 2: "many systems use
/// watermarks to control how long they wait for out-of-order tuples").
/// A policy observes every ingested tuple and decides when to emit a
/// low-watermark and with which timestamp. kNoTime means "no watermark now".
class WatermarkPolicy {
 public:
  virtual ~WatermarkPolicy() = default;

  /// Called for every tuple in arrival order; returns a watermark timestamp
  /// to emit after this tuple, or kNoTime.
  virtual Time OnTuple(const Tuple& t) = 0;

  /// Snapshot support: progress counters so a restored pipeline emits the
  /// same watermarks at the same stream positions as an uninterrupted run.
  virtual void Serialize(state::Writer& w) const { (void)w; }
  virtual void Deserialize(state::Reader& r) { (void)r; }
};

/// Emits max_event_time - fixed_delay every `interval` tuples: the standard
/// bounded-out-of-orderness heuristic (Flink's
/// BoundedOutOfOrdernessTimestampExtractor).
class PeriodicWatermarks : public WatermarkPolicy {
 public:
  PeriodicWatermarks(uint64_t interval, Time fixed_delay)
      : interval_(interval), delay_(fixed_delay) {}

  Time OnTuple(const Tuple& t) override {
    max_ts_ = std::max(max_ts_, t.ts);
    if (++count_ % interval_ != 0) return kNoTime;
    return max_ts_ == kNoTime ? kNoTime : max_ts_ - delay_;
  }

  void Serialize(state::Writer& w) const override {
    w.U64(count_);
    w.I64(max_ts_);
  }
  void Deserialize(state::Reader& r) override {
    count_ = r.U64();
    max_ts_ = r.I64();
  }

 private:
  uint64_t interval_;
  Time delay_;
  uint64_t count_ = 0;
  Time max_ts_ = kNoTime;
};

/// Derives watermarks from punctuation tuples: a source that knows its own
/// progress embeds markers, and the marker timestamp doubles as the
/// low-watermark (paper Section 2, "punctuations").
class PunctuatedWatermarks : public WatermarkPolicy {
 public:
  Time OnTuple(const Tuple& t) override {
    return t.is_punctuation ? t.ts : kNoTime;
  }
};

/// Adapts the slack to the disorder actually observed: tracks the maximum
/// lateness seen so far and emits max_event_time - (observed * safety).
/// Useful when the delay bound of the stream is unknown a priori.
class AdaptiveWatermarks : public WatermarkPolicy {
 public:
  AdaptiveWatermarks(uint64_t interval, double safety_factor = 1.5,
                     Time initial_slack = 100)
      : interval_(interval),
        safety_(safety_factor),
        observed_delay_(initial_slack) {}

  Time OnTuple(const Tuple& t) override {
    if (max_ts_ != kNoTime && t.ts < max_ts_) {
      observed_delay_ = std::max(observed_delay_, max_ts_ - t.ts);
    }
    max_ts_ = std::max(max_ts_, t.ts);
    if (++count_ % interval_ != 0) return kNoTime;
    const Time slack =
        static_cast<Time>(static_cast<double>(observed_delay_) * safety_);
    return max_ts_ == kNoTime ? kNoTime : max_ts_ - slack;
  }

  Time observed_delay() const { return observed_delay_; }

  void Serialize(state::Writer& w) const override {
    w.I64(observed_delay_);
    w.U64(count_);
    w.I64(max_ts_);
  }
  void Deserialize(state::Reader& r) override {
    observed_delay_ = r.I64();
    count_ = r.U64();
    max_ts_ = r.I64();
  }

 private:
  uint64_t interval_;
  double safety_;
  Time observed_delay_;
  uint64_t count_ = 0;
  Time max_ts_ = kNoTime;
};

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_WATERMARKS_H_
