#ifndef SCOTTY_AGGREGATES_HOLISTIC_H_
#define SCOTTY_AGGREGATES_HOLISTIC_H_

#include <cmath>
#include <string>

#include "aggregates/aggregate_function.h"

namespace scotty {

/// Percentile (holistic). Partial state is a run-length-encoded sorted
/// multiset of values (SortedRuns): inserts are O(log r + r) on the run
/// vector, merges of two slices are linear two-way merges, and the final
/// rank selection walks the runs. RLE makes the state proportional to the
/// number of *distinct* values, which is why the paper's machine dataset
/// (37 distinct values) is faster than the football dataset (84 232).
///
/// Invertible in the multiset sense (removing a known value), which the
/// slicing core exploits for count-measure tuple shifts.
class PercentileAggregation : public AggregateFunction {
 public:
  /// `q` in [0, 1]; 0.5 is the median, 0.9 the 90th percentile.
  explicit PercentileAggregation(double q, std::string name)
      : q_(q), name_(std::move(name)) {}

  Partial Lift(const Tuple& t) const override {
    SortedRuns runs;
    runs.Insert(t.value);
    return Partial{Partial::Storage{std::move(runs)}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<SortedRuns>().Merge(other.Get<SortedRuns>());
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    const SortedRuns& runs = p.Get<SortedRuns>();
    if (runs.total == 0) return Value{};
    // Nearest-rank percentile: the ceil(q * n)-th smallest value (1-based),
    // clamped to [0, n).
    int64_t rank = static_cast<int64_t>(
                       std::ceil(q_ * static_cast<double>(runs.total))) -
                   1;
    if (rank >= runs.total) rank = runs.total - 1;
    if (rank < 0) rank = 0;
    return Value{runs.ValueAtRank(rank)};
  }

  void Invert(Partial& from, const Partial& removed) const override {
    if (removed.IsIdentity()) return;
    SortedRuns& a = from.Get<SortedRuns>();
    for (const SortedRuns::Run& r : removed.Get<SortedRuns>().runs) {
      for (int64_t i = 0; i < r.count; ++i) a.Remove(r.value);
    }
  }

  bool IsInvertible() const override { return true; }
  AggClass Class() const override { return AggClass::kHolistic; }
  std::string Name() const override { return name_; }

 private:
  double q_;
  std::string name_;
};

/// Median: 50th percentile (holistic).
class MedianAggregation : public PercentileAggregation {
 public:
  MedianAggregation() : PercentileAggregation(0.5, "median") {}
};

/// 90th percentile (holistic), the paper's second holistic example.
class Percentile90Aggregation : public PercentileAggregation {
 public:
  Percentile90Aggregation() : PercentileAggregation(0.9, "p90") {}
};

}  // namespace scotty

#endif  // SCOTTY_AGGREGATES_HOLISTIC_H_
