#include "state/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

namespace scotty {
namespace state {

namespace {

constexpr uint32_t kMetaTag = 0x4D455441;   // "META"
constexpr uint32_t kStateTag = 0x53544154;  // "STAT"

}  // namespace

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<uint8_t> BuildSnapshot(const CheckpointMetadata& meta,
                                   const std::string& operator_name,
                                   const std::vector<uint8_t>& state) {
  Writer payload;
  payload.Tag(kMetaTag);
  payload.U64(meta.source_offset);
  payload.U64(meta.next_seq);
  payload.I64(meta.max_ts);
  payload.I64(meta.last_wm);
  payload.U64(meta.barrier_index);
  payload.Str(operator_name);
  payload.Tag(kStateTag);
  payload.U64(state.size());
  const std::vector<uint8_t>& p0 = payload.bytes();

  Writer out;
  for (char c : kSnapshotMagic) out.U8(static_cast<uint8_t>(c));
  out.U32(kSnapshotFormatVersion);
  out.U64(p0.size() + state.size());
  // Checksum covers the whole payload: header fields and state bytes.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const uint8_t* d, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= d[i];
      h *= 1099511628211ULL;
    }
  };
  mix(p0.data(), p0.size());
  mix(state.data(), state.size());
  out.U64(h);

  std::vector<uint8_t> blob = out.Take();
  blob.insert(blob.end(), p0.begin(), p0.end());
  blob.insert(blob.end(), state.begin(), state.end());
  return blob;
}

bool ParseSnapshot(const std::vector<uint8_t>& blob, CheckpointMetadata* meta,
                   std::string* operator_name, std::vector<uint8_t>* state) {
  Reader r(blob);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.U8());
  if (!r.ok() || std::memcmp(magic, kSnapshotMagic, 8) != 0) return false;
  if (r.U32() != kSnapshotFormatVersion) return false;
  const uint64_t payload_size = r.U64();
  const uint64_t checksum = r.U64();
  if (!r.ok() || payload_size != r.remaining()) return false;
  if (Fnv1a64(blob.data() + (blob.size() - payload_size), payload_size) !=
      checksum) {
    return false;
  }

  CheckpointMetadata m;
  r.Tag(kMetaTag);
  m.source_offset = r.U64();
  m.next_seq = r.U64();
  m.max_ts = r.I64();
  m.last_wm = r.I64();
  m.barrier_index = r.U64();
  std::string name = r.Str();
  r.Tag(kStateTag);
  const uint64_t state_size = r.U64();
  if (!r.ok() || state_size != r.remaining()) return false;

  *meta = m;
  *operator_name = std::move(name);
  state->assign(blob.end() - static_cast<ptrdiff_t>(state_size), blob.end());
  return true;
}

bool WriteSnapshotFile(const std::string& path,
                       const std::vector<uint8_t>& blob) {
  // Atomic persistence: write the whole blob to a temp file, fsync it, then
  // rename over the target. A crash at any point leaves either the old file
  // or the new one — never a torn mix — and the fsync before the rename
  // guarantees the data reaches disk before the name does. (A reader that
  // still finds a torn file, e.g. from a media error, is caught by the
  // container checksum and falls back to an older snapshot.)
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  size_t done = 0;
  while (done < blob.size()) {
    const ssize_t n =
        ::write(fd, blob.data() + done, blob.size() - done);
    if (n < 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // Persist the rename itself (the directory entry).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

bool ReadSnapshotFile(const std::string& path, std::vector<uint8_t>* blob) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamsize size = in.tellg();
  if (size < 0) return false;
  in.seekg(0);
  blob->resize(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(blob->data()), size);
  return static_cast<bool>(in);
}

}  // namespace state
}  // namespace scotty
