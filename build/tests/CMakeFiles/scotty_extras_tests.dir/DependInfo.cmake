
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/custom_window_test.cc" "tests/CMakeFiles/scotty_extras_tests.dir/custom_window_test.cc.o" "gcc" "tests/CMakeFiles/scotty_extras_tests.dir/custom_window_test.cc.o.d"
  "/root/repo/tests/frames_test.cc" "tests/CMakeFiles/scotty_extras_tests.dir/frames_test.cc.o" "gcc" "tests/CMakeFiles/scotty_extras_tests.dir/frames_test.cc.o.d"
  "/root/repo/tests/lifecycle_test.cc" "tests/CMakeFiles/scotty_extras_tests.dir/lifecycle_test.cc.o" "gcc" "tests/CMakeFiles/scotty_extras_tests.dir/lifecycle_test.cc.o.d"
  "/root/repo/tests/runtime_extras_test.cc" "tests/CMakeFiles/scotty_extras_tests.dir/runtime_extras_test.cc.o" "gcc" "tests/CMakeFiles/scotty_extras_tests.dir/runtime_extras_test.cc.o.d"
  "/root/repo/tests/soak_test.cc" "tests/CMakeFiles/scotty_extras_tests.dir/soak_test.cc.o" "gcc" "tests/CMakeFiles/scotty_extras_tests.dir/soak_test.cc.o.d"
  "/root/repo/tests/window_sweep_test.cc" "tests/CMakeFiles/scotty_extras_tests.dir/window_sweep_test.cc.o" "gcc" "tests/CMakeFiles/scotty_extras_tests.dir/window_sweep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scotty.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
