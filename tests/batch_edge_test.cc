// Edge cases of the columnar (SoA) batch path: degenerate batch shapes
// (empty, all-punctuation, shorter than a vector register, unaligned tails),
// kernel-mode cross-checks pinned through every dispatch target the binary
// supports, and the supporting utilities (FastMod, FlatKeyMap) the hot
// paths lean on.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/kernels.h"
#include "aggregates/registry.h"
#include "common/fastmod.h"
#include "common/flat_hash.h"
#include "common/rng.h"
#include "common/tuple_batch.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "testing/harness.h"
#include "windows/punctuation.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testing::FinalResults;
using testing::ResultKey;
using testing::T;

/// Every kernel mode this binary+CPU can actually run (always includes
/// scalar; SSE2/AVX2 when compiled in and supported).
std::vector<simd::KernelMode> SupportedModes() {
  std::vector<simd::KernelMode> modes = {simd::KernelMode::kScalar};
  for (const simd::KernelMode m :
       {simd::KernelMode::kSse2, simd::KernelMode::kAvx2}) {
    simd::SetModeForTesting(m);
    if (simd::ActiveMode() == m) modes.push_back(m);
  }
  simd::SetModeForTesting(simd::KernelMode::kAuto);
  return modes;
}

/// RAII pin for a kernel mode so a failing ASSERT cannot leak the override
/// into later tests.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(simd::KernelMode m) { simd::SetModeForTesting(m); }
  ~ScopedKernelMode() { simd::SetModeForTesting(simd::KernelMode::kAuto); }
};

std::unique_ptr<GeneralSlicingOperator> MakeOp(bool punct_window = false) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = false;
  o.allowed_lateness = 1'000'000;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  op->AddAggregation(MakeAggregation("sum"));
  op->AddAggregation(MakeAggregation("min"));
  op->AddWindow(std::make_shared<TumblingWindow>(20));
  op->AddWindow(std::make_shared<SlidingWindow>(30, 10));
  if (punct_window) op->AddWindow(std::make_shared<PunctuationWindow>());
  return op;
}

std::map<ResultKey, Value> RunColumns(const std::vector<Tuple>& tuples,
                                      Time final_wm, bool punct_window,
                                      size_t offset_jitter = 0) {
  auto op = MakeOp(punct_window);
  // Stage the whole stream into one SoA batch, then deliver it in subviews
  // whose start offsets are deliberately NOT multiples of the alignment
  // quantum when offset_jitter > 0: column kernels must accept unaligned
  // heads and ragged tails.
  TupleBatchSoA all(tuples.size());
  for (const Tuple& t : tuples) all.PushBack(t);
  size_t i = 0;
  size_t chunk = offset_jitter == 0 ? tuples.size() : offset_jitter;
  while (i < all.size()) {
    const size_t len = std::min(chunk, all.size() - i);
    op->ProcessTupleColumns(all.Subview(i, len));
    i += len;
    chunk = chunk == 1 ? 5 : chunk - 1;  // 5,4,3,2,1,5,4,... odd offsets
  }
  op->ProcessWatermark(final_wm);
  return FinalResults(op->TakeResults());
}

std::map<ResultKey, Value> RunPerTuple(const std::vector<Tuple>& tuples,
                                       Time final_wm, bool punct_window) {
  auto op = MakeOp(punct_window);
  for (const Tuple& t : tuples) op->ProcessTuple(t);
  op->ProcessWatermark(final_wm);
  return FinalResults(op->TakeResults());
}

TEST(BatchEdgeTest, EmptyBatchIsANoOp) {
  auto op = MakeOp();
  op->ProcessTupleColumns(TupleColumnsView{});  // null columns, size 0
  TupleBatchSoA empty(8);
  op->ProcessTupleColumns(empty.View());
  op->ProcessTuple(T(5, 1.0, 0));
  op->ProcessTupleColumns(empty.View());
  op->ProcessWatermark(100);
  const auto got = FinalResults(op->TakeResults());
  const auto want = RunPerTuple({T(5, 1.0, 0)}, 100, false);
  EXPECT_EQ(got, want);
}

TEST(BatchEdgeTest, AllPunctuationBatchMatchesPerTuple) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 6; ++i) {
    Tuple t = T(10 + i * 7, 0.0, static_cast<uint64_t>(i));
    t.is_punctuation = true;
    tuples.push_back(t);
  }
  const auto want = RunPerTuple(tuples, 200, /*punct_window=*/true);
  const auto got = RunColumns(tuples, 200, /*punct_window=*/true);
  EXPECT_EQ(got, want);
}

TEST(BatchEdgeTest, MixedPunctuationAndDataMatchesPerTuple) {
  Rng rng(7);
  std::vector<Tuple> tuples;
  Time ts = 0;
  for (int i = 0; i < 300; ++i) {
    ts += static_cast<Time>(rng.NextBounded(3));
    Tuple t = T(ts, static_cast<double>(rng.NextBounded(50)),
                static_cast<uint64_t>(i));
    t.is_punctuation = rng.NextBounded(10) == 0;
    tuples.push_back(t);
  }
  const auto want = RunPerTuple(tuples, ts + 100, /*punct_window=*/true);
  for (const size_t jitter : {size_t{0}, size_t{5}}) {
    EXPECT_EQ(RunColumns(tuples, ts + 100, true, jitter), want)
        << "jitter=" << jitter;
  }
}

TEST(BatchEdgeTest, BatchesSmallerThanVectorWidthMatchPerTuple) {
  // 1..7 tuples: shorter than the widest vector step (4 doubles with AVX2)
  // and than the alignment quantum (8 elements). Every kernel must fall
  // through its tail handling correctly.
  for (size_t n = 1; n <= 7; ++n) {
    std::vector<Tuple> tuples;
    for (size_t i = 0; i < n; ++i) {
      tuples.push_back(T(static_cast<Time>(3 * i), 1.5 * (i + 1), i));
    }
    const auto want = RunPerTuple(tuples, 100, false);
    for (const simd::KernelMode m : SupportedModes()) {
      ScopedKernelMode pin(m);
      EXPECT_EQ(RunColumns(tuples, 100, false), want)
          << "n=" << n << " mode=" << simd::ModeName(m);
    }
  }
}

TEST(BatchEdgeTest, SingleRunSpanningWholeBatchMatchesPerTuple) {
  // All 256 tuples share one slice (monotone ts inside [0,20)): the
  // foldable-run scan must cover the entire batch in a single fold.
  std::vector<Tuple> tuples;
  for (int i = 0; i < 256; ++i) {
    tuples.push_back(T(i % 20 == 0 ? 3 : 3, (i % 13) / 3.0,
                       static_cast<uint64_t>(i)));
  }
  const auto want = RunPerTuple(tuples, 100, false);
  for (const simd::KernelMode m : SupportedModes()) {
    ScopedKernelMode pin(m);
    EXPECT_EQ(RunColumns(tuples, 100, false), want) << simd::ModeName(m);
  }
}

TEST(BatchEdgeTest, UnalignedSubviewDeliveryMatchesPerTuple) {
  Rng rng(99);
  std::vector<Tuple> tuples;
  Time ts = 0;
  for (int i = 0; i < 500; ++i) {
    ts += static_cast<Time>(rng.NextBounded(2));
    tuples.push_back(T(ts, (static_cast<double>(rng.NextBounded(400)) - 197) / 9.0,
                       static_cast<uint64_t>(i)));
  }
  const auto want = RunPerTuple(tuples, ts + 100, false);
  for (const simd::KernelMode m : SupportedModes()) {
    ScopedKernelMode pin(m);
    EXPECT_EQ(RunColumns(tuples, ts + 100, false, /*offset_jitter=*/5), want)
        << simd::ModeName(m);
  }
}

// ---------------------------------------------------------------------------
// Raw kernel cross-checks: every mode vs the scalar reference at lengths
// that cover empty, sub-width, width-multiple, and ragged-tail cases, from
// aligned and unaligned column heads.

TEST(KernelEdgeTest, FoldKernelsAgreeAcrossModesLengthsAndOffsets) {
  constexpr size_t kN = 100;
  alignas(kBatchAlignBytes) double v[kN];
  Rng rng(31);
  for (size_t i = 0; i < kN; ++i) {
    v[i] = (static_cast<double>(rng.NextBounded(2000)) - 997.0) / 7.0;
  }
  const auto modes = SupportedModes();
  for (const size_t off : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
    for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{4},
                           size_t{5}, size_t{8}, size_t{15}, size_t{64},
                           size_t{93}}) {
      ASSERT_LE(off + n, kN);
      ScopedKernelMode pin(simd::KernelMode::kScalar);
      const double sum_ref = simd::SumColumn(v + off, n, 0.25);
      const double min_ref =
          simd::MinColumn(v + off, n, std::numeric_limits<double>::infinity());
      const double max_ref =
          simd::MaxColumn(v + off, n, -std::numeric_limits<double>::infinity());
      for (const simd::KernelMode m : modes) {
        simd::SetModeForTesting(m);
        // Bit-identical equality — EXPECT_EQ on doubles, no tolerance.
        EXPECT_EQ(simd::SumColumn(v + off, n, 0.25), sum_ref)
            << simd::ModeName(m) << " off=" << off << " n=" << n;
        EXPECT_EQ(simd::MinColumn(v + off, n,
                                  std::numeric_limits<double>::infinity()),
                  min_ref)
            << simd::ModeName(m) << " off=" << off << " n=" << n;
        EXPECT_EQ(simd::MaxColumn(v + off, n,
                                  -std::numeric_limits<double>::infinity()),
                  max_ref)
            << simd::ModeName(m) << " off=" << off << " n=" << n;
      }
    }
  }
}

TEST(KernelEdgeTest, MonotoneRunLengthAgreesAcrossModes) {
  constexpr size_t kN = 120;
  alignas(kBatchAlignBytes) Time ts[kN];
  Rng rng(17);
  Time t = 0;
  for (size_t i = 0; i < kN; ++i) {
    // Mostly monotone with occasional regressions, so runs end both at
    // ts-order breaks and at the bound.
    if (rng.NextBounded(12) == 0 && t > 3) t -= 3;
    ts[i] = t;
    t += static_cast<Time>(rng.NextBounded(3));
  }
  const auto modes = SupportedModes();
  for (const size_t off : {size_t{0}, size_t{1}, size_t{5}}) {
    for (const size_t n : {size_t{0}, size_t{3}, size_t{16}, size_t{100}}) {
      ASSERT_LE(off + n, kN);
      for (const Time last : {Time{0}, ts[off], ts[off] + 1}) {
        for (const Time bound : {Time{5}, Time{40},
                                 std::numeric_limits<Time>::max()}) {
          ScopedKernelMode pin(simd::KernelMode::kScalar);
          const size_t ref =
              simd::MonotoneRunLength(ts + off, n, last, bound);
          for (const simd::KernelMode m : modes) {
            simd::SetModeForTesting(m);
            EXPECT_EQ(simd::MonotoneRunLength(ts + off, n, last, bound), ref)
                << simd::ModeName(m) << " off=" << off << " n=" << n
                << " last=" << last << " bound=" << bound;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FastMod: exactness against the hardware `%`, and stream bit-identity.

TEST(FastModTest, MatchesHardwareModuloExhaustively) {
  std::vector<uint64_t> divisors = {1,  2,  3,   5,   7,    8,    16,  37,
                                    63, 64, 100, 127, 1000, 84232};
  // The round-up-magic-overflow (kMagicAdd) and huge-divisor (kDiv) paths.
  divisors.push_back((uint64_t{1} << 62) + 1);
  divisors.push_back((uint64_t{1} << 63) + 12345);
  Rng rng(5);
  for (const uint64_t d : divisors) {
    FastMod fm(d);
    EXPECT_EQ(fm.divisor(), d);
    for (uint64_t x = 0; x < 200; ++x) EXPECT_EQ(fm.Mod(x), x % d) << d;
    for (int i = 0; i < 5000; ++i) {
      const uint64_t x = rng.NextU64();
      ASSERT_EQ(fm.Mod(x), x % d) << "d=" << d << " x=" << x;
    }
    // Boundary values around multiples of d and the extremes.
    for (const uint64_t x :
         {d - 1, d, d + 1, 2 * d - 1, 2 * d,
          std::numeric_limits<uint64_t>::max(),
          std::numeric_limits<uint64_t>::max() - 1}) {
      EXPECT_EQ(fm.Mod(x), x % d) << "d=" << d << " x=" << x;
    }
  }
}

TEST(FastModTest, SensorStreamBitIdenticalToPlainModulo) {
  // The generator draws value/key via FastMod; an independent replay of the
  // same Rng with plain `%` must reproduce the stream exactly.
  SensorConfig cfg = SensorStream::Football();
  SensorStream stream(cfg);
  Rng replay(cfg.seed);
  Time now = 0;
  double carry = 0.0;
  double until_gap =
      cfg.rate_hz * 60.0 / cfg.session_gaps_per_minute;
  for (int i = 0; i < 20000; ++i) {
    Tuple t;
    ASSERT_TRUE(stream.Next(&t));
    carry += 1000.0 / cfg.rate_hz;
    const Time step = static_cast<Time>(carry);
    carry -= static_cast<double>(step);
    now += step;
    until_gap -= 1.0;
    if (until_gap <= 0) {
      now += cfg.gap_length_ms;
      until_gap = cfg.rate_hz * 60.0 / cfg.session_gaps_per_minute;
    }
    ASSERT_EQ(t.ts, now) << i;
    ASSERT_EQ(t.value,
              static_cast<double>(
                  replay.NextU64() %
                  static_cast<uint64_t>(cfg.distinct_values)))
        << i;
    ASSERT_EQ(t.key, static_cast<int64_t>(
                         replay.NextU64() %
                         static_cast<uint64_t>(cfg.num_keys)))
        << i;
  }
}

// ---------------------------------------------------------------------------
// FlatKeyMap: the open-addressing map under the keyed shuffle's usage
// pattern (FindOrInsert, O(1) Clear via generations, growth).

TEST(FlatKeyMapTest, FindOrInsertGrowthAndClear) {
  FlatKeyMap<uint32_t> map(16);
  std::map<int64_t, uint32_t> ref;
  Rng rng(123);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 500; ++i) {
      const int64_t key =
          static_cast<int64_t>(rng.NextBounded(300)) - 150;  // negatives too
      bool inserted = false;
      uint32_t& slot =
          map.FindOrInsert(key, static_cast<uint32_t>(ref.size()), &inserted);
      const bool was_new = ref.find(key) == ref.end();
      EXPECT_EQ(inserted, was_new);
      if (was_new) ref[key] = slot;
      EXPECT_EQ(slot, ref[key]);
    }
    EXPECT_EQ(map.size(), ref.size());
    for (const auto& [key, value] : ref) {
      uint32_t* found = map.Find(key);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, value);
    }
    EXPECT_EQ(map.Find(10'000), nullptr);
    map.Clear();
    ref.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.Find(0), nullptr);  // stale generations read as empty
  }
}

}  // namespace
}  // namespace scotty
