file(REMOVE_RECURSE
  "CMakeFiles/cdn_billing_percentile.dir/cdn_billing_percentile.cpp.o"
  "CMakeFiles/cdn_billing_percentile.dir/cdn_billing_percentile.cpp.o.d"
  "cdn_billing_percentile"
  "cdn_billing_percentile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_billing_percentile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
