# Empty dependencies file for bench_fig14_holistic.
# This may be replaced when dependencies are built.
