// Unit tests for the fuzzing infrastructure itself — the harness verifies
// the engine, this verifies the harness: fault-plan seed derivation,
// oracle agreement on hand-built fixed streams, the coverage map, the
// corpus round trip, and the mutation engine's invariant preservation.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "aggregates/registry.h"
#include "common/rng.h"
#include "core/general_slicing_operator.h"
#include "testing/corpus.h"
#include "testing/coverage.h"
#include "testing/differential.h"
#include "testing/fault_injector.h"
#include "testing/harness.h"
#include "testing/mutator.h"
#include "testing/oracle.h"

namespace scotty {
namespace testing {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector seed derivation

TEST(FaultInjector, PlanDerivationIsDeterministic) {
  for (uint64_t seed : {1ull, 42ull, 0xDEADBEEFull, 987654321ull}) {
    const FaultPlan a = MakeFaultPlan(seed, 500);
    const FaultPlan b = MakeFaultPlan(seed, 500);
    EXPECT_EQ(a.crash_index, b.crash_index);
    EXPECT_EQ(a.fault, b.fault);
    EXPECT_EQ(a.fault_arg, b.fault_arg);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.delta_fault, b.delta_fault);
    EXPECT_EQ(a.delta_fault_arg, b.delta_fault_arg);
  }
}

TEST(FaultInjector, PlanDerivationCoversTheMatrix) {
  std::set<uint8_t> modes;
  std::set<uint8_t> faults;
  std::set<uint8_t> delta_faults;
  uint64_t min_idx = ~0ull;
  uint64_t max_idx = 0;
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    const FaultPlan p = MakeFaultPlan(seed, 200);
    ASSERT_GE(p.crash_index, 1u);
    ASSERT_LE(p.crash_index, 200u);
    min_idx = std::min(min_idx, p.crash_index);
    max_idx = std::max(max_idx, p.crash_index);
    modes.insert(static_cast<uint8_t>(p.mode));
    faults.insert(static_cast<uint8_t>(p.fault));
    if (p.mode != PersistMode::kSyncFull) {
      delta_faults.insert(static_cast<uint8_t>(p.delta_fault));
    }
  }
  EXPECT_EQ(modes.size(), 3u) << "all three persistence modes drawn";
  EXPECT_EQ(faults.size(), 3u) << "none/truncate/bit-flip all drawn";
  EXPECT_EQ(delta_faults.size(), 4u) << "all delta fault kinds drawn";
  EXPECT_LT(min_idx, 30u) << "early crashes drawn";
  EXPECT_GT(max_idx, 170u) << "late crashes drawn";
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  size_t distinct = 0;
  const FaultPlan base = MakeFaultPlan(1, 1000);
  for (uint64_t seed = 2; seed <= 20; ++seed) {
    const FaultPlan p = MakeFaultPlan(seed, 1000);
    distinct += p.crash_index != base.crash_index;
  }
  EXPECT_GT(distinct, 10u);
}

// ---------------------------------------------------------------------------
// Oracle agreement on hand-built fixed streams: tiny, exactly computable
// cases run through the real slicing operator AND the brute-force oracle.

std::map<ResultKey, Value> Slicing(const std::vector<WindowSpec>& windows,
                                   const std::vector<std::string>& aggs,
                                   std::vector<Tuple> tuples, Time final_wm) {
  GeneralSlicingOperator::Options o;
  o.allowed_lateness = 1'000'000;
  GeneralSlicingOperator op(o);
  for (const std::string& a : aggs) op.AddAggregation(MakeAggregation(a));
  for (const WindowSpec& w : windows) op.AddWindow(w.Instantiate());
  return RunToFinalResults(op, tuples, final_wm);
}

std::map<ResultKey, Value> Oracle(const std::vector<WindowSpec>& windows,
                                  const std::vector<std::string>& aggs,
                                  std::vector<Tuple> tuples, Time final_wm) {
  for (size_t i = 0; i < tuples.size(); ++i) tuples[i].seq = i;
  return OracleResults(windows, aggs, tuples, final_wm);
}

TEST(OracleFixedStreams, TumblingSumMatchesByHand) {
  std::vector<WindowSpec> w;
  ASSERT_TRUE(ParseWindowSpecs("tumbling:10", &w));
  const std::vector<Tuple> s = {T(1, 2), T(4, 3), T(12, 5), T(19, 7),
                                T(25, 11)};
  // final_wm = 30 keeps the instance set finite: the oracle reports every
  // instance ending at or before the final watermark, including empty ones,
  // so a large watermark would append a tail of <empty> windows here.
  const auto oracle = Oracle(w, {"sum"}, s, 30);
  // Hand-computed: [0,10)=5, [10,20)=12, [20,30)=11.
  const std::map<ResultKey, Value> expected = {
      {{0, 0, 0, 10}, Value(5.0)},
      {{0, 0, 10, 20}, Value(12.0)},
      {{0, 0, 20, 30}, Value(11.0)},
  };
  EXPECT_EQ(oracle, expected);
  EXPECT_EQ(Slicing(w, {"sum"}, s, 30), oracle);
}

TEST(OracleFixedStreams, SlidingSessionAgreeWithOperator) {
  std::vector<WindowSpec> w;
  ASSERT_TRUE(ParseWindowSpecs("sliding:20:5,session:8", &w));
  const std::vector<Tuple> s = {T(2, 1),  T(5, 2),  T(9, 4),
                                T(30, 8), T(33, 16), T(60, 32)};
  const auto oracle = Oracle(w, {"sum", "max"}, s, 200);
  EXPECT_EQ(Slicing(w, {"sum", "max"}, s, 200), oracle);
  // Spot-check the sessions: [2,17), [30,41), [60,68).
  EXPECT_EQ(oracle.at({1, 0, 2, 17}), Value(7.0));
  EXPECT_EQ(oracle.at({1, 0, 30, 41}), Value(24.0));
  EXPECT_EQ(oracle.at({1, 1, 60, 68}), Value(32.0));
}

TEST(OracleFixedStreams, OutOfOrderArrivalAgrees) {
  std::vector<WindowSpec> w;
  ASSERT_TRUE(ParseWindowSpecs("tumbling:10,ctumbling:2", &w));
  // Deliberately shuffled arrival order with a duplicate timestamp.
  const std::vector<Tuple> s = {T(12, 1), T(3, 2), T(17, 3),
                                T(3, 4),  T(8, 5), T(21, 6)};
  const auto oracle = Oracle(w, {"sum", "count"}, s, 100);
  EXPECT_EQ(Slicing(w, {"sum", "count"}, s, 100), oracle);
  // The watermark baseline is the first ARRIVAL's ts - 1 (here 11, from
  // T(12)), so [0,10) is never reported even though tuples at ts 3/3/8
  // exist — they only surface through windows still open at the baseline.
  EXPECT_EQ(oracle.count({0, 0, 0, 10}), 0u);
  EXPECT_EQ(oracle.at({0, 0, 10, 20}), Value(4.0));  // 1+3 at ts 12,17
  // Count windows rank tuples in (ts, seq) order regardless of arrival:
  // ranks 0..1 are the two ts-3 tuples, values 2+4.
  EXPECT_EQ(oracle.at({1, 0, 0, 2}), Value(6.0));
}

TEST(OracleFixedStreams, PunctuationWindowsAgree) {
  std::vector<WindowSpec> w;
  ASSERT_TRUE(ParseWindowSpecs("punct", &w));
  std::vector<Tuple> s = {T(1, 2), T(4, 3)};
  Tuple p1 = T(4, 0);  // punctuation sharing ts 4 — the hard case
  p1.is_punctuation = true;
  s.push_back(p1);
  s.push_back(T(7, 5));
  Tuple p2 = T(9, 0);
  p2.is_punctuation = true;
  s.push_back(p2);
  s.push_back(T(11, 7));
  const auto oracle = Oracle(w, {"sum"}, s, 100);
  EXPECT_EQ(Slicing(w, {"sum"}, s, 100), oracle);
  // The data tuple sharing ts 4 with the punctuation belongs to the window
  // STARTING at 4 (instances are [start, end) over tuple ts), so [4,9)
  // holds T(4,3) + T(7,5) = 8 — exactly the boundary the FCF same-ts bug
  // got wrong.
  EXPECT_EQ(oracle.at({0, 0, 4, 9}), Value(8.0));
}

// ---------------------------------------------------------------------------
// Coverage map

TEST(CoverageMap, NewFeaturesDiscoverOnceThenSaturate) {
  CoverageMap& map = CoverageMap::Global();
  map.Reset();
  map.BeginRun();
  CoverFeature(FeatureDomain::kWindowShape, 1, 2);
  CoverFeature(FeatureDomain::kAggregation, 42);
  std::vector<uint32_t> feats;
  EXPECT_EQ(map.EndRun(&feats), 2u);
  EXPECT_EQ(feats.size(), 2u);
  EXPECT_EQ(map.CoveredCount(), 2u);

  map.BeginRun();
  CoverFeature(FeatureDomain::kWindowShape, 1, 2);
  CoverFeature(FeatureDomain::kAggregation, 42);
  EXPECT_EQ(map.EndRun(&feats), 0u) << "repeat run discovers nothing";
  EXPECT_EQ(feats.size(), 2u) << "but still reports its full feature set";

  map.BeginRun();
  CoverFeature(FeatureDomain::kAggregation, 43);
  EXPECT_EQ(map.EndRun(), 1u);
  EXPECT_EQ(map.CoveredCount(), 3u);
  map.Reset();
  EXPECT_EQ(map.CoveredCount(), 0u);
}

TEST(CoverageMap, EdgeHitCountsAreLog2Bucketed) {
  CoverageMap& map = CoverageMap::Global();
  map.Reset();
  map.BeginRun();
  map.HitEdge(7);
  EXPECT_EQ(map.EndRun(), 1u);
  map.BeginRun();
  map.HitEdge(7);  // same edge, same bucket (count 1)
  EXPECT_EQ(map.EndRun(), 0u);
  map.BeginRun();
  for (int i = 0; i < 100; ++i) map.HitEdge(7);  // bucket log2(100) = 6
  EXPECT_EQ(map.EndRun(), 1u) << "hot loop is a distinct feature";
  map.Reset();
}

TEST(CoverageMap, Log2Buckets) {
  EXPECT_EQ(Log2Bucket(0), 0u);
  EXPECT_EQ(Log2Bucket(1), 0u);
  EXPECT_EQ(Log2Bucket(2), 1u);
  EXPECT_EQ(Log2Bucket(3), 1u);
  EXPECT_EQ(Log2Bucket(4), 2u);
  EXPECT_EQ(Log2Bucket(1023), 9u);
  EXPECT_EQ(Log2Bucket(1024), 10u);
}

TEST(CoverageMap, DifferentialRunEmitsSemanticFeatures) {
  CoverageMap& map = CoverageMap::Global();
  map.Reset();
  map.BeginRun();
  DifferentialConfig cfg = RandomConfig(7, 120);
  EXPECT_TRUE(RunDifferential(cfg).ok);
  EXPECT_GT(map.EndRun(), 10u)
      << "one differential run must light up the semantic map";
  map.Reset();
}

// ---------------------------------------------------------------------------
// Corpus: serialization round trip and persistence

TEST(Corpus, ConfigLineRoundTrips) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const DifferentialConfig cfg = RandomConfig(seed, 777);
    DifferentialConfig back;
    std::string err;
    ASSERT_TRUE(ParseConfigLine(cfg.ToFlags(), &back, &err))
        << cfg.ToFlags() << "\n  " << err;
    EXPECT_EQ(back.ToFlags(), cfg.ToFlags());
  }
}

TEST(Corpus, ParseAcceptsProgramTokenAndComments) {
  DifferentialConfig cfg;
  std::string err;
  EXPECT_TRUE(ParseConfigLine(
      "fuzz_differential --seed=9 --tuples=50 --queries=tumbling:10 "
      "--aggs=sum,count # trailing note",
      &cfg, &err))
      << err;
  EXPECT_EQ(cfg.stream.seed, 9u);
  EXPECT_EQ(cfg.stream.num_tuples, 50);
  EXPECT_EQ(cfg.aggs.size(), 2u);
}

TEST(Corpus, ParseRejectsMalformedLines) {
  DifferentialConfig cfg;
  std::string err;
  EXPECT_FALSE(ParseConfigLine("", &cfg, &err));
  EXPECT_FALSE(ParseConfigLine("--seed=1 --tuples=10 --aggs=sum", &cfg, &err))
      << "missing --queries must fail";
  EXPECT_FALSE(ParseConfigLine(
      "--seed=1 --queries=tumbling:10 --aggs=not-an-agg", &cfg, &err));
  EXPECT_FALSE(ParseConfigLine(
      "--seed=1 --queries=bogus:10 --aggs=sum", &cfg, &err));
  EXPECT_FALSE(ParseConfigLine(
      "--seed=1 --queries=tumbling:10 --aggs=sum --bogus-flag=3", &cfg,
      &err));
}

TEST(Corpus, PersistAndLoadDirRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("scotty-corpus-test-" + std::to_string(static_cast<long>(::getpid()))))
          .string();
  std::filesystem::remove_all(dir);

  Corpus corpus;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    CorpusEntry e;
    e.cfg = RandomConfig(seed, 123);
    e.new_features = {1, 2, 3};
    std::string err;
    ASSERT_TRUE(corpus.Persist(dir, e, &err)) << err;
    corpus.Add(std::move(e));
  }

  Corpus reloaded;
  std::vector<std::string> errors;
  EXPECT_EQ(reloaded.LoadDir(dir, &errors), 5u);
  EXPECT_TRUE(errors.empty());
  for (const CorpusEntry& e : reloaded.entries()) {
    EXPECT_TRUE(corpus.Contains(e.cfg));
  }
  // Re-persisting the same entries is idempotent (same ids, same bytes).
  EXPECT_EQ(reloaded.LoadDir(dir, &errors), 0u)
      << "second load dedups against existing entries";
  std::filesystem::remove_all(dir);
}

TEST(Corpus, LoadDirReportsMalformedFiles) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("scotty-corpus-bad-" + std::to_string(static_cast<long>(::getpid()))))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/bad.repro");
    out << "--seed=1 --queries=tumbling:10 --aggs=no-such-agg\n";
  }
  Corpus corpus;
  std::vector<std::string> errors;
  EXPECT_EQ(corpus.LoadDir(dir, &errors), 0u);
  EXPECT_EQ(errors.size(), 1u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Mutator: determinism and invariant preservation

TEST(Mutator, DeterministicUnderSeededRng) {
  const DifferentialConfig base = RandomConfig(3, 400);
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(Mutate(base, a).ToFlags(), Mutate(base, b).ToFlags());
  }
}

TEST(Mutator, MutantsPreserveHarnessInvariants) {
  Rng rng(17);
  DifferentialConfig cfg = RandomConfig(1, 300);
  for (int step = 0; step < 500; ++step) {
    cfg = Mutate(cfg, rng);
    const StreamSpec& s = cfg.stream;
    ASSERT_GE(s.num_tuples, 1);
    ASSERT_GE(s.step_hi, s.step_lo);
    ASSERT_GE(s.step_hi, 1);
    ASSERT_GE(s.value_range, 1u);
    ASSERT_FALSE(cfg.windows.empty());
    ASSERT_FALSE(cfg.aggs.empty());
    bool has_punct = false;
    for (const WindowSpec& w : cfg.windows) {
      ASSERT_GE(w.length, 1) << w.ToString();
      switch (w.kind) {
        case WindowSpec::Kind::kSliding:
          ASSERT_GE(w.slide, 1) << w.ToString();
          ASSERT_LE(w.slide, w.length) << w.ToString();
          break;
        case WindowSpec::Kind::kThresholdFrame:
          // Frames need a reachable threshold and distinct timestamps.
          ASSERT_LE(static_cast<uint64_t>(w.length), s.value_range);
          ASSERT_GE(s.step_lo, 1) << "frames forbid duplicate timestamps";
          break;
        case WindowSpec::Kind::kPunctuation:
          has_punct = true;
          break;
        case WindowSpec::Kind::kLastNEveryT:
          ASSERT_GE(w.slide, 1) << w.ToString();
          break;
        default:
          break;
      }
    }
    if (has_punct) ASSERT_GT(s.punctuation_probability, 0.0);
    if (s.ooo_fraction > 0) ASSERT_GT(s.max_delay, 0);
    // Every mutant must survive the serialization round trip — mutants ARE
    // corpus entries.
    DifferentialConfig back;
    std::string err;
    ASSERT_TRUE(ParseConfigLine(cfg.ToFlags(), &back, &err))
        << cfg.ToFlags() << "\n  " << err;
    EXPECT_EQ(back.ToFlags(), cfg.ToFlags());
  }
}

TEST(Mutator, SpliceMixesParentsAndStaysValid) {
  Rng rng(23);
  const DifferentialConfig a = RandomConfig(5, 200);
  const DifferentialConfig b = RandomConfig(6, 200);
  for (int i = 0; i < 100; ++i) {
    const DifferentialConfig child = Splice(a, b, rng);
    ASSERT_FALSE(child.windows.empty());
    ASSERT_FALSE(child.aggs.empty());
    DifferentialConfig back;
    std::string err;
    ASSERT_TRUE(ParseConfigLine(child.ToFlags(), &back, &err)) << err;
  }
}

TEST(Mutator, MutantsActuallyRunClean) {
  // A sample of mutation chains through the full differential harness: the
  // mutator must produce configs the harness accepts end to end.
  Rng rng(31);
  DifferentialConfig cfg = RandomConfig(2, 60);
  for (int i = 0; i < 8; ++i) {
    cfg = Mutate(cfg, rng);
    DifferentialConfig small = cfg;
    small.stream.num_tuples = std::min(small.stream.num_tuples, 80);
    small.crash = 0;   // keep the unit test fast; crash runs have their own
    small.rescale = 0; // smoke budget in the fuzz lane
    const DifferentialOutcome o = RunDifferential(small);
    EXPECT_TRUE(o.ok) << small.ToFlags() << "\n  " << o.detail;
  }
}

}  // namespace
}  // namespace testing
}  // namespace scotty
