# Empty compiler generated dependencies file for scotty_unit_tests.
# This may be replaced when dependencies are built.
