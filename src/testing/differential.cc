#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <sstream>

#include <unistd.h>

#include "aggregates/kernels.h"
#include "aggregates/registry.h"
#include "baselines/aggregate_tree.h"
#include "baselines/buckets.h"
#include "baselines/tuple_buffer.h"
#include "core/general_slicing_operator.h"
#include "query/query_def.h"
#include "query/query_registry.h"
#include "query/window_desc.h"
#include "runtime/keyed_operator.h"
#include "testing/coverage.h"
#include "testing/fault_injector.h"
#include "testing/harness.h"
#include "testing/oracle.h"

namespace scotty {
namespace testing {

namespace {

/// Lateness horizon far beyond any generated delay: no technique ever
/// drops or evicts state the oracle still accounts for.
constexpr Time kLateness = 1'000'000'000'000;

/// Aggregations whose partial merges are order-dependent floating point
/// (Chan's M2 combination, log-domain products): compared with tolerance
/// instead of bit equality.
bool IsApproxAgg(const std::string& name) {
  return name == "stddev" || name == "geometric-mean";
}

bool ValuesMatch(const Value& a, const Value& b, bool approx) {
  if (a == b) return true;
  if (!approx) return false;
  if (a.IsEmpty() || b.IsEmpty()) return false;
  const double x = a.Numeric();
  const double y = b.Numeric();
  if (std::isnan(x) && std::isnan(y)) return true;
  const double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
  return std::fabs(x - y) <= 1e-6 * scale;
}

std::unique_ptr<GeneralSlicingOperator> MakeSlicing(
    const DifferentialConfig& cfg, StoreMode mode, bool in_order) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = in_order;
  o.allowed_lateness = kLateness;
  o.store_mode = mode;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  for (const std::string& agg : cfg.aggs) {
    op->AddAggregation(MakeAggregation(agg));
  }
  for (const WindowSpec& w : cfg.windows) op->AddWindow(w.Instantiate());
  return op;
}

template <typename Op>
std::unique_ptr<Op> MakeBaseline(const DifferentialConfig& cfg) {
  auto op = std::make_unique<Op>(false, kLateness);
  for (const std::string& agg : cfg.aggs) {
    op->AddAggregation(MakeAggregation(agg));
  }
  for (const WindowSpec& w : cfg.windows) op->AddWindow(w.Instantiate());
  return op;
}

/// Per-technique scratch directory for crash-recovery runs: unique per
/// process so parallel fuzz shards never collide, removed by the runner.
std::string CrashScratchDir(const std::string& technique) {
  namespace fs = std::filesystem;
  const fs::path p =
      fs::temp_directory_path() /
      ("scotty-crash-" + std::to_string(static_cast<long>(::getpid()))) /
      technique;
  return p.string();
}

std::string Describe(const ResultKey& key) {
  std::ostringstream os;
  os << "(w=" << std::get<0>(key) << ", a=" << std::get<1>(key) << ", ["
     << std::get<2>(key) << "," << std::get<3>(key) << "))";
  return os.str();
}

std::string DescribeKeyed(const KeyedResultKey& key) {
  std::ostringstream os;
  os << "(k=" << std::get<0>(key) << ", w=" << std::get<1>(key)
     << ", a=" << std::get<2>(key) << ", [" << std::get<3>(key) << ","
     << std::get<4>(key) << "))";
  return os.str();
}

uint64_t NameHash(const std::string& s) {
  return Fnv1a64(s.data(), s.size());
}

/// Semantic features of the config itself: the mutation engine's whole
/// search space, so guidance can tell apart regimes (sorted vs OOO, window
/// shapes, persistence dimensions) even before any operator runs.
void CoverConfigFeatures(const DifferentialConfig& cfg, bool sorted) {
  for (const WindowSpec& w : cfg.windows) {
    const uint64_t kind = (static_cast<uint64_t>(w.kind) << 1) |
                          (w.measure == Measure::kCount ? 1 : 0);
    CoverFeature(FeatureDomain::kWindowShape, kind,
                 Log2Bucket(static_cast<uint64_t>(w.length)) * 64 +
                     Log2Bucket(static_cast<uint64_t>(w.slide) + 1));
  }
  for (const std::string& a : cfg.aggs) {
    CoverFeature(FeatureDomain::kAggregation, NameHash(a));
  }
  const StreamSpec& s = cfg.stream;
  CoverFeature(FeatureDomain::kStreamShape, 0,
               (s.ooo_fraction > 0 ? 1u : 0u) |
                   (s.burst_probability > 0 ? 2u : 0u) |
                   (s.gap_probability > 0 ? 4u : 0u) |
                   (s.punctuation_probability > 0 ? 8u : 0u) |
                   (sorted ? 16u : 0u));
  CoverFeature(FeatureDomain::kStreamShape, 1,
               Log2Bucket(static_cast<uint64_t>(s.max_delay) + 1) * 64 +
                   Log2Bucket(
                       static_cast<uint64_t>(s.ooo_fraction * 100.0) + 1));
  CoverFeature(FeatureDomain::kDimension, 0,
               Log2Bucket(static_cast<uint64_t>(cfg.wm_every) + 1) * 64 +
                   Log2Bucket(static_cast<uint64_t>(cfg.batch) + 1));
  CoverFeature(FeatureDomain::kDimension, 1,
               (cfg.checkpoint != 0 ? 1u : 0u) | (cfg.crash != 0 ? 2u : 0u) |
                   (cfg.rescale != 0 ? 4u : 0u) |
                   (cfg.shared != 0 ? 8u : 0u) |
                   (cfg.overload != 0 ? 16u : 0u));
  CoverFeature(FeatureDomain::kDimension, 2,
               Log2Bucket(static_cast<uint64_t>(s.num_tuples)));
  simd::KernelMode km = simd::KernelMode::kAuto;
  (void)simd::ParseMode(cfg.kernel, &km);
  CoverFeature(FeatureDomain::kDimension, 3,
               (cfg.layout == "soa" ? 1u : 0u) |
                   (static_cast<uint64_t>(km) << 1));
}

/// Per-technique features after a run: which window kinds the technique
/// actually exercised, and — for the slicing operator — the slice-chain
/// shape the stream drove it into (counts log2-bucketed, AFL style).
void CoverTechniqueRun(const std::string& tech, const DifferentialConfig& cfg,
                       const GeneralSlicingOperator* slicing) {
  const uint64_t t = NameHash(tech);
  for (const WindowSpec& w : cfg.windows) {
    CoverFeature(FeatureDomain::kTechniqueWindow, t,
                 static_cast<uint64_t>(w.kind));
  }
  if (slicing == nullptr) return;
  const OperatorStats& st = slicing->stats();
  if (slicing->time_store() != nullptr) {
    CoverFeature(FeatureDomain::kSliceCount, t,
                 Log2Bucket(slicing->time_store()->SlicesCreated()));
  }
  CoverFeature(FeatureDomain::kSliceChurn, t,
               Log2Bucket(st.slice_merges + 1) * 64 +
                   Log2Bucket(st.slice_splits + 1));
  CoverFeature(FeatureDomain::kSliceChurn, t ^ 1,
               Log2Bucket(st.slice_recomputes + 1) * 64 +
                   Log2Bucket(st.count_shifts + 1));
  CoverFeature(FeatureDomain::kTechniqueOutcome, t,
               Log2Bucket(st.windows_emitted + 1) * 64 +
                   Log2Bucket(st.window_updates_emitted + 1));
  CoverFeature(FeatureDomain::kStreamShape, t,
               Log2Bucket(st.out_of_order_tuples + 1) * 64 +
                   Log2Bucket(st.late_tuples + 1));
}

/// Crash/rescale recovery features: persistence mode × injected faults is
/// the fault-site matrix, and the recovery observables (fallback depth,
/// delta-chain length, barrier count) are exactly the rare-path state the
/// nightly random sweeps kept missing.
void CoverCrashRun(const std::string& tech, const FaultPlan& plan,
                   const CrashRunStats& stats, size_t num_tuples) {
  const uint64_t t = NameHash(tech);
  CoverFeature(FeatureDomain::kCrashSite, static_cast<uint64_t>(plan.mode),
               static_cast<uint64_t>(plan.fault) * 8 +
                   static_cast<uint64_t>(plan.delta_fault));
  if (num_tuples > 0) {
    // Crash position in eighths of the stream: early crashes (no barrier
    // yet) and late crashes (deep chains) recover differently.
    CoverFeature(FeatureDomain::kCrashSite,
                 64 + static_cast<uint64_t>(plan.mode),
                 plan.crash_index * 8 / num_tuples);
  }
  CoverFeature(FeatureDomain::kCrashRecovery, t,
               (stats.recovered_from_scratch ? 1u : 0u) |
                   (stats.fell_back ? 2u : 0u) |
                   (stats.delta_tail_rejected ? 4u : 0u));
  CoverFeature(FeatureDomain::kCrashRecovery, t ^ 1,
               Log2Bucket(stats.barriers + 1));
  CoverFeature(FeatureDomain::kDeltaChain, t,
               Log2Bucket(stats.deltas_applied + 1));
}

/// Seed-derived query mix for the shared-registry arm (--shared-queries):
/// the config's own query plus companion queries that duplicate its windows
/// (dedup planning path), fold over its tumbling granules (Factor-Windows
/// derived path), and add fresh context-free edges (shared path).
struct SharedPlan {
  std::vector<QueryDef> defs;  // defs[0] is the config's own query
  bool dynamics = false;       // mid-stream deregister + register
  size_t flip_at = 0;          // tuple index of the membership change
  QueryDef late_def;           // context-free query registered at flip_at
};

SharedPlan DeriveSharedPlan(const DifferentialConfig& cfg,
                            size_t num_tuples) {
  Rng rng(cfg.stream.seed ^ 0x5153484152454451ULL);
  SharedPlan plan;
  QueryDef q0;
  for (const WindowSpec& w : cfg.windows) q0.windows.push_back(w.ToString());
  q0.aggs = cfg.aggs;
  plan.defs.push_back(q0);

  // Tumbling granules a companion window can fold over (the registry picks
  // the largest eligible one itself; any multiple is rewrite-eligible).
  std::vector<Time> bases;
  for (const WindowSpec& w : cfg.windows) {
    if (w.kind == WindowSpec::Kind::kTumbling &&
        w.measure == Measure::kEventTime) {
      bases.push_back(w.length);
    }
  }
  auto fresh_window = [&rng] {
    WindowSpec w;
    if (rng.NextBounded(2) == 0) {
      w.kind = WindowSpec::Kind::kTumbling;
      w.length = 5 + static_cast<Time>(rng.NextBounded(56));
    } else {
      w.kind = WindowSpec::Kind::kSliding;
      w.length = 8 + static_cast<Time>(rng.NextBounded(73));
      w.slide = 1 + static_cast<Time>(
                        rng.NextBounded(static_cast<uint64_t>(w.length)));
    }
    return w;
  };
  auto derived_window = [&rng, &bases] {
    const Time g = bases[rng.NextBounded(bases.size())];
    WindowSpec w;
    if (rng.NextBounded(2) == 0) {
      w.kind = WindowSpec::Kind::kTumbling;
      w.length = g * (2 + static_cast<Time>(rng.NextBounded(3)));
    } else {
      w.kind = WindowSpec::Kind::kSliding;
      w.slide = g * (1 + static_cast<Time>(rng.NextBounded(3)));
      w.length = w.slide * (1 + static_cast<Time>(rng.NextBounded(3)));
    }
    return w;
  };

  // A fixed companion count (> 0) stays bounded so hostile corpus lines
  // cannot turn one exec into hundreds of solo oracle runs.
  const size_t extras = cfg.shared > 0
                            ? std::min<size_t>(static_cast<size_t>(cfg.shared),
                                               16)
                            : 1 + rng.NextBounded(2);
  for (size_t e = 0; e < extras; ++e) {
    QueryDef def;
    const size_t nw = 1 + rng.NextBounded(2);
    for (size_t k = 0; k < nw; ++k) {
      switch (rng.NextBounded(3)) {
        case 0:  // dedup: one of the config's own windows verbatim
          def.windows.push_back(
              cfg.windows[rng.NextBounded(cfg.windows.size())].ToString());
          break;
        case 1:  // derived: edges that are multiples of a live granule
          if (!bases.empty()) {
            def.windows.push_back(derived_window().ToString());
            break;
          }
          [[fallthrough]];
        default:  // shared: fresh context-free edges
          def.windows.push_back(fresh_window().ToString());
          break;
      }
    }
    def.aggs.push_back(cfg.aggs[rng.NextBounded(cfg.aggs.size())]);
    if (rng.NextBounded(3) == 0) {
      // Occasionally a measure the base config does not compute, so the
      // engine's store grows a column only this companion reads.
      const std::vector<std::string>& names = FuzzAggregationNames();
      const std::string& pick = names[rng.NextBounded(names.size())];
      if (pick != def.aggs[0]) def.aggs.push_back(pick);
    }
    plan.defs.push_back(def);
  }

  if (cfg.shared < 0 && num_tuples >= 16) {
    plan.dynamics = true;
    plan.flip_at = num_tuples / 3 + rng.NextBounded(num_tuples / 3 + 1);
    QueryDef late;
    late.windows.push_back((!bases.empty() && rng.NextBounded(2) == 0
                                ? derived_window()
                                : fresh_window())
                               .ToString());
    // Mid-stream registrations cannot grow new store columns: reuse a
    // measure the config's own query already registered.
    late.aggs.push_back(cfg.aggs[rng.NextBounded(cfg.aggs.size())]);
    plan.late_def = late;
  }
  return plan;
}

/// Per-query oracle for the shared arm: a fresh single-query slicing
/// operator over the same stream and watermark cadence.
bool SoloQueryResults(const QueryDef& def, const std::vector<Tuple>& stream,
                      Time final_wm, int wm_every, Time wm_lag,
                      std::map<ResultKey, Value>* out, std::string* err) {
  GeneralSlicingOperator::Options o;
  o.allowed_lateness = kLateness;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  for (const std::string& name : def.aggs) {
    auto agg = MakeAggregation(name);
    if (agg == nullptr) {
      *err = "unknown aggregation '" + name + "'";
      return false;
    }
    op->AddAggregation(std::move(agg));
  }
  for (const std::string& text : def.windows) {
    WindowDesc d;
    if (!WindowDesc::Parse(text, &d)) {
      *err = "unparseable window '" + text + "'";
      return false;
    }
    op->AddWindow(d.Instantiate());
  }
  *out = RunToFinalResults(*op, stream, final_wm, wm_every, wm_lag);
  return true;
}

bool CompareSharedQuery(const std::string& run_name, size_t query_idx,
                        const QueryDef& def,
                        const std::map<ResultKey, Value>& got,
                        const std::map<ResultKey, Value>& want,
                        DifferentialOutcome* outcome) {
  const std::string who = run_name + " query#" + std::to_string(query_idx);
  for (const auto& [key, expected] : want) {
    ++outcome->comparisons;
    const bool approx =
        IsApproxAgg(def.aggs[static_cast<size_t>(std::get<1>(key))]);
    const auto it = got.find(key);
    if (it == got.end()) {
      outcome->ok = false;
      std::ostringstream os;
      os << who << " is missing window " << Describe(key) << " = "
         << expected << " reported by its solo run";
      outcome->detail = os.str();
      return false;
    }
    if (!ValuesMatch(expected, it->second, approx)) {
      outcome->ok = false;
      std::ostringstream os;
      os << who << " vs solo at " << Describe(key) << ": " << it->second
         << " vs " << expected;
      outcome->detail = os.str();
      return false;
    }
  }
  for (const auto& [key, value] : got) {
    if (!want.count(key)) {
      outcome->ok = false;
      std::ostringstream os;
      os << who << " reported extra window " << Describe(key) << " = "
         << value << " absent from its solo run";
      outcome->detail = os.str();
      return false;
    }
  }
  return true;
}

/// One registry variant over the whole stream: registers every plan query,
/// applies the plan's mid-stream dynamics, and compares each live query's
/// final results against its solo run. The deregistered query is checked
/// for silence only — its early drains may hold values a later late update
/// would have revised, so they have no final-results oracle.
bool RunSharedRegistryOnce(
    const SharedPlan& plan,
    const std::vector<std::map<ResultKey, Value>>& expected,
    const std::map<ResultKey, Value>& late_expected,
    const DifferentialConfig& cfg, const std::vector<Tuple>& stream,
    Time final_wm, Time wm_lag, StoreMode mode, bool in_order,
    DifferentialOutcome* outcome) {
  const std::string name =
      std::string("shared-registry-") +
      (in_order ? "inorder" : mode == StoreMode::kEager ? "eager" : "lazy");
  auto fail = [&](const std::string& msg) {
    outcome->ok = false;
    outcome->detail = name + ": " + msg;
    return false;
  };

  QueryRegistry::Options ropts;
  ropts.engine.allowed_lateness = kLateness;
  ropts.engine.store_mode = mode;
  ropts.engine.stream_in_order = in_order;
  QueryRegistry reg(ropts);

  std::vector<QueryRegistry::QueryId> ids;
  for (const QueryDef& def : plan.defs) {
    std::string err;
    const QueryRegistry::QueryId id = reg.Register(def, &err);
    if (id == QueryRegistry::kInvalidQuery) {
      return fail("registration rejected: " + err);
    }
    ids.push_back(id);
  }
  // Plan-shape coverage: which planning paths (shared / dedup / derived)
  // this config's query mix actually drove the registry into.
  for (const QueryRegistry::QueryId id : ids) {
    for (const QueryRegistry::PlanKind pk : reg.Plan(id).windows) {
      CoverFeature(FeatureDomain::kTechniqueWindow,
                   NameHash("shared-registry"),
                   16 + static_cast<uint64_t>(pk));
    }
  }

  const size_t dropped = plan.defs.size() - 1;  // dynamics target
  std::vector<size_t> live;
  for (size_t i = 0; i < plan.defs.size(); ++i) live.push_back(i);
  QueryRegistry::QueryId late_id = QueryRegistry::kInvalidQuery;
  Time late_horizon = kNoTime;
  std::vector<std::map<ResultKey, Value>> got(plan.defs.size());
  std::map<ResultKey, Value> late_got;
  auto drain = [&] {
    for (const size_t qi : live) {
      for (const WindowResult& r : reg.TakeQueryResults(ids[qi])) {
        got[qi][{r.window_id, r.agg_id, r.start, r.end}] = r.value;
      }
    }
    if (late_id != QueryRegistry::kInvalidQuery) {
      for (const WindowResult& r : reg.TakeQueryResults(late_id)) {
        late_got[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
      }
    }
  };

  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (plan.dynamics && i == plan.flip_at) {
      drain();
      if (!reg.Deregister(ids[dropped])) return fail("deregister refused");
      live.erase(std::find(live.begin(), live.end(), dropped));
      std::string err;
      late_id = reg.Register(plan.late_def, &err);
      if (late_id == QueryRegistry::kInvalidQuery) {
        return fail("mid-stream registration rejected: " + err);
      }
      late_horizon = reg.Plan(late_id).horizon;
    }
    Tuple t = stream[i];
    t.seq = seq++;
    reg.ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (cfg.wm_every > 0 &&
        seq % static_cast<uint64_t>(cfg.wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        reg.ProcessWatermark(wm);
        last_wm = wm;
        drain();
      }
    }
  }
  reg.ProcessWatermark(final_wm);
  drain();

  for (const size_t qi : live) {
    if (!CompareSharedQuery(name, qi, plan.defs[qi], got[qi], expected[qi],
                            outcome)) {
      return false;
    }
  }
  if (plan.dynamics) {
    if (reg.Plan(ids[dropped]).alive) {
      return fail("deregistered query still reports alive");
    }
    if (!reg.TakeQueryResults(ids[dropped]).empty()) {
      return fail("deregistered query still yields results");
    }
    // The mid-stream query sees only windows at or past its horizon; the
    // solo run (which saw everything) is filtered to the same set.
    std::map<ResultKey, Value> want;
    for (const auto& [key, value] : late_expected) {
      if (std::get<2>(key) >= late_horizon) want[key] = value;
    }
    if (!CompareSharedQuery(name + " (mid-stream)", plan.defs.size(),
                            plan.late_def, late_got, want, outcome)) {
      return false;
    }
  }
  return true;
}

/// The shared-registry arm: one QueryRegistry serves the config's query
/// plus seed-derived companions from a single slice stream; every query
/// must reproduce its own solo slicing run. Variants mirror the solo
/// technique matrix (lazy / eager stores, in-order fast path on sorted
/// streams).
bool CheckSharedQueries(const DifferentialConfig& cfg,
                        const std::vector<Tuple>& stream, bool sorted,
                        Time final_wm, Time wm_lag,
                        DifferentialOutcome* outcome) {
  const SharedPlan plan = DeriveSharedPlan(cfg, stream.size());
  std::vector<std::map<ResultKey, Value>> expected(plan.defs.size());
  for (size_t i = 0; i < plan.defs.size(); ++i) {
    if (plan.dynamics && i == plan.defs.size() - 1) continue;  // deregistered
    std::string err;
    if (!SoloQueryResults(plan.defs[i], stream, final_wm, cfg.wm_every,
                          wm_lag, &expected[i], &err)) {
      outcome->ok = false;
      outcome->detail =
          "shared-registry solo query#" + std::to_string(i) + ": " + err;
      return false;
    }
  }
  std::map<ResultKey, Value> late_expected;
  if (plan.dynamics) {
    std::string err;
    if (!SoloQueryResults(plan.late_def, stream, final_wm, cfg.wm_every,
                          wm_lag, &late_expected, &err)) {
      outcome->ok = false;
      outcome->detail = std::string("shared-registry solo mid-stream: ") + err;
      return false;
    }
  }
  CoverFeature(FeatureDomain::kDimension, 4,
               (plan.dynamics ? 16u : 0u) | plan.defs.size());
  return RunSharedRegistryOnce(plan, expected, late_expected, cfg, stream,
                               final_wm, wm_lag, StoreMode::kLazy, false,
                               outcome) &&
         RunSharedRegistryOnce(plan, expected, late_expected, cfg, stream,
                               final_wm, wm_lag, StoreMode::kEager, false,
                               outcome) &&
         (!sorted ||
          RunSharedRegistryOnce(plan, expected, late_expected, cfg, stream,
                                final_wm, wm_lag, StoreMode::kLazy, true,
                                outcome));
}

/// The overload-resilience arm (--overload): the config's deterministic-edge
/// time windows run through RunOverloadedToFinalResults' backpressure-
/// controlled executor under a seed-derived consumer stall plus persistence
/// faults, and delivered results ∪ shed-marked windows must exactly
/// partition the unfaulted run — windows without shed overlap bit-identical,
/// overlapped windows free to differ or be absent, nothing delivered the
/// unfaulted run did not produce. The shed set is timing-dependent, but the
/// check holds for ANY shed set, so replays stay meaningful everywhere.
bool CheckOverload(const DifferentialConfig& cfg,
                   const std::vector<Tuple>& stream, Time final_wm,
                   Time wm_lag, DifferentialOutcome* outcome) {
  // Only tumbling/sliding event-time windows have edges independent of
  // which tuples were shed; count/session/frame/punctuation edges move with
  // the data, so per-window shed accounting is undefined for them. Configs
  // without any eligible window get a synthesized tumbling one.
  std::vector<WindowSpec> windows;
  for (const WindowSpec& w : cfg.windows) {
    if (w.measure == Measure::kEventTime &&
        (w.kind == WindowSpec::Kind::kTumbling ||
         w.kind == WindowSpec::Kind::kSliding)) {
      windows.push_back(w);
    }
  }
  if (windows.empty()) {
    WindowSpec w;
    w.kind = WindowSpec::Kind::kTumbling;
    w.length = 40;
    windows.push_back(w);
  }
  auto factory = [&]() -> std::unique_ptr<WindowOperator> {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = kLateness;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    for (const std::string& agg : cfg.aggs) {
      op->AddAggregation(MakeAggregation(agg));
    }
    for (const WindowSpec& w : windows) op->AddWindow(w.Instantiate());
    return op;
  };

  // Unfaulted reference under the identical watermark cadence — the
  // overloaded run counts shed tuples toward the cadence, so its trigger
  // edges line up with this run's no matter what gets dropped. A config
  // with only the final watermark gets a periodic cadence instead: barriers
  // are what put the persistence ladder under test.
  const int wm_every = cfg.wm_every > 0 ? cfg.wm_every : 32;
  std::map<ResultKey, Value> want;
  {
    auto op = factory();
    want = RunToFinalResults(*op, stream, final_wm, wm_every, wm_lag);
  }

  const OverloadPlan plan =
      MakeOverloadPlan(cfg.stream.seed ^ 0x4F56455245444C44ULL,
                       stream.size());
  std::map<ResultKey, Value> delivered;
  ShedLedger ledger;
  OverloadRunStats stats;
  std::string err;
  if (!RunOverloadedToFinalResults(factory, stream, final_wm, wm_every,
                                   wm_lag, plan, CrashScratchDir("overload"),
                                   &delivered, &ledger, &err, &stats)) {
    outcome->ok = false;
    outcome->detail = "overloaded run: " + err;
    return false;
  }

  for (const auto& [key, expected] : want) {
    ++outcome->comparisons;
    if (ledger.OverlapsWindow(std::get<2>(key), std::get<3>(key))) {
      continue;  // shed-marked: flagged approximate, value unconstrained
    }
    const bool approx =
        IsApproxAgg(cfg.aggs[static_cast<size_t>(std::get<1>(key))]);
    const auto it = delivered.find(key);
    if (it == delivered.end()) {
      outcome->ok = false;
      std::ostringstream os;
      os << "overloaded run is missing unshed window " << Describe(key)
         << " = " << expected << " (no shed timestamp overlaps it)";
      outcome->detail = os.str();
      return false;
    }
    if (!ValuesMatch(expected, it->second, approx)) {
      outcome->ok = false;
      std::ostringstream os;
      os << "overloaded run vs unfaulted at unshed window " << Describe(key)
         << ": " << it->second << " vs " << expected;
      outcome->detail = os.str();
      return false;
    }
  }
  for (const auto& [key, value] : delivered) {
    if (!want.count(key)) {
      outcome->ok = false;
      std::ostringstream os;
      os << "overloaded run reported window " << Describe(key) << " = "
         << value << " absent from the unfaulted run";
      outcome->detail = os.str();
      return false;
    }
  }

  // Overload observables: shed volume, admission pressure, and how far the
  // persistence ladder moved — exactly the rare-path state this dimension
  // exists to reach.
  CoverFeature(FeatureDomain::kDimension, 5,
               Log2Bucket(stats.admission.shed + 1) * 64 +
                   Log2Bucket(stats.admission.backpressure_waits + 1));
  const uint64_t ladder = (stats.health.mode_fallbacks > 0 ? 1u : 0u) |
                          (stats.health.mode_promotions > 0 ? 2u : 0u) |
                          (stats.health.alarm ? 4u : 0u) |
                          (ledger.empty() ? 0u : 8u);
  CoverFeature(FeatureDomain::kDimension, 6,
               static_cast<uint64_t>(stats.health.mode) * 16 + ladder);
  return true;
}

}  // namespace

std::string DifferentialConfig::ToFlags() const {
  const StreamSpec def;
  std::ostringstream os;
  os << "--seed=" << stream.seed << " --tuples=" << stream.num_tuples
     << " --queries=" << WindowSpecsToString(windows) << " --aggs=";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) os << ",";
    os << aggs[i];
  }
  auto flag = [&os](const char* name, auto value, auto defval) {
    if (value != defval) os << " --" << name << "=" << value;
  };
  flag("step-lo", stream.step_lo, def.step_lo);
  flag("step-hi", stream.step_hi, def.step_hi);
  flag("gap-prob", stream.gap_probability, def.gap_probability);
  flag("gap-len", stream.gap_length, def.gap_length);
  flag("value-range", stream.value_range, def.value_range);
  flag("punct-prob", stream.punctuation_probability,
       def.punctuation_probability);
  flag("ooo", stream.ooo_fraction, def.ooo_fraction);
  flag("max-delay", stream.max_delay, def.max_delay);
  flag("burst-prob", stream.burst_probability, def.burst_probability);
  flag("burst-len", stream.burst_length, def.burst_length);
  flag("wm-every", wm_every, 0);
  flag("batch", batch, 0);
  flag("checkpoint", checkpoint, 0);
  flag("crash", crash, 0);
  flag("rescale", rescale, 0);
  flag("shared-queries", shared, 0);
  flag("overload", overload, 0);
  flag("layout", layout, std::string("aos"));
  flag("kernel", kernel, std::string("auto"));
  return os.str();
}

const std::vector<std::string>& FuzzAggregationNames() {
  // Every aggregate class: distributive (sum/min/max), algebraic
  // (avg/stddev/m4), holistic (median/p90), non-commutative (concat),
  // non-invertible (sum-no-invert), arg/multiplicity trackers. The
  // registry's order-sensitive pseudo aggregations (first/last) are
  // deliberately absent: the oracle does not model arrival order.
  static const std::vector<std::string> kNames = {
      "sum",     "count",     "avg",       "min",
      "max",     "median",    "p90",       "m4",
      "arg-max", "arg-min",   "min-count", "max-count",
      "stddev",  "sum-no-invert", "concat", "geometric-mean"};
  return kNames;
}

bool ParseConfigLine(const std::string& line, DifferentialConfig* out,
                     std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  DifferentialConfig cfg;
  bool saw_any = false;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;  // comment runs to end of line
    if (tok.rfind("--", 0) != 0) {
      // Tolerate a leading program token so a pasted reproducer line
      // ("fuzz_differential --seed=... ...") parses as-is.
      if (!saw_any && tok.find('=') == std::string::npos) continue;
      return fail("expected --key=value, got '" + tok + "'");
    }
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      return fail("flag '" + tok + "' is missing '='");
    }
    const std::string key = tok.substr(2, eq - 2);
    const std::string val = tok.substr(eq + 1);
    saw_any = true;
    auto parse_i64 = [&](int64_t* dst) {
      size_t used = 0;
      try {
        *dst = std::stoll(val, &used);
      } catch (...) {
        return false;
      }
      return used == val.size();
    };
    auto parse_f64 = [&](double* dst) {
      size_t used = 0;
      try {
        *dst = std::stod(val, &used);
      } catch (...) {
        return false;
      }
      return used == val.size();
    };
    int64_t i = 0;
    double d = 0;
    if (key == "seed") {
      try {
        cfg.stream.seed = std::stoull(val);
      } catch (...) {
        return fail("bad --seed=" + val);
      }
    } else if (key == "queries") {
      if (!ParseWindowSpecs(val, &cfg.windows)) {
        return fail("bad --queries=" + val);
      }
    } else if (key == "aggs") {
      cfg.aggs.clear();
      std::istringstream as(val);
      std::string name;
      while (std::getline(as, name, ',')) {
        if (name.empty()) continue;
        if (MakeAggregation(name) == nullptr) {
          return fail("unknown aggregation '" + name + "'");
        }
        cfg.aggs.push_back(name);
      }
      if (cfg.aggs.empty()) return fail("empty --aggs");
    } else if (key == "tuples" && parse_i64(&i) && i >= 0) {
      cfg.stream.num_tuples = static_cast<int>(i);
    } else if (key == "step-lo" && parse_i64(&i) && i >= 0) {
      cfg.stream.step_lo = i;
    } else if (key == "step-hi" && parse_i64(&i) && i >= 0) {
      cfg.stream.step_hi = i;
    } else if (key == "gap-prob" && parse_f64(&d) && d >= 0 && d <= 1) {
      cfg.stream.gap_probability = d;
    } else if (key == "gap-len" && parse_i64(&i) && i >= 0) {
      cfg.stream.gap_length = i;
    } else if (key == "value-range" && parse_i64(&i) && i > 0) {
      cfg.stream.value_range = static_cast<uint64_t>(i);
    } else if (key == "punct-prob" && parse_f64(&d) && d >= 0 && d <= 1) {
      cfg.stream.punctuation_probability = d;
    } else if (key == "ooo" && parse_f64(&d) && d >= 0 && d <= 1) {
      cfg.stream.ooo_fraction = d;
    } else if (key == "max-delay" && parse_i64(&i) && i >= 0) {
      cfg.stream.max_delay = i;
    } else if (key == "burst-prob" && parse_f64(&d) && d >= 0 && d <= 1) {
      cfg.stream.burst_probability = d;
    } else if (key == "burst-len" && parse_i64(&i) && i > 0) {
      cfg.stream.burst_length = static_cast<int>(i);
    } else if (key == "wm-every" && parse_i64(&i) && i >= 0) {
      cfg.wm_every = static_cast<int>(i);
    } else if (key == "batch" && parse_i64(&i) && i >= 0) {
      cfg.batch = static_cast<int>(i);
    } else if (key == "checkpoint" && parse_i64(&i) && i >= -1) {
      cfg.checkpoint = static_cast<int>(i);
    } else if (key == "crash" && parse_i64(&i) && i >= -1) {
      cfg.crash = static_cast<int>(i);
    } else if (key == "rescale" && parse_i64(&i) && i >= -1) {
      cfg.rescale = static_cast<int>(i);
    } else if (key == "shared-queries" && parse_i64(&i) && i >= -1) {
      cfg.shared = static_cast<int>(i);
    } else if (key == "overload" && parse_i64(&i) && i >= -1) {
      cfg.overload = static_cast<int>(i);
    } else if (key == "layout") {
      if (val != "aos" && val != "soa") return fail("bad --layout=" + val);
      cfg.layout = val;
    } else if (key == "kernel") {
      simd::KernelMode km;
      if (!simd::ParseMode(val, &km)) return fail("bad --kernel=" + val);
      cfg.kernel = val;
    } else {
      return fail("bad flag '" + tok + "'");
    }
  }
  if (!saw_any) return fail("no flags on line");
  if (cfg.windows.empty()) return fail("line has no --queries");
  if (cfg.aggs.empty()) return fail("line has no --aggs");
  if (cfg.stream.step_hi < cfg.stream.step_lo) {
    return fail("--step-hi below --step-lo");
  }
  *out = cfg;
  return true;
}

DifferentialOutcome RunDifferential(const DifferentialConfig& cfg) {
  DifferentialOutcome outcome;
  const std::vector<Tuple> stream = GenerateStream(cfg.stream);
  if (stream.empty() || cfg.windows.empty() || cfg.aggs.empty()) {
    return outcome;
  }

  // In-order fast-path eligibility: sorted arrival. Same-timestamp
  // punctuation behind a data tuple is fine now — under the FCF no-storage
  // optimization (paper Fig. 5) the store tracks a side partial for the
  // last timestamp of each slice, so a retroactive punctuation edge at
  // t == t_last splits exactly without tuple retention.
  Time last_ts = 0;
  bool sorted = true;
  for (size_t i = 0; i < stream.size(); ++i) {
    const Tuple& t = stream[i];
    last_ts = std::max(last_ts, t.ts);
    if (i > 0 && t.ts < stream[i - 1].ts) sorted = false;
  }
  Time session_slack = 0;
  for (const WindowSpec& w : cfg.windows) {
    if (w.kind == WindowSpec::Kind::kSession) {
      session_slack = std::max(session_slack, w.length);
    }
  }
  const Time final_wm = last_ts + session_slack + 100;
  const Time wm_lag = cfg.stream.MaxLateness() + 1;

  bool has_punct_window = false;
  bool has_lastn_window = false;
  bool has_frames_window = false;
  for (const WindowSpec& w : cfg.windows) {
    has_punct_window |= w.kind == WindowSpec::Kind::kPunctuation;
    has_lastn_window |= w.kind == WindowSpec::Kind::kLastNEveryT;
    has_frames_window |= w.kind == WindowSpec::Kind::kThresholdFrame;
  }

  // Feed the guided fuzzer's semantic coverage map (a no-op signal-wise
  // unless a driver brackets this call with CoverageMap Begin/EndRun).
  CoverConfigFeatures(cfg, sorted);

  struct Run {
    std::string name;
    std::map<ResultKey, Value> results;
  };
  std::vector<Run> runs;

  // Checkpointed twins: each snapshot-capable technique is re-run with a
  // snapshot / teardown / restore cycle at tuple index `ckpt_at` and must
  // reproduce its own uninterrupted results EXACTLY — restore is
  // bit-identical by contract, so even the order-dependent floating-point
  // aggregations (stddev, geometric-mean) may not drift by one ulp.
  size_t ckpt_at = 0;
  if (cfg.checkpoint > 0) {
    ckpt_at = static_cast<size_t>(cfg.checkpoint);
  } else if (cfg.checkpoint < 0) {
    // --checkpoint=-1: a seed-derived mid-stream index, so sweep drivers can
    // force checkpointing across many seeds without fixing one cut point.
    const uint64_t h = (cfg.stream.seed + 1) * 0x9E3779B97F4A7C15ULL;
    ckpt_at = 1 + static_cast<size_t>((h >> 33) % stream.size());
  }
  auto check_ckpt = [&](const std::string& name, const auto& factory,
                        const std::map<ResultKey, Value>& expected) {
    if (cfg.checkpoint == 0) return true;
    std::map<ResultKey, Value> got;
    std::string err;
    if (!RunToFinalResultsCheckpointed(factory, stream, final_wm, cfg.wm_every,
                                       wm_lag, ckpt_at, &got, &err)) {
      outcome.ok = false;
      outcome.detail = name + "-checkpointed: " + err;
      return false;
    }
    for (const auto& [key, expected_v] : expected) {
      ++outcome.comparisons;
      const auto it = got.find(key);
      if (it == got.end() || !(it->second == expected_v)) {
        outcome.ok = false;
        std::ostringstream os;
        os << name << "-checkpointed vs " << name << " at " << Describe(key)
           << ": ";
        if (it == got.end()) {
          os << "missing (expected " << expected_v << ")";
        } else {
          os << it->second << " vs " << expected_v;
        }
        outcome.detail = os.str();
        return false;
      }
    }
    for (const auto& [key, value] : got) {
      if (!expected.count(key)) {
        outcome.ok = false;
        std::ostringstream os;
        os << name << "-checkpointed reported extra window " << Describe(key)
           << " = " << value;
        outcome.detail = os.str();
        return false;
      }
    }
    return true;
  };

  // Crash-recovered twins: kill the run mid-stream, possibly damage the
  // newest snapshot file, recover, replay — the merged downstream view must
  // equal the unfaulted run exactly (same bit-identical-restore argument as
  // the checkpointed twins). The fault plan is derived from the stream seed
  // so a (seed, crash) pair replays the identical damage; --crash=N only
  // overrides the kill point.
  FaultPlan crash_plan;
  if (cfg.crash != 0) {
    crash_plan = MakeFaultPlan(cfg.stream.seed ^ 0xC2B2AE3D27D4EB4FULL,
                               stream.size());
    if (cfg.crash > 0) {
      crash_plan.crash_index = std::min<uint64_t>(
          static_cast<uint64_t>(cfg.crash), stream.size());
    }
  }
  auto check_crash = [&](const std::string& name, const auto& factory,
                         const std::map<ResultKey, Value>& expected) {
    if (cfg.crash == 0) return true;
    std::map<ResultKey, Value> got;
    std::string err;
    CrashRunStats crash_stats;
    if (!RunToFinalResultsCrashRecovered(factory, stream, final_wm,
                                         cfg.wm_every, wm_lag, crash_plan,
                                         CrashScratchDir(name), &got, &err,
                                         &crash_stats)) {
      outcome.ok = false;
      outcome.detail = name + "-crashed: " + err;
      return false;
    }
    CoverCrashRun(name, crash_plan, crash_stats, stream.size());
    for (const auto& [key, expected_v] : expected) {
      ++outcome.comparisons;
      const auto it = got.find(key);
      if (it == got.end() || !(it->second == expected_v)) {
        outcome.ok = false;
        std::ostringstream os;
        os << name << "-crashed vs " << name << " at " << Describe(key)
           << ": ";
        if (it == got.end()) {
          os << "missing (expected " << expected_v << ")";
        } else {
          os << it->second << " vs " << expected_v;
        }
        outcome.detail = os.str();
        return false;
      }
    }
    for (const auto& [key, value] : got) {
      if (!expected.count(key)) {
        outcome.ok = false;
        std::ostringstream os;
        os << name << "-crashed reported extra window " << Describe(key)
           << " = " << value;
        outcome.detail = os.str();
        return false;
      }
    }
    return true;
  };
  // Both persistence twins (snapshot/restore cycle, crash/recover cycle)
  // for one technique, sharing its uninterrupted results as the oracle.
  auto check_persist = [&](const std::string& name, const auto& factory,
                           const std::map<ResultKey, Value>& expected) {
    return check_ckpt(name, factory, expected) &&
           check_crash(name, factory, expected);
  };

  // Rescaling crash twin: a keyed copy of the stream runs on W simulated
  // workers, crashes, and recovers onto W' != W workers by re-partitioning
  // per-key state out of the combined topology blob. The reference is one
  // keyed operator over the whole stream — keys never interact and
  // watermarks are broadcast, so any partitioning must reproduce it exactly
  // (restore and re-partitioning move serialized per-key state verbatim).
  if (cfg.rescale != 0) {
    const uint64_t h =
        (cfg.stream.seed ^ 0xA0761D6478BD642FULL) * 0x9E3779B97F4A7C15ULL;
    const int64_t nkeys = 2 + static_cast<int64_t>((h >> 40) % 7);  // 2..8
    std::vector<Tuple> keyed = stream;
    for (size_t i = 0; i < keyed.size(); ++i) {
      keyed[i].key = static_cast<int64_t>(
          (i * 0x9E3779B97F4A7C15ULL >> 33) % static_cast<uint64_t>(nkeys));
    }
    const size_t from = 1 + static_cast<size_t>((h >> 20) % 4);  // 1..4
    size_t to = 1 + static_cast<size_t>((h >> 10) % 4);
    if (to == from) to = from % 4 + 1;  // force an actual topology change
    FaultPlan plan = MakeFaultPlan(cfg.stream.seed ^ 0x8B72E7F4F9A1C3D5ULL,
                                   stream.size());
    if (cfg.rescale > 0) {
      plan.crash_index = std::min<uint64_t>(
          static_cast<uint64_t>(cfg.rescale), stream.size());
    }
    auto keyed_factory = [&cfg]() -> std::unique_ptr<WindowOperator> {
      return std::make_unique<KeyedWindowOperator>(
          [&cfg] { return MakeSlicing(cfg, StoreMode::kLazy, false); });
    };
    std::map<KeyedResultKey, Value> expected;
    std::map<KeyedResultKey, Value> got;
    std::string err;
    CrashRunStats rescale_stats;
    if (!RunKeyedToFinalResults(keyed_factory, keyed, final_wm, cfg.wm_every,
                                wm_lag, &expected, &err)) {
      outcome.ok = false;
      outcome.detail = "keyed reference: " + err;
      return outcome;
    }
    if (!RunKeyedRescaleCrashRecovered(keyed_factory, keyed, final_wm,
                                       cfg.wm_every, wm_lag, plan,
                                       CrashScratchDir("keyed-rescale"), from,
                                       to, &got, &err, &rescale_stats)) {
      outcome.ok = false;
      outcome.detail = "keyed-rescaled (" + std::to_string(from) + "->" +
                       std::to_string(to) + " workers): " + err;
      return outcome;
    }
    CoverFeature(FeatureDomain::kRescaleTopology, from, to);
    CoverCrashRun("keyed-rescale", plan, rescale_stats, stream.size());
    for (const auto& [key, expected_v] : expected) {
      ++outcome.comparisons;
      const auto it = got.find(key);
      if (it == got.end() || !(it->second == expected_v)) {
        outcome.ok = false;
        std::ostringstream os;
        os << "keyed-rescaled (" << from << "->" << to
           << " workers) vs keyed at " << DescribeKeyed(key) << ": ";
        if (it == got.end()) {
          os << "missing (expected " << expected_v << ")";
        } else {
          os << it->second << " vs " << expected_v;
        }
        outcome.detail = os.str();
        return outcome;
      }
    }
    for (const auto& [key, value] : got) {
      if (!expected.count(key)) {
        outcome.ok = false;
        std::ostringstream os;
        os << "keyed-rescaled (" << from << "->" << to
           << " workers) reported extra window " << DescribeKeyed(key)
           << " = " << value;
        outcome.detail = os.str();
        return outcome;
      }
    }
  }

  auto lazy = MakeSlicing(cfg, StoreMode::kLazy, false);
  runs.push_back({"slicing-lazy", RunToFinalResults(*lazy, stream, final_wm,
                                                    cfg.wm_every, wm_lag)});
  CoverTechniqueRun("slicing-lazy", cfg, lazy.get());
  if (lazy->stats().dropped_tuples != 0) {
    outcome.ok = false;
    outcome.detail =
        "harness: watermark lag dropped tuples; MaxLateness() bound violated";
    return outcome;
  }
  if (!check_persist("slicing-lazy",
                  [&] { return MakeSlicing(cfg, StoreMode::kLazy, false); },
                  runs.back().results)) {
    return outcome;
  }

  auto eager = MakeSlicing(cfg, StoreMode::kEager, false);
  runs.push_back({"slicing-eager", RunToFinalResults(*eager, stream, final_wm,
                                                     cfg.wm_every, wm_lag)});
  CoverTechniqueRun("slicing-eager", cfg, eager.get());
  if (!check_persist("slicing-eager",
                  [&] { return MakeSlicing(cfg, StoreMode::kEager, false); },
                  runs.back().results)) {
    return outcome;
  }
  if (sorted) {
    auto in_order = MakeSlicing(cfg, StoreMode::kLazy, true);
    runs.push_back({"slicing-inorder",
                    RunToFinalResults(*in_order, stream, final_wm,
                                      cfg.wm_every, wm_lag)});
    CoverTechniqueRun("slicing-inorder", cfg, in_order.get());
    if (!check_persist("slicing-inorder",
                    [&] { return MakeSlicing(cfg, StoreMode::kLazy, true); },
                    runs.back().results)) {
      return outcome;
    }
  }
  if (cfg.batch > 0) {
    // Batched ingestion must be bit-identical to the per-tuple path (the
    // fast-path fold preserves the exact left-to-right combine order), so
    // these runs are compared with the same exact/approx rules as the rest.
    const size_t bs = static_cast<size_t>(cfg.batch);
    {
      auto op = MakeSlicing(cfg, StoreMode::kLazy, false);
      runs.push_back({"slicing-lazy-batched",
                      RunToFinalResultsBatched(*op, stream, final_wm,
                                               cfg.wm_every, wm_lag, bs)});
      CoverTechniqueRun("slicing-lazy-batched", cfg, op.get());
    }
    {
      auto op = MakeSlicing(cfg, StoreMode::kEager, false);
      runs.push_back({"slicing-eager-batched",
                      RunToFinalResultsBatched(*op, stream, final_wm,
                                               cfg.wm_every, wm_lag, bs)});
      CoverTechniqueRun("slicing-eager-batched", cfg, op.get());
    }
    if (sorted) {
      auto op = MakeSlicing(cfg, StoreMode::kLazy, true);
      runs.push_back({"slicing-inorder-batched",
                      RunToFinalResultsBatched(*op, stream, final_wm,
                                               cfg.wm_every, wm_lag, bs)});
      CoverTechniqueRun("slicing-inorder-batched", cfg, op.get());
    }
  }
  if (cfg.layout == "soa") {
    // Columnar ingestion with the kernel dispatch pinned: the configured
    // mode (clamped to what this binary/CPU supports) and, whenever that
    // resolves to a vector mode, the scalar fallback too. Both must
    // reproduce the per-tuple reference bit-for-bit — this is the fuzzer's
    // SIMD bit-identity check, cross-validated against the oracle below.
    simd::KernelMode want = simd::KernelMode::kAuto;
    (void)simd::ParseMode(cfg.kernel, &want);
    simd::SetModeForTesting(want);
    const simd::KernelMode resolved = simd::ActiveMode();
    std::vector<simd::KernelMode> modes = {resolved};
    if (resolved != simd::KernelMode::kScalar) {
      modes.push_back(simd::KernelMode::kScalar);
    }
    const size_t bs = cfg.batch > 0 ? static_cast<size_t>(cfg.batch) : 64;
    for (const simd::KernelMode m : modes) {
      simd::SetModeForTesting(m);
      const std::string suffix = std::string("-soa-") + simd::ModeName(m);
      {
        auto op = MakeSlicing(cfg, StoreMode::kLazy, false);
        runs.push_back({"slicing-lazy" + suffix,
                        RunToFinalResultsColumns(*op, stream, final_wm,
                                                 cfg.wm_every, wm_lag, bs)});
        CoverTechniqueRun("slicing-lazy" + suffix, cfg, op.get());
      }
      if (sorted) {
        auto op = MakeSlicing(cfg, StoreMode::kLazy, true);
        runs.push_back({"slicing-inorder" + suffix,
                        RunToFinalResultsColumns(*op, stream, final_wm,
                                                 cfg.wm_every, wm_lag, bs)});
        CoverTechniqueRun("slicing-inorder" + suffix, cfg, op.get());
      }
    }
    simd::SetModeForTesting(simd::KernelMode::kAuto);
  }
  // The baselines drive ProcessContext/TriggerWindows directly and never
  // Bind a StreamStateView, so "last N" windows (which resolve their start
  // through NthRecentTupleTime on the view) only run on the slicing store.
  // Threshold frames need no view and work everywhere but buckets.
  if (!has_lastn_window) {
    auto op = MakeBaseline<TupleBufferOperator>(cfg);
    runs.push_back({"tuple-buffer", RunToFinalResults(*op, stream, final_wm,
                                                      cfg.wm_every, wm_lag)});
    CoverTechniqueRun("tuple-buffer", cfg, nullptr);
    if (!check_persist("tuple-buffer",
                    [&] { return MakeBaseline<TupleBufferOperator>(cfg); },
                    runs.back().results)) {
      return outcome;
    }
  }
  if (!has_lastn_window) {
    auto op = MakeBaseline<AggregateTreeOperator>(cfg);
    runs.push_back({"aggregate-tree",
                    RunToFinalResults(*op, stream, final_wm, cfg.wm_every,
                                      wm_lag)});
    CoverTechniqueRun("aggregate-tree", cfg, nullptr);
    if (!check_persist("aggregate-tree",
                    [&] { return MakeBaseline<AggregateTreeOperator>(cfg); },
                    runs.back().results)) {
      return outcome;
    }
  }
  // Buckets model tumbling/sliding/session window IDs only.
  if (!has_punct_window && !has_lastn_window && !has_frames_window) {
    auto op = MakeBaseline<BucketsOperator>(cfg);
    runs.push_back({"buckets", RunToFinalResults(*op, stream, final_wm,
                                                 cfg.wm_every, wm_lag)});
    CoverTechniqueRun("buckets", cfg, nullptr);
    if (!check_persist("buckets",
                    [&] { return MakeBaseline<BucketsOperator>(cfg); },
                    runs.back().results)) {
      return outcome;
    }
  }
  {
    // The oracle sees the same seq numbers the operators saw.
    std::vector<Tuple> seqd = stream;
    for (size_t i = 0; i < seqd.size(); ++i) seqd[i].seq = i;
    runs.push_back(
        {"oracle", OracleResults(cfg.windows, cfg.aggs, seqd, final_wm)});
  }

  const Run& ref = runs.front();
  for (size_t r = 1; r < runs.size(); ++r) {
    const Run& other = runs[r];
    for (const auto& [key, expected] : ref.results) {
      ++outcome.comparisons;
      const bool approx =
          IsApproxAgg(cfg.aggs[static_cast<size_t>(std::get<1>(key))]);
      const auto it = other.results.find(key);
      if (it == other.results.end()) {
        outcome.ok = false;
        std::ostringstream os;
        os << other.name << " is missing window " << Describe(key) << " = "
           << expected << " reported by " << ref.name;
        outcome.detail = os.str();
        return outcome;
      }
      if (!ValuesMatch(expected, it->second, approx)) {
        outcome.ok = false;
        std::ostringstream os;
        os << ref.name << " vs " << other.name << " at " << Describe(key)
           << ": " << expected << " vs " << it->second;
        outcome.detail = os.str();
        return outcome;
      }
    }
    for (const auto& [key, value] : other.results) {
      if (!ref.results.count(key)) {
        outcome.ok = false;
        std::ostringstream os;
        os << other.name << " reported extra window " << Describe(key)
           << " = " << value << " absent from " << ref.name;
        outcome.detail = os.str();
        return outcome;
      }
    }
  }
  // Multi-query shared slicing arm: one QueryRegistry serving this config's
  // query plus seed-derived companions, checked per query against solo runs.
  if (cfg.shared != 0 &&
      !CheckSharedQueries(cfg, stream, sorted, final_wm, wm_lag, &outcome)) {
    return outcome;
  }
  // Overload-resilience arm: the deterministic-edge window subset under a
  // seed-derived stall + persistence-fault schedule; delivered ∪ shed-marked
  // windows must exactly partition the unfaulted run.
  if (cfg.overload != 0 &&
      !CheckOverload(cfg, stream, final_wm, wm_lag, &outcome)) {
    return outcome;
  }
  return outcome;
}

DifferentialConfig RandomConfig(uint64_t seed, int num_tuples) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL);
  DifferentialConfig cfg;
  cfg.stream.seed = seed;
  cfg.stream.num_tuples = num_tuples;

  const int num_windows = 1 + static_cast<int>(rng.NextBounded(3));
  bool has_punct_window = false;
  bool has_frames_window = false;
  for (int i = 0; i < num_windows; ++i) {
    WindowSpec w;
    switch (rng.NextBounded(8)) {
      case 0:
        w.kind = WindowSpec::Kind::kTumbling;
        w.length = 5 + static_cast<Time>(rng.NextBounded(56));
        break;
      case 1:
        w.kind = WindowSpec::Kind::kSliding;
        w.length = 8 + static_cast<Time>(rng.NextBounded(73));
        w.slide = 1 + static_cast<Time>(
                          rng.NextBounded(static_cast<uint64_t>(w.length)));
        break;
      case 2:
        w.kind = WindowSpec::Kind::kSession;
        w.length = 8 + static_cast<Time>(rng.NextBounded(33));
        break;
      case 3:
        w.kind = WindowSpec::Kind::kTumbling;
        w.measure = Measure::kCount;
        w.length = 2 + static_cast<Time>(rng.NextBounded(19));
        break;
      case 4:
        w.kind = WindowSpec::Kind::kSliding;
        w.measure = Measure::kCount;
        w.length = 3 + static_cast<Time>(rng.NextBounded(22));
        w.slide = 1 + static_cast<Time>(
                          rng.NextBounded(static_cast<uint64_t>(w.length)));
        break;
      case 5:
        w.kind = WindowSpec::Kind::kLastNEveryT;
        w.length = 2 + static_cast<Time>(rng.NextBounded(14));  // N tuples
        w.slide = 5 + static_cast<Time>(rng.NextBounded(41));   // period T
        break;
      case 6:
        w.kind = WindowSpec::Kind::kThresholdFrame;
        w.length = 1;  // threshold; re-drawn once value_range is known
        has_frames_window = true;
        break;
      default:
        w.kind = WindowSpec::Kind::kPunctuation;
        has_punct_window = true;
        break;
    }
    cfg.windows.push_back(w);
  }

  const std::vector<std::string>& agg_names = FuzzAggregationNames();
  const size_t num_aggs = 1 + (rng.NextBounded(4) == 0 ? 1 : 0);
  while (cfg.aggs.size() < num_aggs) {
    const std::string& pick = agg_names[rng.NextBounded(agg_names.size())];
    bool dup = false;
    for (const std::string& a : cfg.aggs) dup |= a == pick;
    if (!dup) cfg.aggs.push_back(pick);
  }

  cfg.stream.step_lo = static_cast<Time>(rng.NextBounded(2));  // 0 => dup ts
  cfg.stream.step_hi =
      cfg.stream.step_lo + 1 + static_cast<Time>(rng.NextBounded(4));
  static const double kGapProb[] = {0.0, 0.02, 0.05};
  cfg.stream.gap_probability = kGapProb[rng.NextBounded(3)];
  cfg.stream.gap_length = 30 + static_cast<Time>(rng.NextBounded(51));
  cfg.stream.value_range = rng.NextBounded(2) == 0 ? 8 : 100;
  for (WindowSpec& w : cfg.windows) {
    if (w.kind == WindowSpec::Kind::kThresholdFrame) {
      // A threshold inside the value range so both qualifying and breaking
      // tuples actually occur.
      w.length = 1 + static_cast<Time>(
                         rng.NextBounded(cfg.stream.value_range));
    }
  }
  if (has_frames_window && cfg.stream.step_lo == 0) {
    // Frames classify per timestamp (a frame boundary is a timestamp, not a
    // tuple); duplicate timestamps mixing qualifying and breaking tuples
    // would make the boundary arrival-order dependent.
    cfg.stream.step_lo = 1;
  }
  static const double kOoo[] = {0.0, 0.05, 0.2, 0.4};
  cfg.stream.ooo_fraction = kOoo[rng.NextBounded(4)];
  static const Time kDelay[] = {4, 16, 60};
  cfg.stream.max_delay = kDelay[rng.NextBounded(3)];
  if (cfg.stream.ooo_fraction > 0 && rng.NextBounded(2) == 0) {
    cfg.stream.burst_probability = 0.03;
    cfg.stream.burst_length = 4 + static_cast<int>(rng.NextBounded(12));
  }
  if (has_punct_window) {
    cfg.stream.punctuation_probability = 0.02 + 0.06 * rng.NextDouble();
  } else if (rng.NextBounded(10) == 0) {
    cfg.stream.punctuation_probability = 0.03;  // context-only punctuation
  }
  static const int kWmEvery[] = {0, 64, 256};
  cfg.wm_every = kWmEvery[rng.NextBounded(3)];
  // Batched ingestion is always exercised: tiny blocks stress the
  // run-splitting logic, 64 is a realistic runtime batch, 0 maps to one
  // whole-stream block.
  static const int kBatch[] = {1, 7, 64, 0};
  cfg.batch = kBatch[rng.NextBounded(4)];
  if (cfg.batch == 0) cfg.batch = std::max(1, num_tuples);
  // Half the seeds also exercise the snapshot/restore cycle at a random
  // mid-stream cut point (the other half keep the base sweep fast).
  if (rng.NextBounded(2) == 0 && num_tuples > 1) {
    cfg.checkpoint = 1 + static_cast<int>(rng.NextBounded(
                             static_cast<uint64_t>(num_tuples - 1)));
  }
  // A quarter of the seeds also run the crash/recover cycle (kill point,
  // persistence mode, and snapshot/delta faults seed-derived); the nightly
  // lane forces it on everywhere.
  if (rng.NextBounded(4) == 0 && num_tuples > 1) cfg.crash = -1;
  // An eighth also run the rescaling crash twin (worker counts W -> W' and
  // the fault plan seed-derived); the nightly rescaling lane forces it on.
  if (rng.NextBounded(8) == 0 && num_tuples > 1) cfg.rescale = -1;
  // Half the seeds also run the columnar (SoA) ingestion path with a pinned
  // kernel mode; the scalar fallback rides along automatically whenever the
  // pinned mode resolves to a vector kernel.
  if (rng.NextBounded(2) == 0) {
    cfg.layout = "soa";
    static const char* kKernels[] = {"auto", "scalar", "sse2", "avx2"};
    cfg.kernel = kKernels[rng.NextBounded(4)];
  }
  // A quarter of the seeds also run the shared-registry arm (seed-derived
  // companion queries plus mid-stream register/deregister dynamics); the
  // nightly shared lane forces it on everywhere.
  if (rng.NextBounded(4) == 0) cfg.shared = -1;
  // An eighth also run the overload-resilience arm (consumer stall, slow
  // and failing persists, watermark-safe shedding — all seed-derived); the
  // nightly fault-matrix lane forces it on everywhere.
  if (rng.NextBounded(8) == 0 && num_tuples > 1) cfg.overload = -1;
  return cfg;
}

DifferentialConfig Shrink(const DifferentialConfig& failing) {
  return ShrinkWhile(failing, [](const DifferentialConfig& c) {
    return !RunDifferential(c).ok;
  });
}

DifferentialConfig ShrinkWhile(
    const DifferentialConfig& cfg,
    const std::function<bool(const DifferentialConfig&)>& keeps) {
  DifferentialConfig best = cfg;

  // Tuple-count bisection. The invariant "`keeps` holds at hi" is
  // maintained throughout (hi is only replaced by a mid where it held), so
  // the result replays even though the predicate is not strictly monotone
  // in the prefix length.
  int lo = 1;
  int hi = best.stream.num_tuples;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    DifferentialConfig c = best;
    c.stream.num_tuples = mid;
    if (keeps(c)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  best.stream.num_tuples = hi;

  for (size_t i = best.windows.size(); i-- > 0 && best.windows.size() > 1;) {
    DifferentialConfig c = best;
    c.windows.erase(c.windows.begin() + static_cast<long>(i));
    if (keeps(c)) best = c;
  }
  for (size_t i = best.aggs.size(); i-- > 0 && best.aggs.size() > 1;) {
    DifferentialConfig c = best;
    c.aggs.erase(c.aggs.begin() + static_cast<long>(i));
    if (keeps(c)) best = c;
  }
  return best;
}

}  // namespace testing
}  // namespace scotty
