// Focused unit tests for the StreamSlicer (Step 1) and SliceManager (Step 2)
// components, driving them directly against an AggregateStore.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/basic.h"
#include "core/slice_manager.h"
#include "core/stream_slicer.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::T;

struct Rig {
  explicit Rig(std::vector<WindowPtr> windows, bool in_order = true,
               bool store_tuples = false) {
    queries.windows = std::move(windows);
    queries.aggs = {std::make_shared<SumAggregation>()};
    queries.stream_in_order = in_order;
    queries.force_store_tuples = store_tuples;
    queries.Recharacterize();
    store = std::make_unique<AggregateStore>(StoreMode::kLazy, queries.aggs);
    slicer = std::make_unique<StreamSlicer>(store.get(), &queries);
    manager = std::make_unique<SliceManager>(store.get(), &queries, &stats);
  }

  void Feed(Time ts, double value = 1.0) {
    Tuple t = T(ts, value, seq++);
    slicer->OnInOrderTuple(ts);
    manager->AddInOrder(t);
    if (!queries.windows.empty() &&
        queries.windows[0]->context_class() != ContextClass::kContextFree) {
      slicer->Recache(ts);
    }
  }

  QuerySet queries;
  OperatorStats stats;
  std::unique_ptr<AggregateStore> store;
  std::unique_ptr<StreamSlicer> slicer;
  std::unique_ptr<SliceManager> manager;
  uint64_t seq = 0;
};

TEST(StreamSlicer, FirstTupleOpensSliceAtFloorEdge) {
  Rig rig({std::make_shared<TumblingWindow>(10)});
  rig.Feed(23);
  ASSERT_EQ(rig.store->NumSlices(), 1u);
  EXPECT_EQ(rig.store->At(0).start(), 20);
  EXPECT_EQ(rig.store->At(0).end(), 30);
}

TEST(StreamSlicer, CutsExactlyAtWindowEdges) {
  Rig rig({std::make_shared<TumblingWindow>(10)});
  for (Time ts : {1, 5, 9, 10, 11, 20}) rig.Feed(ts);
  ASSERT_EQ(rig.store->NumSlices(), 3u);
  EXPECT_EQ(rig.store->At(0).end(), 10);
  EXPECT_EQ(rig.store->At(1).start(), 10);
  EXPECT_EQ(rig.store->At(1).end(), 20);
  EXPECT_EQ(rig.store->At(2).start(), 20);
  EXPECT_EQ(rig.store->At(0).tuple_count(), 3u);  // 1, 5, 9
  EXPECT_EQ(rig.store->At(1).tuple_count(), 2u);  // 10, 11
}

TEST(StreamSlicer, TupleAtEdgeBelongsToNextSlice) {
  Rig rig({std::make_shared<TumblingWindow>(10)});
  rig.Feed(9);
  rig.Feed(10);  // exactly on the edge: [10, 20)
  ASSERT_EQ(rig.store->NumSlices(), 2u);
  EXPECT_EQ(rig.store->At(1).t_first(), 10);
}

TEST(StreamSlicer, SkipsEmptyRegions) {
  Rig rig({std::make_shared<TumblingWindow>(10)});
  rig.Feed(5);
  rig.Feed(95);  // nine empty windows in between: no slices for them
  ASSERT_EQ(rig.store->NumSlices(), 2u);
  EXPECT_EQ(rig.store->At(1).start(), 90);
}

TEST(StreamSlicer, MultiQueryEdgesInterleave) {
  Rig rig({std::make_shared<TumblingWindow>(10),
           std::make_shared<TumblingWindow>(15)});
  for (Time ts = 0; ts < 30; ++ts) rig.Feed(ts);
  // Edges at 0, 10, 15, 20, 30: slices [0,10) [10,15) [15,20) [20,30).
  ASSERT_EQ(rig.store->NumSlices(), 4u);
  EXPECT_EQ(rig.store->At(1).start(), 10);
  EXPECT_EQ(rig.store->At(1).end(), 15);
  EXPECT_EQ(rig.store->At(2).end(), 20);
}

TEST(StreamSlicer, SessionNextEdgeFollowsTimeout) {
  auto session = std::make_shared<SessionWindow>(5);
  Rig rig({session});
  session->ProcessContext(T(10, 1, 100));
  rig.Feed(10);
  EXPECT_EQ(rig.slicer->next_edge(), 15);
  session->ProcessContext(T(13, 1, 101));
  rig.Feed(13);
  EXPECT_EQ(rig.slicer->next_edge(), 18);
  EXPECT_EQ(rig.store->Current()->end(), 18);  // provisional end follows
}

TEST(StreamSlicer, OutOfOrderDeclaredStreamCutsAtAllEdges) {
  // Declared out-of-order streams always slice at starts AND ends so late
  // tuples can update a window's last slice. For misaligned sliding
  // windows, in-order streams need the end cuts too (correctness), so the
  // slice structures coincide; OOO must never have fewer.
  Rig in_order({std::make_shared<SlidingWindow>(12, 5)}, /*in_order=*/true);
  Rig ooo({std::make_shared<SlidingWindow>(12, 5)}, /*in_order=*/false);
  for (Time ts = 0; ts < 40; ++ts) {
    in_order.Feed(ts);
    ooo.Feed(ts);
  }
  EXPECT_GE(ooo.store->NumSlices(), in_order.store->NumSlices());
  // Ends must be cut in both: edge at 12 separates slices.
  EXPECT_NE(ooo.store->FindCovering(12), AggregateStore::kNpos);
  EXPECT_EQ(ooo.store->At(ooo.store->FindCovering(12)).start(), 12);
}

TEST(SliceManager, AddOutOfOrderHitsCoveringSlice) {
  Rig rig({std::make_shared<TumblingWindow>(10)}, /*in_order=*/false);
  rig.Feed(5);
  rig.Feed(15);
  const size_t idx = rig.manager->AddOutOfOrder(T(7, 10.0, 99));
  EXPECT_EQ(idx, 0u);
  EXPECT_DOUBLE_EQ(rig.store->At(0).agg(0).Get<double>(), 11.0);
}

TEST(SliceManager, AddOutOfOrderCreatesSliceInGap) {
  Rig rig({std::make_shared<TumblingWindow>(10)}, /*in_order=*/false);
  rig.Feed(5);
  rig.Feed(95);
  const size_t idx = rig.manager->AddOutOfOrder(T(47, 2.0, 99));
  EXPECT_EQ(idx, 1u);
  EXPECT_EQ(rig.store->At(1).start(), 40);
  EXPECT_EQ(rig.store->At(1).end(), 50);
  EXPECT_EQ(rig.store->NumSlices(), 3u);
}

TEST(SliceManager, EnsureEdgeNoOpOnExistingBoundary) {
  Rig rig({std::make_shared<TumblingWindow>(10)}, false, true);
  rig.Feed(5);
  rig.Feed(15);
  const size_t before = rig.store->NumSlices();
  rig.manager->EnsureEdge(10);
  EXPECT_EQ(rig.store->NumSlices(), before);
  EXPECT_EQ(rig.stats.slice_splits, 0u);
}

TEST(SliceManager, EnsureEdgeSplitsWithStoredTuples) {
  Rig rig({std::make_shared<TumblingWindow>(100)}, false, true);
  rig.Feed(10, 1.0);
  rig.Feed(30, 2.0);
  rig.Feed(60, 4.0);
  rig.manager->EnsureEdge(40);
  ASSERT_EQ(rig.store->NumSlices(), 2u);
  EXPECT_DOUBLE_EQ(rig.store->At(0).agg(0).Get<double>(), 3.0);
  EXPECT_DOUBLE_EQ(rig.store->At(1).agg(0).Get<double>(), 4.0);
  EXPECT_EQ(rig.stats.slice_splits, 1u);
  EXPECT_GE(rig.stats.slice_recomputes, 1u);
}

TEST(SliceManager, EnsureEdgeMetadataOnlyWhenOneSideEmpty) {
  Rig rig({std::make_shared<TumblingWindow>(100)}, false, false);
  rig.Feed(10);
  rig.Feed(20);
  // All tuples left of 50: metadata-only split without stored tuples.
  rig.manager->EnsureEdge(50);
  ASSERT_EQ(rig.store->NumSlices(), 2u);
  EXPECT_DOUBLE_EQ(rig.store->At(0).agg(0).Get<double>(), 2.0);
  EXPECT_TRUE(rig.store->At(1).agg(0).IsIdentity());
}

TEST(SliceManager, MergePreservesRequiredEdges) {
  auto session = std::make_shared<SessionWindow>(6);
  auto tumbling = std::make_shared<TumblingWindow>(10);
  Rig rig({session, tumbling}, /*in_order=*/false);
  // Build slices [6,10) and [10,12) and [14, 20) via in-order feed.
  session->ProcessContext(T(6, 1, 0));
  rig.Feed(6);
  session->ProcessContext(T(11, 1, 1));
  rig.Feed(11);
  session->ProcessContext(T(30, 1, 2));
  rig.Feed(30);
  const size_t before = rig.store->NumSlices();
  // Request a merge across (6, 17): the boundary at 10 is a tumbling edge
  // and must survive.
  ContextModifications mods;
  mods.merged_ranges.push_back({6, 17});
  rig.manager->Apply(mods);
  EXPECT_EQ(rig.store->NumSlices(), before);  // nothing merged
  EXPECT_EQ(rig.stats.slice_merges, 0u);
}

TEST(SliceManager, MergeCombinesWhenEdgeUnneeded) {
  auto session = std::make_shared<SessionWindow>(4);
  Rig rig({session}, /*in_order=*/false);
  session->ProcessContext(T(10, 1, 0));
  rig.Feed(10, 1.0);
  session->ProcessContext(T(16, 1, 1));
  rig.Feed(16, 2.0);
  session->ProcessContext(T(40, 1, 2));
  rig.Feed(40, 4.0);
  ASSERT_EQ(rig.store->NumSlices(), 3u);
  // Bridge the first two sessions (ProcessContext updates session state so
  // the old boundary is no longer required).
  ContextModifications mods = session->ProcessContext(T(13, 1, 3));
  rig.manager->Apply(mods);
  rig.manager->AddOutOfOrder(T(13, 8.0, 3));
  EXPECT_EQ(rig.store->NumSlices(), 2u);
  EXPECT_DOUBLE_EQ(rig.store->At(0).agg(0).Get<double>(), 11.0);
  EXPECT_EQ(rig.stats.slice_merges, 1u);
}

TEST(SliceManager, ResizeExtendsSliceBounds) {
  auto session = std::make_shared<SessionWindow>(5);
  Rig rig({session}, /*in_order=*/false);
  session->ProcessContext(T(10, 1, 0));
  rig.Feed(10);
  session->ProcessContext(T(40, 1, 1));
  rig.Feed(40);
  // Backward extension via OOO tuple at 7.
  ContextModifications mods = session->ProcessContext(T(7, 1, 2));
  rig.manager->Apply(mods);
  rig.manager->AddOutOfOrder(T(7, 1, 2));
  EXPECT_EQ(rig.store->At(0).start(), 7);
  EXPECT_EQ(rig.store->At(0).end(), 15);
}

TEST(SliceManager, StatsTrackTupleFlow) {
  Rig rig({std::make_shared<TumblingWindow>(10)}, false);
  rig.Feed(1);
  rig.Feed(2);
  rig.manager->AddOutOfOrder(T(1, 1, 99));
  EXPECT_EQ(rig.store->TotalTupleCount(), 3u);
}

}  // namespace
}  // namespace scotty
