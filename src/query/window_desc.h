#ifndef SCOTTY_QUERY_WINDOW_DESC_H_
#define SCOTTY_QUERY_WINDOW_DESC_H_

#include <string>
#include <vector>

#include "common/time.h"
#include "windows/window.h"

namespace scotty {

/// A declarative, parse-/printable window description. Window instances are
/// stateful, so anything that needs to (re)create windows — the query
/// registry's register/deregister/snapshot cycle, the differential fuzzer's
/// one-technique-per-operator runs, the brute-force oracle — works on
/// descriptions and instantiates fresh objects per operator.
///
/// Textual form (also the fuzzer's --queries= reproducer syntax):
///   tumbling:L       time tumbling, length L
///   sliding:L:S      time sliding, length L, slide S
///   session:G        session with inactivity gap G
///   ctumbling:N      count tumbling, N tuples
///   csliding:N:S     count sliding, length N tuples, slide S tuples
///   punct            punctuation-delimited windows (FCF)
///   lastn:N:T        FCA multi-measure "last N tuples every T time units"
///   frames:V         threshold frames, qualifying value >= V (FCF)
struct WindowDesc {
  enum class Kind {
    kTumbling,
    kSliding,
    kSession,
    kPunctuation,
    kLastNEveryT,
    kThresholdFrame,
  };

  Kind kind = Kind::kTumbling;
  Measure measure = Measure::kEventTime;  // kCount for count windows
  Time length = 10;  // tumbling length / sliding length / session gap /
                     // lastn N / frames threshold
  Time slide = 0;    // sliding windows (slide) and lastn (period T)

  std::string ToString() const;
  /// Fresh, stateless-as-of-yet window object for one operator instance.
  WindowPtr Instantiate() const;

  /// Parses one desc; returns false (leaving *out* unspecified) on syntax
  /// errors or non-positive parameters.
  static bool Parse(const std::string& text, WindowDesc* out);

  /// True for the context-free event-time kinds (tumbling/sliding on the
  /// time measure). These are the kinds whose window edges are known in
  /// advance, which is what makes them eligible both for mid-stream
  /// registration (the registry can place a horizon under them) and for the
  /// Factor-Windows rewrite (a sliding window is a fold over the results of
  /// a coarser tumbling window whose length divides both size and slide).
  bool IsContextFreeTime() const {
    return measure == Measure::kEventTime &&
           (kind == Kind::kTumbling || kind == Kind::kSliding);
  }
};

/// Comma-joined list form used by --queries= and the reproducer line.
std::string WindowDescsToString(const std::vector<WindowDesc>& descs);
bool ParseWindowDescs(const std::string& text, std::vector<WindowDesc>* out);

}  // namespace scotty

#endif  // SCOTTY_QUERY_WINDOW_DESC_H_
