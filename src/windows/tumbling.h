#ifndef SCOTTY_WINDOWS_TUMBLING_H_
#define SCOTTY_WINDOWS_TUMBLING_H_

#include <string>

#include "windows/window.h"

namespace scotty {

/// Tumbling (fixed) window of length `l`: windows [k*l, (k+1)*l) for all
/// integer k >= 0. Context free. Timestamps are assumed non-negative.
class TumblingWindow : public ContextFreeWindow {
 public:
  explicit TumblingWindow(Time length, Measure measure = Measure::kEventTime)
      : length_(length), measure_(measure) {}

  Time length() const { return length_; }
  Measure measure() const override { return measure_; }

  Time GetNextEdge(Time t) const override {
    // The paper's example: timestamp + l - (timestamp mod l).
    return (t / length_ + 1) * length_;
  }

  Time LastEdgeAtOrBefore(Time t) const override {
    return (t / length_) * length_;
  }

  bool IsWindowEdge(Time t) const override { return t % length_ == 0; }

  void TriggerWindows(WindowCallback& cb, Time prev_wm,
                      Time curr_wm) override {
    // First window end strictly after prev_wm.
    for (Time end = GetNextEdge(prev_wm); end <= curr_wm;
         end += length_) {
      cb.OnWindow(end - length_, end);
    }
  }

  Time EvictionSafePoint(Time wm) const override { return wm - length_; }

  std::string Name() const override {
    return "tumbling(" + std::to_string(length_) + ")";
  }

 private:
  Time length_;
  Measure measure_;
};

}  // namespace scotty

#endif  // SCOTTY_WINDOWS_TUMBLING_H_
