// Streaming-substrate tests: the single-threaded pipeline driver and the
// key-partitioned parallel executor.

#include <atomic>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "datagen/ooo_injector.h"
#include "runtime/parallel_executor.h"
#include "runtime/pipeline.h"
#include "tests/test_util.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

std::unique_ptr<GeneralSlicingOperator> MakeOp(bool in_order) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = in_order;
  o.allowed_lateness = 2000;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  op->AddAggregation(MakeAggregation("sum"));
  op->AddWindow(std::make_shared<TumblingWindow>(1000));
  return op;
}

TEST(Pipeline, DrivesTuplesAndWatermarks) {
  SensorStream src(SensorStream::Machine());
  auto op = MakeOp(false);
  PipelineOptions opts;
  opts.watermark_every = 100;
  opts.watermark_delay = 0;
  const PipelineReport report = RunPipeline(src, *op, 5000, opts);
  EXPECT_EQ(report.tuples, 5000u);
  EXPECT_GT(report.results, 0u);
  EXPECT_GT(report.TuplesPerSecond(), 0.0);
}

TEST(Pipeline, InOrderModeWithoutWatermarks) {
  SensorStream src(SensorStream::Machine());
  auto op = MakeOp(true);
  PipelineOptions opts;
  opts.watermark_every = 0;  // self-triggering stream
  const PipelineReport report = RunPipeline(src, *op, 5000, opts);
  EXPECT_EQ(report.tuples, 5000u);
  EXPECT_GT(report.results, 0u);
}

TEST(Pipeline, OutOfOrderSourceProducesUpdatesWithinLateness) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options ooo;
  ooo.fraction = 0.2;
  ooo.max_delay = 2000;
  OutOfOrderInjector src(&inner, ooo);
  auto op = MakeOp(false);
  PipelineOptions opts;
  opts.watermark_every = 500;
  opts.watermark_delay = 500;  // tighter than max delay: some tuples are late
  const PipelineReport report = RunPipeline(src, *op, 50000, opts);
  EXPECT_GT(op->stats().out_of_order_tuples, 0u);
  EXPECT_GT(report.results, 0u);
  EXPECT_GT(report.updates, 0u);  // allowed-lateness updates observed
}

TEST(SpscQueueTest, PushPopRoundTrip) {
  SpscQueue q(8);
  const Tuple in = testutil::T(42, 3.5, 7);
  TupleBatchSoA block(1);
  block.PushBack(in);
  q.PushTuples(block.View());
  TupleBatchSoA out(1);
  ASSERT_EQ(q.PopTuples(&out, 8), 1u);
  EXPECT_EQ(out.Get(0), in);
  out.Clear();
  EXPECT_EQ(q.PopTuples(&out, 8), 0u);
}

TEST(SpscQueueTest, OrderPreserved) {
  SpscQueue q(16);
  TupleBatchSoA block(10);
  for (int i = 0; i < 10; ++i) block.PushBack(testutil::T(i, i));
  q.PushTuples(block.View());
  TupleBatchSoA out(16);
  ASSERT_EQ(q.PopTuples(&out, 16), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out.ts()[i], i);
  }
}

TEST(ParallelExecutor, PartitionsByKeyAndAggregates) {
  ParallelExecutor exec(2, [] {
    auto op = MakeOp(false);
    return std::unique_ptr<WindowOperator>(std::move(op));
  });
  exec.Start();
  // 4 keys, 2000 tuples, 1ms apart.
  for (int i = 0; i < 2000; ++i) {
    Tuple t = testutil::T(i * 2, 1.0, static_cast<uint64_t>(i), i % 4);
    exec.Push(t);
    if (i % 500 == 499) exec.PushWatermark(i * 2 - 100);
  }
  exec.PushWatermark(4000);
  exec.Finish();
  EXPECT_GT(exec.TotalResults(), 0u);
  EXPECT_GT(exec.MemoryUsageBytes(), 0u);
}

TEST(ParallelExecutor, SingleWorkerMatchesSequentialResultCount) {
  // One worker must see every tuple and produce the same windows as a
  // sequential run.
  auto sequential = MakeOp(false);
  uint64_t seq_results = 0;
  for (int i = 0; i < 3000; ++i) {
    sequential->ProcessTuple(testutil::T(i, 1.0, static_cast<uint64_t>(i)));
  }
  sequential->ProcessWatermark(3000);
  seq_results = sequential->TakeResults().size();

  ParallelExecutor exec(1, [] {
    auto op = MakeOp(false);
    return std::unique_ptr<WindowOperator>(std::move(op));
  });
  exec.Start();
  for (int i = 0; i < 3000; ++i) {
    exec.Push(testutil::T(i, 1.0, static_cast<uint64_t>(i)));
  }
  exec.PushWatermark(3000);
  exec.Finish();
  EXPECT_EQ(exec.TotalResults(), seq_results);
}

TEST(ParallelExecutor, ScalesWithoutLosingTuples) {
  std::atomic<uint64_t> dummy{0};
  (void)dummy;
  for (size_t workers : {1, 2, 4}) {
    ParallelExecutor exec(workers, [] {
      auto op = MakeOp(false);
      return std::unique_ptr<WindowOperator>(std::move(op));
    });
    exec.Start();
    for (int i = 0; i < 5000; ++i) {
      exec.Push(testutil::T(i, 1.0, static_cast<uint64_t>(i), i % 16));
    }
    exec.PushWatermark(5000);
    exec.Finish();
    EXPECT_GT(exec.TotalResults(), 0u) << workers;
  }
}

}  // namespace
}  // namespace scotty
