#include "core/aggregate_store.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <utility>

namespace scotty {

AggregateStore::AggregateStore(StoreMode mode,
                               std::vector<AggregateFunctionPtr> fns)
    : mode_(mode), fns_(std::move(fns)) {
  if (mode_ == StoreMode::kEager) {
    trees_.reserve(fns_.size());
    for (const AggregateFunctionPtr& fn : fns_) trees_.emplace_back(fn);
  }
}

size_t AggregateStore::FindByStart(Time ts) const {
  // Last slice with start <= ts.
  auto it = std::upper_bound(
      slices_.begin(), slices_.end(), ts,
      [](Time x, const Slice& s) { return x < s.start(); });
  if (it == slices_.begin()) return kNpos;
  return static_cast<size_t>(it - slices_.begin()) - 1;
}

size_t AggregateStore::FindCovering(Time ts) const {
  const size_t i = FindByStart(ts);
  if (i == kNpos) return kNpos;
  return ts < slices_[i].end() ? i : kNpos;
}

size_t AggregateStore::FirstEndingAfter(Time ts) const {
  auto it = std::upper_bound(
      slices_.begin(), slices_.end(), ts,
      [](Time x, const Slice& s) { return x < s.end(); });
  return static_cast<size_t>(it - slices_.begin());
}

Slice AggregateStore::MakeSlice(Time start, Time end) {
  if (!free_slices_.empty()) {
    Slice s = std::move(free_slices_.back());
    free_slices_.pop_back();
    s.Reset(start, end, fns_.size());
    if (track_last_ts_) s.EnableLastTsTracking();
    return s;
  }
  Slice s(start, end, fns_.size());
  if (track_last_ts_) s.EnableLastTsTracking();
  return s;
}

void AggregateStore::Retire(Slice&& s) {
  if (free_slices_.size() >= kMaxFreeSlices) return;
  free_slices_.push_back(std::move(s));
}

Slice& AggregateStore::Append(Time start, Time end) {
  assert(slices_.empty() || start >= slices_.back().end());
  slices_.push_back(MakeSlice(start, end));
  ++slices_created_;
  for (FlatFat& tree : trees_) tree.Append(Partial{});
  return slices_.back();
}

Slice& AggregateStore::InsertAt(size_t idx, Time start, Time end) {
  assert(idx <= slices_.size());
  slices_.insert(slices_.begin() + static_cast<ptrdiff_t>(idx),
                 MakeSlice(start, end));
  ++slices_created_;
  if (mode_ == StoreMode::kEager) {
    for (size_t a = 0; a < trees_.size(); ++a) {
      trees_[a].InsertLeafAt(idx, Partial{});
    }
  }
  return slices_[idx];
}

void AggregateStore::MergeWithNext(size_t i) {
  assert(i + 1 < slices_.size());
  slices_[i].MergeWith(slices_[i + 1], fns_);
  Retire(std::move(slices_[i + 1]));
  slices_.erase(slices_.begin() + static_cast<ptrdiff_t>(i) + 1);
  if (mode_ == StoreMode::kEager) {
    for (size_t a = 0; a < trees_.size(); ++a) {
      trees_[a].RemoveLeafAt(i + 1);
      trees_[a].UpdateLeaf(i, slices_[i].agg(a));
    }
  }
}

void AggregateStore::SplitAt(size_t i, Time t) {
  assert(i < slices_.size());
  Slice right = slices_[i].SplitAt(t, fns_);
  slices_.insert(slices_.begin() + static_cast<ptrdiff_t>(i) + 1,
                 std::move(right));
  ++slices_created_;
  if (mode_ == StoreMode::kEager) {
    for (size_t a = 0; a < trees_.size(); ++a) {
      trees_[a].UpdateLeaf(i, slices_[i].agg(a));
      trees_[a].InsertLeafAt(i + 1, slices_[i + 1].agg(a));
    }
  }
}

void AggregateStore::OnSliceAggUpdated(size_t i) {
  if (mode_ != StoreMode::kEager) return;
  for (size_t a = 0; a < trees_.size(); ++a) {
    trees_[a].UpdateLeaf(i, slices_[i].agg(a));
  }
}

void AggregateStore::OnStructureChanged() {
  if (mode_ != StoreMode::kEager) return;
  RebuildTrees();
}

void AggregateStore::EvictBefore(Time t) {
  size_t k = 0;
  while (k < slices_.size() && slices_[k].end() <= t) {
    total_tuples_ -= slices_[k].tuple_count();
    Retire(std::move(slices_[k]));
    ++k;
  }
  if (k == 0) return;
  slices_.erase(slices_.begin(), slices_.begin() + static_cast<ptrdiff_t>(k));
  for (FlatFat& tree : trees_) tree.PopFront(k);
}

Partial AggregateStore::QuerySlices(size_t agg, size_t i, size_t j) const {
  assert(agg < fns_.size());
  if (i >= j) return Partial{};
  if (mode_ == StoreMode::kEager) return trees_[agg].Query(i, j);
  Partial acc;
  const AggregateFunction& fn = *fns_[agg];
  for (size_t k = i; k < j; ++k) fn.Combine(acc, slices_[k].agg(agg));
  return acc;
}

Partial AggregateStore::QueryRange(size_t agg, Time start, Time end) const {
  const size_t i = FirstEndingAfter(start);
  // First slice with start >= end bounds the range on the right.
  auto it = std::lower_bound(
      slices_.begin(), slices_.end(), end,
      [](const Slice& s, Time x) { return s.start() < x; });
  const size_t j = static_cast<size_t>(it - slices_.begin());
  return QuerySlices(agg, i, j);
}

Time AggregateStore::NthRecentTupleTime(Time t, int64_t n) const {
  if (n <= 0) return kNoTime;
  size_t i = FindByStart(t);
  if (i == kNpos) return kNoTime;
  int64_t remaining = n;
  for (size_t k = i + 1; k-- > 0;) {
    const std::vector<Tuple>& tuples = slices_[k].tuples();
    if (tuples.empty()) {
      if (slices_[k].tuple_count() > 0) return kNoTime;  // not retained
      continue;
    }
    // Tuples are sorted by (ts, seq); count those with ts < t from the back.
    auto ub = std::lower_bound(
        tuples.begin(), tuples.end(), t,
        [](const Tuple& a, Time x) { return a.ts < x; });
    int64_t avail = static_cast<int64_t>(ub - tuples.begin());
    if (avail >= remaining) {
      return tuples[static_cast<size_t>(avail - remaining)].ts;
    }
    remaining -= avail;
  }
  return kNoTime;
}

size_t AggregateStore::MemoryBytes() const {
  size_t bytes = 0;
  for (const Slice& s : slices_) bytes += s.MemoryBytes();
  for (const FlatFat& tree : trees_) bytes += tree.MemoryBytes();
  return bytes;
}

void AggregateStore::Serialize(state::Writer& w) const {
  w.Tag(0x53544F52);  // "STOR"
  w.Bool(track_last_ts_);
  w.U64(total_tuples_);
  w.U64(slices_created_);
  w.U64(slices_.size());
  for (const Slice& s : slices_) s.Serialize(w);
  w.U64(trees_.size());
  for (const FlatFat& tree : trees_) tree.Serialize(w);
}

void AggregateStore::Deserialize(state::Reader& r) {
  r.Tag(0x53544F52);
  track_last_ts_ = r.Bool();
  total_tuples_ = r.U64();
  slices_created_ = r.U64();
  const uint64_t ns = r.U64();
  if (ns > r.remaining()) {
    r.Fail();
    return;
  }
  slices_.clear();
  free_slices_.clear();
  for (uint64_t i = 0; i < ns && r.ok(); ++i) {
    slices_.emplace_back(0, 0, fns_.size());
    slices_.back().Deserialize(r);
  }
  const uint64_t ntrees = r.U64();
  if (mode_ == StoreMode::kEager) {
    if (ntrees != fns_.size()) {
      r.Fail();
      return;
    }
    trees_.clear();
    trees_.reserve(fns_.size());
    for (size_t a = 0; a < fns_.size() && r.ok(); ++a) {
      trees_.emplace_back(fns_[a]);
      trees_[a].Deserialize(r);
    }
  } else if (ntrees != 0) {
    r.Fail();
  }
}

void AggregateStore::SerializeDelta(state::Writer& w) const {
  w.Tag(0x53444C54);  // "SDLT"
  w.Bool(track_last_ts_);
  w.U64(total_tuples_);
  w.U64(slices_created_);
  w.U64(slices_.size());
  for (const Slice& s : slices_) {
    if (s.snapshot_dirty()) {
      w.U8(1);
      s.Serialize(w);
    } else {
      w.U8(0);
      w.I64(s.start());
    }
  }
  w.U64(trees_.size());
  for (const FlatFat& tree : trees_) {
    w.U64(tree.capacity());
    w.U64(tree.offset());
    w.U64(tree.size());
  }
}

void AggregateStore::ApplyDelta(state::Reader& r) {
  r.Tag(0x53444C54);
  const bool track = r.Bool();
  const uint64_t total = r.U64();
  const uint64_t created = r.U64();
  const uint64_t ns = r.U64();
  if (!r.ok() || ns > r.remaining()) {
    r.Fail();
    return;
  }
  std::deque<Slice> next;
  for (uint64_t i = 0; i < ns && r.ok(); ++i) {
    const uint8_t dirty = r.U8();
    if (dirty == 1) {
      next.emplace_back(0, 0, fns_.size());
      next.back().Deserialize(r);
    } else if (dirty == 0) {
      const Time start = r.I64();
      if (!r.ok()) return;
      const size_t idx = FindByStart(start);
      // A clean reference must resolve to an untouched slice of the
      // previous epoch; anything else means a barrier is missing between
      // this delta and the state it is being applied to.
      if (idx == kNpos || slices_[idx].start() != start ||
          slices_[idx].snapshot_dirty()) {
        r.Fail();
        return;
      }
      next.push_back(slices_[idx]);
    } else {
      r.Fail();
      return;
    }
  }
  const uint64_t ntrees = r.U64();
  if (!r.ok()) return;
  std::vector<std::array<uint64_t, 3>> layouts;
  if (mode_ == StoreMode::kEager) {
    if (ntrees != fns_.size()) {
      r.Fail();
      return;
    }
    layouts.reserve(static_cast<size_t>(ntrees));
    for (uint64_t a = 0; a < ntrees; ++a) {
      const uint64_t cap = r.U64();
      const uint64_t off = r.U64();
      const uint64_t size = r.U64();
      if (!r.ok() || size != next.size()) {
        r.Fail();
        return;
      }
      layouts.push_back({cap, off, size});
    }
  } else if (ntrees != 0) {
    r.Fail();
    return;
  }

  track_last_ts_ = track;
  total_tuples_ = total;
  slices_created_ = created;
  slices_ = std::move(next);
  free_slices_.clear();
  if (mode_ == StoreMode::kEager) {
    trees_.clear();
    trees_.reserve(fns_.size());
    for (size_t a = 0; a < fns_.size(); ++a) {
      trees_.emplace_back(fns_[a]);
      const bool ok = trees_[a].RestoreFromLayout(
          static_cast<size_t>(layouts[a][0]), static_cast<size_t>(layouts[a][1]),
          static_cast<size_t>(layouts[a][2]),
          [&](size_t i) -> const Partial& { return slices_[i].agg(a); });
      if (!ok) {
        r.Fail();
        return;
      }
    }
  }
}

void AggregateStore::MarkAllClean() {
  for (Slice& s : slices_) s.MarkSnapshotClean();
}

size_t AggregateStore::DirtySliceCount() const {
  size_t n = 0;
  for (const Slice& s : slices_) n += s.snapshot_dirty() ? 1 : 0;
  return n;
}

void AggregateStore::RebuildTrees() {
  if (mode_ != StoreMode::kEager) return;
  trees_.clear();
  trees_.reserve(fns_.size());
  for (size_t a = 0; a < fns_.size(); ++a) {
    trees_.emplace_back(fns_[a]);
    for (const Slice& s : slices_) trees_[a].Append(s.agg(a));
  }
}

}  // namespace scotty
