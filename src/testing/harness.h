#ifndef SCOTTY_TESTING_HARNESS_H_
#define SCOTTY_TESTING_HARNESS_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/time.h"
#include "common/tuple.h"
#include "common/tuple_batch.h"
#include "common/value.h"
#include "core/window_operator.h"
#include "state/snapshot.h"

namespace scotty {
namespace testing {

/// Shorthand tuple constructor used throughout the test suites.
inline Tuple T(Time ts, double value, uint64_t seq = 0, int64_t key = 0) {
  Tuple t;
  t.ts = ts;
  t.value = value;
  t.seq = seq;
  t.key = key;
  return t;
}

/// Key identifying a window instance in the result stream.
using ResultKey = std::tuple<int, int, Time, Time>;  // window, agg, start, end

/// Final value per window instance: later emissions (allowed-lateness
/// updates) override earlier ones — the consumer-visible end state.
inline std::map<ResultKey, Value> FinalResults(
    const std::vector<WindowResult>& results) {
  std::map<ResultKey, Value> out;
  for (const WindowResult& r : results) {
    out[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
  }
  return out;
}

/// Feeds tuples in vector order, assigning arrival sequence numbers, then a
/// final watermark; returns all emitted results.
inline std::vector<WindowResult> RunStream(WindowOperator& op,
                                           std::vector<Tuple> tuples,
                                           Time final_wm) {
  uint64_t seq = 0;
  for (Tuple& t : tuples) {
    t.seq = seq++;
    op.ProcessTuple(t);
  }
  op.ProcessWatermark(final_wm);
  return op.TakeResults();
}

/// Like RunStream, but additionally issues a lagging watermark every
/// `wm_every` tuples (wm = max event time seen − wm_lag). Exercises the
/// trigger/update/eviction machinery mid-stream instead of only at the end.
/// With wm_lag ≥ StreamSpec::MaxLateness() no tuple is ever dropped, so the
/// final per-instance results must equal the single-watermark run.
inline std::map<ResultKey, Value> RunToFinalResults(WindowOperator& op,
                                                    const std::vector<Tuple>&
                                                        tuples,
                                                    Time final_wm,
                                                    int wm_every = 0,
                                                    Time wm_lag = 0) {
  std::map<ResultKey, Value> out;
  auto drain = [&] {
    for (const WindowResult& r : op.TakeResults()) {
      out[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
    }
  };
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  for (Tuple t : tuples) {
    t.seq = seq++;
    op.ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        op.ProcessWatermark(wm);
        last_wm = wm;
        drain();
      }
    }
  }
  op.ProcessWatermark(final_wm);
  drain();
  return out;
}

/// Batched twin of RunToFinalResults: identical tuple/watermark sequence,
/// but tuples are delivered through ProcessTupleBatch in blocks of
/// `batch_size` (blocks never straddle a watermark injection point). Any
/// difference in the final results against RunToFinalResults is a bug in an
/// operator's batched path.
inline std::map<ResultKey, Value> RunToFinalResultsBatched(
    WindowOperator& op, const std::vector<Tuple>& tuples, Time final_wm,
    int wm_every, Time wm_lag, size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  std::map<ResultKey, Value> out;
  std::vector<WindowResult> drained;
  auto drain = [&] {
    drained.clear();
    op.TakeResultsInto(&drained);
    for (const WindowResult& r : drained) {
      out[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
    }
  };
  std::vector<Tuple> buf;
  buf.reserve(batch_size);
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  const size_t n = tuples.size();
  size_t i = 0;
  while (i < n) {
    size_t limit = std::min(n - i, batch_size);
    if (wm_every > 0) {
      limit = std::min<size_t>(
          limit, static_cast<size_t>(wm_every) -
                     static_cast<size_t>(seq % static_cast<uint64_t>(wm_every)));
    }
    buf.clear();
    for (size_t k = 0; k < limit; ++k) {
      Tuple t = tuples[i + k];
      t.seq = seq++;
      max_ts = std::max(max_ts, t.ts);
      buf.push_back(t);
    }
    i += limit;
    op.ProcessTupleBatch(buf);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        op.ProcessWatermark(wm);
        last_wm = wm;
        drain();
      }
    }
  }
  op.ProcessWatermark(final_wm);
  drain();
  return out;
}

/// Columnar twin of RunToFinalResultsBatched: the identical tuple and
/// watermark sequence, but blocks are transposed into SoA column batches
/// and delivered through ProcessTupleColumns — punctuation markers ride
/// inside the blocks, so the columnar run-splitting must handle them
/// inline. Any difference in the final results against RunToFinalResults
/// is a bug in an operator's columnar path (or in a column kernel).
inline std::map<ResultKey, Value> RunToFinalResultsColumns(
    WindowOperator& op, const std::vector<Tuple>& tuples, Time final_wm,
    int wm_every, Time wm_lag, size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  std::map<ResultKey, Value> out;
  std::vector<WindowResult> drained;
  auto drain = [&] {
    drained.clear();
    op.TakeResultsInto(&drained);
    for (const WindowResult& r : drained) {
      out[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
    }
  };
  TupleBatchSoA buf(batch_size);
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  const size_t n = tuples.size();
  size_t i = 0;
  while (i < n) {
    size_t limit = std::min(n - i, batch_size);
    if (wm_every > 0) {
      limit = std::min<size_t>(
          limit, static_cast<size_t>(wm_every) -
                     static_cast<size_t>(seq % static_cast<uint64_t>(wm_every)));
    }
    buf.Clear();
    for (size_t k = 0; k < limit; ++k) {
      Tuple t = tuples[i + k];
      t.seq = seq++;
      max_ts = std::max(max_ts, t.ts);
      buf.PushBack(t);
    }
    i += limit;
    op.ProcessTupleColumns(buf.View());
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        op.ProcessWatermark(wm);
        last_wm = wm;
        drain();
      }
    }
  }
  op.ProcessWatermark(final_wm);
  drain();
  return out;
}

/// Checkpointed twin of RunToFinalResults: runs a fresh operator from
/// `factory` over the first `checkpoint_at` tuples with the identical
/// tuple/watermark cadence, serializes its full state through the versioned
/// snapshot container (state/snapshot.h), destroys it, restores a second
/// fresh instance from the snapshot bytes, and replays the remainder. The
/// returned final results must be bit-identical to RunToFinalResults over
/// the whole stream — any difference is a snapshot/restore bug. Returns
/// false (with *error set) if serialization or container validation fails.
inline bool RunToFinalResultsCheckpointed(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    size_t checkpoint_at, std::map<ResultKey, Value>* out,
    std::string* error) {
  out->clear();
  std::unique_ptr<WindowOperator> op = factory();
  auto drain = [&] {
    for (const WindowResult& r : op->TakeResults()) {
      (*out)[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
    }
  };
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  const size_t n = tuples.size();
  checkpoint_at = std::min(checkpoint_at, n);
  for (size_t i = 0; i < n; ++i) {
    if (i == checkpoint_at) {
      // Snapshot, tear down, restore onto a fresh instance. The harness
      // locals (seq, max_ts, last_wm) survive on this side; everything the
      // operator needs must survive through the snapshot bytes.
      if (!op->SupportsSnapshot()) {
        *error = "operator does not support snapshots";
        return false;
      }
      state::Writer w;
      op->SerializeState(w);
      state::CheckpointMetadata meta;
      meta.source_offset = i;
      meta.next_seq = seq;
      meta.max_ts = max_ts;
      meta.last_wm = last_wm;
      const std::vector<uint8_t> blob =
          state::BuildSnapshot(meta, op->Name(), w.Take());
      op.reset();
      state::CheckpointMetadata meta2;
      std::string name;
      std::vector<uint8_t> st;
      if (!state::ParseSnapshot(blob, &meta2, &name, &st)) {
        *error = "snapshot container failed validation";
        return false;
      }
      if (meta2.source_offset != i || meta2.next_seq != seq) {
        *error = "snapshot metadata did not round-trip";
        return false;
      }
      op = factory();
      state::Reader r(st);
      op->DeserializeState(r);
      if (!r.ok() || !r.AtEnd()) {
        *error = "operator state did not decode cleanly (ok=" +
                 std::string(r.ok() ? "true" : "false") +
                 ", leftover=" + std::to_string(r.remaining()) + " bytes)";
        return false;
      }
    }
    Tuple t = tuples[i];
    t.seq = seq++;
    op->ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        op->ProcessWatermark(wm);
        last_wm = wm;
        drain();
      }
    }
  }
  op->ProcessWatermark(final_wm);
  drain();
  return true;
}

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_HARNESS_H_
