#include "testing/stream_gen.h"

#include <utility>

namespace scotty {
namespace testing {

std::vector<Tuple> GenerateStream(const StreamSpec& spec) {
  Rng rng(spec.seed);

  // Phase 1: in-order event-time sequence. The draw order (step, gap,
  // value, key, punctuation) is fixed and conditional draws are skipped
  // when their feature is disabled, so legacy single-purpose generators are
  // reproduced exactly by the matching spec.
  std::vector<Tuple> in_order;
  in_order.reserve(static_cast<size_t>(spec.num_tuples));
  Time ts = 0;
  for (int i = 0; i < spec.num_tuples; ++i) {
    ts += spec.step_lo;
    if (spec.step_hi > spec.step_lo) {
      ts += static_cast<Time>(rng.NextBounded(
          static_cast<uint64_t>(spec.step_hi - spec.step_lo) + 1));
    }
    if (spec.gap_probability > 0 && rng.NextDouble() < spec.gap_probability) {
      ts += spec.gap_length;
    }
    Tuple t;
    t.ts = ts;
    t.value = static_cast<double>(rng.NextBounded(spec.value_range));
    if (spec.num_keys > 1) {
      t.key = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(spec.num_keys)));
    }
    in_order.push_back(t);
    if (spec.punctuation_probability > 0 &&
        rng.NextDouble() < spec.punctuation_probability) {
      Tuple p;
      p.ts = ts;  // shares the data tuple's timestamp on purpose
      p.is_punctuation = true;
      in_order.push_back(p);
    }
  }

  const bool disorder = (spec.ooo_fraction > 0 || spec.burst_probability > 0) &&
                        spec.max_delay > 0;
  if (!disorder) return in_order;

  // Phase 2: bounded-disorder injection. Held tuples are released (in FIFO
  // order) once the in-order timestamp reaches their release point; a held
  // tuple stuck behind an earlier one is only delayed further, never past
  // the earlier tuple's bound, so MaxLateness() stays valid.
  std::vector<Tuple> arrived;
  arrived.reserve(in_order.size());
  std::vector<std::pair<Time, Tuple>> held;  // (release ts, tuple)
  int burst_remaining = 0;
  Time burst_release = 0;
  for (const Tuple& t : in_order) {
    while (!held.empty() && held.front().first <= t.ts) {
      arrived.push_back(held.front().second);
      held.erase(held.begin());
    }
    if (burst_remaining > 0) {
      --burst_remaining;
      held.push_back({std::max(burst_release, t.ts + 1), t});
    } else if (spec.ooo_fraction > 0 &&
               rng.NextDouble() < spec.ooo_fraction) {
      held.push_back({t.ts + 1 +
                          static_cast<Time>(rng.NextBounded(
                              static_cast<uint64_t>(spec.max_delay))),
                      t});
    } else if (spec.burst_probability > 0 &&
               rng.NextDouble() < spec.burst_probability) {
      burst_remaining = spec.burst_length - 1;
      burst_release = t.ts + 1 +
                      static_cast<Time>(rng.NextBounded(
                          static_cast<uint64_t>(spec.max_delay)));
      held.push_back({burst_release, t});
    } else {
      arrived.push_back(t);
    }
  }
  for (auto& [release, t] : held) arrived.push_back(t);
  return arrived;
}

}  // namespace testing
}  // namespace scotty
