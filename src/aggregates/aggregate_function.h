#ifndef SCOTTY_AGGREGATES_AGGREGATE_FUNCTION_H_
#define SCOTTY_AGGREGATES_AGGREGATE_FUNCTION_H_

#include <memory>
#include <span>
#include <string>

#include "aggregates/partial.h"
#include "common/tuple.h"
#include "common/tuple_batch.h"
#include "common/value.h"

namespace scotty {

/// Classification of aggregations by partial-aggregate size (paper §4.2,
/// following Gray et al. [16]).
enum class AggClass {
  kDistributive,  // partial == final, constant size (sum, min, max)
  kAlgebraic,     // fixed-size intermediate (avg, stddev, M4)
  kHolistic,      // unbounded intermediate (median, percentile)
};

/// Incremental aggregation interface (paper Section 5.4.1, following
/// Tangwongsan et al. [42]).
///
/// An aggregation is specified by four functions:
///  - Lift:    tuple -> partial aggregate
///  - Combine: partial (+)= partial           (must be associative)
///  - Lower:   partial -> final aggregate
///  - Invert:  partial (-)= partial           (optional)
///
/// All implementations must treat an identity Partial (IsIdentity()) as the
/// neutral element of Combine on both sides, and Lift must never return an
/// identity Partial for a data tuple.
///
/// The slicing core inspects the algebraic-property accessors
/// (IsCommutative/IsInvertible/Class) to adapt its strategy (paper Fig. 4-6):
/// non-commutative functions force aggregate recomputation from stored
/// tuples on out-of-order arrival; invertibility makes count-measure tuple
/// shifts incremental; holistic functions force tuple retention.
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  /// Transforms one tuple into the partial aggregate of just that tuple.
  virtual Partial Lift(const Tuple& t) const = 0;

  /// into = into (+) other. `other` may be identity; `into` may be identity.
  virtual void Combine(Partial& into, const Partial& other) const = 0;

  /// Folds a batch of tuples into `into`, exactly equivalent to calling
  /// Combine(into, Lift(t)) for every tuple in order. The batched ingestion
  /// hot path issues ONE virtual dispatch per (batch, aggregation) through
  /// this method; the built-in distributive/algebraic functions override it
  /// with tight non-virtual loops over the raw tuple span (no Partial
  /// round-trip per tuple). Overrides MUST preserve the per-tuple fold order
  /// bit-for-bit — the differential fuzzer compares batched and per-tuple
  /// executions for exact equality, including floating-point rounding.
  virtual void LiftCombineBatch(std::span<const Tuple> batch,
                                Partial& into) const {
    for (const Tuple& t : batch) Combine(into, Lift(t));
  }

  /// Columnar (SoA) variant of LiftCombineBatch: folds every tuple of the
  /// view into `into`, exactly equivalent to Combine(into, Lift(t)) per
  /// tuple in order. The built-in sum/count/min/max/avg overrides read the
  /// value column directly through the vectorized kernels in
  /// aggregates/kernels.h; this default materializes tuples one at a time
  /// so every aggregation (arg-max reads ts, concat reads order, ...) works
  /// on the SoA path unchanged. Same bit-for-bit fold-order contract as
  /// LiftCombineBatch.
  virtual void LiftCombineColumns(const TupleColumnsView& cols,
                                  Partial& into) const {
    for (size_t i = 0; i < cols.size; ++i) Combine(into, Lift(cols.Get(i)));
  }

  /// Transforms a partial aggregate into the final window aggregate.
  virtual Value Lower(const Partial& p) const = 0;

  /// from = from (-) removed. Only called when IsInvertible() is true, and
  /// only with `removed` values that were previously combined into `from`.
  virtual void Invert(Partial& from, const Partial& removed) const {
    (void)from;
    (void)removed;
  }

  /// Attempts to remove `removed` from `from` without a recomputation.
  /// Returns false if the aggregate must be recomputed from source tuples.
  ///
  /// Invertible functions always succeed (via Invert). Not-invertible
  /// functions may still succeed when the removed value provably does not
  /// affect the aggregate — the paper's observation that, e.g., the tuple
  /// shifted out of a slice is unlikely to be the slice's maximum
  /// (Section 6.3.2, "Impact of invertibility").
  virtual bool TryRemove(Partial& from, const Partial& removed) const {
    if (!IsInvertible()) return false;
    Invert(from, removed);
    return true;
  }

  /// The neutral element of Combine.
  Partial Identity() const { return Partial{}; }

  virtual bool IsCommutative() const { return true; }
  virtual bool IsInvertible() const { return false; }
  virtual AggClass Class() const = 0;
  virtual std::string Name() const = 0;
};

using AggregateFunctionPtr = std::shared_ptr<const AggregateFunction>;

}  // namespace scotty

#endif  // SCOTTY_AGGREGATES_AGGREGATE_FUNCTION_H_
