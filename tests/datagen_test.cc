// Tests for the synthetic data generators and the out-of-order injector.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "datagen/ooo_injector.h"
#include "datagen/workloads.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

TEST(SensorStream, FootballPresetMatchesPaperCharacteristics) {
  const SensorConfig c = SensorStream::Football();
  EXPECT_EQ(c.rate_hz, 2000.0);
  EXPECT_EQ(c.distinct_values, 84232);
  EXPECT_EQ(c.session_gaps_per_minute, 5.0);
}

TEST(SensorStream, MachinePresetMatchesPaperCharacteristics) {
  const SensorConfig c = SensorStream::Machine();
  EXPECT_EQ(c.rate_hz, 100.0);
  EXPECT_EQ(c.distinct_values, 37);
}

TEST(SensorStream, ProducesInOrderTimestampsAtConfiguredRate) {
  SensorConfig c = SensorStream::Football();
  c.session_gaps_per_minute = 0;  // disable gaps for the rate check
  SensorStream s(c);
  Tuple t;
  Time prev = -1;
  Time last = 0;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(s.Next(&t));
    EXPECT_GE(t.ts, prev);
    prev = t.ts;
    last = t.ts;
  }
  // 20k tuples at 2000 Hz ~ 10 seconds of stream time.
  EXPECT_NEAR(static_cast<double>(last), 10000.0, 100.0);
}

TEST(SensorStream, DistinctValuesBounded) {
  SensorConfig c = SensorStream::Machine();
  SensorStream s(c);
  std::set<double> values;
  Tuple t;
  for (int i = 0; i < 5000; ++i) {
    s.Next(&t);
    values.insert(t.value);
  }
  EXPECT_LE(values.size(), 37u);
  EXPECT_GT(values.size(), 30u);  // nearly all values observed
}

TEST(SensorStream, SessionGapsAppearAtConfiguredFrequency) {
  SensorConfig c = SensorStream::Football();
  SensorStream s(c);
  Tuple t;
  Time prev = 0;
  int gaps = 0;
  Time last = 0;
  for (int i = 0; i < 2000 * 60; ++i) {  // one minute of stream time
    s.Next(&t);
    if (i > 0 && t.ts - prev >= c.gap_length_ms) ++gaps;
    prev = t.ts;
    last = t.ts;
  }
  (void)last;
  EXPECT_GE(gaps, 4);
  EXPECT_LE(gaps, 7);
}

TEST(SensorStream, DeterministicForFixedSeed) {
  SensorStream a(SensorStream::Football());
  SensorStream b(SensorStream::Football());
  Tuple ta;
  Tuple tb;
  for (int i = 0; i < 1000; ++i) {
    a.Next(&ta);
    b.Next(&tb);
    EXPECT_EQ(ta, tb);
  }
}

TEST(SensorStream, KeysWithinRange) {
  SensorConfig c = SensorStream::Football();
  c.num_keys = 4;
  SensorStream s(c);
  Tuple t;
  for (int i = 0; i < 1000; ++i) {
    s.Next(&t);
    EXPECT_GE(t.key, 0);
    EXPECT_LT(t.key, 4);
  }
}

TEST(PunctuatedStream, EmitsMarkersAtInterval) {
  SensorStream inner(SensorStream::Machine());
  PunctuatedStream s(&inner, 10);
  Tuple t;
  int puncts = 0;
  int data = 0;
  for (int i = 0; i < 110; ++i) {
    ASSERT_TRUE(s.Next(&t));
    if (t.is_punctuation) {
      ++puncts;
    } else {
      ++data;
    }
  }
  EXPECT_EQ(data + puncts, 110);
  EXPECT_GE(puncts, 9);
  EXPECT_LE(puncts, 11);
}

TEST(OutOfOrderInjector, FractionZeroKeepsStreamInOrder) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options opts;
  opts.fraction = 0.0;
  OutOfOrderInjector src(&inner, opts);
  Tuple t;
  Time prev = -1;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(src.Next(&t));
    EXPECT_GE(t.ts, prev);
    prev = t.ts;
  }
}

TEST(OutOfOrderInjector, ProducesConfiguredOutOfOrderFraction) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options opts;
  opts.fraction = 0.2;
  opts.min_delay = 0;
  opts.max_delay = 2000;
  OutOfOrderInjector src(&inner, opts);
  Tuple t;
  Time max_seen = kNoTime;
  int ooo = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(src.Next(&t));
    if (max_seen != kNoTime && t.ts < max_seen) ++ooo;
    max_seen = std::max(max_seen, t.ts);
  }
  const double fraction = static_cast<double>(ooo) / n;
  EXPECT_GT(fraction, 0.15);
  EXPECT_LT(fraction, 0.25);
}

TEST(OutOfOrderInjector, DelaysBoundedByMaxDelay) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options opts;
  opts.fraction = 0.3;
  opts.max_delay = 500;
  OutOfOrderInjector src(&inner, opts);
  Tuple t;
  Time max_seen = kNoTime;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(src.Next(&t));
    if (max_seen != kNoTime) {
      EXPECT_GE(t.ts, max_seen - 500 - 1);  // delay ceiling honored
    }
    max_seen = std::max(max_seen, t.ts);
  }
}

TEST(OutOfOrderInjector, SequenceNumbersFollowArrivalOrder) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options opts;
  opts.fraction = 0.2;
  OutOfOrderInjector src(&inner, opts);
  Tuple t;
  uint64_t expected_seq = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(src.Next(&t));
    EXPECT_EQ(t.seq, expected_seq++);
  }
}

TEST(OutOfOrderInjector, WatermarkIsSound) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options opts;
  opts.fraction = 0.2;
  opts.max_delay = 2000;
  OutOfOrderInjector src(&inner, opts);
  Tuple t;
  for (int i = 0; i < 10000; ++i) {
    const Time wm = src.CurrentWatermark();
    ASSERT_TRUE(src.Next(&t));
    // The watermark promise: no tuple older than wm arrives afterwards.
    if (wm != kNoTime) EXPECT_GE(t.ts, wm);
  }
}

TEST(OutOfOrderInjector, FullyOutOfOrderStreamStaysBounded) {
  // fraction = 1.0 must not accumulate unbounded held state: releases are
  // driven by source progress.
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options opts;
  opts.fraction = 1.0;
  opts.max_delay = 1000;
  OutOfOrderInjector src(&inner, opts);
  Tuple t;
  Time max_seen = kNoTime;
  int ooo = 0;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(src.Next(&t));
    if (max_seen != kNoTime && t.ts < max_seen) ++ooo;
    max_seen = std::max(max_seen, t.ts);
  }
  EXPECT_GT(ooo, 5000);  // heavily disordered, yet bounded memory
}

TEST(Workloads, DashboardWindowLengthsSpanOneToTwentySeconds) {
  const std::vector<WindowPtr> ws = DashboardTumblingWindows(20);
  ASSERT_EQ(ws.size(), 20u);
  auto* first = dynamic_cast<TumblingWindow*>(ws.front().get());
  auto* last = dynamic_cast<TumblingWindow*>(ws.back().get());
  ASSERT_NE(first, nullptr);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(first->length(), 1000);
  EXPECT_EQ(last->length(), 20000);
}

TEST(Workloads, CountVariantUsesCountMeasure) {
  const std::vector<WindowPtr> ws = DashboardCountWindows(3);
  for (const WindowPtr& w : ws) {
    EXPECT_EQ(w->measure(), Measure::kCount);
  }
}

TEST(Workloads, SingleWindowUsesMinLength) {
  const std::vector<WindowPtr> ws = DashboardTumblingWindows(1);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(dynamic_cast<TumblingWindow*>(ws[0].get())->length(), 1000);
}

}  // namespace
}  // namespace scotty
