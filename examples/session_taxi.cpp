// Taxi-trip session analysis (sessions are the paper's canonical
// context-aware window: "typical examples of sessions are taxi trips,
// browser sessions, and ATM interactions").
//
// Each taxi emits GPS speed updates while a trip is in progress; a pause of
// more than 3 minutes ends the trip. A session window per trip computes the
// average speed and the number of pings — even when updates arrive out of
// order, which can retroactively merge what looked like two trips into one.
//
//   $ ./examples/session_taxi

#include <cstdio>
#include <memory>
#include <vector>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "windows/session.h"

int main() {
  using namespace scotty;
  constexpr Time kMinute = 60'000;  // timestamps in milliseconds

  GeneralSlicingOperator::Options options;
  options.stream_in_order = false;     // mobile networks reorder updates
  options.allowed_lateness = kMinute;  // accept 1 min of late pings
  GeneralSlicingOperator op(options);

  const int avg_speed = op.AddAggregation(MakeAggregation("avg"));
  const int pings = op.AddAggregation(MakeAggregation("count"));
  op.AddWindow(std::make_shared<SessionWindow>(3 * kMinute));

  std::printf("decision: store tuples = %s — %s\n\n",
              op.queries().StoreTuples() ? "yes" : "no",
              op.queries().storage.reason.c_str());

  // One taxi's morning: two trips... or is it? The ping at minute 21
  // arrives late and bridges what initially looks like separate trips.
  struct Ping {
    double minute;
    double speed_kmh;
  };
  const std::vector<Ping> pings_in_arrival_order = {
      {0, 32},  {1, 45},  {2, 51},  {3, 38},            // trip A
      {19, 42}, {23, 35}, {24, 48},                     // trip B...
      {21, 40},                                         // late: bridges 19-23
      {40, 55}, {41, 62},                               // trip C
  };

  uint64_t seq = 0;
  for (const Ping& p : pings_in_arrival_order) {
    Tuple t;
    t.ts = static_cast<Time>(p.minute * kMinute);
    t.value = p.speed_kmh;
    t.seq = seq++;
    op.ProcessTuple(t);
  }
  op.ProcessWatermark(50 * kMinute);  // end of the observation period

  for (const WindowResult& r : op.TakeResults()) {
    if (r.agg_id == avg_speed && !r.value.IsEmpty()) {
      std::printf("trip [%4.1f min, %4.1f min): avg speed %.1f km/h%s\n",
                  static_cast<double>(r.start) / kMinute,
                  static_cast<double>(r.end) / kMinute, r.value.Numeric(),
                  r.is_update ? " (updated)" : "");
    } else if (r.agg_id == pings && !r.value.IsEmpty()) {
      std::printf("      %-24s %ld pings\n", "",
                  static_cast<long>(r.value.AsInt()));
    }
  }

  std::printf(
      "\nsessions merged without recomputation: %llu merges, %llu "
      "recomputes (sessions never recompute — paper Section 5.1)\n",
      static_cast<unsigned long long>(op.stats().slice_merges),
      static_cast<unsigned long long>(op.stats().slice_recomputes));
  return 0;
}
