# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scotty_integration_tests.
