# Empty dependencies file for bench_fig15_split_cost.
# This may be replaced when dependencies are built.
