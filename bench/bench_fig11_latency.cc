// Figure 11: Output latency of aggregate stores (JMH in the paper; Google
// Benchmark here).
//
// Measures the time to produce one final window aggregate from a store
// holding N entries:
//  - lazy slicing:   ordered combine of N slice partials on demand;
//  - eager slicing:  O(log N) FlatFAT range query;
//  - tuple buffer:   lazy fold over N buffered tuples;
//  - buckets:        hash lookup of the pre-computed window aggregate.
//
// (a) uses the algebraic sum, (c) the holistic median. Expected shape:
// lazy ~ tuple buffer (linear, ms at 1e5 entries), eager in microseconds,
// buckets in nanoseconds; the median raises slicing combine costs but not
// the bucket lookup.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "aggregates/registry.h"
#include "bench/bench_json.h"
#include "core/aggregate_store.h"

namespace scotty {
namespace {

AggregateStore MakeStore(StoreMode mode, const std::string& agg, int64_t n) {
  AggregateStore store(mode, {MakeAggregation(agg)});
  uint64_t seq = 0;
  for (int64_t i = 0; i < n; ++i) {
    Slice& s = store.Append(i * 10, (i + 1) * 10);
    Tuple t;
    t.ts = i * 10 + 5;
    t.value = static_cast<double>(i % 37);
    t.seq = seq++;
    s.AddTuple(t, store.fns(), false);
    store.OnSliceAggUpdated(store.NumSlices() - 1);
  }
  return store;
}

void BM_LazySlicing(benchmark::State& state, const std::string& agg) {
  const int64_t n = state.range(0);
  AggregateStore store = MakeStore(StoreMode::kLazy, agg, n);
  const AggregateFunctionPtr fn = MakeAggregation(agg);
  for (auto _ : state) {
    Value v = fn->Lower(store.QueryRange(0, 0, n * 10));
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel("fig11:lazy-slicing:" + agg);
}

void BM_EagerSlicing(benchmark::State& state, const std::string& agg) {
  const int64_t n = state.range(0);
  AggregateStore store = MakeStore(StoreMode::kEager, agg, n);
  const AggregateFunctionPtr fn = MakeAggregation(agg);
  for (auto _ : state) {
    Value v = fn->Lower(store.QueryRange(0, 0, n * 10));
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel("fig11:eager-slicing:" + agg);
}

void BM_TupleBuffer(benchmark::State& state, const std::string& agg) {
  const int64_t n = state.range(0);
  std::vector<Tuple> buffer;
  buffer.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Tuple t;
    t.ts = i;
    t.value = static_cast<double>(i % 37);
    t.seq = static_cast<uint64_t>(i);
    buffer.push_back(t);
  }
  const AggregateFunctionPtr fn = MakeAggregation(agg);
  for (auto _ : state) {
    Partial acc;
    for (const Tuple& t : buffer) fn->Combine(acc, fn->Lift(t));
    Value v = fn->Lower(acc);
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel("fig11:tuple-buffer:" + agg);
}

void BM_Buckets(benchmark::State& state, const std::string& agg) {
  const int64_t n = state.range(0);
  const AggregateFunctionPtr fn = MakeAggregation(agg);
  // Pre-computed per-window aggregates in a map keyed by window start.
  std::map<Time, Partial> buckets;
  for (int64_t i = 0; i < n; ++i) {
    Tuple t;
    t.ts = i;
    t.value = static_cast<double>(i % 37);
    Partial p = fn->Lift(t);
    buckets[i * 10] = std::move(p);
  }
  Time probe = 0;
  for (auto _ : state) {
    auto it = buckets.find(probe);
    Value v = fn->Lower(it->second);
    benchmark::DoNotOptimize(v);
    probe += 10;
    if (probe >= n * 10) probe = 0;
  }
  state.SetLabel("fig11:buckets:" + agg);
}

void RegisterAll() {
  for (const char* agg : {"sum", "median"}) {
    const std::string name(agg);
    benchmark::RegisterBenchmark(("fig11/lazy-slicing/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_LazySlicing(s, name);
                                 })
        ->RangeMultiplier(10)
        ->Range(100, 100000)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("fig11/eager-slicing/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_EagerSlicing(s, name);
                                 })
        ->RangeMultiplier(10)
        ->Range(100, 100000)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("fig11/tuple-buffer/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_TupleBuffer(s, name);
                                 })
        ->RangeMultiplier(10)
        ->Range(100, 100000)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("fig11/buckets/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Buckets(s, name);
                                 })
        ->RangeMultiplier(10)
        ->Range(100, 100000)
        ->Unit(benchmark::kNanosecond);
  }
}

/// Console output as usual, plus one EmitRow per finished run so fig11
/// lands in the recorded BENCH_throughput.json like every PrintRow-based
/// figure. Names are "fig11/<store>/<agg>/<entries>": the middle becomes
/// the series, the range the x value.
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const size_t first = name.find('/');
      const size_t last = name.rfind('/');
      if (first == std::string::npos || last <= first) continue;
      bench::EmitRow("fig11", name.substr(first + 1, last - first - 1),
                     name.substr(last + 1), run.GetAdjustedRealTime(),
                     benchmark::GetTimeUnitString(run.time_unit));
    }
  }
};

}  // namespace
}  // namespace scotty

int main(int argc, char** argv) {
  scotty::RegisterAll();
  benchmark::Initialize(&argc, argv);
  scotty::JsonRowReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
