#ifndef SCOTTY_DATAGEN_OOO_INJECTOR_H_
#define SCOTTY_DATAGEN_OOO_INJECTOR_H_

#include <queue>
#include <vector>

#include "common/rng.h"
#include "datagen/generators.h"

namespace scotty {

/// Out-of-order injection (paper Section 6.2.2 / 6.3.1): selects a fraction
/// of tuples and delays their *arrival* by a uniformly random amount of
/// stream time, leaving their event-times unchanged. The emitted stream
/// therefore contains the configured fraction of out-of-order tuples with
/// delays in [min_delay, max_delay], exactly the knobs of Figures 9 and 12.
class OutOfOrderInjector : public TupleSource {
 public:
  struct Options {
    /// Fraction of tuples delivered out of order, in [0, 1].
    double fraction = 0.2;
    /// Uniform arrival-delay range in stream-time units (ms).
    Time min_delay = 0;
    Time max_delay = 2000;
    uint64_t seed = 7;
  };

  OutOfOrderInjector(TupleSource* inner, Options opts)
      : inner_(inner), opts_(opts), rng_(opts.seed) {}

  bool Next(Tuple* out) override;

  /// Low-watermark for everything emitted so far: any tuple still held has
  /// release > max source ts, hence ts > max source ts - max delay.
  Time CurrentWatermark() const {
    return max_source_ts_ == kNoTime ? kNoTime
                                     : max_source_ts_ - opts_.max_delay;
  }

 private:
  struct Held {
    Time release;  // stream time at which the tuple arrives
    Tuple tuple;
    bool operator>(const Held& o) const { return release > o.release; }
  };

  TupleSource* inner_;
  Options opts_;
  Rng rng_;
  std::priority_queue<Held, std::vector<Held>, std::greater<Held>> held_;
  Time max_source_ts_ = kNoTime;  // progress of the wrapped source
  uint64_t next_seq_ = 0;         // re-sequence in arrival order
};

}  // namespace scotty

#endif  // SCOTTY_DATAGEN_OOO_INJECTOR_H_
