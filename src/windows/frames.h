#ifndef SCOTTY_WINDOWS_FRAMES_H_
#define SCOTTY_WINDOWS_FRAMES_H_

#include <algorithm>
#include <string>
#include <vector>

#include "windows/window.h"

namespace scotty {

/// Threshold frames — a data-driven window type (the paper's preliminaries
/// cite Grossniklaus et al., "Frames: data-driven windows" [17]). A frame
/// covers a maximal run of tuples whose value is at or above a threshold;
/// it opens at the first qualifying tuple after a non-qualifying one and
/// closes at the next non-qualifying tuple: window = [first_qual, break).
///
/// Like punctuation windows, frames are forward context free: once all
/// tuples up to t are processed, all edges up to t are known. Edges are
/// *data-driven* rather than marker-driven, so every tuple can move them:
/// an out-of-order non-qualifying tuple lands inside a known frame and
/// splits it in two (slice split + recomputation from stored tuples); an
/// out-of-order qualifying tuple can open a frame retroactively or extend
/// the next frame backward.
///
/// Demonstrates the extension point of paper Section 5.4.2: a new window
/// type with non-trivial context, added without touching the slicing core.
class ThresholdFrameWindow : public ContextAwareWindow {
 public:
  explicit ThresholdFrameWindow(double threshold, Measure m = Measure::kEventTime)
      : threshold_(threshold), measure_(m) {}

  double threshold() const { return threshold_; }
  Measure measure() const override { return measure_; }
  ContextClass context_class() const override {
    return ContextClass::kForwardContextFree;
  }

  ContextModifications ProcessContext(const Tuple& t) override {
    ContextModifications mods;
    if (t.is_punctuation) return mods;
    const bool in_order = max_ts_ == kNoTime || t.ts >= max_ts_;
    max_ts_ = std::max(max_ts_ == kNoTime ? t.ts : max_ts_, t.ts);
    const bool qual = t.value >= threshold_;

    if (qual) {
      const bool duplicate = Contains(quals_, t.ts);
      if (!duplicate) InsertSorted(&quals_, t.ts);
      if (in_order) {
        // Opens a new frame only if a break (or nothing) precedes it.
        const Time prev_qual = LastBelow(quals_, t.ts);
        const Time prev_break = LastBelow(breaks_, t.ts);
        if (prev_qual == kNoTime || prev_break > prev_qual) {
          mods.split_edges.push_back(t.ts);  // frame start edge (cheap cut)
        }
        return mods;
      }
      // Out of order: the tuple may open a frame retroactively or extend
      // the following frame backward; re-deriving the touched frame and
      // reporting it as changed keeps all cases correct.
      const auto [fs, fe] = FrameAround(t.ts);
      mods.split_edges.push_back(fs);
      if (fe != kMaxTime) mods.changed_windows.push_back({fs, fe});
      return mods;
    }

    // Non-qualifying tuple: a break.
    const bool duplicate = Contains(breaks_, t.ts);
    if (!duplicate) InsertSorted(&breaks_, t.ts);
    if (in_order) {
      // Closes the open frame (if any): all tuples so far are < t.ts, so
      // the cut is metadata-only.
      const Time prev_qual = LastBelow(quals_, t.ts);
      const Time prev_break = LastBelow(breaks_, t.ts);
      if (prev_qual != kNoTime && prev_qual > prev_break) {
        mods.split_edges.push_back(t.ts);  // frame end edge
        // Under per-tuple watermarking a same-ts marker may have advanced
        // the watermark to t.ts before this break arrived; the trigger
        // pass for (.., t.ts] has then already run and would never
        // enumerate the frame this break just closed. Reporting the frame
        // as changed emits it retroactively in exactly that case — the
        // window manager skips changed windows the watermark has not
        // reached, so the normal trigger path stays the sole emitter
        // otherwise.
        mods.changed_windows.push_back({FrameStartOf(prev_qual), t.ts});
      }
      return mods;
    }
    // Out of order: if the break lands strictly inside a known frame, that
    // frame splits in two.
    const Time prev_qual = LastBelow(quals_, t.ts);
    const Time next_qual = FirstAbove(quals_, t.ts);
    const Time prev_break = LastBelow(breaks_, t.ts);
    const Time next_break = FirstAbove(breaks_, t.ts);
    const bool inside_frame = prev_qual != kNoTime && prev_qual > prev_break &&
                              next_qual != kMaxTime &&
                              (next_break == kMaxTime || next_qual < next_break);
    if (inside_frame) {
      mods.split_edges.push_back(t.ts);
      const Time fs = FrameStartOf(prev_qual);
      const auto [rs, re] = FrameAround(next_qual);
      mods.changed_windows.push_back({fs, t.ts});
      if (re != kMaxTime) mods.changed_windows.push_back({rs, re});
    }
    return mods;
  }

  Time GetNextEdge(Time) const override {
    // Frame edges are created by the tuples themselves (split_edges); the
    // slicer has no forward knowledge.
    return kMaxTime;
  }

  Time LastEdgeAtOrBefore(Time t) const override {
    // Edges: frame starts (qualifying tuple after a break) and breaks that
    // end a frame. Conservative: the latest qual-or-break <= t.
    const Time q = LastAtOrBelow(quals_, t);
    const Time b = LastAtOrBelow(breaks_, t);
    if (q == kNoTime && b == kNoTime) return kNoTime;
    return std::max(q, b);
  }

  bool IsWindowEdge(Time t) const override {
    // Frame starts:
    if (Contains(quals_, t)) {
      const Time prev_qual = LastBelow(quals_, t);
      const Time prev_break = LastBelow(breaks_, t);
      return prev_qual == kNoTime || prev_break > prev_qual;
    }
    // Frame ends: a break directly preceded by a qualifying tuple.
    if (Contains(breaks_, t)) {
      const Time prev_qual = LastBelow(quals_, t);
      const Time prev_break = LastBelow(breaks_, t);
      return prev_qual != kNoTime && prev_qual > prev_break;
    }
    return false;
  }

  void TriggerWindows(WindowCallback& cb, Time prev_wm,
                      Time curr_wm) override {
    // Enumerate closed frames with end (the break) in (prev_wm, curr_wm].
    size_t qi = 0;
    while (qi < quals_.size()) {
      const Time start = quals_[qi];
      // Frame start only if preceded by a break (or nothing).
      const Time prev_break = LastBelow(breaks_, start);
      const Time prev_qual = qi == 0 ? kNoTime : quals_[qi - 1];
      if (prev_qual != kNoTime && prev_qual > prev_break) {
        ++qi;  // interior qualifying tuple
        continue;
      }
      const Time end = FirstAbove(breaks_, start);
      if (end == kMaxTime || end > curr_wm) {
        ++qi;
        continue;  // frame still open or beyond the watermark
      }
      if (end > prev_wm) cb.OnWindow(start, end);
      ++qi;
    }
  }

  Time EvictionSafePoint(Time wm) const override {
    // An open frame's slices must be retained from its start.
    if (!quals_.empty()) {
      const Time last_qual = quals_.back();
      if (FirstAbove(breaks_, last_qual) == kMaxTime) {
        return std::min(FrameStartOf(last_qual), wm);
      }
    }
    return wm;
  }

  void EvictState(Time t) override {
    // Keep one break before t as the context anchor.
    auto qcut = std::lower_bound(quals_.begin(), quals_.end(), t);
    quals_.erase(quals_.begin(), qcut);
    auto bcut = std::lower_bound(breaks_.begin(), breaks_.end(), t);
    if (bcut != breaks_.begin()) --bcut;
    breaks_.erase(breaks_.begin(), bcut);
  }

  std::string Name() const override {
    return "frames(v>=" + std::to_string(threshold_) + ")";
  }

  void SerializeState(state::Writer& w) const override {
    w.I64(max_ts_);
    w.U64(quals_.size());
    for (Time t : quals_) w.I64(t);
    w.U64(breaks_.size());
    for (Time t : breaks_) w.I64(t);
  }

  void DeserializeState(state::Reader& r) override {
    max_ts_ = r.I64();
    for (std::vector<Time>* v : {&quals_, &breaks_}) {
      const uint64_t n = r.U64();
      if (n > r.remaining()) {
        r.Fail();
        return;
      }
      v->clear();
      v->reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n && r.ok(); ++i) v->push_back(r.I64());
    }
  }

 private:
  static void InsertSorted(std::vector<Time>* v, Time t) {
    v->insert(std::upper_bound(v->begin(), v->end(), t), t);
  }

  static bool Contains(const std::vector<Time>& v, Time t) {
    return std::binary_search(v.begin(), v.end(), t);
  }

  /// Largest element < t, or kNoTime.
  static Time LastBelow(const std::vector<Time>& v, Time t) {
    auto it = std::lower_bound(v.begin(), v.end(), t);
    return it == v.begin() ? kNoTime : *(it - 1);
  }

  /// Largest element <= t, or kNoTime.
  static Time LastAtOrBelow(const std::vector<Time>& v, Time t) {
    auto it = std::upper_bound(v.begin(), v.end(), t);
    return it == v.begin() ? kNoTime : *(it - 1);
  }

  /// Smallest element > t, or kMaxTime.
  static Time FirstAbove(const std::vector<Time>& v, Time t) {
    auto it = std::upper_bound(v.begin(), v.end(), t);
    return it == v.end() ? kMaxTime : *it;
  }

  /// Start of the frame containing the qualifying timestamp q.
  Time FrameStartOf(Time q) const {
    const Time prev_break = LastBelow(breaks_, q + 1);
    // First qualifying tuple after that break.
    auto it = std::upper_bound(quals_.begin(), quals_.end(),
                               prev_break == kNoTime ? kNoTime : prev_break);
    return it == quals_.end() ? q : std::min(*it, q);
  }

  /// [start, end) of the frame containing or adjacent to ts (end kMaxTime
  /// if the frame is still open).
  std::pair<Time, Time> FrameAround(Time ts) const {
    const Time start = FrameStartOf(ts);
    const Time end = FirstAbove(breaks_, ts);
    return {start, end};
  }

  double threshold_;
  Measure measure_;
  Time max_ts_ = kNoTime;
  std::vector<Time> quals_;   // timestamps of qualifying tuples
  std::vector<Time> breaks_;  // timestamps of non-qualifying tuples
};

}  // namespace scotty

#endif  // SCOTTY_WINDOWS_FRAMES_H_
