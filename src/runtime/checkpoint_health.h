#ifndef SCOTTY_RUNTIME_CHECKPOINT_HEALTH_H_
#define SCOTTY_RUNTIME_CHECKPOINT_HEALTH_H_

#include <cstdint>

// Checkpoint health surface, split out of checkpoint.h so pipeline reports
// can carry it: checkpoint.h includes pipeline.h (the checkpointed drivers
// wrap the plain ones), so pipeline.h cannot include checkpoint.h back.

namespace scotty {

/// Degradation state machine: kHealthy until a persist fails; kDegraded
/// while failures are happening but recovery to kHealthy is still possible
/// (a success resets it); kFailed (terminal) after
/// `max_consecutive_failures` — checkpointing stops, the pipeline runs on.
enum class CheckpointHealth { kHealthy, kDegraded, kFailed };

inline const char* CheckpointHealthName(CheckpointHealth h) {
  switch (h) {
    case CheckpointHealth::kHealthy:
      return "healthy";
    case CheckpointHealth::kDegraded:
      return "degraded";
    case CheckpointHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

/// The persistence-mode ladder the coordinator's auto-fallback walks, most
/// capable rung first. Demotion moves one rung down after
/// `max_consecutive_failures` persist failures; promotion moves one rung
/// back up (never past the configured mode) after `promote_after`
/// consecutive successes. The bottom rung sheds every barrier except
/// periodic probe persists and raises the alarm flag.
enum class CheckpointPersistenceMode : int {
  kAsyncIncremental = 0,  ///< base + deltas on the background thread
  kAsyncFull = 1,         ///< full snapshot per barrier, background thread
  kSyncFull = 2,          ///< full snapshot, barrier waits for durability
  kOff = 3,               ///< checkpointing off with alarm; probes only
};

inline const char* CheckpointPersistenceModeName(CheckpointPersistenceMode m) {
  switch (m) {
    case CheckpointPersistenceMode::kAsyncIncremental:
      return "async-incremental";
    case CheckpointPersistenceMode::kAsyncFull:
      return "async-full";
    case CheckpointPersistenceMode::kSyncFull:
      return "sync-full";
    case CheckpointPersistenceMode::kOff:
      return "off";
  }
  return "unknown";
}

/// Point-in-time view of a CheckpointCoordinator's persistence health,
/// surfaced on the checkpointed pipeline reports so callers see degradation
/// without holding a reference to the coordinator.
struct CheckpointHealthReport {
  CheckpointHealth health = CheckpointHealth::kHealthy;
  uint64_t persist_failures = 0;
  uint64_t barriers_dropped = 0;
  uint64_t bases_persisted = 0;
  uint64_t deltas_persisted = 0;
  /// Active rung of the persistence ladder at sampling time; equals
  /// `configured_mode` unless auto-fallback demoted it.
  CheckpointPersistenceMode mode = CheckpointPersistenceMode::kSyncFull;
  /// The rung the coordinator's options ask for (promotion ceiling).
  CheckpointPersistenceMode configured_mode =
      CheckpointPersistenceMode::kSyncFull;
  uint64_t mode_fallbacks = 0;   ///< downward ladder transitions taken
  uint64_t mode_promotions = 0;  ///< upward ladder transitions taken
  /// True while the bottom rung (checkpointing off) is active: durability
  /// is gone and an operator should be paged — the pipeline itself runs on.
  bool alarm = false;

  bool Degraded() const { return health != CheckpointHealth::kHealthy; }
};

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_CHECKPOINT_HEALTH_H_
