// Concurrency stress tests for the runtime layer, designed to run under
// ThreadSanitizer (ctest -L concurrency in the TSan CI lane): the SPSC ring
// buffer under sustained producer/consumer pressure, and the key-partitioned
// ParallelExecutor checked against a sequential per-key reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "runtime/keyed_operator.h"
#include "runtime/parallel_executor.h"
#include "testing/stream_gen.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

TEST(SpscQueueStress, TransfersEveryItemInOrder) {
  SpscQueue q(1 << 8);  // small ring => constant wraparound + backpressure
  constexpr uint64_t kItems = 200000;

  std::thread producer([&q] {
    for (uint64_t i = 0; i < kItems; ++i) {
      SpscQueue::Item item;
      item.kind = SpscQueue::Item::Kind::kTuple;
      item.tuple.seq = i;
      item.tuple.value = static_cast<double>(i % 1024);
      q.Push(item);
    }
    SpscQueue::Item stop;
    stop.kind = SpscQueue::Item::Kind::kStop;
    q.Push(stop);
  });

  uint64_t received = 0;
  double checksum = 0;
  uint64_t expected_seq = 0;
  bool in_order = true;
  while (true) {
    SpscQueue::Item item;
    if (!q.Pop(&item)) {
      std::this_thread::yield();
      continue;
    }
    if (item.kind == SpscQueue::Item::Kind::kStop) break;
    in_order &= item.tuple.seq == expected_seq++;
    ++received;
    checksum += item.tuple.value;
  }
  producer.join();

  EXPECT_EQ(received, kItems);
  EXPECT_TRUE(in_order);
  double expected_checksum = 0;
  for (uint64_t i = 0; i < kItems; ++i) {
    expected_checksum += static_cast<double>(i % 1024);
  }
  EXPECT_EQ(checksum, expected_checksum);
}

TEST(SpscQueueStress, BatchTransfersEveryItemInOrder) {
  SpscQueue q(1 << 7);  // tiny ring: batches constantly split at the wrap
  constexpr uint64_t kItems = 200000;
  constexpr size_t kPush = 190;  // > capacity: PushBatch must chunk
  constexpr size_t kPop = 33;

  std::thread producer([&] {
    std::vector<SpscQueue::Item> block(kPush);
    uint64_t next = 0;
    while (next < kItems) {
      const size_t n =
          std::min<uint64_t>(kPush, kItems - next);
      for (size_t i = 0; i < n; ++i) {
        block[i].kind = SpscQueue::Item::Kind::kTuple;
        block[i].tuple.seq = next + i;
      }
      q.PushBatch(block.data(), n);
      next += n;
    }
    SpscQueue::Item stop;
    stop.kind = SpscQueue::Item::Kind::kStop;
    q.Push(stop);
  });

  uint64_t received = 0;
  uint64_t expected_seq = 0;
  bool in_order = true;
  bool stopped = false;
  SpscQueue::Item buf[kPop];
  while (!stopped) {
    const size_t n = q.PopBatch(buf, kPop);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      if (buf[i].kind == SpscQueue::Item::Kind::kStop) {
        stopped = true;
        break;
      }
      in_order &= buf[i].tuple.seq == expected_seq++;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(received, kItems);
  EXPECT_TRUE(in_order);
}

std::unique_ptr<WindowOperator> MakeKeyedSlicing() {
  return std::make_unique<KeyedWindowOperator>([] {
    GeneralSlicingOperator::Options o;
    o.stream_in_order = false;
    o.allowed_lateness = 1'000'000'000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddAggregation(MakeAggregation("max"));
    op->AddWindow(std::make_shared<SlidingWindow>(40, 15, Measure::kEventTime));
    op->AddWindow(std::make_shared<SessionWindow>(25));
    op->AddWindow(std::make_shared<TumblingWindow>(7, Measure::kCount));
    return op;
  });
}

/// A keyed OOO stream plus the watermark cadence both executions replay.
struct KeyedWorkload {
  std::vector<Tuple> tuples;  // seq pre-assigned: arrival order is identity
  Time final_wm = 0;
};

KeyedWorkload MakeWorkload() {
  testing::StreamSpec spec;
  spec.seed = 42;
  spec.num_tuples = 6000;
  spec.step_lo = 0;
  spec.step_hi = 3;
  spec.num_keys = 8;
  spec.ooo_fraction = 0.2;
  spec.max_delay = 16;
  spec.gap_probability = 0.01;
  spec.gap_length = 40;
  KeyedWorkload w;
  w.tuples = GenerateStream(spec);
  Time max_ts = 0;
  uint64_t seq = 0;
  for (Tuple& t : w.tuples) {
    t.seq = seq++;
    max_ts = std::max(max_ts, t.ts);
  }
  w.final_wm = max_ts + 1000;
  return w;
}

uint64_t SequentialResultCount(const KeyedWorkload& w, Time wm_lag) {
  auto op = MakeKeyedSlicing();
  uint64_t results = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  uint64_t n = 0;
  for (const Tuple& t : w.tuples) {
    op->ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (++n % 97 == 0 && max_ts - wm_lag > last_wm) {
      last_wm = max_ts - wm_lag;
      op->ProcessWatermark(last_wm);
      results += op->TakeResults().size();
    }
  }
  op->ProcessWatermark(w.final_wm);
  results += op->TakeResults().size();
  return results;
}

uint64_t ParallelResultCount(const KeyedWorkload& w, Time wm_lag,
                             size_t num_workers) {
  ParallelExecutor exec(num_workers, MakeKeyedSlicing);
  exec.Start();
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  uint64_t n = 0;
  for (const Tuple& t : w.tuples) {
    exec.Push(t);
    max_ts = std::max(max_ts, t.ts);
    if (++n % 97 == 0 && max_ts - wm_lag > last_wm) {
      last_wm = max_ts - wm_lag;
      exec.PushWatermark(last_wm);
    }
  }
  exec.PushWatermark(w.final_wm);
  exec.Finish();
  return exec.TotalResults();
}

/// Like ParallelResultCount, but drives ingestion through PushBatch with
/// explicit executor options (queue capacity, staging batch size). The
/// watermark cadence is identical, so results must match the sequential
/// reference regardless of batching parameters.
uint64_t ParallelBatchedResultCount(const KeyedWorkload& w, Time wm_lag,
                                    size_t num_workers,
                                    ParallelExecutor::Options opts,
                                    size_t block) {
  ParallelExecutor exec(num_workers, MakeKeyedSlicing, opts);
  exec.Start();
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  uint64_t n = 0;
  size_t i = 0;
  while (i < w.tuples.size()) {
    size_t len = std::min(block, w.tuples.size() - i);
    len = std::min<size_t>(len, 97 - n % 97);  // stop at the wm boundary
    exec.PushBatch({w.tuples.data() + i, len});
    for (size_t k = 0; k < len; ++k) {
      max_ts = std::max(max_ts, w.tuples[i + k].ts);
    }
    n += len;
    i += len;
    if (n % 97 == 0 && max_ts - wm_lag > last_wm) {
      last_wm = max_ts - wm_lag;
      exec.PushWatermark(last_wm);
    }
  }
  exec.PushWatermark(w.final_wm);
  exec.Finish();
  return exec.TotalResults();
}

/// Keys are disjoint across workers and each SPSC queue preserves the
/// source's tuple/watermark interleaving, so every per-key operator sees the
/// identical sequence in both executions: the emission counts must match.
TEST(ParallelExecutorStress, MatchesSequentialKeyedReference) {
  const KeyedWorkload w = MakeWorkload();
  const Time wm_lag = 30;
  const uint64_t sequential = SequentialResultCount(w, wm_lag);
  ASSERT_GT(sequential, 0u);
  EXPECT_EQ(ParallelResultCount(w, wm_lag, 4), sequential);
}

TEST(ParallelExecutorStress, BatchedIngestionMatchesSequentialReference) {
  const KeyedWorkload w = MakeWorkload();
  const Time wm_lag = 30;
  const uint64_t sequential = SequentialResultCount(w, wm_lag);
  ASSERT_GT(sequential, 0u);
  ParallelExecutor::Options tight;
  tight.queue_capacity = 1 << 8;  // constant backpressure + wraparound
  tight.batch_size = 32;
  EXPECT_EQ(ParallelBatchedResultCount(w, wm_lag, 3, tight, 200), sequential);
  ParallelExecutor::Options unstaged;
  unstaged.queue_capacity = 1 << 12;
  unstaged.batch_size = 1;  // staging disabled: per-item pushes
  EXPECT_EQ(ParallelBatchedResultCount(w, wm_lag, 5, unstaged, 64),
            sequential);
}

TEST(ParallelExecutorStress, DeterministicAcrossRunsAndWorkerCounts) {
  const KeyedWorkload w = MakeWorkload();
  const Time wm_lag = 30;
  const uint64_t first = ParallelResultCount(w, wm_lag, 3);
  EXPECT_EQ(ParallelResultCount(w, wm_lag, 3), first);
  EXPECT_EQ(ParallelResultCount(w, wm_lag, 7), first);
}

/// Many short executor lifecycles: races in Start/Finish/join show up under
/// TSan far more readily than in one long run.
TEST(ParallelExecutorStress, RepeatedLifecycles) {
  testing::StreamSpec spec;
  spec.seed = 7;
  spec.num_tuples = 400;
  spec.num_keys = 5;
  spec.ooo_fraction = 0.3;
  spec.max_delay = 8;
  std::vector<Tuple> tuples = GenerateStream(spec);
  uint64_t seq = 0;
  Time max_ts = 0;
  for (Tuple& t : tuples) {
    t.seq = seq++;
    max_ts = std::max(max_ts, t.ts);
  }
  uint64_t reference = 0;
  for (int round = 0; round < 20; ++round) {
    ParallelExecutor exec(2 + round % 3, MakeKeyedSlicing);
    exec.Start();
    for (const Tuple& t : tuples) exec.Push(t);
    exec.PushWatermark(max_ts + 100);
    exec.Finish();
    if (round == 0) {
      reference = exec.TotalResults();
      ASSERT_GT(reference, 0u);
    } else {
      EXPECT_EQ(exec.TotalResults(), reference);
    }
  }
}

}  // namespace
}  // namespace scotty
