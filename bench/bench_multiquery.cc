// Multi-query shared slicing vs independent pipelines (DESIGN.md §10).
//
// Setup: N concurrent tumbling/sliding dashboard queries (lengths and
// slides all multiples of a 1s base granule, as in the paper's
// live-visualization workload) over one in-order sensor stream.
//
//   shared        one QueryRegistry serves all N queries from a single
//                 slice stream: identical windows deduplicate, multiples of
//                 the base tumbling granule fold over its partials
//                 (Factor-Windows rewrite), so per-tuple cost stays near a
//                 single query's.
//   shared-no-rewrite  the cost-model ablation: rewrites disabled, every
//                 distinct window registers its own edges natively.
//   independent   N separate single-query slicing operators, each fed the
//                 whole stream — the one-pipeline-per-query deployment. Its
//                 rate is stream-tuples/s over the summed pass times: the
//                 input must be delivered N times to serve N queries.
//
// Figures (figure "multiquery", x = number of concurrent queries):
//   shared / shared-no-rewrite / independent   stream tuples/s
//   speedup-shared-vs-independent              shared over independent
//   engine-windows                             native windows the registry
//                                              kept (excluding the guard)
//
// Rates are single-core and stream-relative, so the comparison is valid on
// any host: "independent" is not parallelized here — on a k-core host it
// could run up to k passes concurrently, which divides the gap by at most
// min(k, N) without changing the per-core work ratio.
//
// Results are appended to BENCH_throughput.json (see bench_json.h).

#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/general_slicing_operator.h"
#include "query/query_def.h"
#include "query/query_registry.h"
#include "query/window_desc.h"

namespace scotty {
namespace bench {
namespace {

constexpr size_t kReplayTuples = 4'000'000;
constexpr size_t kBatch = 1024;
constexpr size_t kWmEvery = 1 << 18;  // ~262k tuples between watermarks
constexpr Time kWmDelay = 2000;

/// Dashboard query i: tumbling and sliding windows whose lengths and slides
/// are all multiples of the 1s base granule query 0 registers, so the
/// registry can plan every later query as dedup or derived.
QueryDef MakeQuery(int i) {
  QueryDef q;
  if (i == 0) {
    q.windows.push_back("tumbling:1000");
  } else if (i % 2 == 1) {
    q.windows.push_back("tumbling:" + std::to_string(1000 * (1 + i % 8)));
  } else {
    q.windows.push_back("sliding:" + std::to_string(1000 * (2 + i % 8)) +
                        ":" + std::to_string(1000 * (1 + i % 4)));
  }
  q.aggs.push_back("sum");
  return q;
}

std::vector<Tuple> MaterializeStream() {
  std::vector<Tuple> out;
  out.reserve(kReplayTuples);
  SensorStream src(SensorStream::Football());
  Tuple t;
  for (size_t i = 0; i < kReplayTuples && src.Next(&t); ++i) out.push_back(t);
  return out;
}

/// One timed replay pass: batched ingestion with periodic lagging
/// watermarks, a final watermark, and all results drained.
double MeasurePass(WindowOperator& op, const std::vector<Tuple>& stream) {
  std::vector<WindowResult> drained;
  Time max_ts = kNoTime;
  const auto start = std::chrono::steady_clock::now();
  const size_t n = stream.size();
  for (size_t i = 0; i < n;) {
    const size_t len = std::min(kBatch, n - i);
    op.ProcessTupleBatch(std::span<const Tuple>(stream.data() + i, len));
    max_ts = stream[i + len - 1].ts;  // in-order stream
    i += len;
    if (i % kWmEvery < kBatch) {
      op.ProcessWatermark(max_ts - kWmDelay);
      drained.clear();
      op.TakeResultsInto(&drained);
    }
  }
  op.ProcessWatermark(max_ts);
  drained.clear();
  op.TakeResultsInto(&drained);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::unique_ptr<QueryRegistry> MakeRegistry(int queries, bool rewrites) {
  QueryRegistry::Options opts;
  opts.engine.stream_in_order = true;
  opts.engine.allowed_lateness = 0;
  opts.enable_rewrites = rewrites;
  auto reg = std::make_unique<QueryRegistry>(opts);
  for (int i = 0; i < queries; ++i) {
    std::string err;
    if (reg->Register(MakeQuery(i), &err) == QueryRegistry::kInvalidQuery) {
      std::fprintf(stderr, "register query %d failed: %s\n", i, err.c_str());
      std::abort();
    }
  }
  return reg;
}

std::unique_ptr<GeneralSlicingOperator> MakeSolo(const QueryDef& def) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = true;
  o.allowed_lateness = 0;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  for (const std::string& a : def.aggs) op->AddAggregation(MakeAggregation(a));
  for (const std::string& s : def.windows) {
    WindowDesc d;
    if (!WindowDesc::Parse(s, &d)) std::abort();
    op->AddWindow(d.Instantiate());
  }
  return op;
}

void Run() {
  PrintHeader("multiquery",
              "shared query registry vs N independent pipelines");
  const std::vector<Tuple> stream = MaterializeStream();
  const double n_tuples = static_cast<double>(stream.size());
  for (const int queries : {1, 4, 8, 16}) {
    const std::string x = std::to_string(queries);

    auto reg = MakeRegistry(queries, /*rewrites=*/true);
    EmitRow("multiquery", "engine-windows", x,
            static_cast<double>(reg->EngineWindows()), "windows");
    const double shared_s = MeasurePass(*reg, stream);
    const double shared_rate = n_tuples / shared_s;
    EmitRow("multiquery", "shared", x, shared_rate, "tuples/s");

    auto ablated = MakeRegistry(queries, /*rewrites=*/false);
    EmitRow("multiquery", "shared-no-rewrite", x,
            n_tuples / MeasurePass(*ablated, stream), "tuples/s");

    double indep_s = 0.0;
    for (int i = 0; i < queries; ++i) {
      auto op = MakeSolo(MakeQuery(i));
      indep_s += MeasurePass(*op, stream);
    }
    const double indep_rate = n_tuples / indep_s;
    EmitRow("multiquery", "independent", x, indep_rate, "tuples/s");
    EmitRow("multiquery", "speedup-shared-vs-independent", x,
            shared_rate / indep_rate, "x");
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
