#ifndef SCOTTY_COMMON_TUPLE_BATCH_H_
#define SCOTTY_COMMON_TUPLE_BATCH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <utility>

#include "common/time.h"
#include "common/tuple.h"

namespace scotty {

/// Cache-line alignment for SoA columns. Kernels may issue aligned vector
/// loads on column heads, and the SpscQueue asserts its ring capacity is a
/// multiple of this element count so wrapped segments stay aligned too.
inline constexpr size_t kBatchAlignBytes = 64;
/// Alignment expressed in column elements (all columns are 8-byte typed).
inline constexpr size_t kBatchAlignElems = kBatchAlignBytes / sizeof(double);

/// Read-only view over columnar tuple data. The five columns are parallel
/// arrays: element i of each column holds field i of logical tuple i. Views
/// are cheap to subrange, so batch splitting (at slice edges, trigger edges,
/// key-group boundaries) never copies tuple data.
struct TupleColumnsView {
  const Time* ts = nullptr;
  const double* value = nullptr;
  const int64_t* key = nullptr;
  const uint64_t* seq = nullptr;
  /// 1 for punctuation markers, 0 for data tuples. May be null when the
  /// producer guarantees the view contains no punctuation.
  const uint8_t* punct = nullptr;
  size_t size = 0;

  bool empty() const { return size == 0; }

  bool IsPunct(size_t i) const { return punct != nullptr && punct[i] != 0; }

  /// Materialize logical tuple i. Used by the generic fallbacks (straggler
  /// tuples, aggregations without a column kernel); hot paths read the
  /// columns directly.
  Tuple Get(size_t i) const {
    assert(i < size);
    return Tuple{ts[i], value[i], key[i], seq[i], IsPunct(i)};
  }

  TupleColumnsView Subview(size_t offset, size_t count) const {
    assert(offset + count <= size);
    return TupleColumnsView{ts + offset, value + offset, key + offset,
                            seq + offset,
                            punct == nullptr ? nullptr : punct + offset, count};
  }
};

/// Owning columnar (structure-of-arrays) tuple batch. Columns live in one
/// cache-line-aligned allocation laid out [ts | value | key | seq | punct],
/// each column padded to the alignment quantum, so a batch is a single
/// allocation and sequential scans of one column never touch the others.
///
/// Compare with std::vector<Tuple>: a 1024-tuple AoS batch is 40 KiB of
/// interleaved fields; the SoA ts+value columns a slicing fold actually
/// reads are 16 KiB of dense, vectorizable data.
class TupleBatchSoA {
 public:
  TupleBatchSoA() = default;
  explicit TupleBatchSoA(size_t capacity) { Reserve(capacity); }

  TupleBatchSoA(const TupleBatchSoA& other) { *this = other; }
  TupleBatchSoA& operator=(const TupleBatchSoA& other) {
    if (this == &other) return *this;
    Clear();
    Reserve(other.size_);
    AppendView(other.View());
    return *this;
  }

  TupleBatchSoA(TupleBatchSoA&& other) noexcept { *this = std::move(other); }
  TupleBatchSoA& operator=(TupleBatchSoA&& other) noexcept {
    if (this == &other) return *this;
    Free();
    storage_ = std::exchange(other.storage_, nullptr);
    ts_ = std::exchange(other.ts_, nullptr);
    value_ = std::exchange(other.value_, nullptr);
    key_ = std::exchange(other.key_, nullptr);
    seq_ = std::exchange(other.seq_, nullptr);
    punct_ = std::exchange(other.punct_, nullptr);
    size_ = std::exchange(other.size_, 0);
    capacity_ = std::exchange(other.capacity_, 0);
    punct_count_ = std::exchange(other.punct_count_, 0);
    return *this;
  }

  ~TupleBatchSoA() { Free(); }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  /// Number of punctuation tuples currently in the batch. Lets consumers
  /// skip per-element punctuation tests entirely for the (overwhelmingly
  /// common) all-data batch.
  size_t punct_count() const { return punct_count_; }

  const Time* ts() const { return ts_; }
  const double* value() const { return value_; }
  const int64_t* key() const { return key_; }
  const uint64_t* seq() const { return seq_; }
  const uint8_t* punct() const { return punct_; }

  Time* mutable_ts() { return ts_; }
  double* mutable_value() { return value_; }
  int64_t* mutable_key() { return key_; }
  uint64_t* mutable_seq() { return seq_; }
  uint8_t* mutable_punct() { return punct_; }

  Tuple Get(size_t i) const {
    assert(i < size_);
    return Tuple{ts_[i], value_[i], key_[i], seq_[i], punct_[i] != 0};
  }

  void PushBack(const Tuple& t) {
    if (size_ == capacity_) Reserve(capacity_ == 0 ? 64 : capacity_ * 2);
    ts_[size_] = t.ts;
    value_[size_] = t.value;
    key_[size_] = t.key;
    seq_[size_] = t.seq;
    punct_[size_] = t.is_punctuation ? 1 : 0;
    punct_count_ += t.is_punctuation ? 1 : 0;
    ++size_;
  }

  void AppendTuples(std::span<const Tuple> tuples) {
    Reserve(size_ + tuples.size());
    for (const Tuple& t : tuples) PushBack(t);
  }

  /// Bulk append by per-column memcpy (the SpscQueue drain path).
  void AppendView(const TupleColumnsView& v) {
    if (v.size == 0) return;
    Reserve(size_ + v.size);
    std::memcpy(ts_ + size_, v.ts, v.size * sizeof(Time));
    std::memcpy(value_ + size_, v.value, v.size * sizeof(double));
    std::memcpy(key_ + size_, v.key, v.size * sizeof(int64_t));
    std::memcpy(seq_ + size_, v.seq, v.size * sizeof(uint64_t));
    if (v.punct != nullptr) {
      std::memcpy(punct_ + size_, v.punct, v.size * sizeof(uint8_t));
      for (size_t i = 0; i < v.size; ++i) punct_count_ += v.punct[i] ? 1 : 0;
    } else {
      std::memset(punct_ + size_, 0, v.size * sizeof(uint8_t));
    }
    size_ += v.size;
  }

  void Clear() {
    size_ = 0;
    punct_count_ = 0;
  }

  TupleColumnsView View() const {
    return TupleColumnsView{ts_, value_, key_, seq_,
                            punct_count_ == 0 ? nullptr : punct_,
                            size_};
  }

  TupleColumnsView Subview(size_t offset, size_t count) const {
    return View().Subview(offset, count);
  }

  void Reserve(size_t capacity) {
    if (capacity <= capacity_) return;
    size_t cap = (capacity + kBatchAlignElems - 1) & ~(kBatchAlignElems - 1);
    // One allocation, five aligned column segments. The punct column is
    // 1 byte/elem but still padded to the alignment quantum.
    size_t col8 = cap * sizeof(double);
    size_t col1 = (cap + kBatchAlignBytes - 1) & ~(kBatchAlignBytes - 1);
    size_t total = 4 * col8 + col1;
    auto* base = static_cast<std::byte*>(
        ::operator new(total, std::align_val_t{kBatchAlignBytes}));
    auto* nts = reinterpret_cast<Time*>(base);
    auto* nvalue = reinterpret_cast<double*>(base + col8);
    auto* nkey = reinterpret_cast<int64_t*>(base + 2 * col8);
    auto* nseq = reinterpret_cast<uint64_t*>(base + 3 * col8);
    auto* npunct = reinterpret_cast<uint8_t*>(base + 4 * col8);
    if (size_ > 0) {
      std::memcpy(nts, ts_, size_ * sizeof(Time));
      std::memcpy(nvalue, value_, size_ * sizeof(double));
      std::memcpy(nkey, key_, size_ * sizeof(int64_t));
      std::memcpy(nseq, seq_, size_ * sizeof(uint64_t));
      std::memcpy(npunct, punct_, size_ * sizeof(uint8_t));
    }
    Free();
    storage_ = base;
    ts_ = nts;
    value_ = nvalue;
    key_ = nkey;
    seq_ = nseq;
    punct_ = npunct;
    capacity_ = cap;
  }

 private:
  void Free() {
    if (storage_ != nullptr) {
      ::operator delete(storage_, std::align_val_t{kBatchAlignBytes});
      storage_ = nullptr;
    }
  }

  std::byte* storage_ = nullptr;
  Time* ts_ = nullptr;
  double* value_ = nullptr;
  int64_t* key_ = nullptr;
  uint64_t* seq_ = nullptr;
  uint8_t* punct_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
  size_t punct_count_ = 0;
};

}  // namespace scotty

#endif  // SCOTTY_COMMON_TUPLE_BATCH_H_
