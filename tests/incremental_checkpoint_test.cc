// Incremental/asynchronous checkpointing and rescalable recovery
// (DESIGN.md §7): delta-log segment format, base+delta recovery chains,
// compaction retention, degradation under persist failures, coordinator
// lifecycle/shutdown ordering, and keyed-state re-partitioning onto a
// different worker count.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "runtime/checkpoint.h"
#include "runtime/keyed_operator.h"
#include "runtime/parallel_executor.h"
#include "runtime/pipeline.h"
#include "state/delta_log.h"
#include "state/snapshot.h"
#include "testing/fault_injector.h"
#include "testing/harness.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

namespace fs = std::filesystem;

using state::CheckpointMetadata;
using state::DeltaLogContents;
using state::DeltaLogPath;
using state::DeltaLogWriter;
using state::ReadDeltaLog;
using testing::KeyedResultKey;
using testing::ResultKey;
using testing::RunToFinalResults;
using testing::T;

std::string TempDir(const std::string& leaf) {
  // Suffix with the running test's name: ctest schedules gtest cases from this
  // binary concurrently, so a shared literal leaf would race on remove_all.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string unique =
      info ? leaf + "_" + info->test_suite_name() + "_" + info->name() : leaf;
  const fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<Tuple> MakeStream(int n = 240) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  Time ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += 1 + (i % 3);
    Tuple t = T(ts, 0.5 * (i % 23) - 3.0);
    out.push_back(t);
  }
  for (size_t i = 5; i + 1 < out.size(); i += 5) {
    std::swap(out[i], out[i - 3]);
  }
  return out;
}

void AddQueries(GeneralSlicingOperator& op) {
  op.AddAggregation(MakeAggregation("sum"));
  op.AddAggregation(MakeAggregation("median"));  // holistic: retains tuples
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.AddWindow(std::make_shared<SlidingWindow>(20, 5));
  op.AddWindow(std::make_shared<SessionWindow>(7));
}

OperatorFactory SlicingFactory(StoreMode mode = StoreMode::kLazy) {
  return [mode] {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 64;
    o.store_mode = mode;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    AddQueries(*op);
    return op;
  };
}

OperatorFactory KeyedFactory() {
  return [] {
    return std::make_unique<KeyedWindowOperator>(
        [] { return SlicingFactory()(); });
  };
}

size_t FileSize(const std::string& path) {
  return static_cast<size_t>(fs::file_size(path));
}

void TruncateFile(const std::string& path, size_t to) {
  fs::resize_file(path, to);
}

void FlipBit(const std::string& path, size_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  unsigned char byte = 0;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte ^= 0x10;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Delta-log segment format.

CheckpointMetadata MetaAt(uint64_t barrier) {
  CheckpointMetadata m;
  m.barrier_index = barrier;
  m.source_offset = barrier * 10;
  m.next_seq = barrier * 10;
  m.max_ts = static_cast<Time>(barrier * 100);
  m.last_wm = static_cast<Time>(barrier * 100 - 5);
  return m;
}

std::vector<uint8_t> Payload(uint8_t fill, size_t n = 64) {
  return std::vector<uint8_t>(n, fill);
}

TEST(DeltaLog, RoundTripsEpochChain) {
  const std::string dir = TempDir("dlog_roundtrip");
  const std::string path = DeltaLogPath(dir + "/ckpt", 7);
  DeltaLogWriter w;
  ASSERT_TRUE(w.Open(path, 7));
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(w.Append(MetaAt(8 + i), "op", Payload(uint8_t(i + 1))));
  }
  ASSERT_TRUE(w.Sync());
  w.Close();

  DeltaLogContents c;
  ASSERT_TRUE(ReadDeltaLog(path, &c));
  EXPECT_EQ(c.base_index, 7u);
  EXPECT_FALSE(c.torn);
  ASSERT_EQ(c.records.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.records[i].meta.barrier_index, 8 + i);
    EXPECT_EQ(c.records[i].operator_name, "op");
    EXPECT_EQ(c.records[i].state, Payload(uint8_t(i + 1)));
  }
}

TEST(DeltaLog, TornTailKeepsValidPrefix) {
  const std::string dir = TempDir("dlog_torn");
  const std::string path = DeltaLogPath(dir + "/ckpt", 0);
  DeltaLogWriter w;
  ASSERT_TRUE(w.Open(path, 0));
  ASSERT_TRUE(w.Append(MetaAt(1), "op", Payload(1)));
  ASSERT_TRUE(w.Append(MetaAt(2), "op", Payload(2)));
  ASSERT_TRUE(w.Sync());
  w.Close();

  TruncateFile(path, FileSize(path) - 13);  // tear into the last record
  DeltaLogContents c;
  ASSERT_TRUE(ReadDeltaLog(path, &c));
  EXPECT_TRUE(c.torn);
  ASSERT_EQ(c.records.size(), 1u);
  EXPECT_EQ(c.records[0].meta.barrier_index, 1u);
}

TEST(DeltaLog, BitFlipInTailRejectsFromThatRecord) {
  const std::string dir = TempDir("dlog_flip");
  const std::string path = DeltaLogPath(dir + "/ckpt", 0);
  DeltaLogWriter w;
  ASSERT_TRUE(w.Open(path, 0));
  ASSERT_TRUE(w.Append(MetaAt(1), "op", Payload(1)));
  const size_t first_record_end = FileSize(path);
  ASSERT_TRUE(w.Append(MetaAt(2), "op", Payload(2)));
  ASSERT_TRUE(w.Sync());
  w.Close();

  FlipBit(path, first_record_end + 30);  // inside the second container
  DeltaLogContents c;
  ASSERT_TRUE(ReadDeltaLog(path, &c));
  EXPECT_TRUE(c.torn);
  ASSERT_EQ(c.records.size(), 1u);
}

TEST(DeltaLog, HeaderDamageRejectsWholeSegment) {
  const std::string dir = TempDir("dlog_header");
  const std::string path = DeltaLogPath(dir + "/ckpt", 3);
  DeltaLogWriter w;
  ASSERT_TRUE(w.Open(path, 3));
  ASSERT_TRUE(w.Append(MetaAt(4), "op", Payload(1)));
  ASSERT_TRUE(w.Sync());
  w.Close();

  FlipBit(path, 14);  // inside the checksummed header fields
  DeltaLogContents c;
  EXPECT_FALSE(ReadDeltaLog(path, &c));
}

TEST(DeltaLog, OutOfEpochRecordStopsTheChain) {
  const std::string dir = TempDir("dlog_epoch");
  const std::string path = DeltaLogPath(dir + "/ckpt", 0);
  DeltaLogWriter w;
  ASSERT_TRUE(w.Open(path, 0));
  ASSERT_TRUE(w.Append(MetaAt(1), "op", Payload(1)));
  // Epoch gap: barrier 2 is missing, 3 must not be applied.
  ASSERT_TRUE(w.Append(MetaAt(3), "op", Payload(3)));
  ASSERT_TRUE(w.Sync());
  w.Close();

  DeltaLogContents c;
  ASSERT_TRUE(ReadDeltaLog(path, &c));
  EXPECT_TRUE(c.torn);
  ASSERT_EQ(c.records.size(), 1u);
  EXPECT_EQ(c.records[0].meta.barrier_index, 1u);
}

TEST(DeltaLog, MissingFileIsAnError) {
  DeltaLogContents c;
  EXPECT_FALSE(ReadDeltaLog("/nonexistent/nothing-0.dlog", &c));
}

// ---------------------------------------------------------------------------
// Incremental chain through the coordinator: run N tuples checkpointing
// deltas, recover base + deltas, replay, compare against the uninterrupted
// run. Exercised per store mode and for the keyed operator.

void ExpectIncrementalChainMatches(const OperatorFactory& factory,
                                   const std::string& leaf, bool async) {
  const std::vector<Tuple> stream = MakeStream();
  Time max_ts = kNoTime;
  for (const Tuple& t : stream) max_ts = std::max(max_ts, t.ts);
  const Time final_wm = max_ts + 100;
  const int wm_every = 16;
  const Time wm_lag = 16;

  std::unique_ptr<WindowOperator> plain = factory();
  const auto expected =
      RunToFinalResults(*plain, stream, final_wm, wm_every, wm_lag);

  for (size_t crash_at : {size_t{40}, stream.size() / 2, stream.size() - 3}) {
    testing::FaultPlan plan;
    plan.crash_index = crash_at;
    plan.mode = async ? testing::PersistMode::kAsyncIncremental
                      : testing::PersistMode::kSyncIncremental;
    std::map<ResultKey, Value> got;
    std::string err;
    testing::CrashRunStats stats;
    ASSERT_TRUE(testing::RunToFinalResultsCrashRecovered(
        factory, stream, final_wm, wm_every, wm_lag, plan, TempDir(leaf),
        &got, &err, &stats))
        << err;
    EXPECT_EQ(got, expected) << leaf << " crash at " << crash_at;
    if (!async && crash_at > 120) {
      // Enough barriers passed that recovery must have replayed deltas on a
      // base (full_snapshot_every = 4 in the sync-incremental harness mode,
      // unless the crash landed exactly on a compaction barrier).
      EXPECT_GT(stats.barriers, 4u);
    }
  }
}

TEST(IncrementalChain, SlicingLazySyncMatches) {
  ExpectIncrementalChainMatches(SlicingFactory(StoreMode::kLazy),
                                "inc_lazy_sync", /*async=*/false);
}

TEST(IncrementalChain, SlicingEagerSyncMatches) {
  ExpectIncrementalChainMatches(SlicingFactory(StoreMode::kEager),
                                "inc_eager_sync", /*async=*/false);
}

TEST(IncrementalChain, SlicingLazyAsyncMatches) {
  ExpectIncrementalChainMatches(SlicingFactory(StoreMode::kLazy),
                                "inc_lazy_async", /*async=*/true);
}

TEST(IncrementalChain, KeyedOperatorCoordinatorChainMatches) {
  // Keyed operator through OnBarrier in sync-incremental mode: its deltas
  // carry only the dirty key subset, recovery replays base + deltas and
  // FinishDeltaRestore re-broadcasts the watermark to catch clean keys up.
  std::vector<Tuple> stream = MakeStream();
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].key = static_cast<int64_t>(i % 5);
  }
  Time max_ts = kNoTime;
  for (const Tuple& t : stream) max_ts = std::max(max_ts, t.ts);
  const Time final_wm = max_ts + 100;
  const int wm_every = 16;
  const Time wm_lag = 16;

  std::map<KeyedResultKey, Value> expected;
  std::string err;
  ASSERT_TRUE(testing::RunKeyedToFinalResults(KeyedFactory(), stream, final_wm,
                                              wm_every, wm_lag, &expected,
                                              &err))
      << err;
  EXPECT_FALSE(expected.empty());

  for (size_t crash_at : {size_t{60}, stream.size() - 5}) {
    const std::string dir = TempDir("inc_keyed_chain");
    std::map<KeyedResultKey, Value> delivered;
    auto drain = [](WindowOperator& op, std::map<KeyedResultKey, Value>* m) {
      for (const WindowResult& r : op.TakeResults()) {
        (*m)[{r.key, r.window_id, r.agg_id, r.start, r.end}] = r.value;
      }
    };
    uint64_t seq = 0;
    Time seen = kNoTime;
    Time last_wm = kNoTime;
    {
      CheckpointOptions copts;
      copts.directory = dir;
      copts.prefix = "ckpt";
      copts.incremental = true;
      copts.full_snapshot_every = 4;
      CheckpointCoordinator coord(copts);
      auto op = KeyedFactory()();
      for (size_t i = 0; i < crash_at; ++i) {
        Tuple t = stream[i];
        t.seq = seq++;
        op->ProcessTuple(t);
        seen = std::max(seen, t.ts);
        if (seq % wm_every == 0) {
          const Time wm = seen - wm_lag;
          if (wm > last_wm || last_wm == kNoTime) {
            op->ProcessWatermark(wm);
            last_wm = wm;
            drain(*op, &delivered);
            CheckpointMetadata meta;
            meta.source_offset = i + 1;
            meta.next_seq = seq;
            meta.max_ts = seen;
            meta.last_wm = last_wm;
            ASSERT_FALSE(coord.OnBarrier(*op, meta).empty());
          }
        }
      }
      EXPECT_GT(coord.deltas_persisted(), 0u) << "crash at " << crash_at;
    }  // crash: operator and coordinator destroyed

    RecoveredOperator rec = RecoverNewestValid(dir, "ckpt", KeyedFactory());
    ASSERT_TRUE(rec.restored.ok) << rec.restored.error;
    std::map<KeyedResultKey, Value> replayed;
    std::unique_ptr<WindowOperator> op = std::move(rec.restored.op);
    drain(*op, &replayed);  // FinishDeltaRestore may have re-emitted results
    size_t resume_at = static_cast<size_t>(rec.restored.meta.source_offset);
    seq = rec.restored.meta.next_seq;
    seen = rec.restored.meta.max_ts;
    last_wm = rec.restored.meta.last_wm;
    for (size_t i = resume_at; i < stream.size(); ++i) {
      Tuple t = stream[i];
      t.seq = seq++;
      op->ProcessTuple(t);
      seen = std::max(seen, t.ts);
      if (seq % wm_every == 0) {
        const Time wm = seen - wm_lag;
        if (wm > last_wm || last_wm == kNoTime) {
          op->ProcessWatermark(wm);
          last_wm = wm;
          drain(*op, &replayed);
        }
      }
    }
    op->ProcessWatermark(final_wm);
    drain(*op, &replayed);

    std::map<KeyedResultKey, Value> merged = delivered;
    for (const auto& [key, value] : replayed) merged[key] = value;
    EXPECT_EQ(merged, expected) << "keyed crash at " << crash_at;
  }
}

TEST(IncrementalChain, KeyedDeltaRoundTripsDirectly) {
  // Unit-level: serialize a delta after touching a subset of keys, apply it
  // on a restored twin of the previous barrier, expect identical state.
  auto op = std::make_unique<KeyedWindowOperator>(
      [] { return SlicingFactory()(); });
  for (int i = 0; i < 60; ++i) {
    op->ProcessTuple(T(i * 2, i, static_cast<uint64_t>(i), i % 4));
  }
  op->ProcessWatermark(40);
  op->TakeResults();

  state::Writer base;
  op->SerializeState(base);
  op->MarkSnapshotClean();

  // Only keys 0 and 2 become dirty after the barrier.
  for (int i = 0; i < 10; ++i) {
    op->ProcessTuple(T(120 + i, i, static_cast<uint64_t>(100 + i),
                       (i % 2) * 2));
  }
  state::Writer delta;
  op->SerializeDelta(delta);

  auto twin = std::make_unique<KeyedWindowOperator>(
      [] { return SlicingFactory()(); });
  state::Reader rb(base.bytes());
  twin->DeserializeState(rb);
  ASSERT_TRUE(rb.ok() && rb.AtEnd());
  state::Reader rd(delta.bytes());
  twin->ApplyDelta(rd);
  ASSERT_TRUE(rd.ok() && rd.AtEnd());

  state::Writer a, b;
  op->SerializeState(a);
  twin->SerializeState(b);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(IncrementalChain, DeltaReferencingUnknownKeyFailsApply) {
  // A clean-key reference that the base does not contain means a barrier is
  // missing in between: ApplyDelta must reject, not fabricate state.
  auto op = std::make_unique<KeyedWindowOperator>(
      [] { return SlicingFactory()(); });
  for (int i = 0; i < 40; ++i) {
    op->ProcessTuple(T(i * 2, i, static_cast<uint64_t>(i), i % 4));
  }
  op->MarkSnapshotClean();
  state::Writer delta;
  op->SerializeDelta(delta);  // all 4 keys clean → 4 clean references

  auto empty = std::make_unique<KeyedWindowOperator>(
      [] { return SlicingFactory()(); });
  state::Reader r(delta.bytes());
  empty->ApplyDelta(r);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Compaction retention: pruning removes (base, segment) pairs and never
// strands a delta whose base is gone.

TEST(Retention, PrunesBaseAndSegmentPairsTogether) {
  const std::string dir = TempDir("retention_pairs");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "ckpt";
  copts.retain = 2;
  copts.incremental = true;
  copts.full_snapshot_every = 3;
  CheckpointCoordinator coord(copts);

  auto op = SlicingFactory()();
  Time wm = 0;
  for (int barrier = 0; barrier < 14; ++barrier) {
    for (int i = 0; i < 8; ++i) {
      op->ProcessTuple(T(wm + 1 + i, i, static_cast<uint64_t>(barrier * 8 + i)));
    }
    wm += 10;
    op->ProcessWatermark(wm);
    op->TakeResults();
    ASSERT_FALSE(coord.OnBarrier(*op, MetaAt(0)).empty());
  }

  std::vector<std::string> snaps = ListSnapshots(dir, "ckpt");
  EXPECT_EQ(snaps.size(), 2u);
  // Every .dlog on disk must belong to a surviving base — a stranded
  // segment would mean retention deleted a base out from under its deltas.
  size_t dlogs = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    if (name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".dlog") == 0) {
      ++dlogs;
      const std::string snap =
          entry.path().string().substr(0, entry.path().string().size() - 5) +
          ".snap";
      EXPECT_TRUE(fs::exists(snap)) << "orphaned segment " << name;
    }
  }
  EXPECT_GT(dlogs, 0u);

  // The retained chain still recovers.
  RecoveredOperator rec = RecoverNewestValid(dir, "ckpt", SlicingFactory());
  ASSERT_TRUE(rec.restored.ok) << rec.restored.error;
  EXPECT_FALSE(rec.fell_back);
}

// ---------------------------------------------------------------------------
// Recovery edge cases on the base+delta chain.

struct ChainOnDisk {
  std::string dir;
  std::vector<std::string> snaps;  // newest first
  uint64_t barriers = 0;
};

/// Runs a sync-incremental coordinator long enough to leave >= 2 bases with
/// deltas on disk.
ChainOnDisk BuildChain(const std::string& leaf) {
  ChainOnDisk chain;
  chain.dir = TempDir(leaf);
  CheckpointOptions copts;
  copts.directory = chain.dir;
  copts.prefix = "ckpt";
  copts.retain = 0;  // keep everything
  copts.incremental = true;
  copts.full_snapshot_every = 3;
  CheckpointCoordinator coord(copts);
  auto op = SlicingFactory()();
  Time wm = 0;
  // 9 barriers at full_snapshot_every = 3: bases at 0/3/6, so the newest
  // base carries two deltas (7 and 8).
  for (int barrier = 0; barrier < 9; ++barrier) {
    for (int i = 0; i < 8; ++i) {
      op->ProcessTuple(T(wm + 1 + i, i, static_cast<uint64_t>(barrier * 8 + i)));
    }
    wm += 10;
    op->ProcessWatermark(wm);
    op->TakeResults();
    CheckpointMetadata meta;
    meta.source_offset = static_cast<uint64_t>(barrier + 1) * 8;
    EXPECT_FALSE(coord.OnBarrier(*op, meta).empty());
  }
  chain.barriers = coord.checkpoints_taken();
  chain.snaps = ListSnapshots(chain.dir, "ckpt");
  return chain;
}

TEST(ChainRecovery, BaseMissingFallsBackPastOrphanedSegment) {
  ChainOnDisk chain = BuildChain("chain_base_missing");
  ASSERT_GE(chain.snaps.size(), 2u);
  fs::remove(chain.snaps.front());  // newest base gone, its segment orphaned

  RecoveredOperator rec =
      RecoverNewestValid(chain.dir, "ckpt", SlicingFactory());
  ASSERT_TRUE(rec.restored.ok) << rec.restored.error;
  EXPECT_EQ(rec.path_used, chain.snaps[1]);
}

// Guard against silent base-only recovery: RestoreOperatorWithDeltas falls
// back to replaying from the base when a delta fails to apply, which keeps
// equality harnesses green even if delta application is broken. An
// undamaged chain must therefore report every record actually applied.
TEST(ChainRecovery, UndamagedChainAppliesEveryDelta) {
  ChainOnDisk chain = BuildChain("chain_clean");
  ASSERT_GE(chain.snaps.size(), 2u);

  size_t applied = 0;
  bool tail_rejected = false;
  RestoredOperator r = RestoreOperatorWithDeltas(
      chain.snaps.front(), SlicingFactory(), SIZE_MAX, &applied,
      &tail_rejected);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(applied, 2u);  // bases at 0/3/6, deltas 7 and 8 on the newest
  EXPECT_FALSE(tail_rejected);
  EXPECT_EQ(r.meta.barrier_index, 8u);
}

TEST(ChainRecovery, DeltaGapAppliesOnlyThePrefix) {
  ChainOnDisk chain = BuildChain("chain_gap");
  ASSERT_GE(chain.snaps.size(), 2u);
  const std::string newest = chain.snaps.front();
  const std::string dlog = newest.substr(0, newest.size() - 5) + ".dlog";
  ASSERT_TRUE(fs::exists(dlog));

  // Rewrite the segment with an epoch gap: keep record 1, skip 2, append 3.
  DeltaLogContents c;
  ASSERT_TRUE(ReadDeltaLog(dlog, &c));
  ASSERT_GE(c.records.size(), 2u);
  DeltaLogWriter w;
  ASSERT_TRUE(w.Open(dlog, c.base_index));
  ASSERT_TRUE(w.Append(c.records[0].meta, c.records[0].operator_name,
                       c.records[0].state));
  CheckpointMetadata future = c.records[1].meta;
  future.barrier_index += 1;  // creates a gap
  ASSERT_TRUE(w.Append(future, c.records[1].operator_name,
                       c.records[1].state));
  ASSERT_TRUE(w.Sync());
  w.Close();

  size_t applied = 0;
  bool tail_rejected = false;
  RestoredOperator r = RestoreOperatorWithDeltas(
      newest, SlicingFactory(), SIZE_MAX, &applied, &tail_rejected);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(applied, 1u);
  EXPECT_TRUE(tail_rejected);
  EXPECT_EQ(r.meta.barrier_index, c.records[0].meta.barrier_index);
}

TEST(ChainRecovery, SegmentFromForeignEpochIsRejectedWhole) {
  ChainOnDisk chain = BuildChain("chain_foreign");
  ASSERT_GE(chain.snaps.size(), 2u);
  const std::string newest = chain.snaps.front();
  const std::string older = chain.snaps[1];
  const std::string newest_dlog =
      newest.substr(0, newest.size() - 5) + ".dlog";
  const std::string older_dlog = older.substr(0, older.size() - 5) + ".dlog";
  ASSERT_TRUE(fs::exists(older_dlog));
  // A segment whose header names another base (e.g. after a botched manual
  // copy) must be rejected wholesale, not replayed out of epoch.
  fs::copy_file(older_dlog, newest_dlog,
                fs::copy_options::overwrite_existing);

  size_t applied = 0;
  bool tail_rejected = false;
  RestoredOperator r = RestoreOperatorWithDeltas(
      newest, SlicingFactory(), SIZE_MAX, &applied, &tail_rejected);
  ASSERT_TRUE(r.ok) << r.error;  // the base itself is fine
  EXPECT_EQ(applied, 0u);
  EXPECT_TRUE(tail_rejected);
}

TEST(ChainRecovery, MissingSegmentIsBaseOnlyNotAnError) {
  ChainOnDisk chain = BuildChain("chain_no_dlog");
  // Find a base with a segment and delete the segment.
  std::string with_dlog;
  for (const std::string& s : chain.snaps) {
    const std::string d = s.substr(0, s.size() - 5) + ".dlog";
    if (fs::exists(d)) {
      with_dlog = s;
      fs::remove(d);
      break;
    }
  }
  ASSERT_FALSE(with_dlog.empty());

  size_t applied = 0;
  bool tail_rejected = false;
  RestoredOperator r = RestoreOperatorWithDeltas(
      with_dlog, SlicingFactory(), SIZE_MAX, &applied, &tail_rejected);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(applied, 0u);
  EXPECT_FALSE(tail_rejected);  // absence is legal (barriers may align)
}

// ---------------------------------------------------------------------------
// Degradation: persist failures must never stall or corrupt the pipeline.

TEST(Degradation, PermanentFailureTurnsFailedAndPipelineCompletes) {
  const std::string dir = TempDir("degrade_permanent");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "ckpt";
  copts.async = true;
  copts.incremental = true;
  copts.full_snapshot_every = 4;
  copts.max_retries = 1;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 3;
  CheckpointCoordinator coord(copts);
  std::atomic<uint64_t> attempts{0};
  coord.SetPersistFailureHook([&](uint64_t, bool) {
    ++attempts;
    return true;  // every attempt fails
  });

  const std::vector<Tuple> stream = MakeStream();
  auto op = SlicingFactory()();
  auto plain = SlicingFactory()();
  Time max_ts = kNoTime;
  for (const Tuple& t : stream) max_ts = std::max(max_ts, t.ts);
  const auto expected =
      RunToFinalResults(*plain, stream, max_ts + 100, 16, 16);

  std::map<ResultKey, Value> got;
  uint64_t seq = 0;
  Time seen = kNoTime;
  Time last_wm = kNoTime;
  for (Tuple t : stream) {
    t.seq = seq++;
    op->ProcessTuple(t);
    seen = std::max(seen, t.ts);
    if (seq % 16 == 0) {
      const Time wm = seen - 16;
      if (wm > last_wm || last_wm == kNoTime) {
        op->ProcessWatermark(wm);
        last_wm = wm;
        for (const WindowResult& r : op->TakeResults()) {
          got[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
        }
        coord.OnBarrier(*op, MetaAt(0));
        // Settle the persist thread so the failure feedback (need-new-base,
        // health) is visible to the next barrier — without this the loop
        // outruns the persist thread and most barriers are queue-side
        // drops, which are not persist *failures*.
        coord.Flush();
      }
    }
  }
  op->ProcessWatermark(max_ts + 100);
  for (const WindowResult& r : op->TakeResults()) {
    got[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
  }
  coord.Flush();

  EXPECT_EQ(coord.health(), CheckpointHealth::kFailed);
  EXPECT_GE(coord.persist_failures(), 3u);
  EXPECT_GT(attempts.load(), 0u);
  EXPECT_EQ(coord.bases_persisted(), 0u);
  EXPECT_EQ(got, expected);  // the stream itself is unaffected
  EXPECT_TRUE(ListSnapshots(dir, "ckpt").empty());
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(Degradation, TransientFailureDegradesThenRecovers) {
  const std::string dir = TempDir("degrade_transient");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "ckpt";
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 10;
  CheckpointCoordinator coord(copts);
  std::atomic<int> failures_left{2};
  coord.SetPersistFailureHook([&](uint64_t, bool) {
    return failures_left.fetch_sub(1) > 0;
  });

  auto op = SlicingFactory()();
  for (int i = 0; i < 30; ++i) op->ProcessTuple(T(i * 3, i));
  op->ProcessWatermark(50);
  op->TakeResults();

  EXPECT_TRUE(coord.OnBarrier(*op, MetaAt(0)).empty());
  EXPECT_EQ(coord.health(), CheckpointHealth::kDegraded);
  EXPECT_TRUE(coord.OnBarrier(*op, MetaAt(0)).empty());
  EXPECT_EQ(coord.health(), CheckpointHealth::kDegraded);
  // Third barrier persists: health recovers, the file is valid.
  EXPECT_FALSE(coord.OnBarrier(*op, MetaAt(0)).empty());
  EXPECT_EQ(coord.health(), CheckpointHealth::kHealthy);
  RecoveredOperator rec = RecoverNewestValid(dir, "ckpt", SlicingFactory());
  EXPECT_TRUE(rec.restored.ok) << rec.restored.error;
}

TEST(Degradation, FailedDeltaForcesFullBaseNextBarrier) {
  const std::string dir = TempDir("degrade_delta_fail");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "ckpt";
  copts.incremental = true;
  copts.full_snapshot_every = 100;  // deltas forever, absent failures
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  CheckpointCoordinator coord(copts);
  std::atomic<bool> fail_deltas{false};
  coord.SetPersistFailureHook(
      [&](uint64_t, bool is_base) { return !is_base && fail_deltas.load(); });

  auto op = SlicingFactory()();
  Time wm = 0;
  auto barrier = [&] {
    for (int i = 0; i < 8; ++i) op->ProcessTuple(T(wm + 1 + i, i));
    wm += 10;
    op->ProcessWatermark(wm);
    op->TakeResults();
    return coord.OnBarrier(*op, MetaAt(0));
  };

  EXPECT_FALSE(barrier().empty());  // base
  EXPECT_FALSE(barrier().empty());  // delta
  EXPECT_EQ(coord.deltas_persisted(), 1u);

  fail_deltas = true;
  EXPECT_TRUE(barrier().empty());  // delta fails
  fail_deltas = false;
  EXPECT_FALSE(barrier().empty());  // must be a fresh base, not a delta
  EXPECT_EQ(coord.bases_persisted(), 2u);

  // The recovered chain reflects the post-failure base, not a delta chain
  // with a hole in it.
  RecoveredOperator rec = RecoverNewestValid(dir, "ckpt", SlicingFactory());
  ASSERT_TRUE(rec.restored.ok) << rec.restored.error;
  EXPECT_FALSE(rec.delta_tail_rejected);
}

// ---------------------------------------------------------------------------
// Coordinator lifecycle: shutdown ordering with in-flight async persists.

TEST(Lifecycle, DestructorCompletesQueuedPersists) {
  const std::string dir = TempDir("lifecycle_dtor");
  auto op = SlicingFactory()();
  for (int i = 0; i < 40; ++i) op->ProcessTuple(T(i * 2, i));
  op->ProcessWatermark(60);
  op->TakeResults();
  uint64_t scheduled = 0;
  {
    CheckpointOptions copts;
    copts.directory = dir;
    copts.prefix = "ckpt";
    copts.async = true;
    copts.async_queue_depth = 16;
    CheckpointCoordinator coord(copts);
    for (int i = 0; i < 6; ++i) {
      if (!coord.OnBarrier(*op, MetaAt(0)).empty()) ++scheduled;
    }
    // No Flush: the destructor must complete the queue before joining.
  }
  EXPECT_GT(scheduled, 0u);
  const std::vector<std::string> snaps = ListSnapshots(dir, "ckpt");
  EXPECT_EQ(snaps.size(), std::min<size_t>(scheduled, 3));  // retain = 3
  for (const std::string& s : snaps) {
    RestoredOperator r = RestoreOperator(s, SlicingFactory());
    EXPECT_TRUE(r.ok) << s << ": " << r.error;
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"),
              std::string::npos);
  }
}

TEST(Lifecycle, AbandonDropsQueueWithoutTornFiles) {
  const std::string dir = TempDir("lifecycle_abandon");
  auto op = SlicingFactory()();
  for (int i = 0; i < 40; ++i) op->ProcessTuple(T(i * 2, i));
  op->ProcessWatermark(60);
  op->TakeResults();
  {
    CheckpointOptions copts;
    copts.directory = dir;
    copts.prefix = "ckpt";
    copts.async = true;
    copts.async_queue_depth = 16;
    copts.incremental = true;
    copts.full_snapshot_every = 4;
    CheckpointCoordinator coord(copts);
    for (int i = 0; i < 8; ++i) coord.OnBarrier(*op, MetaAt(0));
    coord.Abandon();
    // New barriers after Abandon are rejected, not queued.
    EXPECT_TRUE(coord.OnBarrier(*op, MetaAt(0)).empty());
  }
  // Whatever did persist is complete and valid; nothing is torn.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
  for (const std::string& s : ListSnapshots(dir, "ckpt")) {
    RestoredOperator r = RestoreOperatorWithDeltas(s, SlicingFactory());
    EXPECT_TRUE(r.ok) << s << ": " << r.error;
  }
}

TEST(Lifecycle, FlushIsIdempotentAndSyncModeNoop) {
  const std::string dir = TempDir("lifecycle_flush");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "ckpt";
  CheckpointCoordinator coord(copts);
  coord.Flush();
  coord.Flush();
  auto op = SlicingFactory()();
  for (int i = 0; i < 20; ++i) op->ProcessTuple(T(i * 2, i));
  op->ProcessWatermark(30);
  op->TakeResults();
  EXPECT_FALSE(coord.OnBarrier(*op, MetaAt(0)).empty());
  coord.Flush();
  EXPECT_EQ(coord.checkpoints_taken(), 1u);
}

// ---------------------------------------------------------------------------
// Parallel pipeline + coordinator shutdown ordering, and rescaled restore.

class CountingSource : public TupleSource {
 public:
  explicit CountingSource(uint64_t n) : n_(n) {}
  bool Next(Tuple* out) override {
    if (i_ >= n_) return false;
    *out = T(static_cast<Time>(i_ * 2), static_cast<double>(i_ % 17), i_,
             static_cast<int64_t>(i_ % 6));
    ++i_;
    return true;
  }

 private:
  uint64_t n_;
  uint64_t i_ = 0;
};

OperatorFactory ParallelKeyedFactory() {
  return [] {
    return std::make_unique<KeyedWindowOperator>([] {
      GeneralSlicingOperator::Options o;
      o.allowed_lateness = 2000;
      auto op = std::make_unique<GeneralSlicingOperator>(o);
      op->AddAggregation(MakeAggregation("sum"));
      op->AddWindow(std::make_shared<TumblingWindow>(64));
      return op;
    });
  };
}

TEST(ParallelCheckpoint, RunPipelineParallelPersistsAndShutsDownCleanly) {
  const std::string dir = TempDir("parallel_coord");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "par";
  copts.async = true;
  CheckpointCoordinator coord(copts);

  CountingSource src(4000);
  ParallelExecutor exec(3, ParallelKeyedFactory());
  PipelineOptions popts;
  popts.watermark_every = 512;
  popts.watermark_delay = 10;
  const ParallelPipelineReport rep =
      RunPipelineParallel(src, exec, 4000, popts, nullptr, &coord);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.checkpoints, 0u);
  // RunPipelineParallel flushed the coordinator after joining the workers:
  // every scheduled barrier is settled by the time it returned.
  const std::vector<std::string> snaps = ListSnapshots(dir, "par");
  ASSERT_FALSE(snaps.empty());

  // Same worker count restores directly.
  std::vector<uint8_t> blob;
  CheckpointMetadata meta;
  std::string name;
  std::vector<uint8_t> state;
  ASSERT_TRUE(state::ReadSnapshotFile(snaps.front(), &blob));
  ASSERT_TRUE(state::ParseSnapshot(blob, &meta, &name, &state));
  EXPECT_EQ(name, "parallel");
  {
    ParallelExecutor same(3, ParallelKeyedFactory());
    std::string err;
    EXPECT_TRUE(same.RestoreOperators(state, &err)) << err;
  }
  // Different worker count re-partitions keyed state (rescaled restore).
  {
    ParallelExecutor wider(5, ParallelKeyedFactory());
    std::string err;
    EXPECT_TRUE(wider.RestoreOperators(state, &err)) << err;
  }
}

TEST(ParallelCheckpoint, RepartitionPreservesKeysAndOwnership) {
  // Build three keyed worker states with disjoint keys, re-partition onto
  // two workers, and verify every key landed where WorkerIndexForKey says.
  std::vector<std::vector<uint8_t>> states;
  for (int w = 0; w < 3; ++w) {
    KeyedWindowOperator op([] { return SlicingFactory()(); });
    for (int i = 0; i < 30; ++i) {
      op.ProcessTuple(T(i * 3, i, static_cast<uint64_t>(i), w * 10 + i % 3));
    }
    op.ProcessWatermark(40 + w);
    state::Writer sw;
    op.SerializeState(sw);
    states.push_back(sw.Take());
  }

  std::vector<std::vector<uint8_t>> out;
  std::string err;
  ASSERT_TRUE(RepartitionKeyedStates(states, 2, &out, &err)) << err;
  ASSERT_EQ(out.size(), 2u);

  std::map<int64_t, std::vector<uint8_t>> before;
  for (const auto& s : states) {
    KeyedWindowOperator::KeyedStateParts parts;
    ASSERT_TRUE(KeyedWindowOperator::ParseKeyedState(s, &parts));
    for (auto& [key, bytes] : parts.keys) before[key] = bytes;
  }
  std::map<int64_t, std::vector<uint8_t>> after;
  Time merged_wm = kNoTime;
  for (size_t w = 0; w < out.size(); ++w) {
    KeyedWindowOperator::KeyedStateParts parts;
    ASSERT_TRUE(KeyedWindowOperator::ParseKeyedState(out[w], &parts));
    merged_wm = std::max(merged_wm, parts.last_wm);
    for (auto& [key, bytes] : parts.keys) {
      EXPECT_EQ(ParallelExecutor::WorkerIndexForKey(key, 2), w)
          << "key " << key << " restored onto the wrong worker";
      after[key] = bytes;
    }
  }
  EXPECT_EQ(before, after);  // per-key bytes move verbatim
  EXPECT_EQ(merged_wm, 42);  // max of the three worker watermarks
}

TEST(ParallelCheckpoint, NonKeyedStatesStillRejectWorkerCountMismatch) {
  std::vector<std::vector<uint8_t>> states;
  for (int w = 0; w < 3; ++w) {
    auto op = SlicingFactory()();
    for (int i = 0; i < 20; ++i) op->ProcessTuple(T(i * 2, i));
    state::Writer sw;
    op->SerializeState(sw);
    states.push_back(sw.Take());
  }
  std::vector<std::vector<uint8_t>> out;
  std::string err;
  EXPECT_FALSE(RepartitionKeyedStates(states, 2, &out, &err));
  EXPECT_NE(err.find("keyed"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Rescaled crash recovery end-to-end (the fuzz dimension, deterministic).

TEST(Rescale, KeyedCrashRecoveryOntoDifferentWorkerCounts) {
  std::vector<Tuple> stream = MakeStream();
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].key = static_cast<int64_t>((i * 7) % 9);
  }
  Time max_ts = kNoTime;
  for (const Tuple& t : stream) max_ts = std::max(max_ts, t.ts);
  const Time final_wm = max_ts + 100;

  std::map<KeyedResultKey, Value> expected;
  std::string err;
  ASSERT_TRUE(testing::RunKeyedToFinalResults(
      KeyedFactory(), stream, final_wm, 16, 16, &expected, &err))
      << err;
  EXPECT_FALSE(expected.empty());

  const struct {
    size_t from, to;
    testing::PersistMode mode;
  } cases[] = {
      {1, 3, testing::PersistMode::kSyncFull},
      {3, 1, testing::PersistMode::kSyncFull},
      {2, 4, testing::PersistMode::kSyncIncremental},
      {4, 2, testing::PersistMode::kAsyncIncremental},
  };
  for (const auto& c : cases) {
    testing::FaultPlan plan;
    plan.crash_index = stream.size() / 2;
    plan.mode = c.mode;
    std::map<KeyedResultKey, Value> got;
    testing::CrashRunStats stats;
    ASSERT_TRUE(testing::RunKeyedRescaleCrashRecovered(
        KeyedFactory(), stream, final_wm, 16, 16, plan, TempDir("rescale_e2e"),
        c.from, c.to, &got, &err, &stats))
        << c.from << "->" << c.to << ": " << err;
    EXPECT_EQ(got, expected) << c.from << "->" << c.to;
    if (c.mode != testing::PersistMode::kAsyncIncremental) {
      EXPECT_FALSE(stats.recovered_from_scratch) << c.from << "->" << c.to;
    }
  }
}

TEST(Rescale, DamagedNewestBlobFallsBackAcrossTopologyChange) {
  std::vector<Tuple> stream = MakeStream();
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].key = static_cast<int64_t>(i % 4);
  }
  Time max_ts = kNoTime;
  for (const Tuple& t : stream) max_ts = std::max(max_ts, t.ts);
  const Time final_wm = max_ts + 100;

  std::map<KeyedResultKey, Value> expected;
  std::string err;
  ASSERT_TRUE(testing::RunKeyedToFinalResults(
      KeyedFactory(), stream, final_wm, 16, 16, &expected, &err))
      << err;

  testing::FaultPlan plan;
  plan.crash_index = stream.size() - 10;  // many barriers on disk
  plan.fault = testing::SnapshotFault::kTruncate;
  plan.fault_arg = 12345;
  std::map<KeyedResultKey, Value> got;
  testing::CrashRunStats stats;
  ASSERT_TRUE(testing::RunKeyedRescaleCrashRecovered(
      KeyedFactory(), stream, final_wm, 16, 16, plan,
      TempDir("rescale_fallback"), 3, 2, &got, &err, &stats))
      << err;
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(stats.fell_back);
  EXPECT_FALSE(stats.recovered_from_scratch);
}

}  // namespace
}  // namespace scotty
