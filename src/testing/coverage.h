#ifndef SCOTTY_TESTING_COVERAGE_H_
#define SCOTTY_TESTING_COVERAGE_H_

// In-process coverage map for the guided differential fuzzer (DESIGN.md §8).
//
// One fixed-size AFL-style feature bitmap fed from two sources:
//
//  1. Semantic features (always available, any build): the differential
//     harness records (technique × window-kind) pairs, slice-count and
//     split/merge buckets, fault-injection sites, delta-chain depths, and
//     outcome shapes through CoverFeature(). These make guidance work even
//     in uninstrumented builds, where edge coverage is invisible.
//  2. SanitizerCoverage edges (builds configured with -DSCOTTY_COVERAGE=ON):
//     the core `scotty` library is compiled with -fsanitize-coverage
//     (trace-pc-guard under Clang, trace-pc under GCC) and every basic
//     block reports into HitEdge(). Edge hit counts are bucketed by log2
//     before folding into the map, so "loop ran 100×" and "loop ran once"
//     are distinct features (the classic AFL counting refinement).
//
// The map itself is tiny (64K slots); collisions are accepted exactly as in
// AFL — the map is a guidance signal, not a ground-truth profile. A fuzz
// driver brackets each input with BeginRun()/EndRun(); EndRun() folds the
// run-local hits into the global map and reports how many were new, which
// is the corpus-admission signal.
//
// The hot paths (HitEdge/HitFeature) use relaxed atomics: instrumented code
// may run inside the parallel executor's worker threads. Everything else
// (Begin/EndRun, queries) is meant to be called from the single-threaded
// fuzz scheduler.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace scotty {
namespace testing {

/// Stable domain tags prefixing every semantic feature so different
/// instrumentation sites never collide by accident. Values are part of the
/// (in-process) feature identity only — never persisted.
enum class FeatureDomain : uint64_t {
  kEdge = 1,             ///< sanitizer-coverage edges (bucketed counts)
  kTechniqueWindow,      ///< (technique, window kind) actually executed
  kTechniqueOutcome,     ///< (technique, log2 #results) shape of the output
  kSliceCount,           ///< (store, log2 slices created)
  kSliceChurn,           ///< (store, log2 merges/splits/recomputes)
  kStreamShape,          ///< disorder/burst/gap/punctuation regime
  kWindowShape,          ///< (kind, log2 length, log2 slide) per query
  kAggregation,          ///< aggregation name in the query set
  kDimension,            ///< wm/batch/checkpoint/crash/rescale switches
  kCrashSite,            ///< (persist mode, snapshot fault, delta fault)
  kCrashRecovery,        ///< fallback/from-scratch/tail-rejected outcomes
  kDeltaChain,           ///< log2 delta records applied on restore
  kRescaleTopology,      ///< (from workers, to workers)
};

class CoverageMap {
 public:
  /// 64K feature slots — 64 KiB of run-local state, 64 KiB global. Small
  /// enough to scan per run, big enough that semantic features essentially
  /// never collide (edges collide occasionally; that is fine).
  static constexpr uint32_t kMapSize = 1u << 16;

  static CoverageMap& Global();

  /// Records a semantic feature hit for the current run.
  void HitFeature(uint64_t feature) {
    Touch(feature_seen_, Index(feature));
  }

  /// Records one execution of an instrumented edge (sanitizer-coverage hot
  /// path). Counts accumulate per run and are log2-bucketed by EndRun().
  void HitEdge(uint32_t edge) {
    edge_counts_[edge & (kMapSize - 1)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Clears the run-local state. Call before executing one fuzz input.
  void BeginRun();

  /// Folds the run-local hits (semantic features + bucketed edge counts)
  /// into the global map. Returns how many map slots were newly covered;
  /// when `run_features` is non-null it receives every slot this run hit
  /// (new or not), which corpus minimization uses as a keep-set.
  size_t EndRun(std::vector<uint32_t>* run_features = nullptr);

  /// Number of globally covered map slots.
  size_t CoveredCount() const { return covered_count_; }

  /// Forgets all global and run-local coverage.
  void Reset();

  /// True when at least one sanitizer-coverage edge ever reported, i.e. the
  /// binary was built with SCOTTY_COVERAGE instrumentation.
  bool EdgeInstrumented() const {
    return edges_ever_.load(std::memory_order_relaxed);
  }

  /// Marks edge instrumentation as present (called by the sancov hooks).
  void NoteEdgeInstrumentation() {
    edges_ever_.store(true, std::memory_order_relaxed);
  }

  CoverageMap();
  CoverageMap(const CoverageMap&) = delete;
  CoverageMap& operator=(const CoverageMap&) = delete;

 private:
  static uint32_t Index(uint64_t feature) {
    // SplitMix64 finalizer: full-avalanche so structured feature ids spread
    // uniformly over the map.
    feature ^= feature >> 30;
    feature *= 0xBF58476D1CE4E5B9ULL;
    feature ^= feature >> 27;
    feature *= 0x94D049BB133111EBULL;
    feature ^= feature >> 31;
    return static_cast<uint32_t>(feature) & (kMapSize - 1);
  }

  static void Touch(std::vector<std::atomic<uint8_t>>& seen, uint32_t idx) {
    if (seen[idx].load(std::memory_order_relaxed) == 0) {
      seen[idx].store(1, std::memory_order_relaxed);
    }
  }

  std::vector<std::atomic<uint8_t>> feature_seen_;   // run-local
  std::vector<std::atomic<uint32_t>> edge_counts_;   // run-local
  std::vector<uint8_t> global_;                      // cross-run bitmap
  size_t covered_count_ = 0;
  std::atomic<bool> edges_ever_{false};
};

/// Log2 bucket of a count: 0, 1, 2, ... so "how many" features distinguish
/// orders of magnitude, not exact values (AFL's count classes).
inline uint64_t Log2Bucket(uint64_t v) {
  uint64_t b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

/// FNV-1a 64-bit — stable string hash for technique/aggregation names used
/// in feature identities and corpus entry ids.
inline uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Records one semantic feature (domain, a, b) for the current run.
inline void CoverFeature(FeatureDomain domain, uint64_t a, uint64_t b = 0) {
  // Distinct odd multipliers keep the three components from cancelling.
  const uint64_t id = static_cast<uint64_t>(domain) * 0x9E3779B97F4A7C15ULL +
                      a * 0xC2B2AE3D27D4EB4FULL + b * 0x165667B19E3779F9ULL;
  CoverageMap::Global().HitFeature(id);
}

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_COVERAGE_H_
