#ifndef SCOTTY_CORE_WORKLOAD_H_
#define SCOTTY_CORE_WORKLOAD_H_

#include <string>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "windows/window.h"

namespace scotty {

/// The observable workload characteristics of an operator's current query
/// set (paper Section 4): stream order, aggregate-function properties,
/// window measures, and window types.
struct WorkloadCharacteristics {
  bool stream_in_order = true;          // declared property of the stream
  bool all_commutative = true;          // characteristic 2
  bool all_invertible = true;           // characteristic 2
  bool any_holistic = false;            // characteristic 2
  bool any_count_measure = false;       // characteristic 3
  bool any_fca_window = false;          // characteristic 4 (non-session FCA)
  bool any_fcf_window = false;          // characteristic 4
  bool any_session_window = false;      // characteristic 4
  bool any_context_aware_non_session = false;
};

/// Outcome of the decision tree in paper Figure 4: whether the workload
/// requires individual tuples to be kept in memory, and why.
struct StorageDecision {
  bool store_tuples = false;
  std::string reason;
};

/// Extracts the characteristics of a query set. `windows` may contain null
/// entries (removed queries).
WorkloadCharacteristics Characterize(
    const std::vector<WindowPtr>& windows,
    const std::vector<AggregateFunctionPtr>& aggs, bool stream_in_order);

/// Paper Figure 4 — which workload characteristics require storing
/// individual tuples in memory?
///
/// In-order streams: tuples are needed only for forward-context-aware
/// windows. Out-of-order streams: tuples are needed if (1) any aggregation
/// is non-commutative, (2) any window is neither context free nor a session
/// window, or (3) any query uses a count-based measure.
StorageDecision DecideStorage(const WorkloadCharacteristics& w);

/// Paper Figure 5 — are split operations possible for this workload?
/// In-order streams: only FCA windows split. Out-of-order streams: all
/// context-aware windows except sessions may split.
bool SplitsPossible(const WorkloadCharacteristics& w);

/// Paper Figure 6 — how tuples are removed from slices for count-based
/// measures with out-of-order tuples.
enum class RemovalStrategy {
  kNotNeeded,        // no count measure or in-order stream
  kIncrementalInvert,  // all aggregations invertible: subtract and add
  kRecompute,          // otherwise: recompute the slice aggregate
};

RemovalStrategy DecideRemoval(const WorkloadCharacteristics& w);

}  // namespace scotty

#endif  // SCOTTY_CORE_WORKLOAD_H_
