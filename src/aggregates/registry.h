#ifndef SCOTTY_AGGREGATES_REGISTRY_H_
#define SCOTTY_AGGREGATES_REGISTRY_H_

#include <string>
#include <vector>

#include "aggregates/aggregate_function.h"

namespace scotty {

/// Creates a built-in aggregation by name ("sum", "count", "avg", "min",
/// "max", "min-count", "max-count", "arg-min", "arg-max", "geometric-mean",
/// "stddev", "m4", "median", "p90", "sum-no-invert", "concat").
/// Returns nullptr for unknown names.
AggregateFunctionPtr MakeAggregation(const std::string& name);

/// Names of all built-in aggregations, in the order used by Figure 13.
std::vector<std::string> BuiltinAggregationNames();

}  // namespace scotty

#endif  // SCOTTY_AGGREGATES_REGISTRY_H_
