# Empty compiler generated dependencies file for scotty_integration_tests.
# This may be replaced when dependencies are built.
