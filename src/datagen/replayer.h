#ifndef SCOTTY_DATAGEN_REPLAYER_H_
#define SCOTTY_DATAGEN_REPLAYER_H_

#include <string>
#include <vector>

#include "datagen/generators.h"

namespace scotty {

/// Replays a recorded trace from a CSV file with lines `ts,value,key`
/// (header lines starting with '#' are skipped). This is the hook for
/// feeding the original DEBS'12/DEBS'13 traces — or any recorded stream —
/// into the operators instead of the synthetic generators.
class CsvReplaySource : public TupleSource {
 public:
  /// Loads the whole file; returns false (and stays empty) on I/O errors.
  bool Load(const std::string& path);

  /// Rate-scaling: replays the trace `factor` times back to back, shifting
  /// timestamps, to simulate higher ingestion volumes from a short trace
  /// (the paper: "we generate additional tuples based on the original
  /// data"). Must be called before reading.
  void SetLoopCount(int loops) { loops_ = loops; }

  bool Next(Tuple* out) override;

  size_t size() const { return tuples_.size(); }
  void Rewind() {
    pos_ = 0;
    loop_ = 0;
  }

  /// Writes a stream to CSV (for capturing synthetic runs / fixtures).
  static bool Dump(const std::string& path, TupleSource& src,
                   uint64_t max_tuples);

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
  int loops_ = 1;
  int loop_ = 0;
  uint64_t seq_ = 0;
};

}  // namespace scotty

#endif  // SCOTTY_DATAGEN_REPLAYER_H_
