// CheckpointHealth surfacing (ROADMAP: "CheckpointHealth is computed but
// nothing reads it"): the coordinator's HealthReport() accessor and the
// health fields embedded in CheckpointedPipelineReport and
// ParallelPipelineReport, driven through injected persist failures.

#include <atomic>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "runtime/checkpoint.h"
#include "runtime/checkpoint_health.h"
#include "runtime/parallel_executor.h"
#include "runtime/pipeline.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

namespace fs = std::filesystem;

using testutil::T;

std::string TempDir(const std::string& leaf) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string unique =
      info ? leaf + "_" + info->test_suite_name() + "_" + info->name() : leaf;
  const fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

class VectorSource : public TupleSource {
 public:
  explicit VectorSource(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}
  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    return true;
  }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

std::vector<Tuple> MakeStream(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(T(static_cast<Time>(i * 2),
                    0.25 * static_cast<double>(i % 31) - 2.0,
                    /*seq=*/0, static_cast<int64_t>(i % 7)));
  }
  return out;
}

std::function<std::unique_ptr<WindowOperator>()> Factory() {
  return [] {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 1000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<TumblingWindow>(40));
    op->AddWindow(std::make_shared<SessionWindow>(8));
    return op;
  };
}

TEST(CheckpointHealthReport, NamesAndDefaults) {
  EXPECT_STREQ(CheckpointHealthName(CheckpointHealth::kHealthy), "healthy");
  EXPECT_STREQ(CheckpointHealthName(CheckpointHealth::kDegraded), "degraded");
  EXPECT_STREQ(CheckpointHealthName(CheckpointHealth::kFailed), "failed");
  const CheckpointHealthReport hr;
  EXPECT_EQ(hr.health, CheckpointHealth::kHealthy);
  EXPECT_FALSE(hr.Degraded());
  EXPECT_EQ(hr.persist_failures, 0u);
}

TEST(CheckpointHealthReport, MirrorsCoordinatorCounters) {
  const std::string dir = TempDir("health_mirror");
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "h";
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 10;
  CheckpointCoordinator coord(copts);
  std::atomic<int> failures_left{2};
  coord.SetPersistFailureHook(
      [&](uint64_t, bool) { return failures_left.fetch_sub(1) > 0; });

  auto op = Factory()();
  for (int i = 0; i < 30; ++i) op->ProcessTuple(T(i * 3, i));
  op->ProcessWatermark(50);
  op->TakeResults();

  state::CheckpointMetadata meta;
  EXPECT_TRUE(coord.OnBarrier(*op, meta).empty());  // fails
  CheckpointHealthReport hr = coord.HealthReport();
  EXPECT_EQ(hr.health, CheckpointHealth::kDegraded);
  EXPECT_TRUE(hr.Degraded());
  EXPECT_EQ(hr.health, coord.health());
  EXPECT_EQ(hr.persist_failures, coord.persist_failures());
  EXPECT_EQ(hr.persist_failures, 1u);
  EXPECT_EQ(hr.bases_persisted, 0u);

  EXPECT_TRUE(coord.OnBarrier(*op, meta).empty());   // fails
  EXPECT_FALSE(coord.OnBarrier(*op, meta).empty());  // persists, recovers
  hr = coord.HealthReport();
  EXPECT_EQ(hr.health, CheckpointHealth::kHealthy);
  EXPECT_FALSE(hr.Degraded());
  EXPECT_EQ(hr.persist_failures, 2u);
  EXPECT_EQ(hr.bases_persisted, 1u);
  EXPECT_EQ(hr.barriers_dropped, coord.barriers_dropped());
  EXPECT_EQ(hr.deltas_persisted, coord.deltas_persisted());
}

TEST(CheckpointedPipeline, ReportCarriesHealthyState) {
  const std::string dir = TempDir("health_pipeline_ok");
  VectorSource src(MakeStream(512));
  auto op = Factory()();
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointCoordinator coord({.directory = dir, .prefix = "h"});
  const CheckpointedPipelineReport rep =
      RunCheckpointedPipeline(src, *op, 512, popts, coord);
  EXPECT_GT(rep.checkpoints, 0u);
  EXPECT_EQ(rep.health.health, CheckpointHealth::kHealthy);
  EXPECT_FALSE(rep.health.Degraded());
  EXPECT_EQ(rep.health.persist_failures, 0u);
  EXPECT_EQ(rep.health.bases_persisted, rep.checkpoints);
}

TEST(CheckpointedPipeline, ReportCarriesTerminalFailure) {
  const std::string dir = TempDir("health_pipeline_fail");
  VectorSource src(MakeStream(512));
  auto op = Factory()();
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "h";
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 2;
  CheckpointCoordinator coord(copts);
  coord.SetPersistFailureHook([](uint64_t, bool) { return true; });

  const CheckpointedPipelineReport rep =
      RunCheckpointedPipeline(src, *op, 512, popts, coord);
  // The stream itself completes; only persistence degraded.
  EXPECT_EQ(rep.report.tuples, 512u);
  EXPECT_GT(rep.report.results, 0u);
  EXPECT_EQ(rep.checkpoints, 0u);
  EXPECT_EQ(rep.health.health, CheckpointHealth::kFailed);
  EXPECT_TRUE(rep.health.Degraded());
  EXPECT_GE(rep.health.persist_failures, 2u);
  EXPECT_EQ(rep.health.bases_persisted, 0u);
}

TEST(CheckpointedPipeline, AsyncFailuresVisibleAfterFlush) {
  // Async mode: failures happen on the background persist thread; the
  // report's health must still reflect them because it is sampled after the
  // coordinator flush.
  const std::string dir = TempDir("health_pipeline_async");
  VectorSource src(MakeStream(512));
  auto op = Factory()();
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointOptions copts;
  copts.directory = dir;
  copts.prefix = "h";
  copts.async = true;
  copts.max_retries = 0;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 100;  // stay out of terminal kFailed
  CheckpointCoordinator coord(copts);
  coord.SetPersistFailureHook([](uint64_t, bool) { return true; });

  const CheckpointedPipelineReport rep =
      RunCheckpointedPipeline(src, *op, 512, popts, coord);
  EXPECT_EQ(rep.report.tuples, 512u);
  EXPECT_TRUE(rep.health.Degraded());
  EXPECT_GT(rep.health.persist_failures + rep.health.barriers_dropped, 0u);
  EXPECT_EQ(rep.health.bases_persisted, 0u);
}

TEST(ParallelPipeline, ReportCarriesCheckpointHealth) {
  const std::string dir = TempDir("health_parallel");
  PipelineOptions popts;
  popts.watermark_every = 128;
  popts.watermark_delay = 20;

  {
    VectorSource src(MakeStream(1024));
    ParallelExecutor exec(3, Factory());
    CheckpointCoordinator coord({.directory = dir, .prefix = "p"});
    const ParallelPipelineReport rep =
        RunPipelineParallel(src, exec, 1024, popts, nullptr, &coord);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_GT(rep.checkpoints, 0u);
    EXPECT_EQ(rep.checkpoint_health.health, CheckpointHealth::kHealthy);
    EXPECT_EQ(rep.checkpoint_health.bases_persisted, rep.checkpoints);
  }
  {
    VectorSource src(MakeStream(1024));
    ParallelExecutor exec(3, Factory());
    CheckpointOptions copts;
    copts.directory = dir;
    copts.prefix = "pf";
    copts.max_retries = 0;
    copts.retry_backoff_ms = 0;
    copts.max_consecutive_failures = 100;
    CheckpointCoordinator coord(copts);
    coord.SetPersistFailureHook([](uint64_t, bool) { return true; });
    const ParallelPipelineReport rep =
        RunPipelineParallel(src, exec, 1024, popts, nullptr, &coord);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.checkpoints, 0u);
    EXPECT_TRUE(rep.checkpoint_health.Degraded());
    EXPECT_GT(rep.checkpoint_health.persist_failures, 0u);
  }
  {
    // No coordinator: the embedded health stays default-healthy.
    VectorSource src(MakeStream(256));
    ParallelExecutor exec(3, Factory());
    const ParallelPipelineReport rep =
        RunPipelineParallel(src, exec, 256, popts);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.checkpoint_health.health, CheckpointHealth::kHealthy);
    EXPECT_EQ(rep.checkpoint_health.persist_failures, 0u);
  }
}

}  // namespace
}  // namespace scotty
