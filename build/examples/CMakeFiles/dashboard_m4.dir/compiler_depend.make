# Empty compiler generated dependencies file for dashboard_m4.
# This may be replaced when dependencies are built.
