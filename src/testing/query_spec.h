#ifndef SCOTTY_TESTING_QUERY_SPEC_H_
#define SCOTTY_TESTING_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "query/window_desc.h"

namespace scotty {
namespace testing {

/// The declarative window-description grammar now lives in the production
/// tree (query/window_desc.h) because the query registry registers and
/// snapshots queries by description, not by stateful Window object. The
/// fuzzer keeps its historical names as aliases: a --queries= reproducer
/// line and a QueryRegistry registration share one grammar by construction.
using WindowSpec = ::scotty::WindowDesc;

inline std::string WindowSpecsToString(const std::vector<WindowSpec>& specs) {
  return WindowDescsToString(specs);
}

inline bool ParseWindowSpecs(const std::string& text,
                             std::vector<WindowSpec>* out) {
  return ParseWindowDescs(text, out);
}

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_QUERY_SPEC_H_
