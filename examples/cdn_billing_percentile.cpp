// CDN 95th-percentile billing (the paper's holistic-aggregation use case:
// "windowed quantiles are the basis for billing models of content delivery
// networks and transit-ISPs" [13, 23]).
//
// Transit billing samples the customer's bandwidth every 5 minutes and
// charges the 95th percentile over the billing window. This example runs a
// sliding billing window (1 hour, sliding by 15 minutes) with a holistic
// percentile aggregation over an out-of-order measurement stream — the
// workload combination (holistic + sliding + OOO) that defeats most
// specialized techniques but is a first-class citizen of general slicing.
//
//   $ ./examples/cdn_billing_percentile

#include <cstdio>
#include <memory>

#include "aggregates/holistic.h"
#include "aggregates/registry.h"
#include "common/rng.h"
#include "core/general_slicing_operator.h"
#include "windows/sliding.h"

int main() {
  using namespace scotty;
  constexpr Time kMinute = 60;  // timestamps in seconds for this example
  constexpr Time kHour = 60 * kMinute;

  GeneralSlicingOperator::Options options;
  options.stream_in_order = false;
  options.allowed_lateness = 10 * kMinute;
  GeneralSlicingOperator op(options);

  // A custom percentile: billing uses p95 (between the built-in median and
  // p90 — user-defined aggregations plug in without touching the core).
  op.AddAggregation(std::make_shared<PercentileAggregation>(0.95, "p95"));
  op.AddWindow(std::make_shared<SlidingWindow>(kHour, 15 * kMinute));

  // Simulate 6 hours of 5-minute bandwidth samples (Mbps) with a traffic
  // spike in hour 3 and ~15% of samples arriving out of order.
  Rng rng(2026);
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Tuple delayed{};
  bool has_delayed = false;
  for (Time ts = 0; ts < 6 * kHour; ts += 5 * kMinute) {
    Tuple t;
    t.ts = ts;
    const bool spike = ts >= 2 * kHour && ts < 3 * kHour;
    t.value = (spike ? 900.0 : 300.0) + rng.NextDouble() * 100.0;
    t.seq = seq++;
    if (!has_delayed && rng.NextDouble() < 0.15) {
      delayed = t;  // hold this sample back one step
      has_delayed = true;
      continue;
    }
    op.ProcessTuple(t);
    if (t.ts > max_ts) max_ts = t.ts;
    if (has_delayed) {
      op.ProcessTuple(delayed);  // arrives late, out of order
      has_delayed = false;
    }
    op.ProcessWatermark(max_ts - 10 * kMinute);
  }
  op.ProcessWatermark(7 * kHour);

  std::printf("billing windows (1h sliding by 15min), p95 bandwidth:\n");
  for (const WindowResult& r : op.TakeResults()) {
    if (r.value.IsEmpty() || r.is_update) continue;
    std::printf("  [%4.2fh, %4.2fh)  p95 = %6.1f Mbps%s\n",
                static_cast<double>(r.start) / kHour,
                static_cast<double>(r.end) / kHour, r.value.Numeric(),
                r.value.Numeric() > 800 ? "  <-- spike billed" : "");
  }

  std::printf(
      "\nstate: %zu slices, %.1f KiB (holistic partials are sorted "
      "run-length-encoded multisets)\n",
      op.time_store()->NumSlices(),
      static_cast<double>(op.MemoryUsageBytes()) / 1024.0);
  return 0;
}
