file(REMOVE_RECURSE
  "CMakeFiles/dashboard_m4.dir/dashboard_m4.cpp.o"
  "CMakeFiles/dashboard_m4.dir/dashboard_m4.cpp.o.d"
  "dashboard_m4"
  "dashboard_m4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashboard_m4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
