#include "datagen/ooo_injector.h"

#include <algorithm>

namespace scotty {

bool OutOfOrderInjector::Next(Tuple* out) {
  while (true) {
    // Release a held tuple whose delay has elapsed relative to the
    // *source's* progress; it arrives late (out of order). Driving releases
    // by source progress (not by what was already emitted) keeps the
    // injector correct up to a 100% out-of-order fraction.
    if (!held_.empty() && max_source_ts_ != kNoTime &&
        held_.top().release <= max_source_ts_) {
      *out = held_.top().tuple;
      held_.pop();
      out->seq = next_seq_++;
      return true;
    }
    Tuple t;
    if (!inner_->Next(&t)) {
      // Source exhausted: flush the remaining held tuples.
      if (held_.empty()) return false;
      *out = held_.top().tuple;
      held_.pop();
      out->seq = next_seq_++;
      return true;
    }
    max_source_ts_ = std::max(max_source_ts_, t.ts);
    if (!t.is_punctuation && rng_.NextDouble() < opts_.fraction) {
      const Time delay =
          opts_.max_delay > opts_.min_delay
              ? rng_.NextInRange(opts_.min_delay, opts_.max_delay)
              : opts_.min_delay;
      held_.push(Held{t.ts + delay, t});
      continue;  // this tuple arrives later
    }
    *out = t;
    out->seq = next_seq_++;
    return true;
  }
}

}  // namespace scotty
