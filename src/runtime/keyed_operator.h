#ifndef SCOTTY_RUNTIME_KEYED_OPERATOR_H_
#define SCOTTY_RUNTIME_KEYED_OPERATOR_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "core/window_operator.h"

namespace scotty {

/// Per-key windowing within one thread: wraps a factory of window operators
/// and maintains one instance per partition key (windows over "average
/// speed per vehicle", "session per user", ...). This is the keyed-stream
/// semantics of Flink/Beam; combined with the ParallelExecutor it yields
/// the two-level key partitioning of paper Section 5.3.
///
/// Watermarks are broadcast to every per-key operator; results are tagged
/// with their key.
class KeyedWindowOperator : public WindowOperator {
 public:
  using Factory = std::function<std::unique_ptr<WindowOperator>()>;

  explicit KeyedWindowOperator(Factory factory)
      : factory_(std::move(factory)) {}

  void ProcessTuple(const Tuple& t) override {
    OperatorFor(t.key).ProcessTuple(t);
  }

  /// Splits the batch into per-key groups (preserving each key's arrival
  /// order) and forwards every group through the inner operator's batched
  /// path. Keys are independent operator instances, so regrouping cannot be
  /// observed; maximal same-key runs are forwarded as subspans without
  /// copying, mixed batches are regrouped through reused scratch buffers.
  void ProcessTupleBatch(std::span<const Tuple> batch) override {
    size_t i = 0;
    const size_t n = batch.size();
    while (i < n) {
      // Zero-copy fast path: a maximal run of one key.
      size_t j = i + 1;
      while (j < n && batch[j].key == batch[i].key) ++j;
      if (i == 0 && j == n) {
        OperatorFor(batch[i].key).ProcessTupleBatch(batch);
        return;
      }
      if (j - i >= kMinDirectRun) {
        OperatorFor(batch[i].key).ProcessTupleBatch(batch.subspan(i, j - i));
        i = j;
        continue;
      }
      // Mixed keys: collect this stretch into per-key scratch groups until
      // the next long same-key run, then dispatch one batch per key.
      group_order_.clear();
      for (; i < n; ++i) {
        size_t r = i + 1;
        while (r < n && batch[r].key == batch[i].key) ++r;
        if (r - i >= kMinDirectRun && !group_order_.empty()) break;
        std::vector<Tuple>& g = groups_[batch[i].key];
        if (g.empty()) group_order_.push_back(batch[i].key);
        for (; i < r; ++i) g.push_back(batch[i]);
        i = r - 1;  // loop increment advances past the run
      }
      for (int64_t key : group_order_) {
        std::vector<Tuple>& g = groups_[key];
        OperatorFor(key).ProcessTupleBatch(g);
        g.clear();  // keep capacity for the next batch
      }
    }
  }

  /// Columnar batch path: a stable radix-style shuffle of the columns into
  /// per-key partitions, replacing the AoS path's regrouping-by-copy of
  /// whole 40-byte tuples. One pass maps each tuple's key to a dense
  /// partition slot through the open-addressing FlatKeyMap (recording the
  /// slot so the scatter needs no second hash probe), one pass scatters
  /// each column into partition-contiguous scratch storage, then every
  /// partition dispatches as a zero-copy subview through the inner
  /// operator's columnar path. Per-key arrival order is preserved (the
  /// scatter is stable), so results are bit-identical to per-tuple
  /// processing.
  void ProcessTupleColumns(const TupleColumnsView& cols) override {
    const size_t n = cols.size;
    if (n == 0) return;
    key_slots_.Clear();
    part_keys_.clear();
    part_counts_.clear();
    slot_ids_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      bool inserted = false;
      uint32_t& slot = key_slots_.FindOrInsert(
          cols.key[i], static_cast<uint32_t>(part_keys_.size()), &inserted);
      if (inserted) {
        part_keys_.push_back(cols.key[i]);
        part_counts_.push_back(0);
      }
      ++part_counts_[slot];
      slot_ids_[i] = slot;
    }
    if (part_keys_.size() == 1) {
      // Single-key batch: forward the original view untouched.
      OperatorFor(part_keys_[0]).ProcessTupleColumns(cols);
      return;
    }
    // Exclusive prefix sum -> partition base offsets; cursors advance as
    // the scatter fills each partition.
    part_offsets_.resize(part_keys_.size());
    size_t off = 0;
    for (size_t p = 0; p < part_keys_.size(); ++p) {
      part_offsets_[p] = off;
      off += part_counts_[p];
    }
    const bool has_punct = cols.punct != nullptr;
    scratch_ts_.resize(n);
    scratch_value_.resize(n);
    scratch_key_.resize(n);
    scratch_seq_.resize(n);
    if (has_punct) scratch_punct_.resize(n);
    part_cursors_ = part_offsets_;
    for (size_t i = 0; i < n; ++i) {
      const size_t d = part_cursors_[slot_ids_[i]]++;
      scratch_ts_[d] = cols.ts[i];
      scratch_value_[d] = cols.value[i];
      scratch_key_[d] = cols.key[i];
      scratch_seq_[d] = cols.seq[i];
      if (has_punct) scratch_punct_[d] = cols.punct[i];
    }
    for (size_t p = 0; p < part_keys_.size(); ++p) {
      const size_t base = part_offsets_[p];
      TupleColumnsView part{scratch_ts_.data() + base,
                            scratch_value_.data() + base,
                            scratch_key_.data() + base,
                            scratch_seq_.data() + base,
                            has_punct ? scratch_punct_.data() + base : nullptr,
                            part_counts_[p]};
      OperatorFor(part_keys_[p]).ProcessTupleColumns(part);
    }
  }

  void ProcessWatermark(Time wm) override {
    last_wm_ = wm;
    for (auto& [key, op] : operators_) {
      op->ProcessWatermark(wm);
      for (WindowResult& r : op->TakeResults()) {
        r.key = key;
        results_.push_back(std::move(r));
      }
    }
  }

  std::vector<WindowResult> TakeResults() override {
    // Collect anything produced between watermarks too (in-order streams
    // self-trigger per tuple).
    for (auto& [key, op] : operators_) {
      for (WindowResult& r : op->TakeResults()) {
        r.key = key;
        results_.push_back(std::move(r));
      }
    }
    std::vector<WindowResult> out;
    out.swap(results_);
    return out;
  }

  size_t MemoryUsageBytes() const override {
    size_t bytes = 0;
    for (const auto& [key, op] : operators_) bytes += op->MemoryUsageBytes();
    return bytes;
  }

  std::string Name() const override {
    // inner_name_ is cached when the first per-key operator is created;
    // constructing a throwaway operator per Name() call would make a cheap
    // accessor arbitrarily expensive (factories allocate full operators).
    return inner_name_.empty() ? "keyed" : "keyed-" + inner_name_;
  }

  size_t NumKeys() const { return operators_.size(); }

  /// Access to one key's operator (nullptr if the key was never seen).
  const WindowOperator* ForKey(int64_t key) const {
    auto it = operators_.find(key);
    return it == operators_.end() ? nullptr : it->second.get();
  }

  bool SupportsSnapshot() const override { return true; }

  /// Keys are serialized in sorted order so the snapshot bytes are a pure
  /// function of the logical state (the unordered_map's iteration order is
  /// not). Each per-key operator's state is written as a length-prefixed
  /// opaque byte range (format v2): the prefix lets rescaling restore and
  /// keyed deltas re-partition or skip a key's state without decoding it.
  void SerializeState(state::Writer& w) const override {
    w.Tag(0x4B455944);  // "KEYD"
    w.U8(kKeyedFormatVersion);
    w.I64(last_wm_);
    std::vector<int64_t> keys = SortedKeys();
    w.U64(keys.size());
    for (int64_t key : keys) {
      w.I64(key);
      state::Writer inner;
      operators_.at(key)->SerializeState(inner);
      w.U64(inner.bytes().size());
      w.Bytes(inner.bytes().data(), inner.bytes().size());
    }
    w.U64(results_.size());
    for (const WindowResult& res : results_) SerializeWindowResult(w, res);
  }

  void DeserializeState(state::Reader& r) override {
    r.Tag(0x4B455944);
    if (r.U8() != kKeyedFormatVersion) {
      r.Fail();
      return;
    }
    last_wm_ = r.I64();
    const uint64_t nkeys = r.U64();
    if (nkeys > r.remaining()) {
      r.Fail();
      return;
    }
    operators_.clear();
    dirty_keys_.clear();
    for (uint64_t i = 0; i < nkeys && r.ok(); ++i) {
      const int64_t key = r.I64();
      const uint64_t len = r.U64();
      if (!r.ok() || len > r.remaining()) {
        r.Fail();
        return;
      }
      std::vector<uint8_t> bytes(static_cast<size_t>(len));
      r.Bytes(bytes.data(), bytes.size());
      std::unique_ptr<WindowOperator> op = factory_();
      if (inner_name_.empty()) inner_name_ = op->Name();
      state::Reader inner(bytes);
      op->DeserializeState(inner);
      if (!inner.ok() || !inner.AtEnd()) {
        r.Fail();
        return;
      }
      operators_.emplace(key, std::move(op));
    }
    const uint64_t m = r.U64();
    if (m > r.remaining()) {
      r.Fail();
      return;
    }
    results_.clear();
    for (uint64_t i = 0; i < m && r.ok(); ++i) {
      results_.push_back(DeserializeWindowResult(r));
    }
  }

  /// Incremental snapshots: a delta serializes only keys whose operator saw
  /// tuples since the last barrier. Watermark broadcasts deliberately do
  /// NOT dirty a key — a clean key's post-watermark state is reconstructed
  /// by FinishDeltaRestore, which re-broadcasts the restored watermark;
  /// triggering is idempotent and cumulative, so the catch-up leaves every
  /// clean key bit-identical to an uninterrupted run (re-emitted window
  /// results duplicate already-delivered values, which the at-least-once
  /// delivery contract absorbs).
  bool SupportsIncrementalSnapshot() const override { return true; }

  void SerializeDelta(state::Writer& w) const override {
    w.U8(kIncrementalDelta);
    w.Tag(0x4B455944);  // "KEYD"
    w.U8(kKeyedFormatVersion);
    w.I64(last_wm_);
    std::vector<int64_t> keys = SortedKeys();
    w.U64(keys.size());
    for (int64_t key : keys) {
      const bool dirty = dirty_keys_.count(key) != 0;
      w.I64(key);
      w.Bool(dirty);
      if (!dirty) continue;
      state::Writer inner;
      operators_.at(key)->SerializeState(inner);
      w.U64(inner.bytes().size());
      w.Bytes(inner.bytes().data(), inner.bytes().size());
    }
    w.U64(results_.size());
    for (const WindowResult& res : results_) SerializeWindowResult(w, res);
  }

  void ApplyDelta(state::Reader& r) override {
    const uint8_t kind = r.U8();
    if (kind == kFullDelta) {
      DeserializeState(r);
      return;
    }
    if (kind != kIncrementalDelta) {
      r.Fail();
      return;
    }
    r.Tag(0x4B455944);
    if (r.U8() != kKeyedFormatVersion) {
      r.Fail();
      return;
    }
    const Time wm = r.I64();
    const uint64_t nkeys = r.U64();
    if (!r.ok() || nkeys > r.remaining()) {
      r.Fail();
      return;
    }
    std::unordered_map<int64_t, std::unique_ptr<WindowOperator>> next;
    next.reserve(static_cast<size_t>(nkeys));
    for (uint64_t i = 0; i < nkeys && r.ok(); ++i) {
      const int64_t key = r.I64();
      const bool dirty = r.Bool();
      if (!r.ok()) return;
      if (dirty) {
        const uint64_t len = r.U64();
        if (!r.ok() || len > r.remaining()) {
          r.Fail();
          return;
        }
        std::vector<uint8_t> bytes(static_cast<size_t>(len));
        r.Bytes(bytes.data(), bytes.size());
        std::unique_ptr<WindowOperator> op = factory_();
        if (inner_name_.empty()) inner_name_ = op->Name();
        state::Reader inner(bytes);
        op->DeserializeState(inner);
        if (!inner.ok() || !inner.AtEnd()) {
          r.Fail();
          return;
        }
        next.emplace(key, std::move(op));
      } else {
        // A clean reference must resolve against the previous epoch's
        // state; a missing key means a barrier is missing in between.
        auto it = operators_.find(key);
        if (it == operators_.end()) {
          r.Fail();
          return;
        }
        next.emplace(key, std::move(it->second));
        operators_.erase(it);
      }
    }
    const uint64_t m = r.U64();
    if (!r.ok() || m > r.remaining()) {
      r.Fail();
      return;
    }
    std::vector<WindowResult> res;
    res.reserve(static_cast<size_t>(m));
    for (uint64_t i = 0; i < m && r.ok(); ++i) {
      res.push_back(DeserializeWindowResult(r));
    }
    if (!r.ok()) return;
    last_wm_ = wm;
    operators_ = std::move(next);
    results_ = std::move(res);
    dirty_keys_.clear();
  }

  void MarkSnapshotClean() override {
    dirty_keys_.clear();
    for (auto& [key, op] : operators_) op->MarkSnapshotClean();
  }

  /// Catch-up after the last delta was applied: clean keys were restored to
  /// their state at an older barrier; re-broadcasting the restored
  /// watermark advances them through the exact triggers/evictions they
  /// performed live (idempotent for keys already at the watermark).
  void FinishDeltaRestore() override {
    if (last_wm_ == kNoTime) return;
    ProcessWatermark(last_wm_);
  }

  /// Rescaling support: the decomposed v2 full-state payload. `keys` holds
  /// each per-key operator's opaque serialized bytes, re-partitionable
  /// across workers without decoding.
  struct KeyedStateParts {
    Time last_wm = kNoTime;
    std::vector<std::pair<int64_t, std::vector<uint8_t>>> keys;
    std::vector<WindowResult> results;
  };

  /// Splits a SerializeState payload into parts. Returns false (without
  /// touching `out`) if the bytes are not a well-formed v2 keyed state.
  static bool ParseKeyedState(const std::vector<uint8_t>& bytes,
                              KeyedStateParts* out) {
    state::Reader r(bytes);
    r.Tag(0x4B455944);
    if (r.U8() != kKeyedFormatVersion) return false;
    KeyedStateParts parts;
    parts.last_wm = r.I64();
    const uint64_t nkeys = r.U64();
    if (!r.ok() || nkeys > r.remaining()) return false;
    parts.keys.reserve(static_cast<size_t>(nkeys));
    for (uint64_t i = 0; i < nkeys && r.ok(); ++i) {
      const int64_t key = r.I64();
      const uint64_t len = r.U64();
      if (!r.ok() || len > r.remaining()) return false;
      std::vector<uint8_t> kb(static_cast<size_t>(len));
      r.Bytes(kb.data(), kb.size());
      parts.keys.emplace_back(key, std::move(kb));
    }
    const uint64_t m = r.U64();
    if (!r.ok() || m > r.remaining()) return false;
    parts.results.reserve(static_cast<size_t>(m));
    for (uint64_t i = 0; i < m && r.ok(); ++i) {
      parts.results.push_back(DeserializeWindowResult(r));
    }
    if (!r.ok() || !r.AtEnd()) return false;
    *out = std::move(parts);
    return true;
  }

  /// Inverse of ParseKeyedState: reassembles a v2 full-state payload
  /// (sorting keys, so the output is canonical regardless of input order).
  static std::vector<uint8_t> BuildKeyedState(KeyedStateParts parts) {
    std::sort(parts.keys.begin(), parts.keys.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    state::Writer w;
    w.Tag(0x4B455944);
    w.U8(kKeyedFormatVersion);
    w.I64(parts.last_wm);
    w.U64(parts.keys.size());
    for (const auto& [key, kb] : parts.keys) {
      w.I64(key);
      w.U64(kb.size());
      w.Bytes(kb.data(), kb.size());
    }
    w.U64(parts.results.size());
    for (const WindowResult& res : parts.results) SerializeWindowResult(w, res);
    return w.Take();
  }

 private:
  /// Same-key runs at least this long skip the scratch regrouping and go
  /// straight to the inner operator as a subspan.
  static constexpr size_t kMinDirectRun = 16;

  static constexpr uint8_t kKeyedFormatVersion = 2;

  /// OperatorFor is reached exclusively from the tuple paths, so it is the
  /// single point where a key turns dirty for incremental snapshots.
  WindowOperator& OperatorFor(int64_t key) {
    dirty_keys_.insert(key);
    auto it = operators_.find(key);
    if (it == operators_.end()) {
      it = operators_.emplace(key, factory_()).first;
      if (inner_name_.empty()) inner_name_ = it->second->Name();
      // A freshly created per-key operator must not consider windows
      // before the current watermark already triggered.
      if (last_wm_ != kNoTime) it->second->ProcessWatermark(last_wm_);
    }
    return *it->second;
  }

  std::vector<int64_t> SortedKeys() const {
    std::vector<int64_t> keys;
    keys.reserve(operators_.size());
    for (const auto& [key, op] : operators_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  Factory factory_;
  std::unordered_map<int64_t, std::unique_ptr<WindowOperator>> operators_;
  std::unordered_map<int64_t, std::vector<Tuple>> groups_;  // batch scratch
  std::vector<int64_t> group_order_;                        // batch scratch

  // Columnar shuffle scratch (ProcessTupleColumns): key -> dense partition
  // slot, per-partition sizes/offsets, and partition-contiguous column
  // storage. All reused across batches so the steady state allocates
  // nothing.
  FlatKeyMap<uint32_t> key_slots_{64};
  std::vector<int64_t> part_keys_;     // partition slot -> key (first-seen)
  std::vector<size_t> part_counts_;
  std::vector<size_t> part_offsets_;
  std::vector<size_t> part_cursors_;
  std::vector<uint32_t> slot_ids_;     // per-tuple partition slot
  std::vector<Time> scratch_ts_;
  std::vector<double> scratch_value_;
  std::vector<int64_t> scratch_key_;
  std::vector<uint64_t> scratch_seq_;
  std::vector<uint8_t> scratch_punct_;
  std::unordered_set<int64_t> dirty_keys_;  // keys with tuples since barrier
  std::vector<WindowResult> results_;
  std::string inner_name_;
  Time last_wm_ = kNoTime;
};

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_KEYED_OPERATOR_H_
