#include "baselines/aggregate_tree.h"

#include <algorithm>
#include <cassert>

#include "common/memory.h"

namespace scotty {

namespace {

class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override {
    windows.push_back({start, end});
  }
  std::vector<std::pair<Time, Time>> windows;
};

bool TupleLess(const Tuple& a, const Tuple& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.seq < b.seq;
}

}  // namespace

AggregateTreeOperator::AggregateTreeOperator(bool stream_in_order,
                                             Time allowed_lateness)
    : stream_in_order_(stream_in_order), allowed_lateness_(allowed_lateness) {}

int AggregateTreeOperator::AddAggregation(AggregateFunctionPtr fn) {
  assert(buffer_.empty() && "add aggregations before streaming");
  trees_.emplace_back(fn);
  aggs_.push_back(std::move(fn));
  return static_cast<int>(aggs_.size()) - 1;
}

int AggregateTreeOperator::AddWindow(WindowPtr w) {
  windows_.push_back(std::move(w));
  return static_cast<int>(windows_.size()) - 1;
}

void AggregateTreeOperator::ProcessTuple(const Tuple& t) {
  const bool in_order = max_ts_ == kNoTime || t.ts >= max_ts_;
  const bool late = last_wm_ != kNoTime && t.ts <= last_wm_;
  if (late && t.ts < last_wm_ - allowed_lateness_) return;
  if (last_wm_ == kNoTime) {
    last_wm_ = t.ts - 1;
    wm_floor_ = last_wm_;
  }

  std::vector<char> changed(windows_.size(), 0);
  std::vector<std::pair<int, std::vector<std::pair<Time, Time>>>> changed_wins;
  for (size_t w = 0; w < windows_.size(); ++w) {
    if (auto* caw = dynamic_cast<ContextAwareWindow*>(windows_[w].get())) {
      ContextModifications mods = caw->ProcessContext(t);
      if (!mods.changed_windows.empty()) {
        changed[w] = 1;
        changed_wins.emplace_back(static_cast<int>(w),
                                  std::move(mods.changed_windows));
      }
    }
  }

  if (!t.is_punctuation) {
    if (in_order) {
      buffer_.push_back(t);
      for (size_t a = 0; a < trees_.size(); ++a) {
        trees_[a].Append(aggs_[a]->Lift(t));
      }
    } else {
      // The expensive path: a leaf insert in the middle of the tree.
      auto it = std::upper_bound(buffer_.begin(), buffer_.end(), t, TupleLess);
      const size_t idx = static_cast<size_t>(it - buffer_.begin());
      buffer_.insert(it, t);
      for (size_t a = 0; a < trees_.size(); ++a) {
        trees_[a].InsertLeafAt(idx, aggs_[a]->Lift(t));
      }
    }
  }
  if (in_order) max_ts_ = t.ts;

  // Windows ending at or before the watermark floor (the first observed
  // point in time) were never emitted and must not resurface as updates.
  for (auto& [wid, wins] : changed_wins) {
    for (const auto& [s, e] : wins) {
      if (e <= last_wm_ && e > wm_floor_) EmitTimeWindow(wid, s, e, true);
    }
  }
  if (late) {
    for (size_t w = 0; w < windows_.size(); ++w) {
      if (changed[w] || windows_[w]->measure() == Measure::kCount) continue;
      Collector c;
      windows_[w]->TriggerWindows(c, std::max(t.ts, wm_floor_), last_wm_);
      for (const auto& [s, e] : c.windows) {
        if (s <= t.ts) EmitTimeWindow(static_cast<int>(w), s, e, true);
      }
    }
    Tuple probe = t;
    const auto rank_it =
        std::lower_bound(buffer_.begin(), buffer_.end(), probe, TupleLess);
    const int64_t rank = evicted_count_ + (rank_it - buffer_.begin());
    for (size_t w = 0; w < windows_.size(); ++w) {
      if (windows_[w]->measure() != Measure::kCount) continue;
      Collector c;
      windows_[w]->TriggerWindows(c, rank, last_cwm_);
      for (const auto& [cs, ce] : c.windows) {
        EmitCountWindow(static_cast<int>(w), cs, ce, true);
      }
    }
  }

  if (stream_in_order_) TriggerAll(t.ts);
}

void AggregateTreeOperator::ProcessWatermark(Time wm) {
  if (last_wm_ == kNoTime) {
    last_wm_ = max_ts_ == kNoTime ? wm : std::min(wm, max_ts_ - 1);
    wm_floor_ = last_wm_;
  }
  TriggerAll(wm);
}

void AggregateTreeOperator::TriggerAll(Time wm) {
  if (last_wm_ != kNoTime && wm <= last_wm_) return;
  Tuple probe;
  probe.ts = wm;
  probe.seq = ~0ULL;
  const int64_t cwm =
      evicted_count_ +
      (std::upper_bound(buffer_.begin(), buffer_.end(), probe, TupleLess) -
       buffer_.begin());

  for (size_t w = 0; w < windows_.size(); ++w) {
    Collector c;
    if (windows_[w]->measure() == Measure::kCount) {
      windows_[w]->TriggerWindows(c, last_cwm_, cwm);
      for (const auto& [cs, ce] : c.windows) {
        EmitCountWindow(static_cast<int>(w), cs, ce, false);
      }
    } else {
      windows_[w]->TriggerWindows(c, last_wm_, wm);
      for (const auto& [s, e] : c.windows) {
        EmitTimeWindow(static_cast<int>(w), s, e, false);
      }
    }
  }
  last_wm_ = wm;
  last_cwm_ = std::max(last_cwm_, cwm);
  Evict(wm);
}

Value AggregateTreeOperator::ComputeWindow(size_t agg, Time start,
                                           Time end) const {
  auto lo = std::lower_bound(
      buffer_.begin(), buffer_.end(), start,
      [](const Tuple& a, Time x) { return a.ts < x; });
  auto hi = std::lower_bound(
      buffer_.begin(), buffer_.end(), end,
      [](const Tuple& a, Time x) { return a.ts < x; });
  const size_t i = static_cast<size_t>(lo - buffer_.begin());
  const size_t j = static_cast<size_t>(hi - buffer_.begin());
  return aggs_[agg]->Lower(trees_[agg].Query(i, j));
}

void AggregateTreeOperator::EmitTimeWindow(int w, Time s, Time e,
                                           bool update) {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    WindowResult r;
    r.window_id = w;
    r.agg_id = static_cast<int>(a);
    r.start = s;
    r.end = e;
    r.value = ComputeWindow(a, s, e);
    r.is_update = update;
    results_.push_back(std::move(r));
  }
}

void AggregateTreeOperator::EmitCountWindow(int w, int64_t cs, int64_t ce,
                                            bool update) {
  const int64_t lo = std::max(cs - evicted_count_, int64_t{0});
  const int64_t hi =
      std::min(ce - evicted_count_, static_cast<int64_t>(buffer_.size()));
  for (size_t a = 0; a < aggs_.size(); ++a) {
    WindowResult r;
    r.window_id = w;
    r.agg_id = static_cast<int>(a);
    r.start = cs;
    r.end = ce;
    r.value = aggs_[a]->Lower(
        lo < hi ? trees_[a].Query(static_cast<size_t>(lo),
                                  static_cast<size_t>(hi))
                : Partial{});
    r.is_update = update;
    results_.push_back(std::move(r));
  }
}

void AggregateTreeOperator::Evict(Time wm) {
  Time safe = wm;
  for (const WindowPtr& w : windows_) {
    if (w->measure() == Measure::kCount) continue;
    const Time p = w->EvictionSafePoint(wm);
    if (p == kNoTime) return;
    safe = std::min(safe, p);
  }
  int64_t safe_rank = last_cwm_;
  bool has_count = false;
  for (const WindowPtr& w : windows_) {
    if (w->measure() != Measure::kCount) continue;
    has_count = true;
    safe_rank = std::min(safe_rank, w->EvictionSafePoint(last_cwm_));
  }
  const Time bound = safe - allowed_lateness_;
  size_t k = 0;
  while (k < buffer_.size() && buffer_[k].ts < bound) {
    if (has_count && evicted_count_ + static_cast<int64_t>(k) >= safe_rank) {
      break;
    }
    ++k;
  }
  if (k > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(k));
    evicted_count_ += static_cast<int64_t>(k);
    for (FlatFat& tree : trees_) tree.PopFront(k);
  }
  for (const WindowPtr& w : windows_) w->EvictState(bound);
}

std::vector<WindowResult> AggregateTreeOperator::TakeResults() {
  std::vector<WindowResult> out;
  out.swap(results_);
  return out;
}

size_t AggregateTreeOperator::MemoryUsageBytes() const {
  size_t bytes = buffer_.size() * MemoryModel::kTupleBytes;
  for (const FlatFat& tree : trees_) bytes += tree.MemoryBytes();
  return bytes;
}

}  // namespace scotty
