#ifndef SCOTTY_STATE_SNAPSHOT_H_
#define SCOTTY_STATE_SNAPSHOT_H_

// Versioned, checksummed snapshot container (DESIGN.md §7).
//
// Layout of a snapshot blob / file:
//
//   offset  size  field
//   0       8     magic "SCTYSNAP"
//   8       4     format version (little-endian u32)
//   12      8     payload size in bytes (little-endian u64)
//   20      8     FNV-1a 64 checksum of the payload (little-endian u64)
//   28      n     payload
//
// The payload itself starts with checkpoint metadata (source offset, seq
// counter, barrier index) and the operator's Name(), then the opaque
// operator state produced by WindowOperator::SerializeState. Parsing
// verifies magic, version, size, and checksum before any state bytes are
// interpreted, so a truncated or bit-flipped file fails loudly up front.

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "state/serde.h"

namespace scotty {
namespace state {

inline constexpr char kSnapshotMagic[8] = {'S', 'C', 'T', 'Y',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Pipeline-level progress recorded alongside operator state, enough to
/// resume the source stream exactly where the checkpoint was taken.
struct CheckpointMetadata {
  uint64_t source_offset = 0;  // tuples consumed from the source so far
  uint64_t next_seq = 0;       // next tuple sequence number to assign
  Time max_ts = kNoTime;       // max event time observed
  Time last_wm = kNoTime;      // last watermark fed to the operator
  uint64_t barrier_index = 0;  // how many checkpoints preceded this one
};

/// FNV-1a 64-bit checksum.
uint64_t Fnv1a64(const uint8_t* data, size_t size);

/// Wraps (metadata, operator name, state bytes) in the container format.
std::vector<uint8_t> BuildSnapshot(const CheckpointMetadata& meta,
                                   const std::string& operator_name,
                                   const std::vector<uint8_t>& state);

/// Verifies the container (magic, version, size, checksum) and splits it
/// back into metadata + operator name + state bytes. Returns false without
/// touching outputs on any validation failure.
bool ParseSnapshot(const std::vector<uint8_t>& blob, CheckpointMetadata* meta,
                   std::string* operator_name, std::vector<uint8_t>* state);

/// Atomic-ish file persistence: write to `<path>.tmp`, then rename. Returns
/// false on I/O failure.
bool WriteSnapshotFile(const std::string& path,
                       const std::vector<uint8_t>& blob);

/// Reads a snapshot file whole. Returns false if missing/unreadable.
bool ReadSnapshotFile(const std::string& path, std::vector<uint8_t>* blob);

}  // namespace state
}  // namespace scotty

#endif  // SCOTTY_STATE_SNAPSHOT_H_
