#ifndef SCOTTY_RUNTIME_PARALLEL_EXECUTOR_H_
#define SCOTTY_RUNTIME_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/window_operator.h"

namespace scotty {

/// Single-producer single-consumer ring buffer carrying tuples and
/// watermarks between the source thread and one worker.
///
/// Both endpoints keep a cached copy of the other side's position and only
/// refresh it (an acquire load on the shared atomic) when the cache says
/// the queue is full/empty; combined with the block transfers of
/// PushBatch/PopBatch this amortizes the atomic traffic to a handful of
/// operations per batch instead of two per item.
class SpscQueue {
 public:
  /// `capacity` must be a power of two (the ring index is computed with a
  /// mask); violating this aborts with a diagnostic.
  explicit SpscQueue(size_t capacity = 1 << 14);

  struct Item {
    enum class Kind : uint8_t { kTuple, kWatermark, kSnapshot, kStop };
    Kind kind = Kind::kTuple;
    Tuple tuple{};
    Time watermark = kNoTime;
  };

  size_t capacity() const { return ring_.size(); }

  /// Blocks (spins + yields) while full.
  void Push(const Item& item);
  /// Returns false when empty.
  bool Pop(Item* out);

  /// Pushes all `n` items in ring-sized chunks with one release store per
  /// chunk; blocks (spins + yields) while the ring is full.
  void PushBatch(const Item* items, size_t n);
  /// Pops up to `max_n` items into `out` with one acquire load and one
  /// release store; returns the number popped (0 when empty).
  size_t PopBatch(Item* out, size_t max_n);

 private:
  std::vector<Item> ring_;
  size_t mask_;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer position
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer position
  // Position caches, each owned exclusively by one side (producer caches the
  // consumer's head, consumer caches the producer's tail). Both are always
  // <= the true value, so capacity/occupancy estimates are conservative.
  alignas(64) uint64_t head_cache_ = 0;  // producer-owned
  alignas(64) uint64_t tail_cache_ = 0;  // consumer-owned
};

/// Key-partitioned parallel execution (paper Section 5.3,
/// "Parallelization", and the scaling experiment of Section 6.4): tuples
/// are routed to workers by key hash, watermarks are broadcast, and every
/// worker runs an independent window-operator instance — the standard
/// intra-node parallelism of Flink/Spark/Storm.
///
/// Ingestion is batched on both sides of the queue: the producer stages
/// tuples per worker and transfers them in blocks; each worker pops blocks
/// and feeds contiguous tuple runs to WindowOperator::ProcessTupleBatch.
/// Watermarks flush all staging buffers first, so the per-worker item order
/// is identical to unbatched execution.
class ParallelExecutor {
 public:
  struct Options {
    /// Ring capacity per worker queue; must be a power of two.
    size_t queue_capacity = 1 << 14;
    /// Producer-side staging batch per worker (also the workers' pop batch).
    /// 0 or 1 disables staging: every tuple is pushed individually.
    size_t batch_size = 256;
  };

  ParallelExecutor(size_t num_workers,
                   std::function<std::unique_ptr<WindowOperator>()> factory);
  ParallelExecutor(size_t num_workers,
                   std::function<std::unique_ptr<WindowOperator>()> factory,
                   Options opts);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  void Start();
  void Push(const Tuple& t);
  /// Routes a block of tuples through the per-worker staging buffers.
  void PushBatch(std::span<const Tuple> tuples);
  void PushWatermark(Time wm);
  /// Sends stop markers, drains, and joins all workers. Idempotent: a
  /// second call (e.g. the destructor after an error-path Finish) is a
  /// no-op, so error handling can always call Finish unconditionally.
  void Finish();

  /// Snapshot barrier (DESIGN.md §7): broadcasts a barrier marker to every
  /// worker queue — after flushing staged tuples, so the barrier sits at
  /// the exact point of the item stream the caller chose (canonically right
  /// after PushWatermark) — then blocks until every worker has serialized
  /// its operator at that point. Each worker state is serialized inside its
  /// own thread between two items, never concurrently with processing, so
  /// the captured state is exactly what a sequential per-worker run would
  /// have had. Returns one combined tagged v2 blob (worker count +
  /// length-prefixed per-worker states); empty on failure (an operator
  /// without snapshot support).
  std::vector<uint8_t> SnapshotAtBarrier();

  /// Restores every worker operator from a blob produced by
  /// SnapshotAtBarrier. Must be called before Start(). When the blob's
  /// worker count differs from this executor's, the per-worker states are
  /// re-partitioned onto the new topology (rescaled restore) — possible
  /// exactly when every worker ran a KeyedWindowOperator, whose state
  /// decomposes into per-key units that re-route by the same hash used for
  /// live tuples; non-keyed states still fail with a worker-count mismatch.
  /// On any decode failure all operators are rebuilt fresh from the factory
  /// (never half-restored) and false is returned with `*error` set.
  bool RestoreOperators(const std::vector<uint8_t>& blob,
                        std::string* error = nullptr);

  uint64_t TotalResults() const { return total_results_.load(); }
  size_t MemoryUsageBytes() const;
  size_t num_workers() const { return workers_.size(); }
  const Options& options() const { return opts_; }

  /// The key-routing function: which of `workers` queues a key hashes to.
  /// Exposed so rescaled restore (and its tests) re-bucket per-key state
  /// with the exact same placement live tuples will use afterwards.
  static size_t WorkerIndexForKey(int64_t key, size_t workers) {
    return static_cast<size_t>(
               static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ULL >> 32) %
           workers;
  }

 private:
  void WorkerLoop(size_t i);
  size_t WorkerFor(const Tuple& t) const;
  void FlushStaging(size_t w);
  void FlushAllStaging();

  Options opts_;
  std::function<std::unique_ptr<WindowOperator>()> factory_;
  std::vector<std::unique_ptr<WindowOperator>> operators_;
  std::vector<std::unique_ptr<SpscQueue>> queues_;
  std::vector<std::vector<SpscQueue::Item>> staging_;  // producer-owned
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> total_results_{0};
  bool started_ = false;
  bool finished_ = false;
  // In-flight snapshot barrier: the producer parks on snap_remaining_ while
  // each worker serializes into its slot. Only one barrier is in flight at
  // a time (SnapshotAtBarrier blocks), so plain slots + one atomic counter
  // (release on the worker side, acquire on the producer side) suffice.
  std::vector<std::vector<uint8_t>> snap_slots_;
  std::atomic<size_t> snap_remaining_{0};
};

/// Assembles per-worker serialized states into the combined tagged blob
/// format SnapshotAtBarrier produces (tag + version + count + one
/// length-prefixed state per worker). Exposed so deterministic harnesses
/// can build topology blobs without running worker threads.
std::vector<uint8_t> BuildParallelSnapshotBlob(
    const std::vector<std::vector<uint8_t>>& worker_states);

/// Inverse of BuildParallelSnapshotBlob: validates the tag/version/framing
/// and splits the blob back into per-worker states. Returns false with
/// `*error` set on foreign or truncated bytes.
bool ParseParallelSnapshotBlob(const std::vector<uint8_t>& blob,
                               std::vector<std::vector<uint8_t>>* out,
                               std::string* error);

/// Re-partitions per-worker keyed operator states (the decoded payloads of
/// a SnapshotAtBarrier blob taken with W workers) onto `new_workers`
/// buckets: every state must parse as a KeyedWindowOperator v2 payload; the
/// per-key units and pending results are re-routed by
/// ParallelExecutor::WorkerIndexForKey and reassembled into one canonical
/// state per new worker (empty workers get an empty keyed state carrying
/// the merged watermark). Returns false with `*error` set when any state is
/// not keyed — non-keyed operator state has no per-key decomposition.
bool RepartitionKeyedStates(
    const std::vector<std::vector<uint8_t>>& worker_states,
    size_t new_workers, std::vector<std::vector<uint8_t>>* out,
    std::string* error);

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_PARALLEL_EXECUTOR_H_
