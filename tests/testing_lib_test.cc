// Tests for the shared testing library itself: the stream generator's
// determinism and disorder bound, query-spec round-tripping, and the
// differential harness agreeing on hand-picked configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/query_spec.h"
#include "testing/stream_gen.h"

namespace scotty {
namespace {

using testing::DifferentialConfig;
using testing::DifferentialOutcome;
using testing::GenerateStream;
using testing::ParseWindowSpecs;
using testing::RandomConfig;
using testing::RunDifferential;
using testing::StreamSpec;
using testing::WindowSpec;
using testing::WindowSpecsToString;

TEST(StreamGen, DeterministicPerSeed) {
  StreamSpec spec;
  spec.seed = 99;
  spec.num_tuples = 500;
  spec.ooo_fraction = 0.3;
  spec.max_delay = 20;
  spec.punctuation_probability = 0.05;
  const std::vector<Tuple> a = GenerateStream(spec);
  const std::vector<Tuple> b = GenerateStream(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].is_punctuation, b[i].is_punctuation);
  }
  spec.seed = 100;
  const std::vector<Tuple> c = GenerateStream(spec);
  bool different = c.size() != a.size();
  for (size_t i = 0; !different && i < a.size(); ++i) {
    different = a[i].ts != c[i].ts || a[i].value != c[i].value;
  }
  EXPECT_TRUE(different);
}

TEST(StreamGen, DisorderRespectsMaxLateness) {
  StreamSpec spec;
  spec.seed = 3;
  spec.num_tuples = 3000;
  spec.step_lo = 0;
  spec.step_hi = 3;
  spec.ooo_fraction = 0.4;
  spec.max_delay = 25;
  spec.burst_probability = 0.05;
  spec.gap_probability = 0.02;
  const std::vector<Tuple> arrived = GenerateStream(spec);
  ASSERT_EQ(arrived.size(), 3000u);
  Time max_ts = kNoTime;
  bool any_ooo = false;
  for (const Tuple& t : arrived) {
    if (max_ts != kNoTime) {
      any_ooo |= t.ts < max_ts;
      EXPECT_LE(max_ts - t.ts, spec.MaxLateness());
    }
    max_ts = std::max(max_ts, t.ts);
  }
  EXPECT_TRUE(any_ooo);
}

TEST(StreamGen, PunctuationSharesPrecedingTimestamp) {
  StreamSpec spec;
  spec.seed = 11;
  spec.num_tuples = 800;
  spec.punctuation_probability = 0.1;
  const std::vector<Tuple> stream = GenerateStream(spec);
  size_t punct = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (!stream[i].is_punctuation) continue;
    ++punct;
    ASSERT_GT(i, 0u);
    EXPECT_EQ(stream[i].ts, stream[i - 1].ts);
    EXPECT_FALSE(stream[i - 1].is_punctuation);
  }
  EXPECT_GT(punct, 0u);
}

TEST(QuerySpec, RoundTripsEveryKind) {
  const std::string text =
      "tumbling:15,sliding:30:10,session:20,ctumbling:5,csliding:8:3,punct";
  std::vector<WindowSpec> specs;
  ASSERT_TRUE(ParseWindowSpecs(text, &specs));
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(WindowSpecsToString(specs), text);
  for (const WindowSpec& spec : specs) {
    EXPECT_NE(spec.Instantiate(), nullptr) << spec.ToString();
  }
}

TEST(QuerySpec, RejectsMalformedSpecs) {
  std::vector<WindowSpec> specs;
  EXPECT_FALSE(ParseWindowSpecs("", &specs));
  EXPECT_FALSE(ParseWindowSpecs("bogus:10", &specs));
  EXPECT_FALSE(ParseWindowSpecs("tumbling", &specs));
  EXPECT_FALSE(ParseWindowSpecs("tumbling:0", &specs));
  EXPECT_FALSE(ParseWindowSpecs("tumbling:-5", &specs));
  EXPECT_FALSE(ParseWindowSpecs("sliding:30", &specs));
  EXPECT_FALSE(ParseWindowSpecs("punct:5", &specs));
  EXPECT_FALSE(ParseWindowSpecs("tumbling:10,,", &specs));
}

DifferentialConfig HandConfig(const std::string& queries,
                              std::vector<std::string> aggs, uint64_t seed,
                              int n) {
  DifferentialConfig cfg;
  EXPECT_TRUE(ParseWindowSpecs(queries, &cfg.windows));
  cfg.aggs = std::move(aggs);
  cfg.stream.seed = seed;
  cfg.stream.num_tuples = n;
  return cfg;
}

TEST(Differential, AgreesOnInOrderMixedQueries) {
  DifferentialConfig cfg =
      HandConfig("tumbling:10,sliding:25:7,session:12", {"sum", "max"}, 5, 400);
  const DifferentialOutcome o = RunDifferential(cfg);
  EXPECT_TRUE(o.ok) << o.detail;
  EXPECT_GT(o.comparisons, 0u);
}

TEST(Differential, AgreesOnOutOfOrderCountAndTimeWindows) {
  DifferentialConfig cfg =
      HandConfig("ctumbling:7,csliding:9:4,tumbling:20", {"sum", "median"},
                 17, 600);
  cfg.stream.ooo_fraction = 0.3;
  cfg.stream.max_delay = 15;
  cfg.wm_every = 64;
  const DifferentialOutcome o = RunDifferential(cfg);
  EXPECT_TRUE(o.ok) << o.detail;
  EXPECT_GT(o.comparisons, 0u);
}

TEST(Differential, AgreesOnPunctuationWindows) {
  DifferentialConfig cfg =
      HandConfig("punct,session:15", {"sum", "count"}, 23, 500);
  cfg.stream.punctuation_probability = 0.08;
  cfg.stream.ooo_fraction = 0.1;
  cfg.stream.max_delay = 10;
  const DifferentialOutcome o = RunDifferential(cfg);
  EXPECT_TRUE(o.ok) << o.detail;
  EXPECT_GT(o.comparisons, 0u);
}

TEST(Differential, RandomConfigsReplayFromTheirFlags) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const DifferentialConfig cfg = RandomConfig(seed, 300);
    ASSERT_FALSE(cfg.windows.empty());
    ASSERT_FALSE(cfg.aggs.empty());
    const std::string flags = cfg.ToFlags();
    EXPECT_NE(flags.find("--seed="), std::string::npos);
    EXPECT_NE(flags.find("--queries="), std::string::npos);
    // The serialized query list parses back to the same window set.
    const std::string key = "--queries=";
    const size_t start = flags.find(key) + key.size();
    const std::string queries =
        flags.substr(start, flags.find(' ', start) - start);
    std::vector<WindowSpec> parsed;
    ASSERT_TRUE(ParseWindowSpecs(queries, &parsed)) << queries;
    EXPECT_EQ(WindowSpecsToString(parsed), WindowSpecsToString(cfg.windows));
  }
}

TEST(Differential, OracleSeesTheResultsTechniquesReport) {
  // A seed-derived config with every window kind forced in: oracle coverage
  // beyond what RandomConfig happens to draw for small seeds.
  DifferentialConfig cfg = HandConfig(
      "tumbling:12,sliding:18:5,session:10,ctumbling:6,punct",
      {"avg", "min-count"}, 31, 700);
  cfg.stream.punctuation_probability = 0.05;
  cfg.stream.gap_probability = 0.03;
  cfg.stream.gap_length = 40;
  cfg.stream.ooo_fraction = 0.2;
  cfg.stream.max_delay = 12;
  cfg.wm_every = 128;
  const DifferentialOutcome o = RunDifferential(cfg);
  EXPECT_TRUE(o.ok) << o.detail;
}

}  // namespace
}  // namespace scotty
