#include "runtime/overload.h"

#include <algorithm>

namespace scotty {

BackpressureController::BackpressureController(BackpressureOptions opts)
    : opts_(opts) {
  // Keep the thresholds ordered even when callers hand in odd values, so
  // the policy stays monotone: resume <= backpressure <= shed.
  opts_.shed_fraction = std::clamp(opts_.shed_fraction, 0.0, 1.0);
  opts_.backpressure_fraction =
      std::clamp(opts_.backpressure_fraction, 0.0, opts_.shed_fraction);
  opts_.resume_fraction =
      std::clamp(opts_.resume_fraction, 0.0, opts_.backpressure_fraction);
}

Admission BackpressureController::Decide(double queue_fraction,
                                         size_t persist_queue_depth,
                                         const CheckpointHealthReport& health) {
  const bool persist_lag =
      opts_.persist_queue_soft_limit > 0 &&
      persist_queue_depth >= opts_.persist_queue_soft_limit;
  // A degraded/alarmed coordinator is already handling its own trouble by
  // walking the persistence ladder; it contributes pressure only through
  // the persist queue actually backing up, never directly — shedding data
  // cannot fix a broken disk.
  (void)health;

  if (shedding_) {
    if (queue_fraction >= opts_.resume_fraction) {
      ++shed_decisions_;
      return Admission::kShed;
    }
    shedding_ = false;  // drained past the hysteresis floor; resume
  }
  if (queue_fraction >= opts_.shed_fraction) {
    shedding_ = true;
    ++shed_decisions_;
    return Admission::kShed;
  }
  if (queue_fraction >= opts_.backpressure_fraction || persist_lag) {
    ++backpressure_decisions_;
    return Admission::kBackpressure;
  }
  return Admission::kAccept;
}

}  // namespace scotty
