#ifndef SCOTTY_WINDOWS_MULTI_MEASURE_H_
#define SCOTTY_WINDOWS_MULTI_MEASURE_H_

#include <algorithm>
#include <string>

#include "windows/window.h"

namespace scotty {

/// Multi-measure window, the paper's forward-context-aware example
/// (Section 4.4): "output the last N tuples (count-measure) every T time
/// units (time-measure)". The window *end* is a context-free time edge, but
/// the window *start* is only known once all tuples up to the end have been
/// processed — it is the timestamp of the N-th most recent tuple, derived
/// from the aggregate store at trigger time.
///
/// Because starts generally fall strictly inside slices, triggering requests
/// slice splits, and the workload characterization therefore stores tuples
/// whenever an FCA window is active (Fig. 4, in-order branch).
class LastNEveryTWindow : public ContextAwareWindow {
 public:
  LastNEveryTWindow(int64_t n, Time period,
                    Measure measure = Measure::kEventTime)
      : n_(n), period_(period), measure_(measure) {}

  int64_t n() const { return n_; }
  Time period() const { return period_; }
  Measure measure() const override { return measure_; }
  ContextClass context_class() const override {
    return ContextClass::kForwardContextAware;
  }

  ContextModifications ProcessContext(const Tuple&) override {
    return {};  // edges are derived lazily at trigger time
  }

  Time GetNextEdge(Time t) const override {
    return (t / period_ + 1) * period_;
  }

  Time LastEdgeAtOrBefore(Time t) const override {
    return (t / period_) * period_;
  }

  bool IsWindowEdge(Time t) const override { return t % period_ == 0; }

  void TriggerWindows(WindowCallback& cb, Time prev_wm,
                      Time curr_wm) override {
    for (Time end = GetNextEdge(prev_wm); end <= curr_wm; end += period_) {
      // The forward context: the N-th most recent tuple before `end`.
      const Time start = view_ ? view_->NthRecentTupleTime(end, n_) : kNoTime;
      if (start == kNoTime) continue;  // fewer than N tuples so far
      cb.OnWindow(start, end);
    }
  }

  Time EvictionSafePoint(Time wm) const override {
    // Future windows look back N tuples from edges after wm; as tuples only
    // accumulate, the N-th most recent tuple before wm is a safe lower
    // bound for every future window start.
    if (!view_) return kNoTime;
    const Time t = view_->NthRecentTupleTime(wm, n_);
    return t == kNoTime ? kNoTime : std::min(t, wm);
  }

  std::string Name() const override {
    return "last-" + std::to_string(n_) + "-every-" + std::to_string(period_);
  }

 private:
  int64_t n_;
  Time period_;
  Measure measure_;
};

}  // namespace scotty

#endif  // SCOTTY_WINDOWS_MULTI_MEASURE_H_
