#ifndef SCOTTY_BASELINES_BUCKETS_H_
#define SCOTTY_BASELINES_BUCKETS_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "core/window_operator.h"
#include "windows/window.h"

namespace scotty {

/// Buckets baseline (paper Section 3.3, Table 1 Rows 3-4): the
/// bucket-per-window approach of Li et al.'s Window-ID [31-33], as adopted
/// by Apache Flink. Every window instance is an independent bucket; a tuple
/// is assigned to ALL buckets whose window contains it (no aggregate
/// sharing), each assignment costing one incremental aggregation step. The
/// final aggregate of every bucket is pre-computed, which gives buckets the
/// lowest output latency of all techniques, but overlapping windows make the
/// per-tuple cost proportional to the number of concurrent windows — the
/// throughput bottleneck the paper measures.
///
/// Aggregate buckets store one partial per bucket; tuple buckets also store
/// the tuples (required for holistic / non-commutative aggregations and for
/// count-based windows on out-of-order streams), replicating tuples across
/// overlapping buckets. Session windows use Flink-style merging buckets.
class BucketsOperator : public WindowOperator {
 public:
  enum class BucketKind {
    kAuto,       // tuples retained only when the workload needs them
    kAggregate,  // never retain tuples (Table 1 Row 3)
    kTuple,      // always retain tuples (Table 1 Row 4)
  };

  explicit BucketsOperator(bool stream_in_order = false,
                           Time allowed_lateness = 0,
                           BucketKind kind = BucketKind::kAuto);

  int AddAggregation(AggregateFunctionPtr fn);

  /// Supports tumbling/sliding windows (time or count measure) and session
  /// windows. Punctuation / multi-measure windows are outside the WID model.
  int AddWindow(WindowPtr w);

  void ProcessTuple(const Tuple& t) override;
  void ProcessWatermark(Time wm) override;
  std::vector<WindowResult> TakeResults() override;
  size_t MemoryUsageBytes() const override;
  std::string Name() const override { return "buckets"; }

  size_t TotalBuckets() const;

  bool SupportsSnapshot() const override { return true; }

  void SerializeState(state::Writer& w) const override {
    w.Tag(0x424B5453);  // "BKTS"
    w.U64(buckets_.size());
    for (const auto& per_window : buckets_) {
      w.U64(per_window.size());
      for (const auto& [start, b] : per_window) {
        w.I64(start);
        w.I64(b.start);
        w.I64(b.end);
        w.U64(b.count);
        w.U64(b.aggs.size());
        for (const Partial& p : b.aggs) p.Serialize(w);
        w.U64(b.tuples.size());
        for (const Tuple& t : b.tuples) state::SerializeTuple(w, t);
      }
    }
    w.U64(count_buffer_.size());
    for (const Tuple& t : count_buffer_) state::SerializeTuple(w, t);
    w.I64(evicted_count_);
    w.I64(max_ts_);
    w.I64(last_wm_);
    w.I64(wm_floor_);
    w.I64(last_cwm_);
    for (const WindowPtr& win : windows_) win->SerializeState(w);
    w.U64(results_.size());
    for (const WindowResult& res : results_) SerializeWindowResult(w, res);
  }

  void DeserializeState(state::Reader& r) override {
    r.Tag(0x424B5453);
    const uint64_t nwin = r.U64();
    if (nwin != buckets_.size()) {
      r.Fail();
      return;
    }
    for (auto& per_window : buckets_) {
      per_window.clear();
      const uint64_t nb = r.U64();
      if (nb > r.remaining()) {
        r.Fail();
        return;
      }
      for (uint64_t i = 0; i < nb && r.ok(); ++i) {
        const Time key = r.I64();
        Bucket b;
        b.start = r.I64();
        b.end = r.I64();
        b.count = r.U64();
        const uint64_t na = r.U64();
        if (na > r.remaining()) {
          r.Fail();
          return;
        }
        b.aggs.resize(static_cast<size_t>(na));
        for (Partial& p : b.aggs) p.Deserialize(r);
        const uint64_t nt = r.U64();
        if (nt > r.remaining()) {
          r.Fail();
          return;
        }
        b.tuples.reserve(static_cast<size_t>(nt));
        for (uint64_t j = 0; j < nt && r.ok(); ++j) {
          b.tuples.push_back(state::DeserializeTuple(r));
        }
        per_window.emplace(key, std::move(b));
      }
    }
    const uint64_t nc = r.U64();
    if (nc > r.remaining()) {
      r.Fail();
      return;
    }
    count_buffer_.clear();
    for (uint64_t i = 0; i < nc && r.ok(); ++i) {
      count_buffer_.push_back(state::DeserializeTuple(r));
    }
    evicted_count_ = r.I64();
    max_ts_ = r.I64();
    last_wm_ = r.I64();
    wm_floor_ = r.I64();
    last_cwm_ = r.I64();
    for (const WindowPtr& win : windows_) win->DeserializeState(r);
    const uint64_t m = r.U64();
    if (m > r.remaining()) {
      r.Fail();
      return;
    }
    results_.clear();
    for (uint64_t i = 0; i < m && r.ok(); ++i) {
      results_.push_back(DeserializeWindowResult(r));
    }
  }

 private:
  struct Bucket {
    Time start = 0;
    Time end = 0;
    std::vector<Partial> aggs;
    std::vector<Tuple> tuples;  // tuple buckets only
    uint64_t count = 0;
  };

  bool StoreTuples() const;
  void AssignTuple(size_t w, const Tuple& t, Time key_start, Time end);
  void AssignToTimeWindows(size_t w, const Tuple& t);
  void AssignToCountBuckets(size_t w, int64_t rank, const Tuple& t);
  void RebuildCountBucketsFrom(size_t w, int64_t rank);
  void ApplySessionMods(size_t w, const ContextModifications& mods);
  void TriggerAll(Time wm);
  void EmitBucket(size_t w, Time start, bool update, Time end_hint);
  void Evict(Time wm);

  bool stream_in_order_;
  Time allowed_lateness_;
  BucketKind kind_;
  std::vector<AggregateFunctionPtr> aggs_;
  std::vector<WindowPtr> windows_;
  std::vector<std::map<Time, Bucket>> buckets_;  // per window, keyed by start
  std::deque<Tuple> count_buffer_;  // global sorted buffer for count ranks
  bool has_count_windows_ = false;
  bool any_non_commutative_ = false;
  bool any_holistic_ = false;
  int64_t evicted_count_ = 0;
  Time max_ts_ = kNoTime;
  Time last_wm_ = kNoTime;
  Time wm_floor_ = kNoTime;  // initial last_wm_
  int64_t last_cwm_ = 0;
  std::vector<WindowResult> results_;
};

}  // namespace scotty

#endif  // SCOTTY_BASELINES_BUCKETS_H_
