// Tests for the workload characterization and the adaptive decisions of
// paper Figures 4 (tuple storage), 5 (splits), and 6 (removal strategy).

#include <memory>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/workload.h"
#include "windows/multi_measure.h"
#include "windows/punctuation.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

WorkloadCharacteristics Make(std::vector<WindowPtr> windows,
                             std::vector<std::string> agg_names,
                             bool in_order) {
  std::vector<AggregateFunctionPtr> aggs;
  for (const std::string& n : agg_names) aggs.push_back(MakeAggregation(n));
  return Characterize(windows, aggs, in_order);
}

// ------------------- Figure 4: storing tuples vs aggregates -------------------

TEST(DecisionTree, InOrderContextFreeDropsTuples) {
  auto w = Make({std::make_shared<TumblingWindow>(10)}, {"sum"}, true);
  EXPECT_FALSE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, InOrderSessionDropsTuples) {
  auto w = Make({std::make_shared<SessionWindow>(10)}, {"sum"}, true);
  EXPECT_FALSE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, InOrderPunctuationDropsTuples) {
  // FCF windows on in-order streams never split retroactively.
  auto w = Make({std::make_shared<PunctuationWindow>()}, {"sum"}, true);
  EXPECT_FALSE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, InOrderFcaStoresTuples) {
  auto w = Make({std::make_shared<LastNEveryTWindow>(10, 100)}, {"sum"}, true);
  EXPECT_TRUE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, OutOfOrderContextFreeCommutativeDropsTuples) {
  auto w = Make({std::make_shared<SlidingWindow>(20, 5)}, {"sum", "avg"},
                false);
  EXPECT_FALSE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, OutOfOrderNonCommutativeStoresTuples) {
  auto w = Make({std::make_shared<TumblingWindow>(10)}, {"concat"}, false);
  EXPECT_TRUE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, OutOfOrderSessionDropsTuples) {
  // The paper's session exception: context aware, but merge-only.
  auto w = Make({std::make_shared<SessionWindow>(10)}, {"sum"}, false);
  EXPECT_FALSE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, OutOfOrderPunctuationStoresTuples) {
  auto w = Make({std::make_shared<PunctuationWindow>()}, {"sum"}, false);
  EXPECT_TRUE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, OutOfOrderCountMeasureStoresTuples) {
  auto w = Make({std::make_shared<TumblingWindow>(10, Measure::kCount)},
                {"sum"}, false);
  EXPECT_TRUE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, MixedQueriesTakeTheConservativeBranch) {
  auto w = Make({std::make_shared<TumblingWindow>(10),
                 std::make_shared<PunctuationWindow>()},
                {"sum"}, false);
  EXPECT_TRUE(DecideStorage(w).store_tuples);
}

TEST(DecisionTree, ReasonsAreHumanReadable) {
  auto w = Make({std::make_shared<TumblingWindow>(10)}, {"concat"}, false);
  EXPECT_NE(DecideStorage(w).reason.find("non-commutative"),
            std::string::npos);
}

// ------------------- Figure 5: splits -------------------

TEST(SplitDecision, InOrderOnlyFcaSplits) {
  EXPECT_FALSE(SplitsPossible(
      Make({std::make_shared<TumblingWindow>(10)}, {"sum"}, true)));
  EXPECT_FALSE(SplitsPossible(
      Make({std::make_shared<PunctuationWindow>()}, {"sum"}, true)));
  EXPECT_FALSE(SplitsPossible(
      Make({std::make_shared<SessionWindow>(5)}, {"sum"}, true)));
  EXPECT_TRUE(SplitsPossible(
      Make({std::make_shared<LastNEveryTWindow>(10, 100)}, {"sum"}, true)));
}

TEST(SplitDecision, OutOfOrderContextAwareSplitsExceptSessions) {
  EXPECT_FALSE(SplitsPossible(
      Make({std::make_shared<TumblingWindow>(10)}, {"sum"}, false)));
  EXPECT_TRUE(SplitsPossible(
      Make({std::make_shared<PunctuationWindow>()}, {"sum"}, false)));
  EXPECT_FALSE(SplitsPossible(
      Make({std::make_shared<SessionWindow>(5)}, {"sum"}, false)));
}

// ------------------- Figure 6: removing tuples -------------------

TEST(RemovalDecision, NotNeededWithoutCountMeasure) {
  EXPECT_EQ(DecideRemoval(
                Make({std::make_shared<TumblingWindow>(10)}, {"sum"}, false)),
            RemovalStrategy::kNotNeeded);
}

TEST(RemovalDecision, NotNeededOnInOrderStreams) {
  EXPECT_EQ(
      DecideRemoval(Make({std::make_shared<TumblingWindow>(10, Measure::kCount)},
                         {"sum"}, true)),
      RemovalStrategy::kNotNeeded);
}

TEST(RemovalDecision, InvertibleUsesIncrementalUpdate) {
  EXPECT_EQ(
      DecideRemoval(Make({std::make_shared<TumblingWindow>(10, Measure::kCount)},
                         {"sum", "avg"}, false)),
      RemovalStrategy::kIncrementalInvert);
}

TEST(RemovalDecision, NonInvertibleRecomputes) {
  EXPECT_EQ(
      DecideRemoval(Make({std::make_shared<TumblingWindow>(10, Measure::kCount)},
                         {"sum", "max"}, false)),
      RemovalStrategy::kRecompute);
}

// ------------------- Characterization plumbing -------------------

TEST(Characterize, AggregateProperties) {
  auto w = Make({std::make_shared<TumblingWindow>(10)},
                {"sum", "median", "max"}, false);
  EXPECT_TRUE(w.all_commutative);
  EXPECT_FALSE(w.all_invertible);  // max is not invertible
  EXPECT_TRUE(w.any_holistic);     // median
}

TEST(Characterize, NullWindowsIgnored) {
  std::vector<WindowPtr> windows = {nullptr,
                                    std::make_shared<TumblingWindow>(10)};
  std::vector<AggregateFunctionPtr> aggs = {MakeAggregation("sum")};
  auto w = Characterize(windows, aggs, true);
  EXPECT_FALSE(w.any_count_measure);
  EXPECT_FALSE(DecideStorage(w).store_tuples);
}

TEST(Characterize, SessionAndNonSessionContextAwareTracked) {
  auto w = Make({std::make_shared<SessionWindow>(5),
                 std::make_shared<PunctuationWindow>()},
                {"sum"}, false);
  EXPECT_TRUE(w.any_session_window);
  EXPECT_TRUE(w.any_context_aware_non_session);
}

}  // namespace
}  // namespace scotty
