# Empty dependencies file for scotty_core_tests.
# This may be replaced when dependencies are built.
