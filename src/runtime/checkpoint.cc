#include "runtime/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <utility>

namespace scotty {

namespace {

int64_t CrashAfterFromEnv() {
  const char* env = std::getenv("SCOTTY_CRASH_AFTER");
  if (env == nullptr || *env == '\0') return -1;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0) return -1;
  return static_cast<int64_t>(v);
}

/// Operator names may be cached lazily (KeyedWindowOperator reports
/// "keyed" until its first per-key operator exists, "keyed-<inner>" after),
/// so a fresh factory instance can legitimately report a prefix of the
/// snapshotted name.
bool NamesCompatible(const std::string& snapshotted, const std::string& fresh) {
  if (snapshotted == fresh) return true;
  return snapshotted.size() > fresh.size() &&
         snapshotted.compare(0, fresh.size(), fresh) == 0;
}

std::string DlogPathForSnap(const std::string& snap_path) {
  constexpr char kSnap[] = ".snap";
  constexpr size_t kSnapLen = sizeof(kSnap) - 1;
  if (snap_path.size() <= kSnapLen ||
      snap_path.compare(snap_path.size() - kSnapLen, kSnapLen, kSnap) != 0) {
    return "";
  }
  return snap_path.substr(0, snap_path.size() - kSnapLen) + ".dlog";
}

}  // namespace

CheckpointCoordinator::CheckpointCoordinator(CheckpointOptions opts)
    : opts_(std::move(opts)), crash_after_(CrashAfterFromEnv()) {
  // Map the options onto the ladder's capability rungs. For a synchronous
  // coordinator the first three rungs all persist on the barrier path; the
  // rung still tracks what is being persisted (deltas vs full bases).
  if (opts_.incremental && opts_.full_snapshot_every > 1) {
    configured_mode_ =
        static_cast<int>(CheckpointPersistenceMode::kAsyncIncremental);
  } else if (opts_.async) {
    configured_mode_ = static_cast<int>(CheckpointPersistenceMode::kAsyncFull);
  } else {
    configured_mode_ = static_cast<int>(CheckpointPersistenceMode::kSyncFull);
  }
  mode_.store(configured_mode_, std::memory_order_relaxed);
  if (opts_.async) {
    persist_thread_ = std::thread([this] { PersistThreadMain(); });
  }
}

CheckpointCoordinator::~CheckpointCoordinator() {
  if (persist_thread_.joinable()) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (!abandoned_) {
        idle_cv_.wait(lk, [this] { return queue_.empty() && !busy_; });
      }
      stop_ = true;
    }
    cv_.notify_all();
    persist_thread_.join();
  }
  dlog_.Close();
}

std::string CheckpointCoordinator::PathPrefix() const {
  return opts_.directory + "/" + opts_.prefix;
}

std::string CheckpointCoordinator::SnapPath(uint64_t idx) const {
  return PathPrefix() + "-" + std::to_string(idx) + ".snap";
}

bool CheckpointCoordinator::EffectiveIncremental() const {
  if (!opts_.incremental || opts_.full_snapshot_every <= 1) return false;
  return mode_.load(std::memory_order_relaxed) ==
         static_cast<int>(CheckpointPersistenceMode::kAsyncIncremental);
}

bool CheckpointCoordinator::NeedBase() const {
  if (!EffectiveIncremental()) return true;
  if (!have_base_ || need_new_base_.load(std::memory_order_relaxed)) {
    return true;
  }
  return barriers_since_base_ >= opts_.full_snapshot_every - 1;
}

std::string CheckpointCoordinator::OnBarrier(WindowOperator& op,
                                             state::CheckpointMetadata meta) {
  if (!op.SupportsSnapshot()) return "";
  if (health() == CheckpointHealth::kFailed) return "";
  if (NeedBase()) {
    state::Writer w;
    op.SerializeState(w);
    // Marking clean right after serializing is what makes the NEXT delta's
    // "unchanged since last barrier" references valid. It is safe even if
    // this barrier is later dropped or its persist fails: every such event
    // forces the next barrier to be a full base, which does not rely on
    // cleanliness.
    op.MarkSnapshotClean();
    return OnBarrierBytes(op.Name(), w.Take(), meta);
  }
  state::Writer w;
  op.SerializeDelta(w);
  op.MarkSnapshotClean();
  PersistJob job;
  job.index = barrier_index_;
  job.is_base = false;
  meta.barrier_index = barrier_index_;
  job.meta = meta;
  job.name = op.Name();
  job.delta = w.Take();
  ++barriers_since_base_;
  return Submit(std::move(job));
}

std::string CheckpointCoordinator::OnBarrierBytes(
    const std::string& operator_name, const std::vector<uint8_t>& state,
    state::CheckpointMetadata meta) {
  if (health() == CheckpointHealth::kFailed) return "";
  meta.barrier_index = barrier_index_;
  PersistJob job;
  job.index = barrier_index_;
  job.is_base = true;
  job.path = SnapPath(barrier_index_);
  job.blob = state::BuildSnapshot(meta, operator_name, state);
  barriers_since_base_ = 0;
  have_base_ = true;
  last_base_index_ = barrier_index_;
  need_new_base_.store(false, std::memory_order_relaxed);
  return Submit(std::move(job));
}

std::string CheckpointCoordinator::Submit(PersistJob job) {
  const std::string target =
      job.is_base ? job.path
                  : state::DeltaLogPath(PathPrefix(), last_base_index_);
  if (mode_.load(std::memory_order_relaxed) ==
      static_cast<int>(CheckpointPersistenceMode::kOff)) {
    // Bottom rung: checkpointing is off with the alarm raised. Shed the
    // barrier, except every `off_probe_every`-th one which is attempted as
    // a probe so sustained disk recovery promotes the mode back up.
    const uint64_t k = off_barriers_seen_++;
    const bool probe =
        opts_.off_probe_every > 0 &&
        k % static_cast<uint64_t>(opts_.off_probe_every) == 0;
    if (!probe) {
      barriers_dropped_.fetch_add(1, std::memory_order_relaxed);
      need_new_base_.store(true, std::memory_order_relaxed);
      return "";
    }
  }
  if (!opts_.async) {
    const bool is_base = job.is_base;
    bool ok = ProcessJob(job);
    // Synchronous barriers are durable before they return: each delta
    // append is committed (fsync'd) individually instead of group-committed.
    if (ok && !is_base) ok = CommitAppends();
    if (!ok) return "";
    ++barrier_index_;
    return target;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (abandoned_) return "";
    if (queue_.size() >= opts_.async_queue_depth) {
      // Never block the pipeline on a slow disk: shed this barrier and
      // force the next one to re-establish a full base.
      barriers_dropped_.fetch_add(1, std::memory_order_relaxed);
      need_new_base_.store(true, std::memory_order_relaxed);
      return "";
    }
    queue_.push_back(std::move(job));
    ++barrier_index_;
  }
  cv_.notify_one();
  if (mode_.load(std::memory_order_relaxed) ==
      static_cast<int>(CheckpointPersistenceMode::kSyncFull)) {
    // Demoted to the sync-full rung on an async coordinator: the barrier
    // waits for the background thread to settle, so durability (or an
    // accounted failure) is established before the pipeline resumes —
    // matching a synchronous coordinator's contract.
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(
        lk, [this] { return (queue_.empty() && !busy_) || abandoned_; });
  }
  return target;
}

void CheckpointCoordinator::Flush() {
  if (!persist_thread_.joinable()) return;
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && !busy_; });
}

void CheckpointCoordinator::Abandon() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    abandoned_ = true;
    barriers_dropped_.fetch_add(queue_.size(), std::memory_order_relaxed);
    queue_.clear();
  }
  cv_.notify_all();
  // A barrier may be blocked in Submit's sync-full wait; release it.
  idle_cv_.notify_all();
}

const std::string& CheckpointCoordinator::last_path() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_path_;
}

void CheckpointCoordinator::PersistThreadMain() {
  for (;;) {
    std::deque<PersistJob> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) break;
        continue;
      }
      batch.swap(queue_);
      busy_ = true;
    }
    // Group commit: every job of the batch is processed (bases are fully
    // persisted in place; deltas are appended), then one fsync commits all
    // appended records together.
    for (PersistJob& job : batch) ProcessJob(job);
    CommitAppends();
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

bool CheckpointCoordinator::ProcessJob(PersistJob& job) {
  if (job.is_base) {
    // Records appended to the previous segment must be committed before the
    // new base exists so each segment's durable prefix is in barrier order.
    CommitAppends();
    if (!PersistBaseWithRetry(job)) {
      NoteFailure();
      need_new_base_.store(true, std::memory_order_relaxed);
      drop_until_base_ = true;
      return false;
    }
    NoteSuccess();
    bases_persisted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      last_path_ = job.path;
    }
    drop_until_base_ = false;
    dlog_.Close();
    segment_ok_ = false;
    seg_records_ = 0;
    if (EffectiveIncremental()) {
      segment_ok_ =
          dlog_.Open(state::DeltaLogPath(PathPrefix(), job.index), job.index);
      if (!segment_ok_) {
        // The base is durable, only the delta lane is unavailable: keep
        // running, force the next barrier to be a base again.
        need_new_base_.store(true, std::memory_order_relaxed);
      }
    }
    bases_.push_back(job.index);
    PruneBases();
    NoteBarrierDurable(1);
    return true;
  }
  // Delta job.
  const uint64_t expected = dlog_.base_index() + 1 + seg_records_;
  if (drop_until_base_ || !segment_ok_ || job.index != expected) {
    // A failed or dropped barrier upstream broke the epoch chain; anything
    // until the next base would be an out-of-epoch record, so shed it.
    barriers_dropped_.fetch_add(1, std::memory_order_relaxed);
    need_new_base_.store(true, std::memory_order_relaxed);
    return false;
  }
  if (!AppendDeltaWithRetry(job)) {
    NoteFailure();
    segment_ok_ = false;
    drop_until_base_ = true;
    need_new_base_.store(true, std::memory_order_relaxed);
    return false;
  }
  ++seg_records_;
  deltas_persisted_.fetch_add(1, std::memory_order_relaxed);
  unsynced_.push_back(job.index);
  {
    std::lock_guard<std::mutex> lk(mu_);
    last_path_ = dlog_.path();
  }
  return true;
}

void CheckpointCoordinator::RetryBackoff(int attempt, uint64_t salt) const {
  if (attempt <= 0 || opts_.retry_backoff_ms <= 0) return;
  const int shift = std::min(attempt - 1, 10);
  const uint64_t base = static_cast<uint64_t>(opts_.retry_backoff_ms) << shift;
  // Deterministic jitter in [0, base]: spreads retries of independent
  // coordinators over [B, 2B] without a global RNG, so injected failure
  // sweeps stay reproducible.
  uint64_t h = salt * 0x9E3779B97F4A7C15ULL +
               static_cast<uint64_t>(attempt) * 0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  std::this_thread::sleep_for(std::chrono::milliseconds(base + h % (base + 1)));
}

void CheckpointCoordinator::MaybeInjectDelay(uint64_t index,
                                             bool is_base) const {
  if (!delay_hook_) return;
  const uint64_t ms = delay_hook_(index, is_base);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool CheckpointCoordinator::PersistBaseWithRetry(const PersistJob& job) {
  MaybeInjectDelay(job.index, true);
  for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    RetryBackoff(attempt, job.index);
    const bool injected = failure_hook_ && failure_hook_(job.index, true);
    if (!injected && state::WriteSnapshotFile(job.path, job.blob)) return true;
  }
  return false;
}

bool CheckpointCoordinator::AppendDeltaWithRetry(const PersistJob& job) {
  MaybeInjectDelay(job.index, false);
  for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    RetryBackoff(attempt, job.index);
    const bool injected = failure_hook_ && failure_hook_(job.index, false);
    if (injected) continue;
    if (dlog_.Append(job.meta, job.name, job.delta)) return true;
    // A failed append may have written partial bytes; the segment is no
    // longer extendable, so retrying the append would corrupt the chain.
    return false;
  }
  return false;
}

bool CheckpointCoordinator::CommitAppends() {
  if (unsynced_.empty()) return true;
  const size_t n = unsynced_.size();
  const uint64_t salt = unsynced_.front();
  unsynced_.clear();
  bool ok = false;
  for (int attempt = 0; attempt <= opts_.max_retries && !ok; ++attempt) {
    RetryBackoff(attempt, salt);
    ok = dlog_.Sync();
  }
  if (!ok) {
    // One failure event for the whole group: the appended records' on-disk
    // fate is unknown, so the segment is closed off and recovery will use
    // whatever checksummed prefix actually reached the disk.
    NoteFailure();
    barriers_dropped_.fetch_add(n, std::memory_order_relaxed);
    segment_ok_ = false;
    drop_until_base_ = true;
    need_new_base_.store(true, std::memory_order_relaxed);
    return false;
  }
  NoteSuccess();
  NoteBarrierDurable(n);
  return true;
}

void CheckpointCoordinator::NoteBarrierDurable(uint64_t count) {
  const uint64_t before =
      durable_barriers_.fetch_add(count, std::memory_order_relaxed);
  if (crash_after_ >= 0 &&
      before < static_cast<uint64_t>(crash_after_) &&
      before + count >= static_cast<uint64_t>(crash_after_)) {
    // Injected crash: the barrier's file is fully persisted (rename or
    // fsync done), nothing after this point runs — no destructors, no
    // flushes. The recovery driver must rebuild everything from the files
    // alone.
    std::_Exit(42);
  }
}

void CheckpointCoordinator::NoteSuccess() {
  consecutive_failures_.store(0, std::memory_order_relaxed);
  int h = health_.load(std::memory_order_relaxed);
  if (h != static_cast<int>(CheckpointHealth::kFailed)) {
    health_.store(static_cast<int>(CheckpointHealth::kHealthy),
                  std::memory_order_relaxed);
  }
  if (!opts_.auto_fallback) return;
  const int m = mode_.load(std::memory_order_relaxed);
  if (m <= configured_mode_) {
    consecutive_successes_.store(0, std::memory_order_relaxed);
    return;
  }
  const int succ =
      consecutive_successes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (succ >= std::max(1, opts_.promote_after)) {
    consecutive_successes_.store(0, std::memory_order_relaxed);
    mode_.store(m - 1, std::memory_order_relaxed);
    mode_promotions_.fetch_add(1, std::memory_order_relaxed);
    // A promoted mode starts a fresh epoch: the first barrier on the new
    // rung re-establishes the chain from a full base.
    need_new_base_.store(true, std::memory_order_relaxed);
  }
}

void CheckpointCoordinator::NoteFailure() {
  persist_failures_.fetch_add(1, std::memory_order_relaxed);
  consecutive_successes_.store(0, std::memory_order_relaxed);
  const int consecutive =
      consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (consecutive >= opts_.max_consecutive_failures) {
    if (opts_.auto_fallback) {
      // Demote one rung instead of failing stop; the failure streak starts
      // over on the new rung. Health saturates at kDegraded so OnBarrier
      // keeps offering barriers and recovery stays possible.
      consecutive_failures_.store(0, std::memory_order_relaxed);
      const int m = mode_.load(std::memory_order_relaxed);
      if (m < static_cast<int>(CheckpointPersistenceMode::kOff)) {
        mode_.store(m + 1, std::memory_order_relaxed);
        mode_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      }
      health_.store(static_cast<int>(CheckpointHealth::kDegraded),
                    std::memory_order_relaxed);
      return;
    }
    health_.store(static_cast<int>(CheckpointHealth::kFailed),
                  std::memory_order_relaxed);
  } else if (health_.load(std::memory_order_relaxed) !=
             static_cast<int>(CheckpointHealth::kFailed)) {
    health_.store(static_cast<int>(CheckpointHealth::kDegraded),
                  std::memory_order_relaxed);
  }
}

void CheckpointCoordinator::PruneBases() {
  if (opts_.retain <= 0) return;
  while (bases_.size() > static_cast<size_t>(opts_.retain)) {
    const uint64_t evict = bases_.front();
    bases_.pop_front();
    // A segment's records only extend its own base, so the pair is removed
    // together and no surviving delta can reference a deleted base.
    std::remove(SnapPath(evict).c_str());
    std::remove(state::DeltaLogPath(PathPrefix(), evict).c_str());
  }
}

RestoredOperator RestoreOperator(const std::string& path,
                                 const OperatorFactory& factory) {
  RestoredOperator out;
  std::vector<uint8_t> blob;
  if (!state::ReadSnapshotFile(path, &blob)) {
    out.error = "cannot read snapshot file: " + path;
    return out;
  }
  std::vector<uint8_t> st;
  if (!state::ParseSnapshot(blob, &out.meta, &out.operator_name, &st)) {
    out.error = "snapshot container validation failed: " + path;
    return out;
  }
  out.op = factory();
  if (out.op == nullptr) {
    out.error = "operator factory returned null";
    return out;
  }
  if (!NamesCompatible(out.operator_name, out.op->Name())) {
    out.error = "operator mismatch: snapshot holds '" + out.operator_name +
                "', factory built '" + out.op->Name() + "'";
    out.op.reset();
    return out;
  }
  state::Reader r(st);
  out.op->DeserializeState(r);
  if (!r.ok() || !r.AtEnd()) {
    out.error = "operator state decode failed (fingerprint mismatch or "
                "corrupt payload)";
    out.op.reset();
    return out;
  }
  out.ok = true;
  return out;
}

RestoredOperator RestoreOperatorWithDeltas(const std::string& path,
                                           const OperatorFactory& factory,
                                           size_t max_deltas,
                                           size_t* deltas_applied,
                                           bool* delta_tail_rejected) {
  if (deltas_applied != nullptr) *deltas_applied = 0;
  if (delta_tail_rejected != nullptr) *delta_tail_rejected = false;
  RestoredOperator out = RestoreOperator(path, factory);
  if (!out.ok || max_deltas == 0) return out;
  const std::string dlog_path = DlogPathForSnap(path);
  if (dlog_path.empty()) return out;
  std::error_code ec;
  if (!std::filesystem::exists(dlog_path, ec)) return out;  // base-only
  // The base was just deserialized, i.e. it IS the previous barrier's
  // image: establish the clean state the first delta's references assume.
  out.op->MarkSnapshotClean();
  state::DeltaLogContents log;
  if (!state::ReadDeltaLog(dlog_path, &log) ||
      log.base_index != out.meta.barrier_index) {
    // Segment present but unusable (damaged header) or stale (left behind
    // by an older incarnation at the same path): recover from the base
    // alone.
    if (delta_tail_rejected != nullptr) *delta_tail_rejected = true;
    return out;
  }
  bool rejected = log.torn;
  size_t applied = 0;
  for (size_t k = 0; k < log.records.size() && applied < max_deltas; ++k) {
    const state::DeltaRecord& rec = log.records[k];
    state::Reader r(rec.state);
    out.op->ApplyDelta(r);
    if (!r.ok() || !r.AtEnd()) {
      // The record validated as a container but its payload does not apply
      // (delta gap, fingerprint drift). A failed apply may leave the
      // operator half-mutated, so rebuild from scratch replaying only the
      // prefix that is known to apply cleanly.
      RestoredOperator redo = RestoreOperatorWithDeltas(
          path, factory, applied, deltas_applied, nullptr);
      if (delta_tail_rejected != nullptr) *delta_tail_rejected = true;
      return redo;
    }
    out.op->MarkSnapshotClean();
    out.meta = rec.meta;
    ++applied;
  }
  if (applied > 0) out.op->FinishDeltaRestore();
  if (applied < log.records.size()) rejected = true;  // max_deltas cap hit
  if (deltas_applied != nullptr) *deltas_applied = applied;
  if (delta_tail_rejected != nullptr) *delta_tail_rejected = rejected;
  return out;
}

std::vector<std::string> ListSnapshots(const std::string& directory,
                                       const std::string& prefix) {
  namespace fs = std::filesystem;
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(directory, ec)) {
    if (!e.is_regular_file(ec)) continue;
    const std::string name = e.path().filename().string();
    // Match `<prefix>-<digits>.snap` exactly; .tmp leftovers, .dlog
    // segments, and foreign files are not recovery candidates.
    if (name.size() <= prefix.size() + 6) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name[prefix.size()] != '-') continue;
    if (name.compare(name.size() - 5, 5, ".snap") != 0) continue;
    const std::string digits =
        name.substr(prefix.size() + 1, name.size() - prefix.size() - 6);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                       e.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [idx, path] : found) out.push_back(std::move(path));
  return out;
}

RecoveredOperator RecoverNewestValid(const std::string& directory,
                                     const std::string& prefix,
                                     const OperatorFactory& factory) {
  RecoveredOperator out;
  const std::vector<std::string> candidates = ListSnapshots(directory, prefix);
  out.candidates = candidates.size();
  std::string errors;
  for (const std::string& path : candidates) {
    size_t applied = 0;
    bool tail_rejected = false;
    RestoredOperator r = RestoreOperatorWithDeltas(path, factory, SIZE_MAX,
                                                   &applied, &tail_rejected);
    if (r.ok) {
      out.restored = std::move(r);
      out.path_used = path;
      out.deltas_applied = applied;
      out.delta_tail_rejected = tail_rejected;
      return out;
    }
    // Torn, truncated, or corrupt: remember why and fall back to the next
    // older snapshot. Every subsequent success reports fell_back=true so
    // callers/tests can observe that the fallback path actually ran.
    out.fell_back = true;
    if (!errors.empty()) errors += "; ";
    errors += path + ": " + r.error;
  }
  out.restored.error = candidates.empty()
                           ? "no snapshot files in " + directory
                           : "no valid snapshot (" + errors + ")";
  return out;
}

namespace {

/// Shared driver loop for the initial run and the resumed continuation:
/// identical tuple/watermark cadence to RunPipeline, plus a checkpoint
/// barrier after every watermark's results were drained. Supports both the
/// per-tuple and the batched ingestion interleaving; blocks never straddle
/// a watermark injection point, so the operator state observed at each
/// barrier — and therefore every snapshot file — is byte-identical between
/// the two.
void DrivePipeline(TupleSource& src, WindowOperator& op, uint64_t start_index,
                   uint64_t max_tuples, const PipelineOptions& opts,
                   CheckpointCoordinator* coord, Time max_ts,
                   CheckpointedPipelineReport* out, const ResultSink& sink) {
  auto drain = [&] {
    for (const WindowResult& r : op.TakeResults()) {
      ++out->report.results;
      if (r.is_update) ++out->report.updates;
      if (sink) sink(r);
    }
  };
  auto barrier = [&](uint64_t next_index, Time wm) {
    if (coord == nullptr) return;
    state::CheckpointMetadata meta;
    meta.source_offset = next_index;
    meta.next_seq = next_index;
    meta.max_ts = max_ts;
    meta.last_wm = wm;
    const std::string path = coord->OnBarrier(op, meta);
    if (!path.empty()) {
      ++out->checkpoints;
      out->last_checkpoint = path;
    }
  };
  Tuple t;
  if (opts.batch_size <= 1) {
    for (uint64_t i = start_index; i < max_tuples && src.Next(&t); ++i) {
      op.ProcessTuple(t);
      max_ts = std::max(max_ts, t.ts);
      ++out->report.tuples;
      if (opts.watermark_every > 0 && (i + 1) % opts.watermark_every == 0) {
        const Time wm = max_ts - opts.watermark_delay;
        op.ProcessWatermark(wm);
        // Results MUST leave the operator before the barrier: a snapshot
        // taken with undrained results would re-emit them after restore,
        // duplicating output the consumer already saw.
        drain();
        barrier(i + 1, wm);
      }
    }
  } else {
    std::vector<Tuple> buf;
    buf.reserve(opts.batch_size);
    bool more = true;
    uint64_t i = start_index;
    while (more && i < max_tuples) {
      uint64_t limit = std::min(opts.batch_size, max_tuples - i);
      if (opts.watermark_every > 0) {
        limit = std::min(limit, opts.watermark_every - i % opts.watermark_every);
      }
      buf.clear();
      while (buf.size() < limit && (more = src.Next(&t))) {
        buf.push_back(t);
        max_ts = std::max(max_ts, t.ts);
      }
      if (buf.empty()) break;
      op.ProcessTupleBatch(buf);
      i += buf.size();
      out->report.tuples += buf.size();
      if (opts.watermark_every > 0 && i % opts.watermark_every == 0) {
        const Time wm = max_ts - opts.watermark_delay;
        op.ProcessWatermark(wm);
        drain();
        barrier(i, wm);
      }
    }
  }
  if (max_ts != kNoTime) op.ProcessWatermark(max_ts);
  drain();
  // Settle async persists before handing control back: the report's
  // last_checkpoint is durable (or accounted as failed/dropped) once this
  // returns, and no background thread touches checkpoint files afterwards.
  // Health is sampled after the flush for the same reason — it reflects
  // every barrier this run scheduled, including ones that failed in the
  // background.
  if (coord != nullptr) {
    coord->Flush();
    out->health = coord->HealthReport();
  }
}

}  // namespace

CheckpointedPipelineReport RunCheckpointedPipeline(
    TupleSource& src, WindowOperator& op, uint64_t max_tuples,
    const PipelineOptions& opts, CheckpointCoordinator& coord,
    const ResultSink& sink) {
  CheckpointedPipelineReport out;
  const auto start = std::chrono::steady_clock::now();
  DrivePipeline(src, op, 0, max_tuples, opts, &coord, kNoTime, &out, sink);
  out.report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

namespace {

/// Shared resume tail: fast-forward the source past the snapshot's offset,
/// continue the barrier numbering, and replay the remainder.
bool ResumeFromRestored(RestoredOperator restored, TupleSource& src,
                        uint64_t max_tuples, const PipelineOptions& opts,
                        CheckpointCoordinator* coord, const ResultSink& sink,
                        CheckpointedPipelineReport* report,
                        std::unique_ptr<WindowOperator>* op,
                        std::string* error) {
  Tuple t;
  uint64_t skipped = 0;
  while (skipped < restored.meta.source_offset && src.Next(&t)) ++skipped;
  if (skipped != restored.meta.source_offset) {
    *error = "source exhausted before the checkpoint offset";
    return false;
  }
  if (coord != nullptr) coord->SetBarrierIndex(restored.meta.barrier_index + 1);
  const auto start = std::chrono::steady_clock::now();
  DrivePipeline(src, *restored.op, restored.meta.source_offset, max_tuples,
                opts, coord, restored.meta.max_ts, report, sink);
  report->report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  *op = std::move(restored.op);
  return true;
}

}  // namespace

ResumedPipeline RestorePipeline(const std::string& snapshot_path,
                                const OperatorFactory& factory,
                                TupleSource& src, uint64_t max_tuples,
                                const PipelineOptions& opts,
                                CheckpointCoordinator* coord,
                                const ResultSink& sink) {
  ResumedPipeline out;
  RestoredOperator restored =
      RestoreOperatorWithDeltas(snapshot_path, factory);
  if (!restored.ok) {
    out.error = std::move(restored.error);
    return out;
  }
  out.ok = ResumeFromRestored(std::move(restored), src, max_tuples, opts,
                              coord, sink, &out.report, &out.op, &out.error);
  return out;
}

RecoveredPipeline RecoverPipeline(const std::string& directory,
                                  const std::string& prefix,
                                  const OperatorFactory& factory,
                                  TupleSource& src, uint64_t max_tuples,
                                  const PipelineOptions& opts,
                                  CheckpointCoordinator* coord,
                                  const ResultSink& sink) {
  RecoveredPipeline out;
  RecoveredOperator rec = RecoverNewestValid(directory, prefix, factory);
  out.fell_back = rec.fell_back;
  out.path_used = rec.path_used;
  if (!rec.restored.ok) {
    out.error = std::move(rec.restored.error);
    return out;
  }
  out.ok =
      ResumeFromRestored(std::move(rec.restored), src, max_tuples, opts,
                         coord, sink, &out.report, &out.op, &out.error);
  return out;
}

}  // namespace scotty
