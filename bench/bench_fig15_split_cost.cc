// Figure 15: Processing time for recomputing aggregates after a slice
// split, as a function of the number of tuples in the slice.
//
// Context-aware windows can force split operations, whose cost is dominated
// by recomputing the two halves from stored tuples (paper Section 6.3.3).
// Sum stands in for algebraic functions, median for holistic ones. Expected
// shape: linear in the tuple count.

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "aggregates/registry.h"
#include "bench/bench_util.h"
#include "core/slice.h"

namespace scotty {
namespace bench {
namespace {

uint64_t g_sink = 0;

double MeasureSplitSeconds(const std::string& agg, int64_t tuples_per_slice) {
  const AggregateFunctionPtr fn = MakeAggregation(agg);
  const std::vector<AggregateFunctionPtr> fns = {fn};
  const int reps = tuples_per_slice >= 100000 ? 3 : 20;
  double total = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Slice s(0, tuples_per_slice + 1, fns.size());
    for (int64_t i = 0; i < tuples_per_slice; ++i) {
      Tuple t;
      t.ts = i;
      // 64 distinct values keep the holistic build affordable while the
      // split recomputation cost stays linear in the tuple count.
      t.value = static_cast<double>(i % 64);
      t.seq = static_cast<uint64_t>(i);
      s.AddTuple(t, fns, /*store_tuple=*/true);
    }
    const auto start = std::chrono::steady_clock::now();
    Slice right = s.SplitAt(tuples_per_slice / 2, fns);
    const auto end = std::chrono::steady_clock::now();
    g_sink += right.tuple_count();
    total += std::chrono::duration<double>(end - start).count();
  }
  return total / reps;
}

void Run() {
  PrintHeader("fig15", "aggregate recomputation time after a slice split");
  for (const char* agg : {"sum", "median"}) {
    for (int64_t n : {1000, 10000, 100000, 1000000}) {
      const double secs = MeasureSplitSeconds(agg, n);
      PrintRow("fig15", agg, std::to_string(n), secs * 1e3, "ms");
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
