
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregates_test.cc" "tests/CMakeFiles/scotty_unit_tests.dir/aggregates_test.cc.o" "gcc" "tests/CMakeFiles/scotty_unit_tests.dir/aggregates_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/scotty_unit_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/scotty_unit_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/flat_fat_test.cc" "tests/CMakeFiles/scotty_unit_tests.dir/flat_fat_test.cc.o" "gcc" "tests/CMakeFiles/scotty_unit_tests.dir/flat_fat_test.cc.o.d"
  "/root/repo/tests/slice_test.cc" "tests/CMakeFiles/scotty_unit_tests.dir/slice_test.cc.o" "gcc" "tests/CMakeFiles/scotty_unit_tests.dir/slice_test.cc.o.d"
  "/root/repo/tests/try_remove_test.cc" "tests/CMakeFiles/scotty_unit_tests.dir/try_remove_test.cc.o" "gcc" "tests/CMakeFiles/scotty_unit_tests.dir/try_remove_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/scotty_unit_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/scotty_unit_tests.dir/value_test.cc.o.d"
  "/root/repo/tests/windows_test.cc" "tests/CMakeFiles/scotty_unit_tests.dir/windows_test.cc.o" "gcc" "tests/CMakeFiles/scotty_unit_tests.dir/windows_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/scotty_unit_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/scotty_unit_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scotty.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
