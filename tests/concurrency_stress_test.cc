// Concurrency stress tests for the runtime layer, designed to run under
// ThreadSanitizer (ctest -L concurrency in the TSan CI lane): the SPSC ring
// buffer under sustained producer/consumer pressure, and the key-partitioned
// ParallelExecutor checked against a sequential per-key reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <tuple>
#include <vector>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "runtime/keyed_operator.h"
#include "runtime/parallel_executor.h"
#include "testing/stream_gen.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

/// Tuples travel through the SoA data ring in blocks, controls through the
/// control ring; the stamped data_pos must restore the producer's exact
/// tuple/control interleaving: every watermark control carries the number
/// of tuples pushed before it, and must pop exactly when that many tuples
/// have been consumed.
TEST(SpscQueueStress, TransfersEveryTupleInOrderAcrossControls) {
  SpscQueue q(1 << 8);  // small ring => constant wraparound + backpressure
  constexpr uint64_t kTuples = 200000;
  constexpr size_t kBlock = 100;
  constexpr uint64_t kCtrlEvery = 700;  // a watermark every 7 blocks

  std::thread producer([&] {
    TupleBatchSoA block(kBlock);
    uint64_t next = 0;
    while (next < kTuples) {
      block.Clear();
      const uint64_t n = std::min<uint64_t>(kBlock, kTuples - next);
      for (uint64_t i = 0; i < n; ++i) {
        Tuple t;
        t.seq = next + i;
        t.value = static_cast<double>((next + i) % 1024);
        block.PushBack(t);
      }
      q.PushTuples(block.View());
      next += n;
      if (next % kCtrlEvery == 0) {
        SpscQueue::Control wm;
        wm.kind = SpscQueue::Control::Kind::kWatermark;
        wm.watermark = static_cast<Time>(next);  // tuples pushed before it
        q.PushControl(wm);
      }
    }
    SpscQueue::Control stop;
    stop.kind = SpscQueue::Control::Kind::kStop;
    q.PushControl(stop);
  });

  uint64_t received = 0;
  double checksum = 0;
  uint64_t expected_seq = 0;
  bool in_order = true;
  bool controls_at_boundaries = true;
  TupleBatchSoA buf(kBlock);
  SpscQueue::Control c;
  while (true) {
    buf.Clear();
    const size_t n = q.PopTuples(&buf, kBlock);
    for (size_t i = 0; i < n; ++i) {
      in_order &= buf.seq()[i] == expected_seq++;
      checksum += buf.value()[i];
    }
    received += n;
    if (q.PopControl(&c)) {
      if (c.kind == SpscQueue::Control::Kind::kStop) break;
      // The control must surface exactly at its stamped tuple boundary.
      controls_at_boundaries &=
          c.watermark == static_cast<Time>(received);
    }
    if (n == 0) std::this_thread::yield();
  }
  producer.join();

  EXPECT_EQ(received, kTuples);
  EXPECT_TRUE(in_order);
  EXPECT_TRUE(controls_at_boundaries);
  double expected_checksum = 0;
  for (uint64_t i = 0; i < kTuples; ++i) {
    expected_checksum += static_cast<double>(i % 1024);
  }
  EXPECT_EQ(checksum, expected_checksum);
}

/// The bounded-blocking push path (the backpressure fix for the unbounded
/// PushTuples spin): with no consumer, a full ring must hand control back
/// with a partial (or zero) transfer inside the timeout instead of spinning
/// forever, ApproxOccupancy must expose the pressure, and the same call
/// must complete once a consumer starts draining — with the transferred
/// prefix never re-sent, so the seq stream through the ring stays exact.
TEST(SpscQueueStress, TimedPushSignalsBackpressureAndRecovers) {
  SpscQueue q(64);
  TupleBatchSoA block(16);
  uint64_t next_seq = 0;
  auto fill_block = [&] {
    block.Clear();
    for (int i = 0; i < 16; ++i) {
      Tuple t;
      t.seq = next_seq + static_cast<uint64_t>(i);
      block.PushBack(t);
    }
  };

  // Saturate: with no consumer, a bounded push must report a timeout
  // (transferring only a prefix of its block) within a handful of blocks.
  uint64_t pushed = 0;
  bool timed_out = false;
  for (int b = 0; b < 8 && !timed_out; ++b) {
    fill_block();
    const size_t n =
        q.TryPushTuplesFor(block.View(), std::chrono::milliseconds(5));
    pushed += n;
    next_seq += n;
    timed_out = n < 16;
  }
  ASSERT_TRUE(timed_out);
  EXPECT_GE(pushed, 32u);  // the ring did accept ~capacity before refusing
  EXPECT_GT(q.ApproxOccupancy(), 0.5);

  // A consumer arriving mid-wait unblocks the same bounded call, and the
  // consumed stream is the exact concatenation of every transferred prefix.
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    TupleBatchSoA buf(16);
    uint64_t got = 0;
    uint64_t expect = 0;
    while (got < pushed + 16) {
      buf.Clear();
      const size_t n = q.PopTuples(&buf, 16);
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(buf.seq()[i], expect++);
      got += n;
      if (n == 0) std::this_thread::yield();
    }
  });
  fill_block();
  EXPECT_EQ(q.TryPushTuplesFor(block.View(), std::chrono::seconds(10)), 16u);
  consumer.join();
}

/// Blocks larger than the ring must chunk, and nearly every transfer wraps,
/// splitting the per-column memcpys into two segments.
TEST(SpscQueueStress, WrappedBlocksSurviveTinyRing) {
  SpscQueue q(1 << 7);  // tiny ring: blocks constantly split at the wrap
  constexpr uint64_t kTuples = 200000;
  constexpr size_t kPush = 190;  // > capacity: PushTuples must chunk
  constexpr size_t kPop = 33;

  std::thread producer([&] {
    TupleBatchSoA block(kPush);
    uint64_t next = 0;
    while (next < kTuples) {
      block.Clear();
      const uint64_t n = std::min<uint64_t>(kPush, kTuples - next);
      for (uint64_t i = 0; i < n; ++i) {
        Tuple t;
        t.seq = next + i;
        t.ts = static_cast<Time>(next + i);
        block.PushBack(t);
      }
      q.PushTuples(block.View());
      next += n;
    }
    SpscQueue::Control stop;
    stop.kind = SpscQueue::Control::Kind::kStop;
    q.PushControl(stop);
  });

  uint64_t received = 0;
  uint64_t expected_seq = 0;
  bool in_order = true;
  TupleBatchSoA buf(kPop);
  SpscQueue::Control c;
  while (true) {
    buf.Clear();
    const size_t n = q.PopTuples(&buf, kPop);
    if (n == 0) {
      if (q.PopControl(&c) && c.kind == SpscQueue::Control::Kind::kStop) {
        break;
      }
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      in_order &= buf.seq()[i] == expected_seq &&
                  buf.ts()[i] == static_cast<Time>(expected_seq);
      ++expected_seq;
    }
    received += n;
  }
  producer.join();
  EXPECT_EQ(received, kTuples);
  EXPECT_TRUE(in_order);
}

std::unique_ptr<WindowOperator> MakeKeyedSlicing() {
  return std::make_unique<KeyedWindowOperator>([] {
    GeneralSlicingOperator::Options o;
    o.stream_in_order = false;
    o.allowed_lateness = 1'000'000'000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddAggregation(MakeAggregation("max"));
    op->AddWindow(std::make_shared<SlidingWindow>(40, 15, Measure::kEventTime));
    op->AddWindow(std::make_shared<SessionWindow>(25));
    op->AddWindow(std::make_shared<TumblingWindow>(7, Measure::kCount));
    return op;
  });
}

/// A keyed OOO stream plus the watermark cadence both executions replay.
struct KeyedWorkload {
  std::vector<Tuple> tuples;  // seq pre-assigned: arrival order is identity
  Time final_wm = 0;
};

KeyedWorkload MakeWorkload() {
  testing::StreamSpec spec;
  spec.seed = 42;
  spec.num_tuples = 6000;
  spec.step_lo = 0;
  spec.step_hi = 3;
  spec.num_keys = 8;
  spec.ooo_fraction = 0.2;
  spec.max_delay = 16;
  spec.gap_probability = 0.01;
  spec.gap_length = 40;
  KeyedWorkload w;
  w.tuples = GenerateStream(spec);
  Time max_ts = 0;
  uint64_t seq = 0;
  for (Tuple& t : w.tuples) {
    t.seq = seq++;
    max_ts = std::max(max_ts, t.ts);
  }
  w.final_wm = max_ts + 1000;
  return w;
}

uint64_t SequentialResultCount(const KeyedWorkload& w, Time wm_lag) {
  auto op = MakeKeyedSlicing();
  uint64_t results = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  uint64_t n = 0;
  for (const Tuple& t : w.tuples) {
    op->ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (++n % 97 == 0 && max_ts - wm_lag > last_wm) {
      last_wm = max_ts - wm_lag;
      op->ProcessWatermark(last_wm);
      results += op->TakeResults().size();
    }
  }
  op->ProcessWatermark(w.final_wm);
  results += op->TakeResults().size();
  return results;
}

uint64_t ParallelResultCount(const KeyedWorkload& w, Time wm_lag,
                             size_t num_workers) {
  ParallelExecutor exec(num_workers, MakeKeyedSlicing);
  exec.Start();
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  uint64_t n = 0;
  for (const Tuple& t : w.tuples) {
    exec.Push(t);
    max_ts = std::max(max_ts, t.ts);
    if (++n % 97 == 0 && max_ts - wm_lag > last_wm) {
      last_wm = max_ts - wm_lag;
      exec.PushWatermark(last_wm);
    }
  }
  exec.PushWatermark(w.final_wm);
  exec.Finish();
  return exec.TotalResults();
}

/// Like ParallelResultCount, but drives ingestion through PushBatch with
/// explicit executor options (queue capacity, staging batch size). The
/// watermark cadence is identical, so results must match the sequential
/// reference regardless of batching parameters.
uint64_t ParallelBatchedResultCount(const KeyedWorkload& w, Time wm_lag,
                                    size_t num_workers,
                                    ParallelExecutor::Options opts,
                                    size_t block) {
  ParallelExecutor exec(num_workers, MakeKeyedSlicing, opts);
  exec.Start();
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  uint64_t n = 0;
  size_t i = 0;
  while (i < w.tuples.size()) {
    size_t len = std::min(block, w.tuples.size() - i);
    len = std::min<size_t>(len, 97 - n % 97);  // stop at the wm boundary
    exec.PushBatch({w.tuples.data() + i, len});
    for (size_t k = 0; k < len; ++k) {
      max_ts = std::max(max_ts, w.tuples[i + k].ts);
    }
    n += len;
    i += len;
    if (n % 97 == 0 && max_ts - wm_lag > last_wm) {
      last_wm = max_ts - wm_lag;
      exec.PushWatermark(last_wm);
    }
  }
  exec.PushWatermark(w.final_wm);
  exec.Finish();
  return exec.TotalResults();
}

/// Keys are disjoint across workers and each SPSC queue preserves the
/// source's tuple/watermark interleaving, so every per-key operator sees the
/// identical sequence in both executions: the emission counts must match.
TEST(ParallelExecutorStress, MatchesSequentialKeyedReference) {
  const KeyedWorkload w = MakeWorkload();
  const Time wm_lag = 30;
  const uint64_t sequential = SequentialResultCount(w, wm_lag);
  ASSERT_GT(sequential, 0u);
  EXPECT_EQ(ParallelResultCount(w, wm_lag, 4), sequential);
}

TEST(ParallelExecutorStress, BatchedIngestionMatchesSequentialReference) {
  const KeyedWorkload w = MakeWorkload();
  const Time wm_lag = 30;
  const uint64_t sequential = SequentialResultCount(w, wm_lag);
  ASSERT_GT(sequential, 0u);
  ParallelExecutor::Options tight;
  tight.queue_capacity = 1 << 8;  // constant backpressure + wraparound
  tight.batch_size = 32;
  EXPECT_EQ(ParallelBatchedResultCount(w, wm_lag, 3, tight, 200), sequential);
  ParallelExecutor::Options unstaged;
  unstaged.queue_capacity = 1 << 12;
  unstaged.batch_size = 1;  // staging disabled: per-item pushes
  EXPECT_EQ(ParallelBatchedResultCount(w, wm_lag, 5, unstaged, 64),
            sequential);
}

TEST(ParallelExecutorStress, DeterministicAcrossRunsAndWorkerCounts) {
  const KeyedWorkload w = MakeWorkload();
  const Time wm_lag = 30;
  const uint64_t first = ParallelResultCount(w, wm_lag, 3);
  EXPECT_EQ(ParallelResultCount(w, wm_lag, 3), first);
  EXPECT_EQ(ParallelResultCount(w, wm_lag, 7), first);
}

/// Many short executor lifecycles: races in Start/Finish/join show up under
/// TSan far more readily than in one long run.
TEST(ParallelExecutorStress, RepeatedLifecycles) {
  testing::StreamSpec spec;
  spec.seed = 7;
  spec.num_tuples = 400;
  spec.num_keys = 5;
  spec.ooo_fraction = 0.3;
  spec.max_delay = 8;
  std::vector<Tuple> tuples = GenerateStream(spec);
  uint64_t seq = 0;
  Time max_ts = 0;
  for (Tuple& t : tuples) {
    t.seq = seq++;
    max_ts = std::max(max_ts, t.ts);
  }
  uint64_t reference = 0;
  for (int round = 0; round < 20; ++round) {
    ParallelExecutor exec(2 + round % 3, MakeKeyedSlicing);
    exec.Start();
    for (const Tuple& t : tuples) exec.Push(t);
    exec.PushWatermark(max_ts + 100);
    exec.Finish();
    if (round == 0) {
      reference = exec.TotalResults();
      ASSERT_GT(reference, 0u);
    } else {
      EXPECT_EQ(exec.TotalResults(), reference);
    }
  }
}

/// Shared-operator pre-aggregation (Options::shared_preagg): one
/// GeneralSlicingOperator fed by thread-local slice stores that merge at
/// watermark barriers. Aggregations are commutative and values are
/// integer-valued doubles, so results must match a single-threaded run of
/// the same operator EXACTLY — any lost bucket, double merge, or barrier
/// race shows up as a value or count mismatch (and as a TSan report in the
/// concurrency lane).
std::unique_ptr<WindowOperator> MakeSharedSlicing() {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = false;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  op->AddAggregation(MakeAggregation("sum"));
  op->AddAggregation(MakeAggregation("count"));
  op->AddAggregation(MakeAggregation("max"));
  op->AddWindow(std::make_shared<TumblingWindow>(100, Measure::kEventTime));
  op->AddWindow(std::make_shared<SlidingWindow>(200, 50, Measure::kEventTime));
  return op;
}

/// In-order stream with integer values: FP sums are then exact, so shared
/// pre-aggregation (arbitrary merge order) and the sequential fold agree
/// bit-for-bit. In-order also means no tuple ever lands in a bucket that
/// already drained (ts only grows past every emitted watermark).
std::vector<Tuple> MakeSharedWorkload(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<Tuple> tuples(n);
  Time ts = 0;
  for (size_t i = 0; i < n; ++i) {
    ts += static_cast<Time>(rng() % 4);
    tuples[i].ts = ts;
    tuples[i].value = static_cast<double>(rng() % 1000);
    tuples[i].seq = i;
  }
  return tuples;
}

std::vector<WindowResult> SequentialSharedReference(
    const std::vector<Tuple>& tuples, Time wm_lag, Time final_wm) {
  auto op = MakeSharedSlicing();
  std::vector<WindowResult> results;
  // Pre-data watermark: pins the operator's watermark floor below all data
  // on both executions (the shared run merges only completed buckets, so
  // its max-seen timestamp at the first watermark differs from the
  // sequential run's; anchoring the floor first removes that asymmetry).
  op->ProcessWatermark(-1);
  Time last_wm = -1;
  for (size_t i = 0; i < tuples.size(); ++i) {
    op->ProcessTuple(tuples[i]);
    if ((i + 1) % 500 == 0 && tuples[i].ts - wm_lag > last_wm) {
      last_wm = tuples[i].ts - wm_lag;
      op->ProcessWatermark(last_wm);
      op->TakeResultsInto(&results);
    }
  }
  op->ProcessWatermark(final_wm);
  op->TakeResultsInto(&results);
  return results;
}

std::vector<WindowResult> SharedPreaggRun(const std::vector<Tuple>& tuples,
                                          Time wm_lag, Time final_wm,
                                          size_t workers, size_t batch_size,
                                          bool columnar) {
  ParallelExecutor::Options opts;
  opts.shared_preagg = true;
  opts.preagg_slice_len = 25;  // divides 100, and 200/50
  opts.batch_size = batch_size;
  opts.queue_capacity = 1 << 10;
  ParallelExecutor exec(workers, MakeSharedSlicing, opts);
  exec.Start();
  exec.PushWatermark(-1);
  TupleBatchSoA all;
  if (columnar) all.AppendTuples(tuples);
  Time last_wm = -1;
  size_t i = 0;
  while (i < tuples.size()) {
    const size_t len = std::min<size_t>(500 - i % 500, tuples.size() - i);
    if (columnar) {
      exec.PushColumns(all.Subview(i, len));
    } else {
      for (size_t k = 0; k < len; ++k) exec.Push(tuples[i + k]);
    }
    i += len;
    if (i % 500 == 0 && tuples[i - 1].ts - wm_lag > last_wm) {
      last_wm = tuples[i - 1].ts - wm_lag;
      exec.PushWatermark(last_wm);
    }
  }
  exec.PushWatermark(final_wm);
  exec.Finish();
  return exec.TakeSharedResults();
}

void SortResults(std::vector<WindowResult>* rs) {
  std::sort(rs->begin(), rs->end(),
            [](const WindowResult& a, const WindowResult& b) {
              return std::tie(a.window_id, a.agg_id, a.start, a.end) <
                     std::tie(b.window_id, b.agg_id, b.start, b.end);
            });
}

void ExpectSameResults(std::vector<WindowResult> got,
                       std::vector<WindowResult> want) {
  ASSERT_EQ(got.size(), want.size());
  // Emission order within one watermark may differ between the shared and
  // sequential drains; (window, agg, extent) identifies a result uniquely.
  SortResults(&got);
  SortResults(&want);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].window_id, want[i].window_id) << i;
    EXPECT_EQ(got[i].agg_id, want[i].agg_id) << i;
    EXPECT_EQ(got[i].start, want[i].start) << i;
    EXPECT_EQ(got[i].end, want[i].end) << i;
    EXPECT_EQ(got[i].value, want[i].value) << got[i] << " vs " << want[i];
  }
}

TEST(SharedPreaggStress, MatchesSequentialReferenceExactly) {
  const std::vector<Tuple> tuples = MakeSharedWorkload(11, 20000);
  const Time wm_lag = 60;
  const Time final_wm = tuples.back().ts + 1000;
  const std::vector<WindowResult> want =
      SequentialSharedReference(tuples, wm_lag, final_wm);
  ASSERT_GT(want.size(), 0u);
  ExpectSameResults(SharedPreaggRun(tuples, wm_lag, final_wm, 2, 256, false),
                    want);
  ExpectSameResults(SharedPreaggRun(tuples, wm_lag, final_wm, 4, 256, false),
                    want);
}

TEST(SharedPreaggStress, ColumnarIngestionAndTinyBatchesMatch) {
  const std::vector<Tuple> tuples = MakeSharedWorkload(12, 20000);
  const Time wm_lag = 60;
  const Time final_wm = tuples.back().ts + 1000;
  const std::vector<WindowResult> want =
      SequentialSharedReference(tuples, wm_lag, final_wm);
  ASSERT_GT(want.size(), 0u);
  // Zero-copy columnar ingestion.
  ExpectSameResults(SharedPreaggRun(tuples, wm_lag, final_wm, 3, 128, true),
                    want);
  // Unstaged per-tuple pushes: every tuple is its own ring transfer.
  ExpectSameResults(SharedPreaggRun(tuples, wm_lag, final_wm, 2, 1, false),
                    want);
}

/// Tuples past the last watermark merge into the shared store at stop;
/// finalizing through SharedOperator() after Finish must surface them.
TEST(SharedPreaggStress, StopDrainsRemainingBuckets) {
  const std::vector<Tuple> tuples = MakeSharedWorkload(13, 5000);
  const Time final_wm = tuples.back().ts + 1000;
  // Reference: everything triggers at the final watermark.
  auto ref = MakeSharedSlicing();
  ref->ProcessWatermark(-1);
  for (const Tuple& t : tuples) ref->ProcessTuple(t);
  ref->ProcessWatermark(final_wm);
  std::vector<WindowResult> want = ref->TakeResults();
  ASSERT_GT(want.size(), 0u);

  ParallelExecutor::Options opts;
  opts.shared_preagg = true;
  opts.preagg_slice_len = 25;
  ParallelExecutor exec(3, MakeSharedSlicing, opts);
  exec.Start();
  exec.PushWatermark(-1);
  for (const Tuple& t : tuples) exec.Push(t);
  exec.Finish();  // no final watermark: buckets drain at stop
  std::vector<WindowResult> got = exec.TakeSharedResults();
  ASSERT_NE(exec.SharedOperator(), nullptr);
  exec.SharedOperator()->ProcessWatermark(final_wm);
  for (WindowResult& r : exec.SharedOperator()->TakeResults()) {
    got.push_back(std::move(r));
  }
  ExpectSameResults(std::move(got), std::move(want));
}

}  // namespace
}  // namespace scotty
