#ifndef SCOTTY_RUNTIME_KEYED_OPERATOR_H_
#define SCOTTY_RUNTIME_KEYED_OPERATOR_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/window_operator.h"

namespace scotty {

/// Per-key windowing within one thread: wraps a factory of window operators
/// and maintains one instance per partition key (windows over "average
/// speed per vehicle", "session per user", ...). This is the keyed-stream
/// semantics of Flink/Beam; combined with the ParallelExecutor it yields
/// the two-level key partitioning of paper Section 5.3.
///
/// Watermarks are broadcast to every per-key operator; results are tagged
/// with their key.
class KeyedWindowOperator : public WindowOperator {
 public:
  using Factory = std::function<std::unique_ptr<WindowOperator>()>;

  explicit KeyedWindowOperator(Factory factory)
      : factory_(std::move(factory)) {}

  void ProcessTuple(const Tuple& t) override {
    OperatorFor(t.key).ProcessTuple(t);
  }

  /// Splits the batch into per-key groups (preserving each key's arrival
  /// order) and forwards every group through the inner operator's batched
  /// path. Keys are independent operator instances, so regrouping cannot be
  /// observed; maximal same-key runs are forwarded as subspans without
  /// copying, mixed batches are regrouped through reused scratch buffers.
  void ProcessTupleBatch(std::span<const Tuple> batch) override {
    size_t i = 0;
    const size_t n = batch.size();
    while (i < n) {
      // Zero-copy fast path: a maximal run of one key.
      size_t j = i + 1;
      while (j < n && batch[j].key == batch[i].key) ++j;
      if (i == 0 && j == n) {
        OperatorFor(batch[i].key).ProcessTupleBatch(batch);
        return;
      }
      if (j - i >= kMinDirectRun) {
        OperatorFor(batch[i].key).ProcessTupleBatch(batch.subspan(i, j - i));
        i = j;
        continue;
      }
      // Mixed keys: collect this stretch into per-key scratch groups until
      // the next long same-key run, then dispatch one batch per key.
      group_order_.clear();
      for (; i < n; ++i) {
        size_t r = i + 1;
        while (r < n && batch[r].key == batch[i].key) ++r;
        if (r - i >= kMinDirectRun && !group_order_.empty()) break;
        std::vector<Tuple>& g = groups_[batch[i].key];
        if (g.empty()) group_order_.push_back(batch[i].key);
        for (; i < r; ++i) g.push_back(batch[i]);
        i = r - 1;  // loop increment advances past the run
      }
      for (int64_t key : group_order_) {
        std::vector<Tuple>& g = groups_[key];
        OperatorFor(key).ProcessTupleBatch(g);
        g.clear();  // keep capacity for the next batch
      }
    }
  }

  void ProcessWatermark(Time wm) override {
    last_wm_ = wm;
    for (auto& [key, op] : operators_) {
      op->ProcessWatermark(wm);
      for (WindowResult& r : op->TakeResults()) {
        r.key = key;
        results_.push_back(std::move(r));
      }
    }
  }

  std::vector<WindowResult> TakeResults() override {
    // Collect anything produced between watermarks too (in-order streams
    // self-trigger per tuple).
    for (auto& [key, op] : operators_) {
      for (WindowResult& r : op->TakeResults()) {
        r.key = key;
        results_.push_back(std::move(r));
      }
    }
    std::vector<WindowResult> out;
    out.swap(results_);
    return out;
  }

  size_t MemoryUsageBytes() const override {
    size_t bytes = 0;
    for (const auto& [key, op] : operators_) bytes += op->MemoryUsageBytes();
    return bytes;
  }

  std::string Name() const override {
    // inner_name_ is cached when the first per-key operator is created;
    // constructing a throwaway operator per Name() call would make a cheap
    // accessor arbitrarily expensive (factories allocate full operators).
    return inner_name_.empty() ? "keyed" : "keyed-" + inner_name_;
  }

  size_t NumKeys() const { return operators_.size(); }

  /// Access to one key's operator (nullptr if the key was never seen).
  const WindowOperator* ForKey(int64_t key) const {
    auto it = operators_.find(key);
    return it == operators_.end() ? nullptr : it->second.get();
  }

  bool SupportsSnapshot() const override { return true; }

  /// Keys are serialized in sorted order so the snapshot bytes are a pure
  /// function of the logical state (the unordered_map's iteration order is
  /// not). Each per-key operator's state is written inline; restore creates
  /// the operator through the factory and hands it the same byte range.
  void SerializeState(state::Writer& w) const override {
    w.Tag(0x4B455944);  // "KEYD"
    w.I64(last_wm_);
    std::vector<int64_t> keys;
    keys.reserve(operators_.size());
    for (const auto& [key, op] : operators_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    w.U64(keys.size());
    for (int64_t key : keys) {
      w.I64(key);
      operators_.at(key)->SerializeState(w);
    }
    w.U64(results_.size());
    for (const WindowResult& res : results_) SerializeWindowResult(w, res);
  }

  void DeserializeState(state::Reader& r) override {
    r.Tag(0x4B455944);
    last_wm_ = r.I64();
    const uint64_t nkeys = r.U64();
    if (nkeys > r.remaining()) {
      r.Fail();
      return;
    }
    operators_.clear();
    for (uint64_t i = 0; i < nkeys && r.ok(); ++i) {
      const int64_t key = r.I64();
      std::unique_ptr<WindowOperator> op = factory_();
      if (inner_name_.empty()) inner_name_ = op->Name();
      op->DeserializeState(r);
      operators_.emplace(key, std::move(op));
    }
    const uint64_t m = r.U64();
    if (m > r.remaining()) {
      r.Fail();
      return;
    }
    results_.clear();
    for (uint64_t i = 0; i < m && r.ok(); ++i) {
      results_.push_back(DeserializeWindowResult(r));
    }
  }

 private:
  /// Same-key runs at least this long skip the scratch regrouping and go
  /// straight to the inner operator as a subspan.
  static constexpr size_t kMinDirectRun = 16;

  WindowOperator& OperatorFor(int64_t key) {
    auto it = operators_.find(key);
    if (it == operators_.end()) {
      it = operators_.emplace(key, factory_()).first;
      if (inner_name_.empty()) inner_name_ = it->second->Name();
      // A freshly created per-key operator must not consider windows
      // before the current watermark already triggered.
      if (last_wm_ != kNoTime) it->second->ProcessWatermark(last_wm_);
    }
    return *it->second;
  }

  Factory factory_;
  std::unordered_map<int64_t, std::unique_ptr<WindowOperator>> operators_;
  std::unordered_map<int64_t, std::vector<Tuple>> groups_;  // batch scratch
  std::vector<int64_t> group_order_;                        // batch scratch
  std::vector<WindowResult> results_;
  std::string inner_name_;
  Time last_wm_ = kNoTime;
};

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_KEYED_OPERATOR_H_
