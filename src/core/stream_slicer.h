#ifndef SCOTTY_CORE_STREAM_SLICER_H_
#define SCOTTY_CORE_STREAM_SLICER_H_

#include "common/time.h"
#include "core/aggregate_store.h"
#include "core/query_set.h"

namespace scotty {

/// Step 1 of the slicing pipeline (paper Section 5.3): initializes slices
/// on the fly as in-order tuples arrive. The slicer caches the timestamp of
/// the next upcoming window edge; the common case is a single comparison
/// per tuple. When the cached edge is passed, the open slice is closed at
/// that edge and a new slice opens at the latest window edge at or before
/// the new tuple (empty stream regions produce no slices, keeping the slice
/// count minimal).
///
/// On streams declared in-order it suffices to start slices at window
/// *starts* (the Cutty optimization [10]); on out-of-order streams slices
/// must also begin at window ends so late tuples can update the last slice
/// of a window.
class StreamSlicer {
 public:
  StreamSlicer(AggregateStore* store, const QuerySet* queries)
      : store_(store), queries_(queries) {}

  /// Ensures the open slice exists and covers `ts`; cuts at passed window
  /// edges. Must be called for every in-order tuple before context
  /// processing and before the tuple is added to its slice.
  void OnInOrderTuple(Time ts) {
    if (store_->Empty()) {
      const Time start = ClampedLastEdge(ts);
      next_edge_ = ComputeNextEdge(ts);
      store_->Append(start, next_edge_);
      return;
    }
    if (ts >= next_edge_) {
      // The cached edge was passed: the open slice is complete. Close it at
      // the passed edge — context modifications (session extensions) may
      // have stretched its provisional end further out.
      Slice* cur = store_->Current();
      if (cur->end() > next_edge_) cur->set_end(next_edge_);
      // Open the next slice at the latest edge <= ts (skipping empty
      // regions).
      Time start = ClampedLastEdge(ts);
      if (start < next_edge_) start = next_edge_;
      next_edge_ = ComputeNextEdge(ts);
      store_->Append(start, next_edge_);
    }
  }

  /// Recomputes the cached edge after the current tuple was processed.
  /// Needed whenever context-aware windows are present (their edges move
  /// with the stream, e.g., a session timeout extends with every tuple);
  /// context-free edges are already cached correctly.
  void Recache(Time ts) {
    next_edge_ = ComputeNextEdge(ts);
    if (Slice* cur = store_->Current()) {
      // The open slice's provisional end follows the next edge.
      if (next_edge_ > cur->start()) cur->set_end(next_edge_);
    }
  }

  Time next_edge() const { return next_edge_; }

  /// Snapshot support: the slicer's only state is the cached edge (store and
  /// query set are wiring re-established on restore).
  void Serialize(state::Writer& w) const { w.I64(next_edge_); }
  void Deserialize(state::Reader& r) { next_edge_ = r.I64(); }

 private:
  /// min over time-lane windows of the next edge after ts.
  Time ComputeNextEdge(Time ts) const {
    Time edge = kMaxTime;
    for (const WindowPtr& w : queries_->windows) {
      if (!QuerySet::OnTimeLane(w)) continue;
      const bool starts_only =
          queries_->stream_in_order && !queries_->slice_at_window_ends;
      const Time e =
          starts_only ? w->GetNextStartEdge(ts) : w->GetNextEdge(ts);
      if (e < edge) edge = e;
    }
    return edge;
  }

  /// max over time-lane windows of the latest edge at or before ts
  /// (falls back to ts itself when no window announces an edge).
  Time ClampedLastEdge(Time ts) const {
    Time start = kNoTime;
    for (const WindowPtr& w : queries_->windows) {
      if (!QuerySet::OnTimeLane(w)) continue;
      const Time e = w->LastEdgeAtOrBefore(ts);
      if (e != kNoTime && e > start) start = e;
    }
    return start == kNoTime ? ts : start;
  }

  AggregateStore* store_;
  const QuerySet* queries_;
  Time next_edge_ = kMaxTime;
};

}  // namespace scotty

#endif  // SCOTTY_CORE_STREAM_SLICER_H_
