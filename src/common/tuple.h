#ifndef SCOTTY_COMMON_TUPLE_H_
#define SCOTTY_COMMON_TUPLE_H_

#include <cstdint>
#include <ostream>

#include "common/time.h"

namespace scotty {

/// A stream tuple. The payload is a single double value (the column being
/// aggregated); richer schemas in the original Flink deployment reduce to
/// this after projection, and the paper aggregates one column per query.
struct Tuple {
  /// Event-time (or the value of an arbitrary advancing measure).
  Time ts = 0;
  /// The value being aggregated.
  double value = 0.0;
  /// Partition key (player id / machine id); used by the parallel executor.
  int64_t key = 0;
  /// Arrival sequence number assigned by the ingestion pipeline; strictly
  /// increasing in processing order. Used to detect out-of-order tuples and
  /// to define count-based measures on in-order streams.
  uint64_t seq = 0;
  /// True for punctuation tuples that carry window markers instead of data
  /// (forward-context-free punctuation windows, paper Section 4.4).
  bool is_punctuation = false;

  friend bool operator==(const Tuple& a, const Tuple& b) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << "Tuple{ts=" << t.ts << ", value=" << t.value
            << ", key=" << t.key << ", seq=" << t.seq
            << (t.is_punctuation ? ", punct" : "") << "}";
}

/// A low-watermark: a promise that no tuple with ts < this will arrive
/// (except late tuples handled through allowed lateness).
struct Watermark {
  Time ts = kNoTime;
};

}  // namespace scotty

#endif  // SCOTTY_COMMON_TUPLE_H_
