// Batched-ingestion equivalence suite: every batch-aware layer (aggregation
// kernels, the general slicing operator, the keyed wrapper, the SPSC queue,
// the pipeline driver) must produce results bit-identical to the per-tuple
// path it replaces, and the supporting plumbing (slice freelist, Name()
// caching, queue capacity knob) must behave as documented.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "common/rng.h"
#include "core/aggregate_store.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "runtime/keyed_operator.h"
#include "runtime/parallel_executor.h"
#include "runtime/pipeline.h"
#include "testing/differential.h"
#include "testing/harness.h"
#include "testing/stream_gen.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testing::RunToFinalResults;
using testing::RunToFinalResultsBatched;
using testing::T;

// ---------------------------------------------------------------------------
// Kernel level: LiftCombineBatch specializations vs the generic per-tuple
// Lift+Combine loop, from both an identity and a pre-seeded partial.

std::vector<Tuple> KernelStream(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Tuple> out;
  Time ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += static_cast<Time>(rng.NextBounded(3));
    // Mix signs and magnitudes so floating-point rounding actually differs
    // between fold orders if a kernel gets the order wrong.
    const double v =
        (static_cast<double>(rng.NextBounded(2000)) - 997.0) / 7.0;
    out.push_back(T(ts, v, static_cast<uint64_t>(i)));
  }
  return out;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelEquivalenceTest, BatchKernelBitIdenticalToPerTupleFold) {
  const AggregateFunctionPtr fn = MakeAggregation(GetParam());
  ASSERT_NE(fn, nullptr);
  const std::vector<Tuple> tuples = KernelStream(0xBADC0FFEE + 1, 257);

  for (const size_t prefix : {size_t{0}, size_t{1}, size_t{13}}) {
    Partial per_tuple;
    Partial batched;
    for (size_t i = 0; i < prefix; ++i) {
      fn->Combine(per_tuple, fn->Lift(tuples[i]));
      fn->Combine(batched, fn->Lift(tuples[i]));
    }
    const std::span<const Tuple> rest(tuples.data() + prefix,
                                      tuples.size() - prefix);
    for (const Tuple& t : rest) fn->Combine(per_tuple, fn->Lift(t));
    fn->LiftCombineBatch(rest, batched);
    // Exact equality, no tolerance: the kernels must replicate the fold
    // order bit-for-bit (this is what lets the differential fuzzer compare
    // batched and per-tuple operator runs exactly).
    EXPECT_EQ(fn->Lower(per_tuple), fn->Lower(batched))
        << GetParam() << " with seed prefix " << prefix;
  }
}

TEST_P(KernelEquivalenceTest, BatchKernelMatchesBaseClassLoop) {
  const AggregateFunctionPtr fn = MakeAggregation(GetParam());
  ASSERT_NE(fn, nullptr);
  const std::vector<Tuple> tuples = KernelStream(77, 64);
  Partial via_base;
  Partial via_kernel;
  // Qualified call bypasses the virtual override: the documented default.
  fn->AggregateFunction::LiftCombineBatch(tuples, via_base);
  fn->LiftCombineBatch(tuples, via_kernel);
  EXPECT_EQ(fn->Lower(via_base), fn->Lower(via_kernel)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregations, KernelEquivalenceTest,
    ::testing::Values("sum", "count", "avg", "min", "max", "stddev", "m4",
                      "sum-no-invert", "median", "p90", "arg-max", "arg-min",
                      "min-count", "max-count", "concat", "geometric-mean",
                      "first", "last"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Operator level: ProcessTupleBatch vs ProcessTuple across store modes,
// stream orders, batch sizes, and workloads that force the per-tuple
// fallback (count lane, sessions).

struct OpCase {
  std::string name;
  bool in_order = false;
  StoreMode mode = StoreMode::kLazy;
  double ooo = 0.0;
  bool sessions = false;
  bool count_window = false;
  int wm_every = 0;
};

std::unique_ptr<GeneralSlicingOperator> MakeCaseOp(const OpCase& c) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = c.in_order;
  o.allowed_lateness = 1'000'000;
  o.store_mode = c.mode;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  op->AddAggregation(MakeAggregation("sum"));
  op->AddAggregation(MakeAggregation("stddev"));
  op->AddWindow(std::make_shared<TumblingWindow>(17));
  op->AddWindow(std::make_shared<SlidingWindow>(24, 8));
  if (c.sessions) op->AddWindow(std::make_shared<SessionWindow>(12));
  if (c.count_window) {
    op->AddWindow(std::make_shared<TumblingWindow>(7, Measure::kCount));
  }
  return op;
}

class OperatorBatchTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OperatorBatchTest, BatchedRunBitIdenticalToPerTuple) {
  const OpCase& c = GetParam();
  testing::StreamSpec spec;
  spec.seed = 99;
  spec.num_tuples = 700;
  spec.step_lo = 0;
  spec.step_hi = 3;
  spec.value_range = 50;
  spec.ooo_fraction = c.ooo;
  spec.max_delay = 20;
  const std::vector<Tuple> stream = GenerateStream(spec);
  Time last = 0;
  for (const Tuple& t : stream) last = std::max(last, t.ts);
  const Time final_wm = last + 100;
  const Time wm_lag = spec.MaxLateness() + 1;

  auto ref_op = MakeCaseOp(c);
  const auto ref =
      RunToFinalResults(*ref_op, stream, final_wm, c.wm_every, wm_lag);
  ASSERT_FALSE(ref.empty());

  for (const size_t bs : {size_t{1}, size_t{7}, size_t{64}, stream.size()}) {
    auto op = MakeCaseOp(c);
    const auto got = RunToFinalResultsBatched(*op, stream, final_wm,
                                              c.wm_every, wm_lag, bs);
    ASSERT_EQ(got.size(), ref.size()) << c.name << " batch=" << bs;
    for (const auto& [key, expected] : ref) {
      const auto it = got.find(key);
      ASSERT_NE(it, got.end()) << c.name << " batch=" << bs;
      // Bit-identical, including the stddev aggregation.
      EXPECT_EQ(it->second, expected)
          << c.name << " batch=" << bs << " window [" << std::get<2>(key)
          << "," << std::get<3>(key) << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, OperatorBatchTest,
    ::testing::Values(
        OpCase{"inorder_lazy", true, StoreMode::kLazy, 0.0, false, false, 0},
        OpCase{"inorder_eager", true, StoreMode::kEager, 0.0, false, false, 0},
        OpCase{"ooo_lazy_wm", false, StoreMode::kLazy, 0.25, false, false, 64},
        OpCase{"ooo_eager_wm", false, StoreMode::kEager, 0.25, false, false,
               64},
        OpCase{"sessions_fallback", true, StoreMode::kLazy, 0.0, true, false,
               0},
        OpCase{"countlane_fallback", false, StoreMode::kLazy, 0.1, false, true,
               128}),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

// The differential fuzzer's batched runs against oracle + baselines.
TEST(OperatorBatchTest, DifferentialSweepWithBatchingEnabled) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    testing::DifferentialConfig cfg = testing::RandomConfig(seed, 800);
    for (int batch : {1, 7, 64, 800}) {
      cfg.batch = batch;
      const testing::DifferentialOutcome o = testing::RunDifferential(cfg);
      EXPECT_TRUE(o.ok) << "seed " << seed << " batch " << batch << ": "
                        << o.detail;
    }
  }
}

// ---------------------------------------------------------------------------
// Keyed wrapper: batch regrouping by key, Name() caching.

std::vector<Tuple> KeyedStream(int n, int num_keys, bool runs) {
  Rng rng(4242);
  std::vector<Tuple> out;
  Time ts = 0;
  int64_t key = 0;
  for (int i = 0; i < n; ++i) {
    ts += static_cast<Time>(rng.NextBounded(2));
    if (runs) {
      if (rng.NextBounded(40) == 0) {
        key = static_cast<int64_t>(rng.NextBounded(
            static_cast<uint64_t>(num_keys)));
      }
    } else {
      key = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(num_keys)));
    }
    out.push_back(T(ts, static_cast<double>(rng.NextBounded(100)),
                    static_cast<uint64_t>(i), key));
  }
  return out;
}

std::unique_ptr<KeyedWindowOperator> MakeKeyed() {
  return std::make_unique<KeyedWindowOperator>([] {
    GeneralSlicingOperator::Options o;
    o.stream_in_order = false;
    o.allowed_lateness = 1'000'000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<TumblingWindow>(13));
    op->AddWindow(std::make_shared<SlidingWindow>(20, 5));
    return op;
  });
}

using KeyedKey = std::tuple<int64_t, int, int, Time, Time>;

std::map<KeyedKey, Value> KeyedFinal(const std::vector<WindowResult>& rs) {
  std::map<KeyedKey, Value> out;
  for (const WindowResult& r : rs) {
    out[{r.key, r.window_id, r.agg_id, r.start, r.end}] = r.value;
  }
  return out;
}

TEST(KeyedBatchTest, RegroupedBatchesBitIdenticalToPerTuple) {
  for (const bool runs : {true, false}) {
    const std::vector<Tuple> stream = KeyedStream(1200, 5, runs);
    Time last = 0;
    for (const Tuple& t : stream) last = std::max(last, t.ts);

    auto ref_op = MakeKeyed();
    for (const Tuple& t : stream) ref_op->ProcessTuple(t);
    ref_op->ProcessWatermark(last + 1);
    const auto ref = KeyedFinal(ref_op->TakeResults());
    ASSERT_FALSE(ref.empty());

    for (const size_t bs : {size_t{3}, size_t{64}, stream.size()}) {
      auto op = MakeKeyed();
      for (size_t i = 0; i < stream.size(); i += bs) {
        const size_t len = std::min(bs, stream.size() - i);
        op->ProcessTupleBatch({stream.data() + i, len});
      }
      op->ProcessWatermark(last + 1);
      EXPECT_EQ(KeyedFinal(op->TakeResults()), ref)
          << (runs ? "runs" : "mixed") << " batch=" << bs;
    }
  }
}

TEST(KeyedBatchTest, NameIsCachedWithoutFactoryCalls) {
  int factory_calls = 0;
  KeyedWindowOperator op([&factory_calls] {
    ++factory_calls;
    auto inner = std::make_unique<GeneralSlicingOperator>();
    inner->AddAggregation(MakeAggregation("sum"));
    inner->AddWindow(std::make_shared<TumblingWindow>(10));
    return inner;
  });
  // Before any tuple: no inner operator exists and Name() must not build
  // throwaway ones.
  EXPECT_EQ(op.Name(), "keyed");
  EXPECT_EQ(op.Name(), "keyed");
  EXPECT_EQ(factory_calls, 0);

  op.ProcessTuple(T(5, 1.0, 0, /*key=*/3));
  op.ProcessTuple(T(6, 2.0, 1, /*key=*/8));
  EXPECT_EQ(factory_calls, 2);  // one per distinct key
  EXPECT_EQ(op.Name(), "keyed-general-slicing-lazy");
  EXPECT_EQ(op.Name(), "keyed-general-slicing-lazy");
  EXPECT_EQ(factory_calls, 2);  // Name() stays factory-free
}

// ---------------------------------------------------------------------------
// SPSC queue: block transfers, capacity knob.

TEST(SpscQueueBatchTest, BatchRoundTripAcrossWraparound) {
  SpscQueue q(16);  // tiny ring: every block straddles the wrap point
  EXPECT_EQ(q.capacity(), 16u);
  constexpr size_t kTotal = 1000;
  TupleBatchSoA in(kTotal);
  for (size_t i = 0; i < kTotal; ++i) {
    in.PushBack(T(static_cast<Time>(i), static_cast<double>(i), i));
  }
  std::thread producer([&] { q.PushTuples(in.View()); });
  TupleBatchSoA got(kTotal);
  TupleBatchSoA buf(8);
  while (got.size() < kTotal) {
    buf.Clear();
    // Odd pop size: chunks never align with the ring.
    const size_t n = q.PopTuples(&buf, 7);
    got.AppendView(buf.View());
    if (n == 0) std::this_thread::yield();
  }
  producer.join();
  ASSERT_EQ(got.size(), kTotal);
  for (size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(got.seq()[i], i);
    EXPECT_EQ(got.ts()[i], static_cast<Time>(i));
    EXPECT_EQ(got.value()[i], static_cast<double>(i));
  }
}

TEST(SpscQueueBatchTest, ControlsGateTupleConsumption) {
  SpscQueue q(8);
  TupleBatchSoA block(4);
  for (uint64_t i = 0; i < 3; ++i) block.PushBack(T(0, 0.0, i));
  q.PushTuples(block.View());
  SpscQueue::Control wm;
  wm.kind = SpscQueue::Control::Kind::kWatermark;
  wm.watermark = 42;
  q.PushControl(wm);
  block.Clear();
  block.PushBack(T(0, 0.0, 3));
  q.PushTuples(block.View());

  // The control blocks until all three tuples before it are consumed, and
  // PopTuples never crosses it to reach the fourth tuple.
  SpscQueue::Control out;
  EXPECT_FALSE(q.PopControl(&out));
  TupleBatchSoA buf(8);
  ASSERT_EQ(q.PopTuples(&buf, 8), 3u);
  EXPECT_EQ(buf.seq()[0], 0u);
  EXPECT_EQ(buf.seq()[2], 2u);
  ASSERT_TRUE(q.PopControl(&out));
  EXPECT_EQ(out.kind, SpscQueue::Control::Kind::kWatermark);
  EXPECT_EQ(out.watermark, 42);
  buf.Clear();
  ASSERT_EQ(q.PopTuples(&buf, 8), 1u);
  EXPECT_EQ(buf.seq()[0], 3u);
  EXPECT_EQ(q.PopTuples(&buf, 8), 0u);
  EXPECT_FALSE(q.PopControl(&out));
}

TEST(SpscQueueBatchTest, NonPowerOfTwoCapacityAborts) {
  EXPECT_DEATH(SpscQueue q(100), "power of two");
}

TEST(SpscQueueBatchTest, NonAlignedCapacityAborts) {
  // 4 is a power of two but not a multiple of the SoA alignment quantum.
  EXPECT_DEATH(SpscQueue q(4), "multiple");
}

// ---------------------------------------------------------------------------
// Pipeline driver and executor: batch size must not change what is computed.

std::unique_ptr<GeneralSlicingOperator> MakePipelineOp() {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = false;
  o.allowed_lateness = 2000;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  op->AddAggregation(MakeAggregation("sum"));
  op->AddWindow(std::make_shared<TumblingWindow>(1000));
  return op;
}

TEST(PipelineBatchTest, BatchSizesProduceIdenticalCounts) {
  PipelineOptions base;
  base.watermark_every = 100;
  base.watermark_delay = 0;
  SensorStream ref_src(SensorStream::Machine());
  auto ref_op = MakePipelineOp();
  const PipelineReport ref = RunPipeline(ref_src, *ref_op, 5000, base);
  ASSERT_EQ(ref.tuples, 5000u);
  ASSERT_GT(ref.results, 0u);
  for (const uint64_t bs : {uint64_t{1}, uint64_t{7}, uint64_t{256}}) {
    SensorStream src(SensorStream::Machine());
    auto op = MakePipelineOp();
    PipelineOptions opts = base;
    opts.batch_size = bs;
    const PipelineReport got = RunPipeline(src, *op, 5000, opts);
    EXPECT_EQ(got.tuples, ref.tuples) << "batch=" << bs;
    EXPECT_EQ(got.results, ref.results) << "batch=" << bs;
    EXPECT_EQ(got.updates, ref.updates) << "batch=" << bs;
  }
}

// ---------------------------------------------------------------------------
// Slice freelist: evicted slices are recycled, bounded, and reset.

TEST(SliceFreelistTest, EvictedSlicesAreRecycled) {
  AggregateStore store(StoreMode::kLazy, {MakeAggregation("sum")});
  for (int i = 0; i < 8; ++i) {
    Slice& s = store.Append(i * 10, (i + 1) * 10);
    s.AddTuple(T(i * 10 + 1, 1.0), store.fns(), /*store_tuple=*/true);
    store.NoteTupleAdded();
  }
  EXPECT_EQ(store.FreeListSize(), 0u);
  store.EvictBefore(40);  // retires 4 slices
  EXPECT_EQ(store.NumSlices(), 4u);
  EXPECT_EQ(store.FreeListSize(), 4u);

  Slice& reused = store.Append(80, 90);
  EXPECT_EQ(store.FreeListSize(), 3u);  // one slice came off the freelist
  // Recycled slices come back fully reset.
  EXPECT_EQ(reused.start(), 80);
  EXPECT_EQ(reused.end(), 90);
  EXPECT_EQ(reused.tuple_count(), 0u);
  EXPECT_TRUE(reused.tuples().empty());
  EXPECT_TRUE(reused.agg(0).IsIdentity());
}

TEST(SliceFreelistTest, MergeRetiresTheAbsorbedSlice) {
  AggregateStore store(StoreMode::kLazy, {MakeAggregation("sum")});
  store.Append(0, 10);
  store.Append(10, 20);
  EXPECT_EQ(store.FreeListSize(), 0u);
  store.MergeWithNext(0);
  EXPECT_EQ(store.NumSlices(), 1u);
  EXPECT_EQ(store.FreeListSize(), 1u);
  EXPECT_EQ(store.At(0).end(), 20);
}

}  // namespace
}  // namespace scotty
