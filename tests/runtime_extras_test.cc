// Tests for the runtime extras: watermark policies, the keyed per-partition
// operator, and the CSV trace replayer.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "datagen/ooo_injector.h"
#include "datagen/replayer.h"
#include "runtime/keyed_operator.h"
#include "runtime/watermarks.h"
#include "tests/test_util.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::Num;
using testutil::T;

// --------------------------- Watermark policies ---------------------------

TEST(PeriodicWatermarks, EmitsEveryIntervalWithDelay) {
  PeriodicWatermarks policy(3, 100);
  EXPECT_EQ(policy.OnTuple(T(1000, 0, 0)), kNoTime);
  EXPECT_EQ(policy.OnTuple(T(1500, 0, 1)), kNoTime);
  EXPECT_EQ(policy.OnTuple(T(1200, 0, 2)), 1400);  // max 1500 - 100
  EXPECT_EQ(policy.OnTuple(T(2000, 0, 3)), kNoTime);
}

TEST(PunctuatedWatermarks, UsesMarkerTimestamps) {
  PunctuatedWatermarks policy;
  EXPECT_EQ(policy.OnTuple(T(10, 1, 0)), kNoTime);
  Tuple marker = T(25, 0, 1);
  marker.is_punctuation = true;
  EXPECT_EQ(policy.OnTuple(marker), 25);
}

TEST(AdaptiveWatermarks, TracksObservedDisorder) {
  AdaptiveWatermarks policy(2, /*safety=*/1.0, /*initial_slack=*/10);
  policy.OnTuple(T(1000, 0, 0));
  policy.OnTuple(T(2000, 0, 1));
  EXPECT_EQ(policy.observed_delay(), 10);  // nothing late yet
  policy.OnTuple(T(1500, 0, 2));           // 500 late
  EXPECT_EQ(policy.observed_delay(), 500);
  const Time wm = policy.OnTuple(T(2100, 0, 3));
  EXPECT_EQ(wm, 2100 - 500);
}

TEST(AdaptiveWatermarks, WatermarksAreSoundForBoundedDisorder) {
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options opts;
  opts.fraction = 0.2;
  opts.max_delay = 700;
  OutOfOrderInjector src(&inner, opts);
  AdaptiveWatermarks policy(64, /*safety=*/1.5);
  Tuple t;
  Time last_wm = kNoTime;
  int violations = 0;
  for (int i = 0; i < 30000; ++i) {
    src.Next(&t);
    if (last_wm != kNoTime && t.ts < last_wm) ++violations;
    const Time wm = policy.OnTuple(t);
    if (wm != kNoTime) last_wm = wm;
  }
  // The safety factor gives headroom; violations should be extremely rare.
  EXPECT_LE(violations, 3);
}

// --------------------------- Keyed operator ---------------------------

std::unique_ptr<WindowOperator> MakePerKeyOp() {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = false;
  o.allowed_lateness = 100;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  op->AddAggregation(MakeAggregation("sum"));
  op->AddWindow(std::make_shared<TumblingWindow>(10));
  return op;
}

TEST(KeyedOperator, SeparatesStatePerKey) {
  KeyedWindowOperator op(MakePerKeyOp);
  op.ProcessTuple(T(1, 1, 0, /*key=*/7));
  op.ProcessTuple(T(2, 2, 1, /*key=*/9));
  op.ProcessTuple(T(3, 4, 2, /*key=*/7));
  op.ProcessWatermark(20);
  EXPECT_EQ(op.NumKeys(), 2u);
  double sum7 = -1;
  double sum9 = -1;
  for (const WindowResult& r : op.TakeResults()) {
    if (r.start != 0) continue;
    if (r.key == 7) sum7 = Num(r.value);
    if (r.key == 9) sum9 = Num(r.value);
  }
  EXPECT_DOUBLE_EQ(sum7, 5.0);
  EXPECT_DOUBLE_EQ(sum9, 2.0);
}

TEST(KeyedOperator, LateKeyCreationRespectsWatermark) {
  KeyedWindowOperator op(MakePerKeyOp);
  op.ProcessTuple(T(5, 1, 0, 1));
  op.ProcessWatermark(50);
  op.TakeResults();
  // A new key appears after the watermark; its operator must not re-emit
  // windows before 50 as fresh results.
  op.ProcessTuple(T(55, 2, 1, 2));
  op.ProcessWatermark(70);
  for (const WindowResult& r : op.TakeResults()) {
    if (r.key == 2 && !r.is_update) {
      EXPECT_GE(r.end, 50);
    }
  }
}

TEST(KeyedOperator, MemoryAggregatesAcrossKeys) {
  KeyedWindowOperator op(MakePerKeyOp);
  for (int i = 0; i < 100; ++i) {
    op.ProcessTuple(T(i, 1.0, static_cast<uint64_t>(i), i % 8));
  }
  EXPECT_EQ(op.NumKeys(), 8u);
  EXPECT_GT(op.MemoryUsageBytes(), 0u);
  EXPECT_NE(op.ForKey(3), nullptr);
  EXPECT_EQ(op.ForKey(99), nullptr);
}

// --------------------------- CSV replayer ---------------------------

TEST(CsvReplaySource, RoundTripsAStream) {
  const std::string path = ::testing::TempDir() + "/scotty_trace.csv";
  SensorStream src(SensorStream::Machine());
  ASSERT_TRUE(CsvReplaySource::Dump(path, src, 500));

  CsvReplaySource replay;
  ASSERT_TRUE(replay.Load(path));
  EXPECT_EQ(replay.size(), 500u);

  SensorStream fresh(SensorStream::Machine());
  Tuple a;
  Tuple b;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(replay.Next(&a));
    ASSERT_TRUE(fresh.Next(&b));
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_DOUBLE_EQ(a.value, b.value);
    EXPECT_EQ(a.key, b.key);
  }
  EXPECT_FALSE(replay.Next(&a));
  std::remove(path.c_str());
}

TEST(CsvReplaySource, LoopingShiftsTimestamps) {
  const std::string path = ::testing::TempDir() + "/scotty_loop.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# ts,value,key\n10,1.5,0\n20,2.5,1\n", f);
    std::fclose(f);
  }
  CsvReplaySource replay;
  ASSERT_TRUE(replay.Load(path));
  replay.SetLoopCount(2);
  Tuple t;
  std::vector<Time> ts;
  while (replay.Next(&t)) ts.push_back(t.ts);
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts[0], 10);
  EXPECT_EQ(ts[1], 20);
  EXPECT_EQ(ts[2], 10 + 11);  // shifted by span (20 - 10 + 1)
  EXPECT_EQ(ts[3], 20 + 11);
  std::remove(path.c_str());
}

TEST(CsvReplaySource, MissingFileFailsGracefully) {
  CsvReplaySource replay;
  EXPECT_FALSE(replay.Load("/nonexistent/path/trace.csv"));
  Tuple t;
  EXPECT_FALSE(replay.Next(&t));
}

TEST(CsvReplaySource, SkipsMalformedLines) {
  const std::string path = ::testing::TempDir() + "/scotty_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# header\ngarbage\n5,1.0,2\n\n7,2.0\n", f);
    std::fclose(f);
  }
  CsvReplaySource replay;
  ASSERT_TRUE(replay.Load(path));
  EXPECT_EQ(replay.size(), 2u);  // "5,1.0,2" and "7,2.0" (key optional)
  Tuple t;
  ASSERT_TRUE(replay.Next(&t));
  EXPECT_EQ(t.ts, 5);
  EXPECT_EQ(t.key, 2);
  ASSERT_TRUE(replay.Next(&t));
  EXPECT_EQ(t.ts, 7);
  EXPECT_EQ(t.key, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace scotty
