#include "core/count_lane.h"

#include <algorithm>
#include <cassert>

namespace scotty {

namespace {

/// Collects triggered windows from a Window::TriggerWindows call.
class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override {
    windows.push_back({start, end});
  }
  std::vector<std::pair<Time, Time>> windows;
};

}  // namespace

CountLane::CountLane(StoreMode mode, QuerySet* queries, OperatorStats* stats)
    : store_(mode, queries->aggs), queries_(queries), stats_(stats) {}

int64_t CountLane::NextEdge(int64_t rank) const {
  Time edge = kMaxTime;
  for (const WindowPtr& w : queries_->windows) {
    if (!QuerySet::OnCountLane(w)) continue;
    const Time e = w->GetNextEdge(rank);
    if (e < edge) edge = e;
  }
  return edge;
}

void CountLane::EnsureOpenSlice(int64_t rank) {
  if (store_.Empty()) {
    store_.Append(rank, NextEdge(rank));
    return;
  }
  if (rank >= store_.Current()->end()) {
    // Ranks advance one by one, so the new slice starts exactly at the old
    // slice's end.
    store_.Append(store_.Current()->end(), NextEdge(rank));
  }
}

void CountLane::Add(const Tuple& t, bool in_order,
                    std::vector<WindowResult>* out) {
  // An out-of-order arrival with no count slice yet is still rank-wise
  // first: a punctuation marker can advance the operator's max_ts before
  // any data tuple exists (markers never enter the count lane), making the
  // first data tuple "out of order" in event time. Count ranks only order
  // data tuples, so the in-order path is exact — and the out-of-order path
  // below must never run on an empty store (At(0) would be out of bounds).
  if (in_order || store_.Empty()) {
    const int64_t rank = total_count_;
    EnsureOpenSlice(rank);
    Slice* cur = store_.Current();
    cur->AddTuple(t, store_.fns(), queries_->StoreTuples());
    store_.NoteTupleAdded();
    store_.OnSliceAggUpdated(store_.NumSlices() - 1);
    ++total_count_;
    return;
  }

  // Out-of-order: determine the slice covering the tuple's event-time
  // position. Tuples across slices are globally sorted by (ts, seq).
  assert(queries_->StoreTuples() &&
         "count measure with out-of-order tuples requires tuple storage");
  size_t lo = 0;
  size_t hi = store_.NumSlices();
  while (lo < hi) {  // first slice with t_first > t.ts
    const size_t mid = lo + (hi - lo) / 2;
    if (store_.At(mid).t_first() != kNoTime && store_.At(mid).t_first() > t.ts) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const size_t idx = lo > 0 ? lo - 1 : 0;
  Slice& slice = store_.At(idx);

  // Rank of the inserted tuple (for update emission).
  const auto& tuples = slice.tuples();
  const auto pos = std::lower_bound(
      tuples.begin(), tuples.end(), t, [](const Tuple& a, const Tuple& b) {
        if (a.ts != b.ts) return a.ts < b.ts;
        return a.seq < b.seq;
      });
  const int64_t rank = slice.start() + (pos - tuples.begin());

  if (queries_->AllCommutative()) {
    slice.AddTuple(t, store_.fns(), /*store_tuple=*/true);
  } else {
    slice.InsertTupleOnly(t);
    slice.RecomputeFromTuples(store_.fns());
    ++stats_->slice_recomputes;
  }
  store_.NoteTupleAdded();
  store_.OnSliceAggUpdated(idx);
  ++total_count_;

  ShiftFrom(idx, out);
  EmitShiftUpdates(rank, out);
}

void CountLane::ShiftFrom(size_t idx, std::vector<WindowResult>* out) {
  (void)out;
  while (idx < store_.NumSlices()) {
    Slice& s = store_.At(idx);
    const int64_t capacity = s.end() - s.start();
    if (static_cast<int64_t>(s.tuple_count()) <= capacity) break;
    const Tuple moved = s.PopLastTuple();
    if (idx + 1 == store_.NumSlices()) {
      // Overflow out of the open slice: open the next one.
      store_.Append(s.end(), NextEdge(s.end()));
    }
    MoveTuple(idx, idx + 1, moved);
    ++stats_->count_shifts;
    ++idx;
  }
}

void CountLane::MoveTuple(size_t from, size_t to, const Tuple& t) {
  Slice& src = store_.At(from);
  Slice& dst = store_.At(to);
  const auto& fns = store_.fns();

  // Removal from the source slice (paper Fig. 6): incremental when the
  // aggregation is invertible — or when the removed tuple provably does not
  // affect the aggregate (e.g., it is not the slice's maximum) — and a full
  // recomputation from the stored tuples otherwise.
  bool need_recompute = false;
  for (size_t i = 0; i < fns.size(); ++i) {
    Partial lifted = fns[i]->Lift(t);
    if (!fns[i]->TryRemove(src.mutable_agg(i), lifted)) {
      need_recompute = true;
      break;
    }
  }
  if (need_recompute) {
    src.RecomputeFromTuples(fns);
    ++stats_->slice_recomputes;
  }
  store_.OnSliceAggUpdated(from);

  // Insertion into the next slice: the moved tuple precedes all existing
  // tuples there (it has the smallest ts), so non-commutative aggregations
  // must recompute.
  if (queries_->AllCommutative()) {
    dst.AddTuple(t, fns, /*store_tuple=*/true);
  } else {
    dst.InsertTupleOnly(t);
    dst.RecomputeFromTuples(fns);
    ++stats_->slice_recomputes;
  }
  store_.OnSliceAggUpdated(to);
}

int64_t CountLane::CountAtOrBefore(Time wm) const {
  if (store_.Empty()) return 0;
  // First slice with a tuple newer than wm.
  size_t lo = 0;
  size_t hi = store_.NumSlices();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const Slice& s = store_.At(mid);
    if (s.t_last() != kNoTime && s.t_last() > wm) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == store_.NumSlices()) return total_count_;
  const Slice& boundary = store_.At(lo);
  int64_t count = boundary.start();
  if (boundary.t_first() != kNoTime && boundary.t_first() <= wm) {
    const auto& tuples = boundary.tuples();
    if (!tuples.empty()) {
      auto it = std::upper_bound(
          tuples.begin(), tuples.end(), wm,
          [](Time x, const Tuple& a) { return x < a.ts; });
      count += it - tuples.begin();
    }
  }
  return count;
}

void CountLane::Trigger(int64_t prev_cwm, int64_t cwm,
                        std::vector<WindowResult>* out) {
  if (cwm <= prev_cwm) return;
  for (size_t w = 0; w < queries_->windows.size(); ++w) {
    const WindowPtr& win = queries_->windows[w];
    if (!QuerySet::OnCountLane(win)) continue;
    Collector c;
    win->TriggerWindows(c, prev_cwm, cwm);
    for (const auto& [cs, ce] : c.windows) {
      for (size_t a = 0; a < store_.fns().size(); ++a) {
        WindowResult r;
        r.window_id = static_cast<int>(w);
        r.agg_id = static_cast<int>(a);
        r.start = cs;
        r.end = ce;
        r.value = store_.fns()[a]->Lower(store_.QueryRange(a, cs, ce));
        out->push_back(std::move(r));
        ++stats_->windows_emitted;
      }
    }
  }
  last_cwm_ = std::max(last_cwm_, cwm);
  next_trigger_rank_ = NextEdge(last_cwm_);
}

void CountLane::EmitShiftUpdates(int64_t r, std::vector<WindowResult>* out) {
  if (last_cwm_ <= r) return;  // nothing emitted beyond the insert position
  for (size_t w = 0; w < queries_->windows.size(); ++w) {
    const WindowPtr& win = queries_->windows[w];
    if (!QuerySet::OnCountLane(win)) continue;
    Collector c;
    // Every already-emitted window ending after the insert rank shifted.
    win->TriggerWindows(c, r, last_cwm_);
    for (const auto& [cs, ce] : c.windows) {
      for (size_t a = 0; a < store_.fns().size(); ++a) {
        WindowResult res;
        res.window_id = static_cast<int>(w);
        res.agg_id = static_cast<int>(a);
        res.start = cs;
        res.end = ce;
        res.value = store_.fns()[a]->Lower(store_.QueryRange(a, cs, ce));
        res.is_update = true;
        out->push_back(std::move(res));
        ++stats_->window_updates_emitted;
      }
    }
  }
}

void CountLane::Evict(int64_t safe_rank, Time safe_time) {
  int64_t evict_end = kNoTime;
  for (size_t i = 0; i < store_.NumSlices(); ++i) {
    const Slice& s = store_.At(i);
    const bool complete =
        static_cast<int64_t>(s.tuple_count()) == s.end() - s.start();
    if (!complete || s.end() > safe_rank ||
        (s.t_last() != kNoTime && s.t_last() > safe_time)) {
      break;
    }
    evict_end = s.end();
  }
  if (evict_end != kNoTime) {
    evicted_ranks_ = evict_end;
    store_.EvictBefore(evict_end);
  }
}

}  // namespace scotty
