#include "datagen/workloads.h"

#include "windows/tumbling.h"

namespace scotty {

namespace {

std::vector<WindowPtr> SpreadTumbling(int n, Time min_len, Time max_len,
                                      Measure measure) {
  std::vector<WindowPtr> windows;
  windows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Time len =
        n > 1 ? min_len + (max_len - min_len) * i / (n - 1) : min_len;
    windows.push_back(std::make_shared<TumblingWindow>(len, measure));
  }
  return windows;
}

}  // namespace

std::vector<WindowPtr> DashboardTumblingWindows(int n) {
  return SpreadTumbling(n, 1000, 20000, Measure::kEventTime);
}

std::vector<WindowPtr> DashboardCountWindows(int n) {
  return SpreadTumbling(n, 1000, 20000, Measure::kCount);
}

}  // namespace scotty
