// Tests for the Value and Partial types: variant accessors, equality,
// printing, memory accounting, and identity semantics.

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/partial.h"
#include "aggregates/registry.h"
#include "common/value.h"

namespace scotty {
namespace {

TEST(Value, DefaultIsEmpty) {
  Value v;
  EXPECT_TRUE(v.IsEmpty());
  EXPECT_FALSE(v.IsDouble());
  EXPECT_TRUE(std::isnan(v.Numeric()));
}

TEST(Value, DoubleAccessors) {
  Value v(3.5);
  EXPECT_TRUE(v.IsDouble());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(v.Numeric(), 3.5);
}

TEST(Value, IntAccessors) {
  Value v(int64_t{42});
  EXPECT_TRUE(v.IsInt());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_DOUBLE_EQ(v.Numeric(), 42.0);
}

TEST(Value, M4Accessors) {
  Value v(M4Result{1, 9, 3, 7});
  EXPECT_TRUE(v.IsM4());
  EXPECT_DOUBLE_EQ(v.AsM4().min, 1);
  EXPECT_DOUBLE_EQ(v.AsM4().last, 7);
  EXPECT_TRUE(std::isnan(v.Numeric()));
}

TEST(Value, ArgAccessors) {
  Value v(ArgResult{2.5, 100});
  EXPECT_TRUE(v.IsArg());
  EXPECT_EQ(v.AsArg().arg, 100);
}

TEST(Value, SequenceAccessors) {
  Value v(std::vector<double>{1, 2, 3});
  EXPECT_TRUE(v.IsSequence());
  EXPECT_EQ(v.AsSequence().size(), 3u);
}

TEST(Value, EqualityDistinguishesTypesAndContent) {
  EXPECT_EQ(Value(1.0), Value(1.0));
  EXPECT_NE(Value(1.0), Value(2.0));
  EXPECT_NE(Value(1.0), Value(int64_t{1}));  // type matters
  EXPECT_EQ(Value{}, Value{});
  EXPECT_EQ(Value(M4Result{1, 2, 3, 4}), Value(M4Result{1, 2, 3, 4}));
  EXPECT_NE(Value(M4Result{1, 2, 3, 4}), Value(M4Result{1, 2, 3, 5}));
}

TEST(Value, StreamPrinting) {
  auto str = [](const Value& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  };
  EXPECT_EQ(str(Value{}), "<empty>");
  EXPECT_EQ(str(Value(int64_t{7})), "7");
  EXPECT_EQ(str(Value(std::vector<double>{1, 2})), "[1, 2]");
  EXPECT_NE(str(Value(M4Result{1, 2, 3, 4})).find("M4{"), std::string::npos);
  EXPECT_NE(str(Value(ArgResult{1.0, 5})).find("arg=5"), std::string::npos);
}

TEST(Partial, DefaultIsIdentity) {
  Partial p;
  EXPECT_TRUE(p.IsIdentity());
  EXPECT_EQ(p.DynamicBytes(), 0u);
  EXPECT_EQ(p.TotalBytes(), MemoryModel::kPartialBytes);
}

TEST(Partial, HoldsAndGets) {
  Partial p;
  p.Set(AvgState{10.0, 4});
  EXPECT_TRUE(p.Holds<AvgState>());
  EXPECT_FALSE(p.Holds<double>());
  EXPECT_FALSE(p.IsIdentity());
  EXPECT_DOUBLE_EQ(p.Get<AvgState>().sum, 10.0);
}

TEST(Partial, EqualityByContent) {
  Partial a;
  a.Set(3.0);
  Partial b;
  b.Set(3.0);
  EXPECT_EQ(a, b);
  b.Set(4.0);
  EXPECT_NE(a, b);
}

TEST(Partial, HolisticStateCountsDynamicBytes) {
  Partial p;
  SortedRuns runs;
  for (int i = 0; i < 1000; ++i) runs.Insert(static_cast<double>(i));
  p.Set(std::move(runs));
  EXPECT_GT(p.DynamicBytes(), 1000 * sizeof(SortedRuns::Run) / 2);
  EXPECT_GT(p.TotalBytes(), MemoryModel::kPartialBytes);
}

TEST(Partial, SequenceStateCountsDynamicBytes) {
  Partial p;
  SeqState s;
  s.seq.assign(500, 1.0);
  p.Set(std::move(s));
  EXPECT_GE(p.DynamicBytes(), 500 * sizeof(double));
}

// Every builtin must lower its identity partial to a sane "empty window"
// value without crashing.
class IdentityLowerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IdentityLowerTest, IdentityLowersSafely) {
  AggregateFunctionPtr fn = MakeAggregation(GetParam());
  ASSERT_NE(fn, nullptr);
  const Value v = fn->Lower(fn->Identity());
  if (GetParam() == "count" || GetParam() == "count-distinct") {
    EXPECT_EQ(v.AsInt(), 0);
  } else if (GetParam() == "concat") {
    EXPECT_TRUE(v.IsSequence());
    EXPECT_TRUE(v.AsSequence().empty());
  } else {
    EXPECT_TRUE(v.IsEmpty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregations, IdentityLowerTest,
    ::testing::ValuesIn(BuiltinAggregationNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Combining an identity into a populated partial (and vice versa) must be a
// no-op for every builtin.
class IdentityCombineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IdentityCombineTest, IdentityIsNeutral) {
  AggregateFunctionPtr fn = MakeAggregation(GetParam());
  Tuple t;
  t.ts = 5;
  t.value = 3.25;
  t.seq = 1;
  Partial lifted = fn->Lift(t);
  Partial left = fn->Identity();
  fn->Combine(left, lifted);
  EXPECT_EQ(fn->Lower(left), fn->Lower(lifted));
  Partial right = lifted;
  fn->Combine(right, fn->Identity());
  EXPECT_EQ(fn->Lower(right), fn->Lower(lifted));
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregations, IdentityCombineTest,
    ::testing::ValuesIn(BuiltinAggregationNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace scotty
