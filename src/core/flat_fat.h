#ifndef SCOTTY_CORE_FLAT_FAT_H_
#define SCOTTY_CORE_FLAT_FAT_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "common/memory.h"
#include "state/serde.h"

namespace scotty {

/// FlatFAT [42]: a flat (array-backed) binary aggregate tree over a sequence
/// of partial aggregates. Leaves are either stream tuples (the
/// Aggregate-Tree baseline of paper Section 3.2) or slices (eager general
/// slicing, Section 3.4); inner nodes hold the combine of their children.
///
/// Supported operations and costs:
///  - Append / UpdateLeaf:     O(log n)
///  - ordered range query:     O(log n) combines, left-to-right order
///    (safe for non-commutative functions)
///  - InsertLeafAt (middle):   O(n) — models the expensive out-of-order
///    leaf insert + rebalance the paper measures for aggregate trees
///  - PopFront (eviction):     amortized O(1) via a sliding offset
class FlatFat {
 public:
  explicit FlatFat(AggregateFunctionPtr fn) : fn_(std::move(fn)) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  size_t offset() const { return offset_; }

  /// Appends a leaf at the end.
  void Append(Partial leaf) {
    if (offset_ + size_ == capacity_) Regrow();
    leaves_[offset_ + size_] = std::move(leaf);
    ++size_;
    UpdatePath(offset_ + size_ - 1);
  }

  /// Replaces leaf `i` (logical index) and updates the path to the root.
  void UpdateLeaf(size_t i, Partial leaf) {
    assert(i < size_);
    leaves_[offset_ + i] = std::move(leaf);
    UpdatePath(offset_ + i);
  }

  /// Combines `delta` into leaf `i` in place (leaf = leaf (+) delta).
  void CombineIntoLeaf(size_t i, const Partial& delta) {
    assert(i < size_);
    fn_->Combine(leaves_[offset_ + i], delta);
    UpdatePath(offset_ + i);
  }

  const Partial& Leaf(size_t i) const {
    assert(i < size_);
    return leaves_[offset_ + i];
  }

  /// Inserts a leaf before logical index `i`, shifting later leaves — the
  /// deliberate O(n) path for out-of-order inserts into tuple-leaf trees.
  void InsertLeafAt(size_t i, Partial leaf) {
    assert(i <= size_);
    if (offset_ + size_ == capacity_) Regrow();
    for (size_t j = size_; j > i; --j) {
      leaves_[offset_ + j] = std::move(leaves_[offset_ + j - 1]);
    }
    leaves_[offset_ + i] = std::move(leaf);
    ++size_;
    // Every shifted leaf's path changes; rebuild the affected suffix.
    RebuildFrom(i);
  }

  /// Removes leaf `i`, shifting later leaves (O(n)).
  void RemoveLeafAt(size_t i) {
    assert(i < size_);
    for (size_t j = i; j + 1 < size_; ++j) {
      leaves_[offset_ + j] = std::move(leaves_[offset_ + j + 1]);
    }
    leaves_[offset_ + size_ - 1] = Partial{};
    --size_;
    RebuildFrom(i);
  }

  /// Evicts the first `k` leaves (amortized O(k log n): identity leaves are
  /// left behind and compacted when the window of live leaves has slid past
  /// half the capacity).
  void PopFront(size_t k) {
    assert(k <= size_);
    for (size_t i = 0; i < k; ++i) {
      leaves_[offset_ + i] = Partial{};
      UpdatePath(offset_ + i);
    }
    offset_ += k;
    size_ -= k;
    if (offset_ > capacity_ / 2) Compact();
  }

  /// Aggregate of all live leaves (identity if empty).
  Partial Root() const {
    return capacity_ == 0 ? Partial{} : tree_[1];
  }

  /// Ordered combine of leaves [i, j): left-to-right, so the result is
  /// correct even for non-commutative (merely associative) functions.
  Partial Query(size_t i, size_t j) const {
    Partial acc;
    if (i >= j || capacity_ == 0) return acc;
    QueryRec(1, 0, capacity_, offset_ + i, offset_ + j, acc);
    return acc;
  }

  /// Rebuilds inner nodes for the logical suffix starting at leaf `i`.
  void RebuildFrom(size_t i) {
    for (size_t j = offset_ + i; j < offset_ + size_; ++j) UpdatePath(j);
  }

  /// Accounted bytes: inner nodes + leaf slots (the (|leaves|-1) * size(agg)
  /// overhead of Table 1, Row 2/6/8).
  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const Partial& p : tree_) bytes += MemoryModel::kTreeNodeBytes + p.DynamicBytes();
    for (const Partial& p : leaves_) bytes += p.DynamicBytes();
    return bytes;
  }

  /// Snapshot support. The full physical layout (capacity, offset, every
  /// leaf and inner node) is serialized rather than rebuilt on restore:
  /// inner-node floating-point values depend on the tree's growth history,
  /// so a rebuild could differ in the last bit for non-exact functions while
  /// the serialized copy is bit-identical by construction.
  void Serialize(state::Writer& w) const {
    w.U64(capacity_);
    w.U64(offset_);
    w.U64(size_);
    for (const Partial& p : leaves_) p.Serialize(w);
    for (const Partial& p : tree_) p.Serialize(w);
  }

  void Deserialize(state::Reader& r) {
    capacity_ = static_cast<size_t>(r.U64());
    offset_ = static_cast<size_t>(r.U64());
    size_ = static_cast<size_t>(r.U64());
    if (capacity_ > r.remaining()) {  // each partial needs >= 1 byte
      r.Fail();
      capacity_ = offset_ = size_ = 0;
      leaves_.clear();
      tree_.clear();
      return;
    }
    leaves_.assign(capacity_, Partial{});
    for (Partial& p : leaves_) p.Deserialize(r);
    tree_.assign(capacity_, Partial{});
    for (Partial& p : tree_) p.Deserialize(r);
  }

  /// Incremental-snapshot restore: reconstructs the exact physical layout
  /// (capacity, offset, size), filling live leaves from `leaf(i)` for
  /// logical index i in [0, size) and identity elsewhere, then recomputes
  /// every inner node bottom-up in Rebuild's order. Production mutations
  /// keep dead leaf slots at identity and every inner node equal to
  /// combine(identity, left, right) of its current children, so the result
  /// is bit-identical to serializing the full physical layout — which is
  /// why a delta snapshot only needs to record (capacity, offset, size).
  /// Returns false (leaving the tree empty) on an inconsistent layout.
  template <typename LeafFn>
  bool RestoreFromLayout(size_t capacity, size_t offset, size_t size,
                         LeafFn&& leaf) {
    leaves_.clear();
    tree_.clear();
    capacity_ = offset_ = size_ = 0;
    if (capacity == 0) return offset == 0 && size == 0;
    if ((capacity & (capacity - 1)) != 0 || offset > capacity ||
        size > capacity - offset) {
      return false;
    }
    capacity_ = capacity;
    offset_ = offset;
    size_ = size;
    leaves_.assign(capacity_, Partial{});
    for (size_t i = 0; i < size_; ++i) leaves_[offset_ + i] = leaf(i);
    tree_.assign(capacity_, Partial{});
    for (size_t node = capacity_ - 1; node >= 1; --node) RecomputeNode(node);
    return true;
  }

 private:
  static size_t NextPow2(size_t n) {
    size_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }

  void UpdatePath(size_t physical_leaf) {
    size_t node = (capacity_ + physical_leaf) / 2;
    while (node >= 1) {
      RecomputeNode(node);
      node /= 2;
    }
  }

  void RecomputeNode(size_t node) {
    const size_t left = node * 2;
    Partial acc;
    if (left < capacity_) {
      fn_->Combine(acc, tree_[left]);
      fn_->Combine(acc, tree_[left + 1]);
    } else {
      fn_->Combine(acc, leaves_[left - capacity_]);
      fn_->Combine(acc, leaves_[left + 1 - capacity_]);
    }
    tree_[node] = std::move(acc);
  }

  void QueryRec(size_t node, size_t lo, size_t hi, size_t i, size_t j,
                Partial& acc) const {
    if (j <= lo || hi <= i) return;
    if (i <= lo && hi <= j) {
      const Partial& p =
          node >= capacity_ ? leaves_[node - capacity_] : tree_[node];
      fn_->Combine(acc, p);
      return;
    }
    const size_t mid = lo + (hi - lo) / 2;
    QueryRec(node * 2, lo, mid, i, j, acc);      // left first: preserves order
    QueryRec(node * 2 + 1, mid, hi, i, j, acc);  // then right
  }

  void Regrow() {
    const size_t new_cap = NextPow2(size_ == 0 ? 2 : size_ * 2);
    Rebuild(new_cap);
  }

  void Compact() { Rebuild(capacity_); }

  void Rebuild(size_t new_cap) {
    std::vector<Partial> new_leaves(new_cap);
    for (size_t i = 0; i < size_; ++i) {
      new_leaves[i] = std::move(leaves_[offset_ + i]);
    }
    leaves_ = std::move(new_leaves);
    capacity_ = new_cap;
    offset_ = 0;
    tree_.assign(capacity_, Partial{});
    for (size_t node = capacity_ - 1; node >= 1; --node) RecomputeNode(node);
  }

  AggregateFunctionPtr fn_;
  size_t capacity_ = 0;  // power of two; physical leaf count
  size_t offset_ = 0;    // physical index of logical leaf 0
  size_t size_ = 0;      // live leaves
  std::vector<Partial> leaves_;  // size capacity_
  std::vector<Partial> tree_;    // size capacity_, 1-based inner nodes
};

}  // namespace scotty

#endif  // SCOTTY_CORE_FLAT_FAT_H_
