#include "runtime/pipeline.h"

#include <algorithm>
#include <chrono>

namespace scotty {

PipelineReport RunPipeline(TupleSource& src, WindowOperator& op,
                           uint64_t max_tuples, const PipelineOptions& opts) {
  PipelineReport report;
  Time max_ts = kNoTime;
  const auto start = std::chrono::steady_clock::now();
  Tuple t;
  for (uint64_t i = 0; i < max_tuples && src.Next(&t); ++i) {
    op.ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    ++report.tuples;
    if (opts.watermark_every > 0 && (i + 1) % opts.watermark_every == 0) {
      op.ProcessWatermark(max_ts - opts.watermark_delay);
      if (opts.drain_results) {
        for (const WindowResult& r : op.TakeResults()) {
          ++report.results;
          if (r.is_update) ++report.updates;
        }
      }
    }
  }
  if (max_ts != kNoTime) op.ProcessWatermark(max_ts);
  for (const WindowResult& r : op.TakeResults()) {
    ++report.results;
    if (r.is_update) ++report.updates;
  }
  const auto end = std::chrono::steady_clock::now();
  report.seconds = std::chrono::duration<double>(end - start).count();
  return report;
}

}  // namespace scotty
