#ifndef SCOTTY_RUNTIME_PARALLEL_EXECUTOR_H_
#define SCOTTY_RUNTIME_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/tuple_batch.h"
#include "core/window_operator.h"

namespace scotty {

class GeneralSlicingOperator;
class QueryRegistry;

/// Single-producer single-consumer channel between the source thread and
/// one worker, split into two rings:
///
///  - a columnar (SoA) tuple data ring: five parallel column arrays, so a
///    block of tuples transfers as five memcpys per ring segment (at most
///    two segments when the block wraps) instead of one struct copy per
///    tuple, and the consumer pops directly into a TupleBatchSoA that feeds
///    WindowOperator::ProcessTupleColumns without any re-layout;
///  - a small control ring for watermarks / snapshot barriers / stop
///    markers. Each control is stamped with the data-ring position it was
///    pushed at (`data_pos`), which restores the producer's exact
///    tuple/control interleaving on the consumer side: PopTuples never
///    returns tuples past the earliest pending control, and PopControl
///    only delivers a control once the data before it is consumed.
///
/// Memory ordering: the producer release-publishes each ring's tail; the
/// consumer refreshes its cached copy of the DATA tail before the CONTROL
/// tail. A control stamped with data_pos = P is pushed (and its ctrl tail
/// released) before any data beyond P is published, so by the time the
/// consumer's data-tail acquire observes data past P, a subsequent
/// control-tail acquire is guaranteed to observe the control — the consumer
/// can never consume data across an unseen control boundary.
///
/// Both endpoints keep cached copies of the other side's positions and only
/// refresh (acquire loads) when the cache says full/empty, amortizing the
/// atomic traffic to a handful of operations per block.
class SpscQueue {
 public:
  /// `capacity` must be a power of two (ring indices are masked) and a
  /// multiple of kBatchAlignElems (wrapped column segments then keep the
  /// SoA alignment quantum); violating either aborts with a diagnostic.
  explicit SpscQueue(size_t capacity = 1 << 14);

  struct Control {
    enum class Kind : uint8_t { kWatermark, kSnapshot, kStop };
    Kind kind = Kind::kWatermark;
    Time watermark = kNoTime;
    /// Data-ring position this control was pushed at: every tuple with ring
    /// position < data_pos precedes it in the stream. Stamped by
    /// PushControl; callers never set it.
    uint64_t data_pos = 0;
  };

  size_t capacity() const { return cap_; }

  /// Appends all tuples of the view to the data ring with per-column
  /// segment memcpys; blocks (spins + yields) while full. A null punct
  /// column is materialized as zeros in the ring.
  void PushTuples(const TupleColumnsView& cols);

  /// Bounded-blocking twin of PushTuples: spins at most until `timeout`
  /// elapses while the ring is full, then gives up and returns how many
  /// tuples actually transferred (a short count IS the backpressure signal;
  /// the transferred prefix stays in the ring and must not be re-pushed).
  /// This is what keeps a dead or stalled consumer from livelocking the
  /// producer forever — the unbounded PushTuples spin has no exit once the
  /// peer thread stops consuming.
  size_t TryPushTuplesFor(const TupleColumnsView& cols,
                          std::chrono::nanoseconds timeout);

  /// Appends a control marker at the current data position; blocks while
  /// the control ring is full.
  void PushControl(Control c);

  /// Bounded-blocking twin of PushControl: returns false (control NOT
  /// enqueued) if the control ring stays full past `timeout`.
  bool TryPushControlFor(Control c, std::chrono::nanoseconds timeout);

  /// Appends up to `max_n` tuples to `*out`, never crossing the earliest
  /// pending control. Returns the number appended (0 when empty or when a
  /// control is due first).
  size_t PopTuples(TupleBatchSoA* out, size_t max_n);

  /// Pops the next control, but only once every tuple pushed before it has
  /// been consumed; returns false when no control is deliverable yet.
  bool PopControl(Control* out);

  /// Monitoring-grade data-ring fill fraction in [0, 1]: relaxed loads of
  /// both positions, so the value may lag either endpoint by a few blocks —
  /// fine for admission decisions, never for correctness.
  double ApproxOccupancy() const;

 private:
  TupleColumnsView RingView(size_t pos, size_t n) const;
  void CopyIn(size_t pos, const TupleColumnsView& v);

  static constexpr size_t kCtrlCapacity = 256;  // power of two

  size_t cap_ = 0;
  size_t mask_ = 0;
  TupleBatchSoA ring_;  // used as raw aligned column storage, size unused
  std::vector<Control> ctrl_;
  alignas(64) std::atomic<uint64_t> data_head_{0};  // consumer position
  alignas(64) std::atomic<uint64_t> data_tail_{0};  // producer position
  alignas(64) std::atomic<uint64_t> ctrl_head_{0};
  alignas(64) std::atomic<uint64_t> ctrl_tail_{0};
  // Position caches, each owned exclusively by one side. Always <= the true
  // value, so capacity/occupancy estimates are conservative.
  alignas(64) uint64_t data_head_cache_ = 0;  // producer-owned
  uint64_t ctrl_head_cache_ = 0;              // producer-owned
  alignas(64) uint64_t data_tail_cache_ = 0;  // consumer-owned
  uint64_t ctrl_tail_cache_ = 0;              // consumer-owned
};

/// Parallel execution of window aggregation (paper Section 5.3,
/// "Parallelization", and the scaling experiment of Section 6.4) in one of
/// two modes:
///
///  - Key-partitioned (default): tuples route to workers by key hash,
///    watermarks broadcast, every worker runs an independent operator —
///    the standard intra-node parallelism of Flink/Spark/Storm.
///  - Shared pre-aggregation (Options::shared_preagg, NebulaStream-style):
///    ONE shared GeneralSlicingOperator; tuples route round-robin in
///    chunks; each worker folds its share into thread-local slice buckets
///    (runtime/local_slice_store.h) and only merges finished buckets into
///    the shared operator at watermark boundaries, under a merge mutex.
///    The last worker to arrive at a watermark triggers the shared
///    operator and drains its results. Requires a context-free time-lane
///    workload with commutative aggregations and a preagg_slice_len that
///    divides every window length and slide.
///
/// Ingestion is columnar end to end: the producer stages tuples per worker
/// in SoA batches, transfers them with per-column memcpys through the SPSC
/// data ring, and workers feed the popped batches straight to
/// ProcessTupleColumns. Watermarks flush all staging first, so the
/// per-worker item order is identical to unbatched execution.
class ParallelExecutor {
 public:
  struct Options {
    /// Ring capacity per worker queue; must be a power of two and a
    /// multiple of kBatchAlignElems.
    size_t queue_capacity = 1 << 14;
    /// Producer-side staging batch per worker (also the workers' pop batch).
    /// 0 or 1 disables staging: every tuple is pushed individually.
    size_t batch_size = 256;
    /// Shared-operator pre-aggregation mode (see class comment). The
    /// factory must produce a GeneralSlicingOperator — or a QueryRegistry,
    /// whose inner engine then receives the merged buckets while the
    /// registry demuxes results to its queries — with all-commutative
    /// aggregations. A registry factory must register its queries before
    /// returning (the bucket layout is derived from the operator's windows).
    bool shared_preagg = false;
    /// Thread-local bucket length for shared_preagg; must be positive and
    /// divide every window length and slide of the shared operator's
    /// queries (bucket edges then cover all window edges).
    Time preagg_slice_len = 0;
    /// Key-partitioned mode only: called from each worker thread with the
    /// results drained at every watermark/stop control (instead of
    /// discarding them after counting). Invoked concurrently from all
    /// workers — the callback must provide its own synchronization.
    std::function<void(const std::vector<WindowResult>&)> result_sink;
    /// Called once per worker-loop iteration from the worker's own thread
    /// (argument = worker index), BEFORE it attempts to pop. Testing hook:
    /// sleeping in it simulates a stalled/slow consumer so the producer-side
    /// backpressure and shedding paths can be driven deterministically.
    std::function<void(size_t)> worker_tick_hook;
  };

  ParallelExecutor(size_t num_workers,
                   std::function<std::unique_ptr<WindowOperator>()> factory);
  ParallelExecutor(size_t num_workers,
                   std::function<std::unique_ptr<WindowOperator>()> factory,
                   Options opts);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  void Start();
  void Push(const Tuple& t);
  /// Bounded-blocking twin of Push for overload admission (meaningful with
  /// batch_size <= 1, where nothing is staged): returns false — tuple NOT
  /// enqueued — if the target worker's ring stays full past `timeout`. The
  /// caller decides what a false means (shed the tuple, raise an error);
  /// the executor itself never drops anything.
  bool TryPushFor(const Tuple& t, std::chrono::nanoseconds timeout);
  /// Routes a block of tuples through the per-worker staging buffers.
  void PushBatch(std::span<const Tuple> tuples);
  /// Columnar ingestion: like PushBatch but reads the SoA columns directly
  /// (no Tuple materialization on the producer side). In shared mode whole
  /// sub-ranges forward zero-copy into the worker rings.
  void PushColumns(const TupleColumnsView& cols);
  void PushWatermark(Time wm);
  /// Bounded-blocking twin of PushWatermark (key-partitioned mode only):
  /// flushes staging, then pushes the watermark control to every queue with
  /// a per-queue timeout. Returns false when any queue stayed full — the
  /// watermark may then have reached only a prefix of the workers, so a
  /// false is a fatal stall signal (a dead worker thread), not a retryable
  /// condition. Punctuation-bearing controls are never shed: the caller
  /// either delivers them everywhere or aborts the run.
  bool TryPushWatermarkFor(Time wm, std::chrono::nanoseconds timeout);
  /// Sends stop markers, drains, and joins all workers. Idempotent: a
  /// second call (e.g. the destructor after an error-path Finish) is a
  /// no-op, so error handling can always call Finish unconditionally.
  /// In shared mode every worker merges its remaining local buckets into
  /// the shared operator before exiting; windows past the last watermark
  /// have NOT been triggered — finalize via SharedOperator().
  void Finish();

  /// Snapshot barrier (DESIGN.md §7): broadcasts a barrier marker to every
  /// worker queue — after flushing staged tuples, so the barrier sits at
  /// the exact point of the item stream the caller chose (canonically right
  /// after PushWatermark) — then blocks until every worker has serialized
  /// its operator at that point. Each worker state is serialized inside its
  /// own thread between two items, never concurrently with processing, so
  /// the captured state is exactly what a sequential per-worker run would
  /// have had. Returns one combined tagged v2 blob (worker count +
  /// length-prefixed per-worker states); empty on failure (an operator
  /// without snapshot support, or shared pre-aggregation mode, whose
  /// workers hold in-flight thread-local state no barrier point captures).
  std::vector<uint8_t> SnapshotAtBarrier();

  /// Restores every worker operator from a blob produced by
  /// SnapshotAtBarrier. Must be called before Start(). When the blob's
  /// worker count differs from this executor's, the per-worker states are
  /// re-partitioned onto the new topology (rescaled restore) — possible
  /// exactly when every worker ran a KeyedWindowOperator, whose state
  /// decomposes into per-key units that re-route by the same hash used for
  /// live tuples; non-keyed states still fail with a worker-count mismatch.
  /// On any decode failure all operators are rebuilt fresh from the factory
  /// (never half-restored) and false is returned with `*error` set.
  bool RestoreOperators(const std::vector<uint8_t>& blob,
                        std::string* error = nullptr);

  uint64_t TotalResults() const { return total_results_.load(); }
  /// Max data-ring fill fraction across all worker queues (see
  /// SpscQueue::ApproxOccupancy) — the admission signal a
  /// BackpressureController samples between pushes.
  double ApproxMaxQueueFraction() const;
  size_t MemoryUsageBytes() const;
  size_t num_workers() const { return num_workers_; }
  const Options& options() const { return opts_; }

  /// Shared mode only: the one shared slicing engine (null otherwise).
  /// With a QueryRegistry factory this is the registry's inner engine.
  /// Only touch it before Start() or after Finish() — workers merge into
  /// it concurrently in between.
  GeneralSlicingOperator* SharedOperator() { return shared_op_; }

  /// Shared mode with a QueryRegistry factory: the registry (null
  /// otherwise). Same access rule as SharedOperator().
  QueryRegistry* SharedRegistry() { return shared_registry_; }

  /// Shared mode only: moves out every result the shared operator emitted
  /// at watermark barriers so far. Call after Finish() (workers append
  /// concurrently while running).
  std::vector<WindowResult> TakeSharedResults();

  /// The key-routing function: which of `workers` queues a key hashes to.
  /// Exposed so rescaled restore (and its tests) re-bucket per-key state
  /// with the exact same placement live tuples will use afterwards.
  static size_t WorkerIndexForKey(int64_t key, size_t workers) {
    return static_cast<size_t>(
               static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ULL >> 32) %
           workers;
  }

 private:
  void WorkerLoop(size_t i);
  void SharedWorkerLoop(size_t i);
  size_t WorkerFor(const Tuple& t) const;
  void FlushStaging(size_t w);
  void FlushAllStaging();
  void AdvanceRoundRobin() { rr_worker_ = (rr_worker_ + 1) % num_workers_; }

  Options opts_;
  size_t num_workers_ = 0;
  std::function<std::unique_ptr<WindowOperator>()> factory_;
  std::vector<std::unique_ptr<WindowOperator>> operators_;
  GeneralSlicingOperator* shared_op_ = nullptr;  // shared mode only
  QueryRegistry* shared_registry_ = nullptr;     // shared mode + registry
  std::vector<std::unique_ptr<SpscQueue>> queues_;
  std::vector<TupleBatchSoA> staging_;  // producer-owned, one per worker
  size_t rr_worker_ = 0;                // shared-mode chunk routing cursor
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> total_results_{0};
  bool started_ = false;
  bool finished_ = false;

  // Shared mode: merge mutex serializing every access to shared_op_ while
  // workers run, plus the per-watermark arrival barrier. A barrier entry is
  // appended (under the mutex) before the watermark control is broadcast;
  // workers arrive in watermark order (their queues are FIFO), so entries
  // complete strictly front-to-back and the last arrival triggers the
  // shared operator.
  struct Barrier {
    Time wm;
    size_t remaining;
  };
  std::mutex merge_mu_;
  std::deque<Barrier> barriers_;
  uint64_t barriers_popped_ = 0;  // completed entries, = index of front
  std::vector<WindowResult> shared_results_;

  // In-flight snapshot barrier: the producer parks on snap_remaining_ while
  // each worker serializes into its slot. Only one barrier is in flight at
  // a time (SnapshotAtBarrier blocks), so plain slots + one atomic counter
  // (release on the worker side, acquire on the producer side) suffice.
  std::vector<std::vector<uint8_t>> snap_slots_;
  std::atomic<size_t> snap_remaining_{0};
};

/// Assembles per-worker serialized states into the combined tagged blob
/// format SnapshotAtBarrier produces (tag + version + count + one
/// length-prefixed state per worker). Exposed so deterministic harnesses
/// can build topology blobs without running worker threads.
std::vector<uint8_t> BuildParallelSnapshotBlob(
    const std::vector<std::vector<uint8_t>>& worker_states);

/// Inverse of BuildParallelSnapshotBlob: validates the tag/version/framing
/// and splits the blob back into per-worker states. Returns false with
/// `*error` set on foreign or truncated bytes.
bool ParseParallelSnapshotBlob(const std::vector<uint8_t>& blob,
                               std::vector<std::vector<uint8_t>>* out,
                               std::string* error);

/// Re-partitions per-worker keyed operator states (the decoded payloads of
/// a SnapshotAtBarrier blob taken with W workers) onto `new_workers`
/// buckets: every state must parse as a KeyedWindowOperator v2 payload; the
/// per-key units and pending results are re-routed by
/// ParallelExecutor::WorkerIndexForKey and reassembled into one canonical
/// state per new worker (empty workers get an empty keyed state carrying
/// the merged watermark). Returns false with `*error` set when any state is
/// not keyed — non-keyed operator state has no per-key decomposition.
bool RepartitionKeyedStates(
    const std::vector<std::vector<uint8_t>>& worker_states,
    size_t new_workers, std::vector<std::vector<uint8_t>>* out,
    std::string* error);

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_PARALLEL_EXECUTOR_H_
