#!/usr/bin/env bash
# Crash-injection sweep over the checkpoint/restore subsystem (DESIGN.md §7).
#
# For every windowing technique: record the result log of an uninterrupted
# checkpointed run, then for every barrier index n kill the process with
# SCOTTY_CRASH_AFTER=n (hard std::_Exit right after the n-th snapshot is
# persisted), resume from the newest snapshot on disk, and require the
# concatenated crashed+resumed log to match the reference.
#
# The match contract depends on the persistence mode (5th argument):
#   sync-full (default)  exactly-once: the concatenated log is byte-identical
#                        to the reference — no result lost, duplicated, or
#                        altered.
#   async-full /         at-least-once: the crash fires inside the persist
#   async-incremental    thread while ingestion runs ahead of the durable
#                        snapshot, so recovery replays a suffix the crashed
#                        run already logged. Required: every reference line
#                        appears in the concatenated log with at least its
#                        reference multiplicity (no loss), and every
#                        concatenated line exists somewhere in the reference
#                        (no alteration or invention).
#
# When a corpus directory is given (6th argument), every one-line
# reproducer in it is additionally replayed through the differential
# harness's fault-injected crash dimension (fuzz_differential --crash=-1),
# so the sweep exercises exactly the stream/query shapes the guided fuzzer
# found interesting — not just the fixed crash_injection workload.
#
# Usage: crash_sweep.sh <crash_injection_binary> [workdir] [tuples] [wm_every] [mode] [corpus_dir]

set -u

BIN=${1:?usage: crash_sweep.sh <crash_injection_binary> [workdir] [tuples] [wm_every] [mode] [corpus_dir]}
WORK=${2:-$(mktemp -d)}
TUPLES=${3:-4096}
WM_EVERY=${4:-256}
MODE=${5:-sync-full}
CORPUS=${6:-}
BARRIERS=$((TUPLES / WM_EVERY))

TECHNIQUES="slicing-lazy slicing-eager slicing-inorder tuple-buffer aggregate-tree buckets"
if [ "$MODE" != "sync-full" ]; then
  # The async persist path is technique-independent (the coordinator
  # serializes whatever the operator hands it); slicing covers both the
  # delta-capable and the full-snapshot lanes.
  TECHNIQUES="slicing-lazy slicing-eager"
fi

mkdir -p "$WORK"
failures=0
total=0

# check_logs <out> <ref>: 0 iff <out> matches <ref> under the mode's contract.
check_logs() {
  out=$1
  ref=$2
  if [ "$MODE" = "sync-full" ]; then
    cmp -s "$out" "$ref"
    return $?
  fi
  sort "$ref" > "$WORK/.ref.sorted"
  sort "$out" > "$WORK/.out.sorted"
  # No loss: reference lines missing from the output (multiset difference).
  if [ -n "$(comm -23 "$WORK/.ref.sorted" "$WORK/.out.sorted")" ]; then
    return 1
  fi
  # No alteration: output lines that never occur in the reference.
  sort -u "$WORK/.ref.sorted" -o "$WORK/.ref.sorted"
  sort -u "$WORK/.out.sorted" -o "$WORK/.out.sorted"
  if [ -n "$(comm -23 "$WORK/.out.sorted" "$WORK/.ref.sorted")" ]; then
    return 1
  fi
  return 0
}

for tech in $TECHNIQUES; do
  ref="$WORK/ref-$tech.log"
  rm -rf "$WORK/ref-dir-$tech"
  mkdir -p "$WORK/ref-dir-$tech"
  if ! "$BIN" --technique="$tech" --tuples="$TUPLES" --wm-every="$WM_EVERY" \
       --mode="$MODE" --dir="$WORK/ref-dir-$tech" --out="$ref" > /dev/null; then
    echo "FAIL: reference run for $tech did not complete"
    exit 1
  fi

  for n in $(seq 1 "$BARRIERS"); do
    total=$((total + 1))
    dir="$WORK/crash-$tech-$n"
    out="$WORK/out-$tech-$n.log"
    rm -rf "$dir" "$out"
    mkdir -p "$dir"
    SCOTTY_CRASH_AFTER=$n "$BIN" --technique="$tech" --tuples="$TUPLES" \
        --wm-every="$WM_EVERY" --mode="$MODE" --dir="$dir" --out="$out" \
        > /dev/null
    rc=$?
    if [ "$rc" -eq 42 ]; then
      if ! "$BIN" --technique="$tech" --tuples="$TUPLES" \
           --wm-every="$WM_EVERY" --mode="$MODE" --dir="$dir" --out="$out" \
           --resume > /dev/null; then
        echo "FAIL: $tech crash=$n resume did not complete"
        failures=$((failures + 1))
        continue
      fi
    elif [ "$rc" -ne 0 ]; then
      echo "FAIL: $tech crash=$n run exited with $rc"
      failures=$((failures + 1))
      continue
    fi
    if ! check_logs "$out" "$ref"; then
      echo "FAIL: $tech crash=$n recovered log differs from reference ($MODE)"
      failures=$((failures + 1))
      continue
    fi
    rm -rf "$dir" "$out"
  done
  echo "OK: $tech recovered at all $BARRIERS barriers ($MODE)"
done

# Corpus replay: run every reproducer line through the differential
# harness's crash dimension. fuzz_differential is expected to live next to
# the crash_injection binary (both build into build/tests/).
if [ -n "$CORPUS" ] && [ -d "$CORPUS" ]; then
  FUZZ="$(dirname "$BIN")/fuzz_differential"
  if [ ! -x "$FUZZ" ]; then
    echo "crash sweep: corpus dir given but $FUZZ not built" >&2
    exit 1
  fi
  for repro in "$CORPUS"/*.repro; do
    [ -e "$repro" ] || continue
    line=$(grep -v '^[[:space:]]*#' "$repro" | grep -v '^[[:space:]]*$' | head -n 1)
    [ -n "$line" ] || continue
    total=$((total + 1))
    case "$line" in
      *--crash=*) extra="" ;;
      *) extra="--crash=-1" ;;
    esac
    # shellcheck disable=SC2086
    if ! "$FUZZ" $line $extra > /dev/null; then
      echo "FAIL: corpus crash replay $(basename "$repro")"
      failures=$((failures + 1))
    fi
  done
  echo "OK: corpus crash replay ($(ls "$CORPUS"/*.repro 2>/dev/null | wc -l) reproducers)"
fi

if [ "$failures" -ne 0 ]; then
  echo "crash sweep: $failures/$total cases FAILED"
  exit 1
fi
echo "crash sweep: $total cases passed"
