#include "aggregates/kernels.h"

#include <algorithm>
#include <atomic>
#include <limits>

#if !defined(SCOTTY_SIMD_DISABLED) && \
    (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SCOTTY_SIMD_X86 1
#include <immintrin.h>
#endif

namespace scotty::simd {
namespace {

std::atomic<KernelMode> g_override{KernelMode::kAuto};

double SumScalar(const double* v, size_t n, double acc) {
  for (size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

double MinScalar(const double* v, size_t n, double m) {
  for (size_t i = 0; i < n; ++i) m = std::min(m, v[i]);
  return m;
}

double MaxScalar(const double* v, size_t n, double m) {
  for (size_t i = 0; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

size_t MonotoneRunScalar(const Time* ts, size_t n, Time last_ts, Time bound) {
  Time prev = last_ts;
  for (size_t i = 0; i < n; ++i) {
    if (ts[i] < prev || ts[i] >= bound) return i;
    prev = ts[i];
  }
  return n;
}

#if defined(SCOTTY_SIMD_X86)

double MinSse2(const double* v, size_t n, double m) {
  size_t i = 0;
  if (n >= 4) {
    __m128d m0 = _mm_set1_pd(m);
    __m128d m1 = m0;
    for (; i + 4 <= n; i += 4) {
      m0 = _mm_min_pd(m0, _mm_loadu_pd(v + i));
      m1 = _mm_min_pd(m1, _mm_loadu_pd(v + i + 2));
    }
    m0 = _mm_min_pd(m0, m1);
    m = std::min(_mm_cvtsd_f64(m0),
                 _mm_cvtsd_f64(_mm_unpackhi_pd(m0, m0)));
  }
  for (; i < n; ++i) m = std::min(m, v[i]);
  return m;
}

double MaxSse2(const double* v, size_t n, double m) {
  size_t i = 0;
  if (n >= 4) {
    __m128d m0 = _mm_set1_pd(m);
    __m128d m1 = m0;
    for (; i + 4 <= n; i += 4) {
      m0 = _mm_max_pd(m0, _mm_loadu_pd(v + i));
      m1 = _mm_max_pd(m1, _mm_loadu_pd(v + i + 2));
    }
    m0 = _mm_max_pd(m0, m1);
    m = std::max(_mm_cvtsd_f64(m0),
                 _mm_cvtsd_f64(_mm_unpackhi_pd(m0, m0)));
  }
  for (; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

// The build does not pass -mavx2 (the binary must run on SSE2-only hosts),
// so AVX2 bodies are compiled per-function via the target attribute and
// only ever called after a cpuid probe.
__attribute__((target("avx2")))
double MinAvx2(const double* v, size_t n, double m) {
  size_t i = 0;
  if (n >= 8) {
    __m256d m0 = _mm256_set1_pd(m);
    __m256d m1 = m0;
    for (; i + 8 <= n; i += 8) {
      m0 = _mm256_min_pd(m0, _mm256_loadu_pd(v + i));
      m1 = _mm256_min_pd(m1, _mm256_loadu_pd(v + i + 4));
    }
    m0 = _mm256_min_pd(m0, m1);
    __m128d lo = _mm256_castpd256_pd128(m0);
    __m128d hi = _mm256_extractf128_pd(m0, 1);
    lo = _mm_min_pd(lo, hi);
    m = std::min(_mm_cvtsd_f64(lo),
                 _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo)));
  }
  for (; i < n; ++i) m = std::min(m, v[i]);
  return m;
}

__attribute__((target("avx2")))
double MaxAvx2(const double* v, size_t n, double m) {
  size_t i = 0;
  if (n >= 8) {
    __m256d m0 = _mm256_set1_pd(m);
    __m256d m1 = m0;
    for (; i + 8 <= n; i += 8) {
      m0 = _mm256_max_pd(m0, _mm256_loadu_pd(v + i));
      m1 = _mm256_max_pd(m1, _mm256_loadu_pd(v + i + 4));
    }
    m0 = _mm256_max_pd(m0, m1);
    __m128d lo = _mm256_castpd256_pd128(m0);
    __m128d hi = _mm256_extractf128_pd(m0, 1);
    lo = _mm_max_pd(lo, hi);
    m = std::max(_mm_cvtsd_f64(lo),
                 _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo)));
  }
  for (; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

__attribute__((target("avx2")))
size_t MonotoneRunAvx2(const Time* ts, size_t n, Time last_ts, Time bound) {
  // cur >= bound  <=>  cur > bound - 1; bound == INT64_MIN would underflow
  // but then no timestamp can be < bound at all.
  if (bound == std::numeric_limits<Time>::min()) return 0;
  const __m256i bound_m1 = _mm256_set1_epi64x(bound - 1);
  size_t i = 0;
  Time prev_last = last_ts;
  for (; i + 4 <= n; i += 4) {
    __m256i cur = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ts + i));
    // prev = [prev_last, cur0, cur1, cur2]: lanes shifted up by one with the
    // carried-in last timestamp in lane 0.
    __m256i shifted = _mm256_permute4x64_epi64(cur, _MM_SHUFFLE(2, 1, 0, 0));
    __m256i prev = _mm256_blend_epi32(
        shifted, _mm256_set1_epi64x(prev_last), 0x03);
    __m256i viol = _mm256_or_si256(_mm256_cmpgt_epi64(prev, cur),
                                   _mm256_cmpgt_epi64(cur, bound_m1));
    int mask = _mm256_movemask_pd(_mm256_castsi256_pd(viol));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
    prev_last = ts[i + 3];
  }
  return i + MonotoneRunScalar(ts + i, n - i, prev_last, bound);
}

bool DetectAvx2() { return __builtin_cpu_supports("avx2"); }

#endif  // SCOTTY_SIMD_X86

}  // namespace

KernelMode BestSupportedMode() {
#if defined(SCOTTY_SIMD_X86)
  static const KernelMode best =
      DetectAvx2() ? KernelMode::kAvx2 : KernelMode::kSse2;
  return best;
#else
  return KernelMode::kScalar;
#endif
}

KernelMode ActiveMode() {
  KernelMode o = g_override.load(std::memory_order_relaxed);
  if (o == KernelMode::kAuto) return BestSupportedMode();
  return std::min(o, BestSupportedMode());
}

void SetModeForTesting(KernelMode mode) {
  g_override.store(mode, std::memory_order_relaxed);
}

const char* ModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kSse2:
      return "sse2";
    case KernelMode::kAvx2:
      return "avx2";
  }
  return "?";
}

bool ParseMode(std::string_view name, KernelMode* out) {
  if (name == "auto") {
    *out = KernelMode::kAuto;
  } else if (name == "scalar") {
    *out = KernelMode::kScalar;
  } else if (name == "sse2") {
    *out = KernelMode::kSse2;
  } else if (name == "avx2") {
    *out = KernelMode::kAvx2;
  } else {
    return false;
  }
  return true;
}

double SumColumn(const double* v, size_t n, double acc) {
  // All modes: serial fold, by contract (see kernels.h).
  return SumScalar(v, n, acc);
}

double MinColumn(const double* v, size_t n, double m) {
#if defined(SCOTTY_SIMD_X86)
  switch (ActiveMode()) {
    case KernelMode::kAvx2:
      return MinAvx2(v, n, m);
    case KernelMode::kSse2:
      return MinSse2(v, n, m);
    default:
      break;
  }
#endif
  return MinScalar(v, n, m);
}

double MaxColumn(const double* v, size_t n, double m) {
#if defined(SCOTTY_SIMD_X86)
  switch (ActiveMode()) {
    case KernelMode::kAvx2:
      return MaxAvx2(v, n, m);
    case KernelMode::kSse2:
      return MaxSse2(v, n, m);
    default:
      break;
  }
#endif
  return MaxScalar(v, n, m);
}

size_t MonotoneRunLength(const Time* ts, size_t n, Time last_ts, Time bound) {
#if defined(SCOTTY_SIMD_X86)
  if (ActiveMode() == KernelMode::kAvx2) {
    return MonotoneRunAvx2(ts, n, last_ts, bound);
  }
#endif
  return MonotoneRunScalar(ts, n, last_ts, bound);
}

}  // namespace scotty::simd
