// Tests for Slice: the paper's three fundamental operations (merge, split,
// update) plus tuple retention and memory accounting.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/basic.h"
#include "aggregates/ordered.h"
#include "core/slice.h"
#include "tests/test_util.h"

namespace scotty {
namespace {

using testutil::T;

std::vector<AggregateFunctionPtr> SumOnly() {
  return {std::make_shared<SumAggregation>()};
}

std::vector<AggregateFunctionPtr> SumAndConcat() {
  return {std::make_shared<SumAggregation>(),
          std::make_shared<ConcatAggregation>()};
}

TEST(Slice, AddTupleUpdatesAggregateAndMetadata) {
  auto fns = SumOnly();
  Slice s(0, 10, fns.size());
  s.AddTuple(T(3, 5.0, 0), fns, /*store_tuple=*/false);
  s.AddTuple(T(7, 2.0, 1), fns, false);
  EXPECT_EQ(s.tuple_count(), 2u);
  EXPECT_EQ(s.t_first(), 3);
  EXPECT_EQ(s.t_last(), 7);
  EXPECT_DOUBLE_EQ(s.agg(0).Get<double>(), 7.0);
  EXPECT_TRUE(s.tuples().empty());  // not retained
}

TEST(Slice, MetadataIndependentOfBounds) {
  // The paper's example: slice [1, 10) whose first tuple is at 2, last at 9.
  auto fns = SumOnly();
  Slice s(1, 10, fns.size());
  s.AddTuple(T(2, 1.0, 0), fns, false);
  s.AddTuple(T(9, 1.0, 1), fns, false);
  EXPECT_EQ(s.start(), 1);
  EXPECT_EQ(s.end(), 10);
  EXPECT_EQ(s.t_first(), 2);
  EXPECT_EQ(s.t_last(), 9);
}

TEST(Slice, StoredTuplesKeptSortedByTsThenSeq) {
  auto fns = SumOnly();
  Slice s(0, 100, fns.size());
  s.AddTuple(T(30, 1.0, 0), fns, true);
  s.AddTuple(T(10, 2.0, 1), fns, true);
  s.AddTuple(T(30, 3.0, 2), fns, true);
  s.AddTuple(T(20, 4.0, 3), fns, true);
  ASSERT_EQ(s.tuples().size(), 4u);
  EXPECT_EQ(s.tuples()[0].ts, 10);
  EXPECT_EQ(s.tuples()[1].ts, 20);
  EXPECT_EQ(s.tuples()[2].ts, 30);
  EXPECT_EQ(s.tuples()[2].seq, 0u);  // seq breaks the tie
  EXPECT_EQ(s.tuples()[3].seq, 2u);
}

TEST(Slice, MergeCombinesAggregatesAndRange) {
  auto fns = SumOnly();
  Slice a(0, 10, fns.size());
  a.AddTuple(T(5, 1.0, 0), fns, false);
  Slice b(10, 20, fns.size());
  b.AddTuple(T(12, 2.0, 1), fns, false);
  b.AddTuple(T(19, 3.0, 2), fns, false);
  a.MergeWith(b, fns);
  EXPECT_EQ(a.start(), 0);
  EXPECT_EQ(a.end(), 20);
  EXPECT_EQ(a.tuple_count(), 3u);
  EXPECT_EQ(a.t_first(), 5);
  EXPECT_EQ(a.t_last(), 19);
  EXPECT_DOUBLE_EQ(a.agg(0).Get<double>(), 6.0);
}

TEST(Slice, MergePreservesNonCommutativeOrder) {
  auto fns = SumAndConcat();
  Slice a(0, 10, fns.size());
  a.AddTuple(T(1, 1.0, 0), fns, true);
  a.AddTuple(T(2, 2.0, 1), fns, true);
  Slice b(10, 20, fns.size());
  b.AddTuple(T(11, 3.0, 2), fns, true);
  a.MergeWith(b, fns);
  const std::vector<double> expected = {1, 2, 3};
  EXPECT_EQ(ConcatAggregation().Lower(a.agg(1)).AsSequence(), expected);
}

TEST(Slice, MergeWithEmptySliceIsIdentity) {
  auto fns = SumOnly();
  Slice a(0, 10, fns.size());
  a.AddTuple(T(5, 4.0, 0), fns, false);
  Slice b(10, 20, fns.size());
  a.MergeWith(b, fns);
  EXPECT_DOUBLE_EQ(a.agg(0).Get<double>(), 4.0);
  EXPECT_EQ(a.end(), 20);
  EXPECT_EQ(a.t_last(), 5);
}

TEST(Slice, SplitRecomputesBothHalves) {
  auto fns = SumOnly();
  Slice s(0, 20, fns.size());
  s.AddTuple(T(2, 1.0, 0), fns, true);
  s.AddTuple(T(8, 2.0, 1), fns, true);
  s.AddTuple(T(12, 4.0, 2), fns, true);
  s.AddTuple(T(18, 8.0, 3), fns, true);
  Slice right = s.SplitAt(10, fns);
  EXPECT_EQ(s.start(), 0);
  EXPECT_EQ(s.end(), 10);
  EXPECT_EQ(right.start(), 10);
  EXPECT_EQ(right.end(), 20);
  EXPECT_EQ(s.tuple_count(), 2u);
  EXPECT_EQ(right.tuple_count(), 2u);
  EXPECT_DOUBLE_EQ(s.agg(0).Get<double>(), 3.0);
  EXPECT_DOUBLE_EQ(right.agg(0).Get<double>(), 12.0);
  EXPECT_EQ(s.t_last(), 8);
  EXPECT_EQ(right.t_first(), 12);
}

TEST(Slice, SplitAtTupleTimestampPutsItRight) {
  auto fns = SumOnly();
  Slice s(0, 20, fns.size());
  s.AddTuple(T(5, 1.0, 0), fns, true);
  s.AddTuple(T(10, 2.0, 1), fns, true);
  Slice right = s.SplitAt(10, fns);
  EXPECT_EQ(s.tuple_count(), 1u);
  EXPECT_EQ(right.tuple_count(), 1u);
  EXPECT_DOUBLE_EQ(right.agg(0).Get<double>(), 2.0);
}

TEST(Slice, MetadataOnlySplitWithoutStoredTuples) {
  auto fns = SumOnly();
  Slice s(0, 20, fns.size());
  s.AddTuple(T(2, 3.0, 0), fns, false);
  s.AddTuple(T(4, 4.0, 1), fns, false);
  // All tuples are left of the cut: the right half is empty metadata.
  Slice right = s.SplitAt(10, fns);
  EXPECT_DOUBLE_EQ(s.agg(0).Get<double>(), 7.0);
  EXPECT_TRUE(right.agg(0).IsIdentity());
  EXPECT_TRUE(right.empty());
}

TEST(Slice, MetadataOnlySplitAllTuplesRight) {
  auto fns = SumOnly();
  Slice s(0, 20, fns.size());
  s.AddTuple(T(15, 3.0, 0), fns, false);
  Slice right = s.SplitAt(10, fns);
  EXPECT_TRUE(s.agg(0).IsIdentity());
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(right.agg(0).Get<double>(), 3.0);
  EXPECT_EQ(right.t_first(), 15);
}

TEST(Slice, RecomputeFromTuplesFoldsInOrder) {
  auto fns = SumAndConcat();
  Slice s(0, 100, fns.size());
  s.AddTuple(T(30, 3.0, 0), fns, true);
  s.InsertTupleOnly(T(10, 1.0, 1));  // out-of-order arrival
  s.RecomputeFromTuples(fns);
  const std::vector<double> expected = {1, 3};  // event-time order
  EXPECT_EQ(ConcatAggregation().Lower(s.agg(1)).AsSequence(), expected);
  EXPECT_DOUBLE_EQ(s.agg(0).Get<double>(), 4.0);
}

TEST(Slice, PopLastTupleMaintainsMetadata) {
  auto fns = SumOnly();
  Slice s(0, 100, fns.size());
  s.AddTuple(T(10, 1.0, 0), fns, true);
  s.AddTuple(T(20, 2.0, 1), fns, true);
  const Tuple popped = s.PopLastTuple();
  EXPECT_EQ(popped.ts, 20);
  EXPECT_EQ(s.tuple_count(), 1u);
  EXPECT_EQ(s.t_last(), 10);
  const Tuple last = s.PopLastTuple();
  EXPECT_EQ(last.ts, 10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.t_first(), kNoTime);
}

TEST(Slice, DropTuplesReleasesStorageKeepsAggregates) {
  auto fns = SumOnly();
  Slice s(0, 100, fns.size());
  for (int i = 0; i < 100; ++i) s.AddTuple(T(i, 1.0, i), fns, true);
  const size_t with_tuples = s.MemoryBytes();
  s.DropTuples();
  EXPECT_LT(s.MemoryBytes(), with_tuples);
  EXPECT_DOUBLE_EQ(s.agg(0).Get<double>(), 100.0);
  EXPECT_EQ(s.tuple_count(), 100u);
}

TEST(Slice, MemoryBytesCountsTuplesAndPartials) {
  auto fns = SumOnly();
  Slice lean(0, 10, fns.size());
  lean.AddTuple(T(1, 1.0, 0), fns, false);
  Slice fat(0, 10, fns.size());
  for (int i = 0; i < 50; ++i) fat.AddTuple(T(i, 1.0, i), fns, true);
  EXPECT_GT(fat.MemoryBytes(), lean.MemoryBytes());
}

}  // namespace
}  // namespace scotty
