#ifndef SCOTTY_RUNTIME_OVERLOAD_H_
#define SCOTTY_RUNTIME_OVERLOAD_H_

// Overload admission control (DESIGN.md §11).
//
// A BackpressureController samples three load signals — SPSC ingest-queue
// occupancy, checkpoint persist-queue depth, and the coordinator's
// CheckpointHealthReport — and maps them onto a three-level admission
// policy for DATA tuples:
//
//  - kAccept: enqueue normally.
//  - kBackpressure: the producer blocks for a bounded time
//    (SpscQueue::TryPushTuplesFor) instead of spinning unboundedly; if the
//    consumer drains in time the tuple is admitted, otherwise the caller
//    escalates to shedding.
//  - kShed: the tuple is dropped BEFORE entering the pipeline and its
//    timestamp is recorded in a ShedLedger.
//
// Watermark safety is the load-bearing contract: punctuation, watermarks,
// and snapshot barriers are NEVER shed — only data tuples are. Shedding a
// data tuple can therefore only remove contributions from windows whose
// time range covers the shed timestamp; every other window stays
// bit-identical to the unfaulted run. The ShedLedger makes that precise:
// a result for window [start, end) is exact iff the ledger records no shed
// timestamp inside [start, end); otherwise it is flagged approximate. The
// fuzzer's --overload oracle enforces exactly this partition (delivered
// exact results ∪ shed-marked windows ≡ the unfaulted run).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.h"
#include "runtime/checkpoint_health.h"

namespace scotty {

/// Admission decision for one data tuple, in escalation order.
enum class Admission { kAccept, kBackpressure, kShed };

inline const char* AdmissionName(Admission a) {
  switch (a) {
    case Admission::kAccept:
      return "accept";
    case Admission::kBackpressure:
      return "backpressure";
    case Admission::kShed:
      return "shed";
  }
  return "unknown";
}

struct BackpressureOptions {
  /// Queue occupancy (0..1) at which admission moves to bounded blocking.
  double backpressure_fraction = 0.75;
  /// Queue occupancy at which admission moves to shedding.
  double shed_fraction = 0.95;
  /// Hysteresis: once shedding, occupancy must fall BELOW this before the
  /// controller accepts again — prevents flapping at the shed threshold.
  double resume_fraction = 0.50;
  /// Persist-queue depth (CheckpointCoordinator::PersistQueueDepth) at or
  /// above which persistence lag alone escalates to backpressure. Lag
  /// never escalates to shedding by itself: dropping data cannot make a
  /// slow disk faster, it only loses results.
  size_t persist_queue_soft_limit = 6;
  /// Bound for the blocking push under kBackpressure. Expiry means the
  /// consumer is stalled, not merely slow; the caller sheds.
  std::chrono::nanoseconds block_timeout = std::chrono::milliseconds(5);
};

/// Counters a backpressure-aware ingest loop accumulates; embedded in
/// pipeline/run reports so overload behavior is observable after the run.
struct OverloadStats {
  uint64_t accepted = 0;              ///< tuples admitted first try
  uint64_t backpressure_waits = 0;    ///< bounded blocking engaged
  uint64_t backpressure_timeouts = 0; ///< bounded wait expired → shed
  uint64_t shed = 0;                  ///< data tuples dropped
  uint64_t shed_decisions = 0;        ///< Decide() returned kShed
  uint64_t backpressure_decisions = 0;///< Decide() returned kBackpressure

  uint64_t offered() const { return accepted + shed; }
};

/// Per-window shed accounting. Records the event timestamp of every shed
/// data tuple; a window result is exact iff no shed timestamp falls inside
/// its [start, end) range. Single-threaded: owned by the ingest loop that
/// does the shedding.
class ShedLedger {
 public:
  void RecordShed(Time ts) {
    ++total_shed_;
    shed_ts_.push_back(ts);
  }

  uint64_t total_shed() const { return total_shed_; }
  bool empty() const { return shed_ts_.empty(); }

  /// True when at least one shed timestamp lies in [start, end) — the
  /// window's result may be approximate and must be flagged.
  bool OverlapsWindow(Time start, Time end) const {
    for (const Time ts : shed_ts_) {
      if (ts >= start && ts < end) return true;
    }
    return false;
  }

  /// Shed contributions to [start, end) — the per-window shed counter.
  uint64_t CountInWindow(Time start, Time end) const {
    uint64_t n = 0;
    for (const Time ts : shed_ts_) {
      if (ts >= start && ts < end) ++n;
    }
    return n;
  }

  const std::vector<Time>& shed_timestamps() const { return shed_ts_; }

 private:
  uint64_t total_shed_ = 0;
  std::vector<Time> shed_ts_;
};

/// Maps sampled load signals onto the three-level admission policy, with
/// hysteresis around the shed threshold. Not thread-safe: one controller
/// per ingest thread.
class BackpressureController {
 public:
  explicit BackpressureController(BackpressureOptions opts = {});

  /// Admission decision for the next data tuple. `queue_fraction` is the
  /// most-loaded SPSC queue's occupancy in 0..1
  /// (ParallelExecutor::ApproxMaxQueueFraction), `persist_queue_depth`
  /// the coordinator's pending persist count, `health` its latest report.
  Admission Decide(double queue_fraction, size_t persist_queue_depth,
                   const CheckpointHealthReport& health);

  /// True while the hysteresis latch keeps the controller in shed mode.
  bool shedding() const { return shedding_; }

  const BackpressureOptions& options() const { return opts_; }

  /// Decision counters (kAccept is not counted here; the ingest loop
  /// tracks admitted/shed tuples in its own OverloadStats).
  uint64_t shed_decisions() const { return shed_decisions_; }
  uint64_t backpressure_decisions() const { return backpressure_decisions_; }

 private:
  BackpressureOptions opts_;
  bool shedding_ = false;
  uint64_t shed_decisions_ = 0;
  uint64_t backpressure_decisions_ = 0;
};

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_OVERLOAD_H_
