#include "core/workload.h"

namespace scotty {

WorkloadCharacteristics Characterize(
    const std::vector<WindowPtr>& windows,
    const std::vector<AggregateFunctionPtr>& aggs, bool stream_in_order) {
  WorkloadCharacteristics w;
  w.stream_in_order = stream_in_order;
  for (const AggregateFunctionPtr& fn : aggs) {
    if (!fn) continue;
    if (!fn->IsCommutative()) w.all_commutative = false;
    if (!fn->IsInvertible()) w.all_invertible = false;
    if (fn->Class() == AggClass::kHolistic) w.any_holistic = true;
  }
  for (const WindowPtr& win : windows) {
    if (!win) continue;
    if (win->measure() == Measure::kCount) w.any_count_measure = true;
    const ContextClass cc = win->context_class();
    if (cc != ContextClass::kContextFree) {
      if (win->IsSession()) {
        w.any_session_window = true;
      } else {
        w.any_context_aware_non_session = true;
        if (cc == ContextClass::kForwardContextAware) w.any_fca_window = true;
        if (cc == ContextClass::kForwardContextFree) w.any_fcf_window = true;
      }
    }
  }
  return w;
}

StorageDecision DecideStorage(const WorkloadCharacteristics& w) {
  if (w.stream_in_order) {
    if (w.any_fca_window) {
      return {true,
              "in-order stream with forward-context-aware window: forward "
              "context adds window edges, so partial aggregates for "
              "arbitrary ranges must be recomputable from tuples"};
    }
    return {false, "in-order stream with CF/FCF/session windows only"};
  }
  if (!w.all_commutative) {
    return {true,
            "out-of-order stream with non-commutative aggregation: "
            "out-of-order tuples force recomputation in aggregation order"};
  }
  if (w.any_context_aware_non_session) {
    return {true,
            "out-of-order stream with context-aware (non-session) window: "
            "out-of-order tuples change backward context, requiring slice "
            "splits and recomputation"};
  }
  if (w.any_count_measure) {
    return {true,
            "out-of-order stream with count-based measure: an out-of-order "
            "tuple shifts the count of all succeeding tuples"};
  }
  return {false,
          "out-of-order stream, but commutative aggregations over "
          "context-free/session windows on non-count measures"};
}

bool SplitsPossible(const WorkloadCharacteristics& w) {
  if (w.stream_in_order) return w.any_fca_window;
  return w.any_context_aware_non_session;
}

RemovalStrategy DecideRemoval(const WorkloadCharacteristics& w) {
  if (w.stream_in_order || !w.any_count_measure) {
    return RemovalStrategy::kNotNeeded;
  }
  return w.all_invertible ? RemovalStrategy::kIncrementalInvert
                          : RemovalStrategy::kRecompute;
}

}  // namespace scotty
