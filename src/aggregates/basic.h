#ifndef SCOTTY_AGGREGATES_BASIC_H_
#define SCOTTY_AGGREGATES_BASIC_H_

#include <algorithm>
#include <string>

#include "aggregates/aggregate_function.h"
#include "aggregates/kernels.h"

namespace scotty {

/// SUM. Distributive, commutative, invertible.
class SumAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{t.value}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<double>() += other.Get<double>();
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    return Value{p.Get<double>()};
  }

  void Invert(Partial& from, const Partial& removed) const override {
    if (removed.IsIdentity()) return;
    from.Get<double>() -= removed.Get<double>();
  }

  /// Batched kernel: accumulate in a register, seeded with the existing
  /// partial so the left-to-right fold (and its rounding) matches the
  /// per-tuple path exactly.
  void LiftCombineBatch(std::span<const Tuple> batch,
                        Partial& into) const override {
    if (batch.empty()) return;
    size_t i = 0;
    double acc;
    if (into.IsIdentity()) {
      acc = batch[0].value;
      i = 1;
    } else {
      acc = into.Get<double>();
    }
    for (; i < batch.size(); ++i) acc += batch[i].value;
    into.Set(acc);
  }

  /// Columnar kernel: serial fold over the dense value column (fold order —
  /// and therefore rounding — is contractually identical to per-tuple).
  void LiftCombineColumns(const TupleColumnsView& cols,
                          Partial& into) const override {
    if (cols.empty()) return;
    size_t i = 0;
    double acc;
    if (into.IsIdentity()) {
      acc = cols.value[0];
      i = 1;
    } else {
      acc = into.Get<double>();
    }
    into.Set(simd::SumColumn(cols.value + i, cols.size - i, acc));
  }

  bool IsInvertible() const override { return true; }
  AggClass Class() const override { return AggClass::kDistributive; }
  std::string Name() const override { return "sum"; }
};

/// SUM with the invert capability deliberately disabled. The paper's
/// "sum w/o invert" (Fig. 13): a stand-in for arbitrary not-invertible
/// aggregations whose removals always force a slice recomputation.
class SumNoInvertAggregation : public SumAggregation {
 public:
  bool IsInvertible() const override { return false; }
  std::string Name() const override { return "sum-no-invert"; }
};

/// COUNT. Distributive, commutative, invertible.
class CountAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple&) const override {
    return Partial{Partial::Storage{int64_t{1}}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<int64_t>() += other.Get<int64_t>();
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{int64_t{0}};
    return Value{p.Get<int64_t>()};
  }

  void Invert(Partial& from, const Partial& removed) const override {
    if (removed.IsIdentity()) return;
    from.Get<int64_t>() -= removed.Get<int64_t>();
  }

  /// Batched kernel: integer addition is exact, so the whole batch collapses
  /// to one += regardless of fold order.
  void LiftCombineBatch(std::span<const Tuple> batch,
                        Partial& into) const override {
    if (batch.empty()) return;
    const int64_t n = static_cast<int64_t>(batch.size());
    if (into.IsIdentity()) {
      into.Set(n);
    } else {
      into.Get<int64_t>() += n;
    }
  }

  /// Columnar kernel: identical O(1) collapse; no column is even read.
  void LiftCombineColumns(const TupleColumnsView& cols,
                          Partial& into) const override {
    if (cols.empty()) return;
    const int64_t n = static_cast<int64_t>(cols.size);
    if (into.IsIdentity()) {
      into.Set(n);
    } else {
      into.Get<int64_t>() += n;
    }
  }

  bool IsInvertible() const override { return true; }
  AggClass Class() const override { return AggClass::kDistributive; }
  std::string Name() const override { return "count"; }
};

/// MIN. Distributive, commutative, NOT invertible (removing the minimum
/// cannot be undone incrementally).
class MinAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{t.value}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<double>() = std::min(into.Get<double>(), other.Get<double>());
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    return Value{p.Get<double>()};
  }

  bool TryRemove(Partial& from, const Partial& removed) const override {
    // Removing a value strictly greater than the minimum leaves it intact.
    if (from.IsIdentity() || removed.IsIdentity()) return true;
    return removed.Get<double>() > from.Get<double>();
  }

  /// Batched kernel: min is exact and associative; fold in a register.
  void LiftCombineBatch(std::span<const Tuple> batch,
                        Partial& into) const override {
    if (batch.empty()) return;
    size_t i = 0;
    double m;
    if (into.IsIdentity()) {
      m = batch[0].value;
      i = 1;
    } else {
      m = into.Get<double>();
    }
    for (; i < batch.size(); ++i) m = std::min(m, batch[i].value);
    into.Set(m);
  }

  /// Columnar kernel: lane-parallel vector min (value-identical to the
  /// serial fold; see the domain note in aggregates/kernels.h).
  void LiftCombineColumns(const TupleColumnsView& cols,
                          Partial& into) const override {
    if (cols.empty()) return;
    size_t i = 0;
    double m;
    if (into.IsIdentity()) {
      m = cols.value[0];
      i = 1;
    } else {
      m = into.Get<double>();
    }
    into.Set(simd::MinColumn(cols.value + i, cols.size - i, m));
  }

  AggClass Class() const override { return AggClass::kDistributive; }
  std::string Name() const override { return "min"; }
};

/// MAX. Distributive, commutative, NOT invertible.
class MaxAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{t.value}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<double>() = std::max(into.Get<double>(), other.Get<double>());
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    return Value{p.Get<double>()};
  }

  bool TryRemove(Partial& from, const Partial& removed) const override {
    if (from.IsIdentity() || removed.IsIdentity()) return true;
    return removed.Get<double>() < from.Get<double>();
  }

  /// Batched kernel: max is exact and associative; fold in a register.
  void LiftCombineBatch(std::span<const Tuple> batch,
                        Partial& into) const override {
    if (batch.empty()) return;
    size_t i = 0;
    double m;
    if (into.IsIdentity()) {
      m = batch[0].value;
      i = 1;
    } else {
      m = into.Get<double>();
    }
    for (; i < batch.size(); ++i) m = std::max(m, batch[i].value);
    into.Set(m);
  }

  /// Columnar kernel: lane-parallel vector max.
  void LiftCombineColumns(const TupleColumnsView& cols,
                          Partial& into) const override {
    if (cols.empty()) return;
    size_t i = 0;
    double m;
    if (into.IsIdentity()) {
      m = cols.value[0];
      i = 1;
    } else {
      m = into.Get<double>();
    }
    into.Set(simd::MaxColumn(cols.value + i, cols.size - i, m));
  }

  AggClass Class() const override { return AggClass::kDistributive; }
  std::string Name() const override { return "max"; }
};

}  // namespace scotty

#endif  // SCOTTY_AGGREGATES_BASIC_H_
