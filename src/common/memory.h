#ifndef SCOTTY_COMMON_MEMORY_H_
#define SCOTTY_COMMON_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace scotty {

/// Byte-cost model for the memory experiments (Table 1, Figure 10).
///
/// The paper measures JVM object sizes with Nashorn's ObjectSizeCalculator.
/// We account bytes explicitly instead: every operator implements
/// MemoryUsageBytes() by summing the constants below over its live state.
/// The constants reflect our native layouts, so the absolute numbers differ
/// from the JVM but the *formulas* of Table 1 are reproduced exactly.
struct MemoryModel {
  /// One stored stream tuple (ts, value, key, seq, flags; see common/tuple.h).
  static constexpr size_t kTupleBytes = sizeof(int64_t) * 3 + sizeof(double) + 8;

  /// One fixed-size partial aggregate (the variant slot of a Partial).
  /// Holistic partials additionally report their run-storage through
  /// Partial::DynamicBytes().
  static constexpr size_t kPartialBytes = 48;

  /// Slice metadata: t_start, t_end, t_first, t_last, count range.
  static constexpr size_t kSliceMetaBytes = sizeof(int64_t) * 6;

  /// Bucket metadata: window start/end, hash-map entry overhead.
  static constexpr size_t kBucketMetaBytes = sizeof(int64_t) * 2 + 32;

  /// One inner node of an aggregate tree (a partial aggregate).
  static constexpr size_t kTreeNodeBytes = kPartialBytes;
};

}  // namespace scotty

#endif  // SCOTTY_COMMON_MEMORY_H_
