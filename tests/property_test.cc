// Parameterized property sweeps: the general slicing operator must match
// brute-force window semantics across the cross product of workload
// characteristics the paper identifies — stream order x aggregation x
// window type x store mode.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "common/rng.h"
#include "core/general_slicing_operator.h"
#include "testing/harness.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::BruteForce;
using testutil::FinalResults;
using testutil::RunStream;
using testutil::T;

std::vector<Tuple> MakeStream(uint64_t seed, int n, double ooo_fraction,
                              Time max_delay, bool with_gaps) {
  testing::StreamSpec spec;
  spec.seed = seed;
  spec.num_tuples = n;
  spec.step_lo = 1;
  spec.step_hi = 3;
  spec.gap_probability = with_gaps ? 0.03 : 0.0;
  spec.gap_length = 40;
  spec.value_range = 30;
  spec.ooo_fraction = ooo_fraction;
  spec.max_delay = max_delay;
  return testing::GenerateStream(spec);
}

// Parameters: aggregation name, out-of-order fraction, store mode,
// window kind (0=tumbling, 1=sliding, 2=both).
using Param = std::tuple<std::string, double, StoreMode, int>;

class SlicingPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(SlicingPropertyTest, MatchesBruteForce) {
  const auto& [agg_name, ooo, mode, window_kind] = GetParam();
  GeneralSlicingOperator::Options o;
  o.stream_in_order = ooo == 0.0;
  o.allowed_lateness = 1000000;
  o.store_mode = mode;
  GeneralSlicingOperator op(o);
  op.AddAggregation(MakeAggregation(agg_name));
  std::vector<WindowPtr> windows;
  if (window_kind == 0 || window_kind == 2) {
    windows.push_back(std::make_shared<TumblingWindow>(17));
  }
  if (window_kind == 1 || window_kind == 2) {
    windows.push_back(std::make_shared<SlidingWindow>(24, 8));
  }
  for (const WindowPtr& w : windows) op.AddWindow(w);

  const std::vector<Tuple> stream =
      MakeStream(/*seed=*/std::hash<std::string>{}(agg_name) + window_kind,
                 250, ooo, 30, false);
  Time last = 0;
  for (const Tuple& t : stream) last = std::max(last, t.ts);
  auto fin = FinalResults(RunStream(op, stream, last + 1));
  ASSERT_FALSE(fin.empty());

  const AggregateFunctionPtr fn = MakeAggregation(agg_name);
  std::vector<Tuple> seqd = stream;
  for (size_t i = 0; i < seqd.size(); ++i) seqd[i].seq = i;
  for (const auto& [key, value] : fin) {
    const auto [w, a, s, e] = key;
    const Value expected = BruteForce(*fn, seqd, s, e);
    if (expected.IsEmpty() || value.IsEmpty()) {
      EXPECT_EQ(value.IsEmpty(), expected.IsEmpty()) << s << "," << e;
    } else if (expected.IsDouble()) {
      EXPECT_NEAR(value.AsDouble(), expected.AsDouble(), 1e-6)
          << agg_name << " [" << s << "," << e << ")";
    } else {
      EXPECT_EQ(value, expected) << agg_name << " [" << s << "," << e << ")";
    }
  }
}

// Same workload matrix, but comparing batched against per-tuple ingestion:
// every batch size must reproduce the per-tuple run bit-for-bit (no
// tolerance, even for stddev — the batch kernels preserve the fold order).
TEST_P(SlicingPropertyTest, BatchedIngestionBitIdenticalToPerTuple) {
  const auto& [agg_name, ooo, mode, window_kind] = GetParam();
  auto make = [&] {
    GeneralSlicingOperator::Options o;
    o.stream_in_order = ooo == 0.0;
    o.allowed_lateness = 1000000;
    o.store_mode = mode;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation(agg_name));
    if (window_kind == 0 || window_kind == 2) {
      op->AddWindow(std::make_shared<TumblingWindow>(17));
    }
    if (window_kind == 1 || window_kind == 2) {
      op->AddWindow(std::make_shared<SlidingWindow>(24, 8));
    }
    return op;
  };
  const std::vector<Tuple> stream =
      MakeStream(/*seed=*/std::hash<std::string>{}(agg_name) + window_kind,
                 250, ooo, 30, false);
  Time last = 0;
  for (const Tuple& t : stream) last = std::max(last, t.ts);
  const Time wm_lag = 31;  // > max_delay: mid-stream watermarks drop nothing

  auto ref_op = make();
  const auto ref =
      testing::RunToFinalResults(*ref_op, stream, last + 1, 64, wm_lag);
  ASSERT_FALSE(ref.empty());
  for (const size_t bs : {size_t{1}, size_t{7}, size_t{64}, stream.size()}) {
    auto op = make();
    const auto got = testing::RunToFinalResultsBatched(*op, stream, last + 1,
                                                       64, wm_lag, bs);
    EXPECT_EQ(got, ref) << agg_name << " batch=" << bs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadMatrix, SlicingPropertyTest,
    ::testing::Combine(
        ::testing::Values("sum", "count", "avg", "min", "max", "m4", "median",
                          "arg-max", "min-count", "stddev"),
        ::testing::Values(0.0, 0.25),
        ::testing::Values(StoreMode::kLazy, StoreMode::kEager),
        ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += std::get<1>(info.param) > 0 ? "_ooo" : "_inorder";
      name +=
          std::get<2>(info.param) == StoreMode::kLazy ? "_lazy" : "_eager";
      const int wk = std::get<3>(info.param);
      name += wk == 0 ? "_tumbling" : (wk == 1 ? "_sliding" : "_both");
      return name;
    });

// Session property sweep: sessions derived from the stream by brute force
// (split on gaps) must match the operator's session windows.
using SessionParam = std::tuple<double, StoreMode>;

class SessionPropertyTest : public ::testing::TestWithParam<SessionParam> {};

TEST_P(SessionPropertyTest, SessionsMatchGapSemantics) {
  const auto& [ooo, mode] = GetParam();
  const Time gap = 15;
  GeneralSlicingOperator::Options o;
  o.stream_in_order = ooo == 0.0;
  o.allowed_lateness = 1000000;
  o.store_mode = mode;
  GeneralSlicingOperator op(o);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(gap));

  const std::vector<Tuple> stream = MakeStream(77, 250, ooo, 25, true);
  Time last = 0;
  for (const Tuple& t : stream) last = std::max(last, t.ts);
  auto fin = FinalResults(RunStream(op, stream, last + gap + 1));

  // Brute-force sessions: sort by ts, split where the gap is exceeded.
  std::vector<Tuple> sorted = stream;
  std::sort(sorted.begin(), sorted.end(),
            [](const Tuple& a, const Tuple& b) { return a.ts < b.ts; });
  std::vector<std::tuple<Time, Time, double>> sessions;  // start, end, sum
  for (const Tuple& t : sorted) {
    if (!sessions.empty() &&
        t.ts < std::get<1>(sessions.back())) {
      std::get<1>(sessions.back()) = t.ts + gap;
      std::get<2>(sessions.back()) += t.value;
    } else {
      sessions.push_back({t.ts, t.ts + gap, t.value});
    }
  }
  ASSERT_EQ(fin.size(), sessions.size());
  for (const auto& [start, end, sum] : sessions) {
    const auto it = fin.find({0, 0, start, end});
    ASSERT_NE(it, fin.end()) << "missing session [" << start << "," << end
                             << ")";
    EXPECT_NEAR(it->second.Numeric(), sum, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SessionMatrix, SessionPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 0.2),
                       ::testing::Values(StoreMode::kLazy, StoreMode::kEager)),
    [](const ::testing::TestParamInfo<SessionParam>& info) {
      std::string name =
          std::get<0>(info.param) > 0 ? "ooo" : "inorder";
      name += std::get<1>(info.param) == StoreMode::kLazy ? "_lazy" : "_eager";
      return name;
    });

}  // namespace
}  // namespace scotty
