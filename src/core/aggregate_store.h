#ifndef SCOTTY_CORE_AGGREGATE_STORE_H_
#define SCOTTY_CORE_AGGREGATE_STORE_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "core/flat_fat.h"
#include "core/slice.h"
#include "windows/window.h"

namespace scotty {

/// Lazy vs eager aggregate store (paper Section 3.4): the lazy variant keeps
/// only slices and combines them on demand; the eager variant additionally
/// maintains a FlatFAT aggregate tree over the slice partials, trading
/// per-update tree maintenance for O(log |slices|) window queries.
enum class StoreMode { kLazy, kEager };

/// The shared slice container of the slicing operator (paper Figure 7): the
/// Stream Slicer appends slices, the Slice Manager updates/merges/splits
/// them, the Window Manager queries ranges of them.
///
/// Slices are kept ordered by start timestamp; their ranges never overlap
/// but may leave uncovered gaps (stream regions without tuples, e.g.,
/// between sessions).
class AggregateStore : public StreamStateView {
 public:
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  AggregateStore(StoreMode mode, std::vector<AggregateFunctionPtr> fns);

  StoreMode mode() const { return mode_; }
  const std::vector<AggregateFunctionPtr>& fns() const { return fns_; }
  size_t NumSlices() const { return slices_.size(); }
  bool Empty() const { return slices_.empty(); }

  Slice& At(size_t i) { return slices_[i]; }
  const Slice& At(size_t i) const { return slices_[i]; }

  /// The open (latest) slice, or nullptr if none exists yet.
  Slice* Current() { return slices_.empty() ? nullptr : &slices_.back(); }

  /// Index of the slice covering `ts` (start <= ts < end), or kNpos.
  size_t FindCovering(Time ts) const;

  /// Index of the last slice with start <= ts, or kNpos.
  size_t FindByStart(Time ts) const;

  /// Index of the first slice with end > ts (i.e., the first slice that can
  /// intersect a range beginning at ts), or NumSlices().
  size_t FirstEndingAfter(Time ts) const;

  /// Appends a new latest slice [start, end). Requires start >= previous
  /// slice's end.
  Slice& Append(Time start, Time end);

  /// Inserts a slice at position `idx` (used for out-of-order session
  /// creation in uncovered regions).
  Slice& InsertAt(size_t idx, Time start, Time end);

  /// Merges slice i with slice i+1 (paper's Merge operation).
  void MergeWithNext(size_t i);

  /// Splits slice i at t (paper's Split operation); the right half becomes
  /// slice i+1.
  void SplitAt(size_t i, Time t);

  /// Notifies the store that slice i's aggregates changed (eager mode
  /// refreshes the tree leaves). Call after AddTuple/Recompute/SetAgg.
  void OnSliceAggUpdated(size_t i);

  /// Notifies the store that slice boundaries changed in a way not covered
  /// by the dedicated mutators (bulk edits); rebuilds eager trees.
  void OnStructureChanged();

  /// Drops all slices with end <= t (outside the allowed lateness).
  void EvictBefore(Time t);

  /// Ordered combine of the partials of slices [i, j) for aggregation
  /// `agg`. Eager mode answers from the tree in O(log n).
  Partial QuerySlices(size_t agg, size_t i, size_t j) const;

  /// Ordered combine over all slices intersecting the window [start, end).
  /// Slice boundaries are expected to align with window edges; slices
  /// partially overlapping the range are included in full (callers split
  /// slices first when exact bounds are required).
  Partial QueryRange(size_t agg, Time start, Time end) const;

  /// StreamStateView: timestamp of the n-th most recent stored tuple with
  /// ts < t (requires tuple retention; returns kNoTime otherwise).
  Time NthRecentTupleTime(Time t, int64_t n) const override;

  /// Total stored tuples across slices (metadata count, not retained count).
  uint64_t TotalTupleCount() const { return total_tuples_; }
  void NoteTupleAdded() { ++total_tuples_; }
  void NoteTuplesAdded(uint64_t n) { total_tuples_ += n; }

  /// Retired slices currently parked on the freelist (observability/tests).
  size_t FreeListSize() const { return free_slices_.size(); }

  /// Lifetime count of slices ever created (appends, inserts, splits);
  /// eviction does not decrease it. Drives the slice-minimality assertions
  /// and the Figure 8 slice-count comparison (Pairs vs Cutty vs general).
  uint64_t SlicesCreated() const { return slices_created_; }

  size_t MemoryBytes() const;

  /// All slices created by this store maintain last-timestamp side partials
  /// (see Slice::EnableLastTsTracking). Enabled by the slicing operator for
  /// in-order FCF workloads without tuple retention so punctuation edges can
  /// split occupied timestamps exactly.
  void EnableLastTsTracking() { track_last_ts_ = true; }
  bool TracksLastTs() const { return track_last_ts_; }

  /// Snapshot support: serializes slices, eager trees, and counters. The
  /// freelist is a pure performance cache and is skipped; mode/functions are
  /// construction parameters re-established by the restoring operator.
  void Serialize(state::Writer& w) const;
  void Deserialize(state::Reader& r);

  /// Incremental snapshot support. SerializeDelta writes the counters, the
  /// full slice *sequence* — dirty slices inline, clean slices as start-time
  /// references — and only the (capacity, offset, size) layout of each eager
  /// tree: clean slices and tree contents are guaranteed bit-identical to
  /// their image in the previous barrier, so the delta omits them.
  /// ApplyDelta transforms this store (which must hold the previous
  /// barrier's state, all slices clean) into the next barrier's state;
  /// an unresolvable or still-dirty clean reference — a delta gap — poisons
  /// the reader and leaves the store untouched. MarkAllClean clears every
  /// slice's dirty bit once a barrier has serialized the store.
  void SerializeDelta(state::Writer& w) const;
  void ApplyDelta(state::Reader& r);
  void MarkAllClean();

  /// Number of slices whose dirty bit is set (observability for benches).
  size_t DirtySliceCount() const;

 private:
  void RebuildTrees();

  /// Takes a recycled slice off the freelist (or constructs one) reset to
  /// [start, end). Slices churn constantly — one per window edge passed,
  /// plus splits and session inserts — and each carries two vectors; the
  /// freelist keeps those buffers alive across the evict/append cycle so
  /// the steady-state hot path never touches the allocator.
  Slice MakeSlice(Time start, Time end);

  /// Parks a dead slice on the freelist (bounded; drops when full).
  void Retire(Slice&& s);

  /// Freelist bound: enough to absorb a full eviction sweep of a typical
  /// multi-query slice population without hoarding unbounded memory.
  static constexpr size_t kMaxFreeSlices = 64;

  StoreMode mode_;
  std::vector<AggregateFunctionPtr> fns_;
  bool track_last_ts_ = false;
  std::deque<Slice> slices_;
  std::vector<Slice> free_slices_;  // recycled slices (capacity preserved)
  std::vector<FlatFat> trees_;  // eager mode: one per aggregation
  uint64_t total_tuples_ = 0;
  uint64_t slices_created_ = 0;
};

}  // namespace scotty

#endif  // SCOTTY_CORE_AGGREGATE_STORE_H_
