// Count-based window measures: in-order rank slicing, out-of-order rank
// shifts (paper Fig. 6), invertible vs non-invertible removal strategies,
// and update emission for shifted windows.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "common/rng.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::BruteForceCount;
using testutil::FinalResults;
using testutil::Num;
using testutil::RunStream;
using testutil::T;

GeneralSlicingOperator::Options Opts(bool in_order, Time lateness = 10000) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = in_order;
  o.allowed_lateness = lateness;
  return o;
}

WindowPtr CountTumbling(int64_t n) {
  return std::make_shared<TumblingWindow>(n, Measure::kCount);
}

TEST(CountWindows, InOrderTumblingCounts) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(CountTumbling(3));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) tuples.push_back(T(i * 10, i + 1));
  auto fin = FinalResults(RunStream(op, tuples, 100));
  // Ranks [0,3): 1+2+3; [3,6): 4+5+6; [6,9): 7+8+9.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 3}]), 6.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 3, 6}]), 15.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 6, 9}]), 24.0);
}

TEST(CountWindows, InOrderNeedsNoTupleStorage) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(CountTumbling(3));
  EXPECT_FALSE(op.queries().StoreTuples());
}

TEST(CountWindows, OutOfOrderStreamStoresTuples) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(CountTumbling(3));
  EXPECT_TRUE(op.queries().StoreTuples());
}

TEST(CountWindows, OutOfOrderTupleShiftsLaterRanks) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(CountTumbling(3));
  // Event times 10,20,30,40,50 arrive with 25 late: final event-time order
  // is 10,20,25,30,40,50.
  std::vector<Tuple> tuples = {T(10, 1), T(20, 2), T(30, 3),
                               T(40, 4), T(50, 5), T(25, 10)};
  auto fin = FinalResults(RunStream(op, tuples, 50));
  // Ranks: [0,3) = 1+2+10, [3,6) = 3+4+5.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 3}]), 13.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 3, 6}]), 12.0);
  EXPECT_GT(op.stats().count_shifts, 0u);
}

TEST(CountWindows, ShiftUpdatesAlreadyEmittedWindows) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(CountTumbling(2));
  op.ProcessTuple(T(10, 1, 0));
  op.ProcessTuple(T(20, 2, 1));
  op.ProcessTuple(T(30, 4, 2));
  op.ProcessWatermark(30);  // cwm = 3: emits ranks [0,2) = 3
  auto first = FinalResults(op.TakeResults());
  EXPECT_DOUBLE_EQ(Num(first[{0, 0, 0, 2}]), 3.0);
  op.ProcessTuple(T(15, 8, 3));  // shifts ranks of 20 and 30
  auto updates = op.TakeResults();
  ASSERT_FALSE(updates.empty());
  bool found = false;
  for (const WindowResult& r : updates) {
    if (r.start == 0 && r.end == 2) {
      EXPECT_TRUE(r.is_update);
      EXPECT_DOUBLE_EQ(Num(r.value), 9.0);  // now {1, 8}
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CountWindows, InvertibleShiftsAreIncremental) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));  // invertible
  op.AddWindow(CountTumbling(2));
  std::vector<Tuple> tuples = {T(10, 1), T(20, 2), T(30, 3),
                               T(40, 4), T(15, 5)};
  RunStream(op, tuples, 40);
  EXPECT_EQ(op.queries().removal, RemovalStrategy::kIncrementalInvert);
  EXPECT_EQ(op.stats().slice_recomputes, 0u);
  EXPECT_GT(op.stats().count_shifts, 0u);
}

TEST(CountWindows, NonInvertibleShiftsRecompute) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("max"));  // not invertible
  op.AddWindow(CountTumbling(2));
  std::vector<Tuple> tuples = {T(10, 1), T(20, 2), T(30, 3),
                               T(40, 4), T(15, 5)};
  auto fin = FinalResults(RunStream(op, tuples, 40));
  EXPECT_EQ(op.queries().removal, RemovalStrategy::kRecompute);
  EXPECT_GT(op.stats().slice_recomputes, 0u);
  // Event-time order: 10,15,20,30,40 -> ranks [0,2) max(1,5)=5,
  // [2,4) max(2,3)=3.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 2}]), 5.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 2, 4}]), 3.0);
}

TEST(CountWindows, MatchesBruteForceOnRandomOoo) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(CountTumbling(5));
  Rng rng(31);
  std::vector<Tuple> tuples;
  Time ts = 0;
  for (int i = 0; i < 200; ++i) {
    ts += 1 + static_cast<Time>(rng.NextBounded(5));
    tuples.push_back(T(ts, static_cast<double>(rng.NextBounded(100))));
  }
  // Shuffle lightly: swap ~20% of adjacent pairs to create bounded disorder.
  for (size_t i = 1; i + 1 < tuples.size(); i += 2) {
    if (rng.NextDouble() < 0.4) std::swap(tuples[i], tuples[i + 1]);
  }
  auto fin = FinalResults(RunStream(op, tuples, ts));
  const AggregateFunctionPtr sum = MakeAggregation("sum");
  ASSERT_FALSE(fin.empty());
  for (const auto& [key, value] : fin) {
    const auto [w, a, cs, ce] = key;
    const Value expected = BruteForceCount(*sum, tuples, cs, ce);
    EXPECT_DOUBLE_EQ(Num(value), Num(expected)) << cs << "," << ce;
  }
}

TEST(CountWindows, SlidingCountWindows) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SlidingWindow>(4, 2, Measure::kCount));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) tuples.push_back(T(i * 10, 1.0));
  auto fin = FinalResults(RunStream(op, tuples, 90));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 4}]), 4.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 2, 6}]), 4.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 4, 8}]), 4.0);
}

TEST(CountWindows, MixedTimeAndCountQueriesShareOneOperator) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  const int cw = op.AddWindow(CountTumbling(4));
  const int tw = op.AddWindow(std::make_shared<TumblingWindow>(25));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 12; ++i) tuples.push_back(T(i * 10, 1.0));
  auto fin = FinalResults(RunStream(op, tuples, 120));
  EXPECT_DOUBLE_EQ(Num(fin[{cw, 0, 0, 4}]), 4.0);
  EXPECT_DOUBLE_EQ(Num(fin[{cw, 0, 4, 8}]), 4.0);
  // Time windows [0,25): tuples at 0,10,20.
  EXPECT_DOUBLE_EQ(Num(fin[{tw, 0, 0, 25}]), 3.0);
}

TEST(CountWindows, HolisticMedianOverCountWindowsWithOoo) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("median"));
  op.AddWindow(CountTumbling(3));
  std::vector<Tuple> tuples = {T(10, 9), T(20, 1), T(30, 5),
                               T(40, 7), T(15, 3)};
  auto fin = FinalResults(RunStream(op, tuples, 40));
  // Event-time order values: 9,3,1,5,7 -> ranks [0,3) = {9,3,1} median 3.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 3}]), 3.0);
}

TEST(CountWindows, LateTupleBeforeEveryRankShiftsWholeStore) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(CountTumbling(2));
  op.ProcessTuple(T(50, 1, 0));
  op.ProcessTuple(T(60, 2, 1));
  op.ProcessTuple(T(70, 4, 2));
  op.ProcessWatermark(70);  // emits ranks [0,2) = 3
  auto first = FinalResults(op.TakeResults());
  EXPECT_DOUBLE_EQ(Num(first[{0, 0, 0, 2}]), 3.0);
  // Earlier than every stored tuple: every rank shifts by one.
  op.ProcessTuple(T(5, 8, 3));
  op.ProcessWatermark(80);
  auto fin = FinalResults(op.TakeResults());
  // Event-time order: 5,50,60,70 -> ranks [0,2) = 8+1, [2,4) = 2+4.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 2}]), 9.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 2, 4}]), 6.0);
  EXPECT_GT(op.stats().count_shifts, 0u);
}

TEST(CountWindows, PunctuationDoesNotOccupyRanks) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(CountTumbling(2));
  auto punct = [](Time ts) {
    Tuple t = T(ts, 0);
    t.is_punctuation = true;
    return t;
  };
  auto fin = FinalResults(RunStream(
      op, {T(10, 1), punct(10), T(20, 2), punct(25), T(30, 4), T(40, 8)},
      40));
  // Ranks come from data tuples only: [0,2) = 1+2, [2,4) = 4+8.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 2}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 2, 4}]), 12.0);
}

TEST(CountWindows, BurstyDisorderMatchesBruteForce) {
  // A stalled-partition burst: a run of consecutive tuples all released
  // late at one point, the worst case for rank shifting.
  testing::StreamSpec spec;
  spec.seed = 77;
  spec.num_tuples = 300;
  spec.step_lo = 0;  // duplicate timestamps too
  spec.step_hi = 3;
  spec.value_range = 50;
  spec.ooo_fraction = 0.1;
  spec.burst_probability = 0.05;
  spec.burst_length = 10;
  spec.max_delay = 20;
  const std::vector<Tuple> stream = testing::GenerateStream(spec);
  Time last = 0;
  for (const Tuple& t : stream) last = std::max(last, t.ts);
  for (const char* agg : {"sum", "max"}) {  // invertible and recompute paths
    GeneralSlicingOperator op(Opts(false));
    op.AddAggregation(MakeAggregation(agg));
    op.AddWindow(CountTumbling(7));
    auto fin = FinalResults(RunStream(op, stream, last + 1));
    ASSERT_FALSE(fin.empty());
    const AggregateFunctionPtr fn = MakeAggregation(agg);
    std::vector<Tuple> seqd = stream;
    for (size_t i = 0; i < seqd.size(); ++i) seqd[i].seq = i;
    for (const auto& [key, value] : fin) {
      const auto [w, a, cs, ce] = key;
      EXPECT_EQ(value, BruteForceCount(*fn, seqd, cs, ce))
          << agg << " ranks [" << cs << "," << ce << ")";
    }
  }
}

TEST(CountWindows, CountWatermarkCountsOnlyTuplesBelowTimeWatermark) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(CountTumbling(2));
  op.ProcessTuple(T(10, 1, 0));
  op.ProcessTuple(T(20, 2, 1));
  op.ProcessTuple(T(100, 4, 2));
  op.ProcessWatermark(50);  // only ranks 0 and 1 are final
  auto fin = FinalResults(op.TakeResults());
  ASSERT_EQ(fin.size(), 1u);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 2}]), 3.0);
}

}  // namespace
}  // namespace scotty
