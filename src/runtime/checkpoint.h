#ifndef SCOTTY_RUNTIME_CHECKPOINT_H_
#define SCOTTY_RUNTIME_CHECKPOINT_H_

// Checkpoint/restore subsystem (DESIGN.md §7).
//
// The CheckpointCoordinator snapshots a window operator at watermark-aligned
// barriers: a barrier sits immediately after ProcessWatermark returned and
// the produced results were drained downstream, so a snapshot never captures
// a half-applied trigger sweep. Restoring the snapshot onto a freshly
// constructed operator (same query set, same options) and replaying the
// remainder of the stream yields byte-for-byte the same results as the
// uninterrupted run — the differential fuzzer's --checkpoint dimension and
// the crash-injection sweep both enforce exactly this.
//
// Crash injection: when the environment variable SCOTTY_CRASH_AFTER=<n> is
// set, the process exits hard (std::_Exit) immediately after the n-th
// checkpoint file is persisted — after the rename, so the file on disk is
// always a complete, checksummed snapshot. A driver then restarts from that
// file and must recover without loss or duplication.

#include <functional>
#include <memory>
#include <string>

#include "core/window_operator.h"
#include "datagen/generators.h"
#include "runtime/pipeline.h"
#include "state/snapshot.h"

namespace scotty {

using OperatorFactory = std::function<std::unique_ptr<WindowOperator>()>;

/// Observer for every result the checkpointed driver drains. Results pass
/// through the sink BEFORE the barrier snapshot is taken, so a sink that
/// durably records them sees exactly the results a downstream consumer had
/// at crash time — the crash-injection sweep diffs these logs against an
/// uninterrupted run.
using ResultSink = std::function<void(const WindowResult&)>;

struct CheckpointOptions {
  /// Directory snapshot files are written into (must exist).
  std::string directory = ".";
  /// File name prefix; files are `<prefix>-<barrier_index>.snap`.
  std::string prefix = "ckpt";
  /// Keep this many most-recent snapshot files; older ones are deleted
  /// after each barrier persists. More than one is retained so recovery can
  /// fall back when the newest file is torn or corrupt. 0 keeps everything.
  int retain = 3;
};

/// Takes watermark-aligned snapshots and persists them via the versioned
/// container format of state/snapshot.h. One coordinator can serve a run
/// and its resumed continuation: the barrier index keeps counting up.
class CheckpointCoordinator {
 public:
  explicit CheckpointCoordinator(CheckpointOptions opts);

  /// Snapshots `op` at a barrier. `meta` carries the stream progress (source
  /// offset, seq counter, watermark); the barrier index is filled in by the
  /// coordinator. Returns the persisted file path, or "" on failure.
  /// Honors SCOTTY_CRASH_AFTER (see file comment).
  std::string OnBarrier(const WindowOperator& op,
                        state::CheckpointMetadata meta);

  /// Same barrier protocol for state that was serialized elsewhere (the
  /// parallel executor serializes each worker inside its own thread and
  /// hands the combined bytes here). Applies retention and crash injection
  /// exactly like the operator overload.
  std::string OnBarrierBytes(const std::string& operator_name,
                             const std::vector<uint8_t>& state,
                             state::CheckpointMetadata meta);

  uint64_t checkpoints_taken() const { return barrier_index_; }
  const std::string& last_path() const { return last_path_; }

  /// Continue counting from a restored barrier index (resume path).
  void SetBarrierIndex(uint64_t idx) { barrier_index_ = idx; }

 private:
  CheckpointOptions opts_;
  uint64_t barrier_index_ = 0;
  std::string last_path_;
  int64_t crash_after_ = -1;  // from SCOTTY_CRASH_AFTER; -1 = disabled
};

/// Result of restoring an operator from a snapshot file.
struct RestoredOperator {
  std::unique_ptr<WindowOperator> op;
  state::CheckpointMetadata meta;
  std::string operator_name;
  bool ok = false;
  std::string error;
};

/// Reads `path`, validates the container, constructs a fresh operator via
/// `factory` (which must register the same windows/aggregations the
/// snapshotted operator had), and restores its state. A name or fingerprint
/// mismatch fails cleanly instead of producing a half-restored operator.
RestoredOperator RestoreOperator(const std::string& path,
                                 const OperatorFactory& factory);

/// Snapshot files `<prefix>-<index>.snap` found in `directory`, sorted by
/// barrier index descending (newest first). Ignores temp files and
/// non-matching names.
std::vector<std::string> ListSnapshots(const std::string& directory,
                                       const std::string& prefix);

/// Recovery entry point: restores from the NEWEST snapshot in `directory`
/// that validates end-to-end (container checksum, operator name, state
/// decode), falling back to older files when newer ones are torn, truncated,
/// or corrupt. `fell_back` reports that at least one newer file was
/// rejected; `path_used` names the file that won. Returns ok=false only
/// when no snapshot file validates (the caller then starts from scratch).
struct RecoveredOperator {
  RestoredOperator restored;
  std::string path_used;
  bool fell_back = false;
  size_t candidates = 0;  // snapshot files considered
};
RecoveredOperator RecoverNewestValid(const std::string& directory,
                                     const std::string& prefix,
                                     const OperatorFactory& factory);

struct CheckpointedPipelineReport {
  PipelineReport report;
  uint64_t checkpoints = 0;
  std::string last_checkpoint;
};

/// RunPipeline with a barrier after every injected watermark: identical
/// tuple/watermark sequence to the plain driver, plus one snapshot per
/// watermark. Honors PipelineOptions::batch_size — batched blocks never
/// straddle a watermark boundary, so the barrier observes exactly the state
/// the per-tuple driver would have had and the snapshot files are
/// byte-identical between the two interleavings.
CheckpointedPipelineReport RunCheckpointedPipeline(
    TupleSource& src, WindowOperator& op, uint64_t max_tuples,
    const PipelineOptions& opts, CheckpointCoordinator& coord,
    const ResultSink& sink = nullptr);

/// Resumes a checkpointed pipeline: restores the operator from
/// `snapshot_path` via `factory`, skips the tuples the snapshot already
/// covered, and replays the remainder of `src` with the same watermark
/// cadence RunCheckpointedPipeline would have used (continuing to take
/// checkpoints through `coord`). The union of results drained before the
/// crash and results produced by the resumed run equals the uninterrupted
/// run's results exactly. Returns ok=false (with op=nullptr) if the
/// snapshot fails validation.
struct ResumedPipeline {
  CheckpointedPipelineReport report;
  std::unique_ptr<WindowOperator> op;
  bool ok = false;
  std::string error;
};

ResumedPipeline RestorePipeline(const std::string& snapshot_path,
                                const OperatorFactory& factory,
                                TupleSource& src, uint64_t max_tuples,
                                const PipelineOptions& opts,
                                CheckpointCoordinator* coord,
                                const ResultSink& sink = nullptr);

/// RestorePipeline from the newest VALID snapshot in a directory (see
/// RecoverNewestValid): tries files newest-first, falls back past torn or
/// corrupt ones, and only fails when no file validates. `fell_back` on the
/// result reports that the newest file was rejected.
struct RecoveredPipeline {
  CheckpointedPipelineReport report;
  std::unique_ptr<WindowOperator> op;
  bool ok = false;
  bool fell_back = false;
  std::string path_used;
  std::string error;
};
RecoveredPipeline RecoverPipeline(const std::string& directory,
                                  const std::string& prefix,
                                  const OperatorFactory& factory,
                                  TupleSource& src, uint64_t max_tuples,
                                  const PipelineOptions& opts,
                                  CheckpointCoordinator* coord,
                                  const ResultSink& sink = nullptr);

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_CHECKPOINT_H_
