#ifndef SCOTTY_WINDOWS_CUSTOM_H_
#define SCOTTY_WINDOWS_CUSTOM_H_

#include <cassert>
#include <functional>
#include <string>
#include <utility>

#include "windows/window.h"

namespace scotty {

/// User-defined context-free window (the paper's extension point, Section
/// 5.4.2: "One can add additional window types by implementing the
/// respective interface", and Cutty's user-defined CF windows [10]).
///
/// The window is specified by a single edge function `next_edge(t)` — the
/// smallest window edge strictly after t. Windows span consecutive edges
/// (like tumbling windows with irregular lengths): calendar months, billing
/// cycles, shift boundaries, Fibonacci backoff windows, etc.
///
/// `max_extent` bounds the longest possible window and drives state
/// eviction.
class CustomContextFreeWindow : public ContextFreeWindow {
 public:
  using EdgeFn = std::function<Time(Time)>;

  CustomContextFreeWindow(std::string name, EdgeFn next_edge, Time max_extent,
                          Measure measure = Measure::kEventTime)
      : name_(std::move(name)),
        next_edge_(std::move(next_edge)),
        max_extent_(max_extent),
        measure_(measure) {}

  Measure measure() const override { return measure_; }

  Time GetNextEdge(Time t) const override { return next_edge_(t); }

  Time LastEdgeAtOrBefore(Time t) const override {
    // Derived from next_edge by stepping from one extent before t; the
    // extent bound guarantees at least one edge in (t - max_extent, t].
    Time probe = t - max_extent_ - 1;
    Time last = kNoTime;
    for (Time e = next_edge_(probe); e <= t; e = next_edge_(e)) {
      last = e;
      assert(e > probe && "next_edge must be strictly increasing");
      probe = e;
    }
    return last;
  }

  bool IsWindowEdge(Time t) const override {
    return LastEdgeAtOrBefore(t) == t;
  }

  void TriggerWindows(WindowCallback& cb, Time prev_wm,
                      Time curr_wm) override {
    // Windows [e_i, e_{i+1}) with e_{i+1} in (prev_wm, curr_wm].
    Time end = next_edge_(prev_wm);
    Time start = LastEdgeAtOrBefore(prev_wm);
    if (start == kNoTime) start = end;  // before the first known edge
    while (end <= curr_wm) {
      if (start < end) cb.OnWindow(start, end);
      start = end;
      end = next_edge_(end);
    }
  }

  Time EvictionSafePoint(Time wm) const override { return wm - max_extent_; }

  std::string Name() const override { return "custom(" + name_ + ")"; }

 private:
  std::string name_;
  EdgeFn next_edge_;
  Time max_extent_;
  Measure measure_;
};

}  // namespace scotty

#endif  // SCOTTY_WINDOWS_CUSTOM_H_
