#ifndef SCOTTY_CORE_WINDOW_OPERATOR_H_
#define SCOTTY_CORE_WINDOW_OPERATOR_H_

#include <cstddef>
#include <iterator>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "common/tuple.h"
#include "common/tuple_batch.h"
#include "common/value.h"
#include "state/serde.h"
#include "state/serde_types.h"

namespace scotty {

/// One produced window aggregate.
struct WindowResult {
  /// Index of the window assigner (AddWindow order).
  int window_id = 0;
  /// Index of the aggregation (AddAggregation order).
  int agg_id = 0;
  /// Window extent [start, end) on the window's measure.
  Time start = 0;
  Time end = 0;
  Value value;
  /// Partition key, when produced by a keyed operator (0 otherwise).
  int64_t key = 0;
  /// True when this re-emits a window that was already output and whose
  /// aggregate changed because a tuple arrived after the watermark but
  /// within the allowed lateness (paper Section 2 / Section 5.3 Step 3).
  bool is_update = false;
};

inline std::ostream& operator<<(std::ostream& os, const WindowResult& r) {
  return os << "Window{w=" << r.window_id << ", a=" << r.agg_id << ", ["
            << r.start << "," << r.end << "), value=" << r.value
            << (r.is_update ? ", update" : "") << "}";
}

inline void SerializeWindowResult(state::Writer& w, const WindowResult& r) {
  w.U32(static_cast<uint32_t>(r.window_id));
  w.U32(static_cast<uint32_t>(r.agg_id));
  w.I64(r.start);
  w.I64(r.end);
  state::SerializeValue(w, r.value);
  w.I64(r.key);
  w.Bool(r.is_update);
}

inline WindowResult DeserializeWindowResult(state::Reader& r) {
  WindowResult res;
  res.window_id = static_cast<int>(r.U32());
  res.agg_id = static_cast<int>(r.U32());
  res.start = r.I64();
  res.end = r.I64();
  res.value = state::DeserializeValue(r);
  res.key = r.I64();
  res.is_update = r.Bool();
  return res;
}

/// Common interface of all window-aggregation operators: the general slicing
/// operator and the baseline techniques of paper Section 3 (tuple buffer,
/// aggregate tree, buckets, pairs, cutty). Benchmarks and the streaming
/// pipeline treat them interchangeably — the paper's point that general
/// slicing is a drop-in replacement for alternative window operators.
class WindowOperator {
 public:
  virtual ~WindowOperator() = default;

  /// Processes one stream tuple (in-order or out-of-order).
  virtual void ProcessTuple(const Tuple& t) = 0;

  /// Processes a batch of consecutive stream tuples (arrival order =
  /// span order). Semantically identical to calling ProcessTuple for every
  /// element; operators with a batch-aware hot path (the general slicing
  /// operator, the keyed wrapper) override this to amortize dispatch,
  /// branching, and slice lookups across the batch. Results must be
  /// bit-identical to the per-tuple path — the differential fuzzer checks.
  virtual void ProcessTupleBatch(std::span<const Tuple> batch) {
    for (const Tuple& t : batch) ProcessTuple(t);
  }

  /// Columnar (SoA) batch entry point: same semantics and bit-identity
  /// contract as ProcessTupleBatch, but tuple data arrives as parallel
  /// columns. The general slicing operator and the keyed wrapper override
  /// this with layouts-native hot paths (vectorized run scans, per-key
  /// column shuffles); the default materializes per tuple so every operator
  /// accepts columnar input.
  virtual void ProcessTupleColumns(const TupleColumnsView& cols) {
    for (size_t i = 0; i < cols.size; ++i) ProcessTuple(cols.Get(i));
  }

  /// Processes a low-watermark: triggers all windows that ended at or before
  /// `wm` and evicts state outside the allowed lateness.
  virtual void ProcessWatermark(Time wm) = 0;

  /// Returns and clears the window aggregates produced so far.
  virtual std::vector<WindowResult> TakeResults() = 0;

  /// Appends the produced window aggregates to `*out` and clears the
  /// internal buffer. Drivers that drain results in a loop (the pipeline,
  /// the parallel workers) pass the same vector every time so both sides
  /// reach a steady state with zero allocations; operators override this to
  /// keep their internal buffer's capacity across drains.
  virtual void TakeResultsInto(std::vector<WindowResult>* out) {
    std::vector<WindowResult> r = TakeResults();
    if (out->empty()) {
      *out = std::move(r);
    } else {
      out->insert(out->end(), std::make_move_iterator(r.begin()),
                  std::make_move_iterator(r.end()));
    }
  }

  /// Accounted bytes of live state (tuples, partials, metadata); the
  /// native-code stand-in for the paper's ObjectSizeCalculator measurements.
  virtual size_t MemoryUsageBytes() const = 0;

  virtual std::string Name() const = 0;

  /// Snapshot support. Operators that can checkpoint their full state
  /// override all three; SerializeState writes a self-contained byte
  /// representation of the live state, DeserializeState restores it onto a
  /// freshly constructed operator with the *same* query set and options.
  /// Restore is bit-identical: replaying the remaining stream after a
  /// restore yields byte-for-byte the same results as an uninterrupted run.
  virtual bool SupportsSnapshot() const { return false; }
  virtual void SerializeState(state::Writer& w) const { (void)w; }
  virtual void DeserializeState(state::Reader& r) { (void)r; }

  /// Incremental snapshot support. A delta payload transforms the state of
  /// the previous barrier into this one's; recovery replays a full base
  /// snapshot plus every delta in barrier order, then calls
  /// FinishDeltaRestore once. Operators with real dirty tracking override
  /// the four methods below; the defaults transparently degrade to a
  /// self-contained payload (a kFullDelta marker followed by the full
  /// state), so every snapshot-capable operator works under incremental
  /// checkpointing. MarkSnapshotClean is invoked after a barrier has
  /// serialized this operator (full or delta form alike), establishing the
  /// "clean = unchanged since last barrier" invariant the next delta builds
  /// on.
  static constexpr uint8_t kFullDelta = 0;
  static constexpr uint8_t kIncrementalDelta = 1;
  virtual bool SupportsIncrementalSnapshot() const { return false; }
  virtual void SerializeDelta(state::Writer& w) const {
    w.U8(kFullDelta);
    SerializeState(w);
  }
  virtual void ApplyDelta(state::Reader& r) {
    if (r.U8() != kFullDelta) {
      r.Fail();
      return;
    }
    DeserializeState(r);
  }
  virtual void MarkSnapshotClean() {}
  virtual void FinishDeltaRestore() {}
};

}  // namespace scotty

#endif  // SCOTTY_CORE_WINDOW_OPERATOR_H_
