# Empty dependencies file for bench_fig17_parallel.
# This may be replaced when dependencies are built.
