// Crash-consistency machinery around the snapshot subsystem: snapshot file
// retention, newest-valid recovery with fallback past damaged files,
// batched-vs-per-tuple snapshot file identity, parallel-executor snapshot
// barriers, error-path draining of the parallel pipeline driver, and the
// fault injector itself.

#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "runtime/checkpoint.h"
#include "runtime/parallel_executor.h"
#include "runtime/pipeline.h"
#include "state/snapshot.h"
#include "testing/fault_injector.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

namespace fs = std::filesystem;

using testing::ApplySnapshotFault;
using testing::CrashRunStats;
using testing::FaultPlan;
using testing::MakeFaultPlan;
using testing::RunToFinalResultsCrashRecovered;
using testing::SnapshotFault;
using testutil::ResultKey;
using testutil::RunToFinalResults;
using testutil::T;

std::string TempDir(const std::string& leaf) {
  // Suffix with the running test's name: ctest schedules gtest cases from this
  // binary concurrently, and two tests sharing a literal leaf (e.g. the
  // FaultInjector crash-run tests) would otherwise race on remove_all.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string unique =
      info ? leaf + "_" + info->test_suite_name() + "_" + info->name() : leaf;
  const fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Replayable in-memory source: every instance yields the same tuples, so a
/// "restarted process" can be modeled by constructing a fresh one.
class VectorSource : public TupleSource {
 public:
  explicit VectorSource(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}
  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    return true;
  }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// A source that throws mid-stream — models an ingestion failure the
/// parallel driver must survive without leaking worker threads.
class ThrowingSource : public TupleSource {
 public:
  explicit ThrowingSource(uint64_t throw_at) : throw_at_(throw_at) {}
  bool Next(Tuple* out) override {
    if (produced_ == throw_at_) throw std::runtime_error("source failed");
    *out = T(static_cast<Time>(produced_), 1.0, produced_,
             static_cast<int64_t>(produced_ % 5));
    ++produced_;
    return true;
  }

 private:
  uint64_t throw_at_;
  uint64_t produced_ = 0;
};

std::vector<Tuple> MakeStream(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Time ts = static_cast<Time>(i * 2);
    if (i % 13 == 0) ts += 9;  // mild disorder within a bounded delay
    out.push_back(T(ts, 0.25 * static_cast<double>(i % 31) - 2.0,
                    /*seq=*/0, static_cast<int64_t>(i % 7)));
  }
  return out;
}

OperatorFactory SlicingFactory() {
  return [] {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 1000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddAggregation(MakeAggregation("median"));  // holistic partials
    op->AddWindow(std::make_shared<TumblingWindow>(50));
    op->AddWindow(std::make_shared<SlidingWindow>(80, 30));
    op->AddWindow(std::make_shared<SessionWindow>(8));
    return op;
  };
}

// ---------------------------------------------------------------------------
// Retention.

TEST(CheckpointRetention, KeepsOnlyNewestFiles) {
  const std::string dir = TempDir("retention");
  VectorSource src(MakeStream(512));
  auto op = SlicingFactory()();
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointCoordinator coord({.directory = dir, .prefix = "r", .retain = 2});
  const CheckpointedPipelineReport rep =
      RunCheckpointedPipeline(src, *op, 512, popts, coord);
  ASSERT_EQ(rep.checkpoints, 8u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(fs::exists(dir + "/r-" + std::to_string(i) + ".snap")) << i;
  }
  EXPECT_TRUE(fs::exists(dir + "/r-6.snap"));
  EXPECT_TRUE(fs::exists(dir + "/r-7.snap"));
}

TEST(CheckpointRetention, ZeroKeepsEverything) {
  const std::string dir = TempDir("retention_all");
  VectorSource src(MakeStream(512));
  auto op = SlicingFactory()();
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointCoordinator coord({.directory = dir, .prefix = "r", .retain = 0});
  RunCheckpointedPipeline(src, *op, 512, popts, coord);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(fs::exists(dir + "/r-" + std::to_string(i) + ".snap")) << i;
  }
}

// ---------------------------------------------------------------------------
// Newest-valid recovery with fallback.

TEST(RecoverNewestValid, ListsSortsAndFiltersSnapshotFiles) {
  const std::string dir = TempDir("listing");
  const std::vector<uint8_t> blob = {1, 2, 3};
  for (int i : {0, 2, 10}) {
    ASSERT_TRUE(state::WriteSnapshotFile(
        dir + "/s-" + std::to_string(i) + ".snap", blob));
  }
  // Foreign names and leftover temp files must be ignored.
  ASSERT_TRUE(state::WriteSnapshotFile(dir + "/other-3.snap", blob));
  ASSERT_TRUE(state::WriteSnapshotFile(dir + "/s-4.snap.tmp", blob));
  ASSERT_TRUE(state::WriteSnapshotFile(dir + "/s-x.snap", blob));
  const std::vector<std::string> got = ListSnapshots(dir, "s");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(got[0].ends_with("s-10.snap"));
  EXPECT_TRUE(got[1].ends_with("s-2.snap"));
  EXPECT_TRUE(got[2].ends_with("s-0.snap"));
}

struct RecoverySetup {
  std::string dir;
  std::vector<std::string> snaps;  // newest first
};

/// Runs a checkpointed pipeline that leaves several snapshot files behind.
RecoverySetup MakeSnapshots(const std::string& leaf) {
  RecoverySetup setup;
  setup.dir = TempDir(leaf);
  VectorSource src(MakeStream(512));
  auto op = SlicingFactory()();
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointCoordinator coord(
      {.directory = setup.dir, .prefix = "ckpt", .retain = 3});
  RunCheckpointedPipeline(src, *op, 512, popts, coord);
  setup.snaps = ListSnapshots(setup.dir, "ckpt");
  return setup;
}

TEST(RecoverNewestValid, PicksNewestWhenAllIntact) {
  const RecoverySetup setup = MakeSnapshots("recover_intact");
  ASSERT_EQ(setup.snaps.size(), 3u);
  RecoveredOperator rec =
      RecoverNewestValid(setup.dir, "ckpt", SlicingFactory());
  ASSERT_TRUE(rec.restored.ok) << rec.restored.error;
  EXPECT_FALSE(rec.fell_back);
  EXPECT_EQ(rec.path_used, setup.snaps.front());
  EXPECT_EQ(rec.candidates, 3u);
  EXPECT_EQ(rec.restored.meta.barrier_index, 7u);
}

TEST(RecoverNewestValid, FallsBackPastTornNewest) {
  const RecoverySetup setup = MakeSnapshots("recover_torn");
  ASSERT_EQ(setup.snaps.size(), 3u);
  // Tear the newest file to half its size — a torn write.
  fs::resize_file(setup.snaps[0], fs::file_size(setup.snaps[0]) / 2);
  RecoveredOperator rec =
      RecoverNewestValid(setup.dir, "ckpt", SlicingFactory());
  ASSERT_TRUE(rec.restored.ok) << rec.restored.error;
  EXPECT_TRUE(rec.fell_back);
  EXPECT_EQ(rec.path_used, setup.snaps[1]);
  EXPECT_EQ(rec.restored.meta.barrier_index, 6u);
}

TEST(RecoverNewestValid, FallsBackPastTwoDamagedFiles) {
  const RecoverySetup setup = MakeSnapshots("recover_two");
  ASSERT_EQ(setup.snaps.size(), 3u);
  fs::resize_file(setup.snaps[0], 5);
  FaultPlan flip;
  flip.fault = SnapshotFault::kBitFlip;
  flip.fault_arg = 40;  // somewhere in the payload
  ASSERT_TRUE(ApplySnapshotFault(setup.snaps[1], flip));
  RecoveredOperator rec =
      RecoverNewestValid(setup.dir, "ckpt", SlicingFactory());
  ASSERT_TRUE(rec.restored.ok) << rec.restored.error;
  EXPECT_TRUE(rec.fell_back);
  EXPECT_EQ(rec.path_used, setup.snaps[2]);
}

TEST(RecoverNewestValid, FailsWhenNothingValidates) {
  const RecoverySetup setup = MakeSnapshots("recover_none");
  for (const std::string& p : setup.snaps) fs::resize_file(p, 3);
  RecoveredOperator rec =
      RecoverNewestValid(setup.dir, "ckpt", SlicingFactory());
  EXPECT_FALSE(rec.restored.ok);
  EXPECT_EQ(rec.candidates, 3u);
  EXPECT_TRUE(rec.fell_back);

  RecoveredOperator empty =
      RecoverNewestValid(TempDir("recover_empty"), "ckpt", SlicingFactory());
  EXPECT_FALSE(empty.restored.ok);
  EXPECT_EQ(empty.candidates, 0u);
}

TEST(RecoverNewestValid, RecoverPipelineResumesPastDamage) {
  const RecoverySetup setup = MakeSnapshots("recover_pipeline");
  ASSERT_EQ(setup.snaps.size(), 3u);
  fs::resize_file(setup.snaps[0], fs::file_size(setup.snaps[0]) - 7);
  VectorSource src(MakeStream(512));
  PipelineOptions popts;
  popts.watermark_every = 64;
  popts.watermark_delay = 20;
  CheckpointCoordinator coord(
      {.directory = setup.dir, .prefix = "resumed", .retain = 0});
  RecoveredPipeline rec =
      RecoverPipeline(setup.dir, "ckpt", SlicingFactory(), src, 512, popts,
                      &coord);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_TRUE(rec.fell_back);
  EXPECT_EQ(rec.path_used, setup.snaps[1]);
  // Snapshot 6 covers 7 barriers' worth of tuples (offset 448): 64 remain.
  EXPECT_EQ(rec.report.report.tuples, 512u - 448u);
}

// ---------------------------------------------------------------------------
// Batched and per-tuple checkpointed drivers persist identical bytes.

TEST(CheckpointBatched, SnapshotFilesBitIdenticalAcrossInterleavings) {
  const std::vector<Tuple> stream = MakeStream(640);
  PipelineOptions base;
  base.watermark_every = 64;
  base.watermark_delay = 20;
  auto run = [&](const std::string& leaf, uint64_t batch) {
    const std::string dir = TempDir(leaf);
    VectorSource src(stream);
    auto op = SlicingFactory()();
    PipelineOptions popts = base;
    popts.batch_size = batch;
    CheckpointCoordinator coord(
        {.directory = dir, .prefix = "b", .retain = 0});
    RunCheckpointedPipeline(src, *op, stream.size(), popts, coord);
    return dir;
  };
  const std::string per_tuple = run("ckpt_per_tuple", 0);
  for (uint64_t batch : {uint64_t{7}, uint64_t{64}, uint64_t{1000}}) {
    const std::string batched = run("ckpt_batch_" + std::to_string(batch),
                                    batch);
    const std::vector<std::string> a = ListSnapshots(per_tuple, "b");
    const std::vector<std::string> b = ListSnapshots(batched, "b");
    ASSERT_EQ(a.size(), b.size()) << "batch=" << batch;
    ASSERT_EQ(a.size(), 10u);
    for (size_t i = 0; i < a.size(); ++i) {
      std::vector<uint8_t> ba, bb;
      ASSERT_TRUE(state::ReadSnapshotFile(a[i], &ba));
      ASSERT_TRUE(state::ReadSnapshotFile(b[i], &bb));
      EXPECT_EQ(ba, bb) << "batch=" << batch << " file " << a[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel executor: snapshot barrier + restore.

std::function<std::unique_ptr<WindowOperator>()> ParallelFactory() {
  return [] {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 1000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<TumblingWindow>(40));
    op->AddWindow(std::make_shared<SessionWindow>(8));
    return op;
  };
}

TEST(ParallelSnapshot, BarrierPlusRestoreLosesAndDuplicatesNothing) {
  const std::vector<Tuple> stream = MakeStream(2048);
  constexpr size_t kWorkers = 4;
  constexpr uint64_t kWmEvery = 256;
  constexpr uint64_t kCut = 1024;
  auto feed = [&](ParallelExecutor& exec, size_t from, size_t to) {
    Time max_ts = kNoTime;
    for (size_t i = 0; i < to; ++i) {
      // Walk the prefix for max_ts continuity, but only push [from, to).
      max_ts = std::max(max_ts, stream[i].ts);
      if (i < from) continue;
      Tuple t = stream[i];
      t.seq = i;
      exec.Push(t);
      if ((i + 1) % kWmEvery == 0) exec.PushWatermark(max_ts - 20);
    }
    if (to == stream.size()) exec.PushWatermark(max_ts + 100);
  };

  // Uninterrupted run.
  ParallelExecutor full(kWorkers, ParallelFactory());
  full.Start();
  feed(full, 0, stream.size());
  full.Finish();

  // Interrupted run: barrier at the kCut watermark, then "crash".
  ParallelExecutor head(kWorkers, ParallelFactory());
  head.Start();
  feed(head, 0, kCut);
  const std::vector<uint8_t> blob = head.SnapshotAtBarrier();
  ASSERT_FALSE(blob.empty());
  head.Finish();

  // Restore onto a fresh executor and replay the remainder.
  ParallelExecutor tail(kWorkers, ParallelFactory());
  ASSERT_TRUE(tail.RestoreOperators(blob));
  tail.Start();
  feed(tail, kCut, stream.size());
  tail.Finish();

  EXPECT_GT(full.TotalResults(), 0u);
  EXPECT_EQ(head.TotalResults() + tail.TotalResults(), full.TotalResults());
}

TEST(ParallelSnapshot, RestoreRejectsMismatchAndGarbage) {
  ParallelExecutor src(3, ParallelFactory());
  src.Start();
  src.Push(T(5, 1.0, 0, 1));
  src.PushWatermark(4);
  const std::vector<uint8_t> blob = src.SnapshotAtBarrier();
  ASSERT_FALSE(blob.empty());
  src.Finish();

  std::string err;
  ParallelExecutor wrong_count(2, ParallelFactory());
  EXPECT_FALSE(wrong_count.RestoreOperators(blob, &err));
  EXPECT_NE(err.find("worker count"), std::string::npos) << err;

  ParallelExecutor truncated(3, ParallelFactory());
  std::vector<uint8_t> cut(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_FALSE(truncated.RestoreOperators(cut, &err));

  ParallelExecutor garbage(3, ParallelFactory());
  EXPECT_FALSE(garbage.RestoreOperators({0xDE, 0xAD, 0xBE, 0xEF}, &err));

  // A rejected restore leaves the executor usable from scratch.
  garbage.Start();
  garbage.Push(T(1, 1.0, 0, 0));
  garbage.PushWatermark(100);
  garbage.Finish();
  EXPECT_GT(garbage.TotalResults(), 0u);
}

// ---------------------------------------------------------------------------
// Parallel pipeline driver error paths.

TEST(RunPipelineParallel, CleanRunReportsOk) {
  VectorSource src(MakeStream(1000));
  ParallelExecutor exec(3, ParallelFactory());
  PipelineOptions popts;
  popts.watermark_every = 128;
  popts.watermark_delay = 20;
  const ParallelPipelineReport rep =
      RunPipelineParallel(src, exec, 1000, popts);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.report.tuples, 1000u);
  EXPECT_GT(rep.report.results, 0u);
}

TEST(RunPipelineParallel, ThrowingSourceStillJoinsWorkers) {
  ThrowingSource src(300);
  ParallelExecutor exec(3, ParallelFactory());
  PipelineOptions popts;
  popts.watermark_every = 128;
  const ParallelPipelineReport rep =
      RunPipelineParallel(src, exec, 1000, popts);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("source failed"), std::string::npos) << rep.error;
  EXPECT_EQ(rep.report.tuples, 300u);
  // The workers were joined: the executor can be destroyed safely and the
  // tuples pushed before the failure were fully processed.
  EXPECT_GT(exec.TotalResults(), 0u);
}

TEST(RunPipelineParallel, BadRestoreSurfacesStatusWithoutStarting) {
  VectorSource src(MakeStream(100));
  ParallelExecutor exec(3, ParallelFactory());
  PipelineOptions popts;
  const std::vector<uint8_t> garbage = {1, 2, 3};
  const ParallelPipelineReport rep =
      RunPipelineParallel(src, exec, 100, popts, &garbage);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("restore failed"), std::string::npos) << rep.error;
  EXPECT_EQ(rep.report.tuples, 0u);
  // No threads were started; the executor is still usable from scratch.
  const ParallelPipelineReport again =
      RunPipelineParallel(src, exec, 100, popts);
  EXPECT_TRUE(again.ok) << again.error;
}

// ---------------------------------------------------------------------------
// Fault injector.

TEST(FaultInjector, PlanIsDeterministicAndInRange) {
  const FaultPlan a = MakeFaultPlan(77, 500);
  const FaultPlan b = MakeFaultPlan(77, 500);
  EXPECT_EQ(a.crash_index, b.crash_index);
  EXPECT_EQ(a.fault, b.fault);
  EXPECT_EQ(a.fault_arg, b.fault_arg);
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan p = MakeFaultPlan(seed, 500);
    EXPECT_GE(p.crash_index, 1u);
    EXPECT_LE(p.crash_index, 500u);
  }
}

TEST(FaultInjector, TruncateAndBitFlipDamageTheFile) {
  const std::string dir = TempDir("fault_files");
  const std::string path = dir + "/f.snap";
  const std::vector<uint8_t> blob(256, 0x5A);
  ASSERT_TRUE(state::WriteSnapshotFile(path, blob));

  FaultPlan none;
  none.fault = SnapshotFault::kNone;
  ASSERT_TRUE(ApplySnapshotFault(path, none));
  EXPECT_EQ(fs::file_size(path), 256u);

  FaultPlan flip;
  flip.fault = SnapshotFault::kBitFlip;
  flip.fault_arg = 100;
  ASSERT_TRUE(ApplySnapshotFault(path, flip));
  EXPECT_EQ(fs::file_size(path), 256u);
  std::vector<uint8_t> back;
  ASSERT_TRUE(state::ReadSnapshotFile(path, &back));
  size_t diffs = 0;
  for (size_t i = 0; i < back.size(); ++i) diffs += back[i] != 0x5A;
  EXPECT_EQ(diffs, 1u);

  FaultPlan cut;
  cut.fault = SnapshotFault::kTruncate;
  cut.fault_arg = 100;
  ASSERT_TRUE(ApplySnapshotFault(path, cut));
  EXPECT_EQ(fs::file_size(path), 100u);
}

void ExpectCrashRecoveredMatches(const FaultPlan& plan, int wm_every,
                                 CrashRunStats* stats) {
  const std::vector<Tuple> stream = MakeStream(400);
  Time max_ts = kNoTime;
  for (const Tuple& t : stream) max_ts = std::max(max_ts, t.ts);
  const Time final_wm = max_ts + 100;
  const Time wm_lag = 20;
  const OperatorFactory factory = SlicingFactory();

  std::unique_ptr<WindowOperator> plain = factory();
  const auto expected =
      RunToFinalResults(*plain, stream, final_wm, wm_every, wm_lag);

  std::map<ResultKey, Value> got;
  std::string err;
  ASSERT_TRUE(RunToFinalResultsCrashRecovered(
      factory, stream, final_wm, wm_every, wm_lag, plan,
      TempDir("crash_run"), &got, &err, stats))
      << err;
  EXPECT_EQ(got, expected);
}

TEST(FaultInjector, CrashWithoutFaultRecoversFromNewest) {
  FaultPlan plan;
  plan.crash_index = 300;
  plan.fault = SnapshotFault::kNone;
  CrashRunStats stats;
  ExpectCrashRecoveredMatches(plan, /*wm_every=*/32, &stats);
  EXPECT_GT(stats.barriers, 0u);
  EXPECT_FALSE(stats.recovered_from_scratch);
  EXPECT_FALSE(stats.fell_back);
}

TEST(FaultInjector, TornNewestFallsBackAndStillMatches) {
  FaultPlan plan;
  plan.crash_index = 300;
  plan.fault = SnapshotFault::kTruncate;
  plan.fault_arg = 33;
  CrashRunStats stats;
  ExpectCrashRecoveredMatches(plan, /*wm_every=*/32, &stats);
  EXPECT_FALSE(stats.recovered_from_scratch);
  EXPECT_TRUE(stats.fell_back);
}

TEST(FaultInjector, CorruptNewestFallsBackAndStillMatches) {
  FaultPlan plan;
  plan.crash_index = 390;
  plan.fault = SnapshotFault::kBitFlip;
  plan.fault_arg = 0xAB00000000000123ULL;
  CrashRunStats stats;
  ExpectCrashRecoveredMatches(plan, /*wm_every=*/32, &stats);
  EXPECT_FALSE(stats.recovered_from_scratch);
  EXPECT_TRUE(stats.fell_back);
}

TEST(FaultInjector, CrashBeforeAnyBarrierReplaysFromScratch) {
  FaultPlan plan;
  plan.crash_index = 10;  // before the first wm_every=32 barrier
  plan.fault = SnapshotFault::kNone;
  CrashRunStats stats;
  ExpectCrashRecoveredMatches(plan, /*wm_every=*/32, &stats);
  EXPECT_EQ(stats.barriers, 0u);
  EXPECT_TRUE(stats.recovered_from_scratch);
}

TEST(FaultInjector, SingleSnapshotDamagedReplaysFromScratch) {
  FaultPlan plan;
  plan.crash_index = 40;  // exactly one barrier (at 32) has fired
  plan.fault = SnapshotFault::kTruncate;
  plan.fault_arg = 20;
  CrashRunStats stats;
  ExpectCrashRecoveredMatches(plan, /*wm_every=*/32, &stats);
  EXPECT_EQ(stats.barriers, 1u);
  EXPECT_TRUE(stats.recovered_from_scratch);
}

}  // namespace
}  // namespace scotty
