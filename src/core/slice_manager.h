#ifndef SCOTTY_CORE_SLICE_MANAGER_H_
#define SCOTTY_CORE_SLICE_MANAGER_H_

#include <cstddef>

#include "common/tuple.h"
#include "core/aggregate_store.h"
#include "core/query_set.h"

namespace scotty {

/// Step 2 of the slicing pipeline (paper Section 5.3): triggers all merge,
/// split, and update operations on slices. It adds tuples to their slices
/// (incrementally for commutative aggregations, by order-preserving
/// recomputation otherwise), applies the slice-structure modifications
/// requested by context-aware windows, and performs the count-measure
/// removal/shift logic is handled by the CountLane (see count_lane.h).
class SliceManager {
 public:
  SliceManager(AggregateStore* store, QuerySet* queries, OperatorStats* stats)
      : store_(store), queries_(queries), stats_(stats) {}

  /// Adds an in-order tuple to the open slice.
  void AddInOrder(const Tuple& t);

  /// Adds an out-of-order tuple: looks up the covering slice (creating one
  /// in uncovered stream regions, e.g., a new session between existing
  /// ones) and updates its aggregate — incrementally for commutative
  /// functions, recomputing from stored tuples otherwise.
  /// Returns the index of the slice that received the tuple.
  size_t AddOutOfOrder(const Tuple& t);

  /// Applies context-window modifications: splits, merges, and slice-extent
  /// updates.
  void Apply(const ContextModifications& mods);

  /// Ensures a slice boundary exists at `t`, splitting the covering slice
  /// if necessary (recomputes both halves from stored tuples).
  void EnsureEdge(Time t);

 private:
  void ApplyMerge(Time a, Time b);
  void ApplyResize(const ContextModifications::Resize& r);

  AggregateStore* store_;
  QuerySet* queries_;
  OperatorStats* stats_;
};

}  // namespace scotty

#endif  // SCOTTY_CORE_SLICE_MANAGER_H_
