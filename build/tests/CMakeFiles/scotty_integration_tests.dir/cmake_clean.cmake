file(REMOVE_RECURSE
  "CMakeFiles/scotty_integration_tests.dir/equivalence_test.cc.o"
  "CMakeFiles/scotty_integration_tests.dir/equivalence_test.cc.o.d"
  "CMakeFiles/scotty_integration_tests.dir/pipeline_test.cc.o"
  "CMakeFiles/scotty_integration_tests.dir/pipeline_test.cc.o.d"
  "CMakeFiles/scotty_integration_tests.dir/property_test.cc.o"
  "CMakeFiles/scotty_integration_tests.dir/property_test.cc.o.d"
  "scotty_integration_tests"
  "scotty_integration_tests.pdb"
  "scotty_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scotty_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
