# Empty dependencies file for bench_fig16_measures.
# This may be replaced when dependencies are built.
