#include "testing/corpus.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <unistd.h>

#include "testing/coverage.h"

namespace scotty {
namespace testing {

namespace fs = std::filesystem;

std::string Corpus::CanonicalLine(const DifferentialConfig& cfg) {
  return cfg.ToFlags();
}

std::string Corpus::IdFor(const DifferentialConfig& cfg) {
  const std::string line = CanonicalLine(cfg);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    Fnv1a64(line.data(), line.size())));
  return buf;
}

size_t Corpus::LoadDir(const std::string& dir,
                       std::vector<std::string>* errors) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return 0;
  // Sorted load order so a run over the same corpus is deterministic
  // regardless of directory-entry order.
  std::set<std::string> paths;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (de.path().extension() == ".repro") paths.insert(de.path().string());
  }
  size_t added = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    std::string line;
    bool parsed = false;
    while (std::getline(in, line)) {
      // First non-comment, non-blank line is the config; the rest of the
      // file is free-form commentary (regression reproducers document
      // their bug there).
      size_t i = 0;
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      if (i == line.size() || line[i] == '#') continue;
      DifferentialConfig cfg;
      std::string err;
      if (ParseConfigLine(line, &cfg, &err)) {
        if (!Contains(cfg)) {
          CorpusEntry entry;
          entry.cfg = cfg;
          entries_.push_back(std::move(entry));
          ++added;
        }
      } else if (errors != nullptr) {
        errors->push_back(path + ": " + err);
      }
      parsed = true;
      break;
    }
    if (!parsed && errors != nullptr) {
      errors->push_back(path + ": no config line");
    }
  }
  return added;
}

void Corpus::Add(CorpusEntry entry) { entries_.push_back(std::move(entry)); }

bool Corpus::Contains(const DifferentialConfig& cfg) const {
  const std::string line = CanonicalLine(cfg);
  for (const CorpusEntry& e : entries_) {
    if (CanonicalLine(e.cfg) == line) return true;
  }
  return false;
}

bool Corpus::Persist(const std::string& dir, const CorpusEntry& entry,
                     std::string* error) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string id = IdFor(entry.cfg);
  const fs::path final_path = fs::path(dir) / (id + ".repro");
  const fs::path tmp_path =
      fs::path(dir) /
      (id + ".tmp." + std::to_string(static_cast<long>(::getpid())));
  {
    std::ofstream out(tmp_path);
    if (!out) {
      if (error != nullptr) *error = "cannot write " + tmp_path.string();
      return false;
    }
    out << CanonicalLine(entry.cfg) << "\n";
    out << "# features=" << entry.new_features.size() << "\n";
    if (!out.flush()) {
      if (error != nullptr) *error = "short write " + tmp_path.string();
      return false;
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "rename " + tmp_path.string() + ": " + ec.message();
    }
    fs::remove(tmp_path, ec);
    return false;
  }
  return true;
}

namespace {

// Energy of one entry given the corpus-wide mean exec cost. Entries with
// unknown cost (0) are treated as average; entries costlier than average
// are damped linearly, floored so even the slowest input keeps a chance.
double Energy(const CorpusEntry& e, double mean_cost_ms) {
  double cost_factor = 1.0;
  if (e.cost_ms > 0 && mean_cost_ms > 0) {
    cost_factor = e.cost_ms / mean_cost_ms;
    if (cost_factor < 0.25) cost_factor = 0.25;
    if (cost_factor > 8.0) cost_factor = 8.0;
  }
  return (1.0 + static_cast<double>(e.children_admitted)) /
         ((1.0 + static_cast<double>(e.picked)) * cost_factor);
}

}  // namespace

size_t GuidedScheduler::PickParent(const Corpus& corpus) {
  const auto& entries = corpus.entries();
  double cost_sum = 0;
  size_t cost_n = 0;
  for (const CorpusEntry& e : entries) {
    if (e.cost_ms > 0) {
      cost_sum += e.cost_ms;
      ++cost_n;
    }
  }
  const double mean_cost = cost_n > 0 ? cost_sum / static_cast<double>(cost_n)
                                      : 0;
  double total = 0;
  for (const CorpusEntry& e : entries) total += Energy(e, mean_cost);
  double target = rng_.NextDouble() * total;
  for (size_t i = 0; i < entries.size(); ++i) {
    target -= Energy(entries[i], mean_cost);
    if (target <= 0) return i;
  }
  return entries.size() - 1;
}

}  // namespace testing
}  // namespace scotty
