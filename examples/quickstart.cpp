// Quickstart: the minimal end-to-end use of general stream slicing.
//
// Builds an operator with one sum aggregation and two concurrent queries
// (a tumbling and a sliding window), streams a handful of tuples, and
// prints every produced window aggregate.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <memory>
#include <string>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

int main() {
  using namespace scotty;

  // A stream that is known to be in-order: windows trigger tuple-by-tuple,
  // no watermarks required.
  GeneralSlicingOperator::Options options;
  options.stream_in_order = true;
  GeneralSlicingOperator op(options);

  const int sum = op.AddAggregation(MakeAggregation("sum"));
  const int tumbling = op.AddWindow(std::make_shared<TumblingWindow>(10));
  const int sliding = op.AddWindow(std::make_shared<SlidingWindow>(20, 10));

  std::printf("queries: window %d = tumbling(10), window %d = sliding(20,10)\n",
              tumbling, sliding);
  std::printf("workload decision: store tuples = %s (%s)\n\n",
              op.queries().StoreTuples() ? "yes" : "no",
              op.queries().storage.reason.c_str());

  // Five tuples: <timestamp, value>.
  const struct {
    Time ts;
    double value;
  } input[] = {{1, 10.0}, {6, 5.0}, {12, 2.0}, {18, 1.0}, {31, 7.0}};

  uint64_t seq = 0;
  for (const auto& [ts, value] : input) {
    Tuple t;
    t.ts = ts;
    t.value = value;
    t.seq = seq++;
    op.ProcessTuple(t);
    for (const WindowResult& r : op.TakeResults()) {
      std::printf("tuple@%ld  ->  window %d [%ld, %ld): sum = %s\n",
                  static_cast<long>(ts), r.window_id,
                  static_cast<long>(r.start), static_cast<long>(r.end),
                  r.value.IsEmpty() ? "<empty>"
                                    : std::to_string(r.value.Numeric()).c_str());
    }
  }

  // Flush the remaining windows with a final watermark.
  op.ProcessWatermark(40);
  for (const WindowResult& r : op.TakeResults()) {
    std::printf("final     ->  window %d [%ld, %ld): sum = %s\n", r.window_id,
                static_cast<long>(r.start), static_cast<long>(r.end),
                r.value.IsEmpty() ? "<empty>"
                                  : std::to_string(r.value.Numeric()).c_str());
  }

  std::printf("\nprocessed %llu tuples in %zu slices (agg id %d)\n",
              static_cast<unsigned long long>(op.stats().tuples_processed),
              op.time_store()->NumSlices(), sum);
  return 0;
}
