#ifndef SCOTTY_TESTING_DIFFERENTIAL_H_
#define SCOTTY_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testing/query_spec.h"
#include "testing/stream_gen.h"

namespace scotty {
namespace testing {

/// One differential test case: a query set (windows × aggregations), a
/// stream spec, and a watermark cadence. Fully determines a run — the
/// fuzzing reproducer line is exactly a serialized DifferentialConfig.
struct DifferentialConfig {
  std::vector<WindowSpec> windows;
  std::vector<std::string> aggs;
  StreamSpec stream;
  /// Issue a lagging watermark every `wm_every` tuples (0 = only the final
  /// watermark). The lag is StreamSpec::MaxLateness(), so no technique ever
  /// drops a tuple and the oracle (which does not model drops) stays valid.
  int wm_every = 0;
  /// Additionally run the slicing operator through its batched ingestion
  /// path (ProcessTupleBatch) with blocks of this many tuples and require
  /// bit-identical final results. 0 disables the batched runs.
  int batch = 0;
  /// Additionally run a checkpointed twin of every snapshot-capable
  /// technique: snapshot the operator after this many tuples, tear it down,
  /// restore a fresh instance from the bytes, replay the remainder, and
  /// require results bit-identical to the same technique's uninterrupted
  /// run (exact even for approx aggregations — restore reproduces the very
  /// same partials). 0 disables the checkpointed runs.
  int checkpoint = 0;
  /// Additionally run a crash-recovered twin of every snapshot-capable
  /// technique: checkpoint at every watermark barrier, kill the run at a
  /// tuple index (> 0: exactly this index; -1: seed-derived), possibly tear
  /// or corrupt the newest snapshot file (seed-derived fault), recover from
  /// the newest snapshot that validates — falling back past damaged files,
  /// from scratch when none is left — and replay the remainder. The merged
  /// downstream view must equal the technique's unfaulted results exactly.
  /// 0 disables the crash runs.
  int crash = 0;
  /// Additionally run the rescaling crash twin: a keyed copy of the stream
  /// (partition keys assigned deterministically from the seed) runs on W
  /// simulated workers checkpointing combined topology blobs, crashes
  /// (> 0: at this tuple index; -1: seed-derived), and recovers onto
  /// W' != W workers by re-partitioning per-key state — the merged
  /// downstream view must equal a single keyed operator's results exactly.
  /// W, W', the persistence mode, and any snapshot damage are seed-derived.
  /// 0 disables the rescale runs.
  int rescale = 0;
  /// Additionally run the multi-query shared-slicing arm: the config's own
  /// query plus seed-derived companion queries (duplicating its windows,
  /// folding over its tumbling granules, adding fresh edges) register in one
  /// QueryRegistry served by a single slice stream, and every query's final
  /// results must equal its own solo slicing run (lazy and eager stores,
  /// plus the in-order fast path on sorted streams). N > 0: N companion
  /// queries with static membership; -1: seed-derived companions plus a
  /// mid-stream deregistration and a context-free mid-stream registration
  /// checked against the horizon contract. 0 disables the shared runs.
  int shared = 0;
  /// Additionally run the overload-resilience arm: the config's
  /// deterministic-edge time windows (tumbling/sliding; one is synthesized
  /// when the config has none) run through a backpressure-controlled
  /// 1-worker executor with a seed-derived consumer stall, slow-persist and
  /// sustained persist-failure injection, and an auto-fallback async
  /// coordinator. The oracle: delivered exact results ∪ shed-marked windows
  /// must exactly partition the unfaulted run (windows without shed overlap
  /// bit-identical, delivered windows a subset of the unfaulted run's) and
  /// the run must neither deadlock nor abort. -1: seed-derived plan
  /// (any other non-zero value behaves the same; the shed set itself is
  /// timing-dependent and the oracle is valid for any of them).
  /// 0 disables the overload runs.
  int overload = 0;
  /// Tuple delivery layout for the additional slicing runs: "aos" (default)
  /// keeps only the row-major ProcessTupleBatch runs controlled by `batch`;
  /// "soa" additionally transposes blocks into columnar TupleBatchSoA
  /// batches and drives ProcessTupleColumns — the vectorized ingest path.
  std::string layout = "aos";
  /// Kernel mode pinned (via simd::SetModeForTesting) for the SoA runs:
  /// "auto", "scalar", "sse2", or "avx2", clamped to what the binary/CPU
  /// supports so reproducer lines replay anywhere. Whenever the resolved
  /// mode is a vector mode, the scalar fallback is run alongside it — the
  /// fuzzer checks SIMD vs scalar vs oracle bit-identity on every config.
  std::string kernel = "auto";

  /// Reproducer flags for `fuzz_differential` (everything non-default).
  std::string ToFlags() const;
};

/// Parses a serialized config line — the exact format ToFlags() emits and
/// the corpus/reproducer files store: space-separated `--key=value` flags,
/// an optional leading `fuzz_differential` token, and `#` starting a
/// comment. Unknown flags, malformed window specs, and unknown aggregation
/// names fail with `*error` set; defaults fill everything not mentioned, so
/// lines stay replayable even as RandomConfig's derivation evolves.
bool ParseConfigLine(const std::string& line, DifferentialConfig* out,
                     std::string* error);

/// Aggregation names the fuzzer draws from: every class the registry
/// provides whose results are deterministic under the harness's replay
/// contract (the full registry additionally has order-sensitive pseudo
/// aggregations like first/last that the oracle does not model).
const std::vector<std::string>& FuzzAggregationNames();

/// Outcome of one differential run across all applicable techniques.
struct DifferentialOutcome {
  bool ok = true;
  /// Human-readable description of the first divergence (technique pair,
  /// window instance, both values) or of a harness-level failure.
  std::string detail;
  /// Number of (technique, window instance) comparisons performed.
  size_t comparisons = 0;
};

/// Runs the config's stream through the general slicing operator (lazy and
/// eager stores; plus the in-order fast path when the arrival sequence is
/// sorted), the three baselines (tuple buffer, aggregate tree, buckets),
/// and the brute-force oracle, requiring identical final per-instance
/// aggregates everywhere. Aggregations whose partials are not exactly
/// representable (stddev, geometric-mean: order-dependent floating-point
/// merges) are compared with a small relative tolerance; everything else
/// must match bit-for-bit.
DifferentialOutcome RunDifferential(const DifferentialConfig& cfg);

/// Derives a random-but-deterministic config from `seed`: 1–3 windows
/// across every kind, 1–2 aggregations across every class (distributive /
/// algebraic / holistic / non-commutative), and stream order/disorder/burst
/// parameters. `num_tuples` is taken verbatim so reproducers can shrink it
/// independently of the derivation.
DifferentialConfig RandomConfig(uint64_t seed, int num_tuples);

/// Shrinks a failing config: first the tuple count (bisection, regenerating
/// the stream each probe so the reproducer stays a pure (seed, n) pair),
/// then drops windows and aggregations that are not needed for the failure.
/// Returns the smallest still-failing config found.
DifferentialConfig Shrink(const DifferentialConfig& failing);

/// Generalized shrinker: same tuple-count bisection and window/aggregation
/// dropping as Shrink, but preserving an arbitrary predicate. `keeps` must
/// hold for `cfg` itself; every probe re-evaluates it, so the result is the
/// smallest config found for which `keeps` still holds. Shrink() is
/// ShrinkWhile with "still fails"; corpus minimization uses "still covers
/// the features that made the input interesting".
DifferentialConfig ShrinkWhile(
    const DifferentialConfig& cfg,
    const std::function<bool(const DifferentialConfig&)>& keeps);

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_DIFFERENTIAL_H_
