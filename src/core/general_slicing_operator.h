#ifndef SCOTTY_CORE_GENERAL_SLICING_OPERATOR_H_
#define SCOTTY_CORE_GENERAL_SLICING_OPERATOR_H_

#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "core/aggregate_store.h"
#include "core/count_lane.h"
#include "core/query_set.h"
#include "core/slice_manager.h"
#include "core/stream_slicer.h"
#include "core/window_manager.h"
#include "core/window_operator.h"

namespace scotty {

/// The paper's primary contribution (Section 5): a general stream-slicing
/// window aggregation operator that serves multiple concurrent queries with
/// diverse window types (CF / FCF / FCA / sessions), window measures (time,
/// arbitrary advancing, count), aggregation functions (distributive,
/// algebraic, holistic; commutative or not; invertible or not), and both
/// in-order and out-of-order streams — while adapting its strategy to the
/// workload (tuples are retained only when the decision tree of Fig. 4
/// requires it; splits/merges/removals follow Figs. 5 and 6).
///
/// Usage:
///
///   GeneralSlicingOperator op({.stream_in_order = false,
///                              .allowed_lateness = 2000});
///   int sum = op.AddAggregation(MakeAggregation("sum"));
///   int w1 = op.AddWindow(std::make_shared<TumblingWindow>(1000));
///   int w2 = op.AddWindow(std::make_shared<SessionWindow>(500));
///   for (const Tuple& t : stream) op.ProcessTuple(t);
///   op.ProcessWatermark(wm);
///   for (const WindowResult& r : op.TakeResults()) ...;
///
/// Aggregations must all be registered before the first tuple; windows can
/// be added and removed at any time (the operator re-characterizes the
/// workload and adapts, dropping retained tuples when they are no longer
/// needed).
class GeneralSlicingOperator : public WindowOperator {
 public:
  struct Options {
    /// Declared stream property. In-order streams trigger windows on every
    /// tuple (each tuple acts as a watermark) and drop the rare
    /// out-of-order tuple; out-of-order streams trigger on explicit
    /// watermarks and accept late tuples within the allowed lateness.
    bool stream_in_order = false;
    /// How long after the watermark aggregates remain updatable (paper
    /// Section 2).
    Time allowed_lateness = 0;
    /// Lazy: combine slices on demand (highest throughput). Eager:
    /// maintain a FlatFAT over slices (lowest latency).
    StoreMode store_mode = StoreMode::kLazy;
    /// Experiment override: retain tuples regardless of the decision tree.
    bool force_store_tuples = false;
    /// Slice at window ends even on in-order streams (Pairs behaviour).
    bool slice_at_window_ends = false;
  };

  GeneralSlicingOperator();  // default options
  explicit GeneralSlicingOperator(Options opts);
  ~GeneralSlicingOperator() override = default;

  GeneralSlicingOperator(const GeneralSlicingOperator&) = delete;
  GeneralSlicingOperator& operator=(const GeneralSlicingOperator&) = delete;

  /// Registers an aggregation function; returns its agg_id. Must be called
  /// before the first tuple.
  int AddAggregation(AggregateFunctionPtr fn);

  /// Registers a window assigner; returns its window_id. Windows may be
  /// added while the stream is running.
  int AddWindow(WindowPtr w);

  /// Removes a window; the operator re-characterizes the workload and drops
  /// retained tuples if no remaining query needs them.
  void RemoveWindow(int window_id);

  void ProcessTuple(const Tuple& t) override;

  /// Batched ingestion hot path. Splits the batch into maximal runs of
  /// in-order, non-late, non-punctuation tuples that all fall before the
  /// next slice edge (and, on declared-in-order streams, before the next
  /// trigger edge), folds each run into the open slice with one
  /// LiftCombineBatch dispatch per aggregation, and routes every other
  /// tuple through the full ProcessTuple machinery. Bit-identical to
  /// calling ProcessTuple per element.
  void ProcessTupleBatch(std::span<const Tuple> batch) override;

  /// Columnar (SoA) ingestion hot path: the same run splitting as
  /// ProcessTupleBatch, but run ends are found by a vectorized monotone
  /// scan over the dense ts column (aggregates/kernels.h) and runs fold
  /// through the per-aggregation column kernels via Slice::AddTupleColumns.
  /// Bit-identical to calling ProcessTuple per element.
  void ProcessTupleColumns(const TupleColumnsView& cols) override;

  /// Merges a pre-aggregated chunk produced by a thread-local slice store
  /// (runtime/local_slice_store.h) into this operator's shared
  /// AggregateStore: finds or creates the slice [start, end), combines the
  /// given partials into it, and accounts the tuple metadata. Slice bounds
  /// must align with this operator's slice edges (the executor derives both
  /// from the same window specs). Only valid for the pure time-lane,
  /// context-free workload shape (no sessions, no count measures) and for
  /// commutative aggregations — cross-worker merge order is arbitrary, so
  /// non-commutative folds and FP-rounding bit-identity across different
  /// worker interleavings are out of scope by design (as in any parallel
  /// pre-aggregation). The caller serializes calls (the executor holds its
  /// merge mutex).
  void MergePreAggregatedSlice(Time start, Time end, Time t_first,
                               Time t_last, uint64_t count,
                               std::span<const Partial> partials);

  void ProcessWatermark(Time wm) override;
  std::vector<WindowResult> TakeResults() override;
  void TakeResultsInto(std::vector<WindowResult>* out) override;
  size_t MemoryUsageBytes() const override;
  std::string Name() const override;

  /// Snapshot support: the full operator state (slices with their partials,
  /// slicer position, window context, trigger progress, pending results) is
  /// serialized so a freshly constructed operator with the same query set
  /// resumes bit-identically. The restore target must have the same windows,
  /// aggregations, and options registered (in the same order) as the source
  /// had at snapshot time; a fingerprint in the stream detects mismatches.
  bool SupportsSnapshot() const override { return true; }
  void SerializeState(state::Writer& w) const override;
  void DeserializeState(state::Reader& r) override;

  /// Incremental snapshots: a delta carries the (small) control state in
  /// full — stats, trigger progress, window contexts, slicer, count lane,
  /// pending results — but the slice store, which dominates snapshot size,
  /// as an AggregateStore delta (dirty slices inline, clean slices as
  /// references, eager trees as layout only).
  bool SupportsIncrementalSnapshot() const override { return true; }
  void SerializeDelta(state::Writer& w) const override;
  void ApplyDelta(state::Reader& r) override;
  void MarkSnapshotClean() override;

  const QuerySet& queries() const { return queries_; }
  const OperatorStats& stats() const { return stats_; }
  const AggregateStore* time_store() const { return time_store_.get(); }
  const CountLane* count_lane() const { return count_lane_.get(); }
  Time last_watermark() const { return last_wm_; }
  /// Largest event time observed so far (kNoTime before the first tuple).
  Time max_event_time() const { return max_ts_; }
  /// Windows ending at or before this point predate the stream's first
  /// observed instant and are never triggered (kNoTime before the stream).
  Time watermark_floor() const { return wm_floor_; }
  const Options& options() const { return opts_; }

  /// The combined (un-lowered) partial over [start, end) for aggregation
  /// `agg` on the time lane, splitting slices on demand where an edge falls
  /// inside a slice. Identity partial when no time lane exists. Used by the
  /// query registry to fold derived (Factor-Windows-rewritten) window
  /// results from base-window granules.
  Partial QueryTimeRangePartial(size_t agg, Time start, Time end);

 private:
  void EnsureInitialized();
  void RefreshLanes(bool recache_edges = true);
  void SerializeImpl(state::Writer& w, bool delta) const;
  void DeserializeImpl(state::Reader& r, bool delta);
  void TriggerAll(Time wm);
  void Evict(Time wm);
  Time NextTriggerEdge() const;

  Options opts_;
  QuerySet queries_;
  OperatorStats stats_;
  bool initialized_ = false;
  bool has_ca_windows_ = false;
  Time max_ts_ = kNoTime;
  Time last_wm_ = kNoTime;
  Time wm_floor_ = kNoTime;  // initial last_wm_: no windows end at or before
  int64_t last_cwm_ = 0;
  Time next_trigger_edge_ = kNoTime;  // early-out cache for per-tuple triggers

  /// Min-heap of (next window edge, window id) over context-free time-lane
  /// windows: a watermark only visits windows whose edge it passed, keeping
  /// trigger cost independent of the number of idle concurrent queries.
  using HeapEntry = std::pair<Time, int>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      cf_trigger_heap_;
  std::vector<Time> win_prev_wm_;  // per-window last triggered watermark

  std::unique_ptr<AggregateStore> time_store_;
  std::unique_ptr<StreamSlicer> slicer_;
  std::unique_ptr<SliceManager> slice_mgr_;
  std::unique_ptr<WindowManager> window_mgr_;
  std::unique_ptr<CountLane> count_lane_;
  std::vector<std::pair<int, ContextAwareWindow*>> ca_windows_;
  std::vector<WindowResult> results_;
};

}  // namespace scotty

#endif  // SCOTTY_CORE_GENERAL_SLICING_OPERATOR_H_
