#ifndef SCOTTY_QUERY_QUERY_DEF_H_
#define SCOTTY_QUERY_QUERY_DEF_H_

#include <string>
#include <vector>

namespace scotty {

/// A portable (printable, serializable) description of one window query:
/// window descriptions in the WindowDesc grammar (query/window_desc.h) and
/// aggregation names resolvable through MakeAggregation. The query registry
/// registers, deduplicates, snapshots, and restores queries in this form —
/// descriptions, unlike Window/AggregateFunction objects, can be compared
/// for sharing and recreated after a restore or on another host.
struct QueryDef {
  std::vector<std::string> windows;  // e.g. {"tumbling:1000", "session:40"}
  std::vector<std::string> aggs;     // e.g. {"sum", "max"}
};

}  // namespace scotty

#endif  // SCOTTY_QUERY_QUERY_DEF_H_
