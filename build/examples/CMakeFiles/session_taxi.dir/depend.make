# Empty dependencies file for session_taxi.
# This may be replaced when dependencies are built.
