#include "testing/oracle.h"

#include <cassert>

#include "aggregates/registry.h"

namespace scotty {
namespace testing {

namespace {

/// Folds `fn` over data[lo, hi) (already in (ts, seq) order).
Value FoldRange(const AggregateFunction& fn, const std::vector<Tuple>& data,
                size_t lo, size_t hi) {
  Partial acc;
  for (size_t i = lo; i < hi; ++i) fn.Combine(acc, fn.Lift(data[i]));
  return fn.Lower(acc);
}

/// First index in `data` (sorted by ts) with ts >= t.
size_t LowerIdx(const std::vector<Tuple>& data, Time t) {
  return static_cast<size_t>(
      std::lower_bound(data.begin(), data.end(), t,
                       [](const Tuple& a, Time x) { return a.ts < x; }) -
      data.begin());
}

}  // namespace

std::map<ResultKey, Value> OracleResults(
    const std::vector<WindowSpec>& windows,
    const std::vector<std::string>& aggs, const std::vector<Tuple>& tuples,
    Time final_wm) {
  std::map<ResultKey, Value> out;
  if (tuples.empty()) return out;
  const Time first_cut = tuples.front().ts;  // first arrival, any tuple kind

  // Event-time ordered views: `data` (aggregation input, punctuation
  // excluded) and `all_ts` / `punct_ts` (window context).
  std::vector<Tuple> data;
  std::vector<Time> all_ts;
  std::vector<Time> punct_ts;
  for (const Tuple& t : tuples) {
    all_ts.push_back(t.ts);
    if (t.is_punctuation) {
      punct_ts.push_back(t.ts);
    } else {
      data.push_back(t);
    }
  }
  std::sort(data.begin(), data.end(), [](const Tuple& a, const Tuple& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.seq < b.seq;
  });
  std::sort(all_ts.begin(), all_ts.end());
  std::sort(punct_ts.begin(), punct_ts.end());
  punct_ts.erase(std::unique(punct_ts.begin(), punct_ts.end()),
                 punct_ts.end());

  std::vector<AggregateFunctionPtr> fns;
  for (const std::string& name : aggs) {
    fns.push_back(MakeAggregation(name));
    assert(fns.back() != nullptr && "unknown aggregation name");
  }

  auto emit_time_window = [&](int wid, Time s, Time e) {
    const size_t lo = LowerIdx(data, s);
    const size_t hi = LowerIdx(data, e);
    for (size_t a = 0; a < fns.size(); ++a) {
      out[{wid, static_cast<int>(a), s, e}] = FoldRange(*fns[a], data, lo, hi);
    }
  };
  auto emit_count_window = [&](int wid, int64_t cs, int64_t ce) {
    for (size_t a = 0; a < fns.size(); ++a) {
      out[{wid, static_cast<int>(a), cs, ce}] =
          FoldRange(*fns[a], data, static_cast<size_t>(cs),
                    static_cast<size_t>(ce));
    }
  };

  const int64_t total_ranks = static_cast<int64_t>(data.size());
  for (size_t w = 0; w < windows.size(); ++w) {
    const WindowSpec& spec = windows[w];
    const int wid = static_cast<int>(w);
    switch (spec.kind) {
      case WindowSpec::Kind::kTumbling:
        if (spec.measure == Measure::kCount) {
          for (int64_t end = spec.length; end <= total_ranks;
               end += spec.length) {
            emit_count_window(wid, end - spec.length, end);
          }
        } else {
          // First end strictly after first_cut − 1, i.e. >= first_cut.
          Time end = ((first_cut + spec.length - 1) / spec.length) *
                     spec.length;
          if (end < spec.length) end = spec.length;
          for (; end <= final_wm; end += spec.length) {
            emit_time_window(wid, end - spec.length, end);
          }
        }
        break;
      case WindowSpec::Kind::kSliding:
        if (spec.measure == Measure::kCount) {
          for (int64_t end = spec.length; end <= total_ranks;
               end += spec.slide) {
            emit_count_window(wid, end - spec.length, end);
          }
        } else {
          // Ends lie at length + k*slide; report those in
          // [first_cut, final_wm].
          Time end = spec.length;
          if (end < first_cut) {
            const Time k = (first_cut - spec.length + spec.slide - 1) /
                           spec.slide;
            end = spec.length + k * spec.slide;
          }
          for (; end <= final_wm; end += spec.slide) {
            emit_time_window(wid, end - spec.length, end);
          }
        }
        break;
      case WindowSpec::Kind::kSession: {
        // Gap rule over ALL tuple timestamps (punctuation included).
        Time start = kNoTime;
        Time last = kNoTime;
        auto flush = [&] {
          if (start == kNoTime) return;
          const Time end = last + spec.length;
          if (end >= first_cut && end <= final_wm) {
            emit_time_window(wid, start, end);
          }
        };
        for (Time t : all_ts) {
          if (start == kNoTime || t >= last + spec.length) {
            flush();
            start = t;
          }
          last = t;
        }
        flush();
        break;
      }
      case WindowSpec::Kind::kPunctuation:
        for (size_t i = 1; i < punct_ts.size(); ++i) {
          const Time s = punct_ts[i - 1];
          const Time e = punct_ts[i];
          if (e >= first_cut && e <= final_wm) emit_time_window(wid, s, e);
        }
        break;
    }
  }
  return out;
}

}  // namespace testing
}  // namespace scotty
