#ifndef SCOTTY_RUNTIME_CHECKPOINT_HEALTH_H_
#define SCOTTY_RUNTIME_CHECKPOINT_HEALTH_H_

#include <cstdint>

// Checkpoint health surface, split out of checkpoint.h so pipeline reports
// can carry it: checkpoint.h includes pipeline.h (the checkpointed drivers
// wrap the plain ones), so pipeline.h cannot include checkpoint.h back.

namespace scotty {

/// Degradation state machine: kHealthy until a persist fails; kDegraded
/// while failures are happening but recovery to kHealthy is still possible
/// (a success resets it); kFailed (terminal) after
/// `max_consecutive_failures` — checkpointing stops, the pipeline runs on.
enum class CheckpointHealth { kHealthy, kDegraded, kFailed };

inline const char* CheckpointHealthName(CheckpointHealth h) {
  switch (h) {
    case CheckpointHealth::kHealthy:
      return "healthy";
    case CheckpointHealth::kDegraded:
      return "degraded";
    case CheckpointHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

/// Point-in-time view of a CheckpointCoordinator's persistence health,
/// surfaced on the checkpointed pipeline reports so callers see degradation
/// without holding a reference to the coordinator.
struct CheckpointHealthReport {
  CheckpointHealth health = CheckpointHealth::kHealthy;
  uint64_t persist_failures = 0;
  uint64_t barriers_dropped = 0;
  uint64_t bases_persisted = 0;
  uint64_t deltas_persisted = 0;

  bool Degraded() const { return health != CheckpointHealth::kHealthy; }
};

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_CHECKPOINT_HEALTH_H_
