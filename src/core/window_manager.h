#ifndef SCOTTY_CORE_WINDOW_MANAGER_H_
#define SCOTTY_CORE_WINDOW_MANAGER_H_

#include <utility>
#include <vector>

#include "core/aggregate_store.h"
#include "core/query_set.h"
#include "core/slice_manager.h"
#include "core/window_operator.h"

namespace scotty {

/// Step 3 of the slicing pipeline (paper Section 5.3): computes final window
/// aggregates from slice aggregates when windows end, and re-emits updated
/// aggregates when tuples arrive after the watermark but within the allowed
/// lateness, or when context changes alter already-output windows.
///
/// Handles time-lane windows; count-measure windows are handled by the
/// CountLane.
class WindowManager {
 public:
  WindowManager(AggregateStore* store, QuerySet* queries,
                SliceManager* slice_mgr, OperatorStats* stats)
      : store_(store),
        queries_(queries),
        slice_mgr_(slice_mgr),
        stats_(stats) {}

  /// Windows ending at or before the floor were never emitted (the stream's
  /// first observed point in time initializes the watermark) and never will
  /// be: late-update and changed-window emission must not resurrect them.
  void SetWatermarkFloor(Time floor) { wm_floor_ = floor; }

  /// Triggers all time-lane windows with end in (prev_wm, curr_wm].
  void Trigger(Time prev_wm, Time curr_wm, std::vector<WindowResult>* out);

  /// Triggers one window (identified by id) with end in (prev_wm, curr_wm].
  /// Used by the operator's trigger heap so that a watermark only visits
  /// windows that actually have an edge in range.
  void TriggerWindow(int window_id, Time prev_wm, Time curr_wm,
                     std::vector<WindowResult>* out);

  /// A tuple arrived at `ts` after watermark `last_wm` (but within the
  /// allowed lateness): re-emit every already-output window containing ts.
  /// `skip` (optional, indexed by window id) suppresses windows whose
  /// updates were already reported through context modifications.
  void EmitLateUpdates(Time ts, Time last_wm, const std::vector<char>* skip,
                       std::vector<WindowResult>* out);

  /// Context changes reported a set of changed window instances for window
  /// `window_id`; re-emit those that ended at or before `last_wm`.
  void EmitChangedWindows(int window_id,
                          const std::vector<std::pair<Time, Time>>& wins,
                          Time last_wm, std::vector<WindowResult>* out);

  /// The combined (un-lowered) partial over [start, end) for aggregation
  /// `agg`, splitting slices on demand when a window edge falls inside a
  /// slice. Exposed for the query registry, whose derived (Factor-Windows)
  /// queries fold coarse-granule partials into window results outside the
  /// window manager's own trigger path.
  Partial RangePartial(size_t agg, Time start, Time end);

 private:
  /// Computes [start, end) for aggregation `agg`, splitting slices on demand
  /// when a window edge falls inside a slice (forward-context-aware starts).
  Value ComputeWindow(size_t agg, Time start, Time end);

  void EmitAllAggs(int window_id, Time start, Time end, bool is_update,
                   std::vector<WindowResult>* out);

  AggregateStore* store_;
  QuerySet* queries_;
  SliceManager* slice_mgr_;
  OperatorStats* stats_;
  Time wm_floor_ = kNoTime;
};

}  // namespace scotty

#endif  // SCOTTY_CORE_WINDOW_MANAGER_H_
