// Multi-seed randomized soak: long mixed-query streams through the general
// slicing operator (lazy and eager) checked against the tuple buffer as a
// semantic oracle, plus invariants on statistics and state bounds.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "baselines/tuple_buffer.h"
#include "common/rng.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::RunStream;
using testutil::T;

struct SoakConfig {
  uint64_t seed;
  double ooo_fraction;
  Time max_delay;
  bool with_sessions;
};

std::vector<Tuple> MakeSoakStream(const SoakConfig& cfg, int n) {
  testing::StreamSpec spec;
  spec.seed = cfg.seed;
  spec.num_tuples = n;
  spec.step_lo = 1;
  spec.step_hi = 3;
  spec.gap_probability = 0.02;  // session gaps
  spec.gap_length = 60;
  spec.value_range = 40;
  spec.ooo_fraction = cfg.ooo_fraction;
  spec.max_delay = cfg.max_delay;
  return testing::GenerateStream(spec);
}

std::vector<WindowPtr> SoakWindows(bool with_sessions) {
  std::vector<WindowPtr> ws = {std::make_shared<TumblingWindow>(13),
                               std::make_shared<SlidingWindow>(40, 10),
                               std::make_shared<TumblingWindow>(97)};
  if (with_sessions) ws.push_back(std::make_shared<SessionWindow>(20));
  return ws;
}

class SoakTest : public ::testing::TestWithParam<int> {};

TEST_P(SoakTest, SlicingMatchesOracleAcrossSeeds) {
  SoakConfig cfg;
  cfg.seed = static_cast<uint64_t>(GetParam()) * 7919 + 3;
  cfg.ooo_fraction = (GetParam() % 3) * 0.15;  // 0, 15%, 30%
  cfg.max_delay = 40;
  cfg.with_sessions = GetParam() % 2 == 0;

  const std::vector<Tuple> stream = MakeSoakStream(cfg, 1500);
  Time last = 0;
  for (const Tuple& t : stream) last = std::max(last, t.ts);
  const Time final_wm = last + 100;

  auto build_slicing = [&](StoreMode mode) {
    GeneralSlicingOperator::Options o;
    o.stream_in_order = false;
    o.allowed_lateness = 1000000;
    o.store_mode = mode;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddAggregation(MakeAggregation("max"));
    for (const WindowPtr& w : SoakWindows(cfg.with_sessions)) {
      op->AddWindow(w);
    }
    return op;
  };

  auto lazy = build_slicing(StoreMode::kLazy);
  auto fin_lazy = FinalResults(RunStream(*lazy, stream, final_wm));

  auto eager = build_slicing(StoreMode::kEager);
  auto fin_eager = FinalResults(RunStream(*eager, stream, final_wm));
  EXPECT_EQ(fin_lazy, fin_eager) << "lazy vs eager divergence";

  TupleBufferOperator oracle(false, 1000000);
  oracle.AddAggregation(MakeAggregation("sum"));
  oracle.AddAggregation(MakeAggregation("max"));
  for (const WindowPtr& w : SoakWindows(cfg.with_sessions)) {
    oracle.AddWindow(w);
  }
  auto fin_oracle = FinalResults(RunStream(oracle, stream, final_wm));
  // Key-by-key comparison for actionable diagnostics.
  for (const auto& [key, expected] : fin_oracle) {
    const auto it = fin_lazy.find(key);
    if (it == fin_lazy.end()) {
      ADD_FAILURE() << "slicing missing window (w=" << std::get<0>(key)
                    << ", a=" << std::get<1>(key) << ", ["
                    << std::get<2>(key) << "," << std::get<3>(key) << "))";
      continue;
    }
    EXPECT_EQ(it->second, expected)
        << "window (w=" << std::get<0>(key) << ", a=" << std::get<1>(key)
        << ", [" << std::get<2>(key) << "," << std::get<3>(key) << "))";
  }
  for (const auto& [key, v] : fin_lazy) {
    EXPECT_TRUE(fin_oracle.count(key))
        << "slicing emitted extra window (w=" << std::get<0>(key)
        << ", a=" << std::get<1>(key) << ", [" << std::get<2>(key) << ","
        << std::get<3>(key) << ")) = " << v;
  }

  // Statistics invariants.
  EXPECT_EQ(lazy->stats().tuples_processed, stream.size());
  EXPECT_EQ(lazy->stats().dropped_tuples, 0u);
  if (cfg.ooo_fraction > 0) {
    EXPECT_GT(lazy->stats().out_of_order_tuples, 0u);
  } else {
    EXPECT_EQ(lazy->stats().out_of_order_tuples, 0u);
  }
  if (cfg.with_sessions) {
    // Sessions never split or recompute (commutative aggregations here).
    EXPECT_EQ(lazy->stats().slice_splits, 0u);
    EXPECT_EQ(lazy->stats().slice_recomputes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Range(0, 12));

// With periodic watermarks and eviction, a long soak must keep memory flat
// and still produce exactly one final value per window instance.
class EvictingSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(EvictingSoakTest, BoundedStateWithPeriodicWatermarks) {
  SoakConfig cfg;
  cfg.seed = static_cast<uint64_t>(GetParam()) * 104729 + 17;
  cfg.ooo_fraction = 0.2;
  cfg.max_delay = 40;
  cfg.with_sessions = true;

  const std::vector<Tuple> stream = MakeSoakStream(cfg, 4000);
  GeneralSlicingOperator::Options o;
  o.stream_in_order = false;
  o.allowed_lateness = 50;
  GeneralSlicingOperator op(o);
  op.AddAggregation(MakeAggregation("sum"));
  for (const WindowPtr& w : SoakWindows(true)) op.AddWindow(w);

  uint64_t seq = 0;
  Time max_ts = kNoTime;
  size_t peak_slices = 0;
  uint64_t results = 0;
  for (const Tuple& raw : stream) {
    Tuple t = raw;
    t.seq = seq++;
    op.ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (seq % 256 == 0) {
      op.ProcessWatermark(max_ts - cfg.max_delay);
      results += op.TakeResults().size();
      peak_slices = std::max(peak_slices, op.time_store()->NumSlices());
    }
  }
  op.ProcessWatermark(max_ts + 100);
  results += op.TakeResults().size();
  EXPECT_GT(results, 100u);
  // Retention horizon: longest window (97) + lateness (50) + session slack.
  EXPECT_LT(peak_slices, 80u);
  EXPECT_EQ(op.stats().dropped_tuples, 0u);  // wm slack == injector bound
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvictingSoakTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace scotty
