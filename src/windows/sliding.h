#ifndef SCOTTY_WINDOWS_SLIDING_H_
#define SCOTTY_WINDOWS_SLIDING_H_

#include <algorithm>
#include <string>

#include "windows/window.h"

namespace scotty {

/// Sliding window of length `l` and slide `ls`: windows [k*ls, k*ls + l) for
/// all integer k >= 0. Consecutive windows overlap when ls < l; a tuple then
/// belongs to up to ceil(l / ls) windows. Context free.
class SlidingWindow : public ContextFreeWindow {
 public:
  SlidingWindow(Time length, Time slide, Measure measure = Measure::kEventTime)
      : length_(length), slide_(slide), measure_(measure) {}

  Time length() const { return length_; }
  Time slide() const { return slide_; }
  Measure measure() const override { return measure_; }

  Time GetNextEdge(Time t) const override {
    const Time next_start = NextMultiple(t, slide_);
    // Ends lie at k*ls + l: shift into the start lattice and back.
    const Time next_end = t >= length_
                              ? NextMultiple(t - length_, slide_) + length_
                              : length_;
    return std::min(next_start, next_end);
  }

  Time GetNextStartEdge(Time t) const override {
    // Start-only slicing (the Cutty minimality) is sound only when every
    // window end coincides with some window's start edge, i.e., when the
    // length is a multiple of the slide. Otherwise an end would fall
    // strictly inside a slice and windows would absorb foreign tuples, so
    // ends must cut too.
    return length_ % slide_ == 0 ? NextMultiple(t, slide_) : GetNextEdge(t);
  }

  Time LastEdgeAtOrBefore(Time t) const override {
    const Time last_start = (t / slide_) * slide_;
    const Time last_end =
        t >= length_ ? ((t - length_) / slide_) * slide_ + length_ : kNoTime;
    return std::max(last_start, last_end);
  }

  bool IsWindowEdge(Time t) const override {
    if (t % slide_ == 0) return true;
    return t >= length_ && (t - length_) % slide_ == 0;
  }

  void TriggerWindows(WindowCallback& cb, Time prev_wm,
                      Time curr_wm) override {
    // Window ends are start + l for starts k*ls; first end > prev_wm.
    Time end = prev_wm >= length_
                   ? NextMultiple(prev_wm - length_, slide_) + length_
                   : length_;
    for (; end <= curr_wm; end += slide_) cb.OnWindow(end - length_, end);
  }

  Time EvictionSafePoint(Time wm) const override { return wm - length_; }

  std::string Name() const override {
    return "sliding(" + std::to_string(length_) + "," +
           std::to_string(slide_) + ")";
  }

 private:
  static Time NextMultiple(Time t, Time step) { return (t / step + 1) * step; }

  Time length_;
  Time slide_;
  Measure measure_;
};

}  // namespace scotty

#endif  // SCOTTY_WINDOWS_SLIDING_H_
