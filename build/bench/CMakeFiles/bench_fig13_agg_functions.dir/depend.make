# Empty dependencies file for bench_fig13_agg_functions.
# This may be replaced when dependencies are built.
