#include "runtime/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

namespace scotty {

namespace {

int64_t CrashAfterFromEnv() {
  const char* env = std::getenv("SCOTTY_CRASH_AFTER");
  if (env == nullptr || *env == '\0') return -1;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0) return -1;
  return static_cast<int64_t>(v);
}

/// Operator names may be cached lazily (KeyedWindowOperator reports
/// "keyed" until its first per-key operator exists, "keyed-<inner>" after),
/// so a fresh factory instance can legitimately report a prefix of the
/// snapshotted name.
bool NamesCompatible(const std::string& snapshotted, const std::string& fresh) {
  if (snapshotted == fresh) return true;
  return snapshotted.size() > fresh.size() &&
         snapshotted.compare(0, fresh.size(), fresh) == 0;
}

}  // namespace

CheckpointCoordinator::CheckpointCoordinator(CheckpointOptions opts)
    : opts_(std::move(opts)), crash_after_(CrashAfterFromEnv()) {}

std::string CheckpointCoordinator::OnBarrier(const WindowOperator& op,
                                             state::CheckpointMetadata meta) {
  if (!op.SupportsSnapshot()) return "";
  state::Writer w;
  op.SerializeState(w);
  return OnBarrierBytes(op.Name(), w.Take(), meta);
}

std::string CheckpointCoordinator::OnBarrierBytes(
    const std::string& operator_name, const std::vector<uint8_t>& state,
    state::CheckpointMetadata meta) {
  meta.barrier_index = barrier_index_;
  const std::vector<uint8_t> blob =
      state::BuildSnapshot(meta, operator_name, state);
  const std::string path = opts_.directory + "/" + opts_.prefix + "-" +
                           std::to_string(barrier_index_) + ".snap";
  if (!state::WriteSnapshotFile(path, blob)) return "";
  ++barrier_index_;
  last_path_ = path;
  // Retention: the new snapshot is durable (fsync + rename), so snapshots
  // older than the retention window can go. Several files are kept, not
  // one, so recovery has somewhere to fall back to if the newest turns out
  // torn or corrupt on read-back.
  if (opts_.retain > 0 && barrier_index_ > static_cast<uint64_t>(opts_.retain)) {
    const uint64_t evict =
        barrier_index_ - 1 - static_cast<uint64_t>(opts_.retain);
    const std::string old = opts_.directory + "/" + opts_.prefix + "-" +
                            std::to_string(evict) + ".snap";
    std::remove(old.c_str());
  }
  if (crash_after_ >= 0 && static_cast<int64_t>(barrier_index_) ==
                               crash_after_) {
    // Injected crash: the snapshot file is fully persisted (rename done),
    // nothing after this point runs — no destructors, no flushes. The
    // recovery driver must rebuild everything from the file alone.
    std::_Exit(42);
  }
  return path;
}

RestoredOperator RestoreOperator(const std::string& path,
                                 const OperatorFactory& factory) {
  RestoredOperator out;
  std::vector<uint8_t> blob;
  if (!state::ReadSnapshotFile(path, &blob)) {
    out.error = "cannot read snapshot file: " + path;
    return out;
  }
  std::vector<uint8_t> st;
  if (!state::ParseSnapshot(blob, &out.meta, &out.operator_name, &st)) {
    out.error = "snapshot container validation failed: " + path;
    return out;
  }
  out.op = factory();
  if (out.op == nullptr) {
    out.error = "operator factory returned null";
    return out;
  }
  if (!NamesCompatible(out.operator_name, out.op->Name())) {
    out.error = "operator mismatch: snapshot holds '" + out.operator_name +
                "', factory built '" + out.op->Name() + "'";
    out.op.reset();
    return out;
  }
  state::Reader r(st);
  out.op->DeserializeState(r);
  if (!r.ok() || !r.AtEnd()) {
    out.error = "operator state decode failed (fingerprint mismatch or "
                "corrupt payload)";
    out.op.reset();
    return out;
  }
  out.ok = true;
  return out;
}

std::vector<std::string> ListSnapshots(const std::string& directory,
                                       const std::string& prefix) {
  namespace fs = std::filesystem;
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(directory, ec)) {
    if (!e.is_regular_file(ec)) continue;
    const std::string name = e.path().filename().string();
    // Match `<prefix>-<digits>.snap` exactly; .tmp leftovers and foreign
    // files are not recovery candidates.
    if (name.size() <= prefix.size() + 6) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name[prefix.size()] != '-') continue;
    if (name.compare(name.size() - 5, 5, ".snap") != 0) continue;
    const std::string digits =
        name.substr(prefix.size() + 1, name.size() - prefix.size() - 6);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                       e.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [idx, path] : found) out.push_back(std::move(path));
  return out;
}

RecoveredOperator RecoverNewestValid(const std::string& directory,
                                     const std::string& prefix,
                                     const OperatorFactory& factory) {
  RecoveredOperator out;
  const std::vector<std::string> candidates = ListSnapshots(directory, prefix);
  out.candidates = candidates.size();
  std::string errors;
  for (const std::string& path : candidates) {
    RestoredOperator r = RestoreOperator(path, factory);
    if (r.ok) {
      out.restored = std::move(r);
      out.path_used = path;
      return out;
    }
    // Torn, truncated, or corrupt: remember why and fall back to the next
    // older snapshot. Every subsequent success reports fell_back=true so
    // callers/tests can observe that the fallback path actually ran.
    out.fell_back = true;
    if (!errors.empty()) errors += "; ";
    errors += path + ": " + r.error;
  }
  out.restored.error = candidates.empty()
                           ? "no snapshot files in " + directory
                           : "no valid snapshot (" + errors + ")";
  return out;
}

namespace {

/// Shared driver loop for the initial run and the resumed continuation:
/// identical tuple/watermark cadence to RunPipeline, plus a checkpoint
/// barrier after every watermark's results were drained. Supports both the
/// per-tuple and the batched ingestion interleaving; blocks never straddle
/// a watermark injection point, so the operator state observed at each
/// barrier — and therefore every snapshot file — is byte-identical between
/// the two.
void DrivePipeline(TupleSource& src, WindowOperator& op, uint64_t start_index,
                   uint64_t max_tuples, const PipelineOptions& opts,
                   CheckpointCoordinator* coord, Time max_ts,
                   CheckpointedPipelineReport* out, const ResultSink& sink) {
  auto drain = [&] {
    for (const WindowResult& r : op.TakeResults()) {
      ++out->report.results;
      if (r.is_update) ++out->report.updates;
      if (sink) sink(r);
    }
  };
  auto barrier = [&](uint64_t next_index, Time wm) {
    if (coord == nullptr) return;
    state::CheckpointMetadata meta;
    meta.source_offset = next_index;
    meta.next_seq = next_index;
    meta.max_ts = max_ts;
    meta.last_wm = wm;
    const std::string path = coord->OnBarrier(op, meta);
    if (!path.empty()) {
      ++out->checkpoints;
      out->last_checkpoint = path;
    }
  };
  Tuple t;
  if (opts.batch_size <= 1) {
    for (uint64_t i = start_index; i < max_tuples && src.Next(&t); ++i) {
      op.ProcessTuple(t);
      max_ts = std::max(max_ts, t.ts);
      ++out->report.tuples;
      if (opts.watermark_every > 0 && (i + 1) % opts.watermark_every == 0) {
        const Time wm = max_ts - opts.watermark_delay;
        op.ProcessWatermark(wm);
        // Results MUST leave the operator before the barrier: a snapshot
        // taken with undrained results would re-emit them after restore,
        // duplicating output the consumer already saw.
        drain();
        barrier(i + 1, wm);
      }
    }
  } else {
    std::vector<Tuple> buf;
    buf.reserve(opts.batch_size);
    bool more = true;
    uint64_t i = start_index;
    while (more && i < max_tuples) {
      uint64_t limit = std::min(opts.batch_size, max_tuples - i);
      if (opts.watermark_every > 0) {
        limit = std::min(limit, opts.watermark_every - i % opts.watermark_every);
      }
      buf.clear();
      while (buf.size() < limit && (more = src.Next(&t))) {
        buf.push_back(t);
        max_ts = std::max(max_ts, t.ts);
      }
      if (buf.empty()) break;
      op.ProcessTupleBatch(buf);
      i += buf.size();
      out->report.tuples += buf.size();
      if (opts.watermark_every > 0 && i % opts.watermark_every == 0) {
        const Time wm = max_ts - opts.watermark_delay;
        op.ProcessWatermark(wm);
        drain();
        barrier(i, wm);
      }
    }
  }
  if (max_ts != kNoTime) op.ProcessWatermark(max_ts);
  drain();
}

}  // namespace

CheckpointedPipelineReport RunCheckpointedPipeline(
    TupleSource& src, WindowOperator& op, uint64_t max_tuples,
    const PipelineOptions& opts, CheckpointCoordinator& coord,
    const ResultSink& sink) {
  CheckpointedPipelineReport out;
  const auto start = std::chrono::steady_clock::now();
  DrivePipeline(src, op, 0, max_tuples, opts, &coord, kNoTime, &out, sink);
  out.report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

namespace {

/// Shared resume tail: fast-forward the source past the snapshot's offset,
/// continue the barrier numbering, and replay the remainder.
bool ResumeFromRestored(RestoredOperator restored, TupleSource& src,
                        uint64_t max_tuples, const PipelineOptions& opts,
                        CheckpointCoordinator* coord, const ResultSink& sink,
                        CheckpointedPipelineReport* report,
                        std::unique_ptr<WindowOperator>* op,
                        std::string* error) {
  Tuple t;
  uint64_t skipped = 0;
  while (skipped < restored.meta.source_offset && src.Next(&t)) ++skipped;
  if (skipped != restored.meta.source_offset) {
    *error = "source exhausted before the checkpoint offset";
    return false;
  }
  if (coord != nullptr) coord->SetBarrierIndex(restored.meta.barrier_index + 1);
  const auto start = std::chrono::steady_clock::now();
  DrivePipeline(src, *restored.op, restored.meta.source_offset, max_tuples,
                opts, coord, restored.meta.max_ts, report, sink);
  report->report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  *op = std::move(restored.op);
  return true;
}

}  // namespace

ResumedPipeline RestorePipeline(const std::string& snapshot_path,
                                const OperatorFactory& factory,
                                TupleSource& src, uint64_t max_tuples,
                                const PipelineOptions& opts,
                                CheckpointCoordinator* coord,
                                const ResultSink& sink) {
  ResumedPipeline out;
  RestoredOperator restored = RestoreOperator(snapshot_path, factory);
  if (!restored.ok) {
    out.error = std::move(restored.error);
    return out;
  }
  out.ok = ResumeFromRestored(std::move(restored), src, max_tuples, opts,
                              coord, sink, &out.report, &out.op, &out.error);
  return out;
}

RecoveredPipeline RecoverPipeline(const std::string& directory,
                                  const std::string& prefix,
                                  const OperatorFactory& factory,
                                  TupleSource& src, uint64_t max_tuples,
                                  const PipelineOptions& opts,
                                  CheckpointCoordinator* coord,
                                  const ResultSink& sink) {
  RecoveredPipeline out;
  RecoveredOperator rec = RecoverNewestValid(directory, prefix, factory);
  out.fell_back = rec.fell_back;
  out.path_used = rec.path_used;
  if (!rec.restored.ok) {
    out.error = std::move(rec.restored.error);
    return out;
  }
  out.ok =
      ResumeFromRestored(std::move(rec.restored), src, max_tuples, opts,
                         coord, sink, &out.report, &out.op, &out.error);
  return out;
}

}  // namespace scotty
