#ifndef SCOTTY_BENCH_BENCH_JSON_H_
#define SCOTTY_BENCH_BENCH_JSON_H_

// Machine-readable benchmark recording: every EmitRow prints the usual CSV
// row AND appends a JSON object to a results file, so perf baselines can be
// committed and diffed across changes (BENCH_throughput.json at the repo
// root holds the recorded baseline; see EXPERIMENTS.md for regeneration).
//
// The file always holds one valid JSON array. Appending rewrites the file:
// read, strip the closing bracket, add the new object, close the array.
// This needs no JSON parser, tolerates a missing/empty file, and keeps the
// file well-formed after every row — a crashed bench leaves valid JSON.
//
// The target path is BENCH_throughput.json in the current directory, or
// $SCOTTY_BENCH_JSON when set (benches run from build/, so regenerating the
// committed baseline uses SCOTTY_BENCH_JSON=../BENCH_throughput.json).

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"

namespace scotty {
namespace bench {

inline std::string BenchJsonPath() {
  const char* env = std::getenv("SCOTTY_BENCH_JSON");
  return env != nullptr && env[0] != '\0' ? std::string(env)
                                          : "BENCH_throughput.json";
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

inline void AppendJsonRow(const std::string& figure, const std::string& series,
                          const std::string& x, double y,
                          const std::string& unit) {
  const std::string path = BenchJsonPath();
  std::string content;
  {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    content = ss.str();
  }
  char ybuf[64];
  std::snprintf(ybuf, sizeof(ybuf), "%.6g", y);
  std::ostringstream row;
  row << "  {\"figure\": \"" << JsonEscape(figure) << "\", \"series\": \""
      << JsonEscape(series) << "\", \"x\": \"" << JsonEscape(x)
      << "\", \"y\": " << ybuf << ", \"unit\": \"" << JsonEscape(unit)
      << "\"}";
  const size_t close = content.find_last_of(']');
  std::ofstream out(path, std::ios::trunc);
  if (close == std::string::npos) {
    out << "[\n" << row.str() << "\n]\n";
  } else {
    content.resize(close);  // drop ']' and anything after it
    while (!content.empty() &&
           std::isspace(static_cast<unsigned char>(content.back()))) {
      content.pop_back();
    }
    out << content << ",\n" << row.str() << "\n]\n";
  }
}

/// CSV row on stdout + JSON object in the results file.
inline void EmitRow(const std::string& figure, const std::string& series,
                    const std::string& x, double y, const std::string& unit) {
  PrintRow(figure, series, x, y, unit);
  AppendJsonRow(figure, series, x, y, unit);
}

}  // namespace bench
}  // namespace scotty

#endif  // SCOTTY_BENCH_BENCH_JSON_H_
