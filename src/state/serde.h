#ifndef SCOTTY_STATE_SERDE_H_
#define SCOTTY_STATE_SERDE_H_

// Binary serialization primitives for operator snapshots.
//
// Writer appends fixed-width little-endian fields to a byte buffer; Reader
// consumes them in the same order. Doubles travel as their raw IEEE-754 bit
// pattern so restored partials are bit-identical to the originals — the
// checkpoint contract is exact equality, not approximate equality.
//
// Reader never throws and never reads out of bounds: any underflow or tag
// mismatch latches `ok() == false` and every subsequent read returns zero.
// Callers check `ok()` once at the end instead of after every field, which
// keeps Deserialize implementations as flat as their Serialize twins.
//
// Tag(x) writes/checks a 32-bit sentinel. Sprinkled between sections, tags
// turn a desynchronized decode (e.g. a version-skewed field) into an
// immediate, localized failure instead of garbage state.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace scotty {
namespace state {

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) { AppendLE(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLE(&v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Raw byte run (caller encodes the length separately).
  void Bytes(const uint8_t* p, size_t n) { buf_.insert(buf_.end(), p, p + n); }
  void Tag(uint32_t t) { U32(t); }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void AppendLE(const void* p, size_t n) {
    // Serialize little-endian regardless of host order.
    const uint8_t* b = static_cast<const uint8_t*>(p);
    uint64_t v = 0;
    std::memcpy(&v, b, n);
    for (size_t i = 0; i < n; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  uint32_t U32() { return static_cast<uint32_t>(ReadLE(4)); }
  uint64_t U64() { return ReadLE(8); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool Bool() { return U8() != 0; }
  /// Raw byte run; zero-fills `out` (and poisons the reader) on underflow.
  void Bytes(uint8_t* out, size_t n) {
    if (!Need(n)) {
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  std::string Str() {
    const uint64_t n = U64();
    if (!Need(n)) return std::string();
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }
  /// Consumes a sentinel written with Writer::Tag; a mismatch poisons the
  /// reader so the caller's final ok() check fails.
  void Tag(uint32_t expect) {
    if (U32() != expect) ok_ = false;
  }

  void Fail() { ok_ = false; }
  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool Need(uint64_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }
  uint64_t ReadLE(size_t n) {
    if (!Need(n)) return 0;
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace state
}  // namespace scotty

#endif  // SCOTTY_STATE_SERDE_H_
