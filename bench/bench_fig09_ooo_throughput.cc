// Figure 9: Throughput with 20% out-of-order tuples and session windows,
// increasing the number of concurrent windows; football and machine data.
//
// Workload (paper Section 6.2.2): the Figure-8 tumbling queries plus a
// time-based session window (gap 1 s), 20% out-of-order tuples with random
// delays between 0 and 2 seconds.
//
// Expected shape: general slicing stays an order of magnitude above the
// non-slicing techniques and roughly flat in the window count; lazy slicing
// leads, eager slightly below (tree updates on OOO tuples); the aggregate
// tree collapses (OOO leaf inserts); results are nearly identical across the
// two datasets because performance depends on workload characteristics.

#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "windows/session.h"

namespace scotty {
namespace bench {
namespace {

std::vector<WindowPtr> Windows(int n) {
  std::vector<WindowPtr> ws = DashboardTumblingWindows(n);
  ws.push_back(std::make_shared<SessionWindow>(1000));
  return ws;
}

void Run() {
  PrintHeader("fig09",
              "throughput vs concurrent windows, 20% OOO + session window");
  const std::vector<int> window_counts = {1, 10, 100, 1000};
  const std::vector<Technique> techniques = {
      Technique::kLazySlicing, Technique::kEagerSlicing, Technique::kBuckets,
      Technique::kTupleBuffer, Technique::kAggregateTree};
  for (const char* dataset : {"football", "machine"}) {
    for (Technique tech : techniques) {
      for (int n : window_counts) {
        SensorStream inner(dataset == std::string("football")
                               ? SensorStream::Football()
                               : SensorStream::Machine());
        OutOfOrderInjector::Options ooo;
        ooo.fraction = 0.2;
        ooo.min_delay = 0;
        ooo.max_delay = 2000;
        OutOfOrderInjector src(&inner, ooo);
        auto op = MakeTechnique(tech, /*stream_in_order=*/false,
                                /*allowed_lateness=*/2000, Windows(n),
                                {"sum"});
        const ThroughputResult r = MeasureThroughput(
            *op, src, 2'000'000, 1.0, /*wm_every=*/1024, /*wm_delay=*/2000);
        EmitRow("fig09",
                std::string(TechniqueName(tech)) + "/" + dataset,
                std::to_string(n), r.TuplesPerSecond(), "tuples/s");
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
