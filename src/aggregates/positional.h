#ifndef SCOTTY_AGGREGATES_POSITIONAL_H_
#define SCOTTY_AGGREGATES_POSITIONAL_H_

#include <string>

#include "aggregates/aggregate_function.h"

namespace scotty {

/// First / Last: the chronologically earliest / latest value of the window
/// (two of the four M4 components as standalone aggregations; common in
/// downsampling queries). Algebraic, commutative — order is resolved by
/// (timestamp, arrival sequence), so combine order does not matter.
template <bool kIsFirst>
class PositionalAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    // M4State carries (value, ts, seq) for both ends; seq disambiguates
    // equal timestamps so combine order never matters.
    M4State m;
    m.first_v = m.last_v = t.value;
    m.first_t = m.last_t = t.ts;
    m.first_seq = m.last_seq = t.seq;
    m.min = m.max = t.value;
    m.empty = false;
    return Partial{Partial::Storage{m}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    M4State& a = into.Get<M4State>();
    const M4State& b = other.Get<M4State>();
    if (a.empty) {
      a = b;
      return;
    }
    if (b.empty) return;
    if (b.first_t < a.first_t ||
        (b.first_t == a.first_t && b.first_seq < a.first_seq)) {
      a.first_t = b.first_t;
      a.first_seq = b.first_seq;
      a.first_v = b.first_v;
    }
    if (b.last_t > a.last_t ||
        (b.last_t == a.last_t && b.last_seq > a.last_seq)) {
      a.last_t = b.last_t;
      a.last_seq = b.last_seq;
      a.last_v = b.last_v;
    }
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    const M4State& s = p.Get<M4State>();
    if (s.empty) return Value{};
    return Value{kIsFirst ? s.first_v : s.last_v};
  }

  bool TryRemove(Partial& from, const Partial& removed) const override {
    if (from.IsIdentity() || removed.IsIdentity()) return true;
    const M4State& a = from.Get<M4State>();
    const M4State& b = removed.Get<M4State>();
    if (a.empty || b.empty) return true;
    if (kIsFirst) {
      return b.first_t > a.first_t ||
             (b.first_t == a.first_t && b.first_seq > a.first_seq);
    }
    return b.last_t < a.last_t ||
           (b.last_t == a.last_t && b.last_seq < a.last_seq);
  }

  AggClass Class() const override { return AggClass::kAlgebraic; }
  std::string Name() const override { return kIsFirst ? "first" : "last"; }
};

using FirstAggregation = PositionalAggregation<true>;
using LastAggregation = PositionalAggregation<false>;

/// Count-distinct: the number of distinct values in the window. Holistic —
/// the partial is the run-length-encoded sorted multiset already used by
/// the percentile aggregations, so slices are shared with quantile queries
/// for free. Invertible in the multiset sense.
class CountDistinctAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    SortedRuns runs;
    runs.Insert(t.value);
    return Partial{Partial::Storage{std::move(runs)}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<SortedRuns>().Merge(other.Get<SortedRuns>());
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{int64_t{0}};
    return Value{static_cast<int64_t>(p.Get<SortedRuns>().runs.size())};
  }

  void Invert(Partial& from, const Partial& removed) const override {
    if (removed.IsIdentity()) return;
    SortedRuns& a = from.Get<SortedRuns>();
    for (const SortedRuns::Run& r : removed.Get<SortedRuns>().runs) {
      for (int64_t i = 0; i < r.count; ++i) a.Remove(r.value);
    }
  }

  bool IsInvertible() const override { return true; }
  AggClass Class() const override { return AggClass::kHolistic; }
  std::string Name() const override { return "count-distinct"; }
};

}  // namespace scotty

#endif  // SCOTTY_AGGREGATES_POSITIONAL_H_
