// Dedicated tests for AggregateFunction::TryRemove — the incremental-removal
// fast path used by count-measure shifts (paper Fig. 6 and the
// invertibility discussion of Section 6.3.2).

#include <string>

#include <gtest/gtest.h>

#include "aggregates/algebraic.h"
#include "aggregates/basic.h"
#include "aggregates/registry.h"
#include "tests/test_util.h"

namespace scotty {
namespace {

using testutil::T;

Partial Fold(const AggregateFunction& fn, std::initializer_list<Tuple> ts) {
  Partial acc;
  for (const Tuple& t : ts) fn.Combine(acc, fn.Lift(t));
  return acc;
}

TEST(TryRemove, InvertibleFunctionsAlwaysSucceed) {
  for (const char* name : {"sum", "count", "avg", "stddev", "geometric-mean",
                           "median", "p90"}) {
    AggregateFunctionPtr fn = MakeAggregation(name);
    ASSERT_TRUE(fn->IsInvertible()) << name;
    Partial acc = Fold(*fn, {T(1, 2.0), T(2, 4.0), T(3, 8.0)});
    EXPECT_TRUE(fn->TryRemove(acc, fn->Lift(T(2, 4.0)))) << name;
    const Value expected = fn->Lower(Fold(*fn, {T(1, 2.0), T(3, 8.0)}));
    const Value actual = fn->Lower(acc);
    if (expected.IsDouble()) {
      EXPECT_NEAR(actual.AsDouble(), expected.AsDouble(), 1e-9) << name;
    } else {
      EXPECT_EQ(actual, expected) << name;
    }
  }
}

TEST(TryRemove, MinSucceedsWhenRemovedValueIsLarger) {
  MinAggregation mn;
  Partial acc = Fold(mn, {T(1, 3.0), T(2, 7.0)});
  EXPECT_TRUE(mn.TryRemove(acc, mn.Lift(T(2, 7.0))));  // 7 > min 3
  EXPECT_DOUBLE_EQ(mn.Lower(acc).AsDouble(), 3.0);
}

TEST(TryRemove, MinFailsWhenRemovingTheMinimum) {
  MinAggregation mn;
  Partial acc = Fold(mn, {T(1, 3.0), T(2, 7.0)});
  EXPECT_FALSE(mn.TryRemove(acc, mn.Lift(T(1, 3.0))));
}

TEST(TryRemove, MaxSymmetricBehaviour) {
  MaxAggregation mx;
  Partial acc = Fold(mx, {T(1, 3.0), T(2, 7.0)});
  EXPECT_TRUE(mx.TryRemove(acc, mx.Lift(T(1, 3.0))));
  EXPECT_DOUBLE_EQ(mx.Lower(acc).AsDouble(), 7.0);
  EXPECT_FALSE(mx.TryRemove(acc, mx.Lift(T(2, 7.0))));
}

TEST(TryRemove, MinCountDecrementsMultiplicity) {
  MinCountAggregation mc;
  Partial acc = Fold(mc, {T(1, 2.0), T(2, 2.0), T(3, 5.0)});
  // Removing one occurrence of the minimum keeps the other.
  EXPECT_TRUE(mc.TryRemove(acc, mc.Lift(T(1, 2.0))));
  const Value v = mc.Lower(acc);
  EXPECT_DOUBLE_EQ(v.AsArg().value, 2.0);
  EXPECT_EQ(v.AsArg().arg, 1);  // multiplicity now 1
  // Removing the last occurrence requires recomputation.
  EXPECT_FALSE(mc.TryRemove(acc, mc.Lift(T(2, 2.0))));
}

TEST(TryRemove, MaxCountLargerValueIsNoOp) {
  MaxCountAggregation mc;
  Partial acc = Fold(mc, {T(1, 9.0), T(2, 4.0)});
  EXPECT_TRUE(mc.TryRemove(acc, mc.Lift(T(2, 4.0))));
  EXPECT_DOUBLE_EQ(mc.Lower(acc).AsArg().value, 9.0);
  EXPECT_FALSE(mc.TryRemove(acc, mc.Lift(T(1, 9.0))));
}

TEST(TryRemove, ArgMaxFailsOnlyForTheWinningOccurrence) {
  ArgMaxAggregation am;
  Partial acc = Fold(am, {T(1, 9.0), T(5, 9.0), T(3, 4.0)});
  // The earliest occurrence (ts=1) wins; removing the tie at ts=5 is safe.
  EXPECT_TRUE(am.TryRemove(acc, am.Lift(T(5, 9.0))));
  EXPECT_FALSE(am.TryRemove(acc, am.Lift(T(1, 9.0))));
  // Smaller values never matter.
  EXPECT_TRUE(am.TryRemove(acc, am.Lift(T(3, 4.0))));
}

TEST(TryRemove, M4InteriorTupleIsNoOp) {
  M4Aggregation m4;
  Partial acc = Fold(m4, {T(1, 5.0, 0), T(2, 1.0, 1), T(3, 9.0, 2),
                          T(4, 6.0, 3)});
  // ts=2 holds the min; ts=3 the max; ts=1 is first; ts=4 is last.
  // An interior tuple in both value and time: none here except... build one:
  Partial interior = m4.Lift(T(2, 1.0, 1));
  EXPECT_FALSE(m4.TryRemove(acc, interior));  // it is the min
  Partial acc2 = Fold(m4, {T(1, 5.0, 0), T(2, 3.0, 1), T(3, 9.0, 2),
                           T(4, 1.0, 3), T(5, 6.0, 4)});
  // ts=2 (value 3): not min (1 at ts=4), not max (9), not first, not last.
  EXPECT_TRUE(m4.TryRemove(acc2, m4.Lift(T(2, 3.0, 1))));
  const M4Result r = m4.Lower(acc2).AsM4();
  EXPECT_DOUBLE_EQ(r.min, 1.0);
  EXPECT_DOUBLE_EQ(r.max, 9.0);
  EXPECT_DOUBLE_EQ(r.first, 5.0);
  EXPECT_DOUBLE_EQ(r.last, 6.0);
}

TEST(TryRemove, M4BoundaryTuplesFail) {
  M4Aggregation m4;
  Partial acc = Fold(m4, {T(1, 5.0, 0), T(2, 3.0, 1), T(3, 6.0, 2)});
  EXPECT_FALSE(m4.TryRemove(acc, m4.Lift(T(1, 5.0, 0))));  // first
  EXPECT_FALSE(m4.TryRemove(acc, m4.Lift(T(3, 6.0, 2))));  // last & max
  EXPECT_FALSE(m4.TryRemove(acc, m4.Lift(T(2, 3.0, 1))));  // min
}

TEST(TryRemove, SumNoInvertAlwaysFails) {
  SumNoInvertAggregation s;
  Partial acc = Fold(s, {T(1, 1.0), T(2, 2.0)});
  EXPECT_FALSE(s.TryRemove(acc, s.Lift(T(1, 1.0))));
}

TEST(TryRemove, SingleElementAccumulatorDrainsToIdentity) {
  // Removing the only contribution must leave a partial that lowers to the
  // empty value and accepts new tuples — the single-slice eviction edge.
  for (const char* name : {"sum", "count", "avg", "stddev", "median", "p90"}) {
    AggregateFunctionPtr fn = MakeAggregation(name);
    Partial acc = fn->Lift(T(4, 6.0));
    ASSERT_TRUE(fn->TryRemove(acc, fn->Lift(T(4, 6.0)))) << name;
    // Drained accumulator must behave like a fresh identity.
    fn->Combine(acc, fn->Lift(T(9, 3.0)));
    const Value expected = fn->Lower(fn->Lift(T(9, 3.0)));
    const Value actual = fn->Lower(acc);
    if (expected.IsDouble()) {
      EXPECT_NEAR(actual.AsDouble(), expected.AsDouble(), 1e-9) << name;
    } else {
      EXPECT_EQ(actual, expected) << name;
    }
  }
}

TEST(TryRemove, IdentityArgumentsAreSafe) {
  MaxAggregation mx;
  Partial acc = Fold(mx, {T(1, 3.0)});
  Partial id;
  EXPECT_TRUE(mx.TryRemove(acc, id));
  EXPECT_TRUE(mx.TryRemove(id, mx.Lift(T(1, 1.0))));
}

}  // namespace
}  // namespace scotty
