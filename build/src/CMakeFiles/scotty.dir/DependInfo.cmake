
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aggregates/registry.cc" "src/CMakeFiles/scotty.dir/aggregates/registry.cc.o" "gcc" "src/CMakeFiles/scotty.dir/aggregates/registry.cc.o.d"
  "/root/repo/src/baselines/aggregate_tree.cc" "src/CMakeFiles/scotty.dir/baselines/aggregate_tree.cc.o" "gcc" "src/CMakeFiles/scotty.dir/baselines/aggregate_tree.cc.o.d"
  "/root/repo/src/baselines/buckets.cc" "src/CMakeFiles/scotty.dir/baselines/buckets.cc.o" "gcc" "src/CMakeFiles/scotty.dir/baselines/buckets.cc.o.d"
  "/root/repo/src/baselines/tuple_buffer.cc" "src/CMakeFiles/scotty.dir/baselines/tuple_buffer.cc.o" "gcc" "src/CMakeFiles/scotty.dir/baselines/tuple_buffer.cc.o.d"
  "/root/repo/src/core/aggregate_store.cc" "src/CMakeFiles/scotty.dir/core/aggregate_store.cc.o" "gcc" "src/CMakeFiles/scotty.dir/core/aggregate_store.cc.o.d"
  "/root/repo/src/core/count_lane.cc" "src/CMakeFiles/scotty.dir/core/count_lane.cc.o" "gcc" "src/CMakeFiles/scotty.dir/core/count_lane.cc.o.d"
  "/root/repo/src/core/general_slicing_operator.cc" "src/CMakeFiles/scotty.dir/core/general_slicing_operator.cc.o" "gcc" "src/CMakeFiles/scotty.dir/core/general_slicing_operator.cc.o.d"
  "/root/repo/src/core/slice.cc" "src/CMakeFiles/scotty.dir/core/slice.cc.o" "gcc" "src/CMakeFiles/scotty.dir/core/slice.cc.o.d"
  "/root/repo/src/core/slice_manager.cc" "src/CMakeFiles/scotty.dir/core/slice_manager.cc.o" "gcc" "src/CMakeFiles/scotty.dir/core/slice_manager.cc.o.d"
  "/root/repo/src/core/window_manager.cc" "src/CMakeFiles/scotty.dir/core/window_manager.cc.o" "gcc" "src/CMakeFiles/scotty.dir/core/window_manager.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/CMakeFiles/scotty.dir/core/workload.cc.o" "gcc" "src/CMakeFiles/scotty.dir/core/workload.cc.o.d"
  "/root/repo/src/datagen/generators.cc" "src/CMakeFiles/scotty.dir/datagen/generators.cc.o" "gcc" "src/CMakeFiles/scotty.dir/datagen/generators.cc.o.d"
  "/root/repo/src/datagen/ooo_injector.cc" "src/CMakeFiles/scotty.dir/datagen/ooo_injector.cc.o" "gcc" "src/CMakeFiles/scotty.dir/datagen/ooo_injector.cc.o.d"
  "/root/repo/src/datagen/replayer.cc" "src/CMakeFiles/scotty.dir/datagen/replayer.cc.o" "gcc" "src/CMakeFiles/scotty.dir/datagen/replayer.cc.o.d"
  "/root/repo/src/datagen/workloads.cc" "src/CMakeFiles/scotty.dir/datagen/workloads.cc.o" "gcc" "src/CMakeFiles/scotty.dir/datagen/workloads.cc.o.d"
  "/root/repo/src/runtime/parallel_executor.cc" "src/CMakeFiles/scotty.dir/runtime/parallel_executor.cc.o" "gcc" "src/CMakeFiles/scotty.dir/runtime/parallel_executor.cc.o.d"
  "/root/repo/src/runtime/pipeline.cc" "src/CMakeFiles/scotty.dir/runtime/pipeline.cc.o" "gcc" "src/CMakeFiles/scotty.dir/runtime/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
