#ifndef SCOTTY_CORE_QUERY_BUILDER_H_
#define SCOTTY_CORE_QUERY_BUILDER_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "query/query_def.h"
#include "query/window_desc.h"
#include "windows/frames.h"
#include "windows/multi_measure.h"
#include "windows/punctuation.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {

/// Fluent front-end for assembling a general slicing operator — the role of
/// the paper's "query translator" (Figure 3): it observes the declared
/// query characteristics (window types, aggregations, measures, stream
/// order) and hands them to the aggregator, which adapts automatically.
///
///   auto op = QueryBuilder()
///                 .OutOfOrder(/*allowed_lateness=*/2000)
///                 .Aggregate("sum")
///                 .Aggregate("median")
///                 .Tumbling(1000)
///                 .Sliding(20000, 1000)
///                 .Session(500)
///                 .Build();
class QueryBuilder {
 public:
  QueryBuilder() = default;

  /// Declares the stream in-order: windows trigger per tuple, out-of-order
  /// tuples are dropped.
  QueryBuilder& InOrder() {
    opts_.stream_in_order = true;
    opts_.allowed_lateness = 0;
    return *this;
  }

  /// Declares the stream out-of-order: windows trigger on watermarks, late
  /// tuples within `allowed_lateness` update emitted windows.
  QueryBuilder& OutOfOrder(Time allowed_lateness) {
    opts_.stream_in_order = false;
    opts_.allowed_lateness = allowed_lateness;
    return *this;
  }

  /// Lazy store: highest throughput (default).
  QueryBuilder& Lazy() {
    opts_.store_mode = StoreMode::kLazy;
    return *this;
  }

  /// Eager store: FlatFAT over slices for microsecond output latency.
  QueryBuilder& Eager() {
    opts_.store_mode = StoreMode::kEager;
    return *this;
  }

  /// Adds a built-in aggregation by registry name.
  QueryBuilder& Aggregate(const std::string& name) {
    AggregateFunctionPtr fn = MakeAggregation(name);
    assert(fn != nullptr && "unknown aggregation name");
    aggs_.push_back(std::move(fn));
    def_.aggs.push_back(name);
    return *this;
  }

  /// Adds a custom aggregation function. Custom functions have no registry
  /// name, so the builder's portable QueryDef is forfeited (see Def()).
  QueryBuilder& Aggregate(AggregateFunctionPtr fn) {
    aggs_.push_back(std::move(fn));
    portable_ = false;
    return *this;
  }

  QueryBuilder& Tumbling(Time length, Measure measure = Measure::kEventTime) {
    windows_.push_back(std::make_shared<TumblingWindow>(length, measure));
    RecordWindow({WindowDesc::Kind::kTumbling, measure, length, 0});
    return *this;
  }

  QueryBuilder& Sliding(Time length, Time slide,
                        Measure measure = Measure::kEventTime) {
    windows_.push_back(
        std::make_shared<SlidingWindow>(length, slide, measure));
    RecordWindow({WindowDesc::Kind::kSliding, measure, length, slide});
    return *this;
  }

  QueryBuilder& Session(Time gap) {
    windows_.push_back(std::make_shared<SessionWindow>(gap));
    RecordWindow(
        {WindowDesc::Kind::kSession, Measure::kEventTime, gap, 0});
    return *this;
  }

  QueryBuilder& Punctuated() {
    windows_.push_back(std::make_shared<PunctuationWindow>());
    RecordWindow(
        {WindowDesc::Kind::kPunctuation, Measure::kEventTime, 10, 0});
    return *this;
  }

  /// Data-driven threshold frames: windows over maximal runs of values at
  /// or above `threshold`.
  QueryBuilder& Frames(double threshold) {
    windows_.push_back(std::make_shared<ThresholdFrameWindow>(threshold));
    // The desc grammar carries integral thresholds only.
    if (threshold == static_cast<double>(static_cast<Time>(threshold))) {
      RecordWindow({WindowDesc::Kind::kThresholdFrame, Measure::kEventTime,
                    static_cast<Time>(threshold), 0});
    } else {
      portable_ = false;
    }
    return *this;
  }

  QueryBuilder& LastNEveryT(int64_t n, Time period) {
    windows_.push_back(std::make_shared<LastNEveryTWindow>(n, period));
    RecordWindow(
        {WindowDesc::Kind::kLastNEveryT, Measure::kEventTime, n, period});
    return *this;
  }

  /// Adds any window implementation (user-defined types plug in here).
  /// Arbitrary window objects cannot be described, so the builder's
  /// portable QueryDef is forfeited (see Def()).
  QueryBuilder& Window(WindowPtr w) {
    windows_.push_back(std::move(w));
    portable_ = false;
    return *this;
  }

  /// Materializes the operator. The builder can be reused afterwards.
  std::unique_ptr<GeneralSlicingOperator> Build() const {
    assert(!aggs_.empty() && "at least one aggregation is required");
    assert(!windows_.empty() && "at least one window is required");
    auto op = std::make_unique<GeneralSlicingOperator>(opts_);
    for (const AggregateFunctionPtr& fn : aggs_) op->AddAggregation(fn);
    for (const WindowPtr& w : windows_) op->AddWindow(w);
    return op;
  }

  /// True while every window and aggregation added so far has a textual
  /// description — i.e. Def() round-trips this exact query. Custom
  /// AggregateFunctionPtr/WindowPtr additions and non-integral frame
  /// thresholds forfeit portability.
  bool HasPortableDef() const { return portable_; }

  /// The declarative form of the built query, suitable for
  /// QueryRegistry::Register (and for reproducer lines). Only meaningful
  /// when HasPortableDef().
  const QueryDef& Def() const { return def_; }

  const GeneralSlicingOperator::Options& options() const { return opts_; }

 private:
  void RecordWindow(const WindowDesc& d) {
    def_.windows.push_back(d.ToString());
  }

  GeneralSlicingOperator::Options opts_;
  std::vector<AggregateFunctionPtr> aggs_;
  std::vector<WindowPtr> windows_;
  QueryDef def_;
  bool portable_ = true;
};

}  // namespace scotty

#endif  // SCOTTY_CORE_QUERY_BUILDER_H_
