#ifndef SCOTTY_DATAGEN_WORKLOADS_H_
#define SCOTTY_DATAGEN_WORKLOADS_H_

#include <memory>
#include <vector>

#include "windows/window.h"

namespace scotty {

/// Query workloads used across the benchmarks, modeled after the paper's
/// live-visualization dashboard (Section 6.1): concurrent tumbling-window
/// queries with lengths equally distributed between 1 and 20 seconds (the
/// zoom levels of a line-chart dashboard). n queries yield n concurrent
/// windows; the paper notes sliding windows with the same number of
/// concurrent windows behave identically.
std::vector<WindowPtr> DashboardTumblingWindows(int n);

/// Count-measure variant: tumbling count windows with lengths equally
/// distributed between 1 000 and 20 000 tuples.
std::vector<WindowPtr> DashboardCountWindows(int n);

/// Adds windows to any operator exposing AddWindow(WindowPtr).
template <typename Op>
void AddWindows(Op& op, const std::vector<WindowPtr>& windows) {
  for (const WindowPtr& w : windows) op.AddWindow(w);
}

}  // namespace scotty

#endif  // SCOTTY_DATAGEN_WORKLOADS_H_
