# Empty compiler generated dependencies file for bench_fig12_ooo_impact.
# This may be replaced when dependencies are built.
