// Differential fuzzing driver: runs seed-derived random query sets through
// the general slicing operator (lazy and eager stores), all three baseline
// operators, and the brute-force oracle, requiring identical final window
// aggregates everywhere. On a mismatch it shrinks the failing case and
// prints a one-line reproducer that replays deterministically:
//
//   fuzz_differential --seed=N --tuples=M --queries=... --aggs=...
//
// Modes:
//   fuzz_differential --seed=1 --runs=50 --tuples=20000   # fuzzing sweep
//   fuzz_differential --seed=7 --tuples=400 --queries=sliding:20:7 --aggs=sum
//                                                          # replay one case

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "aggregates/registry.h"
#include "testing/differential.h"

namespace {

using scotty::testing::DifferentialConfig;
using scotty::testing::DifferentialOutcome;
using scotty::testing::ParseWindowSpecs;
using scotty::testing::RandomConfig;
using scotty::testing::RunDifferential;
using scotty::testing::Shrink;

struct Flags {
  std::map<std::string, std::string> kv;
  bool Has(const std::string& k) const { return kv.count(k) != 0; }
  std::string Str(const std::string& k, const std::string& def = "") const {
    auto it = kv.find(k);
    return it == kv.end() ? def : it->second;
  }
  int64_t Int(const std::string& k, int64_t def) const {
    auto it = kv.find(k);
    return it == kv.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
  }
  double Dbl(const std::string& k, double def) const {
    auto it = kv.find(k);
    return it == kv.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }
};

constexpr const char* kKnownFlags[] = {
    "seed",       "tuples",     "runs",      "verbose",    "no-shrink",
    "repro-file", "queries",    "aggs",      "step-lo",    "step-hi",
    "gap-prob",   "gap-len",    "value-range", "punct-prob", "ooo",
    "max-delay",  "burst-prob", "burst-len", "wm-every",   "batch",
    "checkpoint", "crash",      "rescale"};

bool ParseFlags(int argc, char** argv, Flags* out) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg);
      return false;
    }
    const char* eq = std::strchr(arg, '=');
    const std::string key =
        eq == nullptr ? std::string(arg + 2) : std::string(arg + 2, eq);
    bool known = false;
    for (const char* k : kKnownFlags) known |= key == k;
    if (!known) {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return false;
    }
    // Bare flags (e.g. --no-shrink) read as "1".
    out->kv[key] = eq == nullptr ? "1" : std::string(eq + 1);
  }
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

/// Overlays any explicitly passed stream/watermark flags onto `cfg`. Replay
/// configs are defaults + flags, so reproducer lines never depend on the
/// RandomConfig derivation staying stable.
void ApplyOverrides(const Flags& flags, DifferentialConfig* cfg) {
  auto& s = cfg->stream;
  if (flags.Has("step-lo")) s.step_lo = flags.Int("step-lo", s.step_lo);
  if (flags.Has("step-hi")) s.step_hi = flags.Int("step-hi", s.step_hi);
  if (flags.Has("gap-prob")) {
    s.gap_probability = flags.Dbl("gap-prob", s.gap_probability);
  }
  if (flags.Has("gap-len")) s.gap_length = flags.Int("gap-len", s.gap_length);
  if (flags.Has("value-range")) {
    s.value_range =
        static_cast<uint64_t>(flags.Int("value-range",
                                        static_cast<int64_t>(s.value_range)));
  }
  if (flags.Has("punct-prob")) {
    s.punctuation_probability =
        flags.Dbl("punct-prob", s.punctuation_probability);
  }
  if (flags.Has("ooo")) s.ooo_fraction = flags.Dbl("ooo", s.ooo_fraction);
  if (flags.Has("max-delay")) s.max_delay = flags.Int("max-delay", s.max_delay);
  if (flags.Has("burst-prob")) {
    s.burst_probability = flags.Dbl("burst-prob", s.burst_probability);
  }
  if (flags.Has("burst-len")) {
    s.burst_length = static_cast<int>(flags.Int("burst-len", s.burst_length));
  }
  if (flags.Has("wm-every")) {
    cfg->wm_every = static_cast<int>(flags.Int("wm-every", cfg->wm_every));
  }
  if (flags.Has("batch")) {
    cfg->batch = static_cast<int>(flags.Int("batch", cfg->batch));
  }
  if (flags.Has("checkpoint")) {
    // N > 0: snapshot/restore at tuple N. -1: seed-derived random cut point
    // (forces the checkpoint dimension on for a whole sweep). 0: off.
    cfg->checkpoint = static_cast<int>(flags.Int("checkpoint",
                                                 cfg->checkpoint));
  }
  if (flags.Has("crash")) {
    // N > 0: kill the run at tuple N. -1: seed-derived kill point,
    // persistence mode (sync-full / sync-incremental / async-incremental),
    // and snapshot/delta-log fault (forces the crash-recovery dimension on
    // for a whole sweep — the nightly lane runs 500 seeds this way). 0: off.
    cfg->crash = static_cast<int>(flags.Int("crash", cfg->crash));
  }
  if (flags.Has("rescale")) {
    // Rescaling crash twin: keyed stream on W workers, crash, recover onto
    // W' != W by re-partitioning per-key state. N > 0: crash at tuple N.
    // -1: seed-derived crash point, worker counts, and faults (the nightly
    // rescaling lane runs 500 seeds this way). 0: off.
    cfg->rescale = static_cast<int>(flags.Int("rescale", cfg->rescale));
  }
}

int ReportFailure(const Flags& flags, DifferentialConfig failing,
                  const std::string& detail) {
  std::fprintf(stderr, "FAIL: %s\n", detail.c_str());
  if (!flags.Has("no-shrink")) {
    std::fprintf(stderr, "shrinking...\n");
    failing = Shrink(failing);
  }
  const DifferentialOutcome replay = RunDifferential(failing);
  const std::string repro = "fuzz_differential " + failing.ToFlags();
  std::fprintf(stderr, "still failing with: %s\n",
               replay.ok ? "(shrunk case passes?! report the original)"
                         : replay.detail.c_str());
  std::fprintf(stderr, "reproducer: %s\n", repro.c_str());
  const std::string repro_file = flags.Str("repro-file");
  if (!repro_file.empty()) {
    std::ofstream out(repro_file, std::ios::app);
    out << repro << "\n" << (replay.ok ? detail : replay.detail) << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  const uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 1));
  const int tuples = static_cast<int>(flags.Int("tuples", 2000));
  const int runs = static_cast<int>(flags.Int("runs", 1));
  const bool verbose = flags.Has("verbose");

  if (flags.Has("queries")) {
    // Replay mode: the config is exactly defaults + flags.
    DifferentialConfig cfg;
    if (!ParseWindowSpecs(flags.Str("queries"), &cfg.windows)) {
      std::fprintf(stderr, "bad --queries: %s\n",
                   flags.Str("queries").c_str());
      return 2;
    }
    cfg.aggs = SplitCommas(flags.Str("aggs", "sum"));
    for (const std::string& name : cfg.aggs) {
      if (scotty::MakeAggregation(name) == nullptr) {
        std::fprintf(stderr, "bad --aggs: unknown aggregation '%s'\n",
                     name.c_str());
        return 2;
      }
    }
    cfg.stream.seed = seed;
    cfg.stream.num_tuples = tuples;
    ApplyOverrides(flags, &cfg);
    const DifferentialOutcome o = RunDifferential(cfg);
    if (!o.ok) return ReportFailure(flags, cfg, o.detail);
    std::printf("OK: %zu comparisons (%s)\n", o.comparisons,
                cfg.ToFlags().c_str());
    return 0;
  }

  size_t total_comparisons = 0;
  for (int r = 0; r < runs; ++r) {
    const uint64_t s = seed + static_cast<uint64_t>(r);
    DifferentialConfig cfg = RandomConfig(s, tuples);
    ApplyOverrides(flags, &cfg);
    const DifferentialOutcome o = RunDifferential(cfg);
    if (!o.ok) return ReportFailure(flags, cfg, o.detail);
    total_comparisons += o.comparisons;
    if (verbose) {
      std::printf("seed %llu ok: %zu comparisons (%s)\n",
                  static_cast<unsigned long long>(s), o.comparisons,
                  cfg.ToFlags().c_str());
    }
  }
  std::printf("OK: %d run(s), %zu comparisons, seeds [%llu, %llu]\n", runs,
              total_comparisons, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed + runs - 1));
  return 0;
}
