# Empty compiler generated dependencies file for scotty.
# This may be replaced when dependencies are built.
