#ifndef SCOTTY_RUNTIME_KEYED_OPERATOR_H_
#define SCOTTY_RUNTIME_KEYED_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/window_operator.h"

namespace scotty {

/// Per-key windowing within one thread: wraps a factory of window operators
/// and maintains one instance per partition key (windows over "average
/// speed per vehicle", "session per user", ...). This is the keyed-stream
/// semantics of Flink/Beam; combined with the ParallelExecutor it yields
/// the two-level key partitioning of paper Section 5.3.
///
/// Watermarks are broadcast to every per-key operator; results are tagged
/// with their key.
class KeyedWindowOperator : public WindowOperator {
 public:
  using Factory = std::function<std::unique_ptr<WindowOperator>()>;

  explicit KeyedWindowOperator(Factory factory)
      : factory_(std::move(factory)) {}

  void ProcessTuple(const Tuple& t) override {
    auto it = operators_.find(t.key);
    if (it == operators_.end()) {
      it = operators_.emplace(t.key, factory_()).first;
      // A freshly created per-key operator must not consider windows
      // before the current watermark already triggered.
      if (last_wm_ != kNoTime) it->second->ProcessWatermark(last_wm_);
    }
    it->second->ProcessTuple(t);
  }

  void ProcessWatermark(Time wm) override {
    last_wm_ = wm;
    for (auto& [key, op] : operators_) {
      op->ProcessWatermark(wm);
      for (WindowResult& r : op->TakeResults()) {
        r.key = key;
        results_.push_back(std::move(r));
      }
    }
  }

  std::vector<WindowResult> TakeResults() override {
    // Collect anything produced between watermarks too (in-order streams
    // self-trigger per tuple).
    for (auto& [key, op] : operators_) {
      for (WindowResult& r : op->TakeResults()) {
        r.key = key;
        results_.push_back(std::move(r));
      }
    }
    std::vector<WindowResult> out;
    out.swap(results_);
    return out;
  }

  size_t MemoryUsageBytes() const override {
    size_t bytes = 0;
    for (const auto& [key, op] : operators_) bytes += op->MemoryUsageBytes();
    return bytes;
  }

  std::string Name() const override {
    return operators_.empty() ? "keyed" : "keyed-" + factory_()->Name();
  }

  size_t NumKeys() const { return operators_.size(); }

  /// Access to one key's operator (nullptr if the key was never seen).
  const WindowOperator* ForKey(int64_t key) const {
    auto it = operators_.find(key);
    return it == operators_.end() ? nullptr : it->second.get();
  }

 private:
  Factory factory_;
  std::unordered_map<int64_t, std::unique_ptr<WindowOperator>> operators_;
  std::vector<WindowResult> results_;
  Time last_wm_ = kNoTime;
};

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_KEYED_OPERATOR_H_
