#!/usr/bin/env bash
# Crash-injection sweep over the checkpoint/restore subsystem (DESIGN.md §7).
#
# For every windowing technique: record the result log of an uninterrupted
# checkpointed run, then for every barrier index n kill the process with
# SCOTTY_CRASH_AFTER=n (hard std::_Exit right after the n-th snapshot is
# persisted), resume from the newest snapshot on disk, and require the
# concatenated crashed+resumed log to be byte-identical to the reference —
# recovery at every barrier, no result lost, duplicated, or altered.
#
# Usage: crash_sweep.sh <crash_injection_binary> [workdir] [tuples] [wm_every]

set -u

BIN=${1:?usage: crash_sweep.sh <crash_injection_binary> [workdir] [tuples] [wm_every]}
WORK=${2:-$(mktemp -d)}
TUPLES=${3:-4096}
WM_EVERY=${4:-256}
BARRIERS=$((TUPLES / WM_EVERY))

TECHNIQUES="slicing-lazy slicing-eager slicing-inorder tuple-buffer aggregate-tree buckets"

mkdir -p "$WORK"
failures=0
total=0

for tech in $TECHNIQUES; do
  ref="$WORK/ref-$tech.log"
  rm -rf "$WORK/ref-dir-$tech"
  mkdir -p "$WORK/ref-dir-$tech"
  if ! "$BIN" --technique="$tech" --tuples="$TUPLES" --wm-every="$WM_EVERY" \
       --dir="$WORK/ref-dir-$tech" --out="$ref" > /dev/null; then
    echo "FAIL: reference run for $tech did not complete"
    exit 1
  fi

  for n in $(seq 1 "$BARRIERS"); do
    total=$((total + 1))
    dir="$WORK/crash-$tech-$n"
    out="$WORK/out-$tech-$n.log"
    rm -rf "$dir" "$out"
    mkdir -p "$dir"
    SCOTTY_CRASH_AFTER=$n "$BIN" --technique="$tech" --tuples="$TUPLES" \
        --wm-every="$WM_EVERY" --dir="$dir" --out="$out" > /dev/null
    rc=$?
    if [ "$rc" -eq 42 ]; then
      if ! "$BIN" --technique="$tech" --tuples="$TUPLES" \
           --wm-every="$WM_EVERY" --dir="$dir" --out="$out" --resume \
           > /dev/null; then
        echo "FAIL: $tech crash=$n resume did not complete"
        failures=$((failures + 1))
        continue
      fi
    elif [ "$rc" -ne 0 ]; then
      echo "FAIL: $tech crash=$n run exited with $rc"
      failures=$((failures + 1))
      continue
    fi
    if ! cmp -s "$out" "$ref"; then
      echo "FAIL: $tech crash=$n recovered log differs from reference"
      failures=$((failures + 1))
      continue
    fi
    rm -rf "$dir" "$out"
  done
  echo "OK: $tech recovered bit-identically at all $BARRIERS barriers"
done

if [ "$failures" -ne 0 ]; then
  echo "crash sweep: $failures/$total cases FAILED"
  exit 1
fi
echo "crash sweep: $total cases passed"
