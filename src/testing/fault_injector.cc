#include "testing/fault_injector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <thread>

#include "common/rng.h"
#include "runtime/checkpoint.h"
#include "runtime/parallel_executor.h"

namespace scotty {
namespace testing {

FaultPlan MakeFaultPlan(uint64_t seed, size_t num_tuples) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x94D049BB133111EBULL);
  FaultPlan plan;
  plan.crash_index =
      num_tuples == 0 ? 0 : 1 + rng.NextBounded(static_cast<uint64_t>(num_tuples));
  switch (rng.NextBounded(4)) {
    case 0:
    case 1:
      plan.fault = SnapshotFault::kNone;
      break;
    case 2:
      plan.fault = SnapshotFault::kTruncate;
      break;
    default:
      plan.fault = SnapshotFault::kBitFlip;
      break;
  }
  plan.fault_arg = rng.NextU64();
  switch (rng.NextBounded(3)) {
    case 0:
      plan.mode = PersistMode::kSyncFull;
      break;
    case 1:
      plan.mode = PersistMode::kSyncIncremental;
      break;
    default:
      plan.mode = PersistMode::kAsyncIncremental;
      break;
  }
  if (plan.mode != PersistMode::kSyncFull) {
    // Delta-chain faults only exist where delta logs exist.
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2:
      case 3:
        plan.delta_fault = DeltaFault::kNone;
        break;
      case 4:
      case 5:
        plan.delta_fault = DeltaFault::kTruncateTail;
        break;
      case 6:
        plan.delta_fault = DeltaFault::kBitFlip;
        break;
      default:
        plan.delta_fault = DeltaFault::kDropNewestBase;
        break;
    }
  }
  plan.delta_fault_arg = rng.NextU64();
  return plan;
}

bool ApplyFileFault(const std::string& path, SnapshotFault fault,
                    uint64_t fault_arg) {
  namespace fs = std::filesystem;
  if (fault == SnapshotFault::kNone) return true;
  std::error_code ec;
  const uintmax_t size = fs::file_size(path, ec);
  if (ec) return false;
  if (size == 0) return true;
  if (fault == SnapshotFault::kTruncate) {
    // Torn write: the file ends mid-payload. Damage is applied in place —
    // it models a sector-level tear that bypasses the temp+rename protocol.
    fs::resize_file(path, fault_arg % size, ec);
    return !ec;
  }
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return false;
  const long off = static_cast<long>(fault_arg % size);
  unsigned char byte = 0;
  bool ok =
      std::fseek(f, off, SEEK_SET) == 0 && std::fread(&byte, 1, 1, f) == 1;
  if (ok) {
    byte ^= static_cast<unsigned char>(1u << ((fault_arg >> 56) & 7));
    ok = std::fseek(f, off, SEEK_SET) == 0 && std::fwrite(&byte, 1, 1, f) == 1;
  }
  std::fclose(f);
  return ok;
}

bool ApplySnapshotFault(const std::string& path, const FaultPlan& plan) {
  return ApplyFileFault(path, plan.fault, plan.fault_arg);
}

namespace {

void DrainInto(WindowOperator& op, std::map<ResultKey, Value>* out) {
  for (const WindowResult& r : op.TakeResults()) {
    (*out)[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
  }
}

void DrainIntoKeyed(WindowOperator& op, std::map<KeyedResultKey, Value>* out) {
  for (const WindowResult& r : op.TakeResults()) {
    (*out)[{r.key, r.window_id, r.agg_id, r.start, r.end}] = r.value;
  }
}

CheckpointOptions OptionsForMode(const std::string& scratch_dir,
                                 PersistMode mode) {
  CheckpointOptions copts;
  copts.directory = scratch_dir;
  copts.prefix = "ckpt";
  copts.retain = 3;
  switch (mode) {
    case PersistMode::kSyncFull:
      break;
    case PersistMode::kSyncIncremental:
      copts.incremental = true;
      copts.full_snapshot_every = 4;
      break;
    case PersistMode::kAsyncIncremental:
      copts.incremental = true;
      copts.full_snapshot_every = 4;
      copts.async = true;
      copts.async_queue_depth = 8;
      break;
  }
  return copts;
}

/// Post-crash damage to the incremental chain: the newest delta segment is
/// torn/corrupted, or the newest base is deleted from under its deltas.
/// No-op when the targeted file does not exist (e.g. sync-full mode).
bool ApplyDeltaChainFault(const std::string& scratch_dir,
                          const std::string& prefix, const FaultPlan& plan,
                          std::string* error) {
  if (plan.delta_fault == DeltaFault::kNone) return true;
  const std::vector<std::string> snaps = ListSnapshots(scratch_dir, prefix);
  if (snaps.empty()) return true;
  const std::string newest = snaps.front();
  if (plan.delta_fault == DeltaFault::kDropNewestBase) {
    std::error_code ec;
    std::filesystem::remove(newest, ec);
    if (ec) {
      *error = "cannot delete newest base " + newest;
      return false;
    }
    return true;
  }
  const std::string dlog =
      newest.substr(0, newest.size() - 5) + ".dlog";  // ".snap" -> ".dlog"
  std::error_code ec;
  if (!std::filesystem::exists(dlog, ec)) return true;
  const SnapshotFault kind = plan.delta_fault == DeltaFault::kTruncateTail
                                 ? SnapshotFault::kTruncate
                                 : SnapshotFault::kBitFlip;
  if (!ApplyFileFault(dlog, kind, plan.delta_fault_arg)) {
    *error = "fault application failed on " + dlog;
    return false;
  }
  return true;
}

}  // namespace

bool RunToFinalResultsCrashRecovered(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    const FaultPlan& plan, const std::string& scratch_dir,
    std::map<ResultKey, Value>* out, std::string* error,
    CrashRunStats* stats) {
  namespace fs = std::filesystem;
  out->clear();
  std::error_code ec;
  fs::remove_all(scratch_dir, ec);
  ec.clear();
  fs::create_directories(scratch_dir, ec);
  if (ec) {
    *error = "cannot create scratch dir " + scratch_dir;
    return false;
  }

  const CheckpointOptions copts = OptionsForMode(scratch_dir, plan.mode);

  std::unique_ptr<WindowOperator> op = factory();
  if (!op->SupportsSnapshot()) {
    *error = "operator does not support snapshots";
    return false;
  }

  // Phase one: run until the crash, checkpointing at every watermark
  // barrier. `delivered` models output already durably consumed downstream
  // (drained before each barrier, per the ResultSink contract). The
  // coordinator lives in this scope only: destroying it at the "crash" is
  // how queued-but-unpersisted async barriers get lost, exactly like a real
  // process death after Abandon.
  std::map<ResultKey, Value> delivered;
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  const size_t n = tuples.size();
  const size_t crash_at = std::min<size_t>(
      static_cast<size_t>(plan.crash_index), n);
  {
    CheckpointCoordinator coord(copts);
    for (size_t i = 0; i < crash_at; ++i) {
      Tuple t = tuples[i];
      t.seq = seq++;
      op->ProcessTuple(t);
      max_ts = std::max(max_ts, t.ts);
      if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
        const Time wm = max_ts - wm_lag;
        if (wm > last_wm || last_wm == kNoTime) {
          op->ProcessWatermark(wm);
          last_wm = wm;
          DrainInto(*op, &delivered);
          state::CheckpointMetadata meta;
          meta.source_offset = i + 1;
          meta.next_seq = seq;
          meta.max_ts = max_ts;
          meta.last_wm = last_wm;
          const std::string path = coord.OnBarrier(*op, meta);
          // Only the async queue may legitimately shed a barrier; a
          // synchronous persist failing here is a harness bug.
          if (path.empty() && plan.mode != PersistMode::kAsyncIncremental) {
            *error =
                "checkpoint persist failed at tuple " + std::to_string(i + 1);
            return false;
          }
        }
      }
    }
    if (stats != nullptr) stats->barriers = coord.checkpoints_taken();
    if (plan.mode == PersistMode::kAsyncIncremental) {
      // The crash catches the persist thread with whatever is queued:
      // abandon the queue (lost forever), let the in-flight record finish
      // (a real crash mid-write would leave a torn tail, which the
      // delta-fault dimension models separately).
      coord.Abandon();
    }
  }
  op.reset();  // the crash: all in-memory state is gone

  const std::vector<std::string> snaps =
      ListSnapshots(scratch_dir, copts.prefix);
  if (!snaps.empty() && !ApplySnapshotFault(snaps.front(), plan)) {
    *error = "fault application failed on " + snaps.front();
    return false;
  }
  if (!ApplyDeltaChainFault(scratch_dir, copts.prefix, plan, error)) {
    return false;
  }

  // Recovery: newest valid base + its valid delta prefix wins; from scratch
  // when none validates.
  size_t resume_at = 0;
  seq = 0;
  max_ts = kNoTime;
  last_wm = kNoTime;
  RecoveredOperator rec = RecoverNewestValid(scratch_dir, copts.prefix, factory);
  const bool newest_base_damaged =
      plan.fault != SnapshotFault::kNone ||
      plan.delta_fault == DeltaFault::kDropNewestBase;
  if (rec.restored.ok) {
    if (plan.fault != SnapshotFault::kNone && !snaps.empty() &&
        rec.path_used == snaps.front()) {
      *error = "a torn/corrupt snapshot validated: " + snaps.front();
      return false;
    }
    op = std::move(rec.restored.op);
    resume_at = static_cast<size_t>(rec.restored.meta.source_offset);
    seq = rec.restored.meta.next_seq;
    max_ts = rec.restored.meta.max_ts;
    last_wm = rec.restored.meta.last_wm;
    if (stats != nullptr) {
      stats->fell_back = rec.fell_back;
      stats->path_used = rec.path_used;
      stats->deltas_applied = rec.deltas_applied;
      stats->delta_tail_rejected = rec.delta_tail_rejected;
    }
  } else {
    // From-scratch is only legitimate when every on-disk base was damaged —
    // i.e. at most the one file the plan faulted (or deleted) existed.
    if (!snaps.empty() && !newest_base_damaged) {
      *error = "recovery failed with intact snapshots: " + rec.restored.error;
      return false;
    }
    if (snaps.size() >= 2) {
      *error =
          "fallback failed past the damaged newest snapshot: " +
          rec.restored.error;
      return false;
    }
    op = factory();
    if (stats != nullptr) stats->recovered_from_scratch = true;
  }

  // Replay from the barrier (or from scratch) with the identical cadence.
  std::map<ResultKey, Value> replayed;
  for (size_t i = resume_at; i < n; ++i) {
    Tuple t = tuples[i];
    t.seq = seq++;
    op->ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        op->ProcessWatermark(wm);
        last_wm = wm;
        DrainInto(*op, &replayed);
      }
    }
  }
  op->ProcessWatermark(final_wm);
  DrainInto(*op, &replayed);

  // Downstream merge: the recovered run re-emits every result from the
  // barrier onward, so it overrides; entries final before the barrier were
  // already delivered and are never contradicted.
  *out = std::move(delivered);
  for (const auto& [key, value] : replayed) (*out)[key] = value;

  fs::remove_all(scratch_dir, ec);
  return true;
}

bool RunKeyedToFinalResults(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    std::map<KeyedResultKey, Value>* out, std::string* error) {
  out->clear();
  std::unique_ptr<WindowOperator> op = factory();
  if (op == nullptr) {
    *error = "factory returned null";
    return false;
  }
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  for (const Tuple& src : tuples) {
    Tuple t = src;
    t.seq = seq++;
    op->ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        op->ProcessWatermark(wm);
        last_wm = wm;
        DrainIntoKeyed(*op, out);
      }
    }
  }
  op->ProcessWatermark(final_wm);
  DrainIntoKeyed(*op, out);
  return true;
}

bool RunKeyedRescaleCrashRecovered(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    const FaultPlan& plan, const std::string& scratch_dir, size_t from_workers,
    size_t to_workers, std::map<KeyedResultKey, Value>* out,
    std::string* error, CrashRunStats* stats) {
  namespace fs = std::filesystem;
  out->clear();
  if (from_workers == 0 || to_workers == 0) {
    *error = "worker counts must be positive";
    return false;
  }
  std::error_code ec;
  fs::remove_all(scratch_dir, ec);
  ec.clear();
  fs::create_directories(scratch_dir, ec);
  if (ec) {
    *error = "cannot create scratch dir " + scratch_dir;
    return false;
  }
  const CheckpointOptions copts = OptionsForMode(scratch_dir, plan.mode);

  // Phase one: `from_workers` deterministic keyed workers. Routing and the
  // per-worker item sequences are exactly what the threaded
  // ParallelExecutor produces; running them inline makes the crash point
  // and every barrier bit-reproducible from the seed.
  std::vector<std::unique_ptr<WindowOperator>> workers;
  workers.reserve(from_workers);
  for (size_t w = 0; w < from_workers; ++w) {
    workers.push_back(factory());
    if (workers.back() == nullptr || !workers.back()->SupportsSnapshot()) {
      *error = "factory must produce snapshot-capable operators";
      return false;
    }
  }
  std::map<KeyedResultKey, Value> delivered;
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  const size_t n = tuples.size();
  const size_t crash_at =
      std::min<size_t>(static_cast<size_t>(plan.crash_index), n);
  {
    CheckpointCoordinator coord(copts);
    for (size_t i = 0; i < crash_at; ++i) {
      Tuple t = tuples[i];
      t.seq = seq++;
      workers[ParallelExecutor::WorkerIndexForKey(t.key, from_workers)]
          ->ProcessTuple(t);
      max_ts = std::max(max_ts, t.ts);
      if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
        const Time wm = max_ts - wm_lag;
        if (wm > last_wm || last_wm == kNoTime) {
          last_wm = wm;
          for (auto& w : workers) {
            w->ProcessWatermark(wm);
            DrainIntoKeyed(*w, &delivered);
          }
          std::vector<std::vector<uint8_t>> states;
          states.reserve(from_workers);
          for (auto& w : workers) {
            state::Writer sw;
            w->SerializeState(sw);
            states.push_back(sw.Take());
          }
          state::CheckpointMetadata meta;
          meta.source_offset = i + 1;
          meta.next_seq = seq;
          meta.max_ts = max_ts;
          meta.last_wm = last_wm;
          const std::string path = coord.OnBarrierBytes(
              "parallel", BuildParallelSnapshotBlob(states), meta);
          if (path.empty() && plan.mode != PersistMode::kAsyncIncremental) {
            *error =
                "checkpoint persist failed at tuple " + std::to_string(i + 1);
            return false;
          }
        }
      }
    }
    if (stats != nullptr) stats->barriers = coord.checkpoints_taken();
    if (plan.mode == PersistMode::kAsyncIncremental) coord.Abandon();
  }
  workers.clear();  // the crash

  const std::vector<std::string> snaps =
      ListSnapshots(scratch_dir, copts.prefix);
  if (!snaps.empty() && !ApplySnapshotFault(snaps.front(), plan)) {
    *error = "fault application failed on " + snaps.front();
    return false;
  }
  if (!ApplyDeltaChainFault(scratch_dir, copts.prefix, plan, error)) {
    return false;
  }
  const std::vector<std::string> after_fault =
      ListSnapshots(scratch_dir, copts.prefix);

  // Recovery onto `to_workers`: newest base whose combined blob validates
  // end-to-end (container, framing, re-partition, per-worker decode) wins.
  size_t resume_at = 0;
  seq = 0;
  max_ts = kNoTime;
  last_wm = kNoTime;
  bool recovered = false;
  bool fell_back = false;
  const bool newest_base_damaged =
      plan.fault != SnapshotFault::kNone ||
      plan.delta_fault == DeltaFault::kDropNewestBase;
  for (const std::string& path : after_fault) {
    std::vector<uint8_t> blob;
    state::CheckpointMetadata meta;
    std::string name;
    std::vector<uint8_t> combined;
    std::vector<std::vector<uint8_t>> states;
    std::string why;
    if (!state::ReadSnapshotFile(path, &blob) ||
        !state::ParseSnapshot(blob, &meta, &name, &combined) ||
        name != "parallel" ||
        !ParseParallelSnapshotBlob(combined, &states, &why)) {
      fell_back = true;
      continue;
    }
    if (states.size() != to_workers &&
        !RepartitionKeyedStates(states, to_workers, &states, &why)) {
      fell_back = true;
      continue;
    }
    std::vector<std::unique_ptr<WindowOperator>> fresh;
    fresh.reserve(to_workers);
    bool decoded = true;
    for (size_t w = 0; w < to_workers && decoded; ++w) {
      fresh.push_back(factory());
      state::Reader r(states[w]);
      fresh.back()->DeserializeState(r);
      decoded = r.ok() && r.AtEnd();
    }
    if (!decoded) {
      fell_back = true;
      continue;
    }
    if (plan.fault != SnapshotFault::kNone && !snaps.empty() &&
        path == snaps.front()) {
      *error = "a torn/corrupt snapshot validated: " + path;
      return false;
    }
    workers = std::move(fresh);
    resume_at = static_cast<size_t>(meta.source_offset);
    seq = meta.next_seq;
    max_ts = meta.max_ts;
    last_wm = meta.last_wm;
    recovered = true;
    if (stats != nullptr) {
      stats->fell_back = fell_back;
      stats->path_used = path;
    }
    break;
  }
  if (!recovered) {
    if (!snaps.empty() && !newest_base_damaged) {
      *error = "rescale recovery failed with intact snapshots";
      return false;
    }
    if (snaps.size() >= 2) {
      *error = "rescale fallback failed past the damaged newest snapshot";
      return false;
    }
    workers.clear();
    for (size_t w = 0; w < to_workers; ++w) workers.push_back(factory());
    if (stats != nullptr) stats->recovered_from_scratch = true;
  }

  // Phase two: replay on the new topology.
  std::map<KeyedResultKey, Value> replayed;
  for (size_t i = resume_at; i < n; ++i) {
    Tuple t = tuples[i];
    t.seq = seq++;
    workers[ParallelExecutor::WorkerIndexForKey(t.key, to_workers)]
        ->ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        last_wm = wm;
        for (auto& w : workers) {
          w->ProcessWatermark(wm);
          DrainIntoKeyed(*w, &replayed);
        }
      }
    }
  }
  for (auto& w : workers) {
    w->ProcessWatermark(final_wm);
    DrainIntoKeyed(*w, &replayed);
  }

  *out = std::move(delivered);
  for (const auto& [key, value] : replayed) (*out)[key] = value;

  fs::remove_all(scratch_dir, ec);
  return true;
}

OverloadPlan MakeOverloadPlan(uint64_t seed, size_t num_tuples) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xA24BAED4963EE407ULL);
  OverloadPlan plan;
  if (num_tuples == 0) return plan;
  const uint64_t n = static_cast<uint64_t>(num_tuples);
  plan.stall_from = rng.NextBounded(n);
  plan.stall_to =
      std::min<uint64_t>(n, plan.stall_from + 1 + rng.NextBounded(n / 2 + 1));
  plan.stall_us = 100 + static_cast<uint32_t>(rng.NextBounded(400));
  if (rng.NextBounded(2) == 0) {
    plan.slow_from = rng.NextBounded(n);
    plan.slow_to =
        std::min<uint64_t>(n, plan.slow_from + 1 + rng.NextBounded(n / 2 + 1));
    plan.slow_ms = 1 + static_cast<uint32_t>(rng.NextBounded(5));
  }
  if (rng.NextBounded(2) == 0) {
    plan.fail_from = rng.NextBounded(n);
    plan.fail_to =
        std::min<uint64_t>(n, plan.fail_from + 1 + rng.NextBounded(n / 2 + 1));
  }
  return plan;
}

bool RunOverloadedToFinalResults(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    const OverloadPlan& plan, const std::string& scratch_dir,
    std::map<ResultKey, Value>* out, ShedLedger* ledger, std::string* error,
    OverloadRunStats* stats) {
  namespace fs = std::filesystem;
  out->clear();
  *ledger = ShedLedger();
  std::error_code ec;
  fs::remove_all(scratch_dir, ec);
  ec.clear();
  fs::create_directories(scratch_dir, ec);
  if (ec) {
    *error = "cannot create scratch dir " + scratch_dir;
    return false;
  }

  // Async-incremental coordinator at the top of the ladder, tuned so the
  // plan's fault windows actually walk it: two consecutive failures demote,
  // two consecutive successes (incl. kOff probes, every other barrier)
  // promote.
  CheckpointOptions copts;
  copts.directory = scratch_dir;
  copts.prefix = "ckpt";
  copts.retain = 3;
  copts.async = true;
  copts.async_queue_depth = 4;
  copts.incremental = true;
  copts.full_snapshot_every = 4;
  copts.max_retries = 1;
  copts.retry_backoff_ms = 0;
  copts.max_consecutive_failures = 2;
  copts.auto_fallback = true;
  copts.promote_after = 2;
  copts.off_probe_every = 2;

  // Injection flags the producer toggles as it crosses the plan windows;
  // read from the worker and persist threads.
  std::atomic<bool> stalled{false};
  std::atomic<bool> slow{false};
  std::atomic<bool> failing{false};

  CheckpointCoordinator coord(copts);
  coord.SetPersistFailureHook(
      [&failing](uint64_t, bool) { return failing.load(); });
  coord.SetPersistDelayHook([&slow, &plan](uint64_t, bool) -> uint64_t {
    return slow.load() ? plan.slow_ms : 0;
  });

  std::mutex sink_mu;
  std::map<ResultKey, Value> delivered;
  ParallelExecutor::Options xopts;
  xopts.queue_capacity = 64;  // tiny ring so the stall builds real pressure
  xopts.batch_size = 1;
  xopts.result_sink = [&](const std::vector<WindowResult>& rs) {
    std::lock_guard<std::mutex> lk(sink_mu);
    for (const WindowResult& r : rs) {
      delivered[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
    }
  };
  xopts.worker_tick_hook = [&](size_t) {
    if (stalled.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(plan.stall_us));
    }
  };
  ParallelExecutor exec(1, factory, xopts);
  exec.Start();

  BackpressureController ctrl;
  OverloadStats st;
  // Generous bound for pushes that must not be shed (punctuation,
  // watermarks): expiry means a dead consumer, which is a harness failure,
  // never a legitimate overload outcome.
  const auto kMustDeliver = std::chrono::seconds(10);

  bool ok = true;
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  uint64_t barriers = 0;
  const size_t n = tuples.size();
  for (size_t i = 0; i < n && ok; ++i) {
    stalled.store(i >= plan.stall_from && i < plan.stall_to,
                  std::memory_order_relaxed);
    slow.store(i >= plan.slow_from && i < plan.slow_to,
               std::memory_order_relaxed);
    failing.store(i >= plan.fail_from && i < plan.fail_to,
                  std::memory_order_relaxed);
    Tuple t = tuples[i];
    // Shed tuples still consume a seq slot and advance max_ts: the
    // watermark cadence (and therefore every trigger edge) is identical to
    // the unfaulted run no matter what gets shed.
    t.seq = seq++;
    max_ts = std::max(max_ts, t.ts);
    if (t.is_punctuation) {
      if (!exec.TryPushFor(t, kMustDeliver)) {
        *error = "punctuation push stalled out (dead consumer?)";
        ok = false;
        break;
      }
    } else {
      const Admission a =
          ctrl.Decide(exec.ApproxMaxQueueFraction(), coord.PersistQueueDepth(),
                      coord.HealthReport());
      if (a == Admission::kShed) {
        ledger->RecordShed(t.ts);
        ++st.shed;
      } else {
        if (a == Admission::kBackpressure) ++st.backpressure_waits;
        if (exec.TryPushFor(t, ctrl.options().block_timeout)) {
          ++st.accepted;
        } else {
          // Bounded blocking expired: the consumer is stalled, not merely
          // slow. Escalate to shedding instead of spinning forever.
          if (a == Admission::kBackpressure) ++st.backpressure_timeouts;
          ledger->RecordShed(t.ts);
          ++st.shed;
        }
      }
    }
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        if (!exec.TryPushWatermarkFor(wm, kMustDeliver)) {
          *error = "watermark push stalled out (dead consumer?)";
          ok = false;
          break;
        }
        last_wm = wm;
        const std::vector<uint8_t> blob = exec.SnapshotAtBarrier();
        if (!blob.empty()) {
          state::CheckpointMetadata meta;
          meta.source_offset = i + 1;
          meta.next_seq = seq;
          meta.max_ts = max_ts;
          meta.last_wm = last_wm;
          coord.OnBarrierBytes("parallel", blob, meta);
          ++barriers;
        }
      }
    }
  }
  stalled.store(false, std::memory_order_relaxed);
  slow.store(false, std::memory_order_relaxed);
  failing.store(false, std::memory_order_relaxed);
  if (ok && max_ts != kNoTime &&
      !exec.TryPushWatermarkFor(final_wm, kMustDeliver)) {
    *error = "final watermark push stalled out (dead consumer?)";
    ok = false;
  }
  exec.Finish();
  coord.Flush();
  if (stats != nullptr) {
    st.shed_decisions = ctrl.shed_decisions();
    st.backpressure_decisions = ctrl.backpressure_decisions();
    stats->admission = st;
    stats->health = coord.HealthReport();
    stats->barriers = barriers;
  }
  if (!ok) return false;
  {
    std::lock_guard<std::mutex> lk(sink_mu);
    *out = std::move(delivered);
  }
  fs::remove_all(scratch_dir, ec);
  return true;
}

}  // namespace testing
}  // namespace scotty
