
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/count_windows_test.cc" "tests/CMakeFiles/scotty_core_tests.dir/count_windows_test.cc.o" "gcc" "tests/CMakeFiles/scotty_core_tests.dir/count_windows_test.cc.o.d"
  "/root/repo/tests/multi_measure_test.cc" "tests/CMakeFiles/scotty_core_tests.dir/multi_measure_test.cc.o" "gcc" "tests/CMakeFiles/scotty_core_tests.dir/multi_measure_test.cc.o.d"
  "/root/repo/tests/punctuation_test.cc" "tests/CMakeFiles/scotty_core_tests.dir/punctuation_test.cc.o" "gcc" "tests/CMakeFiles/scotty_core_tests.dir/punctuation_test.cc.o.d"
  "/root/repo/tests/session_test.cc" "tests/CMakeFiles/scotty_core_tests.dir/session_test.cc.o" "gcc" "tests/CMakeFiles/scotty_core_tests.dir/session_test.cc.o.d"
  "/root/repo/tests/slicer_test.cc" "tests/CMakeFiles/scotty_core_tests.dir/slicer_test.cc.o" "gcc" "tests/CMakeFiles/scotty_core_tests.dir/slicer_test.cc.o.d"
  "/root/repo/tests/slicing_basic_test.cc" "tests/CMakeFiles/scotty_core_tests.dir/slicing_basic_test.cc.o" "gcc" "tests/CMakeFiles/scotty_core_tests.dir/slicing_basic_test.cc.o.d"
  "/root/repo/tests/slicing_ooo_test.cc" "tests/CMakeFiles/scotty_core_tests.dir/slicing_ooo_test.cc.o" "gcc" "tests/CMakeFiles/scotty_core_tests.dir/slicing_ooo_test.cc.o.d"
  "/root/repo/tests/store_test.cc" "tests/CMakeFiles/scotty_core_tests.dir/store_test.cc.o" "gcc" "tests/CMakeFiles/scotty_core_tests.dir/store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scotty.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
