#ifndef SCOTTY_CORE_COUNT_LANE_H_
#define SCOTTY_CORE_COUNT_LANE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/aggregate_store.h"
#include "core/query_set.h"
#include "core/window_operator.h"

namespace scotty {

/// Slicing state for count-based window measures (paper Sections 4.3, 5.2).
///
/// The "timestamp" of a tuple on this lane is its rank in event-time order.
/// Slices cover rank ranges aligned to the count edges of all count-measure
/// windows. On in-order streams ranks equal arrival order and processing
/// matches the time lane. An out-of-order tuple, however, changes the rank
/// of every succeeding tuple: the lane inserts the tuple into the slice
/// covering its event-time position and then shifts the last tuple of each
/// subsequent slice one slice further (Fig. 6) — incrementally via
/// invert/combine when all aggregations are invertible, by recomputation
/// otherwise.
///
/// Only context-free windows are supported on the count measure (sessions /
/// punctuations on counts are not meaningful in the paper's model).
class CountLane {
 public:
  CountLane(StoreMode mode, QuerySet* queries, OperatorStats* stats);

  /// Adds a tuple. `in_order` is relative to event-time order. Emits update
  /// results for already-triggered count windows whose content shifted.
  void Add(const Tuple& t, bool in_order, std::vector<WindowResult>* out);

  /// Number of tuples with ts <= `wm` (the count-domain watermark).
  int64_t CountAtOrBefore(Time wm) const;

  /// Triggers count windows with end rank in (prev_cwm, cwm].
  void Trigger(int64_t prev_cwm, int64_t cwm, std::vector<WindowResult>* out);

  /// Cheap check whether any count window has an edge at or before `cwm`
  /// that Trigger has not fired yet (per-tuple early-out on in-order
  /// streams).
  bool NeedsTrigger(int64_t cwm) {
    if (next_trigger_rank_ == kNoTime) next_trigger_rank_ = NextEdge(last_cwm_);
    return cwm >= next_trigger_rank_;
  }

  /// Evicts slices that are complete, fully before rank `safe_rank`, and
  /// whose last tuple is older than `safe_time`.
  void Evict(int64_t safe_rank, Time safe_time);

  /// Invalidates the trigger early-out cache (call after query changes).
  void InvalidateTriggerCache() { next_trigger_rank_ = kNoTime; }

  int64_t total_count() const { return total_count_; }
  const AggregateStore& store() const { return store_; }
  size_t MemoryBytes() const { return store_.MemoryBytes(); }

  /// Snapshot support. The trigger early-out cache is reset to "unknown" on
  /// restore; NeedsTrigger lazily recomputes it from last_cwm_, which is
  /// behaviorally identical.
  void Serialize(state::Writer& w) const {
    store_.Serialize(w);
    w.I64(total_count_);
    w.I64(evicted_ranks_);
    w.I64(last_cwm_);
  }
  void Deserialize(state::Reader& r) {
    store_.Deserialize(r);
    total_count_ = r.I64();
    evicted_ranks_ = r.I64();
    last_cwm_ = r.I64();
    next_trigger_rank_ = kNoTime;
  }

 private:
  /// Smallest count edge > rank over all count windows.
  int64_t NextEdge(int64_t rank) const;

  /// Ensures the open slice exists and `rank` falls into it.
  void EnsureOpenSlice(int64_t rank);

  /// Removes the overflow tuple of slice `idx` and carries it into the
  /// following slices until every slice respects its rank capacity.
  void ShiftFrom(size_t idx, std::vector<WindowResult>* out);

  /// Applies the removal of `t` from slice `idx` per the workload's
  /// RemovalStrategy, and the insertion into slice `to`.
  void MoveTuple(size_t from, size_t to, const Tuple& t);

  /// Re-emits already-triggered count windows affected by an insert at
  /// rank `r`.
  void EmitShiftUpdates(int64_t r, std::vector<WindowResult>* out);

  AggregateStore store_;
  QuerySet* queries_;
  OperatorStats* stats_;
  int64_t total_count_ = 0;
  int64_t evicted_ranks_ = 0;        // ranks dropped off the front
  int64_t last_cwm_ = 0;             // last triggered count watermark
  int64_t next_trigger_rank_ = kNoTime;  // early-out cache
};

}  // namespace scotty

#endif  // SCOTTY_CORE_COUNT_LANE_H_
