#ifndef SCOTTY_BASELINES_TUPLE_BUFFER_H_
#define SCOTTY_BASELINES_TUPLE_BUFFER_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "core/window_operator.h"
#include "windows/window.h"

namespace scotty {

/// Tuple Buffer baseline (paper Section 3.1, Table 1 Row 1): a sorted buffer
/// of all tuples within the retention horizon, with NO aggregate sharing.
/// Window aggregates are computed lazily when windows end by scanning every
/// tuple in the window — overlapping windows therefore recompute the same
/// tuples repeatedly, and out-of-order tuples cost an insert into the middle
/// of the sorted buffer (memory-copy heavy by design).
class TupleBufferOperator : public WindowOperator {
 public:
  explicit TupleBufferOperator(bool stream_in_order = false,
                               Time allowed_lateness = 0);

  int AddAggregation(AggregateFunctionPtr fn);
  int AddWindow(WindowPtr w);

  void ProcessTuple(const Tuple& t) override;
  void ProcessWatermark(Time wm) override;
  std::vector<WindowResult> TakeResults() override;
  size_t MemoryUsageBytes() const override;
  std::string Name() const override { return "tuple-buffer"; }

  size_t BufferedTuples() const { return buffer_.size(); }

  bool SupportsSnapshot() const override { return true; }

  void SerializeState(state::Writer& w) const override {
    w.Tag(0x54425546);  // "TBUF"
    w.U64(buffer_.size());
    for (const Tuple& t : buffer_) state::SerializeTuple(w, t);
    w.I64(evicted_count_);
    w.I64(max_ts_);
    w.I64(last_wm_);
    w.I64(wm_floor_);
    w.I64(last_cwm_);
    for (const WindowPtr& win : windows_) win->SerializeState(w);
    w.U64(results_.size());
    for (const WindowResult& res : results_) SerializeWindowResult(w, res);
  }

  void DeserializeState(state::Reader& r) override {
    r.Tag(0x54425546);
    const uint64_t n = r.U64();
    if (n > r.remaining()) {
      r.Fail();
      return;
    }
    buffer_.clear();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      buffer_.push_back(state::DeserializeTuple(r));
    }
    evicted_count_ = r.I64();
    max_ts_ = r.I64();
    last_wm_ = r.I64();
    wm_floor_ = r.I64();
    last_cwm_ = r.I64();
    for (const WindowPtr& win : windows_) win->DeserializeState(r);
    const uint64_t m = r.U64();
    if (m > r.remaining()) {
      r.Fail();
      return;
    }
    results_.clear();
    for (uint64_t i = 0; i < m && r.ok(); ++i) {
      results_.push_back(DeserializeWindowResult(r));
    }
  }

 private:
  void TriggerAll(Time wm);
  void Evict(Time wm);
  Value ComputeWindow(size_t agg, Time start, Time end) const;
  Value ComputeCountWindow(size_t agg, int64_t cs, int64_t ce) const;
  void EmitTimeWindow(int w, Time s, Time e, bool update);
  void EmitCountWindow(int w, int64_t cs, int64_t ce, bool update);

  bool stream_in_order_;
  Time allowed_lateness_;
  std::vector<AggregateFunctionPtr> aggs_;
  std::vector<WindowPtr> windows_;
  std::deque<Tuple> buffer_;  // sorted by (ts, seq)
  int64_t evicted_count_ = 0;  // ranks dropped off the front (count measure)
  Time max_ts_ = kNoTime;
  Time last_wm_ = kNoTime;
  Time wm_floor_ = kNoTime;  // initial last_wm_: no windows end at or before
  int64_t last_cwm_ = 0;
  std::vector<WindowResult> results_;
};

}  // namespace scotty

#endif  // SCOTTY_BASELINES_TUPLE_BUFFER_H_
