// Crash-injection driver for the checkpoint/restore subsystem (DESIGN.md §7).
//
// Runs a deterministic workload through one windowing technique with a
// checkpoint barrier at every injected watermark, appending every drained
// result to a durable log (flushed line-by-line, because the injected crash
// is std::_Exit — no destructors, no stdio flush). With SCOTTY_CRASH_AFTER=n
// in the environment the process dies with exit code 42 right after the n-th
// snapshot file is persisted; invoking the driver again with --resume picks
// the newest snapshot in --dir, restores, and replays the remainder.
//
// Contract checked by scripts/crash_sweep.sh: for every technique and every
// crash point, the concatenated log of (crashed run, resumed run) is
// byte-identical to the log of an uninterrupted run — no window result is
// lost, duplicated, or altered by recovery.
//
// Usage:
//   crash_injection --technique=slicing-lazy --tuples=4096 --wm-every=256 \
//       --dir=/tmp/ckpt --out=/tmp/results.log [--resume] \
//       [--mode=sync-full|async-full|async-incremental]
//
// --mode picks the persistence protocol. sync-full (the default) persists a
// full snapshot on the barrier path, so the log and the snapshot advance in
// lockstep and recovery is exactly-once (byte-identical concatenated logs).
// The async modes persist on a background thread: SCOTTY_CRASH_AFTER then
// kills the process from inside the persist thread while ingestion is
// further ahead, so recovery replays a suffix the crashed run already
// logged — at-least-once. crash_sweep.sh switches to a superset/no-
// alteration comparison for those modes.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "aggregates/registry.h"
#include "baselines/aggregate_tree.h"
#include "baselines/buckets.h"
#include "baselines/tuple_buffer.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "runtime/checkpoint.h"
#include "runtime/pipeline.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

namespace fs = std::filesystem;

struct Args {
  std::string technique = "slicing-lazy";
  uint64_t tuples = 4096;
  uint64_t wm_every = 256;
  std::string dir = ".";
  std::string out = "results.log";
  std::string mode = "sync-full";
  bool resume = false;
};

bool ApplyMode(const std::string& mode, CheckpointOptions* copts) {
  if (mode == "sync-full") return true;
  if (mode == "async-full") {
    copts->async = true;
    return true;
  }
  if (mode == "async-incremental") {
    copts->async = true;
    copts->incremental = true;
    copts->full_snapshot_every = 4;
    return true;
  }
  return false;
}

void PrintUsage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: crash_injection [--technique=slicing-lazy|slicing-eager|"
      "slicing-inorder|\n"
      "                          tuple-buffer|aggregate-tree|buckets]\n"
      "                       [--tuples=N] [--wm-every=N] [--dir=DIR] "
      "[--out=FILE]\n"
      "                       [--mode=sync-full|async-full|"
      "async-incremental]\n"
      "                       [--resume]\n");
}

/// Strict unsigned parse: whole token, digits only. strtoull's silent
/// garbage-to-zero (and negative wraparound) would turn a typo'd
/// --tuples/--wm-every into a degenerate run that crash_sweep.sh then
/// compares as if it were real.
bool ParseU64(const char* v, uint64_t* dst) {
  if (v[0] < '0' || v[0] > '9') return false;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *dst = x;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) -> const char* {
      const size_t n = std::strlen(name);
      if (arg.compare(0, n, name) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = val("--technique")) {
      a->technique = v;
    } else if (const char* v = val("--tuples")) {
      if (!ParseU64(v, &a->tuples)) {
        std::fprintf(stderr, "bad --tuples=%s (expected an integer)\n", v);
        return false;
      }
    } else if (const char* v = val("--wm-every")) {
      if (!ParseU64(v, &a->wm_every)) {
        std::fprintf(stderr, "bad --wm-every=%s (expected an integer)\n", v);
        return false;
      }
    } else if (const char* v = val("--dir")) {
      a->dir = v;
    } else if (const char* v = val("--out")) {
      a->out = v;
    } else if (const char* v = val("--mode")) {
      a->mode = v;
    } else if (arg == "--resume") {
      a->resume = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  // Validate --mode here, not in Run(): by the time Run() applies the
  // checkpoint options it has already truncated --out, so a typo'd mode
  // must fail before any file is touched.
  CheckpointOptions probe;
  if (!ApplyMode(a->mode, &probe)) {
    std::fprintf(stderr, "unknown mode: %s\n", a->mode.c_str());
    return false;
  }
  return true;
}

void AddQueries(auto& op) {
  op.AddAggregation(MakeAggregation("sum"));
  op.AddAggregation(MakeAggregation("median"));
  op.AddWindow(std::make_shared<TumblingWindow>(500));
  op.AddWindow(std::make_shared<SlidingWindow>(1000, 250));
  op.AddWindow(std::make_shared<SessionWindow>(300));
}

OperatorFactory MakeFactory(const std::string& technique) {
  if (technique == "slicing-lazy" || technique == "slicing-eager" ||
      technique == "slicing-inorder") {
    GeneralSlicingOperator::Options o;
    o.stream_in_order = technique == "slicing-inorder";
    o.allowed_lateness = o.stream_in_order ? 0 : 2000;
    o.store_mode = technique == "slicing-eager" ? StoreMode::kEager
                                                : StoreMode::kLazy;
    return [o] {
      auto op = std::make_unique<GeneralSlicingOperator>(o);
      AddQueries(*op);
      return op;
    };
  }
  if (technique == "tuple-buffer") {
    return [] {
      auto op = std::make_unique<TupleBufferOperator>(false, 2000);
      AddQueries(*op);
      return op;
    };
  }
  if (technique == "aggregate-tree") {
    return [] {
      auto op = std::make_unique<AggregateTreeOperator>(false, 2000);
      AddQueries(*op);
      return op;
    };
  }
  if (technique == "buckets") {
    return [] {
      auto op = std::make_unique<BucketsOperator>(
          false, 2000, BucketsOperator::BucketKind::kAuto);
      AddQueries(*op);
      return op;
    };
  }
  return nullptr;
}

/// Drops an unterminated final line from the crashed run's log. The async
/// crash fires from the persist thread while the ingestion thread may be
/// mid-line; the torn line is past the durable snapshot's offset, so the
/// resumed replay re-emits it whole.
void TrimTornTail(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return;
  std::ifstream in(path, std::ios::binary);
  std::string content(static_cast<size_t>(size), '\0');
  in.read(content.data(), static_cast<std::streamsize>(size));
  if (!in || content.back() == '\n') return;
  const size_t last_nl = content.find_last_of('\n');
  fs::resize_file(path, last_nl == std::string::npos ? 0 : last_nl + 1, ec);
}

/// Newest snapshot = highest barrier index in the file name.
std::string NewestSnapshot(const std::string& dir, const std::string& prefix) {
  std::string best;
  int64_t best_idx = -1;
  if (!fs::is_directory(dir)) return best;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < prefix.size() + 6 ||
        name.compare(0, prefix.size() + 1, prefix + "-") != 0 ||
        name.compare(name.size() - 5, 5, ".snap") != 0) {
      continue;
    }
    const std::string mid =
        name.substr(prefix.size() + 1, name.size() - prefix.size() - 6);
    char* end = nullptr;
    const int64_t idx = std::strtoll(mid.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;
    if (idx > best_idx) {
      best_idx = idx;
      best = entry.path().string();
    }
  }
  return best;
}

int Run(const Args& a) {
  OperatorFactory factory = MakeFactory(a.technique);
  if (!factory) {
    std::fprintf(stderr, "unknown technique: %s\n", a.technique.c_str());
    return 2;
  }

  // Append on resume, truncate on a fresh run. std::endl per line: the log
  // must be on disk before the barrier that could kill the process.
  if (a.resume) TrimTornTail(a.out);
  std::ofstream log(a.out, a.resume ? std::ios::app : std::ios::trunc);
  if (!log) {
    std::fprintf(stderr, "cannot open log: %s\n", a.out.c_str());
    return 2;
  }
  ResultSink sink = [&log](const WindowResult& r) {
    uint64_t bits;
    const double num = r.value.Numeric();
    std::memcpy(&bits, &num, sizeof(bits));
    log << r.key << ' ' << r.window_id << ' ' << r.agg_id << ' ' << r.start
        << ' ' << r.end << ' ' << (r.is_update ? 1 : 0) << ' ' << std::hex
        << bits << std::dec << std::endl;
  };

  SensorStream src(SensorStream::Machine());
  PipelineOptions popts;
  popts.watermark_every = a.wm_every;
  popts.watermark_delay = 100;
  CheckpointOptions copts;
  copts.directory = a.dir;
  copts.prefix = "ckpt";
  if (!ApplyMode(a.mode, &copts)) {
    std::fprintf(stderr, "unknown mode: %s\n", a.mode.c_str());
    return 2;
  }
  CheckpointCoordinator coord(copts);

  if (!a.resume) {
    auto op = factory();
    const CheckpointedPipelineReport rep =
        RunCheckpointedPipeline(src, *op, a.tuples, popts, coord, sink);
    std::printf("run: tuples=%llu results=%llu checkpoints=%llu\n",
                static_cast<unsigned long long>(rep.report.tuples),
                static_cast<unsigned long long>(rep.report.results),
                static_cast<unsigned long long>(rep.checkpoints));
    return 0;
  }

  const std::string snap = NewestSnapshot(a.dir, "ckpt");
  if (snap.empty()) {
    std::fprintf(stderr, "no snapshot to resume from in %s\n", a.dir.c_str());
    return 2;
  }
  const ResumedPipeline resumed =
      RestorePipeline(snap, factory, src, a.tuples, popts, &coord, sink);
  if (!resumed.ok) {
    std::fprintf(stderr, "restore failed: %s\n", resumed.error.c_str());
    return 1;
  }
  std::printf("resumed from %s: tuples=%llu results=%llu checkpoints=%llu\n",
              snap.c_str(),
              static_cast<unsigned long long>(resumed.report.report.tuples),
              static_cast<unsigned long long>(resumed.report.report.results),
              static_cast<unsigned long long>(resumed.report.checkpoints));
  return 0;
}

}  // namespace
}  // namespace scotty

int main(int argc, char** argv) {
  scotty::Args args;
  if (!scotty::ParseArgs(argc, argv, &args)) {
    scotty::PrintUsage(stderr);
    return 2;
  }
  return scotty::Run(args);
}
