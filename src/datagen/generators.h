#ifndef SCOTTY_DATAGEN_GENERATORS_H_
#define SCOTTY_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <string>

#include "common/fastmod.h"
#include "common/rng.h"
#include "common/tuple.h"

namespace scotty {

/// Pull-based tuple source used by the pipeline, the benchmarks, and the
/// examples.
class TupleSource {
 public:
  virtual ~TupleSource() = default;
  /// Produces the next tuple; returns false when the source is exhausted.
  virtual bool Next(Tuple* out) = 0;
};

/// Configuration of the synthetic sensor streams. The paper replays two
/// real-world traces we cannot ship: the DEBS 2013 football-match positions
/// (ball updates at 2000 Hz, 84 232 distinct values in the aggregated
/// column) and the DEBS 2012 manufacturing-machine states (100 Hz, 37
/// distinct values), with 5 artificial gaps per minute separating sessions.
/// We synthesize streams with exactly these workload characteristics; the
/// paper itself observes that performance depends on workload, not data,
/// characteristics (Section 6.1/6.2.2).
struct SensorConfig {
  std::string name = "sensor";
  /// Updates per second; timestamps are milliseconds.
  double rate_hz = 2000.0;
  /// Number of distinct values in the aggregated column.
  int64_t distinct_values = 84232;
  /// Inactivity gaps per minute (ball-possession changes / machine idle).
  double session_gaps_per_minute = 5.0;
  /// Length of each inactivity gap in ms (must exceed the session gap l_g
  /// of the queries so that sessions actually close).
  Time gap_length_ms = 2000;
  /// Number of distinct partition keys (players / machines).
  int64_t num_keys = 16;
  uint64_t seed = 42;
};

/// Deterministic synthetic sensor stream (in-order).
class SensorStream : public TupleSource {
 public:
  explicit SensorStream(SensorConfig config);

  /// The football-match preset (DEBS'13-like).
  static SensorConfig Football();
  /// The manufacturing-machine preset (DEBS'12-like).
  static SensorConfig Machine();

  bool Next(Tuple* out) override;

  const SensorConfig& config() const { return config_; }

 private:
  SensorConfig config_;
  Rng rng_;
  // Precomputed magic-multiplier modulos for the two bounded draws taken per
  // tuple. Bit-identical to `%` (see FastMod), so streams are unchanged.
  FastMod value_mod_;
  FastMod key_mod_;
  Time now_ms_ = 0;
  double carry_ms_ = 0.0;
  uint64_t seq_ = 0;
  double tuples_until_gap_ = 0.0;
};

/// Wraps a source and marks every `interval`-th tuple as a punctuation
/// (window marker) for punctuation-based windows.
class PunctuatedStream : public TupleSource {
 public:
  PunctuatedStream(TupleSource* inner, uint64_t interval)
      : inner_(inner), interval_(interval) {}

  bool Next(Tuple* out) override;

 private:
  TupleSource* inner_;
  uint64_t interval_;
  uint64_t count_ = 0;
  Tuple pending_{};
  bool has_pending_ = false;
};

}  // namespace scotty

#endif  // SCOTTY_DATAGEN_GENERATORS_H_
