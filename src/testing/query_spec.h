#ifndef SCOTTY_TESTING_QUERY_SPEC_H_
#define SCOTTY_TESTING_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "common/time.h"
#include "windows/window.h"

namespace scotty {
namespace testing {

/// A declarative, parse-/printable window description. The differential
/// fuzzer works on WindowSpecs rather than Window objects for two reasons:
/// Window instances are stateful (each technique needs a fresh copy), and
/// the brute-force oracle needs the window *parameters* to enumerate the
/// expected window instances independently of the production window
/// classes.
///
/// Textual form (the --queries= reproducer syntax):
///   tumbling:L       time tumbling, length L
///   sliding:L:S      time sliding, length L, slide S
///   session:G        session with inactivity gap G
///   ctumbling:N      count tumbling, N tuples
///   csliding:N:S     count sliding, length N tuples, slide S tuples
///   punct            punctuation-delimited windows (FCF)
///   lastn:N:T        FCA multi-measure "last N tuples every T time units"
///   frames:V         threshold frames, qualifying value >= V (FCF)
struct WindowSpec {
  enum class Kind {
    kTumbling,
    kSliding,
    kSession,
    kPunctuation,
    kLastNEveryT,
    kThresholdFrame,
  };

  Kind kind = Kind::kTumbling;
  Measure measure = Measure::kEventTime;  // kCount for count windows
  Time length = 10;  // tumbling length / sliding length / session gap /
                     // lastn N / frames threshold
  Time slide = 0;    // sliding windows (slide) and lastn (period T)

  std::string ToString() const;
  /// Fresh, stateless-as-of-yet window object for one operator instance.
  WindowPtr Instantiate() const;

  /// Parses one spec; returns false (leaving *out* unspecified) on syntax
  /// errors or non-positive parameters.
  static bool Parse(const std::string& text, WindowSpec* out);
};

/// Comma-joined list form used by --queries= and the reproducer line.
std::string WindowSpecsToString(const std::vector<WindowSpec>& specs);
bool ParseWindowSpecs(const std::string& text, std::vector<WindowSpec>* out);

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_QUERY_SPEC_H_
