// Forward-context-aware multi-measure windows ("last N tuples every T"):
// trigger-time start derivation, on-demand slice splits, and tuple
// retention per the decision tree.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/multi_measure.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::Num;
using testutil::RunStream;
using testutil::T;

GeneralSlicingOperator::Options Opts(bool in_order) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = in_order;
  o.allowed_lateness = 1000;
  return o;
}

TEST(MultiMeasure, FcaForcesTupleStorageEvenInOrder) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<LastNEveryTWindow>(3, 10));
  EXPECT_TRUE(op.queries().StoreTuples());
  EXPECT_TRUE(op.queries().splits_possible);
}

TEST(MultiMeasure, LastNTuplesEveryPeriod) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<LastNEveryTWindow>(3, 10));
  // Tuples at 1,4,6,8 (before edge 10): last 3 are {4,6,8} -> [4, 10).
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(4, 2), T(6, 4), T(8, 8), T(13, 16), T(21, 32)}, 30));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 4, 10}]), 14.0);
  // At edge 20: last 3 before 20 are {6, 8, 13} -> [6, 20) = 4 + 8 + 16.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 6, 20}]), 28.0);
}

TEST(MultiMeasure, TriggerSplitsSlicesAtDerivedStarts) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<LastNEveryTWindow>(2, 10));
  RunStream(op, {T(1, 1), T(4, 2), T(8, 4), T(12, 8)}, 20);
  // Window start 4 falls inside slice [0, 10): a split must have happened.
  EXPECT_GT(op.stats().slice_splits, 0u);
}

TEST(MultiMeasure, SkipsEdgesWithTooFewTuples) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<LastNEveryTWindow>(5, 10));
  auto fin = FinalResults(RunStream(op, {T(1, 1), T(4, 2), T(15, 4)}, 20));
  // Edge 10 has only 2 tuples before it: no window. Edge 20 has 3: still no.
  EXPECT_TRUE(fin.empty());
}

TEST(MultiMeasure, WorksTogetherWithTumblingQuery) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  const int fca = op.AddWindow(std::make_shared<LastNEveryTWindow>(2, 10));
  const int tumb = op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(2, 1), T(5, 2), T(9, 4), T(12, 8), T(25, 16)}, 30));
  EXPECT_DOUBLE_EQ(Num(fin[{fca, 0, 5, 10}]), 6.0);   // last 2 before 10
  EXPECT_DOUBLE_EQ(Num(fin[{fca, 0, 9, 20}]), 12.0);  // {9, 12}
  EXPECT_DOUBLE_EQ(Num(fin[{tumb, 0, 0, 10}]), 7.0);
  EXPECT_DOUBLE_EQ(Num(fin[{tumb, 0, 10, 20}]), 8.0);
}

TEST(MultiMeasure, OutOfOrderStreamAlsoSupported) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<LastNEveryTWindow>(2, 10));
  op.ProcessTuple(T(2, 1, 0));
  op.ProcessTuple(T(8, 2, 1));
  op.ProcessTuple(T(5, 4, 2));  // out-of-order, before the first trigger
  op.ProcessWatermark(10);
  auto fin = FinalResults(op.TakeResults());
  // Last 2 tuples before 10 by event time: {5, 8} -> [5, 10) = 6.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 5, 10}]), 6.0);
}

TEST(MultiMeasure, EagerStoreMatchesLazy) {
  std::vector<Tuple> tuples = {T(1, 1),  T(4, 2),  T(6, 4),
                               T(8, 8),  T(13, 16), T(17, 32)};
  GeneralSlicingOperator::Options lazy_opts = Opts(true);
  GeneralSlicingOperator::Options eager_opts = Opts(true);
  eager_opts.store_mode = StoreMode::kEager;
  GeneralSlicingOperator lazy(lazy_opts);
  GeneralSlicingOperator eager(eager_opts);
  for (auto* op : {&lazy, &eager}) {
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<LastNEveryTWindow>(3, 10));
  }
  EXPECT_EQ(FinalResults(RunStream(lazy, tuples, 30)),
            FinalResults(RunStream(eager, tuples, 30)));
}

}  // namespace
}  // namespace scotty
