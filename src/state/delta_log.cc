#include "state/delta_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "state/serde.h"

namespace scotty {
namespace state {

namespace {

bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

void FsyncDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

std::string DeltaLogPath(const std::string& prefix, uint64_t base_index) {
  return prefix + "-" + std::to_string(base_index) + ".dlog";
}

bool DeltaLogWriter::Open(const std::string& path, uint64_t base_index) {
  Close();
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  Writer header;
  for (char c : kDeltaLogMagic) header.U8(static_cast<uint8_t>(c));
  Writer body;
  body.U32(kDeltaLogFormatVersion);
  body.U64(base_index);
  const std::vector<uint8_t>& b = body.bytes();
  for (uint8_t byte : b) header.U8(byte);
  header.U64(Fnv1a64(b.data(), b.size()));

  const std::vector<uint8_t>& h = header.bytes();
  if (!WriteAll(fd, h.data(), h.size()) || ::fsync(fd) != 0) {
    ::close(fd);
    std::remove(path.c_str());
    return false;
  }
  // Make the (empty) segment itself durable before any record references
  // it from recovery's point of view.
  FsyncDirOf(path);
  fd_ = fd;
  base_index_ = base_index;
  path_ = path;
  return true;
}

bool DeltaLogWriter::Append(const CheckpointMetadata& meta,
                            const std::string& operator_name,
                            const std::vector<uint8_t>& delta_state) {
  if (fd_ < 0) return false;
  const std::vector<uint8_t> container =
      BuildSnapshot(meta, operator_name, delta_state);
  Writer frame;
  frame.U32(kDeltaRecordMagic);
  frame.U64(container.size());
  const std::vector<uint8_t>& f = frame.bytes();
  if (!WriteAll(fd_, f.data(), f.size()) ||
      !WriteAll(fd_, container.data(), container.size())) {
    return false;
  }
  return true;
}

bool DeltaLogWriter::Sync() {
  if (fd_ < 0) return false;
  return ::fsync(fd_) == 0;
}

void DeltaLogWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

bool ReadDeltaLog(const std::string& path, DeltaLogContents* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamsize size = in.tellg();
  if (size < 0) return false;
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return false;

  Reader r(bytes);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.U8());
  if (!r.ok() || std::memcmp(magic, kDeltaLogMagic, 8) != 0) return false;
  const uint32_t version = r.U32();
  const uint64_t base_index = r.U64();
  const uint64_t header_checksum = r.U64();
  if (!r.ok() || version != kDeltaLogFormatVersion) return false;
  {
    Writer body;
    body.U32(version);
    body.U64(base_index);
    const std::vector<uint8_t>& b = body.bytes();
    if (Fnv1a64(b.data(), b.size()) != header_checksum) return false;
  }

  DeltaLogContents contents;
  contents.base_index = base_index;
  // Records: stop at the first torn/corrupt/out-of-epoch one; everything
  // before it is a consistent replayable prefix.
  while (r.remaining() > 0) {
    const uint32_t rec_magic = r.U32();
    const uint64_t len = r.U64();
    if (!r.ok() || rec_magic != kDeltaRecordMagic || len > r.remaining()) {
      contents.torn = true;
      break;
    }
    std::vector<uint8_t> container(static_cast<size_t>(len));
    r.Bytes(container.data(), container.size());
    DeltaRecord rec;
    if (!r.ok() ||
        !ParseSnapshot(container, &rec.meta, &rec.operator_name, &rec.state)) {
      contents.torn = true;
      break;
    }
    // Epoch continuity: record i extends barrier base_index + i.
    const uint64_t expected =
        base_index + 1 + static_cast<uint64_t>(contents.records.size());
    if (rec.meta.barrier_index != expected) {
      contents.torn = true;
      break;
    }
    contents.records.push_back(std::move(rec));
  }
  *out = std::move(contents);
  return true;
}

}  // namespace state
}  // namespace scotty
